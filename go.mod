module indfd

go 1.22
