# Development targets. `make check` is the gate every change must pass:
# build, vet, lint, and the full test suite under the race detector.

GO ?= go

.PHONY: check build vet lint test race race-hammer zeroalloc bench benchjson bench-json bench-diff serve slo-gate watchdog-test

check: build vet lint race zeroalloc

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt must be clean; staticcheck runs when installed (CI installs it,
# local sandboxes may not have it — skipping is not a failure there).
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The registry's concurrency pin, repeated across GOMAXPROCS settings:
# 32 writers republishing a schema against 32 readers running batches,
# every answer checked against the Σ its echoed version published.
race-hammer:
	$(GO) test -race -cpu 1,2,8 -run TestRegistryRaceHammer -count=1 ./internal/serve/

# The zero-cost-when-off gate: the chase with instrumentation and
# provenance disabled must stay under its pinned allocation ceiling.
# -count=1 defeats the test cache — an allocation regression must fail
# here even when no _test.go file changed.
zeroalloc:
	$(GO) test -run TestZeroAlloc -count=1 .

bench:
	$(GO) test -bench . -benchmem ./...

# Machine-readable per-engine counters and wall times from the
# reference workloads (see internal/benchws): regenerates the committed
# BENCH_engines.json baseline, after running the hot-path benchmarks
# (interned IND frontier, exhaustive search sharding) as a smoke check.
# CI runs this to keep the baseline honest.
bench-json:
	$(GO) test -run TestMain -bench 'BenchmarkChaseObs$$|BenchmarkChaseProfile$$|BenchmarkChaseParallel$$|BenchmarkChasePool$$|BenchmarkINDDecide$$|BenchmarkSearchExhaustive$$|BenchmarkBatchImplies$$|BenchmarkFootprintCache$$' -benchjson BENCH_engines.json .

benchjson: bench-json

# Compare a fresh benchws run against the committed baseline; fails on a
# >20% wall-time regression in any workload. CI runs this as advisory
# (continue-on-error): shared runners are noisier than the machine that
# produced the baseline.
bench-diff:
	$(GO) run ./cmd/benchdiff -baseline BENCH_engines.json

# Run the implication service locally with live /metrics.
serve:
	$(GO) run ./cmd/depserve

# The loadgen-driven SLO gate: boot depserve on a scratch port, drive
# the built-in benchws-derived mix at a constant rate, and fail when the
# overall latency or error-rate SLO breaks or a per-scenario p99 runs
# past 4x the committed BENCH_slo.json baseline. The SLO bounds are
# generous on purpose — this gate catches a serve-path that started
# blocking (a full exporter queue, a lock on the hot path), not
# microsecond drift; cmd/benchdiff owns the fine-grained engine timings.
# SLO_report.json is the fresh report; CI uploads it as an artifact,
# together with digests_snapshot.json — the query-digest store's view of
# the load it just served (per-fingerprint counts, latency histograms,
# hot dependencies), pulled from /debug/digests before the server dies.
# The server runs with the example watchdog rules and a 500ms sampling
# tick; after the window, timeseries_snapshot.json and
# alerts_snapshot.json capture the retained history and any alert
# transitions the run provoked (also uploaded as CI artifacts).
slo-gate:
	$(GO) build -o /tmp/depserve ./cmd/depserve
	$(GO) build -o /tmp/loadgen ./cmd/loadgen
	/tmp/depserve -addr 127.0.0.1:8399 -ts-resolution 500ms \
		-alert-rules examples/depserve.rules & echo $$! > /tmp/depserve.pid; \
	trap 'kill $$(cat /tmp/depserve.pid) 2>/dev/null' EXIT; \
	/tmp/loadgen -target http://127.0.0.1:8399 -qps 150 -duration 5s -warmup 1s \
		-slo 'p99<250ms,errs<1%' -baseline BENCH_slo.json -tolerance 4.0 \
		-report SLO_report.json; \
	rc=$$?; \
	curl -fsS 'http://127.0.0.1:8399/debug/digests?limit=64' -o digests_snapshot.json \
		|| echo 'digests snapshot unavailable'; \
	curl -fsS 'http://127.0.0.1:8399/debug/timeseries' -o timeseries_snapshot.json \
		|| echo 'timeseries snapshot unavailable'; \
	curl -fsS 'http://127.0.0.1:8399/debug/alerts' -o alerts_snapshot.json \
		|| echo 'alerts snapshot unavailable'; \
	exit $$rc

# The watchdog's end-to-end pin under the race detector: depserve's
# serve surface with an induced latency fault must fire the burn-rate
# alert within one evaluation tick, degrade /readyz, and resolve once
# the fault clears.
watchdog-test:
	$(GO) test -race -run TestWatchdogBurnRateIntegration -count=1 ./internal/serve/
