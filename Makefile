# Development targets. `make check` is the gate every change must pass:
# build, vet, and the full test suite under the race detector.

GO ?= go

.PHONY: check build vet test race bench benchjson bench-json serve

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Machine-readable per-engine counters from the reference workloads
# (see bench_test.go): regenerates the committed BENCH_engines.json
# baseline. CI runs this to keep the baseline honest.
bench-json:
	$(GO) test -run TestMain -bench BenchmarkChaseObs -benchjson BENCH_engines.json .

benchjson: bench-json

# Run the implication service locally with live /metrics.
serve:
	$(GO) run ./cmd/depserve
