// Package benchws holds the per-engine reference workloads behind the
// committed BENCH_engines.json baseline: one representative instrumented
// run per engine (IND decision, FD proof, unary finite implication,
// FD+IND chase, counterexample search, exhaustive search, maintenance),
// all recording into a single obs registry.
//
// Run executes every workload and adds a benchws.<name>_ns wall-time
// gauge per workload (best of the requested rounds, so scheduler noise
// shrinks the number, never grows it). The counters are exact and
// machine-independent; the _ns gauges are what cmd/benchdiff compares
// against the committed baseline to catch performance regressions.
//
// The search workloads pin Workers to 1: the parallel search's work
// counters (databases enumerated, checks) are timing-dependent under
// early cancellation, and a baseline that drifts with the scheduler
// would make every diff noisy.
package benchws

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"indfd/internal/chase"
	"indfd/internal/counterex"
	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/fd"
	"indfd/internal/ind"
	"indfd/internal/lba"
	"indfd/internal/maintain"
	"indfd/internal/obs"
	"indfd/internal/schema"
	"indfd/internal/search"
	"indfd/internal/unary"
)

// Workload is one engine's reference run. Run must be deterministic:
// identical counters into reg on every call, on every machine.
type Workload struct {
	Name string
	Run  func(reg *obs.Registry) error
}

// Workloads returns the reference workloads in their canonical order.
func Workloads() []Workload {
	return []Workload{
		{"ind_decide", indWorkload},
		{"fd_prove", fdWorkload},
		{"unary_finite", unaryWorkload},
		{"chase", chaseWorkload},
		{"search", searchWorkload},
		{"search_exhaustive", searchExhaustiveWorkload},
		{"maintain", maintainWorkload},
	}
}

// Run executes every workload: the first round's counters land in reg,
// and each workload's best wall time across rounds (min 1) lands in the
// benchws.<name>_ns gauge.
func Run(reg *obs.Registry, rounds int) error {
	if rounds < 1 {
		rounds = 1
	}
	for _, w := range Workloads() {
		best := int64(math.MaxInt64)
		for r := 0; r < rounds; r++ {
			target := reg
			if r > 0 {
				// Timing rounds must not double-count into the baseline.
				target = obs.New()
			}
			// Allocation-heavy workloads are bimodal in whether a GC cycle
			// lands inside the round; start every round from a collected
			// heap so the two sides of a diff measure the same thing.
			runtime.GC()
			start := time.Now()
			if err := w.Run(target); err != nil {
				return fmt.Errorf("benchws %s: %w", w.Name, err)
			}
			if ns := time.Since(start).Nanoseconds(); ns < best {
				best = ns
			}
		}
		reg.Gauge("benchws." + w.Name + "_ns").Set(best)
	}
	return nil
}

// indWorkload: the Theorem 3.3 LBA-reduction instance at n=3, decided
// by the Corollary 3.2 interned frontier.
func indWorkload(reg *obs.Registry) error {
	inst, err := lba.Reduce(lba.Eraser(), lba.Input("a", 3))
	if err != nil {
		return err
	}
	res, err := ind.Decide(inst.DB, inst.Sigma, inst.Goal)
	if err != nil || !res.Implied {
		return fmt.Errorf("ind workload wrong: %v %v", res.Implied, err)
	}
	res.Stats.Record(reg)
	return nil
}

// fdChain builds the n-attribute FD chain A0 -> A1 -> ... -> A(n-1).
func fdChain(n int) []deps.FD {
	var sigma []deps.FD
	for i := 0; i+1 < n; i++ {
		sigma = append(sigma, deps.NewFD("R",
			deps.Attrs(fmt.Sprintf("A%d", i)), deps.Attrs(fmt.Sprintf("A%d", i+1))))
	}
	return sigma
}

// fdWorkload: an 800-step chain proof.
func fdWorkload(reg *obs.Registry) error {
	sigma := fdChain(800)
	goal := deps.NewFD("R", deps.Attrs("A0"), deps.Attrs("A799"))
	if _, ok := fd.ProveObs(sigma, goal, reg); !ok {
		return fmt.Errorf("fd workload wrong")
	}
	return nil
}

// unaryWorkload: the Fig 4.1 finite-implication instance.
func unaryWorkload(reg *obs.Registry) error {
	u := counterex.Fig41()
	sys, err := unary.NewObs(u.DB, u.Sigma, reg)
	if err != nil {
		return err
	}
	if ok, err := sys.ImpliesFinite(u.Goal); err != nil || !ok {
		return fmt.Errorf("unary workload wrong: %v %v", ok, err)
	}
	return nil
}

// chaseWorkload: Proposition 4.1 plus the Lemma 7.2 derivation at n=4.
func chaseWorkload(reg *obs.Registry) error {
	db41 := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma41 := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	cres, err := chase.ImpliesFD(db41, sigma41,
		deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y")), chase.Options{Obs: reg})
	if err != nil || cres.Verdict != chase.Implied {
		return fmt.Errorf("chase workload wrong: %v %v", cres.Verdict, err)
	}
	s7, err := counterex.NewSection7(4)
	if err != nil {
		return err
	}
	if lres, err := s7.Lemma72(chase.Options{Obs: reg}); err != nil || lres.Verdict != chase.Implied {
		return fmt.Errorf("lemma 7.2 workload wrong: %v", err)
	}
	return nil
}

// searchWorkload: a small counterexample hunt with an early hit.
func searchWorkload(reg *obs.Registry) error {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	_, found, err := search.Counterexample(db,
		[]deps.Dependency{deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))},
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A")),
		search.Options{Domain: 2, MaxTuples: 3, Workers: 1, Obs: reg})
	if err != nil || !found {
		return fmt.Errorf("search workload wrong: %v %v", found, err)
	}
	return nil
}

// searchExhaustiveWorkload: a full Domain=3/MaxTuples=3 scan — the goal
// is trivially satisfied, so no early hit shortens it. This is the
// enumeration throughput baseline.
func searchExhaustiveWorkload(reg *obs.Registry) error {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	_, found, err := search.Counterexample(db,
		[]deps.Dependency{deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))},
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("A")),
		search.Options{Domain: 3, MaxTuples: 3, Workers: 1, Obs: reg})
	if err != nil || found {
		return fmt.Errorf("trivial goal cannot have a counterexample: %v %v", found, err)
	}
	return nil
}

// maintainWorkload: 100 referentially-linked inserts.
func maintainWorkload(reg *obs.Registry) error {
	db := schema.MustDatabase(
		schema.MustScheme("CUST", "CID", "NAME"),
		schema.MustScheme("ORD", "OID", "CID"),
	)
	mon, err := maintain.NewMonitorObs(db, []deps.Dependency{
		deps.NewFD("CUST", deps.Attrs("CID"), deps.Attrs("NAME")),
		deps.NewIND("ORD", deps.Attrs("CID"), "CUST", deps.Attrs("CID")),
	}, reg)
	if err != nil {
		return err
	}
	for j := 0; j < 100; j++ {
		cid := data.Value(fmt.Sprintf("c%d", j))
		if err := mon.Insert("CUST", data.Tuple{cid, "n"}); err != nil {
			return err
		}
		if err := mon.Insert("ORD", data.Tuple{data.Value(fmt.Sprintf("o%d", j)), cid}); err != nil {
			return err
		}
	}
	return nil
}
