// Package benchws holds the per-engine reference workloads behind the
// committed BENCH_engines.json baseline: one representative instrumented
// run per engine (IND decision, FD proof, unary finite implication,
// FD+IND chase, counterexample search, exhaustive search, maintenance),
// all recording into a single obs registry.
//
// Run executes every workload and adds a benchws.<name>_ns wall-time
// gauge per workload (best of the requested rounds, so scheduler noise
// shrinks the number, never grows it). The counters are exact and
// machine-independent; the _ns gauges are what cmd/benchdiff compares
// against the committed baseline to catch performance regressions.
//
// The search workloads pin Workers to 1: the parallel search's work
// counters (databases enumerated, checks) are timing-dependent under
// early cancellation, and a baseline that drifts with the scheduler
// would make every diff noisy.
package benchws

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"indfd/internal/chase"
	"indfd/internal/counterex"
	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/fd"
	"indfd/internal/ind"
	"indfd/internal/lba"
	"indfd/internal/maintain"
	"indfd/internal/obs"
	"indfd/internal/schema"
	"indfd/internal/search"
	"indfd/internal/unary"
)

// Workload is one engine's reference run. Run must be deterministic:
// identical counters into reg on every call, on every machine.
type Workload struct {
	Name string
	Run  func(reg *obs.Registry) error
}

// Workloads returns the reference workloads in their canonical order.
func Workloads() []Workload {
	return []Workload{
		{"ind_decide", indWorkload},
		{"fd_prove", fdWorkload},
		{"unary_finite", unaryWorkload},
		{"chase", chaseWorkload},
		{"chase_lemma72", chaseLemma72Workload},
		{"chase_spiral", chaseSpiralWorkload},
		{"chase_spiral_scan", chaseSpiralScanWorkload},
		{"chase_widefd", chaseWideFDWorkload},
		{"search", searchWorkload},
		{"search_exhaustive", searchExhaustiveWorkload},
		{"maintain", maintainWorkload},
		{"batch_implies", batchImpliesWorkload},
		{"footprint_cache", footprintCacheWorkload},
	}
}

// Run executes every workload: the first round's counters land in reg,
// and each workload's best wall time across rounds (min 1) lands in the
// benchws.<name>_ns gauge.
func Run(reg *obs.Registry, rounds int) error {
	if rounds < 1 {
		rounds = 1
	}
	for _, w := range Workloads() {
		best := int64(math.MaxInt64)
		for r := 0; r < rounds; r++ {
			target := reg
			if r > 0 {
				// Timing rounds must not double-count into the baseline.
				target = obs.New()
			}
			// Allocation-heavy workloads are bimodal in whether a GC cycle
			// lands inside the round; start every round from a collected
			// heap so the two sides of a diff measure the same thing.
			runtime.GC()
			start := time.Now()
			if err := w.Run(target); err != nil {
				return fmt.Errorf("benchws %s: %w", w.Name, err)
			}
			if ns := time.Since(start).Nanoseconds(); ns < best {
				best = ns
			}
		}
		reg.Gauge("benchws." + w.Name + "_ns").Set(best)
	}
	return nil
}

// indWorkload: the Theorem 3.3 LBA-reduction instance at n=3, decided
// by the Corollary 3.2 interned frontier.
func indWorkload(reg *obs.Registry) error {
	inst, err := lba.Reduce(lba.Eraser(), lba.Input("a", 3))
	if err != nil {
		return err
	}
	res, err := ind.Decide(inst.DB, inst.Sigma, inst.Goal)
	if err != nil || !res.Implied {
		return fmt.Errorf("ind workload wrong: %v %v", res.Implied, err)
	}
	res.Stats.Record(reg)
	return nil
}

// fdChain builds the n-attribute FD chain A0 -> A1 -> ... -> A(n-1).
func fdChain(n int) []deps.FD {
	var sigma []deps.FD
	for i := 0; i+1 < n; i++ {
		sigma = append(sigma, deps.NewFD("R",
			deps.Attrs(fmt.Sprintf("A%d", i)), deps.Attrs(fmt.Sprintf("A%d", i+1))))
	}
	return sigma
}

// fdWorkload: an 800-step chain proof.
func fdWorkload(reg *obs.Registry) error {
	sigma := fdChain(800)
	goal := deps.NewFD("R", deps.Attrs("A0"), deps.Attrs("A799"))
	if _, ok := fd.ProveObs(sigma, goal, reg); !ok {
		return fmt.Errorf("fd workload wrong")
	}
	return nil
}

// unaryWorkload: the Fig 4.1 finite-implication instance.
func unaryWorkload(reg *obs.Registry) error {
	u := counterex.Fig41()
	sys, err := unary.NewObs(u.DB, u.Sigma, reg)
	if err != nil {
		return err
	}
	if ok, err := sys.ImpliesFinite(u.Goal); err != nil || !ok {
		return fmt.Errorf("unary workload wrong: %v %v", ok, err)
	}
	return nil
}

// chaseWorkload: Proposition 4.1 plus the Lemma 7.2 derivation at n=4.
func chaseWorkload(reg *obs.Registry) error {
	db41 := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma41 := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	cres, err := chase.ImpliesFD(db41, sigma41,
		deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y")), chase.Options{Obs: reg})
	if err != nil || cres.Verdict != chase.Implied {
		return fmt.Errorf("chase workload wrong: %v %v", cres.Verdict, err)
	}
	s7, err := counterex.NewSection7(4)
	if err != nil {
		return err
	}
	if lres, err := s7.Lemma72(chase.Options{Obs: reg}); err != nil || lres.Verdict != chase.Implied {
		return fmt.Errorf("lemma 7.2 workload wrong: %v", err)
	}
	return nil
}

// chaseLemma72Workload: the Lemma 7.2 derivation at n=6 — the deepest
// fixed derivation the repo builds, an FD+IND interaction where every
// round both adds tuples and equates values.
func chaseLemma72Workload(reg *obs.Registry) error {
	s7, err := counterex.NewSection7(6)
	if err != nil {
		return err
	}
	if res, err := s7.Lemma72(chase.Options{Obs: reg}); err != nil || res.Verdict != chase.Implied {
		return fmt.Errorf("chase_lemma72 workload wrong: %v", err)
	}
	return nil
}

// SpiralInstance builds the k-deep IND spiral: relations L0..L(k-1) of
// width three with INDs Li[B,C] ⊆ L(i+1 mod k)[A,B], so every new tuple
// forces one more tuple (with one fresh null) in the next relation, and
// the chase never reaches a fixpoint — it runs one round per generation
// until the tuple budget stops it with verdict Unknown. A quiet FD on a
// relation the spiral never touches rides along so FD machinery is
// exercised without ever firing. This is the many-rounds stress the
// semi-naive engine's delta-driven IND pass is built for; the naive
// reference rebuilds every witness map over the whole tableau every
// round.
func SpiralInstance(k int) (*schema.Database, []deps.Dependency, deps.FD) {
	schemes := []*schema.Scheme{schema.MustScheme("M", "A", "B")}
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = fmt.Sprintf("L%d", i)
		schemes = append(schemes, schema.MustScheme(names[i], "A", "B", "C"))
	}
	db := schema.MustDatabase(schemes...)
	sigma := []deps.Dependency{
		deps.NewFD("M", deps.Attrs("A"), deps.Attrs("B")),
	}
	for i := 0; i < k; i++ {
		sigma = append(sigma, deps.NewIND(names[i], deps.Attrs("B", "C"),
			names[(i+1)%k], deps.Attrs("A", "B")))
	}
	return db, sigma, deps.NewFD("L0", deps.Attrs("A"), deps.Attrs("C"))
}

// SpiralScanInstance is SpiralInstance with one never-firing FD
// Li: (C, B) -> A per spiral relation. Every tuple the spiral pours
// into Li carries a fresh null in C, so the (C, B) groups stay
// singletons forever and the FDs never fire — but each relation's
// version bumps every round, so each FD re-scans the whole growing
// relation every round: the chase becomes FD-scan dominated (quadratic
// in rounds) while remaining byte-deterministic. This is the workload
// the sharded delta passes are measured on (BenchmarkChaseParallel):
// k independent full-relation scans per round, embarrassingly parallel
// across the compile-order regions.
func SpiralScanInstance(k int) (*schema.Database, []deps.Dependency, deps.FD) {
	db, sigma, goal := SpiralInstance(k)
	for i := 0; i < k; i++ {
		sigma = append(sigma, deps.NewFD(fmt.Sprintf("L%d", i),
			deps.Attrs("C", "B"), deps.Attrs("A")))
	}
	return db, sigma, goal
}

// chaseSpiralScanWorkload: the 8-relation scan-heavy spiral under a
// 1024-tuple budget — the sequential baseline of the parallel-chase
// ablation.
func chaseSpiralScanWorkload(reg *obs.Registry) error {
	db, sigma, goal := SpiralScanInstance(8)
	res, err := chase.ImpliesFD(db, sigma, goal, chase.Options{Obs: reg, MaxTuples: 1024})
	if err != nil || res.Verdict != chase.Unknown {
		return fmt.Errorf("chase_spiral_scan workload wrong: %v %v", res.Verdict, err)
	}
	return nil
}

// chaseSpiralWorkload: the 4-deep spiral under a 1500-tuple budget —
// about 750 rounds of pure delta work.
func chaseSpiralWorkload(reg *obs.Registry) error {
	db, sigma, goal := SpiralInstance(4)
	res, err := chase.ImpliesFD(db, sigma, goal, chase.Options{Obs: reg, MaxTuples: 1500})
	if err != nil || res.Verdict != chase.Unknown {
		return fmt.Errorf("chase_spiral workload wrong: %v %v", res.Verdict, err)
	}
	return nil
}

// WideFDInstance builds the wide-FD tableau: P[A,B1..Bm], Q[X,Y], one
// IND P[A,Bi] ⊆ Q[X,Y] per i, and the FD Q: X -> Y. Chasing the RD goal
// P[B1 = Bm] pours m tuples into Q in one round, the FD collapses them
// into one X-group (m-1 unions), and dedup removes all but one — a
// union-heavy, re-keying-heavy contrast to the IND-heavy spiral.
func WideFDInstance(m int) (*schema.Database, []deps.Dependency, deps.RD) {
	attrs := []schema.Attribute{"A"}
	for i := 1; i <= m; i++ {
		attrs = append(attrs, schema.Attribute(fmt.Sprintf("B%d", i)))
	}
	db := schema.MustDatabase(
		schema.MustScheme("P", attrs...),
		schema.MustScheme("Q", "X", "Y"),
	)
	var sigma []deps.Dependency
	for i := 1; i <= m; i++ {
		sigma = append(sigma, deps.NewIND("P",
			[]schema.Attribute{"A", schema.Attribute(fmt.Sprintf("B%d", i))},
			"Q", deps.Attrs("X", "Y")))
	}
	sigma = append(sigma, deps.NewFD("Q", deps.Attrs("X"), deps.Attrs("Y")))
	return db, sigma, deps.NewRD("P", deps.Attrs("B1"), deps.Attrs(fmt.Sprintf("B%d", m)))
}

// chaseWideFDWorkload: the m=300 wide-FD tableau, derived in two rounds.
func chaseWideFDWorkload(reg *obs.Registry) error {
	db, sigma, goal := WideFDInstance(300)
	res, err := chase.ImpliesRD(db, sigma, goal, chase.Options{Obs: reg})
	if err != nil || res.Verdict != chase.Implied {
		return fmt.Errorf("chase_widefd workload wrong: %v %v", res.Verdict, err)
	}
	return nil
}

// searchWorkload: a small counterexample hunt with an early hit.
func searchWorkload(reg *obs.Registry) error {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	_, found, err := search.Counterexample(db,
		[]deps.Dependency{deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))},
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A")),
		search.Options{Domain: 2, MaxTuples: 3, Workers: 1, Obs: reg})
	if err != nil || !found {
		return fmt.Errorf("search workload wrong: %v %v", found, err)
	}
	return nil
}

// searchExhaustiveWorkload: a full Domain=3/MaxTuples=3 scan — the goal
// is trivially satisfied, so no early hit shortens it. This is the
// enumeration throughput baseline.
func searchExhaustiveWorkload(reg *obs.Registry) error {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	_, found, err := search.Counterexample(db,
		[]deps.Dependency{deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))},
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("A")),
		search.Options{Domain: 3, MaxTuples: 3, Workers: 1, Obs: reg})
	if err != nil || found {
		return fmt.Errorf("trivial goal cannot have a counterexample: %v %v", found, err)
	}
	return nil
}

// maintainWorkload: 100 referentially-linked inserts.
func maintainWorkload(reg *obs.Registry) error {
	db := schema.MustDatabase(
		schema.MustScheme("CUST", "CID", "NAME"),
		schema.MustScheme("ORD", "OID", "CID"),
	)
	mon, err := maintain.NewMonitorObs(db, []deps.Dependency{
		deps.NewFD("CUST", deps.Attrs("CID"), deps.Attrs("NAME")),
		deps.NewIND("ORD", deps.Attrs("CID"), "CUST", deps.Attrs("CID")),
	}, reg)
	if err != nil {
		return err
	}
	for j := 0; j < 100; j++ {
		cid := data.Value(fmt.Sprintf("c%d", j))
		if err := mon.Insert("CUST", data.Tuple{cid, "n"}); err != nil {
			return err
		}
		if err := mon.Insert("ORD", data.Tuple{data.Value(fmt.Sprintf("o%d", j)), cid}); err != nil {
			return err
		}
	}
	return nil
}
