package benchws

// Serving-path reference workloads: the batch endpoint's amortized
// setup and the footprint-keyed answer cache, measured through a real
// in-process HTTP server so the _ns gauges cover what depserve actually
// does per request (routing, middleware, JSON, engine, cache).
//
// The server runs on a private registry — its wall-clock histograms and
// request traces must not leak into the committed baseline — and only
// the deterministic counters (batch.*, registry.*, cache.*, serve.*)
// are copied into the workload registry afterwards.

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"

	"indfd/internal/obs"
	"indfd/internal/serve"
)

// serveHarness is an in-process depserve with a private registry.
type serveHarness struct {
	ts  *httptest.Server
	reg *obs.Registry
}

func newServeHarness(cacheSize int) *serveHarness {
	reg := obs.New()
	s := serve.New(serve.Config{
		Reg:       reg,
		Logger:    slog.New(slog.NewJSONHandler(io.Discard, nil)),
		CacheSize: cacheSize,
	})
	s.SetReady(true)
	return &serveHarness{ts: httptest.NewServer(s.Handler()), reg: reg}
}

func (h *serveHarness) close() { h.ts.Close() }

// do sends one JSON request and decodes the reply into out (when
// non-nil), failing on any non-200 status.
func (h *serveHarness) do(method, path, body string, out any) error {
	req, err := http.NewRequest(method, h.ts.URL+path, strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, raw)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

// copyDeterministic moves the serving path's machine-independent
// counters from the harness registry into the workload registry. The
// http.* counters and every histogram stay behind: latency values vary
// per run and would churn the committed baseline.
func (h *serveHarness) copyDeterministic(reg *obs.Registry) {
	snap := h.reg.Snapshot()
	for name, v := range snap.Counters {
		for _, p := range []string{"batch.", "registry.", "cache.", "serve."} {
			if strings.HasPrefix(name, p) {
				reg.Counter(name).Add(v)
				break
			}
		}
	}
}

// benchChainSchema renders the registration body for R(A0..A(n-1)) with
// the FD chain A0 -> A1 -> ... -> A(n-1).
func benchChainSchema(n int) string {
	attrs := make([]string, n)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("A%d", i)
	}
	sigma := make([]string, 0, n-1)
	for i := 0; i+1 < n; i++ {
		sigma = append(sigma, fmt.Sprintf(`"R: A%d -> A%d"`, i, i+1))
	}
	return fmt.Sprintf(`{"schema": ["R(%s)"], "sigma": [%s]}`,
		strings.Join(attrs, ", "), strings.Join(sigma, ", "))
}

// batchImpliesWorkload: one registered 32-attribute FD chain, one
// batch of 100 goals against it. The per-goal engine work is small by
// design — what the gauge times is the amortized serving path the batch
// endpoint exists for: one parse, one compiled system, one warm pool
// shared across all 100 answers.
func batchImpliesWorkload(reg *obs.Registry) error {
	h := newServeHarness(0)
	defer h.close()
	if err := h.do(http.MethodPut, "/v1/schemas/bench", benchChainSchema(32), nil); err != nil {
		return err
	}
	goals := make([]string, 100)
	for i := range goals {
		goals[i] = fmt.Sprintf(`"R: A0 -> A%d"`, 1+i%31)
	}
	var resp struct {
		Answers []struct {
			Verdict string `json:"verdict"`
		} `json:"answers"`
	}
	body := fmt.Sprintf(`{"schema_name": "bench", "goals": [%s]}`, strings.Join(goals, ", "))
	if err := h.do(http.MethodPost, "/v1/batch", body, &resp); err != nil {
		return err
	}
	if len(resp.Answers) != len(goals) {
		return fmt.Errorf("batch returned %d answers, want %d", len(resp.Answers), len(goals))
	}
	for i, a := range resp.Answers {
		if a.Verdict != "yes" {
			return fmt.Errorf("batch goal %d verdict %q, want yes", i, a.Verdict)
		}
	}
	h.copyDeterministic(reg)
	return nil
}

// footprintCacheWorkload: the answer cache's steady state and its
// surgical invalidation. Four goals from two IND-disconnected
// components warm the cache, 250 rounds replay them (1000 hits — the
// depserve hot path the gauge times), then a registration touching
// neither component must evict nothing and one touching a single
// component must evict exactly its two answers.
func footprintCacheWorkload(reg *obs.Registry) error {
	h := newServeHarness(1024)
	defer h.close()
	const schemaBody = `{"schema": ["R(A, B, C)", "S(X, Y)", "T(V, W)", "Z(P, Q)"],
		"sigma": ["R: A -> B", "R: B -> C", "S[X,Y] <= T[V,W]", "T: V -> W"]}`
	if err := h.do(http.MethodPut, "/v1/schemas/app", schemaBody, nil); err != nil {
		return err
	}
	goals := []string{"R: A -> C", "R: C -> A", "S: X -> Y", "S[X] <= T[V]"}
	for round := 0; round < 251; round++ {
		for _, g := range goals {
			body := fmt.Sprintf(`{"schema_name": "app", "goal": %q}`, g)
			if err := h.do(http.MethodPost, "/v1/implies", body, nil); err != nil {
				return err
			}
		}
	}
	var edit struct {
		Invalidated int `json:"invalidated"`
	}
	disjoint := strings.Replace(schemaBody, `"T: V -> W"`, `"T: V -> W", "Z: P -> Q"`, 1)
	if err := h.do(http.MethodPut, "/v1/schemas/app", disjoint, &edit); err != nil {
		return err
	}
	if edit.Invalidated != 0 {
		return fmt.Errorf("disjoint edit invalidated %d cached answers, want 0", edit.Invalidated)
	}
	touching := strings.Replace(disjoint, `"R: B -> C", `, "", 1)
	if err := h.do(http.MethodPut, "/v1/schemas/app", touching, &edit); err != nil {
		return err
	}
	if edit.Invalidated != 2 {
		return fmt.Errorf("component edit invalidated %d cached answers, want 2", edit.Invalidated)
	}
	h.copyDeterministic(reg)
	return nil
}
