package benchws

import (
	"fmt"
	"testing"

	"indfd/internal/obs"
)

// TestRunDeterministicCounters: the baseline's value rests on the
// workload counters being exact and machine-independent — two runs must
// produce identical counters (wall-time gauges excluded, of course).
func TestRunDeterministicCounters(t *testing.T) {
	snap := func() map[string]int64 {
		reg := obs.New()
		if err := Run(reg, 1); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return reg.Snapshot().Counters
	}
	a, b := snap(), snap()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("counters drifted between runs:\n%v\n%v", a, b)
	}
}

// TestRunEmitsWallTimeGauges: every workload must land its _ns gauge.
func TestRunEmitsWallTimeGauges(t *testing.T) {
	reg := obs.New()
	if err := Run(reg, 2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	gauges := reg.Snapshot().Gauges
	for _, w := range Workloads() {
		name := "benchws." + w.Name + "_ns"
		if ns, ok := gauges[name]; !ok || ns <= 0 {
			t.Errorf("gauge %s = %d, %v; want a positive wall time", name, ns, ok)
		}
	}
}
