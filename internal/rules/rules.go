// Package rules implements the Section 5 formalism: inference rules
// "if T then τ", k-ary rule sets, proofs via rule sets, closure of a
// sentence set under (k-ary) implication, and the Theorem 5.1
// characterization — a k-ary complete axiomatization for 𝒮 exists iff
// every Γ ⊆ 𝒮 closed under k-ary implication is closed under implication.
//
// Implication itself is abstract here: callers supply an Oracle. For the
// small finite universes the paper's counterexamples live in, the oracle
// is the unary engine (Section 6), the IND engine plus enumeration
// (Section 7), or a semantic table.
package rules

import (
	"fmt"
	"sort"
	"strings"

	"indfd/internal/deps"
)

// Oracle decides implication for the sentence class under study:
// Implies(T, tau) reports whether T ⊨ τ (in whichever sense — finite or
// unrestricted — the caller is working).
type Oracle func(T []deps.Dependency, tau deps.Dependency) (bool, error)

// Rule is an inference rule "if Antecedents then Consequence". A rule with
// no antecedents is an axiom (0-ary).
type Rule struct {
	Antecedents []deps.Dependency
	Consequence deps.Dependency
}

// Arity returns the number of distinct antecedents.
func (r Rule) Arity() int {
	seen := map[string]bool{}
	for _, a := range r.Antecedents {
		seen[a.Key()] = true
	}
	return len(seen)
}

// String renders the rule.
func (r Rule) String() string {
	if len(r.Antecedents) == 0 {
		return fmt.Sprintf("⊢ %v", r.Consequence)
	}
	parts := make([]string, len(r.Antecedents))
	for i, a := range r.Antecedents {
		parts[i] = a.String()
	}
	return fmt.Sprintf("if {%s} then %v", strings.Join(parts, "; "), r.Consequence)
}

// Sound reports whether the rule is sound under the oracle.
func (r Rule) Sound(oracle Oracle) (bool, error) {
	return oracle(r.Antecedents, r.Consequence)
}

// RuleSet is a set of rules.
type RuleSet struct {
	Rules []Rule
}

// MaxArity returns the largest rule arity (a RuleSet is "k-ary" in the
// paper's sense when MaxArity() ≤ k).
func (rs RuleSet) MaxArity() int {
	m := 0
	for _, r := range rs.Rules {
		if a := r.Arity(); a > m {
			m = a
		}
	}
	return m
}

// Derive computes the set of sentences derivable from sigma via the rule
// set: the least superset of sigma closed under the rules. This is the
// "Σ ⊢_R" relation of Section 5, computed to fixpoint; it terminates
// because the consequences are drawn from the rules' finite consequence
// set.
func (rs RuleSet) Derive(sigma []deps.Dependency) *deps.Set {
	derived := deps.NewSet(sigma...)
	for changed := true; changed; {
		changed = false
		for _, r := range rs.Rules {
			if derived.Contains(r.Consequence) {
				continue
			}
			ok := true
			for _, a := range r.Antecedents {
				if !derived.Contains(a) {
					ok = false
					break
				}
			}
			if ok {
				derived.Add(r.Consequence)
				changed = true
			}
		}
	}
	return derived
}

// Proves reports whether sigma ⊢_rs tau.
func (rs RuleSet) Proves(sigma []deps.Dependency, tau deps.Dependency) bool {
	return rs.Derive(sigma).Contains(tau)
}

// KaryClosure returns the closure of gamma under k-ary implication within
// the finite universe: the least superset Γ' of gamma such that whenever
// T ⊆ Γ' with |T| ≤ k, τ ∈ universe, and oracle(T, τ), then τ ∈ Γ'.
//
// The subset enumeration is exponential in k; the paper's constructions
// need only small k and small Γ.
func KaryClosure(gamma []deps.Dependency, universe []deps.Dependency, oracle Oracle, k int) (*deps.Set, error) {
	closed := deps.NewSet(gamma...)
	for changed := true; changed; {
		changed = false
		members := append([]deps.Dependency(nil), closed.All()...)
		for _, tau := range universe {
			if closed.Contains(tau) {
				continue
			}
			ok, err := impliedBySomeSubset(members, tau, oracle, k)
			if err != nil {
				return nil, err
			}
			if ok {
				closed.Add(tau)
				changed = true
			}
		}
	}
	return closed, nil
}

// impliedBySomeSubset reports whether some subset T of members with
// |T| ≤ k has oracle(T, tau). It prunes by monotonicity: only maximal-size
// subsets need not be tried separately — but since oracles may be
// expensive, it tries small subsets first.
func impliedBySomeSubset(members []deps.Dependency, tau deps.Dependency, oracle Oracle, k int) (bool, error) {
	n := len(members)
	if k > n {
		k = n
	}
	// size 0 first (tautologies), then singletons, etc.
	idx := make([]int, 0, k)
	var rec func(start, size int) (bool, error)
	var target int
	rec = func(start, size int) (bool, error) {
		if size == target {
			T := make([]deps.Dependency, len(idx))
			for i, j := range idx {
				T[i] = members[j]
			}
			return oracle(T, tau)
		}
		for i := start; i < n; i++ {
			idx = append(idx, i)
			ok, err := rec(i+1, size+1)
			idx = idx[:len(idx)-1]
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	}
	for target = 0; target <= k; target++ {
		ok, err := rec(0, 0)
		if err != nil || ok {
			return ok, err
		}
	}
	return false, nil
}

// ClosedUnderKaryImplication reports whether gamma (as a subset of
// universe) is already closed under k-ary implication.
func ClosedUnderKaryImplication(gamma []deps.Dependency, universe []deps.Dependency, oracle Oracle, k int) (bool, deps.Dependency, error) {
	in := deps.NewSet(gamma...)
	for _, tau := range universe {
		if in.Contains(tau) {
			continue
		}
		ok, err := impliedBySomeSubset(gamma, tau, oracle, k)
		if err != nil {
			return false, nil, err
		}
		if ok {
			return false, tau, nil
		}
	}
	return true, nil, nil
}

// ClosedUnderImplication reports whether gamma is closed under full
// implication with respect to the universe: whenever gamma ⊨ τ for
// τ ∈ universe, τ ∈ gamma. (The whole of gamma is used as the antecedent
// set; by monotonicity of ⊨ this is equivalent to quantifying over all
// subsets.)
func ClosedUnderImplication(gamma []deps.Dependency, universe []deps.Dependency, oracle Oracle) (bool, deps.Dependency, error) {
	in := deps.NewSet(gamma...)
	for _, tau := range universe {
		if in.Contains(tau) {
			continue
		}
		ok, err := oracle(gamma, tau)
		if err != nil {
			return false, nil, err
		}
		if ok {
			return false, tau, nil
		}
	}
	return true, nil, nil
}

// Witness is the object Theorem 5.1 turns non-existence proofs into: a set
// Γ that is closed under k-ary implication but not under implication. If a
// Witness exists for every k (as Sections 6 and 7 construct), no k-ary
// complete axiomatization exists for the sentence class.
type Witness struct {
	Gamma []deps.Dependency
	// Sigma ⊆ Gamma and Tau ∉ Gamma with Sigma ⊨ Tau exhibit the failure
	// of closure under implication.
	Sigma []deps.Dependency
	Tau   deps.Dependency
}

// Check verifies the witness against the universe and oracle for the given
// k: Γ must be closed under k-ary implication, Σ ⊆ Γ, τ ∉ Γ, and Σ ⊨ τ.
func (w Witness) Check(universe []deps.Dependency, oracle Oracle, k int) error {
	in := deps.NewSet(w.Gamma...)
	for _, s := range w.Sigma {
		if !in.Contains(s) {
			return fmt.Errorf("rules: witness sigma member %v not in gamma", s)
		}
	}
	if in.Contains(w.Tau) {
		return fmt.Errorf("rules: witness tau %v is in gamma", w.Tau)
	}
	ok, err := oracle(w.Sigma, w.Tau)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("rules: witness sigma does not imply tau %v", w.Tau)
	}
	closed, offender, err := ClosedUnderKaryImplication(w.Gamma, universe, oracle, k)
	if err != nil {
		return err
	}
	if !closed {
		return fmt.Errorf("rules: gamma not closed under %d-ary implication: %v escapes", k, offender)
	}
	return nil
}

// KaryCompleteExists implements the Theorem 5.1 characterization by brute
// force over all subsets of the universe: a k-ary complete axiomatization
// exists iff every Γ ⊆ universe closed under k-ary implication is closed
// under implication. Only feasible for tiny universes (≤ ~16 sentences);
// it exists to validate Theorem 5.1 mechanically on small instances.
func KaryCompleteExists(universe []deps.Dependency, oracle Oracle, k int) (bool, *Witness, error) {
	n := len(universe)
	if n > 20 {
		return false, nil, fmt.Errorf("rules: universe of %d sentences is too large for exhaustive search", n)
	}
	for mask := 0; mask < 1<<n; mask++ {
		var gamma []deps.Dependency
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				gamma = append(gamma, universe[i])
			}
		}
		closedK, _, err := ClosedUnderKaryImplication(gamma, universe, oracle, k)
		if err != nil {
			return false, nil, err
		}
		if !closedK {
			continue
		}
		closedFull, tau, err := ClosedUnderImplication(gamma, universe, oracle)
		if err != nil {
			return false, nil, err
		}
		if !closedFull {
			return false, &Witness{Gamma: gamma, Sigma: gamma, Tau: tau}, nil
		}
	}
	return true, nil, nil
}

// CanonicalKary builds the canonical k-ary rule set over the universe used
// in the proof of Theorem 5.1: every sound rule "if T then τ" with T ⊆
// universe, |T| ≤ k, τ ∈ universe. Exponential in k; intended for tiny
// universes.
func CanonicalKary(universe []deps.Dependency, oracle Oracle, k int) (RuleSet, error) {
	var rs RuleSet
	n := len(universe)
	var idx []int
	var rec func(start, size, target int) error
	rec = func(start, size, target int) error {
		if size == target {
			T := make([]deps.Dependency, len(idx))
			for i, j := range idx {
				T[i] = universe[j]
			}
			inT := deps.NewSet(T...)
			for _, tau := range universe {
				if inT.Contains(tau) {
					continue
				}
				ok, err := oracle(T, tau)
				if err != nil {
					return err
				}
				if ok {
					rs.Rules = append(rs.Rules, Rule{Antecedents: T, Consequence: tau})
				}
			}
			return nil
		}
		for i := start; i < n; i++ {
			idx = append(idx, i)
			if err := rec(i+1, size+1, target); err != nil {
				return err
			}
			idx = idx[:len(idx)-1]
		}
		return nil
	}
	for target := 0; target <= k && target <= n; target++ {
		if err := rec(0, 0, target); err != nil {
			return RuleSet{}, err
		}
	}
	return rs, nil
}

// SortDeps sorts a dependency slice by rendering, for deterministic
// output in experiments.
func SortDeps(ds []deps.Dependency) {
	sort.Slice(ds, func(i, j int) bool { return ds[i].String() < ds[j].String() })
}
