package rules

import (
	"testing"

	"indfd/internal/deps"
	"indfd/internal/fd"
)

// fdOracle decides implication for FD-only sentence sets using the
// (complete, decidable) FD engine.
func fdOracle(T []deps.Dependency, tau deps.Dependency) (bool, error) {
	var fds []deps.FD
	for _, d := range T {
		f, ok := d.(deps.FD)
		if !ok {
			return false, nil
		}
		fds = append(fds, f)
	}
	g, ok := tau.(deps.FD)
	if !ok {
		return false, nil
	}
	return fd.Implies(fds, g), nil
}

// singletonFDUniverse is every FD A -> B with single attributes over
// R(A,B,C): 9 sentences, 3 of them trivial.
func singletonFDUniverse() []deps.Dependency {
	attrs := []string{"A", "B", "C"}
	var out []deps.Dependency
	for _, x := range attrs {
		for _, y := range attrs {
			out = append(out, deps.NewFD("R", deps.Attrs(x), deps.Attrs(y)))
		}
	}
	return out
}

func fdAB() deps.Dependency { return deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")) }
func fdBC() deps.Dependency { return deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C")) }
func fdAC() deps.Dependency { return deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C")) }

func TestRuleBasics(t *testing.T) {
	r := Rule{Antecedents: []deps.Dependency{fdAB(), fdBC()}, Consequence: fdAC()}
	if r.Arity() != 2 {
		t.Errorf("Arity = %d", r.Arity())
	}
	ok, err := r.Sound(fdOracle)
	if err != nil || !ok {
		t.Errorf("transitivity rule should be sound: %v %v", ok, err)
	}
	bad := Rule{Antecedents: []deps.Dependency{fdAB()}, Consequence: fdAC()}
	ok, _ = bad.Sound(fdOracle)
	if ok {
		t.Errorf("A->B alone should not imply A->C")
	}
	axiom := Rule{Consequence: deps.NewFD("R", deps.Attrs("A"), deps.Attrs("A"))}
	if axiom.Arity() != 0 {
		t.Errorf("axiom arity = %d", axiom.Arity())
	}
	if axiom.String() == "" || r.String() == "" {
		t.Errorf("empty renderings")
	}
	// Duplicate antecedents count once.
	dup := Rule{Antecedents: []deps.Dependency{fdAB(), fdAB()}, Consequence: fdAB()}
	if dup.Arity() != 1 {
		t.Errorf("duplicate antecedent arity = %d, want 1", dup.Arity())
	}
}

func TestDeriveAndProves(t *testing.T) {
	trans := Rule{Antecedents: []deps.Dependency{fdAB(), fdBC()}, Consequence: fdAC()}
	rs := RuleSet{Rules: []Rule{trans}}
	if rs.MaxArity() != 2 {
		t.Errorf("MaxArity = %d", rs.MaxArity())
	}
	if !rs.Proves([]deps.Dependency{fdAB(), fdBC()}, fdAC()) {
		t.Errorf("transitivity should derive A->C")
	}
	if rs.Proves([]deps.Dependency{fdAB()}, fdAC()) {
		t.Errorf("A->C should not be derivable from A->B alone")
	}
	derived := rs.Derive([]deps.Dependency{fdAB(), fdBC()})
	if derived.Len() != 3 {
		t.Errorf("Derive produced %d sentences, want 3", derived.Len())
	}
}

func TestKaryClosure(t *testing.T) {
	universe := singletonFDUniverse()
	gamma := []deps.Dependency{fdAB(), fdBC()}
	// 1-ary closure adds only trivial FDs and per-sentence consequences.
	c1, err := KaryClosure(gamma, universe, fdOracle, 1)
	if err != nil {
		t.Fatalf("KaryClosure: %v", err)
	}
	if c1.Contains(fdAC()) {
		t.Errorf("1-ary closure should not contain A->C")
	}
	if !c1.Contains(deps.NewFD("R", deps.Attrs("A"), deps.Attrs("A"))) {
		t.Errorf("closure should contain tautologies (0-ary implication)")
	}
	// 2-ary closure contains transitivity consequences.
	c2, err := KaryClosure(gamma, universe, fdOracle, 2)
	if err != nil {
		t.Fatalf("KaryClosure: %v", err)
	}
	if !c2.Contains(fdAC()) {
		t.Errorf("2-ary closure should contain A->C")
	}
}

func TestClosedPredicates(t *testing.T) {
	universe := singletonFDUniverse()
	c1, _ := KaryClosure([]deps.Dependency{fdAB(), fdBC()}, universe, fdOracle, 1)
	closed, _, err := ClosedUnderKaryImplication(c1.All(), universe, fdOracle, 1)
	if err != nil || !closed {
		t.Errorf("KaryClosure output should be closed under k-ary implication")
	}
	closedFull, tau, err := ClosedUnderImplication(c1.All(), universe, fdOracle)
	if err != nil {
		t.Fatal(err)
	}
	if closedFull {
		t.Errorf("1-ary closure of a 2-step chain should not be closed under implication")
	}
	if tau == nil || tau.Key() != fdAC().Key() {
		t.Errorf("escaping sentence = %v, want A->C", tau)
	}
}

// Theorem 5.1 in the small: over the singleton-FD universe, transitivity
// makes 2-ary complete axiomatizations exist, while 1-ary does not.
func TestKaryCompleteExists(t *testing.T) {
	universe := singletonFDUniverse()
	ok, w, err := KaryCompleteExists(universe, fdOracle, 2)
	if err != nil {
		t.Fatalf("k=2: %v", err)
	}
	if !ok {
		t.Errorf("2-ary complete axiomatization should exist for singleton FDs, witness %+v", w)
	}
	ok, w, err = KaryCompleteExists(universe, fdOracle, 1)
	if err != nil {
		t.Fatalf("k=1: %v", err)
	}
	if ok {
		t.Errorf("1-ary complete axiomatization should NOT exist for singleton FDs")
	}
	if w == nil {
		t.Fatalf("no witness returned")
	}
	if err := w.Check(universe, fdOracle, 1); err != nil {
		t.Errorf("returned witness does not check: %v", err)
	}
}

func TestKaryCompleteExistsTooLarge(t *testing.T) {
	big := make([]deps.Dependency, 21)
	for i := range big {
		big[i] = fdAB()
	}
	if _, _, err := KaryCompleteExists(big, fdOracle, 1); err == nil {
		t.Errorf("oversized universe should be rejected")
	}
}

func TestWitnessCheckFailures(t *testing.T) {
	universe := singletonFDUniverse()
	// Sigma not inside Gamma.
	w := Witness{Gamma: []deps.Dependency{fdAB()}, Sigma: []deps.Dependency{fdBC()}, Tau: fdAC()}
	if err := w.Check(universe, fdOracle, 1); err == nil {
		t.Errorf("sigma outside gamma should fail")
	}
	// Tau inside Gamma.
	w = Witness{Gamma: []deps.Dependency{fdAB(), fdAC()}, Sigma: []deps.Dependency{fdAB()}, Tau: fdAC()}
	if err := w.Check(universe, fdOracle, 1); err == nil {
		t.Errorf("tau in gamma should fail")
	}
	// Sigma does not imply tau.
	w = Witness{Gamma: []deps.Dependency{fdAB()}, Sigma: []deps.Dependency{fdAB()}, Tau: fdAC()}
	if err := w.Check(universe, fdOracle, 1); err == nil {
		t.Errorf("non-implication should fail")
	}
	// Gamma not k-ary closed.
	w = Witness{Gamma: []deps.Dependency{fdAB(), fdBC()}, Sigma: []deps.Dependency{fdAB(), fdBC()}, Tau: fdAC()}
	if err := w.Check(universe, fdOracle, 2); err == nil {
		t.Errorf("gamma open under 2-ary implication should fail for k=2")
	}
}

func TestCanonicalKary(t *testing.T) {
	universe := singletonFDUniverse()
	rs, err := CanonicalKary(universe, fdOracle, 2)
	if err != nil {
		t.Fatalf("CanonicalKary: %v", err)
	}
	if rs.MaxArity() > 2 {
		t.Errorf("MaxArity = %d", rs.MaxArity())
	}
	// Every rule is sound.
	for _, r := range rs.Rules {
		ok, err := r.Sound(fdOracle)
		if err != nil || !ok {
			t.Errorf("unsound canonical rule %v", r)
		}
	}
	// The canonical 2-ary rules derive transitive consequences.
	if !rs.Proves([]deps.Dependency{fdAB(), fdBC()}, fdAC()) {
		t.Errorf("canonical 2-ary rules should prove A->C")
	}
	// The canonical 1-ary rules do not.
	rs1, err := CanonicalKary(universe, fdOracle, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rs1.Proves([]deps.Dependency{fdAB(), fdBC()}, fdAC()) {
		t.Errorf("canonical 1-ary rules should not prove A->C")
	}
}

func TestSortDeps(t *testing.T) {
	ds := []deps.Dependency{fdBC(), fdAB()}
	SortDeps(ds)
	if ds[0].Key() != fdAB().Key() {
		t.Errorf("SortDeps order wrong: %v", ds)
	}
}

// The warning at the end of Section 5: the FD-chain rule "if T_k then
// τ_k" has k+1 antecedents none of which can be dropped, yet FDs still
// have a 2-ary complete axiomatization — irredundant high-arity sound
// rules do NOT by themselves preclude a k-ary axiomatization.
func TestSection5Warning(t *testing.T) {
	// T_3: A1->A2, A2->A3, A3->A4; τ_3: A1->A4.
	names := []string{"A1", "A2", "A3", "A4"}
	var T []deps.Dependency
	for i := 0; i+1 < len(names); i++ {
		T = append(T, deps.NewFD("R", deps.Attrs(names[i]), deps.Attrs(names[i+1])))
	}
	tau := deps.NewFD("R", deps.Attrs("A1"), deps.Attrs("A4"))
	rule := Rule{Antecedents: T, Consequence: tau}
	ok, err := rule.Sound(fdOracle)
	if err != nil || !ok {
		t.Fatalf("chain rule should be sound: %v %v", ok, err)
	}
	// No antecedent can be dropped.
	for i := range T {
		rest := append(append([]deps.Dependency{}, T[:i]...), T[i+1:]...)
		ok, err := (Rule{Antecedents: rest, Consequence: tau}).Sound(fdOracle)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("dropping antecedent %d left the rule sound", i)
		}
	}
	// Yet 2-ary rules (Armstrong transitivity, as canonical sound rules
	// over the chain's sentences) derive τ from T.
	universe := append(append([]deps.Dependency{}, T...), tau,
		deps.NewFD("R", deps.Attrs("A1"), deps.Attrs("A3")),
		deps.NewFD("R", deps.Attrs("A2"), deps.Attrs("A4")),
	)
	rs, err := CanonicalKary(universe, fdOracle, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Proves(T, tau) {
		t.Errorf("2-ary canonical rules should derive the chain consequence")
	}
}
