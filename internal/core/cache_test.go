package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

func cacheScheme(t *testing.T) *schema.Database {
	t.Helper()
	return schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
}

func TestFingerprintCanonicalization(t *testing.T) {
	db := cacheScheme(t)
	// Same scheme declared in the other order.
	db2 := schema.MustDatabase(
		schema.MustScheme("S", "C", "D"),
		schema.MustScheme("R", "A", "B"),
	)
	fd1 := deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))
	ind1 := deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("C"))
	goal := deps.NewFD("S", deps.Attrs("C"), deps.Attrs("D"))

	a := QueryFingerprint(db, []deps.Dependency{fd1, ind1}, goal, "finite")
	b := QueryFingerprint(db2, []deps.Dependency{ind1, fd1}, goal, "finite")
	if a != b {
		t.Errorf("fingerprint not canonical under schema/sigma reordering:\n%s\n%s", a, b)
	}

	// Any semantic difference must change the fingerprint.
	if c := QueryFingerprint(db, []deps.Dependency{fd1, ind1}, goal, "unrestricted"); c == a {
		t.Errorf("mode change did not change the fingerprint")
	}
	if c := QueryFingerprint(db, []deps.Dependency{fd1}, goal, "finite"); c == a {
		t.Errorf("sigma change did not change the fingerprint")
	}
	if c := QueryFingerprint(db, []deps.Dependency{fd1, ind1},
		deps.NewFD("S", deps.Attrs("D"), deps.Attrs("C")), "finite"); c == a {
		t.Errorf("goal change did not change the fingerprint")
	}
	if c := QueryFingerprint(db, []deps.Dependency{fd1, ind1}, goal, "finite", "budget=5"); c == a {
		t.Errorf("extras did not change the fingerprint")
	}
}

func TestFingerprintOptions(t *testing.T) {
	a := FingerprintOptions(Options{ChaseMaxTuples: 100, SearchFallback: true})
	b := FingerprintOptions(Options{ChaseMaxTuples: 100, SearchFallback: false})
	if fmt.Sprint(a) == fmt.Sprint(b) {
		t.Errorf("SearchFallback not reflected in fingerprint extras")
	}
	c := FingerprintOptions(Options{ChaseMaxTuples: 200, SearchFallback: true})
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Errorf("ChaseMaxTuples not reflected in fingerprint extras")
	}
}

func TestAnswerCacheHitMissEvict(t *testing.T) {
	reg := obs.New()
	// Capacity 16 = one entry per shard: any second key landing on an
	// occupied shard evicts.
	c := NewAnswerCache(16, 0, reg)
	ans := CachedAnswer{Answer: Answer{Verdict: Yes, Engine: "ind", Proof: "p"}}

	if _, ok := c.Get("k1"); ok {
		t.Fatalf("empty cache hit")
	}
	c.Put("k1", ans)
	got, ok := c.Get("k1")
	if !ok || got.Answer.Verdict != Yes || got.Answer.Proof != "p" {
		t.Fatalf("Get after Put = %+v, %v", got, ok)
	}
	s := reg.Snapshot()
	if s.Counters["cache.misses"] != 1 || s.Counters["cache.hits"] != 1 {
		t.Errorf("counters after one miss + one hit: %v", s.Counters)
	}

	// Fill far beyond capacity; evictions must keep Len bounded.
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("key-%d", i), ans)
	}
	if n := c.Len(); n > 16 {
		t.Errorf("cache grew to %d entries, cap 16", n)
	}
	if reg.Snapshot().Counters["cache.evictions"] == 0 {
		t.Errorf("no evictions counted after overfill")
	}
}

func TestAnswerCacheLRUOrder(t *testing.T) {
	c := NewAnswerCache(16, 0, nil)
	// Find three keys on the same shard so LRU order is observable.
	var keys []string
	want := c.shardFor("probe")
	for i := 0; len(keys) < 3 && i < 10000; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shardFor(k) == want {
			keys = append(keys, k)
		}
	}
	if len(keys) < 3 {
		t.Fatalf("could not find 3 colliding keys")
	}
	a := CachedAnswer{Answer: Answer{Verdict: No}}
	c.Put(keys[0], a)
	c.Put(keys[1], a)
	c.Get(keys[0])    // refresh 0: now 1 is the shard's LRU
	c.Put(keys[2], a) // shard cap is 1... depends on rounding; assert inclusion below
	// With total size 16 and 16 shards, each shard holds 1 entry: the
	// last Put wins the shard.
	if _, ok := c.Get(keys[2]); !ok {
		t.Errorf("most recent entry evicted")
	}
}

func TestAnswerCacheTTL(t *testing.T) {
	c := NewAnswerCache(64, time.Minute, nil)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.Put("k", CachedAnswer{Answer: Answer{Verdict: Yes}})
	if _, ok := c.Get("k"); !ok {
		t.Fatalf("fresh entry missed")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("k"); ok {
		t.Errorf("expired entry served")
	}
	if n := c.Len(); n != 0 {
		t.Errorf("expired entry not reaped on Get: Len=%d", n)
	}
}

func TestAnswerCacheNilSafe(t *testing.T) {
	var c *AnswerCache
	c.Put("k", CachedAnswer{})
	if _, ok := c.Get("k"); ok {
		t.Errorf("nil cache hit")
	}
	if c.Len() != 0 {
		t.Errorf("nil cache Len != 0")
	}
	if NewAnswerCache(0, 0, nil) != nil {
		t.Errorf("size 0 must return the nil caching-off cache")
	}
}

func TestAnswerCachePutStripsObservability(t *testing.T) {
	c := NewAnswerCache(8, 0, nil)
	reg := obs.New()
	reg.Counter("x").Inc()
	c.Put("k", CachedAnswer{Answer: Answer{Verdict: Yes, Metrics: reg.Snapshot(), Trace: reg.StartSpan("s").Snapshot()}})
	got, ok := c.Get("k")
	if !ok {
		t.Fatalf("miss")
	}
	if got.Answer.Metrics != nil || got.Answer.Trace != nil {
		t.Errorf("per-query observability leaked into the cache")
	}
}

func TestAnswerCacheConcurrent(t *testing.T) {
	c := NewAnswerCache(32, 0, obs.New())
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", i%50)
				if i%3 == 0 {
					c.Put(k, CachedAnswer{Answer: Answer{Verdict: Yes}})
				} else {
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 32 {
		t.Errorf("cache exceeded capacity under concurrency: %d", n)
	}
}
