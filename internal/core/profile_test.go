package core

import (
	"testing"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

// TestProfileThreadedThroughEngines pins Options.Profile end to end:
// the chase and IND engines report an Answer.DepProfile with one entry
// per relevant Σ member, the fd engine reports none, and a profile-off
// query carries none.
func TestProfileThreadedThroughEngines(t *testing.T) {
	// Chase dispatch (FDs + a binary IND): Proposition 4.1.
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	s := NewSystem(db)
	if err := s.Add(
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	); err != nil {
		t.Fatal(err)
	}
	goal := deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y"))
	a, err := s.Implies(goal, Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != Yes || a.Engine != "chase" {
		t.Fatalf("answer = %+v", a)
	}
	if a.DepProfile == nil || len(a.DepProfile.Deps) != 2 {
		t.Fatalf("chase DepProfile = %+v, want 2 entries", a.DepProfile)
	}
	off, err := s.Implies(goal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if off.DepProfile != nil {
		t.Errorf("profile-off answer carries a profile")
	}

	// IND dispatch: the Corollary 3.2 search's attribution.
	si := NewSystem(managerDB())
	if err := si.Add(deps.NewIND("MGR", deps.Attrs("NAME", "DEPT"), "EMP", deps.Attrs("NAME", "DEPT"))); err != nil {
		t.Fatal(err)
	}
	ai, err := si.Implies(deps.NewIND("MGR", deps.Attrs("NAME"), "EMP", deps.Attrs("NAME")), Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if ai.Engine != "ind" || ai.DepProfile == nil || len(ai.DepProfile.Deps) != 1 {
		t.Errorf("ind answer = engine %s, profile %+v", ai.Engine, ai.DepProfile)
	}
	if ai.DepProfile.Deps[0].Kind != "ind" || ai.DepProfile.Deps[0].Firings == 0 {
		t.Errorf("ind attribution = %+v", ai.DepProfile.Deps[0])
	}

	// fd dispatch: the closure does not iterate per member — no profile,
	// but also no error.
	sf := NewSystem(schema.MustDatabase(schema.MustScheme("R", "A", "B", "C")))
	if err := sf.Add(deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C"))); err != nil {
		t.Fatal(err)
	}
	af, err := sf.Implies(deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C")), Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if af.Engine != "fd" || af.DepProfile != nil {
		t.Errorf("fd answer = engine %s, profile %+v (want none)", af.Engine, af.DepProfile)
	}
}

// TestCacheStripsDepProfile pins that a profile never enters the answer
// cache: its scan times are wall-clock measurements of one concrete
// run, meaningless when replayed to a later hit.
func TestCacheStripsDepProfile(t *testing.T) {
	c := NewAnswerCache(8, 0, nil)
	prof, err := func() (Answer, error) {
		db := schema.MustDatabase(
			schema.MustScheme("R", "X", "Y"),
			schema.MustScheme("S", "T", "U"),
		)
		s := NewSystem(db)
		if err := s.Add(
			deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
			deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
		); err != nil {
			return Answer{}, err
		}
		return s.Implies(deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y")), Options{Profile: true})
	}()
	if err != nil {
		t.Fatal(err)
	}
	if prof.DepProfile == nil {
		t.Fatal("profiled answer has no profile")
	}
	c.Put("k", CachedAnswer{Answer: prof})
	hit, ok := c.Get("k")
	if !ok {
		t.Fatal("cache miss after Put")
	}
	if hit.Answer.DepProfile != nil {
		t.Errorf("cached answer retains a DepProfile")
	}
}
