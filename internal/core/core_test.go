package core

import (
	"strings"
	"testing"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

func managerDB() *schema.Database {
	return schema.MustDatabase(
		schema.MustScheme("MGR", "NAME", "DEPT"),
		schema.MustScheme("EMP", "NAME", "DEPT", "SAL"),
	)
}

func TestINDDispatchWithProof(t *testing.T) {
	s := NewSystem(managerDB())
	if err := s.Add(deps.NewIND("MGR", deps.Attrs("NAME", "DEPT"), "EMP", deps.Attrs("NAME", "DEPT"))); err != nil {
		t.Fatalf("Add: %v", err)
	}
	a, err := s.Implies(deps.NewIND("MGR", deps.Attrs("NAME"), "EMP", deps.Attrs("NAME")), Options{})
	if err != nil {
		t.Fatalf("Implies: %v", err)
	}
	if a.Verdict != Yes || a.Engine != "ind" {
		t.Errorf("answer = %+v", a)
	}
	if !strings.Contains(a.Proof, "IND2") {
		t.Errorf("proof should use IND2:\n%s", a.Proof)
	}
	// Finite and unrestricted agree for pure INDs.
	af, err := s.ImpliesFinite(deps.NewIND("MGR", deps.Attrs("NAME"), "EMP", deps.Attrs("NAME")), Options{})
	if err != nil || af.Verdict != Yes {
		t.Errorf("finite answer = %+v (%v)", af, err)
	}
	// A non-consequence gets a counterexample.
	a, err = s.Implies(deps.NewIND("EMP", deps.Attrs("NAME"), "MGR", deps.Attrs("NAME")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != No || a.Counterexample == nil {
		t.Errorf("answer = %+v", a)
	}
}

func TestFDDispatchWithProof(t *testing.T) {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	s := NewSystem(db)
	if err := s.Add(
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C")),
	); err != nil {
		t.Fatal(err)
	}
	a, err := s.Implies(deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != Yes || a.Engine != "fd" || a.Proof == "" {
		t.Errorf("answer = %+v", a)
	}
	a, _ = s.Implies(deps.NewFD("R", deps.Attrs("C"), deps.Attrs("A")), Options{})
	if a.Verdict != No {
		t.Errorf("answer = %+v", a)
	}
}

func TestUnaryDispatchShowsTheorem44Gap(t *testing.T) {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	s := NewSystem(db)
	if err := s.Add(
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")),
	); err != nil {
		t.Fatal(err)
	}
	goal := deps.NewIND("R", deps.Attrs("B"), "R", deps.Attrs("A"))
	fin, err := s.ImpliesFinite(goal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unr, err := s.Implies(goal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fin.Engine != "unary" || unr.Engine != "unary" {
		t.Errorf("engines = %s, %s", fin.Engine, unr.Engine)
	}
	if fin.Verdict != Yes || unr.Verdict != No {
		t.Errorf("Theorem 4.4 gap not reproduced: finite=%v unrestricted=%v", fin.Verdict, unr.Verdict)
	}
}

func TestChaseDispatch(t *testing.T) {
	// Proposition 4.1 goes through the general chase engine (binary IND).
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	s := NewSystem(db)
	if err := s.Add(
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	); err != nil {
		t.Fatal(err)
	}
	a, err := s.Implies(deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != Yes || a.Engine != "chase" {
		t.Errorf("answer = %+v", a)
	}
	// An RD goal also routes to the chase.
	a, err = s.Implies(deps.NewRD("R", deps.Attrs("X"), deps.Attrs("Y")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Engine != "chase" || a.Verdict != No || a.Counterexample == nil {
		t.Errorf("RD answer = %+v", a)
	}
}

func TestChaseUnknown(t *testing.T) {
	// A binary cyclic IND makes the chase diverge; with no exact engine
	// applicable, the verdict is honestly Unknown.
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	s := NewSystem(db)
	if err := s.Add(
		deps.NewIND("R", deps.Attrs("A", "B"), "R", deps.Attrs("B", "C")),
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
	); err != nil {
		t.Fatal(err)
	}
	a, err := s.Implies(deps.NewIND("R", deps.Attrs("C"), "R", deps.Attrs("A")), Options{ChaseMaxTuples: 64})
	if err != nil {
		t.Fatal(err)
	}
	if a.Engine != "chase" || a.Verdict != Unknown {
		t.Errorf("answer = %+v, want chase/unknown", a)
	}
}

func TestUnaryEngineHandlesGeneralFDs(t *testing.T) {
	// With FDs of any shape and unary INDs, the KCV engine answers
	// exactly — the chase is not needed even when it would diverge.
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	s := NewSystem(db)
	if err := s.Add(
		deps.NewFD("R", deps.Attrs("A", "C"), deps.Attrs("B")),
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
	); err != nil {
		t.Fatal(err)
	}
	goal := deps.NewIND("R", deps.Attrs("B"), "R", deps.Attrs("A"))
	unr, err := s.Implies(goal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if unr.Engine != "unary" || unr.Verdict != No {
		t.Errorf("unrestricted answer = %+v, want unary/no", unr)
	}
	fin, err := s.ImpliesFinite(goal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fin.Verdict != Yes {
		t.Errorf("finite answer = %+v, want yes (Theorem 4.4 cycle)", fin)
	}
}

func TestAddValidation(t *testing.T) {
	s := NewSystem(managerDB())
	if err := s.Add(deps.NewFD("NOPE", deps.Attrs("A"), deps.Attrs("B"))); err == nil {
		t.Errorf("invalid dependency accepted")
	}
	if err := s.Add(deps.NewEMVD("EMP", deps.Attrs("NAME"), deps.Attrs("DEPT"), deps.Attrs("SAL"))); err == nil {
		t.Errorf("EMVD accepted")
	}
	if err := s.Add(deps.NewIND("MGR", deps.Attrs("NAME"), "EMP", deps.Attrs("NAME"))); err != nil {
		t.Errorf("valid dependency rejected: %v", err)
	}
	if len(s.Sigma()) != 1 {
		t.Errorf("sigma = %v", s.Sigma())
	}
	if s.DB() == nil {
		t.Errorf("DB() nil")
	}
	// Invalid goals are rejected too.
	if _, err := s.Implies(deps.NewFD("NOPE", deps.Attrs("A"), deps.Attrs("B")), Options{}); err == nil {
		t.Errorf("invalid goal accepted")
	}
}

func TestSatisfies(t *testing.T) {
	s := NewSystem(managerDB())
	ind := deps.NewIND("MGR", deps.Attrs("NAME"), "EMP", deps.Attrs("NAME"))
	if err := s.Add(ind); err != nil {
		t.Fatal(err)
	}
	db := data.NewDatabase(s.DB())
	db.MustInsert("MGR", data.Tuple{"hilbert", "math"})
	ok, violated, err := s.Satisfies(db)
	if err != nil {
		t.Fatal(err)
	}
	if ok || violated == nil {
		t.Errorf("empty EMP should violate the IND")
	}
	db.MustInsert("EMP", data.Tuple{"hilbert", "math", "1"})
	ok, _, err = s.Satisfies(db)
	if err != nil || !ok {
		t.Errorf("Satisfies = %v, %v", ok, err)
	}
}

func TestVerdictString(t *testing.T) {
	if Yes.String() != "yes" || No.String() != "no" || Unknown.String() != "unknown" {
		t.Errorf("verdict strings wrong")
	}
}

func TestExplain(t *testing.T) {
	// The unary Theorem 4.4 instance explains with a cardinality cycle.
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	s := NewSystem(db)
	if err := s.Add(
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")),
	); err != nil {
		t.Fatal(err)
	}
	goal := deps.NewIND("R", deps.Attrs("B"), "R", deps.Attrs("A"))
	a, why, err := s.Explain(goal, Options{}, true)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if a.Verdict != Yes || !strings.Contains(why, "cardinality cycle") {
		t.Errorf("unary explanation wrong (%v):\n%s", a.Verdict, why)
	}
	// A pure-IND query explains with the formal proof.
	s2 := NewSystem(managerDB())
	if err := s2.Add(deps.NewIND("MGR", deps.Attrs("NAME", "DEPT"), "EMP", deps.Attrs("NAME", "DEPT"))); err != nil {
		t.Fatal(err)
	}
	_, why, err = s2.Explain(deps.NewIND("MGR", deps.Attrs("NAME"), "EMP", deps.Attrs("NAME")), Options{}, false)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(why, "IND2") {
		t.Errorf("IND explanation missing proof:\n%s", why)
	}
	// A negative answer explains with the counterexample.
	_, why, err = s2.Explain(deps.NewIND("EMP", deps.Attrs("NAME"), "MGR", deps.Attrs("NAME")), Options{}, false)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(why, "counterexample") {
		t.Errorf("negative explanation missing counterexample:\n%s", why)
	}
	// Errors propagate.
	if _, _, err := s.Explain(deps.NewFD("NOPE", deps.Attrs("A"), deps.Attrs("B")), Options{}, false); err == nil {
		t.Errorf("invalid goal should error")
	}
}

func TestSearchFallback(t *testing.T) {
	// An instance where the chase diverges (a cyclic binary IND keeps
	// generating fresh nulls) but a small cyclic finite counterexample
	// exists: with the fallback on, the verdict improves from Unknown to
	// No.
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	s := NewSystem(db)
	if err := s.Add(
		deps.NewIND("R", deps.Attrs("A", "B"), "R", deps.Attrs("B", "C")),
	); err != nil {
		t.Fatal(err)
	}
	goal := deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))
	a, err := s.Implies(goal, Options{ChaseMaxTuples: 48})
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != Unknown {
		t.Fatalf("without fallback: verdict %v, want unknown", a.Verdict)
	}
	a, err = s.Implies(goal, Options{ChaseMaxTuples: 48, SearchFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != No || a.Counterexample == nil {
		t.Fatalf("with fallback: verdict %v, want no + counterexample", a.Verdict)
	}
	// The counterexample is genuine.
	ok, bad, err := a.Counterexample.SatisfiesAll(s.Sigma())
	if err != nil || !ok {
		t.Errorf("counterexample violates %v (%v)", bad, err)
	}
	if sat, _ := a.Counterexample.Satisfies(goal); sat {
		t.Errorf("counterexample satisfies the goal")
	}
}

func TestImpliesAll(t *testing.T) {
	s := NewSystem(managerDB())
	if err := s.Add(deps.NewIND("MGR", deps.Attrs("NAME", "DEPT"), "EMP", deps.Attrs("NAME", "DEPT"))); err != nil {
		t.Fatal(err)
	}
	goals := []deps.Dependency{
		deps.NewIND("MGR", deps.Attrs("NAME"), "EMP", deps.Attrs("NAME")),
		deps.NewIND("MGR", deps.Attrs("DEPT"), "EMP", deps.Attrs("DEPT")),
		deps.NewIND("EMP", deps.Attrs("NAME"), "MGR", deps.Attrs("NAME")),
		deps.NewIND("MGR", deps.Attrs("NAME"), "EMP", deps.Attrs("DEPT")),
	}
	answers, err := s.ImpliesAll(goals, Options{}, false)
	if err != nil {
		t.Fatalf("ImpliesAll: %v", err)
	}
	want := []Verdict{Yes, Yes, No, No}
	for i, a := range answers {
		if a.Verdict != want[i] {
			t.Errorf("goal %d: verdict %v, want %v", i, a.Verdict, want[i])
		}
	}
	// Errors abort the batch.
	if _, err := s.ImpliesAll([]deps.Dependency{deps.NewFD("NOPE", deps.Attrs("A"), deps.Attrs("B"))}, Options{}, false); err == nil {
		t.Errorf("invalid goal should error")
	}
	// Empty batch.
	if out, err := s.ImpliesAll(nil, Options{}, true); err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v %v", out, err)
	}
}

// TestInstrumentedQuery exercises the Options.Obs surface: the answer
// carries a metrics snapshot, a span tree rooted at core.query, and the
// engine cost fields (INDStats / ChaseRounds) the facade used to drop.
func TestInstrumentedQuery(t *testing.T) {
	s := NewSystem(managerDB())
	if err := s.Add(deps.NewIND("MGR", deps.Attrs("NAME", "DEPT"), "EMP", deps.Attrs("NAME", "DEPT"))); err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	a, err := s.Implies(deps.NewIND("MGR", deps.Attrs("NAME"), "EMP", deps.Attrs("NAME")), Options{Obs: reg, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.INDStats == nil || a.INDStats.Visited < 2 || a.INDStats.FrontierPeak < 1 {
		t.Errorf("INDStats not surfaced: %+v", a.INDStats)
	}
	if a.Metrics == nil || a.Metrics.Counters["ind.visited"] == 0 {
		t.Errorf("metrics snapshot missing ind counters: %+v", a.Metrics)
	}
	if a.Trace == nil || a.Trace.Name != "core.query" || len(a.Trace.Children) == 0 {
		t.Errorf("span tree missing: %+v", a.Trace)
	}
	if a.Trace.Children[0].Name != "ind.decide" {
		t.Errorf("child span = %q, want ind.decide", a.Trace.Children[0].Name)
	}
	if a.Trace.Running {
		t.Errorf("exported query span should be ended")
	}
}

// TestInstrumentedChaseQuery checks the chase engine's cost surfaces both
// in the answer fields and in the chase.* counters, with per-round child
// spans under the chase span.
func TestInstrumentedChaseQuery(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	s := NewSystem(db)
	if err := s.Add(
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	); err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	a, err := s.Implies(deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y")), Options{Obs: reg, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Engine != "chase" || a.ChaseRounds == 0 || a.ChaseTuples == 0 {
		t.Errorf("chase cost not surfaced: %+v", a)
	}
	if a.Metrics.Counters["chase.rounds"] != int64(a.ChaseRounds) {
		t.Errorf("chase.rounds counter = %d, answer rounds = %d",
			a.Metrics.Counters["chase.rounds"], a.ChaseRounds)
	}
	if a.Metrics.Counters["chase.tuples_created"] == 0 || a.Metrics.Gauges["chase.tuples_peak"] == 0 {
		t.Errorf("chase tuple instruments missing: %+v", a.Metrics)
	}
	var chaseSpan *obs.SpanSnapshot
	for _, c := range a.Trace.Children {
		if c.Name == "chase.fd" {
			chaseSpan = c
		}
	}
	if chaseSpan == nil || len(chaseSpan.Children) == 0 || chaseSpan.Children[0].Name != "round" {
		t.Errorf("chase span tree wrong: %+v", a.Trace)
	}
}

// TestUninstrumentedAnswerHasNoSnapshot pins the zero-cost default.
func TestUninstrumentedAnswerHasNoSnapshot(t *testing.T) {
	s := NewSystem(managerDB())
	if err := s.Add(deps.NewIND("MGR", deps.Attrs("NAME", "DEPT"), "EMP", deps.Attrs("NAME", "DEPT"))); err != nil {
		t.Fatal(err)
	}
	a, err := s.Implies(deps.NewIND("MGR", deps.Attrs("NAME"), "EMP", deps.Attrs("NAME")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != nil || a.Trace != nil {
		t.Errorf("uninstrumented answer should carry no snapshot: %+v", a)
	}
	if a.INDStats == nil {
		t.Errorf("INDStats should be surfaced even without a registry")
	}
}
