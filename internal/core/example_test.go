package core_test

import (
	"fmt"

	"indfd/internal/core"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

// The Theorem 4.4 gap through the facade: the same goal is finitely
// implied but not unrestrictedly implied.
func ExampleSystem_ImpliesFinite() {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	sys := core.NewSystem(db)
	if err := sys.Add(
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")),
	); err != nil {
		panic(err)
	}
	goal := deps.NewIND("R", deps.Attrs("B"), "R", deps.Attrs("A"))
	fin, _ := sys.ImpliesFinite(goal, core.Options{})
	unr, _ := sys.Implies(goal, core.Options{})
	fmt.Printf("finite: %v, unrestricted: %v\n", fin.Verdict, unr.Verdict)
	// Output: finite: yes, unrestricted: no
}
