// Package core is the public facade of the library: a System holds a
// database scheme and a set Σ of dependencies and answers implication
// queries, dispatching to the strongest engine that is exact for the
// fragment at hand:
//
//   - Σ and goal all INDs: the Section 3 decision procedure — exact for
//     both finite and unrestricted implication (Theorem 3.1), with formal
//     IND1–IND3 proofs and finite counterexamples;
//   - Σ and goal all FDs: attribute-set closure — exact, with Armstrong
//     derivations;
//   - Σ and goal made of FDs (any shape) and UNARY INDs: the KCV-style
//     engine — exact for both semantics, exhibiting the Theorem 4.4 gap;
//   - anything else: the chase — sound but, the general problem being
//     undecidable (Mitchell; Chandra–Vardi), necessarily incomplete; the
//     verdict is three-valued and budgeted.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"indfd/internal/chase"
	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/fd"
	"indfd/internal/ind"
	"indfd/internal/obs"
	"indfd/internal/schema"
	"indfd/internal/search"
	"indfd/internal/unary"
)

// Verdict is a three-valued implication answer.
type Verdict int

const (
	// Unknown means the engine could not decide within its budget (only
	// possible for the general FD+IND fragment, which is undecidable).
	Unknown Verdict = iota
	// Yes means Σ implies the goal.
	Yes
	// No means Σ does not imply the goal.
	No
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Yes:
		return "yes"
	case No:
		return "no"
	default:
		return "unknown"
	}
}

// Answer is the result of an implication query.
type Answer struct {
	Verdict Verdict
	// Engine names the engine that produced the verdict: "ind", "fd",
	// "unary", or "chase".
	Engine string
	// Proof is a human-readable derivation when the verdict is Yes and
	// the engine produces proofs (ind, fd).
	Proof string
	// Counterexample is a finite database satisfying Σ and violating the
	// goal, when the engine produces one (Verdict == No, engines ind and
	// chase; for unary No verdicts under finite semantics no finite
	// counterexample generator is provided).
	Counterexample *data.Database
	// INDStats is the Corollary 3.2 search's work (expanded / generated /
	// visited expressions, frontier peak, chain length) whenever the ind
	// engine ran — including the general engine's IND fast path.
	INDStats *ind.Stats
	// ChaseRounds and ChaseTuples report the chase engine's work when it
	// ran: rounds executed and final tableau size.
	ChaseRounds int
	ChaseTuples int
	// Derivation is the chase's minimal proof DAG, set when the chase
	// answered Yes and Options.Provenance was on: leaves are the tableau's
	// seed tuples, internal nodes are the FD/IND/RD firings that reach the
	// goal. Render it with String or DOT, check it with Verify.
	Derivation *chase.Derivation
	// Metrics is a snapshot of Options.Obs taken when the query finished,
	// nil when no registry was supplied. With a registry shared across
	// queries the counters are cumulative.
	Metrics *obs.Snapshot
	// Trace is this query's span tree (engine dispatch down to chase
	// rounds), nil when no registry was supplied.
	Trace *obs.SpanSnapshot
	// DepProfile is the per-dependency cost attribution, set when
	// Options.Profile was on and the engine that ran supports profiling
	// (chase and the Corollary 3.2 IND search; the polynomial fd/unary
	// closures do not iterate per member and report none). It is set on
	// deadline errors too, attributing the partial work.
	DepProfile *obs.DepProfile
}

// Options configures a query.
type Options struct {
	// ChaseMaxTuples bounds the chase when the general engine is used.
	ChaseMaxTuples int
	// SearchFallback enables a bounded finite-counterexample search when
	// the chase is inconclusive; a hit turns Unknown into No.
	SearchFallback bool
	// Provenance makes the chase record per-tuple and per-union origins
	// and extract a Derivation on Yes verdicts. It never changes
	// verdicts, traces, or counters (differential tests pin this), and
	// costs nothing when off; the ind/fd engines produce proofs
	// unconditionally and ignore it.
	Provenance bool
	// Profile makes the chase and IND engines attribute their work —
	// firings, tuples produced, tuples scanned, scan time, rounds active
	// — to individual members of Σ, reported as Answer.DepProfile. Like
	// Provenance it never changes verdicts, traces, or counters, and
	// costs nothing when off.
	Profile bool
	// Obs, when non-nil, collects every engine's counters, gauges and
	// histograms for this query and gives the Answer a Metrics snapshot
	// and a span tree. A nil registry makes instrumentation free (see
	// internal/obs).
	Obs *obs.Registry
	// Ctx, when non-nil, imposes a cooperative deadline on the engines
	// whose cost the paper proves can blow up: the chase (checked once
	// per round), the Corollary 3.2 IND search (checked every few
	// expansions) and the counterexample search (checked per candidate).
	// On cancellation the query returns the context's error together
	// with an Answer carrying the partial work counters (ChaseRounds,
	// ChaseTuples, INDStats) — a resident server turns this into a 503
	// with partial stats instead of a wedged worker. The polynomial fd
	// and unary engines always run to completion. A nil Ctx never
	// cancels.
	Ctx context.Context
	// ChaseWorkers shards the chase's delta scans across a bounded worker
	// pool when a pass is large enough (see chase.Options.Workers).
	// Verdicts, traces and counters are bit-identical to the sequential
	// engine at any worker count; 0 or 1 keeps the chase sequential.
	ChaseWorkers int
	// ChasePool, when non-nil, recycles chase engine state across queries
	// keyed by a (schema, sigma) fingerprint, making warm repeat queries
	// nearly allocation-free (see chase.EnginePool). Safe to share across
	// concurrent queries.
	ChasePool *chase.EnginePool
}

// System is a database scheme plus a dependency set Σ.
type System struct {
	db    *schema.Database
	sigma *deps.Set
}

// NewSystem creates a System over the scheme.
func NewSystem(db *schema.Database) *System {
	return &System{db: db, sigma: deps.NewSet()}
}

// DB returns the database scheme.
func (s *System) DB() *schema.Database { return s.db }

// Sigma returns the current dependency set in insertion order.
func (s *System) Sigma() []deps.Dependency { return s.sigma.All() }

// Add validates and inserts dependencies into Σ. EMVDs are not accepted
// (they have their own engine in the emvd package).
func (s *System) Add(ds ...deps.Dependency) error {
	for _, d := range ds {
		if d.Kind() == deps.KindEMVD {
			return fmt.Errorf("core: EMVDs are not supported in a System; use the emvd package")
		}
		if err := d.Validate(s.db); err != nil {
			return err
		}
	}
	s.sigma.Add(ds...)
	return nil
}

// relevant returns the members of Σ over relations in the same connected
// component as the goal's relations, where two relations are connected
// when an IND of Σ spans them. Dependencies outside the component cannot
// affect the implication: a counterexample over the component extends to
// the full scheme with empty relations elsewhere, and any model of Σ
// restricts to a model of the component. Restricting keeps queries about
// one part of a large scheme in the strongest exact engine.
func (s *System) relevant(goal deps.Dependency) []deps.Dependency {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			if !ok {
				parent[x] = x
			}
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, d := range s.sigma.All() {
		if ind, ok := d.(deps.IND); ok {
			union(ind.LRel, ind.RRel)
		}
	}
	goalRels := map[string]bool{}
	switch g := goal.(type) {
	case deps.FD:
		goalRels[find(g.Rel)] = true
	case deps.RD:
		goalRels[find(g.Rel)] = true
	case deps.IND:
		goalRels[find(g.LRel)] = true
		goalRels[find(g.RRel)] = true
	default:
		return s.sigma.All()
	}
	var out []deps.Dependency
	for _, d := range s.sigma.All() {
		var in bool
		switch dd := d.(type) {
		case deps.FD:
			in = goalRels[find(dd.Rel)]
		case deps.RD:
			in = goalRels[find(dd.Rel)]
		case deps.IND:
			in = goalRels[find(dd.LRel)] || goalRels[find(dd.RRel)]
		}
		if in {
			out = append(out, d)
		}
	}
	return out
}

// classify inspects the relevant part of Σ plus the goal and picks an
// engine.
func (s *System) classify(sigma []deps.Dependency, goal deps.Dependency) string {
	allINDs, allFDs, allUnary := true, true, true
	consider := append([]deps.Dependency{}, sigma...)
	consider = append(consider, goal)
	for _, d := range consider {
		switch dd := d.(type) {
		case deps.IND:
			allFDs = false
			if dd.Width() != 1 {
				allUnary = false
			}
		case deps.FD:
			// FDs of any shape stay in the unary (KCV) fragment.
			allINDs = false
			_ = dd
		default:
			allINDs, allFDs, allUnary = false, false, false
		}
	}
	switch {
	case allINDs:
		return "ind"
	case allFDs:
		return "fd"
	case allUnary:
		return "unary"
	default:
		return "chase"
	}
}

// Implies answers whether Σ implies the goal over all (possibly infinite)
// databases.
func (s *System) Implies(goal deps.Dependency, opt Options) (Answer, error) {
	return s.query(goal, opt, false)
}

// ImpliesFinite answers whether Σ implies the goal over finite databases.
// For pure INDs and pure FDs this coincides with Implies (Theorem 3.1 and
// the classical FD theory); for unary FDs+INDs the KCV cycle rule is
// applied; for the general fragment the chase gives Yes answers (sound
// for finite implication too) and finite counterexamples give No answers,
// with Unknown otherwise.
func (s *System) ImpliesFinite(goal deps.Dependency, opt Options) (Answer, error) {
	return s.query(goal, opt, true)
}

func (s *System) query(goal deps.Dependency, opt Options, finite bool) (Answer, error) {
	if err := goal.Validate(s.db); err != nil {
		return Answer{}, err
	}
	relevant := s.relevant(goal)
	engine := s.classify(relevant, goal)
	sp := opt.Obs.StartSpan("core.query")
	sp.SetAttr("goal", goal.String())
	if finite {
		sp.SetAttr("mode", "finite")
	} else {
		sp.SetAttr("mode", "unrestricted")
	}
	sp.SetAttr("dispatch", engine)
	sp.SetInt("sigma_relevant", int64(len(relevant)))

	var a Answer
	var err error
	switch engine {
	case "ind":
		a, err = s.queryIND(relevant, goal.(deps.IND), opt, sp)
	case "fd":
		a, err = s.queryFD(relevant, goal.(deps.FD), opt, sp)
	case "unary":
		a, err = s.queryUnary(relevant, goal, opt, finite, sp)
	default:
		a, err = s.queryChase(relevant, goal, opt, finite, sp)
	}
	if err != nil {
		// a may carry partial work counters (a cancelled chase or IND
		// search); thread the metrics snapshot through so callers can
		// report what was spent before the deadline hit.
		sp.SetAttr("error", err.Error())
		sp.End()
		if opt.Obs != nil {
			a.Metrics = opt.Obs.Snapshot()
			a.Trace = sp.Snapshot()
		}
		return a, err
	}
	// a.Engine can differ from the dispatch class: the general engine's
	// fast paths answer as "ind" or "fd".
	sp.SetAttr("engine", a.Engine)
	sp.SetAttr("verdict", a.Verdict.String())
	sp.End()
	if opt.Obs != nil {
		a.Metrics = opt.Obs.Snapshot()
		a.Trace = sp.Snapshot()
	}
	return a, nil
}

// decideIND dispatches to the plain or the profiled Corollary 3.2
// search; the profiled run is verdict- and stats-identical.
func decideIND(opt Options, db *schema.Database, sigma []deps.IND, goal deps.IND) (ind.Result, error) {
	if opt.Profile {
		return ind.DecideProfile(opt.Ctx, db, sigma, goal)
	}
	return ind.DecideCtx(opt.Ctx, db, sigma, goal)
}

func (s *System) queryIND(relevant []deps.Dependency, goal deps.IND, opt Options, sp *obs.Span) (Answer, error) {
	sigma := deps.NewSet(relevant...).INDs()
	dsp := sp.StartSpan("ind.decide")
	res, err := decideIND(opt, s.db, sigma, goal)
	dsp.SetInt("expanded", int64(res.Stats.Expanded))
	dsp.SetInt("visited", int64(res.Stats.Visited))
	dsp.End()
	res.Stats.Record(opt.Obs)
	if err != nil {
		// A cancelled search carries its partial stats out with the error.
		return Answer{Verdict: Unknown, Engine: "ind", INDStats: &res.Stats, DepProfile: res.Profile}, err
	}
	if res.Implied {
		p, err := ind.FromChain(res.Chain, res.Via)
		if err != nil {
			return Answer{}, err
		}
		return Answer{Verdict: Yes, Engine: "ind", Proof: p.String(), INDStats: &res.Stats, DepProfile: res.Profile}, nil
	}
	csp := sp.StartSpan("ind.counterexample")
	ce, _, err := ind.Counterexample(s.db, sigma, goal)
	csp.End()
	if err != nil {
		return Answer{}, err
	}
	return Answer{Verdict: No, Engine: "ind", Counterexample: ce, INDStats: &res.Stats, DepProfile: res.Profile}, nil
}

func (s *System) queryFD(relevant []deps.Dependency, goal deps.FD, opt Options, sp *obs.Span) (Answer, error) {
	sigma := deps.NewSet(relevant...).FDs()
	psp := sp.StartSpan("fd.prove")
	p, ok := fd.ProveObs(sigma, goal, opt.Obs)
	psp.End()
	if ok {
		return Answer{Verdict: Yes, Engine: "fd", Proof: p.String()}, nil
	}
	return Answer{Verdict: No, Engine: "fd"}, nil
}

func (s *System) queryUnary(relevant []deps.Dependency, goal deps.Dependency, opt Options, finite bool, sp *obs.Span) (Answer, error) {
	usp := sp.StartSpan("unary.closure")
	sys, err := unary.NewObs(s.db, relevant, opt.Obs)
	usp.End()
	if err != nil {
		return Answer{}, err
	}
	var ok bool
	if finite {
		ok, err = sys.ImpliesFinite(goal)
	} else {
		ok, err = sys.ImpliesUnrestricted(goal)
	}
	if err != nil {
		return Answer{}, err
	}
	if ok {
		return Answer{Verdict: Yes, Engine: "unary"}, nil
	}
	return Answer{Verdict: No, Engine: "unary"}, nil
}

func (s *System) queryChase(relevant []deps.Dependency, goal deps.Dependency, opt Options, finite bool, sp *obs.Span) (Answer, error) {
	relSet := deps.NewSet(relevant...)
	// Fast path: a goal already provable from the same-class fragment of
	// Σ is implied a fortiori, and those engines produce formal proofs.
	switch g := goal.(type) {
	case deps.IND:
		dsp := sp.StartSpan("ind.decide")
		res, err := decideIND(opt, s.db, relSet.INDs(), g)
		dsp.End()
		res.Stats.Record(opt.Obs)
		if err != nil {
			return Answer{Verdict: Unknown, Engine: "ind", INDStats: &res.Stats, DepProfile: res.Profile}, err
		}
		if res.Implied {
			p, err := ind.FromChain(res.Chain, res.Via)
			if err != nil {
				return Answer{}, err
			}
			return Answer{Verdict: Yes, Engine: "ind", Proof: p.String(), INDStats: &res.Stats, DepProfile: res.Profile}, nil
		}
	case deps.FD:
		psp := sp.StartSpan("fd.prove")
		p, ok := fd.ProveObs(relSet.FDs(), g, opt.Obs)
		psp.End()
		if ok {
			return Answer{Verdict: Yes, Engine: "fd", Proof: p.String()}, nil
		}
	}
	res, err := chase.Implies(s.db, relevant, goal, chase.Options{
		MaxTuples: opt.ChaseMaxTuples, Obs: opt.Obs, Span: sp, Ctx: opt.Ctx,
		Provenance: opt.Provenance, Profile: opt.Profile,
		Workers: opt.ChaseWorkers, Pool: opt.ChasePool,
	})
	if err != nil {
		// A cancelled chase returns the rounds and tuples it managed —
		// the partial stats a server reports alongside the 503.
		return Answer{Verdict: Unknown, Engine: "chase",
			ChaseRounds: res.Rounds, ChaseTuples: res.Tuples, DepProfile: res.Profile}, err
	}
	cost := Answer{ChaseRounds: res.Rounds, ChaseTuples: res.Tuples, DepProfile: res.Profile}
	switch res.Verdict {
	case chase.Implied:
		// Chase derivations are sound for unrestricted implication, hence
		// for finite implication as well.
		cost.Verdict, cost.Engine = Yes, "chase"
		cost.Derivation = res.Derivation
		return cost, nil
	case chase.NotImplied:
		// The counterexample is finite, so it refutes both semantics.
		cost.Verdict, cost.Engine, cost.Counterexample = No, "chase", res.Counterexample
		return cost, nil
	default:
		_ = finite
		if opt.SearchFallback {
			ce, found, err := search.Counterexample(s.db, relevant, goal, search.Options{
				Domain: 3, MaxTuples: 3, RandomTrials: 300,
				Obs: opt.Obs, Span: sp, Ctx: opt.Ctx,
			})
			if err != nil {
				cost.Verdict, cost.Engine = Unknown, "chase+search"
				return cost, err
			}
			if found {
				cost.Verdict, cost.Engine, cost.Counterexample = No, "chase+search", ce
				return cost, nil
			}
		}
		cost.Verdict, cost.Engine = Unknown, "chase"
		return cost, nil
	}
}

// Satisfies reports whether a concrete database obeys every dependency of
// Σ, returning the first violated one otherwise.
func (s *System) Satisfies(db *data.Database) (bool, deps.Dependency, error) {
	return db.SatisfiesAll(s.sigma.All())
}

// Explain answers an implication query with a human-readable account of
// why: a formal derivation for the ind/fd engines, the chase's
// provenance derivation for chase Yes verdicts when Options.Provenance
// is set, the cardinality-cycle explanation for the unary engine (the
// Theorem 4.4 counting argument), or the counterexample for negative
// answers. The string is empty when the engine has nothing beyond the
// verdict (chase Yes without provenance, or Unknown).
func (s *System) Explain(goal deps.Dependency, opt Options, finite bool) (Answer, string, error) {
	var a Answer
	var err error
	if finite {
		a, err = s.ImpliesFinite(goal, opt)
	} else {
		a, err = s.Implies(goal, opt)
	}
	if err != nil {
		return a, "", err
	}
	switch {
	case a.Proof != "":
		return a, a.Proof, nil
	case a.Derivation != nil:
		return a, a.Derivation.String(), nil
	case a.Engine == "unary":
		sys, err := unary.New(s.db, s.relevant(goal))
		if err != nil {
			return a, "", err
		}
		ex, err := sys.Explain(goal)
		if err != nil {
			return a, "", err
		}
		return a, ex.String(), nil
	case a.Counterexample != nil:
		return a, "counterexample:\n" + a.Counterexample.String(), nil
	default:
		return a, "", nil
	}
}

// ImpliesAll answers many goals concurrently (the System is read-only
// during queries, so goals can be decided in parallel). Results are
// returned in the goals' order; the first error aborts the batch.
func (s *System) ImpliesAll(goals []deps.Dependency, opt Options, finite bool) ([]Answer, error) {
	answers := make([]Answer, len(goals))
	errs := make([]error, len(goals))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(goals) {
		workers = len(goals)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				answers[i], errs[i] = s.query(goals[i], opt, finite)
			}
		}()
	}
	for i := range goals {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return answers, nil
}
