// Package core is the public facade of the library: a System holds a
// database scheme and a set Σ of dependencies and answers implication
// queries, dispatching to the strongest engine that is exact for the
// fragment at hand:
//
//   - Σ and goal all INDs: the Section 3 decision procedure — exact for
//     both finite and unrestricted implication (Theorem 3.1), with formal
//     IND1–IND3 proofs and finite counterexamples;
//   - Σ and goal all FDs: attribute-set closure — exact, with Armstrong
//     derivations;
//   - Σ and goal made of FDs (any shape) and UNARY INDs: the KCV-style
//     engine — exact for both semantics, exhibiting the Theorem 4.4 gap;
//   - anything else: the chase — sound but, the general problem being
//     undecidable (Mitchell; Chandra–Vardi), necessarily incomplete; the
//     verdict is three-valued and budgeted.
package core

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"indfd/internal/chase"
	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/fd"
	"indfd/internal/ind"
	"indfd/internal/obs"
	"indfd/internal/schema"
	"indfd/internal/search"
	"indfd/internal/unary"
)

// Verdict is a three-valued implication answer.
type Verdict int

const (
	// Unknown means the engine could not decide within its budget (only
	// possible for the general FD+IND fragment, which is undecidable).
	Unknown Verdict = iota
	// Yes means Σ implies the goal.
	Yes
	// No means Σ does not imply the goal.
	No
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Yes:
		return "yes"
	case No:
		return "no"
	default:
		return "unknown"
	}
}

// Answer is the result of an implication query.
type Answer struct {
	Verdict Verdict
	// Engine names the engine that produced the verdict: "ind", "fd",
	// "unary", or "chase".
	Engine string
	// Proof is a human-readable derivation when the verdict is Yes and
	// the engine produces proofs (ind, fd).
	Proof string
	// Counterexample is a finite database satisfying Σ and violating the
	// goal, when the engine produces one (Verdict == No, engines ind and
	// chase; for unary No verdicts under finite semantics no finite
	// counterexample generator is provided).
	Counterexample *data.Database
	// INDStats is the Corollary 3.2 search's work (expanded / generated /
	// visited expressions, frontier peak, chain length) whenever the ind
	// engine ran — including the general engine's IND fast path.
	INDStats *ind.Stats
	// ChaseRounds and ChaseTuples report the chase engine's work when it
	// ran: rounds executed and final tableau size.
	ChaseRounds int
	ChaseTuples int
	// Derivation is the chase's minimal proof DAG, set when the chase
	// answered Yes and Options.Provenance was on: leaves are the tableau's
	// seed tuples, internal nodes are the FD/IND/RD firings that reach the
	// goal. Render it with String or DOT, check it with Verify.
	Derivation *chase.Derivation
	// Metrics is a snapshot of Options.Obs taken when the query finished,
	// present only when Options.Metrics asked for it. With a registry
	// shared across queries the counters are cumulative — and on a
	// long-lived registry the snapshot deep-copies every retained span
	// tree, which is why it is opt-in: a server answering thousands of
	// goals against one registry must not pay that copy per goal.
	Metrics *obs.Snapshot
	// Trace is this query's span tree (engine dispatch down to chase
	// rounds), nil when no registry was supplied.
	Trace *obs.SpanSnapshot
	// DepProfile is the per-dependency cost attribution, set when
	// Options.Profile was on and the engine that ran supports profiling
	// (chase and the Corollary 3.2 IND search; the polynomial fd/unary
	// closures do not iterate per member and report none). It is set on
	// deadline errors too, attributing the partial work.
	DepProfile *obs.DepProfile
	// Footprint lists the Σ members the chase actually touched (fired or
	// scanned), in their String() form, when Options.Footprint or
	// Options.Profile was on and the chase ran. The answer cache derives
	// per-member invalidation tags from it (see AnswerFootprint); it is
	// deterministic for a given query, unlike Metrics/Trace/DepProfile.
	Footprint []string
}

// Options configures a query.
type Options struct {
	// ChaseMaxTuples bounds the chase when the general engine is used.
	ChaseMaxTuples int
	// SearchFallback enables a bounded finite-counterexample search when
	// the chase is inconclusive; a hit turns Unknown into No.
	SearchFallback bool
	// Provenance makes the chase record per-tuple and per-union origins
	// and extract a Derivation on Yes verdicts. It never changes
	// verdicts, traces, or counters (differential tests pin this), and
	// costs nothing when off; the ind/fd engines produce proofs
	// unconditionally and ignore it.
	Provenance bool
	// Profile makes the chase and IND engines attribute their work —
	// firings, tuples produced, tuples scanned, scan time, rounds active
	// — to individual members of Σ, reported as Answer.DepProfile. Like
	// Provenance it never changes verdicts, traces, or counters, and
	// costs nothing when off.
	Profile bool
	// Footprint makes the chase record which members of Σ it touched
	// (Answer.Footprint) without the profiler's scan timers — cheap
	// enough for every cacheable request. Like Profile it never changes
	// verdicts, traces, or counters.
	Footprint bool
	// Obs, when non-nil, collects every engine's counters, gauges and
	// histograms for this query and gives the Answer a span tree. A nil
	// registry makes instrumentation free (see internal/obs).
	Obs *obs.Registry
	// Metrics additionally gives the Answer a full registry snapshot
	// (counters, gauges, histograms, retained spans) when Obs is set.
	// The snapshot is O(everything the registry holds), not O(this
	// query), so callers that track deltas themselves leave it off.
	Metrics bool
	// Ctx, when non-nil, imposes a cooperative deadline on the engines
	// whose cost the paper proves can blow up: the chase (checked once
	// per round), the Corollary 3.2 IND search (checked every few
	// expansions) and the counterexample search (checked per candidate).
	// On cancellation the query returns the context's error together
	// with an Answer carrying the partial work counters (ChaseRounds,
	// ChaseTuples, INDStats) — a resident server turns this into a 503
	// with partial stats instead of a wedged worker. The polynomial fd
	// and unary engines always run to completion. A nil Ctx never
	// cancels.
	Ctx context.Context
	// ChaseWorkers shards the chase's delta scans across a bounded worker
	// pool when a pass is large enough (see chase.Options.Workers).
	// Verdicts, traces and counters are bit-identical to the sequential
	// engine at any worker count; 0 or 1 keeps the chase sequential.
	ChaseWorkers int
	// ChasePool, when non-nil, recycles chase engine state across queries
	// keyed by a (schema, sigma) fingerprint, making warm repeat queries
	// nearly allocation-free (see chase.EnginePool). Safe to share across
	// concurrent queries.
	ChasePool *chase.EnginePool
}

// compIndex is one IND-connected component of Σ with everything a query
// over it needs precomputed: the members (Σ insertion order), their
// kind projections, their sorted canonical keys (the fingerprint body),
// and the String()→Key() map the footprint tagger walks. Built once per
// Add, read by every query.
type compIndex struct {
	members []deps.Dependency
	fds     []deps.FD
	inds    []deps.IND
	keys    []string          // member Key()s, sorted
	strKey  map[string]string // member String() → Key()
	// provers holds the compiled FD closure per relation (see
	// fd.Prover), present on the indexes Add precomputes; the throwaway
	// indexes built per bridging-IND query skip the compile because an
	// IND goal never consults an FD prover.
	provers map[string]*fd.Prover
	// Fragment flags over the members alone (the goal folds in at
	// dispatch): vacuously true when the component is empty.
	allINDs, allFDs, allUnary bool
}

func buildCompIndex(members []deps.Dependency) *compIndex {
	ci := &compIndex{
		members: slices.Clip(members),
		keys:    make([]string, 0, len(members)),
		strKey:  make(map[string]string, len(members)),
		allINDs: true, allFDs: true, allUnary: true,
	}
	for _, d := range members {
		k := d.Key()
		ci.keys = append(ci.keys, k)
		ci.strKey[d.String()] = k
		switch dd := d.(type) {
		case deps.FD:
			ci.fds = append(ci.fds, dd)
			ci.allINDs = false
		case deps.IND:
			ci.inds = append(ci.inds, dd)
			ci.allFDs = false
			if dd.Width() != 1 {
				ci.allUnary = false
			}
		default:
			ci.allINDs, ci.allFDs, ci.allUnary = false, false, false
		}
	}
	slices.Sort(ci.keys)
	return ci
}

// compile builds the per-relation FD provers; called on the indexes
// that outlive a single query (everything reindex stores).
func (ci *compIndex) compile() *compIndex {
	ci.provers = make(map[string]*fd.Prover)
	for _, f := range ci.fds {
		if _, ok := ci.provers[f.Rel]; !ok {
			ci.provers[f.Rel] = fd.NewProver(f.Rel, ci.fds)
		}
	}
	return ci
}

// prover returns the compiled FD closure for rel; nil (a valid empty
// prover) when rel has no FDs. An index that skipped compiling — the
// per-query bridging case — compiles on the spot rather than answer
// from an empty FD set.
func (ci *compIndex) prover(rel string) *fd.Prover {
	if p, ok := ci.provers[rel]; ok {
		return p
	}
	if ci.provers == nil && len(ci.fds) > 0 {
		return fd.NewProver(rel, ci.fds)
	}
	return nil
}

// emptyComp is the index of a goal component Σ says nothing about.
var emptyComp = buildCompIndex(nil).compile()

// System is a database scheme plus a dependency set Σ.
type System struct {
	db    *schema.Database
	sigma *deps.Set
	// comp maps every relation Σ names to its IND-connected component
	// root, and comps holds each component's precompiled index. Both
	// are rebuilt eagerly by Add — queries only read them, so a
	// compiled System is safe to share across goroutines (registry
	// entries and batch workers do).
	comp  map[string]string
	comps map[string]*compIndex
}

// NewSystem creates a System over the scheme.
func NewSystem(db *schema.Database) *System {
	return &System{db: db, sigma: deps.NewSet()}
}

// DB returns the database scheme.
func (s *System) DB() *schema.Database { return s.db }

// Sigma returns the current dependency set in insertion order.
func (s *System) Sigma() []deps.Dependency { return s.sigma.All() }

// Add validates and inserts dependencies into Σ. EMVDs are not accepted
// (they have their own engine in the emvd package).
func (s *System) Add(ds ...deps.Dependency) error {
	for _, d := range ds {
		if d.Kind() == deps.KindEMVD {
			return fmt.Errorf("core: EMVDs are not supported in a System; use the emvd package")
		}
		if err := d.Validate(s.db); err != nil {
			return err
		}
	}
	s.sigma.Add(ds...)
	s.reindex()
	return nil
}

// reindex rebuilds the IND-connectivity component index after Σ changed.
func (s *System) reindex() {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			if !ok {
				parent[x] = x
			}
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	for _, d := range s.sigma.All() {
		if ind, ok := d.(deps.IND); ok {
			ra, rb := find(ind.LRel), find(ind.RRel)
			if ra != rb {
				parent[rb] = ra
			}
		}
	}
	s.comp = make(map[string]string)
	byRoot := make(map[string][]deps.Dependency)
	rootOf := func(rel string) string {
		root := find(rel)
		s.comp[rel] = root
		return root
	}
	for _, d := range s.sigma.All() {
		var root string
		switch dd := d.(type) {
		case deps.FD:
			root = rootOf(dd.Rel)
		case deps.RD:
			root = rootOf(dd.Rel)
		case deps.IND:
			root = rootOf(dd.LRel)
			rootOf(dd.RRel)
		default:
			continue
		}
		byRoot[root] = append(byRoot[root], d)
	}
	s.comps = make(map[string]*compIndex, len(byRoot))
	for root, members := range byRoot {
		s.comps[root] = buildCompIndex(members).compile()
	}
}

// relevantIndex returns the precompiled component index for the goal's
// IND-connected component. Goals bridging two components (an IND whose
// sides no Σ member connects) get a merged index built on the fly.
func (s *System) relevantIndex(goal deps.Dependency) *compIndex {
	rootOf := func(rel string) string {
		if root, ok := s.comp[rel]; ok {
			return root
		}
		return rel
	}
	lookup := func(root string) *compIndex {
		if ci, ok := s.comps[root]; ok {
			return ci
		}
		return emptyComp
	}
	switch g := goal.(type) {
	case deps.FD:
		return lookup(rootOf(g.Rel))
	case deps.RD:
		return lookup(rootOf(g.Rel))
	case deps.IND:
		ra, rb := rootOf(g.LRel), rootOf(g.RRel)
		if ra == rb {
			return lookup(ra)
		}
		a, b := lookup(ra), lookup(rb)
		if len(a.members) == 0 {
			return b
		}
		if len(b.members) == 0 {
			return a
		}
		// Merge in Σ insertion order so engine behavior matches a Σ
		// restricted to the two components.
		merged := make([]deps.Dependency, 0, len(a.members)+len(b.members))
		want := map[string]bool{ra: true, rb: true}
		for _, d := range s.sigma.All() {
			var root string
			switch dd := d.(type) {
			case deps.FD:
				root = rootOf(dd.Rel)
			case deps.RD:
				root = rootOf(dd.Rel)
			case deps.IND:
				root = rootOf(dd.LRel)
			}
			if want[root] {
				merged = append(merged, d)
			}
		}
		return buildCompIndex(merged)
	default:
		return buildCompIndex(s.sigma.All())
	}
}

// relevant returns the members of Σ over relations in the same connected
// component as the goal's relations, where two relations are connected
// when an IND of Σ spans them. Dependencies outside the component cannot
// affect the implication: a counterexample over the component extends to
// the full scheme with empty relations elsewhere, and any model of Σ
// restricts to a model of the component. Restricting keeps queries about
// one part of a large scheme in the strongest exact engine.
func (s *System) relevant(goal deps.Dependency) []deps.Dependency {
	// The component index is precomputed by Add; a relation no IND
	// touches roots its own singleton component. The returned slice is
	// shared and must be treated as read-only by every engine.
	return s.relevantIndex(goal).members
}

// Relevant is the exported view of relevant: the members of Σ that can
// affect an implication query for goal (the IND-connected component of
// the goal's relations). The answer cache keys on exactly this set —
// the Answer is a function of (scheme, Relevant(goal), goal, mode,
// options) — so edits outside the component leave cached keys valid.
func (s *System) Relevant(goal deps.Dependency) []deps.Dependency {
	return s.relevant(goal)
}

// AnswerFootprint maps an answer to the canonical Key()s of the scope
// members it depended on, for the cache's per-member invalidation
// index. Precision ladder: the provenance derivation's rule set (Yes
// verdicts with Provenance on) ⊆ the chase footprint (members that
// fired or scanned) ⊆ the profiler's fired/scanned set ⊆ all of scope.
// Coarser is always sound — tagging an answer with extra members only
// means an edit to them invalidates an entry it didn't need to — so the
// fallback for engines that report nothing (fd/unary closures) is the
// whole scope.
func AnswerFootprint(a *Answer, scope []deps.Dependency) []string {
	byString := make(map[string]string, len(scope))
	for _, d := range scope {
		byString[d.String()] = d.Key()
	}
	allKeys := make([]string, 0, len(scope))
	for _, d := range scope {
		allKeys = append(allKeys, d.Key())
	}
	return footprintKeys(a, byString, allKeys)
}

// AnswerTags is AnswerFootprint over the goal's precompiled component
// index: the same member keys, computed without re-rendering the scope
// (the String()→Key() map and key list were built once at Add). The
// returned slice may alias the index and must not be mutated.
func (s *System) AnswerTags(a *Answer, goal deps.Dependency) []string {
	ci := s.relevantIndex(goal)
	return footprintKeys(a, ci.strKey, ci.keys)
}

// footprintKeys walks the precision ladder shared by AnswerFootprint and
// AnswerTags: strKey maps member String()→Key(), allKeys is the whole
// scope's key set (the coarse fallback).
func footprintKeys(a *Answer, strKey map[string]string, allKeys []string) []string {
	pick := func(names []string) []string {
		keys := make([]string, 0, len(names))
		seen := make(map[string]bool, len(names))
		for _, n := range names {
			k, ok := strKey[n]
			if !ok || seen[k] {
				continue
			}
			seen[k] = true
			keys = append(keys, k)
		}
		return keys
	}
	if a.Derivation != nil {
		names := make([]string, 0, len(a.Derivation.Nodes))
		for _, n := range a.Derivation.Nodes {
			if n.Rule != "" {
				names = append(names, n.Rule)
			}
		}
		return pick(names)
	}
	if a.Footprint != nil {
		return pick(a.Footprint)
	}
	if a.DepProfile != nil {
		names := make([]string, 0, len(a.DepProfile.Deps))
		for _, c := range a.DepProfile.Deps {
			if c.Firings > 0 || c.Scanned > 0 {
				names = append(names, c.Dep)
			}
		}
		return pick(names)
	}
	return allKeys
}

// classify folds the goal's kind into the component's precomputed
// fragment flags and picks an engine.
func classify(ci *compIndex, goal deps.Dependency) string {
	allINDs, allFDs, allUnary := ci.allINDs, ci.allFDs, ci.allUnary
	switch g := goal.(type) {
	case deps.IND:
		allFDs = false
		if g.Width() != 1 {
			allUnary = false
		}
	case deps.FD:
		// FDs of any shape stay in the unary (KCV) fragment.
		allINDs = false
	default:
		allINDs, allFDs, allUnary = false, false, false
	}
	switch {
	case allINDs:
		return "ind"
	case allFDs:
		return "fd"
	case allUnary:
		return "unary"
	default:
		return "chase"
	}
}

// Implies answers whether Σ implies the goal over all (possibly infinite)
// databases.
func (s *System) Implies(goal deps.Dependency, opt Options) (Answer, error) {
	return s.query(goal, opt, false)
}

// ImpliesFinite answers whether Σ implies the goal over finite databases.
// For pure INDs and pure FDs this coincides with Implies (Theorem 3.1 and
// the classical FD theory); for unary FDs+INDs the KCV cycle rule is
// applied; for the general fragment the chase gives Yes answers (sound
// for finite implication too) and finite counterexamples give No answers,
// with Unknown otherwise.
func (s *System) ImpliesFinite(goal deps.Dependency, opt Options) (Answer, error) {
	return s.query(goal, opt, true)
}

func (s *System) query(goal deps.Dependency, opt Options, finite bool) (Answer, error) {
	if err := goal.Validate(s.db); err != nil {
		return Answer{}, err
	}
	ci := s.relevantIndex(goal)
	relevant := ci.members
	engine := classify(ci, goal)
	sp := opt.Obs.StartSpan("core.query")
	sp.SetAttr("goal", goal.String())
	if finite {
		sp.SetAttr("mode", "finite")
	} else {
		sp.SetAttr("mode", "unrestricted")
	}
	sp.SetAttr("dispatch", engine)
	sp.SetInt("sigma_relevant", int64(len(relevant)))

	var a Answer
	var err error
	switch engine {
	case "ind":
		a, err = s.queryIND(ci, goal.(deps.IND), opt, sp)
	case "fd":
		a, err = s.queryFD(ci, goal.(deps.FD), opt, sp)
	case "unary":
		a, err = s.queryUnary(relevant, goal, opt, finite, sp)
	default:
		a, err = s.queryChase(ci, goal, opt, finite, sp)
	}
	if err != nil {
		// a may carry partial work counters (a cancelled chase or IND
		// search); thread the metrics snapshot through so callers can
		// report what was spent before the deadline hit.
		sp.SetAttr("error", err.Error())
		sp.End()
		if opt.Obs != nil {
			if opt.Metrics {
				a.Metrics = opt.Obs.Snapshot()
			}
			a.Trace = sp.Snapshot()
		}
		return a, err
	}
	// a.Engine can differ from the dispatch class: the general engine's
	// fast paths answer as "ind" or "fd".
	sp.SetAttr("engine", a.Engine)
	sp.SetAttr("verdict", a.Verdict.String())
	sp.End()
	if opt.Obs != nil {
		if opt.Metrics {
			a.Metrics = opt.Obs.Snapshot()
		}
		a.Trace = sp.Snapshot()
	}
	return a, nil
}

// decideIND dispatches to the plain or the profiled Corollary 3.2
// search; the profiled run is verdict- and stats-identical.
func decideIND(opt Options, db *schema.Database, sigma []deps.IND, goal deps.IND) (ind.Result, error) {
	if opt.Profile {
		return ind.DecideProfile(opt.Ctx, db, sigma, goal)
	}
	return ind.DecideCtx(opt.Ctx, db, sigma, goal)
}

func (s *System) queryIND(ci *compIndex, goal deps.IND, opt Options, sp *obs.Span) (Answer, error) {
	sigma := ci.inds
	dsp := sp.StartSpan("ind.decide")
	res, err := decideIND(opt, s.db, sigma, goal)
	dsp.SetInt("expanded", int64(res.Stats.Expanded))
	dsp.SetInt("visited", int64(res.Stats.Visited))
	dsp.End()
	res.Stats.Record(opt.Obs)
	if err != nil {
		// A cancelled search carries its partial stats out with the error.
		return Answer{Verdict: Unknown, Engine: "ind", INDStats: &res.Stats, DepProfile: res.Profile}, err
	}
	if res.Implied {
		p, err := ind.FromChain(res.Chain, res.Via)
		if err != nil {
			return Answer{}, err
		}
		return Answer{Verdict: Yes, Engine: "ind", Proof: p.String(), INDStats: &res.Stats, DepProfile: res.Profile}, nil
	}
	csp := sp.StartSpan("ind.counterexample")
	ce, _, err := ind.Counterexample(s.db, sigma, goal)
	csp.End()
	if err != nil {
		return Answer{}, err
	}
	return Answer{Verdict: No, Engine: "ind", Counterexample: ce, INDStats: &res.Stats, DepProfile: res.Profile}, nil
}

func (s *System) queryFD(ci *compIndex, goal deps.FD, opt Options, sp *obs.Span) (Answer, error) {
	psp := sp.StartSpan("fd.prove")
	p, ok := ci.prover(goal.Rel).Prove(goal, opt.Obs)
	psp.End()
	if ok {
		return Answer{Verdict: Yes, Engine: "fd", Proof: p.String()}, nil
	}
	return Answer{Verdict: No, Engine: "fd"}, nil
}

func (s *System) queryUnary(relevant []deps.Dependency, goal deps.Dependency, opt Options, finite bool, sp *obs.Span) (Answer, error) {
	usp := sp.StartSpan("unary.closure")
	sys, err := unary.NewObs(s.db, relevant, opt.Obs)
	usp.End()
	if err != nil {
		return Answer{}, err
	}
	var ok bool
	if finite {
		ok, err = sys.ImpliesFinite(goal)
	} else {
		ok, err = sys.ImpliesUnrestricted(goal)
	}
	if err != nil {
		return Answer{}, err
	}
	if ok {
		return Answer{Verdict: Yes, Engine: "unary"}, nil
	}
	return Answer{Verdict: No, Engine: "unary"}, nil
}

func (s *System) queryChase(ci *compIndex, goal deps.Dependency, opt Options, finite bool, sp *obs.Span) (Answer, error) {
	relevant := ci.members
	// Fast path: a goal already provable from the same-class fragment of
	// Σ is implied a fortiori, and those engines produce formal proofs.
	switch g := goal.(type) {
	case deps.IND:
		dsp := sp.StartSpan("ind.decide")
		res, err := decideIND(opt, s.db, ci.inds, g)
		dsp.End()
		res.Stats.Record(opt.Obs)
		if err != nil {
			return Answer{Verdict: Unknown, Engine: "ind", INDStats: &res.Stats, DepProfile: res.Profile}, err
		}
		if res.Implied {
			p, err := ind.FromChain(res.Chain, res.Via)
			if err != nil {
				return Answer{}, err
			}
			return Answer{Verdict: Yes, Engine: "ind", Proof: p.String(), INDStats: &res.Stats, DepProfile: res.Profile}, nil
		}
	case deps.FD:
		psp := sp.StartSpan("fd.prove")
		p, ok := ci.prover(g.Rel).Prove(g, opt.Obs)
		psp.End()
		if ok {
			return Answer{Verdict: Yes, Engine: "fd", Proof: p.String()}, nil
		}
	}
	res, err := chase.Implies(s.db, relevant, goal, chase.Options{
		MaxTuples: opt.ChaseMaxTuples, Obs: opt.Obs, Span: sp, Ctx: opt.Ctx,
		Provenance: opt.Provenance, Profile: opt.Profile, Footprint: opt.Footprint,
		Workers: opt.ChaseWorkers, Pool: opt.ChasePool,
	})
	if err != nil {
		// A cancelled chase returns the rounds and tuples it managed —
		// the partial stats a server reports alongside the 503.
		return Answer{Verdict: Unknown, Engine: "chase",
			ChaseRounds: res.Rounds, ChaseTuples: res.Tuples, DepProfile: res.Profile,
			Footprint: res.Used}, err
	}
	cost := Answer{ChaseRounds: res.Rounds, ChaseTuples: res.Tuples, DepProfile: res.Profile,
		Footprint: res.Used}
	switch res.Verdict {
	case chase.Implied:
		// Chase derivations are sound for unrestricted implication, hence
		// for finite implication as well.
		cost.Verdict, cost.Engine = Yes, "chase"
		cost.Derivation = res.Derivation
		return cost, nil
	case chase.NotImplied:
		// The counterexample is finite, so it refutes both semantics.
		cost.Verdict, cost.Engine, cost.Counterexample = No, "chase", res.Counterexample
		return cost, nil
	default:
		_ = finite
		if opt.SearchFallback {
			ce, found, err := search.Counterexample(s.db, relevant, goal, search.Options{
				Domain: 3, MaxTuples: 3, RandomTrials: 300,
				Obs: opt.Obs, Span: sp, Ctx: opt.Ctx,
			})
			if err != nil {
				cost.Verdict, cost.Engine = Unknown, "chase+search"
				return cost, err
			}
			if found {
				cost.Verdict, cost.Engine, cost.Counterexample = No, "chase+search", ce
				return cost, nil
			}
		}
		cost.Verdict, cost.Engine = Unknown, "chase"
		return cost, nil
	}
}

// Satisfies reports whether a concrete database obeys every dependency of
// Σ, returning the first violated one otherwise.
func (s *System) Satisfies(db *data.Database) (bool, deps.Dependency, error) {
	return db.SatisfiesAll(s.sigma.All())
}

// Explain answers an implication query with a human-readable account of
// why: a formal derivation for the ind/fd engines, the chase's
// provenance derivation for chase Yes verdicts when Options.Provenance
// is set, the cardinality-cycle explanation for the unary engine (the
// Theorem 4.4 counting argument), or the counterexample for negative
// answers. The string is empty when the engine has nothing beyond the
// verdict (chase Yes without provenance, or Unknown).
func (s *System) Explain(goal deps.Dependency, opt Options, finite bool) (Answer, string, error) {
	var a Answer
	var err error
	if finite {
		a, err = s.ImpliesFinite(goal, opt)
	} else {
		a, err = s.Implies(goal, opt)
	}
	if err != nil {
		return a, "", err
	}
	switch {
	case a.Proof != "":
		return a, a.Proof, nil
	case a.Derivation != nil:
		return a, a.Derivation.String(), nil
	case a.Engine == "unary":
		sys, err := unary.New(s.db, s.relevant(goal))
		if err != nil {
			return a, "", err
		}
		ex, err := sys.Explain(goal)
		if err != nil {
			return a, "", err
		}
		return a, ex.String(), nil
	case a.Counterexample != nil:
		return a, "counterexample:\n" + a.Counterexample.String(), nil
	default:
		return a, "", nil
	}
}

// ImpliesAll answers many goals concurrently (the System is read-only
// during queries, so goals can be decided in parallel). Results are
// returned in the goals' order; the first error aborts the batch.
func (s *System) ImpliesAll(goals []deps.Dependency, opt Options, finite bool) ([]Answer, error) {
	answers := make([]Answer, len(goals))
	errs := make([]error, len(goals))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(goals) {
		workers = len(goals)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				answers[i], errs[i] = s.query(goals[i], opt, finite)
			}
		}()
	}
	for i := range goals {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return answers, nil
}
