package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"indfd/internal/chase"
	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/interact"
	"indfd/internal/schema"
	"indfd/internal/unary"
)

// These tests pit the independent engines against each other on random
// instances. Every engine implements the same semantics by a different
// algorithm (syntactic search, counting closure, chase, bounded-arity
// rules), so agreement is strong evidence of correctness — and the places
// they are ALLOWED to disagree (chase Unknown, interact incompleteness)
// are exactly the paper's theorems.

// randomUnaryInstance builds a random unary FD+IND set over two
// two-attribute relations.
func randomUnaryInstance(r *rand.Rand) (*schema.Database, []deps.Dependency) {
	ds := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	cols := []struct {
		rel  string
		attr schema.Attribute
	}{{"R", "A"}, {"R", "B"}, {"S", "C"}, {"S", "D"}}
	var sigma []deps.Dependency
	for i := 0; i < 1+r.Intn(5); i++ {
		u, v := cols[r.Intn(4)], cols[r.Intn(4)]
		if u.rel == v.rel && u.attr != v.attr && r.Intn(2) == 0 {
			sigma = append(sigma, deps.NewFD(u.rel, []schema.Attribute{u.attr}, []schema.Attribute{v.attr}))
		} else {
			sigma = append(sigma, deps.NewIND(u.rel, []schema.Attribute{u.attr}, v.rel, []schema.Attribute{v.attr}))
		}
	}
	return ds, sigma
}

func unaryGoals(r *rand.Rand) []deps.Dependency {
	return []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A")),
		deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("C")),
		deps.NewIND("S", deps.Attrs("D"), "R", deps.Attrs("B")),
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")),
	}
}

// The chase decides unrestricted implication; when it reaches a verdict it
// must agree with the unary engine's unrestricted answer.
func TestChaseAgreesWithUnaryEngine(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ds, sigma := randomUnaryInstance(r)
		sys, err := unary.New(ds, sigma)
		if err != nil {
			return false
		}
		for _, goal := range unaryGoals(r) {
			res, err := chase.Implies(ds, sigma, goal, chase.Options{MaxTuples: 128})
			if err != nil {
				return false
			}
			want, err := sys.ImpliesUnrestricted(goal)
			if err != nil {
				return false
			}
			switch res.Verdict {
			case chase.Implied:
				if !want {
					return false
				}
			case chase.NotImplied:
				if want {
					return false
				}
			case chase.Unknown:
				// The chase may give up; but then the instance must be one
				// where finiteness matters or the chase diverged — either
				// way no contradiction to check.
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// When the chase finds a finite counterexample, the unary FINITE engine
// must also report non-implication (the counterexample is finite).
func TestChaseCounterexamplesRefuteFiniteImplication(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ds, sigma := randomUnaryInstance(r)
		sys, err := unary.New(ds, sigma)
		if err != nil {
			return false
		}
		for _, goal := range unaryGoals(r) {
			res, err := chase.Implies(ds, sigma, goal, chase.Options{MaxTuples: 128})
			if err != nil {
				return false
			}
			if res.Verdict != chase.NotImplied {
				continue
			}
			fin, err := sys.ImpliesFinite(goal)
			if err != nil {
				return false
			}
			if fin {
				// The unary engine claims finite implication but a finite
				// counterexample exists — verify the counterexample really
				// does satisfy sigma and violate the goal before failing.
				ok, _, err := res.Counterexample.SatisfiesAll(sigma)
				if err != nil || !ok {
					return false
				}
				sat, err := res.Counterexample.Satisfies(goal)
				if err != nil {
					return false
				}
				return sat // if genuinely violated, the engines contradict
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// The bounded-arity interaction engine is sound: anything it derives, the
// chase confirms (or runs out of budget, never refutes).
func TestInteractSoundAgainstChase(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ds, sigma := randomUnaryInstance(r)
		for _, goal := range unaryGoals(r) {
			derived, err := interact.Derives(ds, sigma, nil, goal)
			if err != nil {
				return false
			}
			if !derived {
				continue
			}
			res, err := chase.Implies(ds, sigma, goal, chase.Options{MaxTuples: 128})
			if err != nil {
				return false
			}
			if res.Verdict == chase.NotImplied {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// The System facade gives semantically correct answers on random unary
// instances, checked against random finite databases: a Yes (finite)
// answer is never violated by a finite model of Σ.
func TestSystemFiniteAnswersSoundOnRandomDatabases(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ds, sigma := randomUnaryInstance(r)
		sys := NewSystem(ds)
		if err := sys.Add(sigma...); err != nil {
			return false
		}
		var yes []deps.Dependency
		for _, goal := range unaryGoals(r) {
			a, err := sys.ImpliesFinite(goal, Options{ChaseMaxTuples: 128})
			if err != nil {
				return false
			}
			if a.Verdict == Yes {
				yes = append(yes, goal)
			}
		}
		for trial := 0; trial < 10; trial++ {
			db := data.NewDatabase(ds)
			for _, rel := range []string{"R", "S"} {
				for i := 0; i < r.Intn(4); i++ {
					db.MustInsert(rel, data.Tuple{data.Int(r.Intn(3)), data.Int(r.Intn(3))})
				}
			}
			ok, _, err := db.SatisfiesAll(sigma)
			if err != nil {
				return false
			}
			if !ok {
				continue
			}
			for _, g := range yes {
				sat, err := db.Satisfies(g)
				if err != nil || !sat {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Relevance restriction is invisible: answers with unrelated relations
// added to Σ match answers without them.
func TestRelevanceRestrictionInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ds, sigma := randomUnaryInstance(r)
		// A second scheme with the same shapes plus noise relations.
		noisy := schema.MustDatabase(
			schema.MustScheme("R", "A", "B"),
			schema.MustScheme("S", "C", "D"),
			schema.MustScheme("N1", "X", "Y"),
			schema.MustScheme("N2", "X", "Y"),
		)
		base := NewSystem(ds)
		if err := base.Add(sigma...); err != nil {
			return false
		}
		extended := NewSystem(noisy)
		if err := extended.Add(sigma...); err != nil {
			return false
		}
		// Noise dependencies over the disconnected relations, including a
		// non-unary FD that would otherwise force the chase engine.
		if err := extended.Add(
			deps.NewFD("N1", deps.Attrs("X", "Y"), deps.Attrs("X")),
			deps.NewIND("N1", deps.Attrs("X"), "N2", deps.Attrs("Y")),
			deps.NewFD("N2", deps.Attrs("X"), deps.Attrs("Y")),
		); err != nil {
			return false
		}
		for _, goal := range unaryGoals(r) {
			a1, err := base.ImpliesFinite(goal, Options{ChaseMaxTuples: 128})
			if err != nil {
				return false
			}
			a2, err := extended.ImpliesFinite(goal, Options{ChaseMaxTuples: 128})
			if err != nil {
				return false
			}
			if a1.Verdict != a2.Verdict {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: implication is monotone in Σ for pure-IND systems — adding
// dependencies never turns a Yes into a No.
func TestImplicationMonotoneInSigma(t *testing.T) {
	ds := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	cols := []struct {
		rel  string
		attr schema.Attribute
	}{{"R", "A"}, {"R", "B"}, {"S", "C"}, {"S", "D"}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sigma []deps.Dependency
		for i := 0; i < 1+r.Intn(4); i++ {
			u, v := cols[r.Intn(4)], cols[r.Intn(4)]
			sigma = append(sigma, deps.NewIND(u.rel, []schema.Attribute{u.attr}, v.rel, []schema.Attribute{v.attr}))
		}
		u, v := cols[r.Intn(4)], cols[r.Intn(4)]
		extra := deps.NewIND(u.rel, []schema.Attribute{u.attr}, v.rel, []schema.Attribute{v.attr})

		small := NewSystem(ds)
		if err := small.Add(sigma...); err != nil {
			return false
		}
		big := NewSystem(ds)
		if err := big.Add(append(append([]deps.Dependency{}, sigma...), extra)...); err != nil {
			return false
		}
		for _, goal := range unaryGoals(r) {
			g, ok := goal.(deps.IND)
			if !ok {
				continue
			}
			a1, err := small.Implies(g, Options{})
			if err != nil {
				return false
			}
			a2, err := big.Implies(g, Options{})
			if err != nil {
				return false
			}
			if a1.Verdict == Yes && a2.Verdict != Yes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
