package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// divergentSystem is a System whose only applicable engine is the chase
// and whose chase diverges: the binary IND keeps demanding fresh
// witnesses and the FD never closes the loop.
func divergentSystem(t *testing.T) (*System, deps.FD) {
	t.Helper()
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	sys := NewSystem(db)
	if err := sys.Add(
		deps.NewIND("R", deps.Attrs("A", "B"), "R", deps.Attrs("B", "C")),
		deps.NewFD("R", deps.Attrs("A", "B"), deps.Attrs("C")),
	); err != nil {
		t.Fatal(err)
	}
	return sys, deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C"))
}

// A deadline on a divergent chase query surfaces as the context error
// with the partial chase work preserved on the Answer — what depserve
// turns into a 503 with stats.
func TestImpliesDeadlinePartialStats(t *testing.T) {
	sys, goal := divergentSystem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	a, err := sys.Implies(goal, Options{Ctx: ctx, ChaseMaxTuples: 1 << 30})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if a.Verdict != Unknown || a.Engine != "chase" {
		t.Errorf("partial answer = verdict %v engine %q, want unknown/chase", a.Verdict, a.Engine)
	}
	if a.ChaseRounds == 0 || a.ChaseTuples == 0 {
		t.Errorf("partial stats missing: rounds=%d tuples=%d", a.ChaseRounds, a.ChaseTuples)
	}
}

// The metrics snapshot and span tree still come back on the error path
// when a registry was supplied.
func TestImpliesDeadlineMetricsAttached(t *testing.T) {
	sys, goal := divergentSystem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	reg := obs.New()
	_, err := sys.Implies(goal, Options{Ctx: ctx, ChaseMaxTuples: 1 << 30, Obs: reg})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["chase.rounds"] == 0 {
		t.Errorf("registry missing chase.rounds after cancelled query: %v", snap.Counters)
	}
	if len(snap.Spans) == 0 {
		t.Errorf("registry missing the core.query span")
	}
}

// A pre-cancelled context stops an IND-engine query too, with the
// partial search stats attached.
func TestImpliesINDCancelled(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "A"),
		schema.MustScheme("S", "A"),
	)
	sys := NewSystem(db)
	if err := sys.Add(deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("A"))); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, err := sys.Implies(deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("A")), Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if a.Engine != "ind" || a.INDStats == nil {
		t.Errorf("partial answer = %+v, want ind engine with stats", a)
	}
}

// Queries with a live context behave exactly as without one.
func TestImpliesLiveContextUnchanged(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("MGR", "NAME", "DEPT"),
		schema.MustScheme("EMP", "NAME", "DEPT", "SAL"),
	)
	sys := NewSystem(db)
	if err := sys.Add(deps.NewIND("MGR", deps.Attrs("NAME", "DEPT"), "EMP", deps.Attrs("NAME", "DEPT"))); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	a, err := sys.Implies(deps.NewIND("MGR", deps.Attrs("NAME"), "EMP", deps.Attrs("NAME")), Options{Ctx: ctx})
	if err != nil || a.Verdict != Yes || a.Engine != "ind" {
		t.Fatalf("live-ctx query broken: %+v %v", a, err)
	}
}
