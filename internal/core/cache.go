// Answer caching for implication queries.
//
// Implication is a pure function of (schema, Σ, goal, semantics, engine
// budgets): the same question always has the same answer, and the paper's
// lower bounds (PSPACE-hard IND implication, undecidable FD+IND
// implication) make re-deriving it arbitrarily expensive. A resident
// server therefore caches complete answers behind a canonical
// fingerprint: textually different but semantically identical requests —
// Σ reordered, relations declared in another order — hit the same entry.
//
// The cache is a fixed array of mutex-striped LRU shards, so concurrent
// clients contend only when their fingerprints collide on a shard.
// Entries carry an optional TTL. Only COMPLETE answers may be stored:
// a deadline-killed chase returns an error alongside its partial stats,
// and caching that as "the answer" would wedge every later client into
// the first client's deadline; callers enforce this by caching only
// error-free results (serve additionally never caches 5xx responses).
package core

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"
	"time"

	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// QueryFingerprint is the canonical cache key of an implication query:
// a SHA-256 over the sorted relation schemes, the sorted canonical keys
// of Σ, the goal's canonical key, the semantics mode, and any extra
// answer-shaping knobs the caller appends (budget, search fallback,
// explain). Two queries with equal fingerprints have byte-identical
// complete answers.
func QueryFingerprint(db *schema.Database, sigma []deps.Dependency, goal deps.Dependency, mode string, extras ...string) string {
	keys := make([]string, len(sigma))
	for i, d := range sigma {
		keys[i] = d.Key()
	}
	sort.Strings(keys)
	return fingerprintHash(db.Canonical(), keys, goal.Key(), mode, extras)
}

// fingerprintHash is the one hasher behind every fingerprint variant:
// QueryFingerprint sorts its member keys and calls it, System.QueryKey
// feeds it the presorted keys from the component index. Sharing the
// byte layout here is what makes the two byte-identical.
func fingerprintHash(canon string, sortedKeys []string, goalKey, mode string, extras []string) string {
	h := sha256.New()
	write := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	// The scheme's canonical render is maintained by Database.Add, so
	// the hot per-query path hashes one prebuilt string instead of
	// re-rendering every relation.
	write(canon)
	write("|sigma")
	for _, k := range sortedKeys {
		write(k)
	}
	write("|goal")
	write(goalKey)
	write(mode)
	for _, e := range extras {
		write(e)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// QueryKey is the footprint-aware fingerprint computed from the
// precompiled component index: byte-identical to
// FootprintFingerprint(DB(), Relevant(goal), goal, mode, extras...) —
// both feed fingerprintHash the same sorted member keys — but without
// re-rendering or re-sorting Σ per query.
func (s *System) QueryKey(goal deps.Dependency, mode string, extras ...string) string {
	return fingerprintHash(s.db.Canonical(), s.relevantIndex(goal).keys, goal.Key(), mode, extras)
}

// FingerprintOptions renders the answer-shaping members of Options into
// fingerprint extras. Obs and Ctx are deliberately absent: they shape
// observability and deadlines, not the answer. Footprint is absent too:
// like Profile capture it never changes the answer, only whether
// Answer.Footprint is recorded, and serve strips that from responses.
func FingerprintOptions(opt Options) []string {
	return []string{
		"budget=" + strconv.Itoa(opt.ChaseMaxTuples),
		"search=" + strconv.FormatBool(opt.SearchFallback),
		"provenance=" + strconv.FormatBool(opt.Provenance),
	}
}

// FootprintFingerprint is the footprint-aware cache key: QueryFingerprint
// computed over scope = Relevant(goal) instead of all of Σ. The Answer is
// a pure function of (scheme, Relevant(goal), goal, mode, options) — core
// restricts Σ to the goal's IND-connected component before dispatching —
// so keying on the component is exact: adding or editing a member outside
// the component leaves every such key, and hence the hit-rate, unchanged,
// where the whole-Σ QueryFingerprint would miss on all of them.
func FootprintFingerprint(db *schema.Database, scope []deps.Dependency, goal deps.Dependency, mode string, extras ...string) string {
	return QueryFingerprint(db, scope, goal, mode, extras...)
}

// CachedAnswer is the unit an AnswerCache stores: a complete Answer plus
// the engine's explanation when the caller requested one. Metrics, Trace
// and DepProfile are per-query observability, not part of the answer,
// and are stripped before storage (a cached profile would misreport the
// hit's cost — scan times are wall-clock measurements of the miss).
type CachedAnswer struct {
	Answer      Answer
	Explanation string
}

// cacheShards is the stripe count. 16 shards keep 32 concurrent clients
// mostly un-contended while the array stays small enough to embed.
const cacheShards = 16

// AnswerCache is a concurrency-safe, sharded LRU of complete implication
// answers. A nil *AnswerCache is a valid "caching off" cache: Get always
// misses without counting, Put is a no-op.
type AnswerCache struct {
	shards   [cacheShards]cacheShard
	perShard int
	ttl      time.Duration
	now      func() time.Time // injectable for TTL tests

	// Reverse index for footprint invalidation: canonical member key →
	// set of cache fingerprints whose answer depended on that member
	// (tags supplied to PutTagged). Guarded by its own mutex, never held
	// together with a shard lock (shard ops collect work under the shard
	// lock and touch the index after unlocking), so the two lock classes
	// cannot deadlock.
	idxMu sync.Mutex
	idx   map[string]map[string]struct{}

	hits           *obs.Counter
	misses         *obs.Counter
	evictions      *obs.Counter
	footprintEvict *obs.Counter
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
}

type cacheEntry struct {
	key     string
	val     CachedAnswer
	expires time.Time // zero = no expiry
	// tags are the canonical member keys this answer's footprint touched
	// (nil for untagged Put); each tag holds a reverse-index edge that
	// must be dropped when the entry leaves the cache.
	tags []string
}

// NewAnswerCache builds a cache holding at most size entries in total
// (rounded up to a multiple of the shard count), each valid for ttl
// (0 = forever). The cache.hits / cache.misses / cache.evictions
// counters land in reg; a nil reg disables counting but not caching.
// size <= 0 returns nil — the caching-off cache.
func NewAnswerCache(size int, ttl time.Duration, reg *obs.Registry) *AnswerCache {
	if size <= 0 {
		return nil
	}
	per := (size + cacheShards - 1) / cacheShards
	c := &AnswerCache{
		perShard:       per,
		ttl:            ttl,
		now:            time.Now,
		idx:            make(map[string]map[string]struct{}),
		hits:           reg.Counter("cache.hits"),
		misses:         reg.Counter("cache.misses"),
		evictions:      reg.Counter("cache.evictions"),
		footprintEvict: reg.Counter("cache.footprint_invalidations"),
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*list.Element, per)
		c.shards[i].lru = list.New()
	}
	return c
}

// shardFor maps a fingerprint to its stripe (FNV-1a over the key).
func (c *AnswerCache) shardFor(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

// Get returns the cached answer for the fingerprint, if present and
// unexpired, and counts the hit or miss.
func (c *AnswerCache) Get(key string) (CachedAnswer, bool) {
	if c == nil {
		return CachedAnswer{}, false
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	el, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Inc()
		return CachedAnswer{}, false
	}
	e := el.Value.(*cacheEntry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		sh.lru.Remove(el)
		delete(sh.entries, key)
		sh.mu.Unlock()
		c.untag(e) // index update outside the shard lock (lock ordering)
		c.misses.Inc()
		return CachedAnswer{}, false
	}
	sh.lru.MoveToFront(el)
	val := e.val
	sh.mu.Unlock()
	c.hits.Inc()
	return val, true
}

// Put stores a complete answer under the fingerprint, evicting the
// shard's least-recently-used entry when the shard is full. Callers must
// not Put partial answers (cancelled or deadline-killed queries); the
// cache cannot tell them apart from complete ones.
func (c *AnswerCache) Put(key string, val CachedAnswer) {
	c.PutTagged(key, val, nil)
}

// PutTagged is Put plus footprint registration: tags are the canonical
// Key()s of the Σ members the answer depended on (AnswerFootprint), and
// InvalidateMembers on any of them later drops the entry. Nil tags
// stores an entry no member edit can target.
func (c *AnswerCache) PutTagged(key string, val CachedAnswer, tags []string) {
	if c == nil {
		return
	}
	// The answer is the payload; per-query observability is not.
	val.Answer.Metrics = nil
	val.Answer.Trace = nil
	val.Answer.DepProfile = nil
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	// Index edges to drop and add are decided under the shard lock but
	// applied after unlocking, so the shard and index locks never nest.
	var dropped *cacheEntry
	entry := &cacheEntry{key: key, val: val, expires: expires, tags: tags}
	sh := c.shardFor(key)
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		old := el.Value.(*cacheEntry)
		el.Value = entry
		sh.lru.MoveToFront(el)
		sh.mu.Unlock()
		c.untag(old)
		c.tag(entry)
		return
	}
	if sh.lru.Len() >= c.perShard {
		oldest := sh.lru.Back()
		if oldest != nil {
			sh.lru.Remove(oldest)
			dropped = oldest.Value.(*cacheEntry)
			delete(sh.entries, dropped.key)
			c.evictions.Inc()
		}
	}
	sh.entries[key] = sh.lru.PushFront(entry)
	sh.mu.Unlock()
	c.untag(dropped)
	c.tag(entry)
}

// tag registers the entry's fingerprint under each of its member tags.
func (c *AnswerCache) tag(e *cacheEntry) {
	if e == nil || len(e.tags) == 0 {
		return
	}
	c.idxMu.Lock()
	for _, t := range e.tags {
		s, ok := c.idx[t]
		if !ok {
			s = make(map[string]struct{})
			c.idx[t] = s
		}
		s[e.key] = struct{}{}
	}
	c.idxMu.Unlock()
}

// untag drops the entry's reverse-index edges after it left the cache.
func (c *AnswerCache) untag(e *cacheEntry) {
	if e == nil || len(e.tags) == 0 {
		return
	}
	c.idxMu.Lock()
	for _, t := range e.tags {
		if s, ok := c.idx[t]; ok {
			delete(s, e.key)
			if len(s) == 0 {
				delete(c.idx, t)
			}
		}
	}
	c.idxMu.Unlock()
}

// InvalidateMembers drops every cached answer whose footprint touched
// any of the given members (canonical Key()s), returning the number of
// entries removed and counting each as cache.footprint_invalidations.
// The registry calls this on a Σ edit: only answers that actually used
// the edited member pay, answers over disjoint parts of the scheme stay
// warm. Concurrent PutTagged calls racing this are benign — a tag
// registered after the sweep keeps its entry, which is still a correct
// answer for its own fingerprint (keys bind the full relevant Σ).
func (c *AnswerCache) InvalidateMembers(memberKeys ...string) int {
	if c == nil {
		return 0
	}
	// Collect the doomed fingerprints under the index lock, then walk
	// their shards without holding it.
	doomed := make(map[string]struct{})
	c.idxMu.Lock()
	for _, m := range memberKeys {
		for k := range c.idx[m] {
			doomed[k] = struct{}{}
		}
	}
	c.idxMu.Unlock()
	removed := 0
	for k := range doomed {
		sh := c.shardFor(k)
		sh.mu.Lock()
		el, ok := sh.entries[k]
		var e *cacheEntry
		if ok {
			e = el.Value.(*cacheEntry)
			sh.lru.Remove(el)
			delete(sh.entries, k)
		}
		sh.mu.Unlock()
		if ok {
			c.untag(e)
			c.footprintEvict.Inc()
			removed++
		}
	}
	return removed
}

// Len reports the live entry count across all shards (expired entries
// not yet touched still count; they are reaped lazily on Get).
func (c *AnswerCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].lru.Len()
		c.shards[i].mu.Unlock()
	}
	return n
}
