// Answer caching for implication queries.
//
// Implication is a pure function of (schema, Σ, goal, semantics, engine
// budgets): the same question always has the same answer, and the paper's
// lower bounds (PSPACE-hard IND implication, undecidable FD+IND
// implication) make re-deriving it arbitrarily expensive. A resident
// server therefore caches complete answers behind a canonical
// fingerprint: textually different but semantically identical requests —
// Σ reordered, relations declared in another order — hit the same entry.
//
// The cache is a fixed array of mutex-striped LRU shards, so concurrent
// clients contend only when their fingerprints collide on a shard.
// Entries carry an optional TTL. Only COMPLETE answers may be stored:
// a deadline-killed chase returns an error alongside its partial stats,
// and caching that as "the answer" would wedge every later client into
// the first client's deadline; callers enforce this by caching only
// error-free results (serve additionally never caches 5xx responses).
package core

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"
	"time"

	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// QueryFingerprint is the canonical cache key of an implication query:
// a SHA-256 over the sorted relation schemes, the sorted canonical keys
// of Σ, the goal's canonical key, the semantics mode, and any extra
// answer-shaping knobs the caller appends (budget, search fallback,
// explain). Two queries with equal fingerprints have byte-identical
// complete answers.
func QueryFingerprint(db *schema.Database, sigma []deps.Dependency, goal deps.Dependency, mode string, extras ...string) string {
	h := sha256.New()
	write := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	names := append([]string(nil), db.Names()...)
	sort.Strings(names)
	for _, name := range names {
		s, _ := db.Scheme(name)
		write(s.String())
	}
	write("|sigma")
	keys := make([]string, len(sigma))
	for i, d := range sigma {
		keys[i] = d.Key()
	}
	sort.Strings(keys)
	for _, k := range keys {
		write(k)
	}
	write("|goal")
	write(goal.Key())
	write(mode)
	for _, e := range extras {
		write(e)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// FingerprintOptions renders the answer-shaping members of Options into
// fingerprint extras. Obs and Ctx are deliberately absent: they shape
// observability and deadlines, not the answer.
func FingerprintOptions(opt Options) []string {
	return []string{
		"budget=" + strconv.Itoa(opt.ChaseMaxTuples),
		"search=" + strconv.FormatBool(opt.SearchFallback),
		"provenance=" + strconv.FormatBool(opt.Provenance),
	}
}

// CachedAnswer is the unit an AnswerCache stores: a complete Answer plus
// the engine's explanation when the caller requested one. Metrics, Trace
// and DepProfile are per-query observability, not part of the answer,
// and are stripped before storage (a cached profile would misreport the
// hit's cost — scan times are wall-clock measurements of the miss).
type CachedAnswer struct {
	Answer      Answer
	Explanation string
}

// cacheShards is the stripe count. 16 shards keep 32 concurrent clients
// mostly un-contended while the array stays small enough to embed.
const cacheShards = 16

// AnswerCache is a concurrency-safe, sharded LRU of complete implication
// answers. A nil *AnswerCache is a valid "caching off" cache: Get always
// misses without counting, Put is a no-op.
type AnswerCache struct {
	shards   [cacheShards]cacheShard
	perShard int
	ttl      time.Duration
	now      func() time.Time // injectable for TTL tests

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
}

type cacheEntry struct {
	key     string
	val     CachedAnswer
	expires time.Time // zero = no expiry
}

// NewAnswerCache builds a cache holding at most size entries in total
// (rounded up to a multiple of the shard count), each valid for ttl
// (0 = forever). The cache.hits / cache.misses / cache.evictions
// counters land in reg; a nil reg disables counting but not caching.
// size <= 0 returns nil — the caching-off cache.
func NewAnswerCache(size int, ttl time.Duration, reg *obs.Registry) *AnswerCache {
	if size <= 0 {
		return nil
	}
	per := (size + cacheShards - 1) / cacheShards
	c := &AnswerCache{
		perShard:  per,
		ttl:       ttl,
		now:       time.Now,
		hits:      reg.Counter("cache.hits"),
		misses:    reg.Counter("cache.misses"),
		evictions: reg.Counter("cache.evictions"),
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*list.Element, per)
		c.shards[i].lru = list.New()
	}
	return c
}

// shardFor maps a fingerprint to its stripe (FNV-1a over the key).
func (c *AnswerCache) shardFor(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

// Get returns the cached answer for the fingerprint, if present and
// unexpired, and counts the hit or miss.
func (c *AnswerCache) Get(key string) (CachedAnswer, bool) {
	if c == nil {
		return CachedAnswer{}, false
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[key]
	if !ok {
		c.misses.Inc()
		return CachedAnswer{}, false
	}
	e := el.Value.(*cacheEntry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		sh.lru.Remove(el)
		delete(sh.entries, key)
		c.misses.Inc()
		return CachedAnswer{}, false
	}
	sh.lru.MoveToFront(el)
	c.hits.Inc()
	return e.val, true
}

// Put stores a complete answer under the fingerprint, evicting the
// shard's least-recently-used entry when the shard is full. Callers must
// not Put partial answers (cancelled or deadline-killed queries); the
// cache cannot tell them apart from complete ones.
func (c *AnswerCache) Put(key string, val CachedAnswer) {
	if c == nil {
		return
	}
	// The answer is the payload; per-query observability is not.
	val.Answer.Metrics = nil
	val.Answer.Trace = nil
	val.Answer.DepProfile = nil
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		e.val, e.expires = val, expires
		sh.lru.MoveToFront(el)
		return
	}
	if sh.lru.Len() >= c.perShard {
		oldest := sh.lru.Back()
		if oldest != nil {
			sh.lru.Remove(oldest)
			delete(sh.entries, oldest.Value.(*cacheEntry).key)
			c.evictions.Inc()
		}
	}
	sh.entries[key] = sh.lru.PushFront(&cacheEntry{key: key, val: val, expires: expires})
}

// Len reports the live entry count across all shards (expired entries
// not yet touched still count; they are reaped lazily on Get).
func (c *AnswerCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].lru.Len()
		c.shards[i].mu.Unlock()
	}
	return n
}
