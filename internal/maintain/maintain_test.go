package maintain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/lint"
	"indfd/internal/schema"
)

func orderScheme() *schema.Database {
	return schema.MustDatabase(
		schema.MustScheme("CUST", "CID", "NAME"),
		schema.MustScheme("ORD", "OID", "CID"),
	)
}

func orderSigma() []deps.Dependency {
	return []deps.Dependency{
		deps.NewFD("CUST", deps.Attrs("CID"), deps.Attrs("NAME")),
		deps.NewIND("ORD", deps.Attrs("CID"), "CUST", deps.Attrs("CID")),
	}
}

func TestInsertRestrict(t *testing.T) {
	m, err := NewMonitor(orderScheme(), orderSigma())
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	// An order without its customer is rejected.
	if err := m.Insert("ORD", data.Tuple{"o1", "c1"}); err == nil {
		t.Errorf("dangling insert should be rejected")
	}
	// Customer first, then the order.
	if err := m.Insert("CUST", data.Tuple{"c1", "ann"}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := m.Insert("ORD", data.Tuple{"o1", "c1"}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	// FD conflict rejected.
	if err := m.Insert("CUST", data.Tuple{"c1", "bob"}); err == nil {
		t.Errorf("FD conflict should be rejected")
	}
	// Same tuple again: no-op.
	if err := m.Insert("CUST", data.Tuple{"c1", "ann"}); err != nil {
		t.Errorf("duplicate insert should be a no-op: %v", err)
	}
	if m.Database().Size() != 2 {
		t.Errorf("size = %d", m.Database().Size())
	}
}

func TestDeleteRestrict(t *testing.T) {
	m, _ := NewMonitor(orderScheme(), orderSigma())
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.Insert("CUST", data.Tuple{"c1", "ann"}))
	must(m.Insert("CUST", data.Tuple{"c2", "bob"}))
	must(m.Insert("ORD", data.Tuple{"o1", "c1"}))
	// Deleting a referenced customer is rejected.
	if err := m.Delete("CUST", data.Tuple{"c1", "ann"}); err == nil {
		t.Errorf("deleting a referenced customer should be rejected")
	}
	// Deleting the unreferenced one is fine.
	must(m.Delete("CUST", data.Tuple{"c2", "bob"}))
	// Delete the order, then its customer.
	must(m.Delete("ORD", data.Tuple{"o1", "c1"}))
	must(m.Delete("CUST", data.Tuple{"c1", "ann"}))
	if m.Database().Size() != 0 {
		t.Errorf("size = %d", m.Database().Size())
	}
	// Deleting an absent tuple errors.
	if err := m.Delete("CUST", data.Tuple{"c1", "ann"}); err == nil {
		t.Errorf("deleting an absent tuple should error")
	}
}

func TestSelfWitness(t *testing.T) {
	// R[A] ⊆ R[B] over one relation: the tuple (x, x) witnesses itself.
	ds := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	m, _ := NewMonitor(ds, []deps.Dependency{deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B"))})
	if err := m.Insert("R", data.Tuple{"x", "x"}); err != nil {
		t.Fatalf("self-witnessing insert rejected: %v", err)
	}
	// (y, x) is fine (x supplied by the first tuple); (z, w) is not.
	if err := m.Insert("R", data.Tuple{"y", "x"}); err == nil {
		t.Errorf("(y,x) demands y in column B, which nothing supplies")
	}
	if err := m.Insert("R", data.Tuple{"x", "q"}); err != nil {
		t.Errorf("(x,q): x is supplied by (x,x): %v", err)
	}
}

func TestRDs(t *testing.T) {
	ds := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	m, _ := NewMonitor(ds, []deps.Dependency{deps.NewRD("R", deps.Attrs("A"), deps.Attrs("B"))})
	if err := m.Insert("R", data.Tuple{"x", "y"}); err == nil {
		t.Errorf("RD violation should be rejected")
	}
	if err := m.Insert("R", data.Tuple{"x", "x"}); err != nil {
		t.Errorf("RD-conforming tuple rejected: %v", err)
	}
}

func TestInsertCascading(t *testing.T) {
	m, _ := NewMonitor(orderScheme(), orderSigma())
	added, err := m.InsertCascading("ORD", data.Tuple{"o1", "c9"})
	if err != nil {
		t.Fatalf("InsertCascading: %v", err)
	}
	if len(added) != 1 {
		t.Errorf("added = %v, want the synthesized customer", added)
	}
	ok, bad, err := m.Database().SatisfiesAll(orderSigma())
	if err != nil || !ok {
		t.Errorf("cascaded database violates %v (%v)", bad, err)
	}
	cust, _ := m.Database().Relation("CUST")
	if cust.Len() != 1 || cust.Tuples()[0][0] != "c9" {
		t.Errorf("synthesized customer wrong: %v", cust)
	}
}

func TestMonitorValidation(t *testing.T) {
	ds := orderScheme()
	if _, err := NewMonitor(ds, []deps.Dependency{deps.NewFD("NOPE", deps.Attrs("A"), deps.Attrs("B"))}); err == nil {
		t.Errorf("invalid sigma should be rejected")
	}
	if _, err := NewMonitor(ds, []deps.Dependency{deps.NewEMVD("CUST", deps.Attrs("CID"), deps.Attrs("NAME"), nil)}); err == nil {
		t.Errorf("EMVD should be rejected")
	}
	m, _ := NewMonitor(ds, nil)
	if err := m.Insert("NOPE", data.Tuple{"x"}); err == nil {
		t.Errorf("unknown relation should error")
	}
	if err := m.Insert("CUST", data.Tuple{"x"}); err == nil {
		t.Errorf("wrong-width tuple should error")
	}
	if err := m.Delete("NOPE", data.Tuple{"x"}); err == nil {
		t.Errorf("unknown relation should error")
	}
}

// Property: under random accepted operations, the monitored database
// always satisfies sigma (cross-checked with the lint checker), and a
// rejected operation, if forced through, would violate it.
func TestMonitorInvariant(t *testing.T) {
	ds := orderScheme()
	sigma := orderSigma()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, err := NewMonitor(ds, sigma)
		if err != nil {
			return false
		}
		rels := []string{"CUST", "ORD"}
		vals := []data.Value{"0", "1", "2"}
		for step := 0; step < 40; step++ {
			rel := rels[r.Intn(2)]
			tup := data.Tuple{vals[r.Intn(3)], vals[r.Intn(3)]}
			var opErr error
			if r.Intn(3) == 0 {
				opErr = m.Delete(rel, tup)
			} else {
				opErr = m.Insert(rel, tup)
			}
			_ = opErr
			// Invariant: the database satisfies sigma after every step.
			vs, err := lint.Check(m.Database(), sigma)
			if err != nil || len(vs) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
