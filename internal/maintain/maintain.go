// Package maintain enforces FDs, INDs and RDs on a live database with
// incremental, index-backed checks: each insert or delete is validated in
// time proportional to the number of dependencies touching the relation,
// not the database size. Violating operations are rejected (RESTRICT
// semantics), so a Monitor's database always satisfies its dependency
// set — the runtime face of the paper's referential-integrity INDs.
package maintain

import (
	"fmt"
	"strings"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// Monitor owns a database and its dependency set, and maintains indexes
// for incremental validation.
type Monitor struct {
	ds   *schema.Database
	db   *data.Database
	fds  []deps.FD
	inds []deps.IND
	rds  []deps.RD
	// fdIndex[i] maps an X-projection key to the Y-projection key and the
	// number of tuples carrying that pair.
	fdIndex []map[string]fdEntry
	// left[i] / right[i] count, per IND i, the left-side demands and the
	// right-side supplies of each projection key.
	left  []map[string]int
	right []map[string]int

	// Possibly-nil instruments (see internal/obs): per-op validation
	// counts and index sizes, under the "maintain." namespace.
	cInserts   *obs.Counter // accepted inserts
	cDeletes   *obs.Counter // accepted deletes
	cRejects   *obs.Counter // operations rejected by a dependency
	cFDChecks  *obs.Counter // FD index probes performed
	cINDChecks *obs.Counter // IND witness probes performed
	cCascade   *obs.Counter // tuples chased in by InsertCascading
	gIndexSize *obs.Gauge   // total entries across all indexes
}

type fdEntry struct {
	yKey  string
	count int
}

// NewMonitor builds a Monitor over an empty database.
func NewMonitor(ds *schema.Database, sigma []deps.Dependency) (*Monitor, error) {
	return NewMonitorObs(ds, sigma, nil)
}

// NewMonitorObs is NewMonitor publishing per-operation validation counts
// and index sizes into reg under the "maintain." namespace. A nil
// registry costs nothing.
func NewMonitorObs(ds *schema.Database, sigma []deps.Dependency, reg *obs.Registry) (*Monitor, error) {
	m := &Monitor{ds: ds, db: data.NewDatabase(ds),
		cInserts:   reg.Counter("maintain.inserts"),
		cDeletes:   reg.Counter("maintain.deletes"),
		cRejects:   reg.Counter("maintain.rejects"),
		cFDChecks:  reg.Counter("maintain.fd_checks"),
		cINDChecks: reg.Counter("maintain.ind_checks"),
		cCascade:   reg.Counter("maintain.cascade_tuples"),
		gIndexSize: reg.Gauge("maintain.index_entries"),
	}
	for _, d := range sigma {
		if err := d.Validate(ds); err != nil {
			return nil, err
		}
		switch dd := d.(type) {
		case deps.FD:
			m.fds = append(m.fds, dd)
			m.fdIndex = append(m.fdIndex, map[string]fdEntry{})
		case deps.IND:
			m.inds = append(m.inds, dd)
			m.left = append(m.left, map[string]int{})
			m.right = append(m.right, map[string]int{})
		case deps.RD:
			m.rds = append(m.rds, dd)
		default:
			return nil, fmt.Errorf("maintain: unsupported dependency kind %v", d.Kind())
		}
	}
	return m, nil
}

// Database returns the monitored database. The caller must not modify it
// directly; use Insert and Delete.
func (m *Monitor) Database() *data.Database { return m.db }

// projKey computes the projection key of tuple t (over relation rel) on
// the attribute sequence attrs.
func (m *Monitor) projKey(rel string, t data.Tuple, attrs []schema.Attribute) string {
	s, _ := m.ds.Scheme(rel)
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		p, _ := s.Pos(a)
		parts[i] = string(t[p])
	}
	return strings.Join(parts, "\x00")
}

// Insert validates and applies the insertion of t into rel. Inserting a
// duplicate tuple is a no-op. On any violation the database is unchanged
// and a descriptive error is returned.
func (m *Monitor) Insert(rel string, t data.Tuple) error {
	r, ok := m.db.Relation(rel)
	if !ok {
		return fmt.Errorf("maintain: no relation %s", rel)
	}
	s, _ := m.ds.Scheme(rel)
	if len(t) != s.Width() {
		return fmt.Errorf("maintain: tuple %v has width %d, scheme %s has width %d", t, len(t), rel, s.Width())
	}
	if r.Contains(t) {
		return nil
	}
	// RDs: purely tuple-local.
	for _, rd := range m.rds {
		if rd.Rel != rel {
			continue
		}
		for i := range rd.X {
			px, _ := s.Pos(rd.X[i])
			py, _ := s.Pos(rd.Y[i])
			if t[px] != t[py] {
				m.cRejects.Inc()
				return fmt.Errorf("maintain: %v rejects %v (%s ≠ %s)", rd, t, rd.X[i], rd.Y[i])
			}
		}
	}
	// FDs: the X-projection must be new or agree on Y.
	for i, f := range m.fds {
		if f.Rel != rel {
			continue
		}
		m.cFDChecks.Inc()
		xk := m.projKey(rel, t, f.X)
		yk := m.projKey(rel, t, f.Y)
		if e, ok := m.fdIndex[i][xk]; ok && e.yKey != yk {
			m.cRejects.Inc()
			return fmt.Errorf("maintain: %v rejects %v (conflicting tuples share %s)", f, t, schema.JoinAttrs(f.X))
		}
	}
	// INDs with this relation on the left: a witness must exist, counting
	// the new tuple itself when the IND is reflexive on this relation.
	for i, d := range m.inds {
		if d.LRel != rel {
			continue
		}
		m.cINDChecks.Inc()
		need := m.projKey(rel, t, d.X)
		if m.right[i][need] > 0 {
			continue
		}
		if d.RRel == rel && m.projKey(rel, t, d.Y) == need {
			continue // self-witnessing tuple
		}
		m.cRejects.Inc()
		return fmt.Errorf("maintain: %v rejects %v (no witness in %s)", d, t, d.RRel)
	}
	// Commit.
	if _, err := r.Insert(t); err != nil {
		return err
	}
	m.index(rel, t, +1)
	m.cInserts.Inc()
	return nil
}

// Delete validates and applies the deletion of t from rel. Deleting an
// absent tuple is an error. The deletion is rejected when it would orphan
// a referencing tuple (the tuple supplies the last witness of a demanded
// projection).
func (m *Monitor) Delete(rel string, t data.Tuple) error {
	r, ok := m.db.Relation(rel)
	if !ok {
		return fmt.Errorf("maintain: no relation %s", rel)
	}
	if !r.Contains(t) {
		return fmt.Errorf("maintain: %v not in %s", t, rel)
	}
	// Tentatively apply the count changes of the deletion, then verify the
	// deleted tuple's right-side projections are not the last supply of a
	// demanded key (removing a left-side tuple only lowers demand, so only
	// INDs with rel on the right can break).
	m.index(rel, t, -1)
	for i, d := range m.inds {
		if d.RRel != rel {
			continue
		}
		m.cINDChecks.Inc()
		k := m.projKey(rel, t, d.Y)
		if m.left[i][k] > 0 && m.right[i][k] == 0 {
			m.index(rel, t, +1) // roll back
			m.cRejects.Inc()
			return fmt.Errorf("maintain: deleting %v from %s would orphan %v", t, rel, d)
		}
	}
	// Commit: rebuild the relation without t (the data layer has no
	// delete; rebuilds stay O(|relation|), acceptable for deletions).
	fresh := data.NewDatabase(m.ds)
	for _, name := range m.ds.Names() {
		src, _ := m.db.Relation(name)
		for _, u := range src.Tuples() {
			if name == rel && u.Equal(t) {
				continue
			}
			fresh.MustInsert(name, u)
		}
	}
	m.db = fresh
	m.cDeletes.Inc()
	return nil
}

// index applies the tuple's contribution to every index with the given
// sign (+1 insert, -1 delete).
func (m *Monitor) index(rel string, t data.Tuple, sign int) {
	for i, f := range m.fds {
		if f.Rel != rel {
			continue
		}
		xk := m.projKey(rel, t, f.X)
		e := m.fdIndex[i][xk]
		e.yKey = m.projKey(rel, t, f.Y)
		e.count += sign
		if e.count <= 0 {
			delete(m.fdIndex[i], xk)
		} else {
			m.fdIndex[i][xk] = e
		}
	}
	for i, d := range m.inds {
		if d.LRel == rel {
			k := m.projKey(rel, t, d.X)
			m.left[i][k] += sign
			if m.left[i][k] <= 0 {
				delete(m.left[i], k)
			}
		}
		if d.RRel == rel {
			k := m.projKey(rel, t, d.Y)
			m.right[i][k] += sign
			if m.right[i][k] <= 0 {
				delete(m.right[i], k)
			}
		}
	}
	if m.gIndexSize != nil {
		total := 0
		for _, idx := range m.fdIndex {
			total += len(idx)
		}
		for i := range m.left {
			total += len(m.left[i]) + len(m.right[i])
		}
		m.gIndexSize.Set(int64(total))
	}
}

// InsertCascading inserts t into rel, chasing in any missing referenced
// tuples (fresh "_k" placeholder values fill undetermined attributes) —
// CASCADE-flavored insertion built on the same indexes. It returns the
// tuples added beyond t itself.
func (m *Monitor) InsertCascading(rel string, t data.Tuple) ([]string, error) {
	var added []string
	type item struct {
		rel string
		t   data.Tuple
	}
	fresh := 0
	queue := []item{{rel, t}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		err := m.Insert(it.rel, it.t)
		if err == nil {
			if !(it.rel == rel && it.t.Equal(t)) {
				added = append(added, fmt.Sprintf("%s%v", it.rel, it.t))
				m.cCascade.Inc()
			}
			// New demands may need new witnesses.
			for i, d := range m.inds {
				if d.LRel != it.rel {
					continue
				}
				need := m.projKey(it.rel, it.t, d.X)
				if m.right[i][need] > 0 {
					continue
				}
				queue = append(queue, item{d.RRel, m.witnessFor(d, it.rel, it.t, &fresh)})
			}
			continue
		}
		// A missing witness: synthesize it first, then retry.
		if strings.Contains(err.Error(), "no witness") {
			for i, d := range m.inds {
				if d.LRel != it.rel {
					continue
				}
				need := m.projKey(it.rel, it.t, d.X)
				if m.right[i][need] > 0 || (d.RRel == it.rel && m.projKey(it.rel, it.t, d.Y) == need) {
					continue
				}
				queue = append(queue, item{d.RRel, m.witnessFor(d, it.rel, it.t, &fresh)})
			}
			queue = append(queue, it)
			if len(queue) > 10000 {
				return added, fmt.Errorf("maintain: cascade did not terminate")
			}
			continue
		}
		return added, err
	}
	return added, nil
}

// witnessFor builds the right-side tuple witnessing d for the left tuple
// t, with placeholder values outside the determined columns.
func (m *Monitor) witnessFor(d deps.IND, rel string, t data.Tuple, fresh *int) data.Tuple {
	ls, _ := m.ds.Scheme(rel)
	rs, _ := m.ds.Scheme(d.RRel)
	w := make(data.Tuple, rs.Width())
	for u := range d.X {
		li, _ := ls.Pos(d.X[u])
		ri, _ := rs.Pos(d.Y[u])
		w[ri] = t[li]
	}
	for i := range w {
		if w[i] == "" {
			w[i] = data.Value(fmt.Sprintf("_%d", *fresh))
			*fresh++
		}
	}
	return w
}
