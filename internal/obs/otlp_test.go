package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// otlpFixture builds a fixed registry + record pair covering every
// encoding shape: labeled counters, gauges, a histogram with an
// exemplar, and a request record with a two-level span tree, a W3C
// trace ID, and a legacy (non-hex) exemplar needing normalization.
func otlpFixture() (*Snapshot, []*RequestRecord) {
	reg := New()
	reg.Counter("chase.rounds").Add(42)
	reg.Counter("chase.parallel_rounds").Add(9)
	reg.Counter("chase.worker_merge_conflicts").Add(2)
	reg.Counter("pool.hits").Add(11)
	reg.Counter("pool.misses").Add(4)
	reg.Counter("pool.discards").Add(1)
	reg.Counter(MetricName("http.requests", "path", "/v1/implies", "code", "200")).Add(7)
	reg.Gauge("http.in_flight").Set(2)
	reg.Gauge(MetricName("process.build_info", "version", "v1.2.3", "goversion", "go1.22", "revision", "abc123")).Set(1)
	reg.Counter("obs.export_dropped").Add(3)
	h := reg.Histogram(MetricName("http.latency_us", "path", "/v1/implies"))
	h.Observe(90)
	h.ObserveExemplar(1500, "4bf92f3577b34da6a3ce929d0e0e4736")

	rec := &RequestRecord{
		TraceID:      "4bf92f3577b34da6a3ce929d0e0e4736",
		SpanID:       "00f067aa0ba902b7",
		ParentSpanID: "b7ad6b7169203331",
		Route:        "/v1/implies",
		Status:       200,
		Start:        time.Unix(1700000000, 0).UTC(),
		DurationNS:   2_500_000,
		Goal:         "R: A -> B",
		Mode:         "unrestricted",
		Verdict:      "yes",
		Engine:       "chase",
		Cache:        "miss",
		Trace: &SpanSnapshot{
			Name:       "implies",
			DurationNS: 2_000_000,
			Attrs:      []Attr{{Key: "engine", Value: "chase"}},
			Children: []*SpanSnapshot{
				{Name: "chase.round", DurationNS: 900_000},
				{Name: "chase.round", DurationNS: 800_000, Running: true},
			},
		},
	}
	legacy := &RequestRecord{
		TraceID:    "1a2b3c4-000042", // pre-trace-context request-ID form
		Route:      "/v1/explain",
		Status:     503,
		Start:      time.Unix(1700000004, 0).UTC(),
		DurationNS: 50_000_000,
		Verdict:    "unknown",
		Engine:     "chase",
	}
	return reg.Snapshot(), []*RequestRecord{rec, legacy}
}

// TestOTLPGolden pins the whole OTLP JSON document — field names,
// string-encoded int64s, attribute decoding, span flattening, ID
// synthesis — against a golden file (-update regenerates).
func TestOTLPGolden(t *testing.T) {
	snap, recs := otlpFixture()
	doc := OTLPExport(snap, recs, OTLPResource{Attributes: []OTLPKeyValue{
		otlpStr("service.name", "depserve"),
		otlpStr("service.version", "v1.2.3"),
		otlpStr("vcs.revision", "abc123"),
	}}, time.Unix(1700000010, 0).UTC())

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "otlp.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("OTLP encoding drifted from golden (regenerate with -update if intended)\n got: %s\nwant: %s", got, want)
	}
}

// TestOTLPRoundTrip re-decodes the wire form into the same document —
// the encoding must survive its own JSON round trip, since the file
// sink's lines are read back by downstream tooling.
func TestOTLPRoundTrip(t *testing.T) {
	snap, recs := otlpFixture()
	doc := OTLPExport(snap, recs, OTLPResourceFor("depserve"), time.Unix(1700000010, 0))
	var buf bytes.Buffer
	if err := doc.WriteOTLP(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") != 1 {
		t.Errorf("WriteOTLP should emit exactly one line, got %q", buf.String())
	}
	var back OTLPDocument
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	var again bytes.Buffer
	if err := back.WriteOTLP(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Errorf("round trip not stable:\n1st: %s\n2nd: %s", buf.Bytes(), again.Bytes())
	}
}

func TestOTLPSpanEncoding(t *testing.T) {
	_, recs := otlpFixture()
	doc := OTLPExport(nil, recs, OTLPResourceFor("depserve"), time.Unix(1700000010, 0))
	if len(doc.ResourceMetrics) != 0 {
		t.Errorf("span-only export has resourceMetrics")
	}
	if len(doc.ResourceSpans) != 1 {
		t.Fatalf("resourceSpans = %d, want 1", len(doc.ResourceSpans))
	}
	spans := doc.ResourceSpans[0].ScopeSpans[0].Spans
	// Record 1: root + implies + 2 rounds; record 2: root only.
	if len(spans) != 5 {
		t.Fatalf("spans = %d, want 5", len(spans))
	}
	root := spans[0]
	if root.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" ||
		root.SpanID != "00f067aa0ba902b7" || root.ParentSpanID != "b7ad6b7169203331" {
		t.Errorf("root IDs = %s/%s/%s, want the record's W3C IDs",
			root.TraceID, root.SpanID, root.ParentSpanID)
	}
	if root.Kind != otlpKindServer || root.Status.Code != otlpStatusOK {
		t.Errorf("root kind/status = %d/%d", root.Kind, root.Status.Code)
	}
	if root.EndTimeUnixNano-root.StartTimeUnixNano != 2_500_000 {
		t.Errorf("root duration = %d ns", root.EndTimeUnixNano-root.StartTimeUnixNano)
	}
	engine := spans[1]
	if engine.ParentSpanID != root.SpanID || engine.Kind != otlpKindInternal {
		t.Errorf("engine span parent/kind = %s/%d", engine.ParentSpanID, engine.Kind)
	}
	if spans[2].ParentSpanID != engine.SpanID || spans[3].ParentSpanID != engine.SpanID {
		t.Errorf("round spans not parented to the engine span")
	}
	if spans[2].SpanID == spans[3].SpanID {
		t.Errorf("sibling spans share an ID: %s", spans[2].SpanID)
	}
	for i, sp := range spans {
		if !isHex(sp.TraceID, 32) || !isHex(sp.SpanID, 16) {
			t.Errorf("span %d IDs not valid hex: trace=%q span=%q", i, sp.TraceID, sp.SpanID)
		}
	}
	legacy := spans[4]
	if legacy.Status.Code != otlpStatusError {
		t.Errorf("503 record status = %d, want error", legacy.Status.Code)
	}
	if legacy.TraceID == recs[1].TraceID {
		t.Errorf("legacy trace ID passed through unnormalized: %q", legacy.TraceID)
	}
	if got := OTLPTraceID(recs[1].TraceID); got != legacy.TraceID {
		t.Errorf("legacy normalization unstable: %q vs %q", got, legacy.TraceID)
	}
}

func TestOTLPMetricEncoding(t *testing.T) {
	snap, _ := otlpFixture()
	doc := OTLPExport(snap, nil, OTLPResourceFor("depserve"), time.Unix(1700000010, 0))
	if len(doc.ResourceSpans) != 0 {
		t.Errorf("metric-only export has resourceSpans")
	}
	metrics := doc.ResourceMetrics[0].ScopeMetrics[0].Metrics
	byName := map[string]OTLPMetric{}
	for _, m := range metrics {
		byName[m.Name] = m
	}
	sum, ok := byName["http.requests"]
	if !ok || sum.Sum == nil || !sum.Sum.IsMonotonic {
		t.Fatalf("http.requests not a monotonic sum: %+v", sum)
	}
	dp := sum.Sum.DataPoints[0]
	if dp.AsInt != 7 || len(dp.Attributes) != 2 {
		t.Errorf("http.requests data point = %+v", dp)
	}
	if dp.Attributes[0].Key != "path" || dp.Attributes[0].Value.StringValue != "/v1/implies" {
		t.Errorf("label decoding = %+v", dp.Attributes)
	}
	if g, ok := byName["process.build_info"]; !ok || g.Gauge == nil ||
		len(g.Gauge.DataPoints[0].Attributes) != 3 {
		t.Errorf("build_info gauge = %+v", g)
	}
	hist, ok := byName["http.latency_us"]
	if !ok || hist.Histogram == nil {
		t.Fatalf("http.latency_us missing")
	}
	hdp := hist.Histogram.DataPoints[0]
	if len(hdp.BucketCounts) != len(hdp.ExplicitBounds)+1 {
		t.Errorf("bucketCounts/explicitBounds = %d/%d, want n+1/n",
			len(hdp.BucketCounts), len(hdp.ExplicitBounds))
	}
	if hdp.Count != 2 || hdp.Sum != 1590 {
		t.Errorf("histogram count/sum = %d/%v", hdp.Count, hdp.Sum)
	}
	if len(hdp.Exemplars) != 1 || hdp.Exemplars[0].TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("exemplars = %+v", hdp.Exemplars)
	}
}

func TestOTLPResourceFor(t *testing.T) {
	res := OTLPResourceFor("depserve")
	got := map[string]string{}
	for _, a := range res.Attributes {
		got[a.Key] = a.Value.StringValue
	}
	if got["service.name"] != "depserve" {
		t.Errorf("service.name = %q", got["service.name"])
	}
	for _, key := range []string{"service.version", "vcs.revision", "process.runtime.version"} {
		if got[key] == "" {
			t.Errorf("resource attribute %s empty", key)
		}
	}
	if !strings.HasPrefix(got["process.runtime.version"], "go") {
		t.Errorf("process.runtime.version = %q", got["process.runtime.version"])
	}
}

func TestOTLPNilAndEmpty(t *testing.T) {
	doc := OTLPExport(nil, nil, OTLPResourceFor("x"), time.Unix(0, 1))
	if len(doc.ResourceSpans) != 0 || len(doc.ResourceMetrics) != 0 {
		t.Errorf("empty export = %+v", doc)
	}
	b, err := json.Marshal(doc)
	if err != nil || string(b) != "{}" {
		t.Errorf("empty document = %s (%v), want {}", b, err)
	}
	if OTLPExport((*Snapshot)(nil), []*RequestRecord{nil}, OTLPResource{}, time.Unix(0, 1)); false {
		t.Error("unreachable")
	}
}

func TestSynthHexProperties(t *testing.T) {
	a := synthHex("seed", "k1", 16)
	b := synthHex("seed", "k2", 16)
	if a == b {
		t.Errorf("distinct keys collided: %s", a)
	}
	if a != synthHex("seed", "k1", 16) {
		t.Errorf("synthHex not deterministic")
	}
	if !isHex(a, 32) || !isHex(synthHex("s", "k", 8), 16) {
		t.Errorf("synthHex output not valid hex: %q", a)
	}
}
