package obs

import (
	"fmt"
	"testing"
)

func TestDigestStoreAccumulates(t *testing.T) {
	reg := New()
	d := NewDigestStore(16, reg)
	for i := 0; i < 3; i++ {
		d.Observe(DigestObservation{
			Fingerprint: "fp1", Query: "R: A -> B",
			DurationNS: int64(1000 * (i + 1)),
		})
	}
	d.Observe(DigestObservation{Fingerprint: "fp1", DurationNS: 4000, Err: true})
	d.Observe(DigestObservation{Fingerprint: "fp1", DurationNS: 500, CacheHit: true})
	snaps := d.Snapshot(0)
	if len(snaps) != 1 {
		t.Fatalf("snapshot has %d digests, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Count != 5 || s.Errors != 1 || s.CacheHits != 1 {
		t.Errorf("count/errors/hits = %d/%d/%d, want 5/1/1", s.Count, s.Errors, s.CacheHits)
	}
	if s.TotalNS != 10500 || s.MaxNS != 4000 || s.MeanNS != 2100 {
		t.Errorf("total/max/mean = %d/%d/%d", s.TotalNS, s.MaxNS, s.MeanNS)
	}
	if s.Query != "R: A -> B" {
		t.Errorf("query sample = %q (first observation's sample should be retained)", s.Query)
	}
	if s.LatencyUS.Count != 5 {
		t.Errorf("latency histogram count = %d, want 5", s.LatencyUS.Count)
	}
	if reg.Counter("obs.digest_observations").Value() != 5 {
		t.Errorf("obs.digest_observations = %d", reg.Counter("obs.digest_observations").Value())
	}
	if reg.Gauge("obs.digest_entries").Value() != 1 {
		t.Errorf("obs.digest_entries = %d", reg.Gauge("obs.digest_entries").Value())
	}
}

// TestDigestStoreBounded is the acceptance check: 10k distinct
// fingerprints must leave at most Cap() entries, with the overflow
// counted in obs.digest_evictions.
func TestDigestStoreBounded(t *testing.T) {
	reg := New()
	d := NewDigestStore(64, reg)
	const distinct = 10_000
	for i := 0; i < distinct; i++ {
		d.Observe(DigestObservation{
			Fingerprint: fmt.Sprintf("fp-%05d", i),
			DurationNS:  int64(i%97) * 1000,
		})
	}
	if d.Len() > d.Cap() {
		t.Fatalf("store holds %d digests, cap %d", d.Len(), d.Cap())
	}
	if got := len(d.Snapshot(0)); got > d.Cap() {
		t.Fatalf("snapshot has %d digests, cap %d", got, d.Cap())
	}
	evicted := reg.Counter("obs.digest_evictions").Value()
	if evicted != int64(distinct-d.Len()) {
		t.Errorf("obs.digest_evictions = %d, want %d (observed %d, retained %d)",
			evicted, distinct-d.Len(), distinct, d.Len())
	}
	if g := reg.Gauge("obs.digest_entries").Value(); g != int64(d.Len()) {
		t.Errorf("obs.digest_entries = %d, Len() = %d", g, d.Len())
	}
}

// TestDigestStoreSpaceSaving pins the admission guarantee: a heavy
// hitter that keeps being observed survives a stream of singletons,
// and an entry admitted over a victim carries the victim's total as
// its inherited error floor.
func TestDigestStoreSpaceSaving(t *testing.T) {
	// Two entries per shard: a singleton arriving at the hot entry's full
	// shard evicts the other slot's (smaller-total) singleton, never the
	// heavy hitter.
	d := NewDigestStore(16, New())
	hot := "the-hot-query"
	for i := 0; i < 2000; i++ {
		d.Observe(DigestObservation{Fingerprint: hot, DurationNS: 50_000})
		d.Observe(DigestObservation{Fingerprint: fmt.Sprintf("one-off-%d", i), DurationNS: 10})
	}
	var found *DigestSnapshot
	for _, s := range d.Snapshot(0) {
		if s.Fingerprint == hot {
			found = &s
			break
		}
	}
	if found == nil {
		t.Fatalf("heavy hitter evicted by singleton stream; snapshot: %+v", d.Snapshot(0))
	}
	// The hot entry's observations dominate: even if it was evicted and
	// re-admitted early on, nearly all of its 2000 observations count.
	if found.Count < 1000 {
		t.Errorf("heavy hitter count = %d, want most of 2000", found.Count)
	}
	if found.TotalNS-found.InheritedNS < found.Count*50_000 {
		t.Errorf("own total %d (inherited %d) below count*duration", found.TotalNS, found.InheritedNS)
	}
}

func TestDigestStoreInheritedFloor(t *testing.T) {
	d := NewDigestStore(8, New()) // 1 per shard
	// Two fingerprints in the same shard: the second admission evicts the
	// first and inherits its total.
	var a, b string
	base := d.shardFor("probe-a")
	for i := 0; ; i++ {
		fp := fmt.Sprintf("cand-%d", i)
		if d.shardFor(fp) == base {
			if a == "" {
				a = fp
			} else if fp != a {
				b = fp
				break
			}
		}
	}
	d.Observe(DigestObservation{Fingerprint: a, DurationNS: 7000})
	d.Observe(DigestObservation{Fingerprint: b, DurationNS: 1000})
	for _, s := range d.Snapshot(0) {
		if s.Fingerprint != b {
			continue
		}
		if s.InheritedNS != 7000 || s.TotalNS != 8000 {
			t.Errorf("inherited/total = %d/%d, want 7000/8000", s.InheritedNS, s.TotalNS)
		}
		if s.MeanNS != 1000 {
			t.Errorf("mean = %d, want 1000 (inherited floor excluded)", s.MeanNS)
		}
		return
	}
	t.Fatalf("fingerprint %q not admitted", b)
}

func TestDigestStoreHotDepsMergedAndBounded(t *testing.T) {
	d := NewDigestStore(16, New())
	for i := 0; i < 20; i++ {
		d.Observe(DigestObservation{
			Fingerprint: "fp", DurationNS: 1000,
			Profile: &DepProfile{Deps: []DepCost{
				{Dep: "R: A -> B", Kind: "fd", Firings: 1, ScanNS: 10},
				{Dep: fmt.Sprintf("R[X%d] <= S[Y]", i), Kind: "ind", Firings: 1, ScanNS: int64(i)},
				{Dep: "cold", Kind: "fd"},
			}},
		})
	}
	s := d.Snapshot(0)[0]
	if len(s.HotDeps) > digestHotDeps {
		t.Fatalf("hot deps = %d entries, cap %d", len(s.HotDeps), digestHotDeps)
	}
	// The recurring FD accumulates across merges and tops the list.
	if s.HotDeps[0].Dep != "R: A -> B" || s.HotDeps[0].Firings < 10 {
		t.Errorf("hottest merged dep = %+v", s.HotDeps[0])
	}
	for _, dc := range s.HotDeps {
		if dc.Dep == "cold" {
			t.Errorf("workless dep retained in hot list: %+v", s.HotDeps)
		}
	}
}

func TestDigestStoreSnapshotOrderAndLimit(t *testing.T) {
	d := NewDigestStore(16, New())
	d.Observe(DigestObservation{Fingerprint: "cool", DurationNS: 100})
	d.Observe(DigestObservation{Fingerprint: "hot", DurationNS: 9000})
	d.Observe(DigestObservation{Fingerprint: "warm", DurationNS: 5000})
	snaps := d.Snapshot(0)
	if len(snaps) != 3 || snaps[0].Fingerprint != "hot" || snaps[2].Fingerprint != "cool" {
		t.Errorf("snapshot order: %+v", snaps)
	}
	if got := d.Snapshot(2); len(got) != 2 || got[1].Fingerprint != "warm" {
		t.Errorf("Snapshot(2) = %+v", got)
	}
}

func TestDigestStoreOff(t *testing.T) {
	var d *DigestStore
	d.Observe(DigestObservation{Fingerprint: "fp", DurationNS: 1}) // no panic
	if d.Snapshot(0) != nil || d.Len() != 0 || d.Cap() != 0 {
		t.Errorf("nil store should be empty")
	}
	if NewDigestStore(0, New()) != nil || NewDigestStore(-1, New()) != nil {
		t.Errorf("k <= 0 should return the nil store")
	}
	// Empty fingerprints (digests off at the serve layer, or a request
	// that never reached fingerprinting) are dropped, not aggregated.
	reg := New()
	s := NewDigestStore(8, reg)
	s.Observe(DigestObservation{Fingerprint: "", DurationNS: 1})
	if s.Len() != 0 || reg.Counter("obs.digest_observations").Value() != 0 {
		t.Errorf("empty fingerprint should be a no-op")
	}
}

// TestDigestStoreNilObserveZeroAlloc pins the digests-off hot path:
// observing into a nil store must not allocate (the serve layer calls
// it unconditionally on every request).
func TestDigestStoreNilObserveZeroAlloc(t *testing.T) {
	var d *DigestStore
	o := DigestObservation{Fingerprint: "fp", DurationNS: 100}
	if n := testing.AllocsPerRun(100, func() { d.Observe(o) }); n != 0 {
		t.Errorf("nil DigestStore.Observe allocates %v per call", n)
	}
}
