package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testRecord(id string) *RequestRecord {
	return &RequestRecord{
		TraceID: id, Route: "/v1/implies", Status: 200,
		Start: time.Unix(1700000000, 0), DurationNS: 1000,
	}
}

// TestExporterFileSink drives records through a file exporter and reads
// the OTLP documents back off the file: every line must decode, and the
// spans must cover every exported record.
func TestExporterFileSink(t *testing.T) {
	reg := New()
	path := filepath.Join(t.TempDir(), "otlp.jsonl")
	e, err := NewExporter(ExporterConfig{
		Reg: reg, FilePath: path,
		BatchSize: 4, FlushInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		e.Export(testRecord(synthHex("trace", string(rune('a'+i)), 16)))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, metricDocs := 0, 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var doc OTLPDocument
		if err := json.Unmarshal(sc.Bytes(), &doc); err != nil {
			t.Fatalf("line does not decode as an OTLP document: %v\n%s", err, sc.Text())
		}
		for _, rs := range doc.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				spans += len(ss.Spans)
			}
		}
		if len(doc.ResourceMetrics) > 0 {
			metricDocs++
		}
	}
	if spans != n {
		t.Errorf("file holds %d spans, want %d", spans, n)
	}
	// Close always emits a final metrics snapshot.
	if metricDocs == 0 {
		t.Errorf("no metrics document in the file")
	}
	if got := reg.Counter("obs.export_spans").Value(); got != n {
		t.Errorf("obs.export_spans = %d, want %d", got, n)
	}
	if reg.Counter("obs.export_dropped").Value() != 0 {
		t.Errorf("unexpected drops")
	}
}

// TestExporterNeverBlocks fills a tiny queue while the exporter's
// goroutine is wedged inside a slow HTTP sink: every excess Export must
// return immediately and count a drop rather than block the caller —
// the serve-path contract.
func TestExporterNeverBlocks(t *testing.T) {
	reg := New()
	release := make(chan struct{})
	var posts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		<-release
	}))
	defer ts.Close()
	defer close(release)

	e, err := NewExporter(ExporterConfig{
		Reg: reg, Endpoint: ts.URL,
		QueueSize: 2, BatchSize: 1, FlushInterval: time.Hour,
		Client: &http.Client{Timeout: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cleanup (not defer): Close blocks until the sink unwedges, so it
	// must run after the deferred close(release).
	t.Cleanup(func() { e.Close() }) //nolint:errcheck
	// One record wedges the goroutine in the POST; two fill the queue;
	// the rest must drop. Wait until the sink is actually holding the
	// goroutine so the queue arithmetic is deterministic.
	e.Export(testRecord("wedge"))
	for posts.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			e.Export(testRecord("r"))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Export blocked on a full queue")
	}
	if got := reg.Counter("obs.export_dropped").Value(); got != 8 {
		t.Errorf("obs.export_dropped = %d, want 8 (10 sends, queue of 2)", got)
	}
}

// TestExporterHTTPSink posts batches to a live endpoint and checks the
// payload content type and shape.
func TestExporterHTTPSink(t *testing.T) {
	var mu sync.Mutex
	var docs []OTLPDocument
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type = %q", ct)
		}
		var doc OTLPDocument
		if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
			t.Errorf("body does not decode: %v", err)
		}
		mu.Lock()
		docs = append(docs, doc)
		mu.Unlock()
	}))
	defer ts.Close()

	reg := New()
	reg.Counter("chase.rounds").Add(3)
	e, err := NewExporter(ExporterConfig{
		Reg: reg, Endpoint: ts.URL, BatchSize: 2, FlushInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Export(testRecord("4bf92f3577b34da6a3ce929d0e0e4736"))
	e.Export(testRecord("4bf92f3577b34da6a3ce929d0e0e4737"))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	spanDocs, metricDocs := 0, 0
	for _, d := range docs {
		if len(d.ResourceSpans) > 0 {
			spanDocs++
		}
		if len(d.ResourceMetrics) > 0 {
			metricDocs++
		}
	}
	if spanDocs == 0 || metricDocs == 0 {
		t.Errorf("span/metric documents = %d/%d, want both > 0", spanDocs, metricDocs)
	}
	if errs := reg.Counter("obs.export_errors").Value(); errs != 0 {
		t.Errorf("obs.export_errors = %d", errs)
	}
}

// TestExporterSinkErrorsCounted points the exporter at a 500ing
// endpoint: the failure lands in obs.export_errors, never in the
// caller.
func TestExporterSinkErrorsCounted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no thanks", http.StatusInternalServerError)
	}))
	defer ts.Close()
	reg := New()
	e, err := NewExporter(ExporterConfig{Reg: reg, Endpoint: ts.URL, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Export(testRecord("r1"))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("obs.export_errors").Value(); got == 0 {
		t.Errorf("obs.export_errors = 0, want > 0")
	}
}

// TestExporterOff covers the "export off" exporter: no sink → nil, and
// every method on nil is a no-op.
func TestExporterOff(t *testing.T) {
	e, err := NewExporter(ExporterConfig{Reg: New()})
	if err != nil {
		t.Fatal(err)
	}
	if e != nil {
		t.Fatalf("no-sink config built an exporter")
	}
	e.Export(testRecord("x"))
	if err := e.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

// TestExporterCloseIdempotent double-closes concurrently.
func TestExporterCloseIdempotent(t *testing.T) {
	e, err := NewExporter(ExporterConfig{FilePath: filepath.Join(t.TempDir(), "o.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Close() //nolint:errcheck
		}()
	}
	wg.Wait()
}
