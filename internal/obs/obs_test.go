package obs

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("y")
	g.Set(7)
	g.SetMax(9)
	g.Add(-1)
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %d", g.Value())
	}
	h := r.Histogram("z")
	h.Observe(5)
	sp := r.StartSpan("root")
	child := sp.StartSpan("child")
	child.SetAttr("k", "v")
	child.SetInt("n", 1)
	child.End()
	sp.End()
	if sp.Snapshot() != nil {
		t.Errorf("nil span snapshot should be nil")
	}
	if r.Snapshot() != nil {
		t.Errorf("nil registry snapshot should be nil")
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil snapshot text: %q, %v", buf.String(), err)
	}
}

// TestConcurrentUpdates hammers one counter, gauge and histogram from many
// goroutines; run under -race this is the data-race guard for the whole
// instrument set.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared.counter")
			g := r.Gauge("shared.gauge")
			h := r.Histogram("shared.hist")
			sp := r.StartSpan("shared.span")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.SetMax(int64(w*perWorker + i))
				h.Observe(int64(i))
				sp.SetInt("i", int64(i))
			}
			sp.End()
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["shared.counter"]; got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := s.Gauges["shared.gauge"]; got != workers*perWorker-1 {
		t.Errorf("gauge high-water = %d, want %d", got, workers*perWorker-1)
	}
	h := s.Histograms["shared.hist"]
	if h.Count != workers*perWorker || h.Max != perWorker-1 {
		t.Errorf("hist count=%d max=%d", h.Count, h.Max)
	}
	var total int64
	for _, b := range h.Buckets {
		total += b.Count
	}
	if total != h.Count {
		t.Errorf("bucket sum %d != count %d", total, h.Count)
	}
	if len(s.Spans) != workers {
		t.Errorf("got %d root spans, want %d", len(s.Spans), workers)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 8 || s.Sum != 1025 || s.Max != 1000 {
		t.Fatalf("snapshot %+v", s)
	}
	// Buckets: le=0 {0}, le=1 {1}, le=3 {2,3}, le=7 {4,7}, le=15 {8},
	// le=1023 {1000}.
	want := []Bucket{{Le: 0, Count: 1}, {Le: 1, Count: 1}, {Le: 3, Count: 2},
		{Le: 7, Count: 2}, {Le: 15, Count: 1}, {Le: 1023, Count: 1}}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Errorf("buckets = %+v, want %+v", s.Buckets, want)
	}
}

func TestSpanNesting(t *testing.T) {
	r := New()
	root := r.StartSpan("root")
	root.SetAttr("engine", "chase")
	a := root.StartSpan("a")
	aa := a.StartSpan("aa")
	aa.End()
	a.End()
	b := root.StartSpan("b")
	b.SetInt("tuples", 42)
	b.End()
	root.End()

	s := r.Snapshot()
	if len(s.Spans) != 1 {
		t.Fatalf("got %d root spans", len(s.Spans))
	}
	rs := s.Spans[0]
	if rs.Name != "root" || rs.Running || len(rs.Children) != 2 {
		t.Fatalf("root span %+v", rs)
	}
	if rs.Children[0].Name != "a" || len(rs.Children[0].Children) != 1 ||
		rs.Children[0].Children[0].Name != "aa" {
		t.Errorf("nesting wrong: %+v", rs.Children[0])
	}
	if rs.Children[1].Name != "b" || len(rs.Children[1].Attrs) != 1 ||
		rs.Children[1].Attrs[0] != (Attr{"tuples", "42"}) {
		t.Errorf("attrs wrong: %+v", rs.Children[1])
	}
	if rs.DurationNS < rs.Children[0].DurationNS {
		t.Errorf("parent duration %d < child duration %d", rs.DurationNS, rs.Children[0].DurationNS)
	}
	// A snapshot before End reports the span as running.
	open := r.StartSpan("open")
	if snap := open.Snapshot(); !snap.Running || snap.DurationNS < 0 {
		t.Errorf("open span snapshot %+v", snap)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("chase.rounds").Add(14)
	r.Counter("ind.expanded").Add(3)
	r.Gauge("ind.frontier_peak").SetMax(9)
	r.Histogram("ind.chain_length").Observe(14)
	root := r.StartSpan("core.query")
	root.SetAttr("engine", "ind")
	child := root.StartSpan("ind.decide")
	child.SetInt("visited", 9)
	child.End()
	root.End()

	snap := r.Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", snap, back)
	}
}

func TestWriteText(t *testing.T) {
	r := New()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(3)
	sp := r.StartSpan("root")
	sp.StartSpan("child").End()
	sp.End()
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"counters:", "a.count", "b.count", "gauges:", "histograms:", "spans:", "root", "child"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Sorted: a.count before b.count.
	if strings.Index(out, "a.count") > strings.Index(out, "b.count") {
		t.Errorf("counters not sorted:\n%s", out)
	}
}
