package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderRecentNewestFirst(t *testing.T) {
	rec := NewRecorder(16)
	for i := 0; i < 5; i++ {
		rec.Add(&RequestRecord{TraceID: fmt.Sprintf("t%d", i), Route: "/v1/implies"})
	}
	got := rec.Recent(0)
	if len(got) != 5 {
		t.Fatalf("Recent returned %d records, want 5", len(got))
	}
	for i, r := range got {
		if want := fmt.Sprintf("t%d", 4-i); r.TraceID != want {
			t.Errorf("Recent[%d] = %s, want %s (newest first)", i, r.TraceID, want)
		}
	}
	if lim := rec.Recent(2); len(lim) != 2 || lim[0].TraceID != "t4" || lim[1].TraceID != "t3" {
		t.Errorf("Recent(2) = %v", lim)
	}
}

func TestRecorderEviction(t *testing.T) {
	rec := NewRecorder(8)
	n := rec.Cap()
	if n < 8 {
		t.Fatalf("Cap() = %d, want at least the requested 8", n)
	}
	total := n + 5
	for i := 0; i < total; i++ {
		rec.Add(&RequestRecord{TraceID: fmt.Sprintf("t%d", i)})
	}
	got := rec.Recent(0)
	if len(got) != n {
		t.Fatalf("after overflow: %d records retained, want capacity %d", len(got), n)
	}
	// The newest record survives, the oldest five were evicted.
	if got[0].TraceID != fmt.Sprintf("t%d", total-1) {
		t.Errorf("newest retained = %s, want t%d", got[0].TraceID, total-1)
	}
	for i := 0; i < 5; i++ {
		if r := rec.Get(fmt.Sprintf("t%d", i)); r != nil {
			t.Errorf("t%d should have been evicted, Get returned %+v", i, r)
		}
	}
	if r := rec.Get(fmt.Sprintf("t%d", total-1)); r == nil {
		t.Errorf("newest record not retrievable by trace ID")
	}
}

func TestRecorderGet(t *testing.T) {
	rec := NewRecorder(16)
	want := &RequestRecord{
		TraceID:    "abc123",
		Route:      "/v1/implies",
		Status:     200,
		Start:      time.Unix(1700000000, 0),
		DurationNS: 12345,
		Verdict:    "yes",
		Engine:     "chase",
	}
	rec.Add(want)
	got := rec.Get("abc123")
	if got == nil {
		t.Fatal("Get returned nil for a retained trace ID")
	}
	if got.Route != want.Route || got.Verdict != want.Verdict || got.DurationNS != want.DurationNS {
		t.Errorf("Get = %+v, want %+v", got, want)
	}
	if rec.Get("nope") != nil {
		t.Errorf("Get of an unknown trace ID must return nil")
	}
}

func TestRecorderNilSafety(t *testing.T) {
	var rec *Recorder
	rec.Add(&RequestRecord{TraceID: "x"})
	if got := rec.Recent(10); got != nil {
		t.Errorf("nil recorder Recent = %v", got)
	}
	if rec.Get("x") != nil {
		t.Errorf("nil recorder Get must return nil")
	}
	if rec.Cap() != 0 {
		t.Errorf("nil recorder Cap = %d", rec.Cap())
	}
	// Zero or negative capacity disables recording entirely.
	if NewRecorder(0) != nil || NewRecorder(-1) != nil {
		t.Errorf("NewRecorder(<=0) must return nil (disabled)")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec.Add(&RequestRecord{TraceID: fmt.Sprintf("g%d-%d", g, i)})
				rec.Recent(4)
				rec.Get(fmt.Sprintf("g%d-%d", g, i/2))
			}
		}(g)
	}
	wg.Wait()
	got := rec.Recent(0)
	if len(got) != rec.Cap() {
		t.Fatalf("retained %d records, want full capacity %d", len(got), rec.Cap())
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].seq < got[i].seq {
			t.Fatalf("Recent not newest-first at %d", i)
		}
	}
}

// TestObserveExemplar pins the exemplar round trip: ObserveExemplar
// stores the trace ID on the bucket the value lands in, the snapshot
// carries it, and plain Observe never touches the slots.
func TestObserveExemplar(t *testing.T) {
	reg := New()
	h := reg.Histogram("lat")
	h.Observe(2)              // le=3 bucket, no exemplar
	h.ObserveExemplar(5, "a") // le=7 bucket
	h.ObserveExemplar(6, "b") // le=7 bucket again: most recent wins
	h.ObserveExemplar(900, "slow")

	byLe := map[int64]Bucket{}
	for _, b := range reg.Snapshot().Histograms["lat"].Buckets {
		byLe[b.Le] = b
	}
	if b := byLe[3]; b.Exemplar != "" {
		t.Errorf("plain Observe bucket has exemplar %q", b.Exemplar)
	}
	if b := byLe[7]; b.Exemplar != "b" {
		t.Errorf("le=7 exemplar = %q, want most recent %q", b.Exemplar, "b")
	}
	if b := byLe[1023]; b.Exemplar != "slow" {
		t.Errorf("le=1023 exemplar = %q, want %q", b.Exemplar, "slow")
	}
	// Exemplars are snapshot-only decoration: the exposition ignores
	// them, so /metrics stays plain text-format 0.0.4.
	var sb strings.Builder
	if err := reg.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "slow") {
		t.Errorf("exemplar leaked into the text exposition:\n%s", sb.String())
	}
	// Nil histogram: both paths are no-ops.
	var nh *Histogram
	nh.Observe(1)
	nh.ObserveExemplar(1, "x")
}

func TestSampleRuntime(t *testing.T) {
	reg := New()
	SampleRuntime(reg)
	snap := reg.Snapshot()
	for _, g := range []string{
		"process.goroutines",
		"process.heap_alloc_bytes",
		"process.memory_total_bytes",
		"process.gomaxprocs",
	} {
		if snap.Gauges[g] <= 0 {
			t.Errorf("gauge %s = %d, want > 0 (gauges: %v)", g, snap.Gauges[g], snap.Gauges)
		}
	}
	// Never panics on a nil registry.
	SampleRuntime(nil)
}

func TestStartRuntimeSampler(t *testing.T) {
	reg := New()
	stop := StartRuntimeSampler(reg, time.Hour)
	// The sampler takes one sample synchronously on start, so gauges are
	// live immediately even with a long interval.
	if reg.Snapshot().Gauges["process.goroutines"] <= 0 {
		t.Errorf("no immediate sample on start")
	}
	stop()
	stop() // idempotent
	if s := StartRuntimeSampler(nil, time.Millisecond); s == nil {
		t.Errorf("nil-registry sampler must still return a stop func")
	} else {
		s()
	}
}
