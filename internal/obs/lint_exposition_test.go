package obs

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// Metric-name literals as they appear at instrumentation sites. The
// full-call pattern requires the closing paren so that dynamic names
// built by concatenation (e.g. `Gauge("benchws." + name)`) are skipped
// — those cannot be pinned statically. MetricName("base", ...) calls
// contribute their base family.
var (
	fullCallRe   = regexp.MustCompile(`(?:Counter|Gauge|Histogram)\(\s*"([A-Za-z0-9._]+)"\s*\)`)
	metricNameRe = regexp.MustCompile(`MetricName\(\s*"([A-Za-z0-9._]+)"`)
)

// TestExpositionCompleteness greps every non-test Go file under
// internal/ for Counter/Gauge/Histogram metric-name literals and
// asserts each family appears in the Prometheus exposition golden.
// A failure means an instrument was added without extending
// goldenRegistry — exactly the gap that let obs.export_dropped ship
// without exposition coverage before PR 7.
func TestExpositionCompleteness(t *testing.T) {
	families := map[string][]string{} // family -> files using it
	root := ".."                      // internal/
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, re := range []*regexp.Regexp{fullCallRe, metricNameRe} {
			for _, m := range re.FindAllStringSubmatch(string(src), -1) {
				families[m[1]] = append(families[m[1]], path)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(families) < 50 {
		t.Fatalf("found only %d metric families under internal/ — the scan regex broke", len(families))
	}

	golden := ""
	for _, name := range []string{"metrics.golden", "otlp.golden"} {
		raw, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("read golden (regenerate with -update): %v", err)
		}
		golden += string(raw)
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		// metrics.golden carries the sanitized Prometheus family
		// (counters gain a _total suffix); the OTLP golden carries the
		// raw dotted name. Either proves exposition coverage.
		fam := sanitizeFamily(name)
		if strings.Contains(golden, "# TYPE "+fam+" ") ||
			strings.Contains(golden, "# TYPE "+fam+"_total ") ||
			strings.Contains(golden, `"`+name+`"`) {
			continue
		}
		t.Errorf("metric %q (used in %s) missing from exposition goldens — add it to goldenRegistry and run -update",
			name, families[name][0])
	}
}
