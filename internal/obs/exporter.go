package obs

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"
)

// Exporter streams telemetry out of the process in the OTLP JSON
// encoding (otlp.go): completed request records batch into span
// documents, and the registry snapshots into metric documents on a
// timer. Two sinks, usable together: a file (one compact document per
// line — replayable, greppable, and what `-otlp-file` writes) and an
// HTTP endpoint (one POST per document, what `-otlp-endpoint` targets).
//
// The design constraint is the same one the rest of this package lives
// under: the serve path must never pay for export. Export is one
// non-blocking channel send; when the bounded queue is full the record
// is dropped and counted in obs.export_dropped — a slow or absent
// collector costs drops, never latency. All encoding, file writes and
// HTTP round trips happen on the exporter's own goroutine.
type Exporter struct {
	queue    chan *RequestRecord
	done     chan struct{}
	exited   chan struct{}
	stopOnce sync.Once
	closeErr error

	reg      *Registry
	res      OTLPResource
	file     *os.File
	endpoint string
	client   *http.Client

	batchSize       int
	flushInterval   time.Duration
	metricsInterval time.Duration

	cSpans   *Counter // obs.export_spans: records exported
	cBatches *Counter // obs.export_batches: documents written
	cDropped *Counter // obs.export_dropped: records lost to a full queue
	cErrors  *Counter // obs.export_errors: sink write/POST failures
}

// ExporterConfig parameterizes NewExporter. At least one of FilePath
// and Endpoint must be set.
type ExporterConfig struct {
	// Reg receives the export_* counters and is snapshotted for the
	// periodic metric documents. A nil Reg disables both (spans still
	// flow).
	Reg *Registry
	// Service names the OTLP resource (default "depserve").
	Service string
	// FilePath appends one JSON document per line (created 0644).
	FilePath string
	// Endpoint receives one POST per document, Content-Type
	// application/json.
	Endpoint string
	// QueueSize bounds the record queue (default 256). A full queue
	// drops, never blocks.
	QueueSize int
	// BatchSize flushes a span document once this many records are
	// pending (default 64).
	BatchSize int
	// FlushInterval flushes a partial batch at least this often
	// (default 2s).
	FlushInterval time.Duration
	// MetricsInterval emits a metrics document this often (default:
	// every 5th flush interval). Metrics are also emitted once on Close.
	MetricsInterval time.Duration
	// Client is the HTTP client for Endpoint (default: 5s timeout).
	Client *http.Client
}

// NewExporter starts an exporter, or returns (nil, nil) — the valid
// "export off" exporter; Export and Close on nil are no-ops — when the
// config names no sink.
func NewExporter(cfg ExporterConfig) (*Exporter, error) {
	if cfg.FilePath == "" && cfg.Endpoint == "" {
		return nil, nil
	}
	if cfg.Service == "" {
		cfg.Service = "depserve"
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 2 * time.Second
	}
	if cfg.MetricsInterval <= 0 {
		cfg.MetricsInterval = 5 * cfg.FlushInterval
	}
	e := &Exporter{
		queue:           make(chan *RequestRecord, cfg.QueueSize),
		done:            make(chan struct{}),
		exited:          make(chan struct{}),
		reg:             cfg.Reg,
		res:             OTLPResourceFor(cfg.Service),
		endpoint:        cfg.Endpoint,
		client:          cfg.Client,
		batchSize:       cfg.BatchSize,
		flushInterval:   cfg.FlushInterval,
		metricsInterval: cfg.MetricsInterval,
		cSpans:          cfg.Reg.Counter("obs.export_spans"),
		cBatches:        cfg.Reg.Counter("obs.export_batches"),
		cDropped:        cfg.Reg.Counter("obs.export_dropped"),
		cErrors:         cfg.Reg.Counter("obs.export_errors"),
	}
	if e.client == nil {
		e.client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.FilePath != "" {
		f, err := os.OpenFile(cfg.FilePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("obs: otlp file: %w", err)
		}
		e.file = f
	}
	go e.run()
	return e, nil
}

// Export enqueues a completed record for the next span batch. It never
// blocks: a full queue (the collector is slow, or flushing stalled on
// a sink) drops the record and counts it in obs.export_dropped. Safe
// on a nil exporter and after Close (post-Close records are dropped).
func (e *Exporter) Export(rec *RequestRecord) {
	if e == nil || rec == nil {
		return
	}
	select {
	case e.queue <- rec:
	default:
		e.cDropped.Inc()
	}
}

// Close flushes pending records plus one final metrics document, then
// stops the exporter and closes the file sink. Idempotent (later calls
// return the first call's error) and safe on nil; concurrent callers
// all block until the shutdown completes.
func (e *Exporter) Close() error {
	if e == nil {
		return nil
	}
	e.stopOnce.Do(func() {
		close(e.done)
		<-e.exited
		if e.file != nil {
			e.closeErr = e.file.Close()
		}
	})
	return e.closeErr
}

// run is the exporter goroutine: batch, flush on size or timer, emit
// metric snapshots on their own timer, drain on shutdown.
func (e *Exporter) run() {
	defer close(e.exited)
	flush := time.NewTicker(e.flushInterval)
	defer flush.Stop()
	metrics := time.NewTicker(e.metricsInterval)
	defer metrics.Stop()
	batch := make([]*RequestRecord, 0, e.batchSize)
	for {
		select {
		case rec := <-e.queue:
			batch = append(batch, rec)
			if len(batch) >= e.batchSize {
				batch = e.flushSpans(batch)
			}
		case <-flush.C:
			batch = e.flushSpans(batch)
		case <-metrics.C:
			e.flushMetrics()
		case <-e.done:
			// Drain what was queued before shutdown, then say goodbye
			// with a final metrics snapshot.
			for {
				select {
				case rec := <-e.queue:
					batch = append(batch, rec)
				default:
					e.flushSpans(batch)
					e.flushMetrics()
					return
				}
			}
		}
	}
}

// flushSpans writes one span document for the batch and returns the
// emptied batch slice.
func (e *Exporter) flushSpans(batch []*RequestRecord) []*RequestRecord {
	if len(batch) == 0 {
		return batch
	}
	doc := OTLPExport(nil, batch, e.res, time.Now())
	e.write(doc)
	e.cSpans.Add(int64(len(batch)))
	return batch[:0]
}

// flushMetrics writes one metrics document from the registry snapshot.
func (e *Exporter) flushMetrics() {
	if e.reg == nil {
		return
	}
	snap := e.reg.Snapshot()
	// Spans in the registry snapshot are served elsewhere (/debug/obs);
	// the metrics document carries instruments only.
	snap.Spans = nil
	e.write(OTLPExport(snap, nil, e.res, time.Now()))
}

// write sends one document to every configured sink, counting failures
// instead of surfacing them — export is best-effort by design.
func (e *Exporter) write(doc *OTLPDocument) {
	var buf bytes.Buffer
	if err := doc.WriteOTLP(&buf); err != nil {
		e.cErrors.Inc()
		return
	}
	e.cBatches.Inc()
	if e.file != nil {
		if _, err := e.file.Write(buf.Bytes()); err != nil {
			e.cErrors.Inc()
		}
	}
	if e.endpoint != "" {
		resp, err := e.client.Post(e.endpoint, "application/json", bytes.NewReader(buf.Bytes()))
		if err != nil {
			e.cErrors.Inc()
			return
		}
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			e.cErrors.Inc()
		}
	}
}
