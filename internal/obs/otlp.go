package obs

import (
	"encoding/json"
	"hash/fnv"
	"io"
	"strings"
	"time"
)

// This file is the wire-level export side of the package: an
// OTLP-compatible JSON encoding (the proto3 JSON mapping of the
// OpenTelemetry collector's ExportTraceServiceRequest /
// ExportMetricsServiceRequest payloads) of the registry's metric
// snapshots and the flight recorder's request records, so a standard
// tracing backend can ingest what the homegrown registry measures.
// depserve serves the encoding at GET /debug/otlp and streams it
// through the batching Exporter (exporter.go).
//
// The encoding is hand-rolled rather than generated: the repository is
// zero-dependency, and the subset it emits — resource attributes,
// server/internal spans, monotonic sums, gauges, explicit-bound
// histograms with exemplars — is small and stable. int64 fields that
// the proto mapping renders as JSON strings (timestamps, counts,
// integer values) use `json:",string"` so the output matches what an
// OTLP/HTTP JSON receiver expects.

// OTLPDocument is one export payload: span trees, metric snapshots, or
// both, each under a resource describing the producing process.
type OTLPDocument struct {
	ResourceSpans   []OTLPResourceSpans   `json:"resourceSpans,omitempty"`
	ResourceMetrics []OTLPResourceMetrics `json:"resourceMetrics,omitempty"`
}

// OTLPValue is an attribute value (the AnyValue subset this package
// emits: strings and integers).
type OTLPValue struct {
	StringValue string `json:"stringValue,omitempty"`
	IntValue    string `json:"intValue,omitempty"`
}

// OTLPKeyValue is one attribute.
type OTLPKeyValue struct {
	Key   string    `json:"key"`
	Value OTLPValue `json:"value"`
}

// OTLPResource identifies the producing process.
type OTLPResource struct {
	Attributes []OTLPKeyValue `json:"attributes,omitempty"`
}

// OTLPScope names the instrumentation scope.
type OTLPScope struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

// OTLPResourceSpans groups span batches under one resource.
type OTLPResourceSpans struct {
	Resource   OTLPResource     `json:"resource"`
	ScopeSpans []OTLPScopeSpans `json:"scopeSpans"`
}

// OTLPScopeSpans is one scope's spans.
type OTLPScopeSpans struct {
	Scope OTLPScope  `json:"scope"`
	Spans []OTLPSpan `json:"spans"`
}

// OTLP span kinds and status codes (the subset used here).
const (
	otlpKindInternal = 1
	otlpKindServer   = 2
	otlpStatusOK     = 1
	otlpStatusError  = 2
)

// OTLPSpan is one span. TraceID/SpanID are lowercase hex (32 and 16
// chars); timestamps are Unix nanoseconds rendered as strings.
type OTLPSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind,omitempty"`
	StartTimeUnixNano int64          `json:"startTimeUnixNano,string"`
	EndTimeUnixNano   int64          `json:"endTimeUnixNano,string"`
	Attributes        []OTLPKeyValue `json:"attributes,omitempty"`
	Status            *OTLPStatus    `json:"status,omitempty"`
}

// OTLPStatus is a span's outcome.
type OTLPStatus struct {
	Code    int    `json:"code,omitempty"`
	Message string `json:"message,omitempty"`
}

// OTLPResourceMetrics groups metric batches under one resource.
type OTLPResourceMetrics struct {
	Resource     OTLPResource       `json:"resource"`
	ScopeMetrics []OTLPScopeMetrics `json:"scopeMetrics"`
}

// OTLPScopeMetrics is one scope's metrics.
type OTLPScopeMetrics struct {
	Scope   OTLPScope    `json:"scope"`
	Metrics []OTLPMetric `json:"metrics"`
}

// OTLPMetric is one metric family: exactly one of Sum (counters),
// Gauge, or Histogram is set.
type OTLPMetric struct {
	Name      string         `json:"name"`
	Sum       *OTLPSum       `json:"sum,omitempty"`
	Gauge     *OTLPGauge     `json:"gauge,omitempty"`
	Histogram *OTLPHistogram `json:"histogram,omitempty"`
}

// otlpCumulative is AGGREGATION_TEMPORALITY_CUMULATIVE — the only
// temporality this registry has (its counters never reset).
const otlpCumulative = 2

// OTLPSum is a counter family.
type OTLPSum struct {
	DataPoints             []OTLPNumberDataPoint `json:"dataPoints"`
	AggregationTemporality int                   `json:"aggregationTemporality"`
	IsMonotonic            bool                  `json:"isMonotonic,omitempty"`
}

// OTLPGauge is a gauge family.
type OTLPGauge struct {
	DataPoints []OTLPNumberDataPoint `json:"dataPoints"`
}

// OTLPNumberDataPoint is one labeled integer sample.
type OTLPNumberDataPoint struct {
	Attributes   []OTLPKeyValue `json:"attributes,omitempty"`
	TimeUnixNano int64          `json:"timeUnixNano,string"`
	AsInt        int64          `json:"asInt,string"`
}

// OTLPHistogram is a histogram family.
type OTLPHistogram struct {
	DataPoints             []OTLPHistogramDataPoint `json:"dataPoints"`
	AggregationTemporality int                      `json:"aggregationTemporality"`
}

// OTLPHistogramDataPoint is one labeled histogram with explicit bounds
// (the log₂ bucket upper bounds) and per-bucket exemplar trace IDs.
type OTLPHistogramDataPoint struct {
	Attributes     []OTLPKeyValue `json:"attributes,omitempty"`
	TimeUnixNano   int64          `json:"timeUnixNano,string"`
	Count          int64          `json:"count,string"`
	Sum            float64        `json:"sum"`
	Max            float64        `json:"max,omitempty"`
	BucketCounts   []int64        `json:"bucketCounts"`
	ExplicitBounds []float64      `json:"explicitBounds"`
	Exemplars      []OTLPExemplar `json:"exemplars,omitempty"`
}

// OTLPExemplar links one bucket to the trace that most recently landed
// in it; AsInt is the bucket's upper bound (the snapshot keeps the
// identity, not the exact value).
type OTLPExemplar struct {
	TimeUnixNano int64  `json:"timeUnixNano,string"`
	TraceID      string `json:"traceId,omitempty"`
	AsInt        int64  `json:"asInt,string"`
}

// otlpScope is the instrumentation scope every export carries.
var otlpScope = OTLPScope{Name: "indfd/internal/obs"}

// otlpStr / otlpInt build attributes.
func otlpStr(k, v string) OTLPKeyValue {
	return OTLPKeyValue{Key: k, Value: OTLPValue{StringValue: v}}
}

func otlpInt(k string, v int64) OTLPKeyValue {
	return OTLPKeyValue{Key: k, Value: OTLPValue{IntValue: itoa(v)}}
}

func itoa(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// OTLPResourceFor builds the resource block for a service: its name
// plus the binary identity Build() resolves (service.version, Go
// toolchain, VCS revision).
func OTLPResourceFor(service string) OTLPResource {
	id := Build()
	return OTLPResource{Attributes: []OTLPKeyValue{
		otlpStr("service.name", service),
		otlpStr("service.version", id.Version),
		otlpStr("vcs.revision", id.Revision),
		otlpStr("process.runtime.name", "go"),
		otlpStr("process.runtime.version", id.GoVersion),
		otlpStr("telemetry.sdk.name", "indfd-obs"),
	}}
}

// OTLPExport encodes a registry snapshot and a set of flight-recorder
// records as one OTLP document under res. Either side may be nil/empty;
// now stamps every data point (callers pass a fixed time for
// deterministic output — the golden test does). Counters become
// cumulative monotonic sums, gauges stay gauges, histograms carry their
// log₂ upper bounds as explicitBounds with exemplar trace IDs, and
// MetricName label blocks ({k="v",...}) are decoded into data-point
// attributes so series of one family share one OTLP metric.
func OTLPExport(snap *Snapshot, recs []*RequestRecord, res OTLPResource, now time.Time) *OTLPDocument {
	doc := &OTLPDocument{}
	if spans := otlpSpans(recs); len(spans) > 0 {
		doc.ResourceSpans = []OTLPResourceSpans{{
			Resource:   res,
			ScopeSpans: []OTLPScopeSpans{{Scope: otlpScope, Spans: spans}},
		}}
	}
	if metrics := otlpMetrics(snap, now); len(metrics) > 0 {
		doc.ResourceMetrics = []OTLPResourceMetrics{{
			Resource:     res,
			ScopeMetrics: []OTLPScopeMetrics{{Scope: otlpScope, Metrics: metrics}},
		}}
	}
	return doc
}

// WriteOTLP writes the document as compact single-line JSON — the unit
// the file exporter appends (one document per line) and the HTTP
// exporter posts.
func (d *OTLPDocument) WriteOTLP(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(d)
}

// --- spans ------------------------------------------------------------------

// otlpSpans flattens each record into a server root span plus its
// engine span tree as internal children.
func otlpSpans(recs []*RequestRecord) []OTLPSpan {
	var out []OTLPSpan
	for _, rec := range recs {
		if rec == nil {
			continue
		}
		out = appendRecordSpans(out, rec)
	}
	return out
}

// appendRecordSpans encodes one request: the HTTP span carries the
// wide-event attributes (route, status, goal, verdict, engine, cache);
// the engine span tree hangs off it with synthesized span IDs. Child
// spans inherit their parent's start — the snapshot keeps durations,
// not offsets — which keeps every child inside its parent's interval.
func appendRecordSpans(out []OTLPSpan, rec *RequestRecord) []OTLPSpan {
	traceID := OTLPTraceID(rec.TraceID)
	rootID := rec.SpanID
	if !isHex(rootID, 16) {
		rootID = synthSpanID(traceID, "root")
	}
	start := rec.Start.UnixNano()
	end := start + rec.DurationNS
	attrs := []OTLPKeyValue{
		otlpStr("http.route", rec.Route),
		otlpInt("http.response.status_code", int64(rec.Status)),
	}
	for k, v := range map[string]string{
		"query.goal": rec.Goal, "query.mode": rec.Mode,
		"query.verdict": rec.Verdict, "query.engine": rec.Engine,
		"cache.result": rec.Cache,
	} {
		if v != "" {
			attrs = append(attrs, otlpStr(k, v))
		}
	}
	// Map iteration order is random; keep the document deterministic.
	sortAttrs(attrs[2:])
	for _, a := range rec.Attrs {
		attrs = append(attrs, otlpStr(a.Key, a.Value))
	}
	status := &OTLPStatus{Code: otlpStatusOK}
	if rec.Status >= 500 {
		status.Code = otlpStatusError
	}
	out = append(out, OTLPSpan{
		TraceID:           traceID,
		SpanID:            rootID,
		ParentSpanID:      normalizeSpanID(rec.ParentSpanID),
		Name:              rec.Route,
		Kind:              otlpKindServer,
		StartTimeUnixNano: start,
		EndTimeUnixNano:   end,
		Attributes:        attrs,
		Status:            status,
	})
	return appendSnapshotSpans(out, rec.Trace, traceID, rootID, start, "0")
}

// appendSnapshotSpans walks a SpanSnapshot tree depth-first, assigning
// each node a deterministic span ID derived from (trace ID, tree path).
func appendSnapshotSpans(out []OTLPSpan, sp *SpanSnapshot, traceID, parentID string, start int64, path string) []OTLPSpan {
	if sp == nil {
		return out
	}
	id := synthSpanID(traceID, path)
	span := OTLPSpan{
		TraceID:           traceID,
		SpanID:            id,
		ParentSpanID:      parentID,
		Name:              sp.Name,
		Kind:              otlpKindInternal,
		StartTimeUnixNano: start,
		EndTimeUnixNano:   start + sp.DurationNS,
	}
	for _, a := range sp.Attrs {
		span.Attributes = append(span.Attributes, otlpStr(a.Key, a.Value))
	}
	if sp.Running {
		span.Attributes = append(span.Attributes, otlpStr("running", "true"))
	}
	out = append(out, span)
	for i, c := range sp.Children {
		out = appendSnapshotSpans(out, c, traceID, id, start, path+"."+itoa(int64(i)))
	}
	return out
}

// OTLPTraceID maps any trace-ID string to a valid OTLP trace ID: a
// 32-char lowercase-hex ID passes through (the W3C IDs serve mints),
// anything else — the legacy request-ID form predates trace context —
// hashes to a stable 32-hex synthetic so the span is still ingestible
// and two exports of one record agree.
func OTLPTraceID(id string) string {
	if isHex(id, 32) {
		return id
	}
	return synthHex(id, "trace", 16)
}

// normalizeSpanID keeps valid 16-hex span IDs and drops the rest ("" =
// no parent) — a malformed parent must not fabricate a link.
func normalizeSpanID(id string) string {
	if isHex(id, 16) {
		return id
	}
	return ""
}

// synthSpanID derives a deterministic 16-hex span ID from the trace ID
// and a position key.
func synthSpanID(traceID, key string) string {
	return synthHex(traceID, key, 8)
}

// synthHex hashes seed+key into n bytes of lowercase hex via FNV-64
// (concatenating as many rounds as needed), never all-zero.
func synthHex(seed, key string, n int) string {
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 0, 2*n)
	round := 0
	for len(out) < 2*n {
		h := fnv.New64a()
		io.WriteString(h, seed)               //nolint:errcheck
		io.WriteString(h, "\x00"+key)         //nolint:errcheck
		io.WriteString(h, itoa(int64(round))) //nolint:errcheck
		v := h.Sum64()
		for i := 0; i < 16 && len(out) < 2*n; i++ {
			out = append(out, hexdigits[(v>>uint(60-4*i))&0xf])
		}
		round++
	}
	out[len(out)-1] = '1' // cannot be the all-zero invalid ID
	return string(out)
}

// isHex reports whether s is exactly n lowercase-hex chars and not all
// zeros.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

func sortAttrs(attrs []OTLPKeyValue) {
	for i := 1; i < len(attrs); i++ {
		for j := i; j > 0 && attrs[j].Key < attrs[j-1].Key; j-- {
			attrs[j], attrs[j-1] = attrs[j-1], attrs[j]
		}
	}
}

// --- metrics ----------------------------------------------------------------

// otlpMetrics converts a snapshot's instruments, grouping MetricName
// series ("family{k=\"v\"}") into one OTLP metric per family with the
// labels as data-point attributes. Families and series are sorted, so
// identical snapshots encode identically.
func otlpMetrics(snap *Snapshot, now time.Time) []OTLPMetric {
	if snap == nil {
		return nil
	}
	ts := now.UnixNano()
	type familyAcc struct {
		name string
		sum  *OTLPSum
		gg   *OTLPGauge
		hist *OTLPHistogram
	}
	var order []string
	byName := map[string]*familyAcc{}
	family := func(name string) *familyAcc {
		f, ok := byName[name]
		if !ok {
			f = &familyAcc{name: name}
			byName[name] = f
			order = append(order, name)
		}
		return f
	}

	for _, series := range sortedKeys(snap.Counters) {
		raw, labels := splitSeries(series)
		f := family(raw)
		if f.sum == nil {
			f.sum = &OTLPSum{AggregationTemporality: otlpCumulative, IsMonotonic: true}
		}
		f.sum.DataPoints = append(f.sum.DataPoints, OTLPNumberDataPoint{
			Attributes: labelAttrs(labels), TimeUnixNano: ts, AsInt: snap.Counters[series],
		})
	}
	for _, series := range sortedKeys(snap.Gauges) {
		raw, labels := splitSeries(series)
		f := family(raw)
		if f.gg == nil {
			f.gg = &OTLPGauge{}
		}
		f.gg.DataPoints = append(f.gg.DataPoints, OTLPNumberDataPoint{
			Attributes: labelAttrs(labels), TimeUnixNano: ts, AsInt: snap.Gauges[series],
		})
	}
	for _, series := range sortedKeys(snap.Histograms) {
		raw, labels := splitSeries(series)
		h := snap.Histograms[series]
		f := family(raw)
		if f.hist == nil {
			f.hist = &OTLPHistogram{AggregationTemporality: otlpCumulative}
		}
		dp := OTLPHistogramDataPoint{
			Attributes:   labelAttrs(labels),
			TimeUnixNano: ts,
			Count:        h.Count,
			Sum:          float64(h.Sum),
			Max:          float64(h.Max),
			// One overflow slot past the last explicit bound, per the
			// OTLP invariant len(bucketCounts) == len(explicitBounds)+1;
			// the log₂ snapshot's last bound covers its max, so the
			// overflow count is always zero.
			BucketCounts:   make([]int64, 0, len(h.Buckets)+1),
			ExplicitBounds: make([]float64, 0, len(h.Buckets)),
		}
		for _, b := range h.Buckets {
			dp.ExplicitBounds = append(dp.ExplicitBounds, float64(b.Le))
			dp.BucketCounts = append(dp.BucketCounts, b.Count)
			if b.Exemplar != "" {
				dp.Exemplars = append(dp.Exemplars, OTLPExemplar{
					TimeUnixNano: ts, TraceID: OTLPTraceID(b.Exemplar), AsInt: b.Le,
				})
			}
		}
		dp.BucketCounts = append(dp.BucketCounts, 0)
		f.hist.DataPoints = append(f.hist.DataPoints, dp)
	}

	metrics := make([]OTLPMetric, 0, len(order))
	for _, name := range order {
		f := byName[name]
		metrics = append(metrics, OTLPMetric{Name: f.name, Sum: f.sum, Gauge: f.gg, Histogram: f.hist})
	}
	// order accumulated per-kind; sort families for a stable document.
	for i := 1; i < len(metrics); i++ {
		for j := i; j > 0 && metrics[j].Name < metrics[j-1].Name; j-- {
			metrics[j], metrics[j-1] = metrics[j-1], metrics[j]
		}
	}
	return metrics
}

// labelAttrs decodes a MetricName label block (`k="v",...`, values
// escaped per the Prometheus text format) into OTLP attributes.
func labelAttrs(labels string) []OTLPKeyValue {
	if labels == "" {
		return nil
	}
	var out []OTLPKeyValue
	for _, pair := range splitLabelPairs(labels) {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			continue
		}
		k := pair[:eq]
		v := strings.TrimSuffix(strings.TrimPrefix(pair[eq+1:], `"`), `"`)
		out = append(out, otlpStr(k, unescapeLabelValue(v)))
	}
	return out
}

// unescapeLabelValue reverses escapeLabelValue.
func unescapeLabelValue(v string) string {
	if !strings.ContainsRune(v, '\\') {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] != '\\' || i+1 == len(v) {
			b.WriteByte(v[i])
			continue
		}
		i++
		switch v[i] {
		case 'n':
			b.WriteByte('\n')
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}
