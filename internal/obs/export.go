package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// WriteJSON writes the snapshot as indented JSON — the machine-readable
// export behind the CLIs' -trace-json flag and bench_test.go's -benchjson
// path (the BENCH_engines.json schema is exactly this struct).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot previously written with WriteJSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("obs: decoding snapshot: %w", err)
	}
	return &s, nil
}

// WriteText writes a deterministic human-readable report: counters, gauges
// and histograms sorted by name, then the span trees indented two spaces
// per level. This is what the CLIs print under -stats.
func (s *Snapshot) WriteText(w io.Writer) error {
	if s == nil {
		return nil
	}
	if len(s.Counters) > 0 {
		if _, err := fmt.Fprintln(w, "counters:"); err != nil {
			return err
		}
		for _, name := range sortedKeys(s.Counters) {
			if _, err := fmt.Fprintf(w, "  %-36s %d\n", name, s.Counters[name]); err != nil {
				return err
			}
		}
	}
	if len(s.Gauges) > 0 {
		if _, err := fmt.Fprintln(w, "gauges:"); err != nil {
			return err
		}
		for _, name := range sortedKeys(s.Gauges) {
			if _, err := fmt.Fprintf(w, "  %-36s %d\n", name, s.Gauges[name]); err != nil {
				return err
			}
		}
	}
	if len(s.Histograms) > 0 {
		if _, err := fmt.Fprintln(w, "histograms:"); err != nil {
			return err
		}
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			mean := float64(0)
			if h.Count > 0 {
				mean = float64(h.Sum) / float64(h.Count)
			}
			if _, err := fmt.Fprintf(w, "  %-36s count=%d mean=%.1f max=%d\n", name, h.Count, mean, h.Max); err != nil {
				return err
			}
			for _, b := range h.Buckets {
				if _, err := fmt.Fprintf(w, "    ≤%-12d %d\n", b.Le, b.Count); err != nil {
					return err
				}
			}
		}
	}
	if len(s.Spans) > 0 {
		if _, err := fmt.Fprintln(w, "spans:"); err != nil {
			return err
		}
		for _, sp := range s.Spans {
			if err := writeSpanText(w, sp, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSpanText(w io.Writer, sp *SpanSnapshot, depth int) error {
	if sp == nil {
		return nil
	}
	for i := 0; i < depth; i++ {
		if _, err := io.WriteString(w, "  "); err != nil {
			return err
		}
	}
	state := ""
	if sp.Running {
		state = " (running)"
	}
	if _, err := fmt.Fprintf(w, "%s %v%s", sp.Name, time.Duration(sp.DurationNS), state); err != nil {
		return err
	}
	for _, a := range sp.Attrs {
		if _, err := fmt.Fprintf(w, " %s=%s", a.Key, a.Value); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, c := range sp.Children {
		if err := writeSpanText(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}
