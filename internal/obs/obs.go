// Package obs is the repository's instrumentation layer: a zero-dependency,
// concurrency-safe registry of named counters, gauges and log-scale
// histograms, plus lightweight hierarchical spans (see span.go) and JSON /
// human-text exporters (see export.go).
//
// The engines of this repository spend their time in places the paper
// proves can blow up — the superpolynomial Corollary 3.2 chains, the
// divergent FD+IND chase, the exponential finite-counterexample search —
// and this package is how that work is observed: every engine accepts an
// optional *Registry and publishes what it did under a per-engine
// namespace ("chase.rounds", "ind.expanded", ...).
//
// The design invariant is that instrumentation is FREE when disabled:
// every method is nil-safe, so engines hold possibly-nil *Counter /
// *Gauge / *Histogram / *Span values fetched once per call and touch them
// unconditionally in their hot loops. A nil receiver is a predictable
// branch and allocates nothing (bench_test.go's BenchmarkChaseObs guards
// this).
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a named collection of instruments and root spans. The zero
// value is not usable; create one with New. A nil *Registry is a valid
// "instrumentation off" registry: every method on it (and on the nil
// instruments it hands out) is a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []*Span // root spans, in StartSpan order
	spanCap  int     // 0 = unbounded; else max root spans retained
}

// SetSpanCap bounds the number of root spans the registry retains: once
// more than n root spans have been started, the oldest are evicted. A
// long-running process (depserve) shares one registry across every
// request; without a cap the span forest would grow without bound, so
// servers set a small cap and the registry keeps a sliding window of
// the most recent query traces. n <= 0 restores the unbounded default.
// A nil receiver is a no-op.
func (r *Registry) SetSpanCap(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spanCap = n
	r.trimSpansLocked()
}

// trimSpansLocked drops the oldest root spans beyond the cap.
func (r *Registry) trimSpansLocked() {
	if r.spanCap <= 0 || len(r.spans) <= r.spanCap {
		return
	}
	keep := r.spans[len(r.spans)-r.spanCap:]
	r.spans = append(r.spans[:0], keep...)
}

// New creates an empty Registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil (a
// no-op gauge) when r is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil (a no-op histogram) when r is nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing (by convention) atomic count.
// All methods are safe on a nil receiver and for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic level: a value that can move both ways, with a
// high-water-mark helper. All methods are safe on a nil receiver and for
// concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetMax raises the gauge to v if v exceeds the current value — the
// idiom for high-water marks (frontier sizes, peak tuple counts).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Add moves the gauge by delta (negative to lower it).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of log-scale buckets: bucket i holds
// observations v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i, with
// bucket 0 for v <= 0.
const histBuckets = 65

// Histogram is a log₂-scale histogram of int64 observations: constant
// memory, lock-free updates, and exactly the right resolution for the
// quantities this repository measures (chain lengths, tuple counts,
// frontier sizes), which the paper proves range over many orders of
// magnitude. All methods are safe on a nil receiver and for concurrent
// use.
type Histogram struct {
	count    atomic.Int64
	sum      atomic.Int64
	max      atomic.Int64
	bucket   [histBuckets]atomic.Int64
	exemplar [histBuckets]atomic.Pointer[string]
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.bucket[h.observe(v)].Add(1)
}

// ObserveExemplar records one value and remembers traceID as the
// bucket's exemplar: the identity of the most recent observation that
// landed there, so a slow histogram bucket links directly to a recorded
// trace (see Recorder.Get). The exemplar write is one atomic pointer
// store; plain Observe never touches the exemplar slots, so hot paths
// that have no trace to offer pay nothing for the feature.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	if h == nil {
		return
	}
	i := h.observe(v)
	h.bucket[i].Add(1)
	h.exemplar[i].Store(&traceID)
}

// observe updates count/sum/max and returns the bucket index for v.
func (h *Histogram) observe(v int64) int {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	if v > 0 {
		return bits.Len64(uint64(v))
	}
	return 0
}

// Bucket is one non-empty histogram bucket: Count observations v with
// v <= Le (and v greater than the previous bucket's Le). Exemplar, when
// set, is the trace ID of the most recent ObserveExemplar observation
// that landed in this bucket.
type Bucket struct {
	Le       int64  `json:"le"`
	Count    int64  `json:"count"`
	Exemplar string `json:"exemplar,omitempty"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// snapshot copies the histogram. Concurrent Observes may straddle the
// copy; each bucket is internally consistent.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.bucket {
		n := h.bucket[i].Load()
		if n == 0 {
			continue
		}
		le := int64(0)
		if i > 0 {
			le = int64(1)<<uint(i) - 1
		}
		b := Bucket{Le: le, Count: n}
		if ex := h.exemplar[i].Load(); ex != nil {
			b.Exemplar = *ex
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}

// Snapshot is a point-in-time copy of a Registry, the unit the exporters
// work on. It is a plain data structure that round-trips through
// encoding/json.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []*SpanSnapshot              `json:"spans,omitempty"`
}

// Snapshot copies the registry's current state. Returns nil for a nil
// registry. Spans still running are included with their current duration
// and running=true.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	for _, sp := range r.spans {
		s.Spans = append(s.Spans, sp.Snapshot())
	}
	return s
}

// sortedKeys returns the map's keys in order (for deterministic reports).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
