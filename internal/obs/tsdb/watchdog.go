package tsdb

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"indfd/internal/obs"
	"indfd/internal/slo"
)

// This file is the watchdog: a rules engine that evaluates SLO clauses
// over the tsdb's rings on every sample tick, so the process itself
// notices an SLO burn instead of waiting for the offline `make
// slo-gate` run. Rules come in two shapes:
//
//   - threshold: "the clause must hold"; the rule fires once the
//     clause has been violated continuously for its `for` duration
//     (default: one tick), and resolves when it holds again.
//
//   - burn-rate: "the clause is the SLO; alert when the budget burns
//     faster than factor× in BOTH a long and a short trailing window"
//     — the classic multi-window form: the long window filters noise,
//     the short window makes both firing and resolving fast. For an
//     errs clause the burn rate is errorRate/budget; for a latency
//     clause it is the windowed quantile over its bound.
//
// Firing and resolving append events to a bounded alert log and to the
// flight recorder (route "watchdog", so `/debug/traces` interleaves
// alerts with the requests that caused them), move the
// watchdog.alerts_active gauge and the alerts_fired/alerts_resolved
// counters, and — while any critical rule is firing — flip /readyz to
// a degraded body (internal/serve asks CriticalNames on every probe).

// Severity ranks a rule. Critical alerts degrade /readyz; warnings
// only log and count.
type Severity string

const (
	SeverityCritical Severity = "critical"
	SeverityWarning  Severity = "warning"
)

// Burn is the multi-window burn-rate modifier of a rule.
type Burn struct {
	// Factor is the burn multiple that fires the rule (e.g. 14 means
	// the budget is burning 14× too fast).
	Factor float64 `json:"factor"`
	// Long and Short are the two trailing windows; both must exceed
	// Factor to fire, and the rule resolves when Short drops back
	// under.
	Long  time.Duration `json:"long_ns"`
	Short time.Duration `json:"short_ns"`
}

// Rule is one watchdog rule.
type Rule struct {
	Name     string     `json:"name"`
	Severity Severity   `json:"severity"`
	Clause   slo.Clause `json:"-"`
	// ClauseText is the clause as written (serialized stand-in for
	// Clause).
	ClauseText string `json:"clause"`
	// For is the threshold rule's required violation duration before
	// firing (0 = one tick). Ignored for burn rules, whose windows play
	// that role.
	For time.Duration `json:"for_ns,omitempty"`
	// Burn, when non-nil, makes this a burn-rate rule.
	Burn *Burn `json:"burn,omitempty"`
}

// ruleState is one rule's evaluation state.
type ruleState struct {
	rule Rule
	// violatedSince is when the current uninterrupted violation began
	// (zero = not violating).
	violatedSince time.Time
	firing        bool
	firedAt       time.Time
	lastValue     float64
}

// Alert is one rule's live status as /debug/alerts reports it.
type Alert struct {
	Name     string   `json:"name"`
	Severity Severity `json:"severity"`
	Clause   string   `json:"clause"`
	// State is "firing" or "pending" (violating, but not yet for the
	// rule's `for` duration).
	State string `json:"state"`
	// Since is when the violation began; FiredAt when it crossed into
	// firing.
	Since   time.Time `json:"since"`
	FiredAt time.Time `json:"fired_at,omitempty"`
	// Value is the most recent evaluated value: a burn multiple for
	// burn rules, microseconds for latency thresholds, a rate for errs.
	Value   float64 `json:"value"`
	Message string  `json:"message"`
}

// AlertEvent is one fire/resolve transition as the alert log retains
// it.
type AlertEvent struct {
	Time     time.Time `json:"time"`
	Name     string    `json:"name"`
	Severity Severity  `json:"severity"`
	// State is "fired" or "resolved".
	State   string  `json:"state"`
	Value   float64 `json:"value"`
	Message string  `json:"message"`
}

// Watchdog evaluates rules against a Store. Create with NewWatchdog;
// nil is the valid "alerting off" watchdog (Evaluate, Active,
// CriticalNames and Events are no-ops on nil).
type Watchdog struct {
	store *Store
	rec   *obs.Recorder

	mu     sync.Mutex
	rules  []*ruleState
	log    []AlertEvent // bounded ring, oldest first once full
	logCap int
	logPos int
	logLen int
	seq    uint64

	gActive   *obs.Gauge
	cFired    *obs.Counter
	cResolved *obs.Counter
}

// NewWatchdog builds a watchdog over store. A nil store or an empty
// rule set returns nil — alerting needs both history and rules.
// Events land in reg's watchdog.* meters and, when rec is non-nil, in
// the flight recorder.
func NewWatchdog(store *Store, rules []Rule, reg *obs.Registry, rec *obs.Recorder) *Watchdog {
	if store == nil || len(rules) == 0 {
		return nil
	}
	w := &Watchdog{
		store:     store,
		rec:       rec,
		logCap:    256,
		gActive:   reg.Gauge("watchdog.alerts_active"),
		cFired:    reg.Counter("watchdog.alerts_fired"),
		cResolved: reg.Counter("watchdog.alerts_resolved"),
	}
	w.log = make([]AlertEvent, w.logCap)
	for i := range rules {
		w.rules = append(w.rules, &ruleState{rule: rules[i]})
	}
	return w
}

// SetRecorder connects (or replaces) the flight recorder alert events
// mirror into. depserve calls this after serve.New, because the server
// owns the recorder and the watchdog must exist before the server
// (serve.Config carries it). Nil-safe.
func (w *Watchdog) SetRecorder(rec *obs.Recorder) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.rec = rec
	w.mu.Unlock()
}

// Rules returns the rule set (nil for the nil watchdog).
func (w *Watchdog) Rules() []Rule {
	if w == nil {
		return nil
	}
	out := make([]Rule, len(w.rules))
	for i, st := range w.rules {
		out[i] = st.rule
	}
	return out
}

// Evaluate runs every rule against the store's current rings. Call it
// after each Sample tick (the depserve sampler loop does both
// back-to-back). Nil-safe.
func (w *Watchdog) Evaluate(now time.Time) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	active := int64(0)
	for _, st := range w.rules {
		w.evaluateRule(st, now)
		if st.firing {
			active++
		}
	}
	w.gActive.Set(active)
}

// evaluateRule advances one rule's state machine. Caller holds w.mu.
func (w *Watchdog) evaluateRule(st *ruleState, now time.Time) {
	violated, value, ok := w.check(st.rule)
	if !ok {
		// No data in the window: hold the current state. An idle server
		// neither fires nor resolves on silence.
		return
	}
	st.lastValue = value
	if violated {
		if st.violatedSince.IsZero() {
			st.violatedSince = now
		}
		need := st.rule.For
		if st.rule.Burn != nil {
			need = 0 // the burn windows already encode persistence
		}
		if !st.firing && now.Sub(st.violatedSince) >= need {
			st.firing = true
			st.firedAt = now
			w.cFired.Inc()
			w.event(AlertEvent{
				Time: now, Name: st.rule.Name, Severity: st.rule.Severity,
				State: "fired", Value: value,
				Message: w.message(st.rule, value),
			})
		}
		return
	}
	st.violatedSince = time.Time{}
	if st.firing {
		st.firing = false
		w.cResolved.Inc()
		w.event(AlertEvent{
			Time: now, Name: st.rule.Name, Severity: st.rule.Severity,
			State: "resolved", Value: value,
			Message: w.message(st.rule, value),
		})
	}
}

// check evaluates one rule's clause. ok is false when the window holds
// no data.
func (w *Watchdog) check(r Rule) (violated bool, value float64, ok bool) {
	if r.Burn != nil {
		longV, okL := w.clauseValue(r.Clause, r.Burn.Long)
		shortV, okS := w.clauseValue(r.Clause, r.Burn.Short)
		if !okL || !okS {
			return false, 0, false
		}
		bound := clauseBound(r.Clause)
		if bound <= 0 {
			return false, 0, false
		}
		burnLong, burnShort := longV/bound, shortV/bound
		// Both windows must burn to fire; the short window alone
		// resolves (it recovers first when the fault clears).
		burning := burnLong >= r.Burn.Factor && burnShort >= r.Burn.Factor
		return burning, burnShort, true
	}
	window := r.For
	if window <= 0 {
		window = w.store.Resolution()
	}
	v, okV := w.clauseValue(r.Clause, window)
	if !okV {
		return false, 0, false
	}
	return v >= clauseBound(r.Clause), v, true
}

// clauseValue reads a clause's current value over a trailing window:
// the error rate for errs clauses, the windowed quantile average (in
// microseconds) for latency clauses.
func (w *Watchdog) clauseValue(c slo.Clause, window time.Duration) (float64, bool) {
	if c.IsErrs() {
		reqs, okR := w.store.WindowSum("serve.requests_total", window)
		if !okR || reqs <= 0 {
			return 0, false
		}
		errs, okE := w.store.WindowSum("serve.errors_total", window)
		if !okE {
			errs = 0
		}
		return errs / reqs, true
	}
	return w.store.WindowAvg(LatencySeries(c), window)
}

// clauseBound is the clause's bound in the same unit clauseValue
// reads: a rate for errs, microseconds for latency.
func clauseBound(c slo.Clause) float64 {
	if c.IsErrs() {
		return c.BoundRate
	}
	return float64(c.BoundUS)
}

// LatencySeries resolves a latency clause to its tsdb series name: the
// route-agnostic serve.http_latency aggregate, or — with a
// {route=...} selector — that route's http.latency_us series. Both
// are observed in microseconds by the serve middleware.
func LatencySeries(c slo.Clause) string {
	base := "serve.http_latency"
	if route, ok := c.Labels["route"]; ok {
		base = obs.MetricName("http.latency_us", "path", route)
	}
	return base + ":" + c.Metric
}

// message renders a human line for logs and the degraded readyz body.
func (w *Watchdog) message(r Rule, value float64) string {
	if r.Burn != nil {
		return fmt.Sprintf("%s: SLO %s burning at %.1fx (threshold %gx over %v/%v)",
			r.Name, r.Clause.Text, value, r.Burn.Factor, r.Burn.Long, r.Burn.Short)
	}
	if r.Clause.IsErrs() {
		return fmt.Sprintf("%s: error rate %.3f%% violates %s", r.Name, value*100, r.Clause.Text)
	}
	return fmt.Sprintf("%s: %s = %s violates %s", r.Name, r.Clause.Metric,
		time.Duration(value)*time.Microsecond, r.Clause.Text)
}

// event appends to the bounded log and mirrors the transition into the
// flight recorder. Caller holds w.mu.
func (w *Watchdog) event(ev AlertEvent) {
	w.log[w.logPos] = ev
	w.logPos = (w.logPos + 1) % w.logCap
	if w.logLen < w.logCap {
		w.logLen++
	}
	w.seq++
	if w.rec != nil {
		w.rec.Add(&obs.RequestRecord{
			TraceID: "watchdog-" + strconv.FormatUint(w.seq, 10),
			Route:   "watchdog",
			Start:   ev.Time,
			Verdict: ev.State,
			Goal:    ev.Name,
			Attrs: []obs.Attr{
				{Key: "severity", Value: string(ev.Severity)},
				{Key: "message", Value: ev.Message},
				{Key: "value", Value: strconv.FormatFloat(ev.Value, 'g', 4, 64)},
			},
		})
	}
}

// Active returns the currently violating rules (firing first, then
// pending), nil when quiet or for the nil watchdog.
func (w *Watchdog) Active() []Alert {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []Alert
	for _, st := range w.rules {
		if st.violatedSince.IsZero() && !st.firing {
			continue
		}
		a := Alert{
			Name:     st.rule.Name,
			Severity: st.rule.Severity,
			Clause:   st.rule.ClauseText,
			State:    "pending",
			Since:    st.violatedSince,
			Value:    st.lastValue,
			Message:  w.message(st.rule, st.lastValue),
		}
		if st.firing {
			a.State = "firing"
			a.FiredAt = st.firedAt
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if (out[i].State == "firing") != (out[j].State == "firing") {
			return out[i].State == "firing"
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// CriticalNames returns the names of firing critical rules — the list
// /readyz reports while degraded. Nil for the nil watchdog or when
// healthy.
func (w *Watchdog) CriticalNames() []string {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var names []string
	for _, st := range w.rules {
		if st.firing && st.rule.Severity == SeverityCritical {
			names = append(names, st.rule.Name)
		}
	}
	sort.Strings(names)
	return names
}

// Events returns up to limit retained fire/resolve events, newest
// first (limit <= 0: all). Nil for the nil watchdog.
func (w *Watchdog) Events(limit int) []AlertEvent {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]AlertEvent, 0, w.logLen)
	for i := 0; i < w.logLen; i++ {
		idx := (w.logPos - 1 - i + w.logCap*2) % w.logCap
		out = append(out, w.log[idx])
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// StartLoop runs the continuous-telemetry tick on its own goroutine:
// every interval it snapshots reg into the store and evaluates the
// watchdog. The returned stop function is idempotent and waits for
// the loop to exit. Either store or wd may be nil (sampling without
// alerting, or neither).
func StartLoop(reg *obs.Registry, store *Store, wd *Watchdog, interval time.Duration) (stop func()) {
	if store == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				store.Sample(reg.Snapshot(), now)
				wd.Evaluate(now)
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-exited
		})
	}
}
