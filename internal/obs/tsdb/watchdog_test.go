package tsdb

import (
	"strings"
	"testing"
	"time"

	"indfd/internal/obs"
)

func TestParseRulesGrammar(t *testing.T) {
	rules, err := ParseRules(`
# comment, then a blank line

implies_p99 warning p99{route=/v1/implies}<250ms for 10s
err_budget critical errs<1% burn 14x over 1h/5m
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(rules))
	}
	r := rules[0]
	if r.Name != "implies_p99" || r.Severity != SeverityWarning || r.For != 10*time.Second {
		t.Errorf("rule 0 = %+v", r)
	}
	if r.Clause.Labels["route"] != "/v1/implies" || r.Clause.BoundUS != 250_000 {
		t.Errorf("rule 0 clause = %+v", r.Clause)
	}
	b := rules[1].Burn
	if b == nil || b.Factor != 14 || b.Long != time.Hour || b.Short != 5*time.Minute {
		t.Errorf("rule 1 burn = %+v", b)
	}
	if !rules[1].Clause.IsErrs() || rules[1].Clause.BoundRate != 0.01 {
		t.Errorf("rule 1 clause = %+v", rules[1].Clause)
	}
}

func TestParseRulesRejects(t *testing.T) {
	for _, tc := range []struct{ text, wantErr string }{
		{"a critical p99<1ms\na warning p50<1ms", "duplicate"},
		{"a fatal p99<1ms", "severity"},
		{"a critical max<1ms", "max"},
		{"a critical p99<1ms burn 2x over 1m/5m", "short window exceeds"},
		{"a critical p99<1ms burn 2 over 1m/5s", "factor"},
		{"a critical p99<1ms burn 2x above 1m/5s", "burn"},
		{"a critical p99<1ms for", "'for' needs"},
		{"a critical", "want"},
		{"a critical p99<1ms wat", "unexpected token"},
		{"a critical p42<1ms", "unknown metric"},
	} {
		_, err := ParseRules(tc.text)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseRules(%q) = %v, want error containing %q", tc.text, err, tc.wantErr)
		}
	}
}

func TestNewWatchdogNil(t *testing.T) {
	rules, _ := ParseRules("a critical p99<1ms")
	if NewWatchdog(nil, rules, obs.New(), nil) != nil {
		t.Error("watchdog over a nil store")
	}
	s, _ := newStore(t, 0)
	if NewWatchdog(s, nil, obs.New(), nil) != nil {
		t.Error("watchdog with no rules")
	}
	var w *Watchdog
	w.Evaluate(base) // must not panic
	w.SetRecorder(nil)
	if w.Active() != nil || w.CriticalNames() != nil || w.Events(0) != nil || w.Rules() != nil {
		t.Error("nil watchdog accessors not nil")
	}
}

// wdHarness drives a store+watchdog with synthetic ticks: each tick
// observes count latency samples (µs) plus a request/error counter
// step, then samples and evaluates — exactly what depserve's loop does.
type wdHarness struct {
	t      *testing.T
	store  *Store
	wd     *Watchdog
	meters *obs.Registry
	data   *obs.Registry
	now    time.Time
}

func newHarness(t *testing.T, rulesText string, rec *obs.Recorder) *wdHarness {
	t.Helper()
	meters := obs.New()
	store := New(Config{Resolution: time.Second, Retention: time.Minute, Reg: meters})
	rules, err := ParseRules(rulesText)
	if err != nil {
		t.Fatal(err)
	}
	wd := NewWatchdog(store, rules, meters, rec)
	if wd == nil {
		t.Fatal("NewWatchdog returned nil")
	}
	return &wdHarness{t: t, store: store, wd: wd, meters: meters, data: obs.New(), now: base}
}

// tick drives one telemetry tick: count observations at latUS, reqs
// requests of which errs failed.
func (h *wdHarness) tick(latUS int64, count, reqs, errs int) {
	h.t.Helper()
	lat := h.data.Histogram("serve.http_latency")
	for i := 0; i < count; i++ {
		lat.Observe(latUS)
	}
	h.data.Counter("serve.requests_total").Add(int64(reqs))
	h.data.Counter("serve.errors_total").Add(int64(errs))
	h.store.Sample(h.data.Snapshot(), h.now)
	h.wd.Evaluate(h.now)
	h.now = h.now.Add(time.Second)
}

// TestThresholdRule pins the pending → firing → resolved state machine
// of a `for`-duration threshold rule.
func TestThresholdRule(t *testing.T) {
	h := newHarness(t, "slow warning p99<5ms for 2s", nil)
	h.tick(10_000, 50, 50, 0) // violating from the first tick
	active := h.wd.Active()
	if len(active) != 1 || active[0].State != "pending" {
		t.Fatalf("after 1 violating tick: %+v", active)
	}
	h.tick(10_000, 50, 50, 0)
	h.tick(10_000, 50, 50, 0) // 2s of violation elapsed → fires
	active = h.wd.Active()
	if len(active) != 1 || active[0].State != "firing" {
		t.Fatalf("after 3 violating ticks: %+v", active)
	}
	if !strings.Contains(active[0].Message, "slow") || !strings.Contains(active[0].Message, "p99<5ms") {
		t.Errorf("message = %q", active[0].Message)
	}
	// A warning must not degrade readiness.
	if names := h.wd.CriticalNames(); names != nil {
		t.Errorf("CriticalNames = %v for a warning rule", names)
	}
	// Recovery: fast ticks push the windowed p99 under the bound. The
	// threshold window is max(for, resolution) = 2s, so two fast ticks
	// flush the slow ones out.
	h.tick(100, 50, 50, 0)
	h.tick(100, 50, 50, 0)
	h.tick(100, 50, 50, 0)
	if active := h.wd.Active(); len(active) != 0 {
		t.Fatalf("after recovery: %+v", active)
	}
	events := h.wd.Events(0)
	if len(events) != 2 || events[0].State != "resolved" || events[1].State != "fired" {
		t.Fatalf("events = %+v, want fired then resolved (newest first)", events)
	}
	ms := h.meters.Snapshot()
	if ms.Counters["watchdog.alerts_fired"] != 1 || ms.Counters["watchdog.alerts_resolved"] != 1 {
		t.Errorf("meters = fired %d resolved %d", ms.Counters["watchdog.alerts_fired"], ms.Counters["watchdog.alerts_resolved"])
	}
	if ms.Gauges["watchdog.alerts_active"] != 0 {
		t.Errorf("alerts_active = %d after resolve", ms.Gauges["watchdog.alerts_active"])
	}
}

// TestBurnRateRule pins the multi-window semantics: both windows must
// burn to fire, the short window alone resolves.
func TestBurnRateRule(t *testing.T) {
	rec := obs.NewRecorder(16)
	h := newHarness(t, "lat_burn critical p99<1ms burn 2x over 6s/2s", rec)
	// 5ms latencies burn at 5x the 1ms SLO.
	for i := 0; i < 7; i++ {
		h.tick(5_000, 50, 50, 0)
	}
	active := h.wd.Active()
	if len(active) != 1 || active[0].State != "firing" {
		t.Fatalf("sustained 5x burn not firing: %+v", active)
	}
	if active[0].Value < 2 {
		t.Errorf("burn value = %v, want >= factor", active[0].Value)
	}
	if names := h.wd.CriticalNames(); len(names) != 1 || names[0] != "lat_burn" {
		t.Errorf("CriticalNames = %v", names)
	}
	// Recovery: fast traffic empties the short window first. Three fast
	// ticks put the 2s window fully under the bound while the 6s window
	// still remembers the burn — the rule must resolve anyway.
	h.tick(100, 50, 50, 0)
	h.tick(100, 50, 50, 0)
	h.tick(100, 50, 50, 0)
	if names := h.wd.CriticalNames(); names != nil {
		t.Fatalf("short-window recovery did not resolve: %v", names)
	}
	// Alert transitions landed in the flight recorder, route "watchdog".
	recs := rec.Recent(0)
	var fired, resolved bool
	for _, r := range recs {
		if r.Route != "watchdog" || r.Goal != "lat_burn" {
			continue
		}
		switch r.Verdict {
		case "fired":
			fired = true
		case "resolved":
			resolved = true
		}
	}
	if !fired || !resolved {
		t.Errorf("recorder saw fired=%v resolved=%v in %d records", fired, resolved, len(recs))
	}
}

// TestErrsRule pins the error-budget clause: rate = errors/requests
// over the window.
func TestErrsRule(t *testing.T) {
	h := newHarness(t, "errbudget critical errs<1%", nil)
	h.tick(100, 10, 10, 0) // first tick: counters' first sight, no deltas
	h.tick(100, 100, 100, 10)
	if names := h.wd.CriticalNames(); len(names) != 1 {
		t.Fatalf("10%% error rate not firing: active=%+v", h.wd.Active())
	}
	h.tick(100, 100, 100, 0)
	if names := h.wd.CriticalNames(); names != nil {
		t.Fatalf("clean tick did not resolve: %v", names)
	}
}

// TestNoDataHoldsState pins the silence semantics: an idle server
// neither fires nor resolves.
func TestNoDataHoldsState(t *testing.T) {
	h := newHarness(t, "errbudget critical errs<1%", nil)
	h.tick(100, 10, 10, 0)
	h.tick(100, 100, 100, 50)
	if len(h.wd.CriticalNames()) != 1 {
		t.Fatal("not firing before silence")
	}
	// Idle ticks: zero request deltas → the errs clause has no data.
	for i := 0; i < 5; i++ {
		h.tick(0, 0, 0, 0)
	}
	if len(h.wd.CriticalNames()) != 1 {
		t.Error("silence resolved the alert; no-data must hold state")
	}
	if ev := h.wd.Events(0); len(ev) != 1 {
		t.Errorf("silence emitted events: %+v", ev)
	}
}

func TestEventsLimitAndOrder(t *testing.T) {
	h := newHarness(t, "errbudget warning errs<1%", nil)
	h.tick(100, 10, 10, 0)
	for i := 0; i < 4; i++ {
		h.tick(100, 100, 100, 50) // fire
		h.tick(100, 100, 100, 0)  // resolve
	}
	all := h.wd.Events(0)
	if len(all) != 8 {
		t.Fatalf("events = %d, want 8", len(all))
	}
	if all[0].State != "resolved" || all[1].State != "fired" {
		t.Errorf("order not newest-first: %v %v", all[0].State, all[1].State)
	}
	if lim := h.wd.Events(3); len(lim) != 3 {
		t.Errorf("Events(3) = %d", len(lim))
	}
}

// TestStartLoop exercises the production ticker end to end and the
// idempotent stop.
func TestStartLoop(t *testing.T) {
	meters := obs.New()
	store := New(Config{Resolution: 5 * time.Millisecond, Retention: time.Second, Reg: meters})
	data := obs.New()
	data.Gauge("g").Set(1)
	stop := StartLoop(data, store, nil, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for store.SeriesCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	if store.SeriesCount() == 0 {
		t.Error("loop never sampled")
	}
	if meters.Snapshot().Counters["tsdb.samples"] == 0 {
		t.Error("tsdb.samples never moved")
	}
	// A nil store is a no-op loop.
	StartLoop(data, nil, nil, time.Millisecond)()
}
