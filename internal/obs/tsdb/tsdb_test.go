package tsdb

import (
	"math"
	"testing"
	"time"

	"indfd/internal/obs"
)

// base is an arbitrary fixed instant; every test ticks relative to it
// so slot arithmetic is deterministic.
var base = time.Unix(1_700_000_000, 0)

// newStore builds a 1s × 10s store with a 5s × 50s coarse tier. The
// store's own meters land in a registry the tests can also inspect.
func newStore(t *testing.T, maxSeries int) (*Store, *obs.Registry) {
	t.Helper()
	meters := obs.New()
	s := New(Config{
		Resolution:      time.Second,
		Retention:       10 * time.Second,
		CoarseStep:      5 * time.Second,
		CoarseRetention: 50 * time.Second,
		MaxSeries:       maxSeries,
		Reg:             meters,
	})
	if s == nil {
		t.Fatal("New returned nil for a positive resolution")
	}
	return s, meters
}

// snap builds a data snapshot from scratch — a separate registry from
// the store's meters, so queries see only the test's own series.
func snap(build func(reg *obs.Registry)) *obs.Snapshot {
	reg := obs.New()
	build(reg)
	return reg.Snapshot()
}

func findSeries(out []Series, name string) *Series {
	for i := range out {
		if out[i].Name == name {
			return &out[i]
		}
	}
	return nil
}

func TestNewOffStore(t *testing.T) {
	if s := New(Config{Resolution: 0, Reg: obs.New()}); s != nil {
		t.Fatal("Resolution 0 must return the nil off store")
	}
	var s *Store
	s.Sample(snap(func(reg *obs.Registry) { reg.Counter("c").Inc() }), base)
	if got := s.Query(QueryOptions{}); got != nil {
		t.Errorf("nil store Query = %v", got)
	}
	if _, ok := s.WindowSum("c", time.Second); ok {
		t.Error("nil store WindowSum ok")
	}
	if _, ok := s.WindowAvg("c", time.Second); ok {
		t.Error("nil store WindowAvg ok")
	}
	if s.SeriesCount() != 0 || s.Resolution() != 0 || s.Retention() != 0 {
		t.Error("nil store accessors not zero")
	}
	if !s.LastTick().IsZero() {
		t.Error("nil store LastTick not zero")
	}
}

// TestCounterDelta pins the delta encoding: the first sight of a
// counter emits no point, later ticks store the increment, and a
// counter that goes backwards (registry restart) clamps to zero.
func TestCounterDelta(t *testing.T) {
	s, _ := newStore(t, 0)
	mk := func(v int64) *obs.Snapshot {
		return snap(func(reg *obs.Registry) { reg.Counter("reqs").Add(v) })
	}
	s.Sample(mk(10), base)
	if got := s.Query(QueryOptions{}); findSeries(got, "reqs") != nil {
		t.Fatalf("first sight of a counter emitted a point: %+v", got)
	}
	s.Sample(mk(15), base.Add(time.Second))
	s.Sample(mk(15), base.Add(2*time.Second))
	s.Sample(mk(3), base.Add(3*time.Second)) // restarted counter
	se := findSeries(s.Query(QueryOptions{}), "reqs")
	if se == nil {
		t.Fatal("no reqs series")
	}
	if se.Kind != "delta" {
		t.Errorf("kind = %q", se.Kind)
	}
	want := []float64{5, 0, 0}
	if len(se.Points) != len(want) {
		t.Fatalf("points = %+v, want %v", se.Points, want)
	}
	for i, p := range se.Points {
		if p.V != want[i] {
			t.Errorf("point %d = %v, want %v", i, p.V, want[i])
		}
	}
	if sum, ok := s.WindowSum("reqs", 10*time.Second); !ok || sum != 5 {
		t.Errorf("WindowSum = %v, %v, want 5, true", sum, ok)
	}
}

func TestGaugeLastValue(t *testing.T) {
	s, _ := newStore(t, 0)
	mk := func(v int64) *obs.Snapshot {
		return snap(func(reg *obs.Registry) { reg.Gauge("depth").Set(v) })
	}
	s.Sample(mk(7), base)
	s.Sample(mk(3), base.Add(time.Second))
	se := findSeries(s.Query(QueryOptions{}), "depth")
	if se == nil || se.Kind != "gauge" {
		t.Fatalf("series = %+v", se)
	}
	if len(se.Points) != 2 || se.Points[0].V != 7 || se.Points[1].V != 3 {
		t.Errorf("points = %+v", se.Points)
	}
	if avg, ok := s.WindowAvg("depth", 10*time.Second); !ok || avg != 5 {
		t.Errorf("WindowAvg = %v, %v, want 5, true", avg, ok)
	}
}

// TestHistogramSeries pins the histogram expansion: per-tick count
// deltas, mean and quantiles from bucket deltas, and gapped quantiles
// (not zeros) on idle ticks.
func TestHistogramSeries(t *testing.T) {
	s, _ := newStore(t, 0)
	reg := obs.New()
	h := reg.Histogram("lat")
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	s.Sample(reg.Snapshot(), base)
	// Idle tick: no new observations.
	s.Sample(reg.Snapshot(), base.Add(time.Second))
	// A slower burst.
	for i := 0; i < 50; i++ {
		h.Observe(1000)
	}
	s.Sample(reg.Snapshot(), base.Add(2*time.Second))

	out := s.Query(QueryOptions{})
	count := findSeries(out, "lat:count")
	if count == nil || count.Kind != "delta" {
		t.Fatalf("lat:count = %+v", count)
	}
	wantCounts := []float64{100, 0, 50}
	if len(count.Points) != 3 {
		t.Fatalf("count points = %+v", count.Points)
	}
	for i, p := range count.Points {
		if p.V != wantCounts[i] {
			t.Errorf("count point %d = %v, want %v", i, p.V, wantCounts[i])
		}
	}
	p99 := findSeries(out, "lat:p99")
	if p99 == nil || p99.Kind != "quantile" {
		t.Fatalf("lat:p99 = %+v", p99)
	}
	// The idle tick must be a gap: two points, not three.
	if len(p99.Points) != 2 {
		t.Fatalf("p99 points = %+v, want 2 (idle tick gapped)", p99.Points)
	}
	if p99.Points[0].V < 64 || p99.Points[0].V > 127 {
		t.Errorf("first p99 = %v, want inside the 100us bucket", p99.Points[0].V)
	}
	// The second window is all ~1000us observations; its p99 must sit in
	// the 1000us bucket [512,1023], far from the first window's.
	if p99.Points[1].V < 512 || p99.Points[1].V > 1023 {
		t.Errorf("second p99 = %v, want inside the 1000us bucket", p99.Points[1].V)
	}
	mean := findSeries(out, "lat:mean")
	if mean == nil || len(mean.Points) != 2 {
		t.Fatalf("lat:mean = %+v", mean)
	}
	if mean.Points[1].V != 1000 {
		t.Errorf("second mean = %v, want 1000", mean.Points[1].V)
	}
}

// TestGapInvalidation skips far more ticks than the ring holds and
// wants stale points invalidated, not resurfaced at fresh timestamps.
func TestGapInvalidation(t *testing.T) {
	s, _ := newStore(t, 0) // 10 slots
	mk := func(v int64) *obs.Snapshot {
		return snap(func(reg *obs.Registry) { reg.Gauge("g").Set(v) })
	}
	s.Sample(mk(1), base)
	s.Sample(mk(2), base.Add(time.Second))
	// Jump 25 slots — more than two full laps.
	s.Sample(mk(9), base.Add(26*time.Second))
	se := findSeries(s.Query(QueryOptions{}), "g")
	if se == nil {
		t.Fatal("no series")
	}
	if len(se.Points) != 1 || se.Points[0].V != 9 {
		t.Fatalf("points = %+v, want only the post-gap point", se.Points)
	}
	wantT := base.Add(26*time.Second).UnixNano() / int64(time.Second) * 1000
	if se.Points[0].T != wantT {
		t.Errorf("timestamp = %d, want %d", se.Points[0].T, wantT)
	}
}

func TestTimeBackwards(t *testing.T) {
	s, _ := newStore(t, 0)
	mk := func(v int64) *obs.Snapshot {
		return snap(func(reg *obs.Registry) { reg.Gauge("g").Set(v) })
	}
	s.Sample(mk(1), base.Add(5*time.Second))
	s.Sample(mk(99), base) // clock went backwards; must not corrupt
	se := findSeries(s.Query(QueryOptions{}), "g")
	if len(se.Points) != 1 || se.Points[0].V != 1 {
		t.Errorf("points = %+v, want the forward point only", se.Points)
	}
}

func TestQuerySinceStepMatch(t *testing.T) {
	s, _ := newStore(t, 0)
	for i := 0; i < 8; i++ {
		cum := int64((i + 1) * 2) // delta of 2 per tick after the first
		now := base.Add(time.Duration(i) * time.Second)
		s.Sample(snap(func(reg *obs.Registry) {
			reg.Counter("hits").Add(cum)
			reg.Gauge("depth").Set(int64(i))
		}), now)
	}
	// match narrows by substring.
	out := s.Query(QueryOptions{Match: "hit"})
	if len(out) != 1 || out[0].Name != "hits" {
		t.Fatalf("match query = %+v", out)
	}
	// since drops older points.
	since := base.Add(5 * time.Second)
	out = s.Query(QueryOptions{Match: "hits", Since: since})
	for _, p := range out[0].Points {
		if p.T < since.UnixMilli() {
			t.Errorf("point at %d predates since", p.T)
		}
	}
	if len(out[0].Points) != 3 {
		t.Errorf("since points = %+v, want 3", out[0].Points)
	}
	// step re-buckets: deltas sum, gauges average.
	out = s.Query(QueryOptions{Step: 4 * time.Second})
	hits := findSeries(out, "hits")
	var sum float64
	for _, p := range hits.Points {
		sum += p.V
	}
	if sum != 14 { // 7 deltas of 2
		t.Errorf("rebucketed delta total = %v, want 14", sum)
	}
	depth := findSeries(out, "depth")
	if len(depth.Points) >= 8 {
		t.Errorf("gauge not rebucketed: %+v", depth.Points)
	}
}

// TestCoarseTier reaches past the fine retention and wants the coarse
// downsampled ring to answer: summed deltas, averaged gauges.
func TestCoarseTier(t *testing.T) {
	s, _ := newStore(t, 0) // fine 1s×10s, coarse 5s×50s
	for i := 0; i < 40; i++ {
		cum := int64(i + 1)
		now := base.Add(time.Duration(i) * time.Second)
		s.Sample(snap(func(reg *obs.Registry) {
			reg.Counter("c").Add(cum)
			reg.Gauge("g").Set(10)
		}), now)
	}
	out := s.Query(QueryOptions{Since: base.Add(-time.Minute)})
	c := findSeries(out, "c")
	if c == nil {
		t.Fatal("no coarse counter series")
	}
	for i, p := range c.Points {
		// Each closed coarse slot holds 5 summed deltas of 1 — except the
		// first, whose opening tick was the counter's first sight (no
		// delta yet), leaving 4.
		want := 5.0
		if i == 0 {
			want = 4.0
		}
		if p.V != want {
			t.Errorf("coarse delta point %d = %+v, want %v", i, p, want)
		}
	}
	if len(c.Points) < 5 {
		t.Errorf("coarse points = %d, want >= 5", len(c.Points))
	}
	g := findSeries(out, "g")
	for _, p := range g.Points {
		if p.V != 10 {
			t.Errorf("coarse gauge point = %+v, want the 10 average", p)
		}
	}
}

func TestMaxSeriesCap(t *testing.T) {
	s, meters := newStore(t, 2)
	s.Sample(snap(func(reg *obs.Registry) {
		reg.Gauge("a").Set(1)
		reg.Gauge("b").Set(2)
		reg.Gauge("c").Set(3)
		reg.Gauge("d").Set(4)
	}), base)
	if got := s.SeriesCount(); got != 2 {
		t.Errorf("series count = %d, want capped at 2", got)
	}
	if dropped := meters.Snapshot().Counters["tsdb.series_dropped"]; dropped != 2 {
		t.Errorf("tsdb.series_dropped = %d, want 2", dropped)
	}
}

func TestMeters(t *testing.T) {
	s, meters := newStore(t, 0)
	s.Sample(snap(func(reg *obs.Registry) { reg.Gauge("g").Set(1) }), base)
	s.Sample(snap(func(reg *obs.Registry) { reg.Gauge("g").Set(2) }), base.Add(time.Second))
	ms := meters.Snapshot()
	if ms.Counters["tsdb.samples"] != 2 {
		t.Errorf("tsdb.samples = %d", ms.Counters["tsdb.samples"])
	}
	if ms.Gauges["tsdb.series"] != 1 {
		t.Errorf("tsdb.series = %d", ms.Gauges["tsdb.series"])
	}
	if got := s.LastTick(); !got.Equal(base.Add(time.Second).Truncate(time.Millisecond)) {
		t.Errorf("LastTick = %v", got)
	}
}

func TestWindowNoData(t *testing.T) {
	s, _ := newStore(t, 0)
	if _, ok := s.WindowAvg("missing", time.Minute); ok {
		t.Error("WindowAvg ok for an absent series")
	}
	s.Sample(snap(func(reg *obs.Registry) { reg.Counter("c").Add(1) }), base)
	// Only the first sight landed — no delta point exists yet.
	if _, ok := s.WindowSum("c", time.Minute); ok {
		t.Error("WindowSum ok before any delta point")
	}
}

func TestWindowAverageSkipsGaps(t *testing.T) {
	s, _ := newStore(t, 0)
	mk := func(v int64) *obs.Snapshot {
		return snap(func(reg *obs.Registry) { reg.Gauge("g").Set(v) })
	}
	s.Sample(mk(4), base)
	// skip 2 ticks
	s.Sample(mk(8), base.Add(3*time.Second))
	if avg, ok := s.WindowAvg("g", 10*time.Second); !ok || avg != 6 {
		t.Errorf("WindowAvg = %v, %v, want 6 (gaps skipped, not zero-filled)", avg, ok)
	}
}

func TestNoNaNLeaks(t *testing.T) {
	s, _ := newStore(t, 0)
	s.Sample(snap(func(reg *obs.Registry) { reg.Gauge("g").Set(1) }), base)
	for _, se := range s.Query(QueryOptions{}) {
		for _, p := range se.Points {
			if math.IsNaN(p.V) {
				t.Errorf("series %s leaked NaN", se.Name)
			}
		}
	}
}
