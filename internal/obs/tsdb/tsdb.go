// Package tsdb retains telemetry history inside the process: a
// fixed-memory, lock-striped ring of time series sampled from an
// obs.Registry on a ticker, plus a watchdog (watchdog.go) that
// evaluates SLO rules over the rings and raises alerts while the
// process runs.
//
// Every other observability surface in this repository is a
// point-in-time snapshot — /metrics, /debug/obs, /debug/digests all
// answer "what is true now". The tsdb answers "what changed in the
// last five minutes": each Sample tick turns the registry snapshot
// into one point per series — counters delta-encode (the stored value
// is the increment during the tick, so rate = value/resolution),
// gauges store their last value, and histograms extract per-tick
// quantiles (p50/p90/p95/p99), mean and count from the bucket deltas
// between consecutive snapshots, so a latency series reflects each
// window's traffic, not the cumulative blur.
//
// Memory is fixed at construction: every series owns one float64 ring
// of retention/resolution slots plus one coarser downsampled ring
// (e.g. 2s × 15m fine, 30s × 2h coarse), and the series population is
// capped (new names beyond the cap are dropped and counted in
// tsdb.series_dropped). A nil *Store is the valid "history off" store:
// Sample and Query on nil are allocation-free no-ops, the same
// contract the rest of internal/obs honors.
package tsdb

import (
	"hash/maphash"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indfd/internal/obs"
)

// Kind classifies how a series' points were derived from the registry.
type Kind uint8

const (
	// KindDelta points are per-tick increments of a cumulative counter
	// (or of a histogram's count); sum them to re-aggregate over a
	// window, divide by the resolution for a rate.
	KindDelta Kind = iota
	// KindGauge points are last-value samples; average them over a
	// window.
	KindGauge
	// KindQuantile points are per-tick quantile/mean extractions from a
	// histogram's bucket deltas; average them over a window.
	KindQuantile
)

// String returns the JSON name of the kind.
func (k Kind) String() string {
	switch k {
	case KindDelta:
		return "delta"
	case KindGauge:
		return "gauge"
	default:
		return "quantile"
	}
}

// Config parameterizes New. Zero fields take the documented defaults.
type Config struct {
	// Resolution is the sampling period (default 2s). Each Sample call
	// lands points in the slot now/Resolution; the caller (depserve's
	// sampler loop, or a test) owns the ticker.
	Resolution time.Duration
	// Retention is how far back the fine ring reaches (default 15m).
	Retention time.Duration
	// CoarseStep is the downsampled tier's period (default
	// 15×Resolution); CoarseRetention its reach (default 8×Retention).
	// Queries older than Retention are served from the coarse ring.
	CoarseStep      time.Duration
	CoarseRetention time.Duration
	// MaxSeries caps the series population (default 1024). The registry
	// bounds its own label cardinality (routes are registered patterns,
	// engines a fixed set), so the cap is a backstop, not a working
	// limit; drops count in tsdb.series_dropped.
	MaxSeries int
	// Reg receives the store's own meters: tsdb.samples (ticks taken),
	// tsdb.series (gauge: live series), tsdb.series_dropped.
	Reg *obs.Registry
}

// Point is one retained sample: T is unix milliseconds, V the value.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Series is one query result: a named, kinded point list in ascending
// time order. Gap ticks (no sample landed) are absent, not zero.
type Series struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Points []Point `json:"points"`
}

// storeShards stripes the series map so Query during a Sample tick
// contends on one stripe, not the store.
const storeShards = 16

type storeShard struct {
	mu     sync.Mutex
	series map[string]*series
}

// series is one ring pair. All fields are guarded by the owning
// shard's mutex.
type series struct {
	name string
	kind Kind

	ring     []float64 // fine tier; NaN = no sample
	lastSlot int64     // absolute fine slot last written, -1 = never

	// Delta state: the previous cumulative value, valid once seen.
	prevRaw  float64
	havePrev bool

	coarse     []float64 // coarse tier; NaN = no sample
	coarseLast int64     // absolute coarse slot last flushed, -1 = never
	accSum     float64   // accumulator for the open coarse slot
	accCnt     int64
	accSlot    int64 // absolute coarse slot the accumulator belongs to
}

// histState is the per-histogram bucket memory that turns cumulative
// snapshots into per-tick delta histograms.
type histState struct {
	buckets map[int64]int64
	count   int64
	sum     int64
}

// Store is the in-process time-series database. Create with New; nil
// is the valid "off" store.
type Store struct {
	res         time.Duration
	retention   time.Duration
	slots       int
	coarseStep  time.Duration
	coarseSlots int
	maxSeries   int

	shards  [storeShards]storeShard
	nSeries atomic.Int64

	// histMu guards hists; only the Sample caller touches it, but Query
	// never needs it, so a plain mutex is enough.
	histMu sync.Mutex
	hists  map[string]*histState

	lastTickMS atomic.Int64 // unix millis of the latest Sample

	cSamples *obs.Counter
	cDropped *obs.Counter
	gSeries  *obs.Gauge

	seed maphash.Seed
}

// New builds a Store. cfg.Resolution <= 0 returns nil — the off store —
// so a flag value of 0 disables history with no further branching at
// the call sites.
func New(cfg Config) *Store {
	if cfg.Resolution <= 0 {
		return nil
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 15 * time.Minute
	}
	if cfg.Retention < cfg.Resolution {
		cfg.Retention = cfg.Resolution
	}
	if cfg.CoarseStep <= 0 {
		cfg.CoarseStep = 15 * cfg.Resolution
	}
	if cfg.CoarseStep < cfg.Resolution {
		cfg.CoarseStep = cfg.Resolution
	}
	if cfg.CoarseRetention <= 0 {
		cfg.CoarseRetention = 8 * cfg.Retention
	}
	if cfg.MaxSeries <= 0 {
		cfg.MaxSeries = 1024
	}
	s := &Store{
		res:         cfg.Resolution,
		retention:   cfg.Retention,
		slots:       int(cfg.Retention / cfg.Resolution),
		coarseStep:  cfg.CoarseStep,
		coarseSlots: int(cfg.CoarseRetention / cfg.CoarseStep),
		maxSeries:   cfg.MaxSeries,
		hists:       make(map[string]*histState),
		cSamples:    cfg.Reg.Counter("tsdb.samples"),
		cDropped:    cfg.Reg.Counter("tsdb.series_dropped"),
		gSeries:     cfg.Reg.Gauge("tsdb.series"),
		seed:        maphash.MakeSeed(),
	}
	if s.slots < 1 {
		s.slots = 1
	}
	if s.coarseSlots < 1 {
		s.coarseSlots = 1
	}
	for i := range s.shards {
		s.shards[i].series = make(map[string]*series)
	}
	return s
}

// Resolution returns the sampling period (0 for the nil store).
func (s *Store) Resolution() time.Duration {
	if s == nil {
		return 0
	}
	return s.res
}

// Retention returns the fine tier's reach (0 for the nil store).
func (s *Store) Retention() time.Duration {
	if s == nil {
		return 0
	}
	return s.retention
}

// LastTick returns when the latest Sample landed (zero time if never,
// or for the nil store).
func (s *Store) LastTick() time.Time {
	if s == nil {
		return time.Time{}
	}
	ms := s.lastTickMS.Load()
	if ms == 0 {
		return time.Time{}
	}
	return time.UnixMilli(ms)
}

// Sample ingests one registry snapshot at now: one point per counter
// (delta), gauge (last value) and histogram quantile. Call it on a
// steady ticker at the configured resolution; uneven or skipped ticks
// leave gaps, they do not corrupt neighbors. Nil store and nil
// snapshot are no-ops.
func (s *Store) Sample(snap *obs.Snapshot, now time.Time) {
	if s == nil || snap == nil {
		return
	}
	slot := now.UnixNano() / int64(s.res)
	for name, v := range snap.Counters {
		s.observe(name, KindDelta, float64(v), slot)
	}
	for name, v := range snap.Gauges {
		s.observe(name, KindGauge, float64(v), slot)
	}
	s.histMu.Lock()
	for name, h := range snap.Histograms {
		s.observeHistogram(name, h, slot)
	}
	s.histMu.Unlock()
	s.lastTickMS.Store(now.UnixMilli())
	s.cSamples.Inc()
}

// observeHistogram turns the cumulative histogram into a per-tick
// delta histogram and lands its quantile/mean/count series. Caller
// holds histMu.
func (s *Store) observeHistogram(name string, h obs.HistogramSnapshot, slot int64) {
	st, ok := s.hists[name]
	if !ok {
		if len(s.hists) >= s.maxSeries {
			s.cDropped.Inc()
			return
		}
		st = &histState{buckets: make(map[int64]int64)}
		s.hists[name] = st
	}
	delta := obs.HistogramSnapshot{
		Count: h.Count - st.count,
		Sum:   h.Sum - st.sum,
		Max:   h.Max, // per-window max is unknowable from cumulative buckets; cap at the global max
	}
	for _, b := range h.Buckets {
		if d := b.Count - st.buckets[b.Le]; d > 0 {
			delta.Buckets = append(delta.Buckets, obs.Bucket{Le: b.Le, Count: d})
		}
		st.buckets[b.Le] = b.Count
	}
	st.count, st.sum = h.Count, h.Sum
	s.observe(name+":count", KindDelta2, float64(delta.Count), slot)
	if delta.Count <= 0 {
		// A tick without observations contributes count=0 and leaves the
		// quantile series gapped — averaging in zeros would drag every
		// idle window's p99 to nothing.
		return
	}
	s.observe(name+":mean", KindQuantile, float64(delta.Sum)/float64(delta.Count), slot)
	for _, q := range [...]struct {
		suffix string
		q      float64
	}{{":p50", 0.50}, {":p90", 0.90}, {":p95", 0.95}, {":p99", 0.99}} {
		s.observe(name+q.suffix, KindQuantile, float64(delta.Quantile(q.q)), slot)
	}
}

// KindDelta2 is KindDelta for values that are already per-tick deltas
// (histogram count increments): stored as-is, no differencing.
const KindDelta2 = Kind(3)

// observe lands one raw value in the named series at the absolute fine
// slot.
func (s *Store) observe(name string, kind Kind, raw float64, slot int64) {
	sh := &s.shards[maphash.String(s.seed, name)%storeShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	se, ok := sh.series[name]
	if !ok {
		if int(s.nSeries.Load()) >= s.maxSeries {
			s.cDropped.Inc()
			return
		}
		storedKind := kind
		if kind == KindDelta2 {
			storedKind = KindDelta
		}
		se = &series{
			name:       name,
			kind:       storedKind,
			ring:       make([]float64, s.slots),
			coarse:     make([]float64, s.coarseSlots),
			lastSlot:   -1,
			coarseLast: -1,
			accSlot:    -1,
		}
		for i := range se.ring {
			se.ring[i] = math.NaN()
		}
		for i := range se.coarse {
			se.coarse[i] = math.NaN()
		}
		sh.series[name] = se
		s.gSeries.Set(s.nSeries.Add(1))
	}

	v := raw
	switch kind {
	case KindDelta:
		if !se.havePrev {
			se.prevRaw, se.havePrev = raw, true
			return // the first sight of a counter has no delta yet
		}
		v = raw - se.prevRaw
		se.prevRaw = raw
		if v < 0 {
			v = 0 // a restarted counter (snapshot from a fresh registry) must not go negative
		}
	case KindDelta2, KindGauge, KindQuantile:
	}

	// Invalidate any slots skipped since the last write so a ring lap
	// cannot resurface stale points at fresh timestamps.
	if se.lastSlot >= 0 && slot > se.lastSlot {
		gap := slot - se.lastSlot - 1
		if gap > int64(s.slots) {
			gap = int64(s.slots)
		}
		for i := int64(1); i <= gap; i++ {
			se.ring[int((se.lastSlot+i)%int64(s.slots))] = math.NaN()
		}
	}
	if slot < se.lastSlot {
		return // time went backwards; drop rather than corrupt
	}
	se.ring[int(slot%int64(s.slots))] = v
	se.lastSlot = slot

	// Coarse tier: accumulate within the open coarse slot, flush when
	// the sample crosses into the next one.
	cslot := slot * int64(s.res) / int64(s.coarseStep)
	if se.accSlot >= 0 && cslot != se.accSlot {
		s.flushCoarse(se)
	}
	se.accSlot = cslot
	se.accSum += v
	se.accCnt++
}

// flushCoarse folds the accumulator into the coarse ring: deltas sum
// (the coarse point re-aggregates the window), gauges and quantiles
// average.
func (s *Store) flushCoarse(se *series) {
	if se.accCnt == 0 {
		return
	}
	v := se.accSum
	if se.kind != KindDelta {
		v /= float64(se.accCnt)
	}
	if se.coarseLast >= 0 && se.accSlot > se.coarseLast {
		gap := se.accSlot - se.coarseLast - 1
		if gap > int64(s.coarseSlots) {
			gap = int64(s.coarseSlots)
		}
		for i := int64(1); i <= gap; i++ {
			se.coarse[int((se.coarseLast+i)%int64(s.coarseSlots))] = math.NaN()
		}
	}
	se.coarse[int(se.accSlot%int64(s.coarseSlots))] = v
	se.coarseLast = se.accSlot
	se.accSum, se.accCnt, se.accSlot = 0, 0, -1
}

// QueryOptions narrows a Query. The zero value returns every series'
// full fine-tier history.
type QueryOptions struct {
	// Since drops points older than this instant. When it reaches back
	// past the fine retention the result comes from the coarse tier.
	Since time.Time
	// Step re-aggregates points into coarser buckets (rounded up to a
	// multiple of the tier's resolution): deltas sum, gauges and
	// quantiles average.
	Step time.Duration
	// Match keeps only series whose name contains this substring.
	Match string
}

// Query returns the retained history, name-sorted, points ascending in
// time. Nil store returns nil.
func (s *Store) Query(opt QueryOptions) []Series {
	if s == nil {
		return nil
	}
	lastMS := s.lastTickMS.Load()
	if lastMS == 0 {
		return nil
	}
	fine := true
	res := s.res
	if !opt.Since.IsZero() && time.UnixMilli(lastMS).Sub(opt.Since) > s.retention {
		fine = false
		res = s.coarseStep
	}
	var out []Series
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, se := range sh.series {
			if opt.Match != "" && !strings.Contains(se.name, opt.Match) {
				continue
			}
			pts := s.points(se, fine, opt.Since)
			if len(pts) == 0 {
				continue
			}
			out = append(out, Series{Name: se.name, Kind: se.kind.String(), Points: pts})
		}
		sh.mu.Unlock()
	}
	if opt.Step > res {
		step := opt.Step.Round(res)
		if step < res {
			step = res
		}
		for i := range out {
			out[i].Points = rebucket(out[i].Points, out[i].Kind, step)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// points copies one series' tier into a Point slice, oldest first,
// skipping NaN gaps and points before since. Caller holds the shard
// mutex.
func (s *Store) points(se *series, fine bool, since time.Time) []Point {
	ring, last, step := se.ring, se.lastSlot, int64(s.res)
	if !fine {
		ring, last, step = se.coarse, se.coarseLast, int64(s.coarseStep)
	}
	if last < 0 {
		return nil
	}
	n := int64(len(ring))
	start := last - n + 1
	if start < 0 {
		start = 0
	}
	sinceNS := int64(math.MinInt64)
	if !since.IsZero() {
		sinceNS = since.UnixNano()
	}
	var pts []Point
	for slot := start; slot <= last; slot++ {
		v := ring[int(slot%n)]
		if math.IsNaN(v) {
			continue
		}
		tNS := slot * step
		if tNS < sinceNS {
			continue
		}
		pts = append(pts, Point{T: tNS / int64(time.Millisecond), V: v})
	}
	return pts
}

// rebucket folds points into step-sized buckets: "delta" sums, other
// kinds average.
func rebucket(pts []Point, kind string, step time.Duration) []Point {
	if len(pts) == 0 {
		return pts
	}
	stepMS := step.Milliseconds()
	var out []Point
	var sum float64
	var cnt int64
	bucket := pts[0].T / stepMS
	flush := func(b int64) {
		if cnt == 0 {
			return
		}
		v := sum
		if kind != "delta" {
			v /= float64(cnt)
		}
		out = append(out, Point{T: b * stepMS, V: v})
		sum, cnt = 0, 0
	}
	for _, p := range pts {
		if b := p.T / stepMS; b != bucket {
			flush(bucket)
			bucket = b
		}
		sum += p.V
		cnt++
	}
	flush(bucket)
	return out
}

// --- window reads (the watchdog's view) ------------------------------------

// WindowSum sums the named series' fine-tier points over the trailing
// window (relative to the last tick). ok is false when no point
// landed in the window — "no data" must not read as zero for an
// alerting rule. Nil store: never ok.
func (s *Store) WindowSum(name string, window time.Duration) (sum float64, ok bool) {
	return s.window(name, window, false)
}

// WindowAvg averages the named series' fine-tier points over the
// trailing window. Nil store: never ok.
func (s *Store) WindowAvg(name string, window time.Duration) (avg float64, ok bool) {
	return s.window(name, window, true)
}

func (s *Store) window(name string, window time.Duration, avg bool) (float64, bool) {
	if s == nil {
		return 0, false
	}
	sh := &s.shards[maphash.String(s.seed, name)%storeShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	se, ok := sh.series[name]
	if !ok || se.lastSlot < 0 {
		return 0, false
	}
	slots := int64(window / s.res)
	if slots < 1 {
		slots = 1
	}
	if slots > int64(s.slots) {
		slots = int64(s.slots)
	}
	var sum float64
	var cnt int64
	for slot := se.lastSlot - slots + 1; slot <= se.lastSlot; slot++ {
		if slot < 0 {
			continue
		}
		v := se.ring[int(slot%int64(s.slots))]
		if math.IsNaN(v) {
			continue
		}
		sum += v
		cnt++
	}
	if cnt == 0 {
		return 0, false
	}
	if avg {
		return sum / float64(cnt), true
	}
	return sum, true
}

// SeriesCount returns the live series population (0 for nil).
func (s *Store) SeriesCount() int {
	if s == nil {
		return 0
	}
	return int(s.nSeries.Load())
}
