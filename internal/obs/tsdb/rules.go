package tsdb

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"indfd/internal/slo"
)

// This file parses the -alert-rules file. The format is line-based,
// one rule per line, # comments and blank lines ignored:
//
//	<name> <severity> <clause> [for <duration>] [burn <factor>x over <long>/<short>]
//
//	# p99 of the implies route must stay under 250ms for 10s straight
//	implies_p99 warning p99{route=/v1/implies}<250ms for 10s
//	# the classic multi-window burn-rate page on the error budget
//	err_budget critical errs<1% burn 14x over 1h/5m
//	# overall latency SLO, burn-rate form: fire when the windowed p99
//	# runs at 2x its bound in both windows
//	latency_burn critical p99<50ms burn 2x over 5m/1m
//
// The clause is exactly loadgen's SLO grammar (internal/slo), so an
// SLO already gating CI drops into a rules file unchanged.

// ParseRules parses a rules document. Rule names must be unique; the
// `max` metric is rejected (per-window maxima cannot be recovered from
// cumulative histograms, so a max rule would silently evaluate the
// whole process lifetime).
func ParseRules(text string) ([]Rule, error) {
	var rules []Rule
	seen := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := parseRuleLine(line)
		if err != nil {
			return nil, fmt.Errorf("rules line %d: %v", ln+1, err)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("rules line %d: duplicate rule name %q", ln+1, r.Name)
		}
		seen[r.Name] = true
		rules = append(rules, r)
	}
	return rules, nil
}

func parseRuleLine(line string) (Rule, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Rule{}, fmt.Errorf("want '<name> <severity> <clause> [for <dur>] [burn <f>x over <long>/<short>]', got %q", line)
	}
	r := Rule{Name: fields[0], Severity: Severity(strings.ToLower(fields[1]))}
	if r.Severity != SeverityCritical && r.Severity != SeverityWarning {
		return Rule{}, fmt.Errorf("severity %q: want critical or warning", fields[1])
	}
	clause, err := slo.ParseClause(fields[2])
	if err != nil {
		return Rule{}, err
	}
	if clause.Metric == "max" {
		return Rule{}, fmt.Errorf("clause %q: max is not evaluable over a window (cumulative histograms keep no per-window max); use p99", fields[2])
	}
	r.Clause = clause
	r.ClauseText = clause.Text

	rest := fields[3:]
	for len(rest) > 0 {
		switch rest[0] {
		case "for":
			if len(rest) < 2 {
				return Rule{}, fmt.Errorf("'for' needs a duration")
			}
			d, err := time.ParseDuration(rest[1])
			if err != nil {
				return Rule{}, fmt.Errorf("'for %s': %v", rest[1], err)
			}
			r.For = d
			rest = rest[2:]
		case "burn":
			// burn <factor>x over <long>/<short>
			if len(rest) < 4 || rest[2] != "over" {
				return Rule{}, fmt.Errorf("want 'burn <factor>x over <long>/<short>'")
			}
			factorStr, ok := strings.CutSuffix(rest[1], "x")
			if !ok {
				return Rule{}, fmt.Errorf("burn factor %q: want e.g. 14x", rest[1])
			}
			factor, err := strconv.ParseFloat(factorStr, 64)
			if err != nil || factor <= 0 {
				return Rule{}, fmt.Errorf("burn factor %q: want a positive number followed by x", rest[1])
			}
			longStr, shortStr, ok := strings.Cut(rest[3], "/")
			if !ok {
				return Rule{}, fmt.Errorf("burn windows %q: want <long>/<short>", rest[3])
			}
			long, err := time.ParseDuration(longStr)
			if err != nil {
				return Rule{}, fmt.Errorf("burn long window %q: %v", longStr, err)
			}
			short, err := time.ParseDuration(shortStr)
			if err != nil {
				return Rule{}, fmt.Errorf("burn short window %q: %v", shortStr, err)
			}
			if short > long {
				return Rule{}, fmt.Errorf("burn windows %q: short window exceeds long", rest[3])
			}
			r.Burn = &Burn{Factor: factor, Long: long, Short: short}
			rest = rest[4:]
		default:
			return Rule{}, fmt.Errorf("unexpected token %q", rest[0])
		}
	}
	return r, nil
}
