package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the flight recorder: a bounded in-process store of the
// last N completed request records, queryable while the process runs.
// Metrics aggregate and spans vanish with the next eviction — the
// recorder is the piece that lets an operator go from "the p99 moved"
// to the exact request that moved it: latency-histogram exemplars (see
// Histogram.ObserveExemplar) carry trace IDs, and the recorder resolves
// a trace ID back to the full record — span tree, verdict, cache
// status, wide-event attributes — after the response is long gone.

// RequestRecord is one completed request as the flight recorder retains
// it: identity (TraceID), the request's wide-event attributes, outcome,
// and the query's span tree.
type RequestRecord struct {
	// TraceID is the request's identity — the same ID the X-Trace-Id
	// response header, the traceparent response header, the access log,
	// and histogram exemplars carry. With trace-context propagation on
	// (internal/serve) it is a W3C 32-hex trace ID, honored from the
	// caller's traceparent when one arrived valid.
	TraceID string `json:"trace_id"`
	// SpanID is the server's own 16-hex span ID for this request (the
	// parent-id the response traceparent advertises); ParentSpanID is
	// the caller's span ID when the request carried a valid traceparent.
	SpanID       string `json:"span_id,omitempty"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
	// Route is the registered route pattern (bounded cardinality).
	Route string `json:"route"`
	// Status is the HTTP status code of the response.
	Status int `json:"status"`
	// Start is when the request began.
	Start time.Time `json:"start"`
	// DurationNS is the wall-clock time the request took.
	DurationNS int64 `json:"duration_ns"`
	// Goal, Mode, Verdict, Engine and Cache describe the implication
	// query, when the record is one ("" otherwise). Cache is "hit",
	// "miss", or "" when the answer cache was not consulted.
	Goal    string `json:"goal,omitempty"`
	Mode    string `json:"mode,omitempty"`
	Verdict string `json:"verdict,omitempty"`
	Engine  string `json:"engine,omitempty"`
	Cache   string `json:"cache,omitempty"`
	// Attrs carries any further wide-event annotations.
	Attrs []Attr `json:"attrs,omitempty"`
	// Trace is the query's span tree (engine dispatch down to chase
	// rounds), nil for requests that ran no engine.
	Trace *SpanSnapshot `json:"trace,omitempty"`
	// DepProfile is the query's per-dependency cost attribution, set when
	// the request asked for profiling.
	DepProfile *DepProfile `json:"dep_profile,omitempty"`

	seq uint64 // recorder-assigned, for newest-first ordering
}

// recorderShards stripes the recorder's mutexes: appends from concurrent
// request goroutines land on different shards and rarely contend.
const recorderShards = 8

// recorderShard is one stripe: a fixed-size ring written round-robin.
type recorderShard struct {
	mu   sync.Mutex
	ring []*RequestRecord // len = shard capacity; nil until written
	next int              // ring position of the next write
}

// Recorder retains the last N completed RequestRecords in a sharded
// ring buffer: Add is O(1) — an atomic sequence fetch plus one shard
// mutex — and eviction is implicit (the ring overwrites its oldest
// slot). A nil *Recorder is a valid "recording off" recorder: Add is a
// no-op, Recent and Get return nothing.
type Recorder struct {
	shards [recorderShards]recorderShard
	seq    atomic.Uint64
	cap    int
}

// NewRecorder creates a Recorder retaining the last n records (rounded
// up to a multiple of the shard count; minimum one record per shard).
// n <= 0 returns nil, the recording-off recorder.
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		return nil
	}
	per := (n + recorderShards - 1) / recorderShards
	r := &Recorder{cap: per * recorderShards}
	for i := range r.shards {
		r.shards[i].ring = make([]*RequestRecord, per)
	}
	return r
}

// Cap returns the number of records the recorder retains (0 when nil).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return r.cap
}

// Add retains a completed record, evicting the oldest record of its
// shard once the shard's ring is full. The record is retained by
// pointer and must not be mutated after Add.
func (r *Recorder) Add(rec *RequestRecord) {
	if r == nil || rec == nil {
		return
	}
	rec.seq = r.seq.Add(1)
	sh := &r.shards[rec.seq%recorderShards]
	sh.mu.Lock()
	sh.ring[sh.next] = rec
	sh.next = (sh.next + 1) % len(sh.ring)
	sh.mu.Unlock()
}

// Recent returns up to limit retained records, newest first (limit <= 0
// means all retained records).
func (r *Recorder) Recent(limit int) []*RequestRecord {
	if r == nil {
		return nil
	}
	var out []*RequestRecord
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, rec := range sh.ring {
			if rec != nil {
				out = append(out, rec)
			}
		}
		sh.mu.Unlock()
	}
	// Newest first: sequence numbers are globally monotone.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].seq > out[j-1].seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Get resolves a trace ID to its retained record, or nil when the
// record was never retained or has been evicted. This is the exemplar
// round trip: a histogram bucket's exemplar trace ID resolves here to
// the full span tree of the request that landed in that bucket.
func (r *Recorder) Get(traceID string) *RequestRecord {
	if r == nil {
		return nil
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, rec := range sh.ring {
			if rec != nil && rec.TraceID == traceID {
				sh.mu.Unlock()
				return rec
			}
		}
		sh.mu.Unlock()
	}
	return nil
}
