package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSampleRuntimeUptimeAndBuildInfo pins the PR-6 additions to the
// process.* gauge set: a nonnegative uptime and the constant
// build-info gauge with identity labels.
func TestSampleRuntimeUptimeAndBuildInfo(t *testing.T) {
	reg := New()
	SampleRuntime(reg)
	snap := reg.Snapshot()
	up, ok := snap.Gauges["process.uptime_seconds"]
	if !ok || up < 0 {
		t.Errorf("process.uptime_seconds = %d (present %t)", up, ok)
	}
	var info string
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "process.build_info{") {
			info = name
			if v != 1 {
				t.Errorf("%s = %d, want 1", name, v)
			}
		}
	}
	if info == "" {
		t.Fatalf("no process.build_info gauge in %v", sortedKeys(snap.Gauges))
	}
	for _, label := range []string{"version=", "goversion=", "revision="} {
		if !strings.Contains(info, label) {
			t.Errorf("build_info labels missing %s: %s", label, info)
		}
	}
	id := Build()
	if !strings.HasPrefix(id.GoVersion, "go") {
		t.Errorf("Build().GoVersion = %q", id.GoVersion)
	}
	if id.Version == "" || id.Revision == "" {
		t.Errorf("Build() has empty fields: %+v", id)
	}
	if Uptime() <= 0 {
		t.Errorf("Uptime() = %v", Uptime())
	}
}

// TestRuntimeSamplerDoubleStop is the regression test for the stop
// function's contract: idempotent and safe to call concurrently —
// depserve's shutdown path (deferred stop plus signal-path stop) must
// not panic on a double close or hang waiting for an exited goroutine.
func TestRuntimeSamplerDoubleStop(t *testing.T) {
	reg := New()
	stop := StartRuntimeSampler(reg, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stop()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent stops did not all return")
	}
	stop() // and once more, sequentially, for good measure

	// The nil-registry sampler's stop must be equally callable.
	nilStop := StartRuntimeSampler(nil, time.Millisecond)
	nilStop()
	nilStop()
}

// TestObserveExemplarConcurrent hammers one histogram's exemplar slots
// from many goroutines under the race detector (make race runs this
// package with -race): the atomic-pointer protocol must keep every
// published exemplar a complete string and the counts exact.
func TestObserveExemplarConcurrent(t *testing.T) {
	h := New().Histogram("lat")
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Everything lands in the same bucket, so the exemplar
				// slot is contended on every observation.
				h.ObserveExemplar(100, fmt.Sprintf("trace-%d-%d", w, i))
			}
		}(w)
	}
	wg.Wait()
	snap := h.snapshot()
	if snap.Count != workers*perWorker {
		t.Errorf("count = %d, want %d", snap.Count, workers*perWorker)
	}
	if len(snap.Buckets) != 1 {
		t.Fatalf("buckets = %d, want 1", len(snap.Buckets))
	}
	ex := snap.Buckets[0].Exemplar
	if !strings.HasPrefix(ex, "trace-") || strings.Count(ex, "-") != 2 {
		t.Errorf("exemplar %q is not one complete trace ID", ex)
	}
}

// TestRecorderEvictionAtRingBoundary walks the recorder through the
// exact boundary: at capacity every record is retained; one past it,
// exactly the oldest is gone and the newest is present.
func TestRecorderEvictionAtRingBoundary(t *testing.T) {
	r := NewRecorder(recorderShards) // one slot per shard: cap == shard count
	capN := r.Cap()
	if capN != recorderShards {
		t.Fatalf("cap = %d, want %d", capN, recorderShards)
	}
	add := func(i int) string {
		id := fmt.Sprintf("t%03d", i)
		r.Add(&RequestRecord{TraceID: id})
		return id
	}
	ids := make([]string, 0, capN+1)
	for i := 0; i < capN; i++ {
		ids = append(ids, add(i))
	}
	// Exactly full: nothing evicted yet.
	if got := len(r.Recent(0)); got != capN {
		t.Fatalf("at capacity Recent = %d records, want %d", got, capN)
	}
	for _, id := range ids {
		if r.Get(id) == nil {
			t.Errorf("record %s evicted before capacity was exceeded", id)
		}
	}
	// One more: the overwritten slot is the oldest record of the shard
	// the new sequence number lands in — which is the overall oldest,
	// since fills are round-robin.
	newest := add(capN)
	if got := len(r.Recent(0)); got != capN {
		t.Fatalf("past capacity Recent = %d records, want %d", got, capN)
	}
	if r.Get(newest) == nil {
		t.Errorf("newest record %s not retained", newest)
	}
	if r.Get(ids[0]) != nil {
		t.Errorf("oldest record %s still retained past the ring boundary", ids[0])
	}
	for _, id := range ids[1:] {
		if r.Get(id) == nil {
			t.Errorf("record %s wrongly evicted (only the oldest should go)", id)
		}
	}
	recent := r.Recent(0)
	if recent[0].TraceID != newest {
		t.Errorf("Recent[0] = %s, want newest %s", recent[0].TraceID, newest)
	}
}
