package obs

import (
	"math/bits"
	"sort"
	"sync"
)

// This file is the query-digest aggregator: a sharded, bounded top-K
// store of per-query-shape workload statistics, keyed by the canonical
// query fingerprint (core.QueryFingerprint — semantically identical
// queries share a key no matter how the request spelled them). Where
// the flight recorder answers "what did request X do", the digest store
// answers "what does this WORKLOAD do": which query shapes dominate
// total engine time, how their latency distributes, how often they err
// or hit the answer cache, and which Σ members they burn (the merged
// per-dependency profiles of profile.go).
//
// Memory is bounded by construction. Each shard holds at most K/shards
// entries; when a shard is full, a new fingerprint is admitted by
// SPACE-SAVING replacement — it evicts the entry with the smallest
// total time and inherits that total as its error floor (InheritedNS in
// the snapshot), the classical guarantee that a true heavy hitter
// cannot be kept out by a stream of singletons. Evictions are counted
// in obs.digest_evictions; obs.digest_observations and the
// obs.digest_entries gauge round out the aggregate metrics, which land
// in the shared registry and therefore in the Prometheus and OTLP
// exports for free.

// digestShards stripes the store's mutexes, like the flight recorder's.
const digestShards = 8

// digestHotDeps bounds the merged per-dependency profile retained per
// digest: only the hottest members survive each merge, so a digest's
// memory stays constant no matter how many distinct dependencies its
// queries touch over time.
const digestHotDeps = 8

// DigestObservation is one completed query as the serve layer reports
// it to the store.
type DigestObservation struct {
	// Fingerprint is the canonical query fingerprint — the digest key.
	Fingerprint string
	// Query is a display sample of the query (the rendered goal); the
	// first observation's sample is retained.
	Query string
	// DurationNS is the request's engine wall time.
	DurationNS int64
	// Err marks deadline-exceeded and internal-error outcomes.
	Err bool
	// CacheHit marks answers served from the answer cache.
	CacheHit bool
	// Profile, when non-nil, is the query's per-dependency cost
	// attribution; its hottest entries are merged into the digest.
	Profile *DepProfile
}

// DigestSnapshot is one digest as /debug/digests serves it.
type DigestSnapshot struct {
	Fingerprint string `json:"fingerprint"`
	Query       string `json:"query,omitempty"`
	Count       int64  `json:"count"`
	Errors      int64  `json:"errors,omitempty"`
	CacheHits   int64  `json:"cache_hits,omitempty"`
	TotalNS     int64  `json:"total_ns"`
	MeanNS      int64  `json:"mean_ns"`
	MaxNS       int64  `json:"max_ns"`
	// InheritedNS is the space-saving error floor: the evicted
	// predecessor's total at admission time. A digest's true total lies
	// in [TotalNS - InheritedNS, TotalNS].
	InheritedNS int64 `json:"inherited_ns,omitempty"`
	// LatencyUS is the digest's log₂ latency histogram in microseconds.
	LatencyUS HistogramSnapshot `json:"latency_us"`
	// HotDeps is the merged per-dependency profile of the digest's
	// profiled queries, hottest first (at most digestHotDeps entries).
	HotDeps []DepCost `json:"hot_deps,omitempty"`
}

type digestEntry struct {
	fp        string
	query     string
	count     int64
	errs      int64
	hits      int64
	totalNS   int64
	maxNS     int64
	inherited int64
	buckets   [histBuckets]int64
	bucketSum int64 // sum of microsecond observations, for the snapshot
	prof      DepProfile
}

type digestShard struct {
	mu      sync.Mutex
	entries map[string]*digestEntry
}

// DigestStore is the bounded query-digest aggregator. A nil
// *DigestStore is a valid "digests off" store: Observe is a no-op and
// allocation-free, Snapshot returns nothing.
type DigestStore struct {
	shards   [digestShards]digestShard
	perShard int

	cObserved *Counter
	cEvicted  *Counter
	gEntries  *Gauge
}

// NewDigestStore builds a store holding at most k digests in total
// (rounded up to a multiple of the shard count; minimum one per shard).
// The obs.digest_observations / obs.digest_evictions counters and the
// obs.digest_entries gauge land in reg — registered eagerly so the
// exports show them at zero before the first query. k <= 0 returns nil,
// the digests-off store.
func NewDigestStore(k int, reg *Registry) *DigestStore {
	if k <= 0 {
		return nil
	}
	per := (k + digestShards - 1) / digestShards
	d := &DigestStore{
		perShard:  per,
		cObserved: reg.Counter("obs.digest_observations"),
		cEvicted:  reg.Counter("obs.digest_evictions"),
		gEntries:  reg.Gauge("obs.digest_entries"),
	}
	for i := range d.shards {
		d.shards[i].entries = make(map[string]*digestEntry, per)
	}
	return d
}

// Cap returns the total number of digests the store retains (0 when
// nil).
func (d *DigestStore) Cap() int {
	if d == nil {
		return 0
	}
	return d.perShard * digestShards
}

// Len reports the live digest count across all shards.
func (d *DigestStore) Len() int {
	if d == nil {
		return 0
	}
	n := 0
	for i := range d.shards {
		d.shards[i].mu.Lock()
		n += len(d.shards[i].entries)
		d.shards[i].mu.Unlock()
	}
	return n
}

// shardFor maps a fingerprint to its stripe (FNV-1a, as the answer
// cache shards).
func (d *DigestStore) shardFor(key string) *digestShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &d.shards[h%digestShards]
}

// Observe folds one completed query into its digest, admitting the
// fingerprint by space-saving replacement when its shard is full. A nil
// store or an empty fingerprint is a no-op.
func (d *DigestStore) Observe(o DigestObservation) {
	if d == nil || o.Fingerprint == "" {
		return
	}
	d.cObserved.Inc()
	sh := d.shardFor(o.Fingerprint)
	sh.mu.Lock()
	e := sh.entries[o.Fingerprint]
	if e == nil {
		if len(sh.entries) < d.perShard {
			e = &digestEntry{fp: o.Fingerprint, query: o.Query}
			sh.entries[o.Fingerprint] = e
			d.gEntries.Add(1)
		} else {
			// Space-saving: evict the coldest entry; the newcomer
			// inherits its total as the error floor, so K observations
			// of a genuinely hot shape always out-total the floor and
			// the hot shape is never churned out by singletons.
			var victim *digestEntry
			for _, cand := range sh.entries {
				if victim == nil || cand.totalNS < victim.totalNS {
					victim = cand
				}
			}
			delete(sh.entries, victim.fp)
			d.cEvicted.Inc()
			e = &digestEntry{
				fp:        o.Fingerprint,
				query:     o.Query,
				totalNS:   victim.totalNS,
				inherited: victim.totalNS,
			}
			sh.entries[o.Fingerprint] = e
		}
	}
	e.count++
	e.totalNS += o.DurationNS
	if o.DurationNS > e.maxNS {
		e.maxNS = o.DurationNS
	}
	if o.Err {
		e.errs++
	}
	if o.CacheHit {
		e.hits++
	}
	us := o.DurationNS / 1e3
	e.bucketSum += us
	if us > 0 {
		e.buckets[bits.Len64(uint64(us))]++
	} else {
		e.buckets[0]++
	}
	if o.Profile != nil {
		e.prof.Merge(o.Profile)
		if hot := e.prof.Hot(digestHotDeps); len(hot) < len(e.prof.Deps) {
			e.prof.Deps = hot
		}
	}
	sh.mu.Unlock()
}

// Snapshot returns up to limit digests sorted by total engine time,
// hottest workload first (limit <= 0 means all).
func (d *DigestStore) Snapshot(limit int) []DigestSnapshot {
	if d == nil {
		return nil
	}
	var out []DigestSnapshot
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			s := DigestSnapshot{
				Fingerprint: e.fp,
				Query:       e.query,
				Count:       e.count,
				Errors:      e.errs,
				CacheHits:   e.hits,
				TotalNS:     e.totalNS,
				MaxNS:       e.maxNS,
				InheritedNS: e.inherited,
				HotDeps:     e.prof.Hot(digestHotDeps),
			}
			if e.count > 0 {
				s.MeanNS = (e.totalNS - e.inherited) / e.count
			}
			s.LatencyUS = HistogramSnapshot{Count: e.count, Sum: e.bucketSum, Max: e.maxNS / 1e3}
			for b := range e.buckets {
				n := e.buckets[b]
				if n == 0 {
					continue
				}
				le := int64(0)
				if b > 0 {
					le = int64(1)<<uint(b) - 1
				}
				s.LatencyUS.Buckets = append(s.LatencyUS.Buckets, Bucket{Le: le, Count: n})
			}
			out = append(out, s)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNS != out[j].TotalNS {
			return out[i].TotalNS > out[j].TotalNS
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
