package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestExporterSlowEndpointNeverBlocks points the exporter at a
// collector that takes 100ms per document and floods it: every Export
// call must return immediately (the serve path never pays for a slow
// sink), the bounded queue must drop the overflow, and the drops must
// be counted in obs.export_dropped.
func TestExporterSlowEndpointNeverBlocks(t *testing.T) {
	var serving atomic.Int64
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serving.Add(1)
		time.Sleep(100 * time.Millisecond)
		io.Copy(io.Discard, r.Body) //nolint:errcheck
	}))
	t.Cleanup(slow.Close)

	reg := New()
	e, err := NewExporter(ExporterConfig{
		Reg:       reg,
		Endpoint:  slow.URL,
		QueueSize: 4,
		BatchSize: 2,
		// Tight flush so the exporter goroutine is stuck inside the slow
		// POST while Exports keep arriving.
		FlushInterval:   5 * time.Millisecond,
		MetricsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 200
	start := time.Now()
	for i := 0; i < n; i++ {
		e.Export(&RequestRecord{TraceID: "t", Route: "/v1/implies"})
	}
	elapsed := time.Since(start)
	// 200 channel sends must take microseconds; give three orders of
	// magnitude of slack and it is still far under one slow POST.
	if elapsed > 50*time.Millisecond {
		t.Errorf("%d Exports took %v against a stalled sink — Export blocked", n, elapsed)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	dropped := snap.Counters["obs.export_dropped"]
	if dropped == 0 {
		t.Error("no drops counted with a 4-slot queue under a 200-record flood")
	}
	if exported := snap.Counters["obs.export_spans"]; exported+dropped != n {
		t.Errorf("spans %d + dropped %d != %d sent — records vanished", exported, dropped, n)
	}
	if serving.Load() == 0 {
		t.Error("the slow sink never saw a document")
	}
}

// TestExporterErroringEndpoint points the exporter at a collector that
// always answers 500: failures land in obs.export_errors, Export stays
// non-blocking, and Close still succeeds.
func TestExporterErroringEndpoint(t *testing.T) {
	erroring := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		http.Error(w, "collector on fire", http.StatusInternalServerError)
	}))
	t.Cleanup(erroring.Close)

	reg := New()
	e, err := NewExporter(ExporterConfig{
		Reg:             reg,
		Endpoint:        erroring.URL,
		BatchSize:       1,
		FlushInterval:   time.Hour, // flush on batch size only
		MetricsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Export(&RequestRecord{TraceID: "t", Route: "/v1/implies"})
	deadline := time.Now().Add(2 * time.Second)
	for reg.Snapshot().Counters["obs.export_errors"] == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["obs.export_errors"] == 0 {
		t.Error("500s from the sink not counted in obs.export_errors")
	}
	// The batch was written (and counted) even though the sink rejected
	// it — errors are counted, not retried, by design.
	if snap.Counters["obs.export_batches"] == 0 {
		t.Error("no batches attempted")
	}
}

// TestExporterCloseFlushesFinalSnapshotOnce pins the shutdown
// contract: Close drains the queue, emits exactly one final metrics
// document, and a second Close emits nothing more.
func TestExporterCloseFlushesFinalSnapshotOnce(t *testing.T) {
	var mu sync.Mutex
	var metricsDocs, spanDocs int
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		if strings.Contains(string(body), "resourceMetrics") {
			metricsDocs++
		}
		if strings.Contains(string(body), "resourceSpans") {
			spanDocs++
		}
		mu.Unlock()
	}))
	t.Cleanup(sink.Close)

	reg := New()
	reg.Counter("some.counter").Inc()
	e, err := NewExporter(ExporterConfig{
		Reg:      reg,
		Endpoint: sink.URL,
		// Both timers effectively off: only Close can flush.
		FlushInterval:   time.Hour,
		MetricsInterval: time.Hour,
		BatchSize:       1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Export(&RequestRecord{TraceID: "t", Route: "/v1/implies"})
	e.Export(&RequestRecord{TraceID: "u", Route: "/v1/explain"})

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil { // idempotent, and must not re-flush
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if metricsDocs != 1 {
		t.Errorf("final metrics documents = %d, want exactly 1", metricsDocs)
	}
	if spanDocs != 1 {
		t.Errorf("span documents = %d, want the queued records drained into 1", spanDocs)
	}
	if got := reg.Snapshot().Counters["obs.export_spans"]; got != 2 {
		t.Errorf("obs.export_spans = %d, want both queued records", got)
	}
}
