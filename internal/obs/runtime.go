package obs

import (
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime telemetry: the Go runtime's own vitals — goroutines, heap,
// GC cycles and pause time — sampled into ordinary gauges of a
// Registry, so /metrics exposes the process next to the engines it
// runs. SampleRuntime takes one sample; StartRuntimeSampler runs one on
// a ticker for resident processes (depserve). Batch commands don't
// need the ticker: cliutil's end-of-run report samples once at exit.

// runtimeSamples is the fixed runtime/metrics set a sample reads. The
// names are stable runtime/metrics identifiers; a sample that a Go
// release does not support reports KindBad and is skipped.
var runtimeSamples = []struct {
	name  string
	gauge string
}{
	{"/sched/goroutines:goroutines", "process.goroutines"},
	{"/memory/classes/heap/objects:bytes", "process.heap_objects_bytes"},
	{"/memory/classes/total:bytes", "process.memory_total_bytes"},
	{"/gc/cycles/total:gc-cycles", "process.gc_cycles_total"},
	// Cumulative heap allocation count: loadgen scrapes this before and
	// after a measured window to report allocs-per-request, the number
	// the engine pool exists to drive toward zero.
	{"/gc/heap/allocs:objects", "process.heap_allocs_total"},
}

// processStart anchors process.uptime_seconds: the package is
// initialized once, as early as any instrument that could observe it.
var processStart = time.Now()

// buildInfo resolves the binary's identity once: the main module
// version, the Go toolchain, and the VCS revision debug.ReadBuildInfo
// embeds at link time ("unknown" where the build carries no stamp —
// test binaries and plain `go run` do not).
var buildInfo = sync.OnceValues(func() (BuildIdentity, bool) {
	id := BuildIdentity{Version: "unknown", GoVersion: runtime.Version(), Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return id, false
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		id.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			id.Revision = s.Value
		}
	}
	return id, true
})

// BuildIdentity is the binary's provenance as telemetry reports it: in
// the process.build_info gauge labels, the /healthz body, and the OTLP
// resource attributes (service.version, vcs.revision).
type BuildIdentity struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision"`
}

// Build returns the binary's identity (module version, Go toolchain,
// VCS revision), with "unknown" for fields the build did not stamp.
func Build() BuildIdentity {
	id, _ := buildInfo()
	return id
}

// Uptime returns how long the process has been running.
func Uptime() time.Duration { return time.Since(processStart) }

// SampleRuntime reads one sample of the runtime's vitals into r's
// gauges: the runtime/metrics set above plus heap-alloc bytes and
// cumulative GC pause nanoseconds from runtime.ReadMemStats,
// GOMAXPROCS, process.uptime_seconds, and the constant
// process.build_info gauge (value 1, identity in the labels — the
// Prometheus build-info idiom, so a dashboard can join any series to
// the exact binary that produced it). A nil registry samples nothing.
func SampleRuntime(r *Registry) {
	if r == nil {
		return
	}
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, s := range runtimeSamples {
		samples[i].Name = s.name
	}
	metrics.Read(samples)
	for i, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			r.Gauge(runtimeSamples[i].gauge).Set(int64(s.Value.Uint64()))
		case metrics.KindFloat64:
			r.Gauge(runtimeSamples[i].gauge).Set(int64(s.Value.Float64()))
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("process.heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("process.gc_pause_total_ns").Set(int64(ms.PauseTotalNs))
	r.Gauge("process.gomaxprocs").Set(int64(runtime.GOMAXPROCS(0)))
	r.Gauge("process.uptime_seconds").Set(int64(Uptime().Seconds()))
	id := Build()
	r.Gauge(MetricName("process.build_info",
		"version", id.Version, "goversion", id.GoVersion, "revision", id.Revision)).Set(1)
}

// StartRuntimeSampler samples the runtime into r's gauges now and then
// every interval (default 10s when interval <= 0) until the returned
// stop function is called. Stop is idempotent and waits for the
// sampling goroutine to exit, so a caller can stop during shutdown
// without racing a final sample against registry teardown.
func StartRuntimeSampler(r *Registry, interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	SampleRuntime(r)
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				SampleRuntime(r)
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-exited
		})
	}
}
