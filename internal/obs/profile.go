package obs

import (
	"fmt"
	"sort"
	"strings"
)

// This file defines the per-dependency cost profile: the unit of
// workload attribution the chase and IND engines emit when profiling is
// requested (see chase.Options.Profile and ind.DecideProfile), the
// query-digest store aggregates (digest.go), and depcheck -profile
// renders. It lives here rather than in an engine package because both
// engines produce it and the digest store — which must not import the
// engines — merges it; a dependency is identified by its rendered text,
// nothing engine-internal.

// DepCost is one Σ member's share of a query's engine work. Which
// fields are populated depends on the engine: the chase fills all of
// them (firings, tuples produced, tuples scanned, scan wall time,
// rounds active), the Corollary 3.2 IND search fills Firings (successor
// expressions generated), Produced (fresh expressions reached) and
// Scanned (times the member was considered against a frontier node).
type DepCost struct {
	// Dep is the dependency's rendered form ("R: A -> B",
	// "R[A] <= S[B]") — the attribution key.
	Dep string `json:"dep"`
	// Kind is "fd", "ind", or "rd".
	Kind string `json:"kind"`
	// Firings counts the applications that changed the state: FD/RD
	// firings that equated values, IND firings that added a tuple, IND2
	// steps that generated a successor expression.
	Firings int64 `json:"firings"`
	// Produced counts what the firings created: tableau tuples for
	// chase INDs, fresh expressions for the IND search.
	Produced int64 `json:"produced,omitempty"`
	// Scanned counts the candidates examined on this member's behalf
	// (tuples scanned by its passes; frontier nodes it was tried on).
	Scanned int64 `json:"scanned,omitempty"`
	// ScanNS is the wall time spent scanning for this member, in
	// nanoseconds (chase only).
	ScanNS int64 `json:"scan_ns,omitempty"`
	// Rounds is the number of chase rounds in which this member fired.
	Rounds int64 `json:"rounds_active,omitempty"`
}

// hotter orders DepCosts hottest-first: scan time, then firings, then
// scanned, with the rendered dependency as the deterministic tiebreak.
func hotter(a, b DepCost) bool {
	if a.ScanNS != b.ScanNS {
		return a.ScanNS > b.ScanNS
	}
	if a.Firings != b.Firings {
		return a.Firings > b.Firings
	}
	if a.Scanned != b.Scanned {
		return a.Scanned > b.Scanned
	}
	return a.Dep < b.Dep
}

// DepProfile is a query's per-dependency cost attribution: one DepCost
// per Σ member the engine compiled (cold members included — knowing a
// dependency never fired is as actionable as knowing one burned the
// time). Engines return it sorted hottest-first.
type DepProfile struct {
	Deps []DepCost `json:"deps"`
}

// Sort orders the profile hottest-first (scan time, then firings, then
// scanned, then name). A nil profile is a no-op.
func (p *DepProfile) Sort() {
	if p == nil {
		return
	}
	sort.Slice(p.Deps, func(i, j int) bool { return hotter(p.Deps[i], p.Deps[j]) })
}

// Merge accumulates another profile into p, matching entries by
// (Kind, Dep); unmatched entries are appended. Used by the digest store
// to fold one query's attribution into a digest's running totals. The
// result is re-sorted hottest-first.
func (p *DepProfile) Merge(q *DepProfile) {
	if p == nil || q == nil {
		return
	}
	type key struct{ kind, dep string }
	idx := make(map[key]int, len(p.Deps))
	for i, d := range p.Deps {
		idx[key{d.Kind, d.Dep}] = i
	}
	for _, d := range q.Deps {
		k := key{d.Kind, d.Dep}
		if i, ok := idx[k]; ok {
			p.Deps[i].Firings += d.Firings
			p.Deps[i].Produced += d.Produced
			p.Deps[i].Scanned += d.Scanned
			p.Deps[i].ScanNS += d.ScanNS
			p.Deps[i].Rounds += d.Rounds
		} else {
			idx[k] = len(p.Deps)
			p.Deps = append(p.Deps, d)
		}
	}
	p.Sort()
}

// Hot returns the k hottest entries that did any work (fired or
// scanned), newly allocated. k <= 0 means no limit.
func (p *DepProfile) Hot(k int) []DepCost {
	if p == nil {
		return nil
	}
	var out []DepCost
	for _, d := range p.Deps {
		if d.Firings == 0 && d.Scanned == 0 {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return hotter(out[i], out[j]) })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// TotalNS sums the profile's attributed scan time.
func (p *DepProfile) TotalNS() int64 {
	if p == nil {
		return 0
	}
	var n int64
	for _, d := range p.Deps {
		n += d.ScanNS
	}
	return n
}

// Table renders the profile as an aligned text table, hottest-first —
// the depcheck -profile output.
func (p *DepProfile) Table() string {
	if p == nil || len(p.Deps) == 0 {
		return "(no dependencies profiled)\n"
	}
	sorted := append([]DepCost(nil), p.Deps...)
	sort.Slice(sorted, func(i, j int) bool { return hotter(sorted[i], sorted[j]) })
	rows := make([][6]string, 0, len(sorted)+1)
	rows = append(rows, [6]string{"KIND", "FIRINGS", "PRODUCED", "SCANNED", "SCAN", "DEPENDENCY"})
	for _, d := range sorted {
		rows = append(rows, [6]string{
			d.Kind,
			fmt.Sprintf("%d", d.Firings),
			fmt.Sprintf("%d", d.Produced),
			fmt.Sprintf("%d", d.Scanned),
			fmtNS(d.ScanNS),
			d.Dep,
		})
	}
	var width [5]int
	for _, r := range rows {
		for i := 0; i < 5; i++ {
			if len(r[i]) > width[i] {
				width[i] = len(r[i])
			}
		}
	}
	var b strings.Builder
	for _, r := range rows {
		for i := 0; i < 5; i++ {
			fmt.Fprintf(&b, "%-*s  ", width[i], r[i])
		}
		b.WriteString(r[5])
		b.WriteByte('\n')
	}
	return b.String()
}

// fmtNS renders nanoseconds compactly for the table (0 stays "0" so
// engines that do not measure time — the IND search — read cleanly).
func fmtNS(ns int64) string {
	switch {
	case ns == 0:
		return "0"
	case ns < 1e3:
		return fmt.Sprintf("%dns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.1fus", float64(ns)/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}
