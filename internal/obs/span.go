package obs

import (
	"fmt"
	"sync"
	"time"
)

// Span is one timed node of a hierarchical trace: a named interval of wall
// clock with string attributes and child spans. A core.System.Implies call
// produces one span tree covering engine dispatch, chase rounds, IND
// frontier search, unary closure and search enumeration.
//
// Spans follow the package's nil discipline: StartSpan on a nil *Registry
// or nil *Span returns nil, and every method on a nil *Span is a no-op, so
// callers thread a possibly-nil span without branching.
//
// A Span is shared between the goroutine running it and any goroutine
// snapshotting the registry (a registered span is visible to
// Registry.Snapshot while still running), so every mutable field — end
// time, attributes, children — is guarded by the mutex. Sibling spans
// may be created from concurrent goroutines (core.ImpliesAll does).
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time // zero while running
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// StartSpan opens a root span on the registry. The span is registered
// immediately (a snapshot taken before End reports it as still running).
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	sp := &Span{name: name, start: time.Now()}
	r.mu.Lock()
	r.spans = append(r.spans, sp)
	r.trimSpansLocked()
	r.mu.Unlock()
	return sp
}

// StartSpan opens a child span under s.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// End closes the span, fixing its duration. Ending twice keeps the first
// end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetAttr annotates the span with a string value.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, fmt.Sprintf("%d", value))
}

// SpanSnapshot is the exportable form of a span subtree. DurationNS is
// wall-clock nanoseconds (up to "now" when the span is still running, in
// which case Running is true).
type SpanSnapshot struct {
	Name       string          `json:"name"`
	DurationNS int64           `json:"duration_ns"`
	Running    bool            `json:"running,omitempty"`
	Attrs      []Attr          `json:"attrs,omitempty"`
	Children   []*SpanSnapshot `json:"children,omitempty"`
}

// Snapshot copies the span subtree. Returns nil for a nil span.
func (s *Span) Snapshot() *SpanSnapshot {
	if s == nil {
		return nil
	}
	out := &SpanSnapshot{Name: s.name}
	s.mu.Lock()
	if s.end.IsZero() {
		out.DurationNS = time.Since(s.start).Nanoseconds()
		out.Running = true
	} else {
		out.DurationNS = s.end.Sub(s.start).Nanoseconds()
	}
	out.Attrs = append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.Snapshot())
	}
	return out
}
