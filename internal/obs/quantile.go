package obs

// Quantile estimates the q-quantile (0 < q <= 1) of a histogram
// snapshot from its log₂ buckets: find the bucket the rank lands in
// and interpolate linearly between its bounds. The top bucket is
// capped at the observed max, so a single slow outlier cannot be
// reported slower than it was. This is the estimator every consumer of
// these histograms shares — loadgen's report quantiles, the tsdb's
// per-tick quantile series — so their numbers agree by construction.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count <= 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var cum int64
	var lo int64
	for _, b := range h.Buckets {
		prev := cum
		cum += b.Count
		if float64(cum) >= rank && b.Count > 0 {
			hi := b.Le
			if hi > h.Max {
				hi = h.Max
			}
			if hi <= lo {
				return hi
			}
			frac := (rank - float64(prev)) / float64(b.Count)
			return lo + int64(frac*float64(hi-lo))
		}
		lo = b.Le + 1
	}
	return h.Max
}
