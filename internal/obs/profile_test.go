package obs

import (
	"strings"
	"testing"
)

func TestDepProfileSortHottestFirst(t *testing.T) {
	p := &DepProfile{Deps: []DepCost{
		{Dep: "b", Kind: "fd", ScanNS: 10},
		{Dep: "a", Kind: "fd", ScanNS: 10},
		{Dep: "hot", Kind: "ind", ScanNS: 500},
		{Dep: "fires", Kind: "fd", ScanNS: 10, Firings: 3},
	}}
	p.Sort()
	want := []string{"hot", "fires", "a", "b"}
	for i, w := range want {
		if p.Deps[i].Dep != w {
			t.Fatalf("Sort order[%d] = %q, want %q (full: %+v)", i, p.Deps[i].Dep, w, p.Deps)
		}
	}
	var nilP *DepProfile
	nilP.Sort() // must not panic
}

func TestDepProfileMerge(t *testing.T) {
	p := &DepProfile{Deps: []DepCost{
		{Dep: "R: A -> B", Kind: "fd", Firings: 1, Scanned: 10, ScanNS: 100},
	}}
	q := &DepProfile{Deps: []DepCost{
		{Dep: "R: A -> B", Kind: "fd", Firings: 2, Scanned: 5, ScanNS: 50, Produced: 1, Rounds: 1},
		{Dep: "R[A] <= S[B]", Kind: "ind", Firings: 7, ScanNS: 700},
	}}
	p.Merge(q)
	if len(p.Deps) != 2 {
		t.Fatalf("merged profile has %d entries, want 2: %+v", len(p.Deps), p.Deps)
	}
	// Re-sorted hottest first: the IND's 700ns beats the FD's 150ns.
	if p.Deps[0].Dep != "R[A] <= S[B]" || p.Deps[0].Firings != 7 {
		t.Errorf("hottest entry = %+v", p.Deps[0])
	}
	fd := p.Deps[1]
	if fd.Firings != 3 || fd.Scanned != 15 || fd.ScanNS != 150 || fd.Produced != 1 || fd.Rounds != 1 {
		t.Errorf("accumulated FD entry = %+v", fd)
	}
	// Same Dep text under a different Kind stays a separate entry.
	p.Merge(&DepProfile{Deps: []DepCost{{Dep: "R: A -> B", Kind: "rd", Firings: 1}}})
	if len(p.Deps) != 3 {
		t.Errorf("kind should discriminate merge keys: %+v", p.Deps)
	}
	p.Merge(nil) // must not panic
}

func TestDepProfileHot(t *testing.T) {
	p := &DepProfile{Deps: []DepCost{
		{Dep: "cold", Kind: "fd"}, // no work: excluded
		{Dep: "warm", Kind: "fd", Scanned: 1},
		{Dep: "hot", Kind: "ind", Firings: 5, ScanNS: 100},
	}}
	hot := p.Hot(0)
	if len(hot) != 2 || hot[0].Dep != "hot" || hot[1].Dep != "warm" {
		t.Errorf("Hot(0) = %+v", hot)
	}
	if got := p.Hot(1); len(got) != 1 || got[0].Dep != "hot" {
		t.Errorf("Hot(1) = %+v", got)
	}
	// Hot allocates fresh: mutating it must not touch the profile.
	hot[0].Firings = 999
	if p.Deps[2].Firings == 999 {
		t.Errorf("Hot aliases the profile's backing array")
	}
	var nilP *DepProfile
	if nilP.Hot(3) != nil {
		t.Errorf("nil profile Hot should be nil")
	}
}

func TestDepProfileTotalNS(t *testing.T) {
	p := &DepProfile{Deps: []DepCost{{ScanNS: 40}, {ScanNS: 2}}}
	if p.TotalNS() != 42 {
		t.Errorf("TotalNS = %d, want 42", p.TotalNS())
	}
	var nilP *DepProfile
	if nilP.TotalNS() != 0 {
		t.Errorf("nil TotalNS should be 0")
	}
}

func TestDepProfileTable(t *testing.T) {
	p := &DepProfile{Deps: []DepCost{
		{Dep: "F: A -> B", Kind: "fd", Firings: 2, Scanned: 8, ScanNS: 1500},
		{Dep: "F[B] <= F[A]", Kind: "ind", Firings: 1, Produced: 1, Scanned: 3, ScanNS: 2_500_000},
	}}
	got := p.Table()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want header + 2:\n%s", len(lines), got)
	}
	if !strings.Contains(lines[0], "KIND") || !strings.Contains(lines[0], "DEPENDENCY") {
		t.Errorf("header = %q", lines[0])
	}
	// Hottest first: the IND's 2.5ms beats the FD's 1.5us.
	if !strings.Contains(lines[1], "F[B] <= F[A]") || !strings.Contains(lines[1], "2.5ms") {
		t.Errorf("hottest row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "1.5us") {
		t.Errorf("second row = %q", lines[2])
	}
	var nilP *DepProfile
	if !strings.Contains(nilP.Table(), "no dependencies") {
		t.Errorf("nil Table = %q", nilP.Table())
	}
}

func TestFmtNS(t *testing.T) {
	for _, tc := range []struct {
		ns   int64
		want string
	}{{0, "0"}, {999, "999ns"}, {1500, "1.5us"}, {2_500_000, "2.5ms"}, {3_210_000_000, "3.21s"}} {
		if got := fmtNS(tc.ns); got != tc.want {
			t.Errorf("fmtNS(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}
