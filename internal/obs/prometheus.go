package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file is the live-exposition side of the package: the Prometheus
// text-format exporter behind depserve's GET /metrics, the labeled-series
// naming convention it scrapes, and snapshot diffing for per-request
// metric deltas.
//
// Instrument names may carry Prometheus-style labels using the
// MetricName convention: "http.latency_us{path=\"/v1/implies\"}". The
// registry treats the whole string as an opaque key; WritePrometheus
// splits it back into a metric family (the dotted base, sanitized to
// [a-zA-Z0-9_:]) and a label block (emitted verbatim, which is why
// MetricName escapes label values).

// MetricName builds a labeled instrument name: base followed by a
// {k="v",...} block from alternating key/value pairs. Label values are
// escaped per the Prometheus text format (backslash, double quote,
// newline). Series of the same family should pass labels in the same
// key order so the exposition stays diffable; WritePrometheus sorts
// whole series strings, which groups a family's label sets
// deterministically.
func MetricName(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// splitSeries separates an instrument name into its family part and its
// label block ("" when unlabeled, else `k="v",...` without braces).
func splitSeries(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	labels = strings.TrimSuffix(name[i+1:], "}")
	return name[:i], labels
}

// sanitizeFamily maps a dotted instrument family to a legal Prometheus
// metric name: [a-zA-Z_:][a-zA-Z0-9_:]*, with every other rune replaced
// by '_'.
func sanitizeFamily(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP docstring per the text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// joinLabels merges an existing label block with one more label.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// promFamily is one metric family being assembled for exposition.
type promFamily struct {
	name   string // sanitized Prometheus name (counters already have _total)
	help   string // original instrument family, used as the HELP docstring
	typ    string // counter | gauge | histogram
	series []string
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as <family>_total, gauges as-is, and
// histograms as cumulative <family>_bucket{le="..."} lines (one per
// occupied log₂ bucket plus le="+Inf") with <family>_sum and
// <family>_count. Families are sorted by exposition name and series
// within a family by their label block, so successive scrapes of the
// same instruments differ only in values — the output is diffable and
// golden-testable. Spans are not exposed here; they are served by the
// JSON snapshot endpoint. A nil snapshot writes nothing.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	if s == nil {
		return nil
	}
	byName := map[string]*promFamily{}
	family := func(rawFamily, typ, suffix string) *promFamily {
		name := sanitizeFamily(rawFamily) + suffix
		f, ok := byName[name]
		if !ok {
			f = &promFamily{name: name, help: rawFamily, typ: typ}
			byName[name] = f
		}
		return f
	}
	for series, v := range s.Counters {
		raw, labels := splitSeries(series)
		// Instruments already named *_total (serve.requests_total, …)
		// must not expose as *_total_total.
		suffix := "_total"
		if strings.HasSuffix(raw, "_total") {
			suffix = ""
		}
		f := family(raw, "counter", suffix)
		f.series = append(f.series, sampleLine(f.name, labels, v))
	}
	for series, v := range s.Gauges {
		raw, labels := splitSeries(series)
		f := family(raw, "gauge", "")
		f.series = append(f.series, sampleLine(f.name, labels, v))
	}
	for series, h := range s.Histograms {
		raw, labels := splitSeries(series)
		f := family(raw, "histogram", "")
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			le := joinLabels(labels, fmt.Sprintf(`le="%d"`, b.Le))
			f.series = append(f.series, sampleLine(f.name+"_bucket", le, cum))
		}
		inf := joinLabels(labels, `le="+Inf"`)
		f.series = append(f.series, sampleLine(f.name+"_bucket", inf, h.Count))
		f.series = append(f.series, sampleLine(f.name+"_sum", labels, h.Sum))
		f.series = append(f.series, sampleLine(f.name+"_count", labels, h.Count))
	}

	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := byName[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		// Histogram series are generated in cumulative order per series
		// label set; sorting whole lines keeps a family's label sets
		// grouped while preserving le-order within numeric width. For the
		// le="..." lines the numeric order and the string order can
		// disagree across widths, so sort stably by the label block's
		// series identity first (everything except the le pair).
		sort.SliceStable(f.series, func(i, j int) bool {
			return seriesSortKey(f.series[i]) < seriesSortKey(f.series[j])
		})
		for _, line := range f.series {
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// sampleLine renders one exposition line.
func sampleLine(name, labels string, v int64) string {
	if labels == "" {
		return fmt.Sprintf("%s %d\n", name, v)
	}
	return fmt.Sprintf("%s{%s} %d\n", name, labels, v)
}

// seriesSortKey orders exposition lines: by metric name, then by the
// label block with any le="..." pair blanked (so all buckets of one
// series stay adjacent and in insertion — i.e. cumulative — order).
func seriesSortKey(line string) string {
	name := line
	labels := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		if j := strings.LastIndexByte(line, '}'); j > i {
			labels = line[i+1 : j]
		}
	} else if i := strings.IndexByte(line, ' '); i >= 0 {
		name = line[:i]
	}
	var kept []string
	for _, pair := range splitLabelPairs(labels) {
		if !strings.HasPrefix(pair, `le="`) {
			kept = append(kept, pair)
		}
	}
	return name + "\x00" + strings.Join(kept, ",")
}

// splitLabelPairs splits a label block on commas outside quoted values.
func splitLabelPairs(labels string) []string {
	if labels == "" {
		return nil
	}
	var out []string
	depth := false // inside a quoted value
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	return append(out, labels[start:])
}

// Diff returns the change from prev to s: counters and histograms are
// subtracted series-wise (series with a zero delta are dropped), gauges
// keep their current level (a gauge is a state, not an accumulation),
// and spans are omitted. With a long-lived registry shared across
// requests — depserve's setup — bracketing a request with two Snapshot
// calls and diffing yields that request's own engine work, up to
// concurrent traffic. A nil prev returns s minus its spans.
//
// Diff is total over the union of the two snapshots' series: a counter
// or histogram present only in s diffs against zero, and one present
// only in prev yields a negative delta rather than silently vanishing —
// snapshots taken from different registries (or across a restart)
// therefore diff deterministically instead of dropping series. Gauges
// present only in prev are dropped: a gauge is a current level, and a
// series s no longer has carries no current level to report.
func (s *Snapshot) Diff(prev *Snapshot) *Snapshot {
	if s == nil {
		return nil
	}
	d := &Snapshot{}
	counter := func(name string, cur, old int64) {
		if delta := cur - old; delta != 0 {
			if d.Counters == nil {
				d.Counters = make(map[string]int64)
			}
			d.Counters[name] = delta
		}
	}
	for name, v := range s.Counters {
		var old int64
		if prev != nil {
			old = prev.Counters[name]
		}
		counter(name, v, old)
	}
	if prev != nil {
		for name, old := range prev.Counters {
			if _, ok := s.Counters[name]; !ok {
				counter(name, 0, old)
			}
		}
	}
	if len(s.Gauges) > 0 {
		d.Gauges = make(map[string]int64, len(s.Gauges))
		for name, v := range s.Gauges {
			d.Gauges[name] = v
		}
	}
	hist := func(name string, cur, old HistogramSnapshot) {
		if dh, changed := diffHistogram(cur, old); changed {
			if d.Histograms == nil {
				d.Histograms = make(map[string]HistogramSnapshot)
			}
			d.Histograms[name] = dh
		}
	}
	for name, h := range s.Histograms {
		var old HistogramSnapshot
		if prev != nil {
			old = prev.Histograms[name]
		}
		hist(name, h, old)
	}
	if prev != nil {
		for name, old := range prev.Histograms {
			if _, ok := s.Histograms[name]; !ok {
				hist(name, HistogramSnapshot{}, old)
			}
		}
	}
	return d
}

// diffHistogram subtracts old from cur bucket-wise, over the union of
// the two bucket sets (a bucket present only in old yields a negative
// count, keeping the delta's bucket sum consistent with its Count).
// Max cannot be differenced, so the current max is kept; exemplars
// travel with the current buckets.
func diffHistogram(cur, old HistogramSnapshot) (HistogramSnapshot, bool) {
	if cur.Count == old.Count && cur.Sum == old.Sum {
		return HistogramSnapshot{}, false
	}
	d := HistogramSnapshot{
		Count: cur.Count - old.Count,
		Sum:   cur.Sum - old.Sum,
		Max:   cur.Max,
	}
	oldByLe := make(map[int64]int64, len(old.Buckets))
	for _, b := range old.Buckets {
		oldByLe[b.Le] = b.Count
	}
	seen := make(map[int64]bool, len(cur.Buckets))
	for _, b := range cur.Buckets {
		seen[b.Le] = true
		if n := b.Count - oldByLe[b.Le]; n != 0 {
			d.Buckets = append(d.Buckets, Bucket{Le: b.Le, Count: n, Exemplar: b.Exemplar})
		}
	}
	for _, b := range old.Buckets {
		if !seen[b.Le] {
			d.Buckets = append(d.Buckets, Bucket{Le: b.Le, Count: -b.Count})
		}
	}
	// Keep buckets in ascending le order — WritePrometheus accumulates
	// its cumulative counts in slice order.
	sort.Slice(d.Buckets, func(i, j int) bool { return d.Buckets[i].Le < d.Buckets[j].Le })
	return d, true
}
