package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// updateGolden regenerates the exposition golden file instead of
// comparing (the Lemma 7.2 trace-golden convention):
//
//	go test ./internal/obs/ -run TestWritePrometheusGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a fixed registry exercising every exposition
// shape: plain and labeled counters, gauges, a multi-bucket histogram,
// a labeled histogram, and a label value needing escaping.
func goldenRegistry() *Registry {
	reg := New()
	reg.Counter("chase.rounds").Add(42)
	reg.Counter("chase.parallel_rounds").Add(9)
	reg.Counter("chase.worker_merge_conflicts").Add(2)
	reg.Counter("pool.hits").Add(11)
	reg.Counter("pool.misses").Add(4)
	reg.Counter("pool.discards").Add(1)
	reg.Counter(MetricName("http.requests", "path", "/v1/implies", "code", "200")).Add(7)
	reg.Counter(MetricName("http.requests", "path", "/v1/implies", "code", "503")).Add(1)
	reg.Counter(MetricName("http.requests", "path", "/metrics", "code", "200")).Add(3)
	reg.Counter(MetricName("serve.answers", "engine", "ind", "verdict", "yes")).Inc()
	reg.Counter(MetricName("quote.test", "q", `a"b\c`+"\n")).Inc()
	reg.Gauge("http.in_flight").Set(2)
	reg.Gauge("chase.tuples_peak").SetMax(17)
	// The exporter and digest-store counters are registered eagerly at
	// construction (NewExporter, NewDigestStore), so a real exposition
	// carries them at zero before any traffic; the golden pins that a
	// zero-valued counter is exposed, not elided.
	reg.Counter("obs.export_dropped")
	reg.Counter("obs.digest_evictions")
	h := reg.Histogram("ind.chain_length")
	h.Observe(1)
	h.Observe(3)
	h.Observe(3)
	h.Observe(200)
	lat := reg.Histogram(MetricName("http.latency_us", "path", "/v1/implies"))
	lat.Observe(120)
	lat.Observe(90000)
	// Every remaining family instrumented anywhere under internal/ is
	// pinned here with synthetic values so TestExpositionCompleteness
	// can assert the exposition covers the full inventory. Values are
	// deterministic (index-derived) — only presence and format matter.
	for i, name := range []string{
		"batch.goal_errors", "batch.goals", "batch.requests",
		"cache.evictions", "cache.footprint_invalidations", "cache.hits", "cache.misses",
		"chase.delta_tuples", "chase.fd_applications", "chase.fixpoint_passes",
		"chase.ind_applications", "chase.rd_applications", "chase.rekeyed_tuples",
		"chase.scans_skipped", "chase.tuples_created", "chase.unions",
		"fd.attrs_derived", "fd.closure_passes", "fd.prove_calls",
		"http.slow_requests", "http.traceparent_honored", "http.traceparent_minted",
		"ind.expanded", "ind.generated", "ind.visited",
		"lint.deps_checked", "lint.violations",
		"maintain.cascade_tuples", "maintain.deletes", "maintain.fd_checks",
		"maintain.ind_checks", "maintain.inserts", "maintain.rejects",
		"obs.digest_observations", "obs.export_batches", "obs.export_errors", "obs.export_spans",
		"registry.deletes", "registry.hits", "registry.misses", "registry.puts",
		"search.checks", "search.databases_enumerated", "search.exhaustive_skipped",
		"search.hits", "search.random_trials",
		"serve.deadline_exceeded", "serve.errors_total", "serve.requests_total",
		"tsdb.samples", "tsdb.series_dropped",
		"unary.cycle_rounds", "unary.reversed_fds", "unary.reversed_inds", "unary.systems_built",
		"watchdog.alerts_fired", "watchdog.alerts_resolved",
	} {
		reg.Counter(name).Add(int64(i + 1))
	}
	for i, name := range []string{
		"ind.frontier_peak", "maintain.index_entries", "obs.digest_entries",
		"process.gc_pause_total_ns", "process.gomaxprocs", "process.heap_alloc_bytes",
		"process.uptime_seconds", "registry.schemas", "tsdb.series",
		"unary.columns", "unary.ind_closure_edges", "watchdog.alerts_active",
	} {
		reg.Gauge(name).Set(int64(i + 1))
	}
	reg.Histogram("serve.http_latency").Observe(1234)
	reg.Gauge(MetricName("process.build_info", "version", "v0.0.0", "goversion", "go1.22", "revision", "dev")).Set(1)
	reg.Counter(MetricName("serve.satisfies", "verdict", "yes")).Inc()
	return reg
}

// TestWritePrometheusGolden pins the /metrics exposition format — line
// ordering, family grouping, cumulative buckets, escaping — against a
// golden file so scrapes stay diffable across changes.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	wantLines := strings.Split(string(raw), "\n")
	gotLines := strings.Split(got, "\n")
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g string
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if w != g {
			t.Errorf("exposition line %d:\n  got:  %q\n  want: %q", i+1, g, w)
		}
	}
}

// The exposition must be byte-stable across repeated snapshots of the
// same state (map iteration order must not leak through).
func TestWritePrometheusDeterministic(t *testing.T) {
	reg := goldenRegistry()
	var first string
	for i := 0; i < 10; i++ {
		var b strings.Builder
		if err := reg.Snapshot().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = b.String()
		} else if b.String() != first {
			t.Fatalf("exposition differs between identical snapshots:\n%s\nvs\n%s", first, b.String())
		}
	}
}

// Cumulative histogram invariants: bucket counts are nondecreasing in
// le order, the +Inf bucket equals _count, and _sum matches.
func TestWritePrometheusHistogramCumulative(t *testing.T) {
	reg := New()
	h := reg.Histogram("x")
	for _, v := range []int64{1, 2, 2, 5, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`x_bucket{le="1"} 1`,
		`x_bucket{le="3"} 3`,
		`x_bucket{le="7"} 4`,
		`x_bucket{le="127"} 5`,
		`x_bucket{le="+Inf"} 5`,
		`x_sum 110`,
		`x_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMetricNameEscaping(t *testing.T) {
	got := MetricName("m", "k", "a\"b\\c\nd")
	want := `m{k="a\"b\\c\nd"}`
	if got != want {
		t.Errorf("MetricName = %q, want %q", got, want)
	}
	if MetricName("m") != "m" {
		t.Errorf("MetricName with no labels should be the base name")
	}
}

func TestSanitizeFamily(t *testing.T) {
	for in, want := range map[string]string{
		"chase.rounds":    "chase_rounds",
		"http.latency_us": "http_latency_us",
		"9lives":          "_lives",
		"a-b.c":           "a_b_c",
	} {
		if got := sanitizeFamily(in); got != want {
			t.Errorf("sanitizeFamily(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSnapshotDiff(t *testing.T) {
	reg := New()
	reg.Counter("c").Add(5)
	reg.Gauge("g").Set(3)
	reg.Histogram("h").Observe(2)
	before := reg.Snapshot()

	reg.Counter("c").Add(2)
	reg.Counter("new").Inc()
	reg.Gauge("g").Set(9)
	reg.Histogram("h").Observe(2)
	reg.Histogram("h").Observe(1000)
	after := reg.Snapshot()

	d := after.Diff(before)
	if d.Counters["c"] != 2 || d.Counters["new"] != 1 {
		t.Errorf("counter deltas = %v", d.Counters)
	}
	if _, ok := d.Counters["unchanged"]; ok {
		t.Errorf("zero-delta counters must be dropped")
	}
	if d.Gauges["g"] != 9 {
		t.Errorf("gauges keep current level, got %v", d.Gauges)
	}
	dh := d.Histograms["h"]
	if dh.Count != 2 || dh.Sum != 1002 {
		t.Errorf("histogram delta = %+v", dh)
	}
	var le3 int64
	for _, b := range dh.Buckets {
		if b.Le == 3 {
			le3 = b.Count
		}
	}
	if le3 != 1 {
		t.Errorf("bucket delta for le=3 is %d, want 1 (buckets %v)", le3, dh.Buckets)
	}
	if len(d.Spans) != 0 {
		t.Errorf("diff must not carry spans")
	}
	// Diff against nil is the snapshot itself minus spans.
	if full := after.Diff(nil); full.Counters["c"] != 7 {
		t.Errorf("Diff(nil) counters = %v", full.Counters)
	}
}

func TestSpanCap(t *testing.T) {
	reg := New()
	reg.SetSpanCap(3)
	for i := 0; i < 10; i++ {
		sp := reg.StartSpan("q")
		sp.SetInt("i", int64(i))
		sp.End()
	}
	snap := reg.Snapshot()
	if len(snap.Spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(snap.Spans))
	}
	// The survivors are the most recent three (i = 7, 8, 9).
	if got := snap.Spans[0].Attrs[0].Value; got != "7" {
		t.Errorf("oldest retained span has i=%s, want 7", got)
	}
	// Lowering the cap trims retroactively; nil registry is a no-op.
	reg.SetSpanCap(1)
	if n := len(reg.Snapshot().Spans); n != 1 {
		t.Errorf("after lowering cap: %d spans, want 1", n)
	}
	var nilReg *Registry
	nilReg.SetSpanCap(5)
}

// TestWritePrometheusEmptyHistogram pins the exposition of a histogram
// that was created but never observed: Prometheus requires the family
// to be present with a zero +Inf bucket, zero sum, and zero count —
// not silently absent — so dashboards can tell "instrument exists,
// nothing happened yet" from "instrument missing".
func TestWritePrometheusEmptyHistogram(t *testing.T) {
	reg := New()
	_ = reg.Histogram("idle.latency_us")
	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE idle_latency_us histogram",
		`idle_latency_us_bucket{le="+Inf"} 0`,
		"idle_latency_us_sum 0",
		"idle_latency_us_count 0",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("empty-histogram exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "idle_latency_us_bucket") != 1 {
		t.Errorf("empty histogram must emit exactly the +Inf bucket:\n%s", out)
	}
}

// TestWritePrometheusInfOnlyHistogram covers a snapshot whose histogram
// carries a count but no finite buckets (the shape a Diff can produce
// when every finite bucket delta cancels): the +Inf bucket must still
// equal _count so the cumulative invariant holds.
func TestWritePrometheusInfOnlyHistogram(t *testing.T) {
	s := &Snapshot{
		Histograms: map[string]HistogramSnapshot{
			"odd": {Count: 5, Sum: 40},
		},
	}
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`odd_bucket{le="+Inf"} 5`,
		"odd_sum 40",
		"odd_count 5",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("+Inf-only exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "odd_bucket") != 1 {
		t.Errorf("+Inf must be the only bucket line:\n%s", out)
	}
}

// TestSnapshotDiffDisjointSeries pins Diff over series that exist in
// only one of the two snapshots: current-only series diff against zero,
// previous-only counters and histograms surface as negative deltas
// (never silently vanish), and previous-only gauges are dropped — a
// gauge the registry no longer has carries no current level.
func TestSnapshotDiffDisjointSeries(t *testing.T) {
	prev := New()
	prev.Counter("gone.total").Add(4)
	prev.Gauge("gone.level").Set(9)
	prev.Histogram("gone.hist").Observe(3)
	prev.Histogram("gone.hist").Observe(100)

	cur := New()
	cur.Counter("fresh.total").Add(2)
	cur.Gauge("fresh.level").Set(1)
	cur.Histogram("fresh.hist").Observe(5)

	d := cur.Snapshot().Diff(prev.Snapshot())
	if d.Counters["fresh.total"] != 2 {
		t.Errorf("current-only counter diffs against zero, got %v", d.Counters)
	}
	if d.Counters["gone.total"] != -4 {
		t.Errorf("previous-only counter must go negative, got %v", d.Counters)
	}
	if d.Gauges["fresh.level"] != 1 {
		t.Errorf("current gauges keep their level, got %v", d.Gauges)
	}
	if _, ok := d.Gauges["gone.level"]; ok {
		t.Errorf("previous-only gauges must be dropped, got %v", d.Gauges)
	}
	fh := d.Histograms["fresh.hist"]
	if fh.Count != 1 || fh.Sum != 5 {
		t.Errorf("current-only histogram delta = %+v", fh)
	}
	gh, ok := d.Histograms["gone.hist"]
	if !ok {
		t.Fatalf("previous-only histogram vanished from the diff")
	}
	if gh.Count != -2 || gh.Sum != -103 {
		t.Errorf("previous-only histogram delta = %+v", gh)
	}
	for i, b := range gh.Buckets {
		if b.Count >= 0 {
			t.Errorf("previous-only bucket %d has non-negative count %+v", i, b)
		}
		if i > 0 && gh.Buckets[i-1].Le >= b.Le {
			t.Errorf("delta buckets not in ascending le order: %+v", gh.Buckets)
		}
	}
	// The negative delta must render without error and stay cumulative.
	var b strings.Builder
	if err := d.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// Diffing identical snapshots in either direction is empty.
	same := cur.Snapshot()
	if e := same.Diff(same); len(e.Counters) != 0 || len(e.Histograms) != 0 {
		t.Errorf("self-diff not empty: %+v", e)
	}
}
