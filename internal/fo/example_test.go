package fo_test

import (
	"fmt"

	"indfd/internal/deps"
	"indfd/internal/fo"
	"indfd/internal/schema"
)

// The Section 3 closing note, mechanically: Σ ∧ ¬σ for INDs lands in the
// extended Maslov class; an FD clause does not.
func ExampleInstanceSentence() {
	db := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	sigma := []deps.IND{deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("C"))}
	goal := deps.NewIND("R", deps.Attrs("B"), "S", deps.Attrs("D"))
	inst, err := fo.InstanceSentence(db, sigma, goal)
	if err != nil {
		panic(err)
	}
	fmt.Println(inst.InExtendedMaslov())
	fdSent, err := fo.FromFD(db, deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")), "f_")
	if err != nil {
		panic(err)
	}
	fmt.Println(fdSent.InExtendedMaslov())
	// Output:
	// true
	// false
}
