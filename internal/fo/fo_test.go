package fo

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

func twoRelDB() *schema.Database {
	return schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
}

func randomDB(r *rand.Rand, ds *schema.Database) *data.Database {
	db := data.NewDatabase(ds)
	for _, name := range ds.Names() {
		rel, _ := db.Relation(name)
		for i := 0; i < r.Intn(4); i++ {
			s, _ := ds.Scheme(name)
			t := make(data.Tuple, s.Width())
			for j := range t {
				t[j] = data.Int(r.Intn(3))
			}
			rel.MustInsert(t)
		}
	}
	return db
}

// Property: the first-order reading of an IND agrees with native
// satisfaction on random finite databases.
func TestFromINDAgreesWithSatisfies(t *testing.T) {
	ds := twoRelDB()
	cands := []deps.IND{
		deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("C")),
		deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("C", "D")),
		deps.NewIND("S", deps.Attrs("D"), "R", deps.Attrs("A")),
		deps.NewIND("R", deps.Attrs("B"), "R", deps.Attrs("A")),
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomDB(r, ds)
		for _, d := range cands {
			sent, err := FromIND(ds, d, "t_")
			if err != nil {
				return false
			}
			got, err := Eval(db, sent)
			if err != nil {
				return false
			}
			want, err := db.Satisfies(d)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the first-order reading of an FD agrees with native
// satisfaction.
func TestFromFDAgreesWithSatisfies(t *testing.T) {
	ds := twoRelDB()
	cands := []deps.FD{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A")),
		deps.NewFD("S", deps.Attrs("C"), deps.Attrs("D")),
		deps.NewFD("R", deps.Attrs("A", "B"), deps.Attrs("A")), // trivial
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomDB(r, ds)
		for _, d := range cands {
			sent, err := FromFD(ds, d, "t_")
			if err != nil {
				return false
			}
			got, err := Eval(db, sent)
			if err != nil {
				return false
			}
			want, err := db.Satisfies(d)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// The Section 3 closing observation: Σ ∧ ¬σ for INDs lies in the extended
// Maslov class; adding a single FD clause leaves it.
func TestExtendedMaslovMembership(t *testing.T) {
	ds := twoRelDB()
	sigma := []deps.IND{
		deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("C", "D")),
		deps.NewIND("S", deps.Attrs("C"), "R", deps.Attrs("B")),
	}
	goal := deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B"))
	inst, err := InstanceSentence(ds, sigma, goal)
	if err != nil {
		t.Fatalf("InstanceSentence: %v", err)
	}
	if !inst.InExtendedMaslov() {
		t.Errorf("IND instance should be in the extended Maslov class:\n%v", inst)
	}
	// Every clause is binary, the prefix is ∀*∃*.
	for _, c := range inst.Matrix {
		if len(c) > 2 {
			t.Errorf("clause too wide: %v", c)
		}
	}
	// Adding an FD's width-3 clause leaves the class.
	fdSent, err := FromFD(ds, deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")), "f_")
	if err != nil {
		t.Fatal(err)
	}
	if fdSent.InExtendedMaslov() {
		t.Errorf("FD sentence should NOT be in the extended Maslov class:\n%v", fdSent)
	}
	mixed := Conjoin(inst, fdSent)
	if mixed.InExtendedMaslov() {
		t.Errorf("FD+IND instance should NOT be in the extended Maslov class")
	}
}

func TestInExtendedMaslovPrefixShapes(t *testing.T) {
	bin := []Clause{{{Rel: "R", Args: []Term{{Name: "x"}}}}}
	cases := []struct {
		prefix []Block
		want   bool
	}{
		{nil, true},
		{[]Block{{Universal: true, Vars: []string{"x"}}}, true},
		{[]Block{{Universal: false, Vars: []string{"x"}}}, true},
		{[]Block{{Universal: true, Vars: []string{"x"}}, {Universal: false, Vars: []string{"y"}}}, true},
		{[]Block{{Universal: false, Vars: []string{"x"}}, {Universal: true, Vars: []string{"y"}}}, true},
		{[]Block{{Universal: true, Vars: []string{"x"}}, {Universal: false, Vars: []string{"y"}}, {Universal: true, Vars: []string{"z"}}}, true},
		{[]Block{{Universal: false, Vars: []string{"x"}}, {Universal: true, Vars: []string{"y"}}, {Universal: false, Vars: []string{"z"}}}, false},
		{[]Block{{Universal: true, Vars: []string{"a"}}, {Universal: false, Vars: []string{"b"}}, {Universal: true, Vars: []string{"c"}}, {Universal: false, Vars: []string{"d"}}}, false},
		// Empty blocks collapse.
		{[]Block{{Universal: true}, {Universal: false, Vars: []string{"x"}}}, true},
	}
	for i, c := range cases {
		s := Sentence{Prefix: c.prefix, Matrix: bin}
		if got := s.InExtendedMaslov(); got != c.want {
			t.Errorf("case %d: InExtendedMaslov = %v, want %v", i, got, c.want)
		}
	}
	wide := Sentence{Matrix: []Clause{{
		{Rel: "R", Args: []Term{{Name: "x"}}},
		{Rel: "R", Args: []Term{{Name: "y"}}},
		{Rel: "R", Args: []Term{{Name: "z"}}},
	}}}
	if wide.InExtendedMaslov() {
		t.Errorf("width-3 clause should fail")
	}
}

func TestRendering(t *testing.T) {
	ds := twoRelDB()
	sent, err := FromIND(ds, deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("D")), "p_")
	if err != nil {
		t.Fatal(err)
	}
	out := sent.String()
	for _, want := range []string{"∀", "∃", "¬R(", "S("} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q: %s", want, out)
		}
	}
	neg, err := NegatedIND(ds, deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("D")), "n_")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(neg.String(), "#n_c0") {
		t.Errorf("Skolem constant missing: %s", neg)
	}
	if !neg.InExtendedMaslov() {
		t.Errorf("negated IND should be in the class: %s", neg)
	}
}

func TestErrors(t *testing.T) {
	ds := twoRelDB()
	if _, err := FromIND(ds, deps.NewIND("NOPE", deps.Attrs("A"), "S", deps.Attrs("C")), ""); err == nil {
		t.Errorf("unknown relation should error")
	}
	if _, err := FromFD(ds, deps.NewFD("NOPE", deps.Attrs("A"), deps.Attrs("B")), ""); err == nil {
		t.Errorf("unknown relation should error")
	}
	if _, err := NegatedIND(ds, deps.NewIND("R", deps.Attrs("A"), "NOPE", deps.Attrs("C")), ""); err == nil {
		t.Errorf("unknown relation should error")
	}
	// Unbound terms in Eval error.
	db := data.NewDatabase(ds)
	db.MustInsert("R", data.Tuple{"1", "2"})
	bad := Sentence{Matrix: []Clause{{{Rel: "R", Args: []Term{{Name: "x"}, {Name: "y"}}}}}}
	if _, err := Eval(db, bad); err == nil {
		t.Errorf("unbound variable should error")
	}
}
