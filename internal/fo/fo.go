// Package fo gives dependencies their first-order reading and reproduces
// the closing observation of Section 3: for a finite set Σ of INDs and a
// single IND σ, the sentence Σ ∧ ¬σ is (equivalent to a sentence) in the
// extended Maslov class — prenex form with quantifier structure ∀∃∀ whose
// quantifier-free part is a conjunction of binary disjunctions — and
// sentences in that class are satisfiable iff finitely satisfiable, which
// re-proves that finite and unrestricted implication coincide for INDs.
// FDs translate to clauses of width three, falling outside the class;
// and indeed finite and unrestricted implication differ for FDs and INDs
// together (Theorem 4.4).
package fo

import (
	"fmt"
	"strings"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

// Term is a variable or a (Skolem) constant.
type Term struct {
	Name     string
	Constant bool
}

// String renders the term (constants are marked with a leading #).
func (t Term) String() string {
	if t.Constant {
		return "#" + t.Name
	}
	return t.Name
}

// Literal is an atom R(t1,...,tn), an equality t1 = t2 (Rel empty, two
// Args), or a negation of either.
type Literal struct {
	Negated bool
	Rel     string
	Args    []Term
}

// IsEquality reports whether the literal is an equality atom.
func (l Literal) IsEquality() bool { return l.Rel == "" }

// String renders the literal.
func (l Literal) String() string {
	var body string
	if l.IsEquality() {
		body = fmt.Sprintf("%v = %v", l.Args[0], l.Args[1])
	} else {
		parts := make([]string, len(l.Args))
		for i, a := range l.Args {
			parts[i] = a.String()
		}
		body = l.Rel + "(" + strings.Join(parts, ",") + ")"
	}
	if l.Negated {
		return "¬" + body
	}
	return body
}

// Clause is a disjunction of literals.
type Clause []Literal

// String renders the clause.
func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// Block is one quantifier block of a prenex prefix.
type Block struct {
	Universal bool
	Vars      []string
}

// Sentence is a prenex sentence with a CNF matrix.
type Sentence struct {
	Prefix []Block
	Matrix []Clause
}

// String renders the sentence.
func (s Sentence) String() string {
	var b strings.Builder
	for _, blk := range s.Prefix {
		if len(blk.Vars) == 0 {
			continue
		}
		if blk.Universal {
			b.WriteString("∀")
		} else {
			b.WriteString("∃")
		}
		b.WriteString(strings.Join(blk.Vars, ","))
		b.WriteString(" ")
	}
	parts := make([]string, len(s.Matrix))
	for i, c := range s.Matrix {
		parts[i] = c.String()
	}
	b.WriteString(strings.Join(parts, " ∧ "))
	return b.String()
}

// InExtendedMaslov reports whether the sentence is syntactically in the
// extended Maslov class: the prefix collapses to at most three blocks
// ∀* ∃* ∀* and every clause of the matrix has at most two literals.
func (s Sentence) InExtendedMaslov() bool {
	// Collapse adjacent blocks of the same kind and drop empty ones.
	var kinds []bool
	for _, blk := range s.Prefix {
		if len(blk.Vars) == 0 {
			continue
		}
		if len(kinds) == 0 || kinds[len(kinds)-1] != blk.Universal {
			kinds = append(kinds, blk.Universal)
		}
	}
	switch len(kinds) {
	case 0: // ground
	case 1: // ∀* or ∃* (∃* embeds as the middle block)
	case 2:
		if !kinds[0] && !kinds[1] {
			return false // cannot happen after collapsing
		}
		// ∀∃ or ∃∀ both embed into ∀∃∀.
	case 3:
		if !(kinds[0] && !kinds[1] && kinds[2]) {
			return false
		}
	default:
		return false
	}
	for _, c := range s.Matrix {
		if len(c) > 2 {
			return false
		}
	}
	return true
}

// FromIND renders the IND R[X] ⊆ S[Y] as the sentence
// ∀x⃗ ∃z⃗ (¬R(x⃗) ∨ S(...)), where the S atom reuses the x variables at the
// Y positions and fresh z variables elsewhere — a single binary clause.
// The name prefix keeps variables of different conjuncts apart.
func FromIND(db *schema.Database, d deps.IND, prefix string) (Sentence, error) {
	ls, ok := db.Scheme(d.LRel)
	if !ok {
		return Sentence{}, fmt.Errorf("fo: unknown relation %s", d.LRel)
	}
	rs, ok := db.Scheme(d.RRel)
	if !ok {
		return Sentence{}, fmt.Errorf("fo: unknown relation %s", d.RRel)
	}
	// Universal variables: one per attribute of the left relation.
	uvars := make([]string, ls.Width())
	largs := make([]Term, ls.Width())
	for i := range uvars {
		uvars[i] = fmt.Sprintf("%sx%d", prefix, i)
		largs[i] = Term{Name: uvars[i]}
	}
	// Right atom: x variables at the target positions, fresh z elsewhere.
	rargs := make([]Term, rs.Width())
	var evars []string
	for u := range d.X {
		li, _ := ls.Pos(d.X[u])
		ri, _ := rs.Pos(d.Y[u])
		rargs[ri] = largs[li]
	}
	for i := range rargs {
		if rargs[i].Name == "" {
			v := fmt.Sprintf("%sz%d", prefix, i)
			evars = append(evars, v)
			rargs[i] = Term{Name: v}
		}
	}
	return Sentence{
		Prefix: []Block{{Universal: true, Vars: uvars}, {Universal: false, Vars: evars}},
		Matrix: []Clause{{
			{Negated: true, Rel: d.LRel, Args: largs},
			{Rel: d.RRel, Args: rargs},
		}},
	}, nil
}

// FromFD renders the FD R: X -> Y as
// ∀x⃗ ∀y⃗' (¬R(x⃗) ∨ ¬R(y⃗) ∨ x_b = y_b) for each b in Y, where the two R
// atoms share variables at the X positions. Each clause has width three —
// outside the extended Maslov class, as the theory requires.
func FromFD(db *schema.Database, f deps.FD, prefix string) (Sentence, error) {
	s, ok := db.Scheme(f.Rel)
	if !ok {
		return Sentence{}, fmt.Errorf("fo: unknown relation %s", f.Rel)
	}
	inX := map[int]bool{}
	for _, a := range f.X {
		p, _ := s.Pos(a)
		inX[p] = true
	}
	var vars []string
	args1 := make([]Term, s.Width())
	args2 := make([]Term, s.Width())
	for i := 0; i < s.Width(); i++ {
		v1 := fmt.Sprintf("%sx%d", prefix, i)
		args1[i] = Term{Name: v1}
		vars = append(vars, v1)
		if inX[i] {
			args2[i] = args1[i]
		} else {
			v2 := fmt.Sprintf("%sy%d", prefix, i)
			args2[i] = Term{Name: v2}
			vars = append(vars, v2)
		}
	}
	var matrix []Clause
	for _, b := range f.Y {
		p, _ := s.Pos(b)
		if inX[p] {
			continue // trivially equal
		}
		matrix = append(matrix, Clause{
			{Negated: true, Rel: f.Rel, Args: args1},
			{Negated: true, Rel: f.Rel, Args: args2},
			{Args: []Term{args1[p], args2[p]}},
		})
	}
	return Sentence{
		Prefix: []Block{{Universal: true, Vars: vars}},
		Matrix: matrix,
	}, nil
}

// NegatedIND renders ¬(R[X] ⊆ S[Y]) with the outer existential
// Skolemized to constants: R(c⃗) ∧ ∀z⃗ ¬S(...), two clauses of width one.
func NegatedIND(db *schema.Database, d deps.IND, prefix string) (Sentence, error) {
	ls, ok := db.Scheme(d.LRel)
	if !ok {
		return Sentence{}, fmt.Errorf("fo: unknown relation %s", d.LRel)
	}
	rs, ok := db.Scheme(d.RRel)
	if !ok {
		return Sentence{}, fmt.Errorf("fo: unknown relation %s", d.RRel)
	}
	largs := make([]Term, ls.Width())
	for i := range largs {
		largs[i] = Term{Name: fmt.Sprintf("%sc%d", prefix, i), Constant: true}
	}
	rargs := make([]Term, rs.Width())
	var uvars []string
	for u := range d.X {
		li, _ := ls.Pos(d.X[u])
		ri, _ := rs.Pos(d.Y[u])
		rargs[ri] = largs[li]
	}
	for i := range rargs {
		if rargs[i].Name == "" {
			v := fmt.Sprintf("%sw%d", prefix, i)
			uvars = append(uvars, v)
			rargs[i] = Term{Name: v}
		}
	}
	return Sentence{
		Prefix: []Block{{Universal: true, Vars: uvars}},
		Matrix: []Clause{
			{{Rel: d.LRel, Args: largs}},
			{{Negated: true, Rel: d.RRel, Args: rargs}},
		},
	}, nil
}

// Conjoin merges sentences (with variables already renamed apart by their
// prefixes) into one prenex sentence: all universal blocks first, then
// all existential blocks. This preserves equivalence because each
// conjunct's existential variables depend only on that conjunct's own
// universals.
func Conjoin(ss ...Sentence) Sentence {
	var uni, exi []string
	var matrix []Clause
	for _, s := range ss {
		for _, blk := range s.Prefix {
			if blk.Universal {
				uni = append(uni, blk.Vars...)
			} else {
				exi = append(exi, blk.Vars...)
			}
		}
		matrix = append(matrix, s.Matrix...)
	}
	return Sentence{
		Prefix: []Block{{Universal: true, Vars: uni}, {Universal: false, Vars: exi}},
		Matrix: matrix,
	}
}

// InstanceSentence builds Σ ∧ ¬σ for an IND implication instance, the
// sentence the paper places in the extended Maslov class.
func InstanceSentence(db *schema.Database, sigma []deps.IND, goal deps.IND) (Sentence, error) {
	var parts []Sentence
	for i, d := range sigma {
		s, err := FromIND(db, d, fmt.Sprintf("s%d_", i))
		if err != nil {
			return Sentence{}, err
		}
		parts = append(parts, s)
	}
	neg, err := NegatedIND(db, goal, "g_")
	if err != nil {
		return Sentence{}, err
	}
	parts = append(parts, neg)
	return Conjoin(parts...), nil
}

// Eval model-checks the sentence against a finite database: quantifiers
// range over the database's active domain plus any constants of the
// sentence. Intended for small databases (the assignment space is
// |domain|^#vars); it exists to validate the translations against the
// native satisfaction checkers.
func Eval(db *data.Database, s Sentence) (bool, error) {
	// Active domain.
	domainSet := map[data.Value]bool{}
	for _, name := range db.Scheme().Names() {
		r, _ := db.Relation(name)
		for _, t := range r.Tuples() {
			for _, v := range t {
				domainSet[v] = true
			}
		}
	}
	// Constants evaluate to themselves and join the domain.
	assign := map[string]data.Value{}
	collect := func(t Term) {
		if t.Constant {
			v := data.Value("#" + t.Name)
			domainSet[v] = true
			assign[t.Name] = v
		}
	}
	for _, c := range s.Matrix {
		for _, l := range c {
			for _, t := range l.Args {
				collect(t)
			}
		}
	}
	var domain []data.Value
	for v := range domainSet {
		domain = append(domain, v)
	}

	evalMatrix := func() (bool, error) {
		for _, c := range s.Matrix {
			sat := false
			for _, l := range c {
				ok, err := evalLiteral(db, l, assign)
				if err != nil {
					return false, err
				}
				if ok {
					sat = true
					break
				}
			}
			if !sat {
				return false, nil
			}
		}
		return true, nil
	}

	// Flatten the prefix into a variable list with quantifier kinds.
	type qvar struct {
		name string
		univ bool
	}
	var qs []qvar
	for _, blk := range s.Prefix {
		for _, v := range blk.Vars {
			qs = append(qs, qvar{v, blk.Universal})
		}
	}
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == len(qs) {
			return evalMatrix()
		}
		q := qs[i]
		for _, v := range domain {
			assign[q.name] = v
			ok, err := rec(i + 1)
			if err != nil {
				return false, err
			}
			if q.univ && !ok {
				return false, nil
			}
			if !q.univ && ok {
				return true, nil
			}
		}
		delete(assign, q.name)
		// Empty domain or exhausted: ∀ vacuously true, ∃ false.
		return q.univ, nil
	}
	return rec(0)
}

func evalLiteral(db *data.Database, l Literal, assign map[string]data.Value) (bool, error) {
	val := func(t Term) (data.Value, error) {
		v, ok := assign[t.Name]
		if !ok {
			return "", fmt.Errorf("fo: unbound term %v", t)
		}
		return v, nil
	}
	var truth bool
	if l.IsEquality() {
		a, err := val(l.Args[0])
		if err != nil {
			return false, err
		}
		b, err := val(l.Args[1])
		if err != nil {
			return false, err
		}
		truth = a == b
	} else {
		r, ok := db.Relation(l.Rel)
		if !ok {
			return false, fmt.Errorf("fo: unknown relation %s", l.Rel)
		}
		t := make(data.Tuple, len(l.Args))
		for i, a := range l.Args {
			v, err := val(a)
			if err != nil {
				return false, err
			}
			t[i] = v
		}
		truth = r.Contains(t)
	}
	if l.Negated {
		truth = !truth
	}
	return truth, nil
}
