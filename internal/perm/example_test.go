package perm_test

import (
	"fmt"

	"indfd/internal/perm"
)

// Landau's function g(m): the maximal order of a permutation of m
// elements, the source of the Section 3 superpolynomial lower bound.
func ExampleLandau() {
	for _, m := range []int{5, 10, 20} {
		fmt.Printf("g(%d) = %v\n", m, perm.Landau(m))
	}
	// Output:
	// g(5) = 6
	// g(10) = 30
	// g(20) = 420
}
