package perm

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"indfd/internal/deps"
	"indfd/internal/ind"
	"indfd/internal/schema"
)

func TestIdentityAndValid(t *testing.T) {
	p := Identity(4)
	if !p.Valid() || !p.IsIdentity() {
		t.Errorf("Identity(4) = %v", p)
	}
	if (Perm{0, 0, 1}).Valid() {
		t.Errorf("repeated image should be invalid")
	}
	if (Perm{0, 3}).Valid() {
		t.Errorf("out-of-range image should be invalid")
	}
}

func TestComposeInverse(t *testing.T) {
	p := Perm{1, 2, 0} // 3-cycle
	q := p.Inverse()
	pq := p.MustCompose(q)
	if !pq.IsIdentity() {
		t.Errorf("p∘p⁻¹ = %v", pq)
	}
	if _, err := p.Compose(Perm{0}); err == nil {
		t.Errorf("size mismatch should error")
	}
}

func TestCyclesAndOrder(t *testing.T) {
	// (0 1 2)(3 4): order lcm(3,2) = 6.
	p := Perm{1, 2, 0, 4, 3}
	cycles := p.Cycles()
	if len(cycles) != 2 || len(cycles[0]) != 3 || len(cycles[1]) != 2 {
		t.Errorf("Cycles = %v", cycles)
	}
	if p.Order().Cmp(big.NewInt(6)) != 0 {
		t.Errorf("Order = %v, want 6", p.Order())
	}
	if !Identity(3).Order().IsInt64() || Identity(3).Order().Int64() != 1 {
		t.Errorf("identity order = %v", Identity(3).Order())
	}
}

func TestPow(t *testing.T) {
	p := Perm{1, 2, 0}
	if !p.Pow(big.NewInt(3)).IsIdentity() {
		t.Errorf("p^3 should be identity for a 3-cycle")
	}
	if !p.Pow(big.NewInt(0)).IsIdentity() {
		t.Errorf("p^0 should be identity")
	}
	p2 := p.Pow(big.NewInt(2))
	want := p.MustCompose(p)
	for i := range p2 {
		if p2[i] != want[i] {
			t.Fatalf("p^2 = %v, want %v", p2, want)
		}
	}
}

// Known values of Landau's function g(m).
func TestLandauKnownValues(t *testing.T) {
	want := map[int]int64{
		1: 1, 2: 2, 3: 3, 4: 4, 5: 6, 6: 6, 7: 12, 8: 15, 9: 20, 10: 30,
		11: 30, 12: 60, 13: 60, 14: 84, 15: 105, 16: 140, 17: 210, 18: 210,
		19: 420, 20: 420, 25: 1260, 30: 4620,
	}
	for m, g := range want {
		if got := Landau(m); got.Cmp(big.NewInt(g)) != 0 {
			t.Errorf("Landau(%d) = %v, want %d", m, got, g)
		}
	}
}

func TestLandauPermutationAchievesLandau(t *testing.T) {
	for m := 1; m <= 40; m++ {
		p := LandauPermutation(m)
		if len(p) != m || !p.Valid() {
			t.Fatalf("LandauPermutation(%d) = %v invalid", m, p)
		}
		if p.Order().Cmp(Landau(m)) != 0 {
			t.Errorf("LandauPermutation(%d) has order %v, want g(m)=%v", m, p.Order(), Landau(m))
		}
	}
}

// Property: Order(p) is the least k with p^k = identity (checked against
// brute force for small orders).
func TestOrderIsMinimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := Perm(r.Perm(6))
		ord := p.Order()
		if !ord.IsInt64() {
			return false
		}
		k := ord.Int64()
		// p^k must be identity, and no smaller positive power may be.
		if !p.Pow(big.NewInt(k)).IsIdentity() {
			return false
		}
		cur := Identity(6)
		for i := int64(1); i < k; i++ {
			cur = cur.MustCompose(p)
			if cur.IsIdentity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestINDAndTranspositions(t *testing.T) {
	s := Scheme(3)
	g := Perm{1, 2, 0}
	d := IND(s, g)
	if d.String() != "R[A1,A2,A3] <= R[A2,A3,A1]" {
		t.Errorf("IND = %v", d)
	}
	ts := Transpositions(4)
	if len(ts) != 3 {
		t.Fatalf("Transpositions(4) = %v", ts)
	}
	for i, p := range ts {
		if !p.Valid() || p[0] != i+1 || p[i+1] != 0 {
			t.Errorf("transposition %d = %v", i, p)
		}
	}
}

// The Section 3 claim, in the small: σ(γ) ⊨ σ(γ^{f(m)-1}) and the
// breadth-first decision procedure needs exactly f(m)-1 steps of chain.
func TestPermutationFamilyChainLength(t *testing.T) {
	for _, m := range []int{3, 5, 7} {
		s := Scheme(m)
		db := schema.MustDatabase(s)
		gamma := LandauPermutation(m)
		fm := Landau(m)
		delta := gamma.Pow(new(big.Int).Sub(fm, big.NewInt(1)))
		sigma := []deps.IND{IND(s, gamma)}
		goal := IND(s, delta)
		res, err := ind.Decide(db, sigma, goal)
		if err != nil || !res.Implied {
			t.Fatalf("m=%d: σ(γ) should imply σ(γ^{f(m)-1}): %v %v", m, res.Implied, err)
		}
		wantChain := int(fm.Int64()) // f(m)-1 applications = chain of f(m) expressions
		if res.Stats.ChainLength != wantChain {
			t.Errorf("m=%d: chain length %d, want %d", m, res.Stats.ChainLength, wantChain)
		}
	}
}

// The transposition INDs imply every permutation IND (Section 3).
func TestTranspositionsGenerateAllPermutationINDs(t *testing.T) {
	m := 4
	s := Scheme(m)
	db := schema.MustDatabase(s)
	var sigma []deps.IND
	for _, p := range Transpositions(m) {
		sigma = append(sigma, IND(s, p))
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Perm(r.Perm(m))
		ok, err := ind.Implies(db, sigma, IND(s, g))
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLandauParts(t *testing.T) {
	// g(10) = 30 = 2·3·5.
	parts := LandauParts(10)
	prod := 1
	sum := 0
	for _, p := range parts {
		prod *= p
		sum += p
	}
	if prod != 30 || sum > 10 {
		t.Errorf("LandauParts(10) = %v (product %d, sum %d)", parts, prod, sum)
	}
	if LandauParts(0) != nil {
		t.Errorf("LandauParts(0) should be nil")
	}
}

// Landau's theorem: ln g(m) / sqrt(m ln m) -> 1. The convergence is slow;
// check the ratio is sane, increasing over decades, and that g itself is
// nondecreasing.
func TestLandauAsymptotics(t *testing.T) {
	prev := 0.0
	for _, m := range []int{50, 200, 800} {
		r := LandauLogRatio(m)
		if r <= 0.5 || r >= 1.2 {
			t.Errorf("LandauLogRatio(%d) = %f out of range", m, r)
		}
		if r < prev {
			t.Errorf("ratio decreased at m=%d: %f < %f", m, r, prev)
		}
		prev = r
	}
	for m := 2; m < 60; m++ {
		if Landau(m).Cmp(Landau(m-1)) < 0 {
			t.Errorf("Landau not monotone at %d", m)
		}
	}
}
