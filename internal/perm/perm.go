// Package perm implements the permutation machinery behind the Section 3
// lower bound: the naive IND decision procedure needs a superpolynomial
// number of steps on the family σ(γ) ⊨ σ(γ^{f(m)-1}), where γ is a
// permutation of maximal order f(m) and Landau's theorem gives
// log f(m) ~ √(m log m).
package perm

import (
	"fmt"
	"math"
	"math/big"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

// Perm is a permutation of {0, ..., n-1}: p[i] is the image of i.
type Perm []int

// Identity returns the identity permutation on n elements.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Valid reports whether p is a permutation.
func (p Perm) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Compose returns the permutation p∘q: (p∘q)(i) = p(q(i)).
func (p Perm) Compose(q Perm) (Perm, error) {
	if len(p) != len(q) {
		return nil, fmt.Errorf("perm: composing permutations of different sizes %d, %d", len(p), len(q))
	}
	out := make(Perm, len(p))
	for i := range out {
		out[i] = p[q[i]]
	}
	return out, nil
}

// MustCompose is Compose that panics on error.
func (p Perm) MustCompose(q Perm) Perm {
	out, err := p.Compose(q)
	if err != nil {
		panic(err)
	}
	return out
}

// Inverse returns the inverse permutation.
func (p Perm) Inverse() Perm {
	out := make(Perm, len(p))
	for i, v := range p {
		out[v] = i
	}
	return out
}

// IsIdentity reports whether p is the identity.
func (p Perm) IsIdentity() bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}

// Cycles returns the cycle decomposition of p (cycles of length ≥ 1, each
// starting at its smallest element, in increasing order of that element).
func (p Perm) Cycles() [][]int {
	seen := make([]bool, len(p))
	var out [][]int
	for i := range p {
		if seen[i] {
			continue
		}
		var cyc []int
		for j := i; !seen[j]; j = p[j] {
			seen[j] = true
			cyc = append(cyc, j)
		}
		out = append(out, cyc)
	}
	return out
}

// Order returns the order of p: the least k ≥ 1 with p^k the identity,
// computed as the LCM of its cycle lengths. The result is exact (big.Int)
// since Landau orders grow like e^√(m log m).
func (p Perm) Order() *big.Int {
	out := big.NewInt(1)
	for _, c := range p.Cycles() {
		l := big.NewInt(int64(len(c)))
		g := new(big.Int).GCD(nil, nil, out, l)
		out.Div(out.Mul(out, l), g)
	}
	return out
}

// Pow returns p^k for k ≥ 0, by binary exponentiation.
func (p Perm) Pow(k *big.Int) Perm {
	result := Identity(len(p))
	base := append(Perm(nil), p...)
	e := new(big.Int).Set(k)
	two := big.NewInt(2)
	mod := new(big.Int)
	for e.Sign() > 0 {
		if mod.Mod(e, two).Sign() != 0 {
			result = result.MustCompose(base)
		}
		base = base.MustCompose(base)
		e.Rsh(e, 1)
	}
	return result
}

// Landau returns g(m), Landau's function: the maximal order of a
// permutation of m elements, i.e. the maximum LCM of any partition of m.
// It is computed exactly by dynamic programming over prime powers.
func Landau(m int) *big.Int {
	if m <= 0 {
		return big.NewInt(1)
	}
	best, _ := landauDP(m)
	return best[m]
}

// LandauPermutation returns a permutation of m elements whose order is
// g(m): disjoint cycles whose lengths are the prime powers of an optimal
// partition (unused elements become fixed points).
func LandauPermutation(m int) Perm {
	_, parts := landauDP(m)
	p := Identity(m)
	at := 0
	for _, l := range parts[m] {
		// cycle at..at+l-1
		for i := 0; i < l; i++ {
			p[at+i] = at + (i+1)%l
		}
		at += l
	}
	return p
}

// landauDP computes, for every budget b ≤ m, the maximal LCM best[b]
// achievable by a sum of distinct prime powers ≤ b, together with one
// optimal multiset of prime-power cycle lengths parts[b]. Since the
// optimal partition uses powers of distinct primes, LCM = product.
func landauDP(m int) (best []*big.Int, parts [][]int) {
	primes := primesUpTo(m)
	best = make([]*big.Int, m+1)
	parts = make([][]int, m+1)
	for b := 0; b <= m; b++ {
		best[b] = big.NewInt(1)
	}
	for _, p := range primes {
		// Iterate budgets downward so each prime is used at most once.
		for b := m; b >= p; b-- {
			for pk := p; pk <= b; pk *= p {
				cand := new(big.Int).Mul(best[b-pk], big.NewInt(int64(pk)))
				if cand.Cmp(best[b]) > 0 {
					best[b] = cand
					parts[b] = append(append([]int(nil), parts[b-pk]...), pk)
				}
				if pk > m/p {
					break // next pk would overflow the budget anyway
				}
			}
		}
	}
	// best is nondecreasing in the budget; propagate so best[b] is the max
	// over partitions of any m' ≤ b.
	for b := 1; b <= m; b++ {
		if best[b].Cmp(best[b-1]) < 0 {
			best[b] = best[b-1]
			parts[b] = parts[b-1]
		}
	}
	return best, parts
}

func primesUpTo(n int) []int {
	if n < 2 {
		return nil
	}
	sieve := make([]bool, n+1)
	var out []int
	for i := 2; i <= n; i++ {
		if sieve[i] {
			continue
		}
		out = append(out, i)
		for j := i * i; j <= n; j += i {
			sieve[j] = true
		}
	}
	return out
}

// Scheme returns the single relation scheme R[A1,...,Am] used by the
// Section 3 permutation family.
func Scheme(m int) *schema.Scheme {
	attrs := make([]schema.Attribute, m)
	for i := range attrs {
		attrs[i] = schema.Attribute(fmt.Sprintf("A%d", i+1))
	}
	return schema.MustScheme("R", attrs...)
}

// IND returns σ(γ), the IND R[A1,...,Am] ⊆ R[Aγ(1),...,Aγ(m)] associated
// with the permutation γ (Section 3).
func IND(s *schema.Scheme, g Perm) deps.IND {
	attrs := s.Attrs()
	y := make([]schema.Attribute, len(g))
	for i := range g {
		y[i] = attrs[g[i]]
	}
	return deps.NewIND(s.Name(), attrs, s.Name(), y)
}

// Transpositions returns the swap permutations γ_2, ..., γ_m (exchanging
// element 0 with element i), which generate the symmetric group; the
// associated INDs imply every permutation IND (Section 3).
func Transpositions(m int) []Perm {
	var out []Perm
	for i := 1; i < m; i++ {
		p := Identity(m)
		p[0], p[i] = p[i], p[0]
		out = append(out, p)
	}
	return out
}

// LandauParts returns one optimal partition of m into prime powers whose
// product is g(m) (fixed points omitted).
func LandauParts(m int) []int {
	if m <= 0 {
		return nil
	}
	_, parts := landauDP(m)
	return append([]int(nil), parts[m]...)
}

// LandauLogRatio returns ln g(m) / sqrt(m ln m), the quantity Landau's
// theorem (cited in Section 3) proves tends to 1 — the source of the
// e^sqrt(m ln m) growth of the worst-case decision chain.
func LandauLogRatio(m int) float64 {
	if m < 2 {
		return 0
	}
	logG := 0.0
	for _, pk := range LandauParts(m) {
		logG += math.Log(float64(pk))
	}
	return logG / math.Sqrt(float64(m)*math.Log(float64(m)))
}
