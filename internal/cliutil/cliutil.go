// Package cliutil wires the observability flags shared by the indfd,
// depcheck, lbared and depserve commands: -stats (human-readable metrics
// report on stderr), -trace-json (span-tree JSON export), -pprof (a
// net/http/pprof listener for live profiling), and -memprofile (a heap
// profile written at exit).
package cliutil

import (
	"flag"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"runtime/pprof"

	"indfd/internal/obs"
)

// ObsFlags holds the values of the shared instrumentation flags.
type ObsFlags struct {
	// Stats requests the metrics/span text report on stderr at exit.
	Stats bool
	// TraceJSON, when nonempty, is the file the span-tree JSON snapshot is
	// written to at exit.
	TraceJSON string
	// Pprof, when nonempty, is the address a net/http/pprof server
	// listens on for the life of the process.
	Pprof string
	// MemProfile, when nonempty, is the file an end-of-run heap profile
	// is written to (after a forced GC, so it shows live memory, not
	// garbage) — the companion to -pprof for runs too short to scrape.
	MemProfile string
}

// Register installs -stats, -trace-json and -pprof on fs (typically
// flag.CommandLine) and returns the struct their values land in.
func Register(fs *flag.FlagSet) *ObsFlags {
	of := &ObsFlags{}
	fs.BoolVar(&of.Stats, "stats", false, "print a metrics and span report to stderr")
	fs.StringVar(&of.TraceJSON, "trace-json", "", "write the span tree as JSON to `file`")
	fs.StringVar(&of.Pprof, "pprof", "", "serve net/http/pprof on `addr` (e.g. localhost:6060)")
	fs.StringVar(&of.MemProfile, "memprofile", "", "write an end-of-run heap profile to `file`")
	return of
}

// Registry returns a fresh registry when any instrumentation output was
// requested, else nil — and a nil registry makes every instrument a
// no-op, so the engines run uninstrumented.
func (of *ObsFlags) Registry() *obs.Registry {
	if of.Stats || of.TraceJSON != "" {
		return obs.New()
	}
	return nil
}

// StartPprof binds the pprof listener when -pprof was given. The server
// runs detached for the life of the process; only the bind can fail.
func (of *ObsFlags) StartPprof() error {
	if of.Pprof == "" {
		return nil
	}
	ln, err := net.Listen("tcp", of.Pprof)
	if err != nil {
		return err
	}
	go http.Serve(ln, nil) //nolint:errcheck // best-effort debug server
	return nil
}

// Finish writes the requested end-of-run artifacts: the text report to
// stderr under -stats and the JSON snapshot to the -trace-json file
// (both skipped for a nil registry), and the heap profile to the
// -memprofile file (written regardless of the registry — memory is a
// property of the process, not of the instrumentation).
func (of *ObsFlags) Finish(reg *obs.Registry) error {
	if reg != nil {
		snap := reg.Snapshot()
		if of.Stats {
			if err := snap.WriteText(os.Stderr); err != nil {
				return err
			}
		}
		if of.TraceJSON != "" {
			f, err := os.Create(of.TraceJSON)
			if err != nil {
				return err
			}
			if err := snap.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if of.MemProfile != "" {
		f, err := os.Create(of.MemProfile)
		if err != nil {
			return err
		}
		runtime.GC() // materialize the final live set before profiling
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
