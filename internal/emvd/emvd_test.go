package emvd

import (
	"testing"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

func TestImpliesTrivialAndHypothesis(t *testing.T) {
	db := schema.MustDatabase(schema.MustScheme("R", "X", "Y", "Z"))
	goal := deps.NewEMVD("R", deps.Attrs("X"), deps.Attrs("Y"), deps.Attrs("Z"))
	// The goal is implied by itself.
	res, err := Implies(db, []deps.EMVD{goal}, goal, Options{})
	if err != nil {
		t.Fatalf("Implies: %v", err)
	}
	if res.Verdict != Implied {
		t.Errorf("hypothesis: verdict %v", res.Verdict)
	}
	// The symmetric form X ->> Z | Y implies it too.
	sym := deps.NewEMVD("R", deps.Attrs("X"), deps.Attrs("Z"), deps.Attrs("Y"))
	res, _ = Implies(db, []deps.EMVD{sym}, goal, Options{})
	if res.Verdict != Implied {
		t.Errorf("symmetry: verdict %v", res.Verdict)
	}
	// The empty sigma does not imply a nontrivial EMVD, and the chase
	// produces a counterexample.
	res, _ = Implies(db, nil, goal, Options{})
	if res.Verdict != NotImplied {
		t.Fatalf("empty sigma: verdict %v", res.Verdict)
	}
	if ok, _ := res.Counterexample.Satisfies(goal); ok {
		t.Errorf("counterexample satisfies the goal")
	}
}

func TestImpliesValidation(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y", "Z"),
		schema.MustScheme("S", "X", "Y", "Z"),
	)
	goal := deps.NewEMVD("R", deps.Attrs("X"), deps.Attrs("Y"), deps.Attrs("Z"))
	cross := deps.NewEMVD("S", deps.Attrs("X"), deps.Attrs("Y"), deps.Attrs("Z"))
	if _, err := Implies(db, []deps.EMVD{cross}, goal, Options{}); err == nil {
		t.Errorf("cross-relation sigma should be rejected")
	}
	bad := deps.NewEMVD("R", deps.Attrs("X"), deps.Attrs("Y"), deps.Attrs("Y"))
	if _, err := Implies(db, nil, bad, Options{}); err == nil {
		t.Errorf("invalid goal should be rejected")
	}
}

func TestSagivWaleckaFamily(t *testing.T) {
	f, err := SagivWalecka(2)
	if err != nil {
		t.Fatalf("SagivWalecka: %v", err)
	}
	if len(f.Sigma) != 3 {
		t.Fatalf("Sigma has %d members, want k+1=3: %v", len(f.Sigma), f.Sigma)
	}
	if f.Goal.String() != "R: A1 ->> A3 | B" {
		t.Errorf("goal = %v", f.Goal)
	}
	if _, err := SagivWalecka(0); err == nil {
		t.Errorf("k=0 should be rejected")
	}
	// Condition (i): Σ ⊨ σ, found by the chase.
	res, err := Implies(f.DB, f.Sigma, f.Goal, Options{})
	if err != nil {
		t.Fatalf("Implies: %v", err)
	}
	if res.Verdict != Implied {
		t.Errorf("Σ should imply σ (Sagiv–Walecka): verdict %v", res.Verdict)
	}
}

func TestSeparatingRelations(t *testing.T) {
	f, _ := SagivWalecka(2)
	for i, tau := range f.Sigma {
		sep, err := f.SeparatingRelation(i)
		if err != nil {
			t.Fatalf("SeparatingRelation(%d): %v", i, err)
		}
		okTau, err := sep.Satisfies(tau)
		if err != nil {
			t.Fatal(err)
		}
		if !okTau {
			t.Errorf("separating relation %d violates its own tau %v:\n%v", i, tau, sep)
		}
		okGoal, err := sep.Satisfies(f.Goal)
		if err != nil {
			t.Fatal(err)
		}
		if okGoal {
			t.Errorf("separating relation %d satisfies the goal:\n%v", i, sep)
		}
	}
	f1, _ := SagivWalecka(1)
	if _, err := f1.SeparatingRelation(0); err == nil {
		t.Errorf("k=1 separating relation should be rejected")
	}
	if _, err := f.SeparatingRelation(99); err == nil {
		t.Errorf("out-of-range index should be rejected")
	}
}

func TestSeparatingRelationsLargerK(t *testing.T) {
	f, _ := SagivWalecka(3)
	for i, tau := range f.Sigma {
		sep, err := f.SeparatingRelation(i)
		if err != nil {
			t.Fatalf("SeparatingRelation(%d): %v", i, err)
		}
		if ok, _ := sep.Satisfies(tau); !ok {
			t.Errorf("k=3: relation %d violates tau", i)
		}
		if ok, _ := sep.Satisfies(f.Goal); ok {
			t.Errorf("k=3: relation %d satisfies goal", i)
		}
	}
}

func TestCheckConditions(t *testing.T) {
	if testing.Short() {
		t.Skip("condition check is slow")
	}
	f, _ := SagivWalecka(2)
	rep, err := f.CheckConditions(Options{MaxTuples: 512})
	if err != nil {
		t.Fatalf("CheckConditions: %v", err)
	}
	if !rep.Holds() {
		t.Errorf("Corollary 5.2 conditions should hold: %+v", rep)
	}
	if rep.Cond3Checked == 0 {
		t.Errorf("condition (iii) checked nothing")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	f, _ := SagivWalecka(3)
	// A one-tuple budget cannot even hold the seed tableau's successors.
	res, err := Implies(f.DB, f.Sigma, f.Goal, Options{MaxTuples: 2})
	if err != nil {
		t.Fatalf("Implies: %v", err)
	}
	if res.Verdict == NotImplied {
		t.Errorf("tiny budget must not produce a bogus NotImplied")
	}
}

func TestVerdictString(t *testing.T) {
	if Implied.String() != "implied" || NotImplied.String() != "not implied" || Unknown.String() != "unknown" {
		t.Errorf("verdict strings wrong")
	}
}
