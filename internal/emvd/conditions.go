package emvd

import (
	"indfd/internal/deps"
	"indfd/internal/enum"
)

// ConditionReport summarizes a mechanical check of the Corollary 5.2
// conditions on a Sagiv–Walecka family. Chase verdicts can be Unknown, so
// the report distinguishes confirmed facts from unresolved ones.
type ConditionReport struct {
	// Cond1 is condition (i): Σ ⊨ σ.
	Cond1 Verdict
	// Cond2Violations lists members τ of Σ for which τ ⊨ σ was confirmed
	// (condition (ii) requires none).
	Cond2Violations []deps.EMVD
	// Cond2Unknown counts members whose status could not be resolved.
	Cond2Unknown int
	// Cond3Violations lists (Δ, τ) pairs where Δ ⊆ Σ with |Δ| ≤ k implies
	// τ but no single member of Δ does (condition (iii) requires none).
	Cond3Violations int
	// Cond3Checked and Cond3Unknown count the (Δ, τ) implication tests
	// performed and the ones the chase could not resolve.
	Cond3Checked int
	Cond3Unknown int
}

// Holds reports whether the checks confirm all three conditions (no
// violations; unknowns are tolerated and reported separately).
func (r ConditionReport) Holds() bool {
	return r.Cond1 == Implied && len(r.Cond2Violations) == 0 && r.Cond3Violations == 0
}

// CheckConditions mechanically tests the three Corollary 5.2 conditions on
// the family, with the given chase options. Condition (ii) additionally
// cross-checks with the explicit separating relations. Condition (iii)
// quantifies τ over all EMVDs of the family's scheme (via enumeration) and
// Δ over all subsets of Σ of size ≤ f.K.
func (f Family) CheckConditions(opt Options) (ConditionReport, error) {
	var rep ConditionReport
	res, err := Implies(f.DB, f.Sigma, f.Goal, opt)
	if err != nil {
		return rep, err
	}
	rep.Cond1 = res.Verdict

	// Condition (ii): no single member implies σ.
	for i, tau := range f.Sigma {
		r, err := Implies(f.DB, []deps.EMVD{tau}, f.Goal, opt)
		if err != nil {
			return rep, err
		}
		switch r.Verdict {
		case Implied:
			rep.Cond2Violations = append(rep.Cond2Violations, tau)
		case Unknown:
			// Fall back to the explicit separating relation.
			sep, err := f.SeparatingRelation(i)
			if err != nil {
				rep.Cond2Unknown++
				continue
			}
			okTau, err := sep.Satisfies(tau)
			if err != nil {
				return rep, err
			}
			okGoal, err := sep.Satisfies(f.Goal)
			if err != nil {
				return rep, err
			}
			if !(okTau && !okGoal) {
				rep.Cond2Unknown++
			}
		}
	}

	// Condition (iii): for each Δ ⊆ Σ with |Δ| ≤ k and each EMVD τ over
	// the scheme, if Δ ⊨ τ then some δ ∈ Δ ⊨ τ.
	universe := enum.EMVDs(f.DB)
	n := len(f.Sigma)
	for mask := 1; mask < 1<<n; mask++ {
		var delta []deps.EMVD
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				delta = append(delta, f.Sigma[i])
			}
		}
		if len(delta) > f.K {
			continue
		}
		for _, tau := range universe {
			if tau.Trivial() {
				continue
			}
			rep.Cond3Checked++
			r, err := Implies(f.DB, delta, tau, opt)
			if err != nil {
				return rep, err
			}
			switch r.Verdict {
			case Unknown:
				rep.Cond3Unknown++
			case Implied:
				single := false
				for _, d := range delta {
					rs, err := Implies(f.DB, []deps.EMVD{d}, tau, opt)
					if err != nil {
						return rep, err
					}
					if rs.Verdict == Implied {
						single = true
						break
					}
				}
				if !single {
					rep.Cond3Violations++
				}
			}
		}
	}
	return rep, nil
}
