// Package emvd implements embedded multivalued dependencies as used in
// Section 5 of the paper: a budgeted chase deciding EMVD implication (when
// it terminates), the cyclic Sagiv–Walecka family behind Theorem 5.3, and
// mechanical checks of the Corollary 5.2 conditions.
//
// EMVD implication has no known decision procedure; the chase here is
// sound in both directions when it answers (Implied on derivation,
// NotImplied on fixpoint) and returns Unknown when the tuple budget runs
// out.
package emvd

import (
	"fmt"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

// Verdict is a three-valued chase outcome.
type Verdict int

const (
	// Unknown means the budget was exhausted.
	Unknown Verdict = iota
	// Implied means sigma ⊨ goal.
	Implied
	// NotImplied means a finite counterexample was constructed.
	NotImplied
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Implied:
		return "implied"
	case NotImplied:
		return "not implied"
	default:
		return "unknown"
	}
}

// Options configures the chase.
type Options struct {
	// MaxTuples bounds the tableau size; zero means DefaultMaxTuples.
	MaxTuples int
}

// DefaultMaxTuples is the default tableau budget.
const DefaultMaxTuples = 2048

// Result reports a chase outcome.
type Result struct {
	Verdict Verdict
	// Counterexample is a relation satisfying sigma and violating the
	// goal; set exactly when Verdict == NotImplied.
	Counterexample *data.Database
	// Rounds counts chase rounds.
	Rounds int
}

// Implies tests sigma ⊨ goal for EMVDs over a single relation scheme by
// chasing the two-tuple tableau that agrees exactly on goal.X.
func Implies(db *schema.Database, sigma []deps.EMVD, goal deps.EMVD, opt Options) (Result, error) {
	if err := goal.Validate(db); err != nil {
		return Result{}, err
	}
	sch, ok := db.Scheme(goal.Rel)
	if !ok {
		return Result{}, fmt.Errorf("emvd: unknown relation %s", goal.Rel)
	}
	for _, d := range sigma {
		if err := d.Validate(db); err != nil {
			return Result{}, err
		}
		if d.Rel != goal.Rel {
			return Result{}, fmt.Errorf("emvd: sigma member %v is over a different relation than the goal", d)
		}
	}
	max := opt.MaxTuples
	if max <= 0 {
		max = DefaultMaxTuples
	}

	w := sch.Width()
	next := 0
	fresh := func() int { next++; return next - 1 }
	t1 := make([]int, w)
	t2 := make([]int, w)
	for i := 0; i < w; i++ {
		t1[i] = fresh()
		t2[i] = fresh()
	}
	for _, a := range goal.X {
		p, _ := sch.Pos(a)
		t2[p] = t1[p]
	}
	tableau := [][]int{t1, t2}
	keys := map[string]bool{rowKey(t1): true, rowKey(t2): true}

	pos := func(attrs []schema.Attribute) []int {
		out := make([]int, len(attrs))
		for i, a := range attrs {
			p, _ := sch.Pos(a)
			out[i] = p
		}
		return out
	}
	gx, gy, gz := pos(goal.X), pos(goal.Y), pos(goal.Z)
	derived := func() bool {
		for _, t := range tableau {
			ok := true
			for _, p := range gx {
				if t[p] != t1[p] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, p := range gy {
				if t[p] != t1[p] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, p := range gz {
				if t[p] != t2[p] {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}

	res := Result{}
	for {
		res.Rounds++
		if derived() {
			res.Verdict = Implied
			return res, nil
		}
		changed := false
		for _, d := range sigma {
			dx, dy, dz := pos(d.X), pos(d.Y), pos(d.Z)
			// Group by X-projection; within a group, every ordered pair
			// needs a witness.
			groups := map[string][]int{}
			for i, t := range tableau {
				groups[projKey(t, dx)] = append(groups[projKey(t, dx)], i)
			}
			// Index of (XYZ)-projections for witness lookup.
			xyz := append(append(append([]int(nil), dx...), dy...), dz...)
			witnesses := map[string]bool{}
			for _, t := range tableau {
				witnesses[projKey(t, xyz)] = true
			}
			snapshot := len(tableau)
			for _, group := range groups {
				for _, i := range group {
					if i >= snapshot {
						continue
					}
					for _, j := range group {
						if j >= snapshot {
							continue
						}
						u1, u2 := tableau[i], tableau[j]
						want := make([]int, 0, len(xyz))
						for _, p := range dx {
							want = append(want, u1[p])
						}
						for _, p := range dy {
							want = append(want, u1[p])
						}
						for _, p := range dz {
							want = append(want, u2[p])
						}
						if witnesses[rowKey(want)] {
							continue
						}
						if len(tableau) >= max {
							res.Verdict = Unknown
							return res, nil
						}
						t3 := make([]int, w)
						for c := range t3 {
							t3[c] = -1
						}
						for k, p := range dx {
							t3[p] = want[k]
						}
						for k, p := range dy {
							t3[p] = want[len(dx)+k]
						}
						for k, p := range dz {
							t3[p] = want[len(dx)+len(dy)+k]
						}
						for c := range t3 {
							if t3[c] == -1 {
								t3[c] = fresh()
							}
						}
						if k := rowKey(t3); !keys[k] {
							keys[k] = true
							tableau = append(tableau, t3)
							witnesses[rowKey(want)] = true
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			if derived() {
				res.Verdict = Implied
				return res, nil
			}
			res.Verdict = NotImplied
			res.Counterexample = export(db, goal.Rel, tableau)
			return res, nil
		}
	}
}

func rowKey(t []int) string {
	b := make([]byte, 0, len(t)*4)
	for _, v := range t {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func projKey(t []int, pos []int) string {
	b := make([]byte, 0, len(pos)*4)
	for _, p := range pos {
		v := t[p]
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func export(db *schema.Database, rel string, tableau [][]int) *data.Database {
	out := data.NewDatabase(db)
	for _, t := range tableau {
		row := make(data.Tuple, len(t))
		for i, v := range t {
			row[i] = data.Value(fmt.Sprintf("v%d", v))
		}
		out.MustRelation(rel).MustInsert(row)
	}
	return out
}

// Family is the Theorem 5.3 instance for a given k: the relation scheme
// R[A1, ..., A_{k+1}, B], the cyclic set Σ of k+1 EMVDs
// A_i ->> A_{i+1} | B (indices cyclic), and σ = A1 ->> A_{k+1} | B.
type Family struct {
	K     int
	DB    *schema.Database
	Sigma []deps.EMVD
	Goal  deps.EMVD
}

// SagivWalecka builds the Theorem 5.3 family for k ≥ 1.
func SagivWalecka(k int) (Family, error) {
	if k < 1 {
		return Family{}, fmt.Errorf("emvd: k must be ≥ 1, got %d", k)
	}
	attrs := make([]schema.Attribute, k+2)
	for i := 0; i <= k; i++ {
		attrs[i] = schema.Attribute(fmt.Sprintf("A%d", i+1))
	}
	attrs[k+1] = "B"
	db := schema.MustDatabase(schema.MustScheme("R", attrs...))
	a := func(i int) []schema.Attribute { // A_i, 1-based, cyclic over 1..k+1
		idx := (i-1)%(k+1) + 1
		return []schema.Attribute{schema.Attribute(fmt.Sprintf("A%d", idx))}
	}
	b := []schema.Attribute{"B"}
	var sigma []deps.EMVD
	for i := 1; i <= k+1; i++ {
		sigma = append(sigma, deps.NewEMVD("R", a(i), a(i+1), b))
	}
	goal := deps.NewEMVD("R", a(1), a(k+1), b)
	return Family{K: k, DB: db, Sigma: sigma, Goal: goal}, nil
}

// SeparatingRelation returns a relation that obeys the single EMVD
// sigma[i] of the family but violates the family goal, witnessing
// Corollary 5.2's condition (ii) for that member. It requires k ≥ 2 (for
// k = 1 the goal coincides with a member of Σ and condition (ii) fails;
// Theorem 5.3 for k = 1 is subsumed by the k = 2 instance).
func (f Family) SeparatingRelation(i int) (*data.Database, error) {
	if f.K < 2 {
		return nil, fmt.Errorf("emvd: separating relations need k ≥ 2")
	}
	if i < 0 || i >= len(f.Sigma) {
		return nil, fmt.Errorf("emvd: no sigma member %d", i)
	}
	sch, _ := f.DB.Scheme("R")
	w := sch.Width() // k+2; columns 0..k are A1..A_{k+1}, column k+1 is B.
	out := data.NewDatabase(f.DB)
	mk := func(vals []int) data.Tuple {
		t := make(data.Tuple, w)
		for c, v := range vals {
			t[c] = data.Int(v)
		}
		return t
	}
	t1 := make([]int, w) // all zeros
	t2 := make([]int, w) // A1 = 0, everything else 1
	for c := 1; c < w; c++ {
		t2[c] = 1
	}
	out.MustInsert("R", mk(t1), mk(t2))
	if i == 0 {
		// sigma[0] = A1 ->> A2 | B constrains the pair; add the two
		// crossing witnesses (and they introduce no new A1-groups).
		t3 := append([]int(nil), t2...) // A2 from t1, B from t2
		t3[1] = t1[1]
		t4 := append([]int(nil), t1...) // A2 from t2, B from t1
		t4[1] = t2[1]
		out.MustInsert("R", mk(t3), mk(t4))
	}
	return out, nil
}
