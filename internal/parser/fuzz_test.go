package parser

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser never panics and that everything it accepts
// is well-formed (validated against the declared schemes) and re-parses
// after rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"schema R(A, B)\nR: A -> B\n",
		"schema R(A, B)\nR[A] <= R[B]\n? R: A -> B\n",
		"schema R(A, B)\nR[A == B]\n",
		"schema R(A, B, C)\nR: A ->> B | C\n",
		"schema R(X, Y)\nR :: (x, y) / (x, y)\n",
		"schema R(A)\n?fin R[A] <= R[A]\n",
		"# comment\n\nschema R(A)\n",
		"schema R(A, B)\nR[A] ⊆ R[B]\nR: A → B\n",
		"nonsense",
		"schema R(",
		"R: A -> B",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		file, err := ParseString(in)
		if err != nil {
			return
		}
		// Accepted input: every dependency validates and round-trips.
		for _, d := range file.Sigma {
			if err := d.Validate(file.DB); err != nil {
				t.Fatalf("accepted invalid dependency %v: %v", d, err)
			}
			re, err := ParseString("schema " + renderSchemes(file) + "\n" + d.String() + "\n")
			if err != nil {
				t.Fatalf("rendered dependency %q does not re-parse: %v", d.String(), err)
			}
			if len(re.Sigma) != 1 || re.Sigma[0].Key() != d.Key() {
				t.Fatalf("round trip changed %v", d)
			}
		}
	})
}

// renderSchemes renders the file's schemes back into declarations (all on
// one line after the leading "schema ").
func renderSchemes(f *File) string {
	var parts []string
	for _, name := range f.DB.Names() {
		s, _ := f.DB.Scheme(name)
		parts = append(parts, s.String())
	}
	return strings.Join(parts, "\nschema ")
}
