// Package parser reads the repository's text format for database schemes,
// dependencies and implication queries:
//
//	# comment
//	schema R(A, B, C)
//	schema S(D, E)
//
//	R: A, B -> C          # functional dependency
//	R: -> C               # FD with empty left-hand side (constant column)
//	R[A,B] <= S[D,E]      # inclusion dependency
//	R[A == B]             # repeating dependency
//	R: A ->> B | C        # embedded multivalued dependency
//
//	? R: A -> C           # implication query
//	?fin R[B] <= R[A]     # finite-implication query
//
// Template dependencies (Section 4's contrast class) use row syntax:
// hypothesis rows, then "/", then the conclusion row:
//
//	R :: (x, y, z1) (x, y2, z2) / (x, y, z2)
//	? R :: (x, y, z1) (x, y2, z2) / (x, y2, z1)
//
// Blank lines and #-comments are ignored. The Unicode forms ⊆ and → are
// accepted as synonyms for <= and ->.
package parser

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"indfd/internal/deps"
	"indfd/internal/schema"
	"indfd/internal/td"
)

// QueryMode distinguishes unrestricted from finite implication queries.
type QueryMode int

const (
	// Unrestricted is implication over all databases (⊨).
	Unrestricted QueryMode = iota
	// Finite is implication over finite databases (⊨fin).
	Finite
)

// Query is a parsed implication query.
type Query struct {
	Mode QueryMode
	Goal deps.Dependency
}

// TDQuery is a parsed template-dependency implication query.
type TDQuery struct {
	Mode QueryMode
	Goal td.TD
}

// File is the result of parsing an input.
type File struct {
	DB        *schema.Database
	Sigma     []deps.Dependency
	TDs       []td.TD
	Queries   []Query
	TDQueries []TDQuery
}

// Parse reads the text format from r. Dependencies are validated against
// the schemes declared earlier in the input.
func Parse(r io.Reader) (*File, error) {
	f := &File{}
	var schemes []*schema.Scheme
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(f, &schemes, line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if f.DB == nil {
		var err error
		f.DB, err = schema.NewDatabase(schemes...)
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*File, error) { return Parse(strings.NewReader(s)) }

func parseLine(f *File, schemes *[]*schema.Scheme, line string) error {
	// Normalize the Unicode operators.
	line = strings.ReplaceAll(line, "⊆", "<=")
	line = strings.ReplaceAll(line, "→", "->")

	switch {
	case strings.HasPrefix(line, "schema "):
		s, err := parseScheme(strings.TrimSpace(strings.TrimPrefix(line, "schema ")))
		if err != nil {
			return err
		}
		*schemes = append(*schemes, s)
		return nil
	case strings.HasPrefix(line, "?fin "):
		return parseQuery(f, schemes, strings.TrimSpace(strings.TrimPrefix(line, "?fin ")), Finite)
	case strings.HasPrefix(line, "? "):
		return parseQuery(f, schemes, strings.TrimSpace(strings.TrimPrefix(line, "? ")), Unrestricted)
	case strings.Contains(line, "::"):
		t, err := parseTD(line)
		if err != nil {
			return err
		}
		if err := ensureDB(f, schemes); err != nil {
			return err
		}
		if err := t.Validate(f.DB); err != nil {
			return err
		}
		f.TDs = append(f.TDs, t)
		return nil
	default:
		d, err := parseDep(line)
		if err != nil {
			return err
		}
		if err := validate(f, schemes, d); err != nil {
			return err
		}
		f.Sigma = append(f.Sigma, d)
		return nil
	}
}

func parseQuery(f *File, schemes *[]*schema.Scheme, body string, mode QueryMode) error {
	if strings.Contains(body, "::") {
		t, err := parseTD(body)
		if err != nil {
			return err
		}
		if err := ensureDB(f, schemes); err != nil {
			return err
		}
		if err := t.Validate(f.DB); err != nil {
			return err
		}
		f.TDQueries = append(f.TDQueries, TDQuery{Mode: mode, Goal: t})
		return nil
	}
	d, err := parseDep(body)
	if err != nil {
		return err
	}
	if err := validate(f, schemes, d); err != nil {
		return err
	}
	f.Queries = append(f.Queries, Query{Mode: mode, Goal: d})
	return nil
}

func ensureDB(f *File, schemes *[]*schema.Scheme) error {
	if f.DB == nil {
		db, err := schema.NewDatabase(*schemes...)
		if err != nil {
			return err
		}
		f.DB = db
	}
	return nil
}

func validate(f *File, schemes *[]*schema.Scheme, d deps.Dependency) error {
	if err := ensureDB(f, schemes); err != nil {
		return err
	}
	return d.Validate(f.DB)
}

// parseTD parses "R :: (x,y) (x,z) / (x,w)".
func parseTD(s string) (td.TD, error) {
	parts := strings.SplitN(s, "::", 2)
	rel := strings.TrimSpace(parts[0])
	body := parts[1]
	slash := strings.LastIndex(body, "/")
	if slash < 0 {
		return td.TD{}, fmt.Errorf("parser: TD %q needs a '/' before the conclusion row", s)
	}
	hyps, err := parseRows(body[:slash])
	if err != nil {
		return td.TD{}, err
	}
	concl, err := parseRows(body[slash+1:])
	if err != nil {
		return td.TD{}, err
	}
	if len(hyps) == 0 || len(concl) != 1 {
		return td.TD{}, fmt.Errorf("parser: TD %q needs hypothesis rows and exactly one conclusion row", s)
	}
	return td.New(rel, hyps, concl[0]), nil
}

// parseRows parses a sequence of "(v1, v2, ...)" groups.
func parseRows(s string) ([][]string, error) {
	var out [][]string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '(' {
			return nil, fmt.Errorf("parser: expected '(' in TD rows at %q", s)
		}
		close := strings.Index(s, ")")
		if close < 0 {
			return nil, fmt.Errorf("parser: unclosed TD row in %q", s)
		}
		var row []string
		for _, v := range strings.Split(s[1:close], ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				return nil, fmt.Errorf("parser: empty variable in TD row %q", s[:close+1])
			}
			row = append(row, v)
		}
		out = append(out, row)
		s = strings.TrimSpace(s[close+1:])
	}
	return out, nil
}

// parseScheme parses "R(A, B, C)".
func parseScheme(s string) (*schema.Scheme, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("parser: malformed scheme %q, want R(A,B,...)", s)
	}
	name := strings.TrimSpace(s[:open])
	attrs, err := parseAttrList(s[open+1 : len(s)-1])
	if err != nil {
		return nil, err
	}
	return schema.NewScheme(name, attrs...)
}

// parseDep parses one dependency.
func parseDep(s string) (deps.Dependency, error) {
	// EMVD: "R: X ->> Y | Z" — check before FD since "->>" contains "->".
	if colon := strings.Index(s, ":"); colon >= 0 && strings.Contains(s, "->>") {
		rel := strings.TrimSpace(s[:colon])
		rest := s[colon+1:]
		arrow := strings.Index(rest, "->>")
		bar := strings.LastIndex(rest, "|")
		if arrow < 0 || bar < arrow {
			return nil, fmt.Errorf("parser: malformed EMVD %q, want R: X ->> Y | Z", s)
		}
		x, err := parseAttrList(rest[:arrow])
		if err != nil {
			return nil, err
		}
		y, err := parseAttrList(rest[arrow+3 : bar])
		if err != nil {
			return nil, err
		}
		z, err := parseAttrList(rest[bar+1:])
		if err != nil {
			return nil, err
		}
		return deps.NewEMVD(rel, x, y, z), nil
	}
	// IND: "R[X] <= S[Y]".
	if strings.Contains(s, "<=") {
		parts := strings.SplitN(s, "<=", 2)
		lrel, x, err := parseBracketed(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, err
		}
		rrel, y, err := parseBracketed(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, err
		}
		return deps.NewIND(lrel, x, rrel, y), nil
	}
	// RD: "R[X == Y]".
	if strings.Contains(s, "==") && strings.Contains(s, "[") {
		open := strings.Index(s, "[")
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("parser: malformed RD %q, want R[X == Y]", s)
		}
		rel := strings.TrimSpace(s[:open])
		body := s[open+1 : len(s)-1]
		sides := strings.SplitN(body, "==", 2)
		if len(sides) != 2 {
			return nil, fmt.Errorf("parser: malformed RD %q", s)
		}
		x, err := parseAttrList(sides[0])
		if err != nil {
			return nil, err
		}
		y, err := parseAttrList(sides[1])
		if err != nil {
			return nil, err
		}
		return deps.NewRD(rel, x, y), nil
	}
	// FD: "R: X -> Y".
	if colon := strings.Index(s, ":"); colon >= 0 && strings.Contains(s[colon+1:], "->") {
		rel := strings.TrimSpace(s[:colon])
		rest := s[colon+1:]
		arrow := strings.Index(rest, "->")
		x, err := parseAttrListAllowEmpty(rest[:arrow])
		if err != nil {
			return nil, err
		}
		y, err := parseAttrList(rest[arrow+2:])
		if err != nil {
			return nil, err
		}
		return deps.NewFD(rel, x, y), nil
	}
	return nil, fmt.Errorf("parser: unrecognized dependency %q", s)
}

// parseBracketed parses "R[A,B]" into the relation name and attributes.
func parseBracketed(s string) (string, []schema.Attribute, error) {
	open := strings.Index(s, "[")
	if open < 0 || !strings.HasSuffix(s, "]") {
		return "", nil, fmt.Errorf("parser: malformed projection %q, want R[A,B]", s)
	}
	name := strings.TrimSpace(s[:open])
	attrs, err := parseAttrList(s[open+1 : len(s)-1])
	if err != nil {
		return "", nil, err
	}
	return name, attrs, nil
}

func parseAttrList(s string) ([]schema.Attribute, error) {
	attrs, err := parseAttrListAllowEmpty(s)
	if err != nil {
		return nil, err
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("parser: empty attribute list")
	}
	return attrs, nil
}

func parseAttrListAllowEmpty(s string) ([]schema.Attribute, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []schema.Attribute
	for _, part := range strings.Split(s, ",") {
		a := strings.TrimSpace(part)
		if a == "" {
			return nil, fmt.Errorf("parser: empty attribute name in %q", s)
		}
		for _, r := range a {
			if r == '[' || r == ']' || r == '(' || r == ')' || r == ' ' {
				return nil, fmt.Errorf("parser: bad attribute name %q", a)
			}
		}
		out = append(out, schema.Attribute(a))
	}
	return out, nil
}
