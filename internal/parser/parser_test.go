package parser

import (
	"strings"
	"testing"

	"indfd/internal/deps"
)

const sample = `
# The manager/employee design from the introduction.
schema MGR(NAME, DEPT)
schema EMP(NAME, DEPT, SAL)

MGR[NAME,DEPT] <= EMP[NAME,DEPT]
EMP: NAME -> DEPT, SAL

? MGR[NAME] <= EMP[NAME]
?fin EMP: NAME -> SAL
`

func TestParseSample(t *testing.T) {
	f, err := ParseString(sample)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if f.DB.Len() != 2 {
		t.Errorf("schemes = %d", f.DB.Len())
	}
	if len(f.Sigma) != 2 {
		t.Fatalf("sigma = %v", f.Sigma)
	}
	if f.Sigma[0].String() != "MGR[NAME,DEPT] <= EMP[NAME,DEPT]" {
		t.Errorf("IND = %v", f.Sigma[0])
	}
	if f.Sigma[1].String() != "EMP: NAME -> DEPT,SAL" {
		t.Errorf("FD = %v", f.Sigma[1])
	}
	if len(f.Queries) != 2 {
		t.Fatalf("queries = %v", f.Queries)
	}
	if f.Queries[0].Mode != Unrestricted || f.Queries[1].Mode != Finite {
		t.Errorf("query modes wrong: %+v", f.Queries)
	}
}

func TestParseAllKinds(t *testing.T) {
	in := `
schema R(A, B, C)
R: A -> B
R: -> C
R[A] <= R[B]
R[A == B]
R: A ->> B | C
`
	f, err := ParseString(in)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	kinds := []deps.Kind{deps.KindFD, deps.KindFD, deps.KindIND, deps.KindRD, deps.KindEMVD}
	if len(f.Sigma) != len(kinds) {
		t.Fatalf("sigma = %v", f.Sigma)
	}
	for i, k := range kinds {
		if f.Sigma[i].Kind() != k {
			t.Errorf("sigma[%d] kind = %v, want %v", i, f.Sigma[i].Kind(), k)
		}
	}
	// The empty-LHS FD parsed as such.
	fd := f.Sigma[1].(deps.FD)
	if len(fd.X) != 0 || len(fd.Y) != 1 {
		t.Errorf("empty-LHS FD = %+v", fd)
	}
}

func TestParseUnicode(t *testing.T) {
	in := "schema R(A, B)\nR[A] ⊆ R[B]\nR: A → B\n"
	f, err := ParseString(in)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(f.Sigma) != 2 {
		t.Fatalf("sigma = %v", f.Sigma)
	}
	if f.Sigma[0].Kind() != deps.KindIND || f.Sigma[1].Kind() != deps.KindFD {
		t.Errorf("kinds = %v, %v", f.Sigma[0].Kind(), f.Sigma[1].Kind())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"schema R(A\n",                      // malformed scheme
		"schema R(A, A)\n",                  // duplicate attribute
		"schema R(A)\nR[A] <= S[A]\n",       // unknown relation
		"schema R(A)\nR: A -> \n",           // empty FD RHS
		"schema R(A,B)\nR[A == ]\n",         // empty RD side
		"schema R(A,B)\nnonsense here\n",    // unparseable
		"schema R(A,B)\nR[A,B] <= R[A]\n",   // width mismatch
		"schema R(A,B,C)\nR: A ->> B | B\n", // EMVD overlap
		"schema R(A,B)\nR[A] <= R[Z]\n",     // unknown attribute
		"schema R(A,B)\nR: A ->> B\n",       // EMVD without bar
	}
	for _, in := range cases {
		if _, err := ParseString(in); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	// Rendering a parsed dependency and re-parsing it is stable.
	in := `
schema R(A, B, C)
schema S(D, E)
R: A, B -> C
R[A,B] <= S[D,E]
R[A,B == B,C]
`
	f, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("schema R(A, B, C)\nschema S(D, E)\n")
	for _, d := range f.Sigma {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	g, err := ParseString(b.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(g.Sigma) != len(f.Sigma) {
		t.Fatalf("round trip lost dependencies")
	}
	for i := range f.Sigma {
		if f.Sigma[i].Key() != g.Sigma[i].Key() {
			t.Errorf("round trip changed %v into %v", f.Sigma[i], g.Sigma[i])
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	in := "  \n# only comments\nschema R(A)  # trailing\n\nR[A] <= R[A] # trivial\n"
	f, err := ParseString(in)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(f.Sigma) != 1 {
		t.Errorf("sigma = %v", f.Sigma)
	}
}

func TestEmptyInput(t *testing.T) {
	f, err := ParseString("")
	if err != nil {
		t.Fatalf("empty input should parse: %v", err)
	}
	if f.DB == nil || f.DB.Len() != 0 {
		t.Errorf("empty input should yield an empty scheme")
	}
}

func TestParseTDs(t *testing.T) {
	in := `
schema R(X, Y, Z)
R :: (x, y, z1) (x, y2, z2) / (x, y, z2)
? R :: (x, y, z1) (x, y2, z2) / (x, y2, z1)
?fin R :: (x, y, z1) / (x, y, z1)
`
	f, err := ParseString(in)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(f.TDs) != 1 {
		t.Fatalf("TDs = %v", f.TDs)
	}
	if got := f.TDs[0].String(); got != "R: (x,y,z1) (x,y2,z2) / (x,y,z2)" {
		t.Errorf("TD = %q", got)
	}
	if len(f.TDQueries) != 2 {
		t.Fatalf("TDQueries = %v", f.TDQueries)
	}
	if f.TDQueries[0].Mode != Unrestricted || f.TDQueries[1].Mode != Finite {
		t.Errorf("TD query modes wrong")
	}
}

func TestParseTDErrors(t *testing.T) {
	cases := []string{
		"schema R(X, Y)\nR :: (x, y)\n",          // no conclusion
		"schema R(X, Y)\nR :: / (x, y)\n",        // no hypotheses
		"schema R(X, Y)\nR :: (x, y / (x, y)\n",  // unclosed row
		"schema R(X, Y)\nR :: (x) / (x, y)\n",    // wrong width
		"schema R(X, Y)\nR :: (x, ) / (x, y)\n",  // empty variable
		"schema R(X, Y)\nR :: x, y / (x, y)\n",   // missing parens
		"schema R(X, Y)\nS :: (x, y) / (x, y)\n", // unknown relation
	}
	for _, in := range cases {
		if _, err := ParseString(in); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}
