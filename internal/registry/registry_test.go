package registry

import (
	"strings"
	"testing"

	"indfd/internal/deps"
	"indfd/internal/obs"
)

const chainDoc = `
schema R(A, B, C)
R: A -> B
R: B -> C
`

func mustPut(t *testing.T, r *Registry, name, source string) (*Entry, []string) {
	t.Helper()
	e, changed, err := r.Put(name, source)
	if err != nil {
		t.Fatalf("Put %s: %v", name, err)
	}
	return e, changed
}

func TestPutGetDeleteVersioning(t *testing.T) {
	reg := obs.New()
	r := New(reg)

	e1, changed := mustPut(t, r, "chain", chainDoc)
	if e1.Version != 1 {
		t.Errorf("first Put version = %d, want 1", e1.Version)
	}
	if len(changed) != 2 {
		t.Errorf("fresh Put changed %d members, want 2 (all of them): %v", len(changed), changed)
	}
	if len(e1.Sigma) != 2 || len(e1.Members) != 2 {
		t.Errorf("entry Sigma/Members = %d/%d, want 2/2", len(e1.Sigma), len(e1.Members))
	}
	if e1.Sys == nil || e1.Pool == nil || e1.DB == nil {
		t.Fatalf("entry missing pre-compiled artifacts: %+v", e1)
	}

	got, ok := r.Get("chain")
	if !ok || got != e1 {
		t.Fatalf("Get returned %+v ok=%t, want the published entry", got, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Errorf("Get of an unregistered name succeeded")
	}

	// Re-Put with one FD swapped: version bumps, changed = the symmetric
	// difference (the removed FD and the added one).
	e2, changed := mustPut(t, r, "chain", strings.Replace(chainDoc, "R: B -> C", "R: A -> C", 1))
	if e2.Version != 2 {
		t.Errorf("second Put version = %d, want 2", e2.Version)
	}
	if len(changed) != 2 {
		t.Errorf("edit changed %v, want the removed and the added member", changed)
	}
	// Identical re-Put: nothing changed, version still bumps (the caller
	// asked for a new publication).
	e3, changed := mustPut(t, r, "chain", strings.Replace(chainDoc, "R: B -> C", "R: A -> C", 1))
	if e3.Version != 3 || len(changed) != 0 {
		t.Errorf("identical re-Put: version %d changed %v, want 3 and none", e3.Version, changed)
	}

	removed, ok := r.Delete("chain")
	if !ok || removed != e3 {
		t.Fatalf("Delete returned %+v ok=%t", removed, ok)
	}
	if _, ok := r.Delete("chain"); ok {
		t.Errorf("second Delete succeeded")
	}
	// Versions survive deletion: a re-registered name continues the
	// sequence, so no (name, version) pair ever names two different Σ.
	e4, _ := mustPut(t, r, "chain", chainDoc)
	if e4.Version != 4 {
		t.Errorf("post-delete Put version = %d, want 4", e4.Version)
	}

	snap := reg.Snapshot()
	if snap.Counters["registry.puts"] != 4 || snap.Counters["registry.deletes"] != 1 {
		t.Errorf("puts/deletes = %d/%d, want 4/1",
			snap.Counters["registry.puts"], snap.Counters["registry.deletes"])
	}
	if snap.Counters["registry.hits"] != 1 || snap.Counters["registry.misses"] != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1",
			snap.Counters["registry.hits"], snap.Counters["registry.misses"])
	}
	if snap.Gauges["registry.schemas"] != 1 {
		t.Errorf("registry.schemas = %d, want 1", snap.Gauges["registry.schemas"])
	}
}

func TestPutRejectsBadDocuments(t *testing.T) {
	r := New(obs.New())
	for name, doc := range map[string]string{
		"empty name":   chainDoc,
		"query line":   chainDoc + "? R: A -> C\n",
		"td query":     chainDoc + "?fin R: A -> C\n",
		"parse error":  "schema R(A, B)\nR: A => B\n",
		"bad relation": "schema R(A, B)\nS: A -> B\n",
	} {
		putName := "x"
		if name == "empty name" {
			putName = ""
		}
		if _, _, err := r.Put(putName, doc); err == nil {
			t.Errorf("%s: Put succeeded, want error", name)
		}
	}
	if n := len(r.List()); n != 0 {
		t.Errorf("%d entries registered after rejected Puts", n)
	}
}

func TestList(t *testing.T) {
	r := New(obs.New())
	mustPut(t, r, "b", chainDoc)
	mustPut(t, r, "a", chainDoc)
	got := r.List()
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Errorf("List = %v, want [a b]", got)
	}
}

func sigmaStrings(ds []deps.Dependency) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.String()
	}
	return out
}

func TestAlgebra(t *testing.T) {
	r := New(obs.New())
	a, _ := mustPut(t, r, "a", "schema R(A, B, C)\nR: A -> B\nR: B -> C\n")
	b, _ := mustPut(t, r, "b", "schema R(A, B, C)\nR: B -> C\nR[A] <= R[B]\n")

	union, err := Union(a, b)
	if err != nil {
		t.Fatalf("Union: %v", err)
	}
	if got := sigmaStrings(union); len(got) != 3 {
		t.Errorf("Union = %v, want 3 deduplicated members", got)
	}

	inter, err := Intersect(a, b)
	if err != nil {
		t.Fatalf("Intersect: %v", err)
	}
	if got := sigmaStrings(inter); len(got) != 1 || got[0] != "R: B -> C" {
		t.Errorf("Intersect = %v, want [R: B -> C]", got)
	}

	// A redundant FD set: A->B, B->C, A->C. The minimal cover drops the
	// implied A->C; the IND rides through untouched.
	c, _ := mustPut(t, r, "c", "schema R(A, B, C)\nR: A -> B\nR: B -> C\nR: A -> C\nR[A] <= R[B]\n")
	cover := sigmaStrings(MinimalCover(c))
	if len(cover) != 3 {
		t.Errorf("MinimalCover = %v, want 2 FDs + 1 IND", cover)
	}
	for _, s := range cover {
		if s == "R: A -> C" {
			t.Errorf("MinimalCover kept the redundant FD: %v", cover)
		}
	}
	if cover[len(cover)-1] != "R[A] <= R[B]" {
		t.Errorf("MinimalCover dropped or moved the IND: %v", cover)
	}

	// Operands over different schemas are rejected.
	d, _ := mustPut(t, r, "d", "schema S(X, Y)\nS: X -> Y\n")
	if _, err := Union(a, d); err == nil {
		t.Errorf("Union across schemas succeeded")
	}
	if _, err := Intersect(a, d); err == nil {
		t.Errorf("Intersect across schemas succeeded")
	}
}

func TestMemberDiffIsSymmetricDifference(t *testing.T) {
	r := New(obs.New())
	e1, _ := mustPut(t, r, "s", "schema R(A, B, C)\nR: A -> B\nR: B -> C\n")
	e2, _ := mustPut(t, r, "s", "schema R(A, B, C)\nR: B -> C\nR: A -> C\n")
	diff := memberDiff(e1, e2)
	if len(diff) != 2 {
		t.Fatalf("memberDiff = %v, want exactly the removed and added keys", diff)
	}
	// The shared member R: B -> C must not be in the diff.
	for _, k := range diff {
		if v, ok := e2.Members[k]; ok && v == "R: B -> C" {
			t.Errorf("unchanged member %q in diff", v)
		}
	}
}
