// Package registry is depserve's named-schema store: a versioned,
// concurrency-safe map from schema names to pre-compiled implication
// systems. Clients that pose many goals against one dependency set —
// an optimizer validating rewrites, a discovery pipeline checking
// candidate dependencies — register the (schema, Σ) pair once and
// reference it by name afterwards, so the per-request cost drops to a
// map lookup: parsing, validation, canonicalization, per-member
// fingerprinting and chase-engine compilation are all paid at
// registration time.
//
// Entries are immutable after publication. A Put builds a complete new
// Entry — parsed schema, canonical Σ, member keys, a warm
// chase.EnginePool — and swaps it in under the write lock; readers that
// already hold the old Entry keep using it unharmed (its pool and
// system are self-contained), and readers that look up after the swap
// see the new one. No request can ever observe a torn Σ: the version
// and the dependency set travel together inside one pointer.
//
// Versions are per name, start at 1, bump on every Put, and survive
// Delete (the counter lives outside the entry map), so a version number
// uniquely identifies one Σ that existed — the property the concurrency
// hammer asserts.
package registry

import (
	"fmt"
	"sort"
	"sync"

	"indfd/internal/chase"
	"indfd/internal/core"
	"indfd/internal/deps"
	"indfd/internal/fd"
	"indfd/internal/obs"
	"indfd/internal/parser"
	"indfd/internal/schema"
)

// Entry is one published version of a named schema: everything a
// request needs, pre-computed. Treat it as read-only.
type Entry struct {
	// Name and Version identify the publication; Version bumps on every
	// Put of the same name and survives Delete/re-Put.
	Name    string
	Version int64
	// Source is the registered dependency document, verbatim.
	Source string
	// DB and Sigma are the parsed schema and the canonicalized Σ
	// (deduplicated, insertion order), shared with Sys.
	DB    *schema.Database
	Sigma []deps.Dependency
	// Members maps each Σ member's canonical Key to its String form —
	// the per-member fingerprints the answer cache's invalidation index
	// and the algebra endpoint work with.
	Members map[string]string
	// Sys is the ready implication system over DB and Sigma.
	Sys *core.System
	// Pool is a chase engine pool warmed for this version's (DB, Sigma)
	// shape; sharing it across the version's requests makes repeat
	// chase queries nearly allocation-free.
	Pool *chase.EnginePool
}

// Registry is the concurrency-safe store. Use New.
type Registry struct {
	mu       sync.RWMutex
	entries  map[string]*Entry
	versions map[string]int64 // survives Delete: versions never repeat

	obs     *obs.Registry
	puts    *obs.Counter // registry.puts: successful registrations
	deletes *obs.Counter // registry.deletes: successful removals
	hits    *obs.Counter // registry.hits: Get found the name
	misses  *obs.Counter // registry.misses: Get found nothing
	schemas *obs.Gauge   // registry.schemas: live entry count
}

// New returns an empty registry reporting registry.* metrics to reg
// (nil = uncounted). Warm engine pools report pool.* to the same reg.
func New(reg *obs.Registry) *Registry {
	return &Registry{
		entries:  make(map[string]*Entry),
		versions: make(map[string]int64),
		obs:      reg,
		puts:     reg.Counter("registry.puts"),
		deletes:  reg.Counter("registry.deletes"),
		hits:     reg.Counter("registry.hits"),
		misses:   reg.Counter("registry.misses"),
		schemas:  reg.Gauge("registry.schemas"),
	}
}

// Compile parses and validates a dependency document into the pieces an
// Entry carries, without touching the store: the schema, the canonical
// Σ, the member key map, a ready System, and a pool pre-warmed for the
// full-Σ shape. Query lines are rejected — a registered schema is a
// declaration, goals arrive per request.
func Compile(source string, reg *obs.Registry) (*core.System, map[string]string, *chase.EnginePool, error) {
	f, err := parser.ParseString(source)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(f.Queries) > 0 || len(f.TDQueries) > 0 {
		return nil, nil, nil, fmt.Errorf("registry: schema document must not contain query lines (goals are per request)")
	}
	if len(f.TDs) > 0 {
		return nil, nil, nil, fmt.Errorf("registry: template dependencies are not supported in registered schemas")
	}
	sys := core.NewSystem(f.DB)
	if err := sys.Add(f.Sigma...); err != nil {
		return nil, nil, nil, err
	}
	sigma := sys.Sigma()
	members := make(map[string]string, len(sigma))
	for _, d := range sigma {
		members[d.Key()] = d.String()
	}
	pool := chase.NewEnginePool(reg)
	// Best-effort warm-up for the full-Σ shape; goals whose relevant
	// component is a strict subset compile (and then pool) their own
	// shape on first use.
	if err := pool.Warm(f.DB, sigma); err != nil {
		return nil, nil, nil, err
	}
	return sys, members, pool, nil
}

// Put registers source under name, bumping the name's version. It
// returns the published entry plus the canonical keys of the members
// that CHANGED relative to the previous version (symmetric difference;
// everything on a fresh name, everything removed plus everything added
// on an edit) — exactly the set whose cached answers the caller must
// invalidate.
func (r *Registry) Put(name, source string) (*Entry, []string, error) {
	if name == "" {
		return nil, nil, fmt.Errorf("registry: empty schema name")
	}
	sys, members, pool, err := Compile(source, r.obs)
	if err != nil {
		return nil, nil, err
	}
	e := &Entry{
		Name:    name,
		Source:  source,
		DB:      sys.DB(),
		Sigma:   sys.Sigma(),
		Members: members,
		Sys:     sys,
		Pool:    pool,
	}
	r.mu.Lock()
	prev := r.entries[name]
	r.versions[name]++
	e.Version = r.versions[name]
	r.entries[name] = e
	n := len(r.entries)
	r.mu.Unlock()
	r.puts.Inc()
	r.schemas.Set(int64(n))
	return e, memberDiff(prev, e), nil
}

// Get returns the current entry for name.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if ok {
		r.hits.Inc()
	} else {
		r.misses.Inc()
	}
	return e, ok
}

// Delete removes name, returning the removed entry (whose member keys
// the caller invalidates) and whether it existed. The name's version
// counter is retained: a later re-Put continues the sequence.
func (r *Registry) Delete(name string) (*Entry, bool) {
	r.mu.Lock()
	e, ok := r.entries[name]
	if ok {
		delete(r.entries, name)
	}
	n := len(r.entries)
	r.mu.Unlock()
	if ok {
		r.deletes.Inc()
		r.schemas.Set(int64(n))
	}
	return e, ok
}

// List returns the live entries sorted by name.
func (r *Registry) List() []*Entry {
	r.mu.RLock()
	out := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// memberDiff is the symmetric difference of two versions' member key
// sets, sorted. prev == nil means a fresh name: every member changed.
func memberDiff(prev, next *Entry) []string {
	changed := make(map[string]struct{})
	if prev != nil {
		for k := range prev.Members {
			if _, ok := next.Members[k]; !ok {
				changed[k] = struct{}{}
			}
		}
	}
	for k := range next.Members {
		if prev == nil {
			changed[k] = struct{}{}
			continue
		}
		if _, ok := prev.Members[k]; !ok {
			changed[k] = struct{}{}
		}
	}
	out := make([]string, 0, len(changed))
	for k := range changed {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Algebra ops over registered Σ sets (the registry's first derived
// workload): union and intersection of two named sets, and the minimal
// cover of one set's FDs. Results are returned as dependencies, not
// registered — the caller decides whether to Put them under a new name.

// Union returns the canonical union of the two entries' Σ sets; both
// must be over the same schema (relation-by-relation equal schemes).
func Union(a, b *Entry) ([]deps.Dependency, error) {
	if err := sameSchema(a, b); err != nil {
		return nil, err
	}
	s := deps.NewSet(a.Sigma...)
	s.Add(b.Sigma...)
	return s.All(), nil
}

// Intersect returns the members present in both entries' Σ sets (by
// canonical key); both must be over the same schema.
func Intersect(a, b *Entry) ([]deps.Dependency, error) {
	if err := sameSchema(a, b); err != nil {
		return nil, err
	}
	var out []deps.Dependency
	for _, d := range a.Sigma {
		if _, ok := b.Members[d.Key()]; ok {
			out = append(out, d)
		}
	}
	return out, nil
}

// MinimalCover returns the entry's Σ with its FD fragment replaced by a
// minimal cover (right-reduced, left-reduced, no redundant FD — the
// classical construction in internal/fd); INDs and RDs pass through
// unchanged, in order, after the cover.
func MinimalCover(a *Entry) []deps.Dependency {
	set := deps.NewSet(a.Sigma...)
	cover := fd.MinimalCover(set.FDs())
	out := make([]deps.Dependency, 0, len(a.Sigma))
	for _, d := range cover {
		out = append(out, d)
	}
	for _, d := range a.Sigma {
		if d.Kind() != deps.KindFD {
			out = append(out, d)
		}
	}
	return out
}

func sameSchema(a, b *Entry) error {
	an, bn := a.DB.Names(), b.DB.Names()
	if len(an) != len(bn) {
		return fmt.Errorf("registry: %s and %s are over different schemas", a.Name, b.Name)
	}
	for i, n := range an {
		if bn[i] != n {
			return fmt.Errorf("registry: %s and %s are over different schemas", a.Name, b.Name)
		}
		sa, _ := a.DB.Scheme(n)
		sb, _ := b.DB.Scheme(n)
		if !schema.EqualSeq(sa.Attrs(), sb.Attrs()) {
			return fmt.Errorf("registry: %s and %s disagree on scheme %s", a.Name, b.Name, n)
		}
	}
	return nil
}
