package td_test

import (
	"fmt"

	"indfd/internal/emvd"
	"indfd/internal/td"
)

// EMVDs embed into template dependencies; the TD chase re-proves the
// Sagiv–Walecka implication of Theorem 5.3.
func ExampleImplies() {
	f, err := emvd.SagivWalecka(2)
	if err != nil {
		panic(err)
	}
	var sigma []td.TD
	for _, e := range f.Sigma {
		t, err := td.FromEMVD(f.DB, e)
		if err != nil {
			panic(err)
		}
		sigma = append(sigma, t)
	}
	goal, _ := td.FromEMVD(f.DB, f.Goal)
	res, err := td.Implies(f.DB, sigma, goal, td.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Verdict)
	// Output: implied
}

// The row syntax of a template dependency.
func ExampleNew() {
	t := td.New("R",
		[][]string{{"x", "y1", "z1"}, {"x", "y2", "z2"}},
		[]string{"x", "y1", "z2"},
	)
	fmt.Println(t)
	// Output: R: (x,y1,z1) (x,y2,z2) / (x,y1,z2)
}
