// Package td implements template dependencies, the class Section 4 of the
// paper contrasts with EMVDs: "for no k does there exist a k-ary complete
// axiomatization for embedded multivalued dependencies [SW]. However, the
// larger class of template dependencies has a 2-ary complete
// axiomatization [BV2, SU]." A template dependency (TD) over a relation
// scheme consists of hypothesis rows and one conclusion row, all filled
// with variables: a relation satisfies the TD when every embedding of the
// hypothesis rows extends to an embedding of the conclusion row
// (variables appearing only in the conclusion are existential).
//
// The package provides satisfaction checking, the standard (budgeted) TD
// chase for implication, and the embedding of EMVDs into TDs, which the
// tests cross-validate against the emvd package.
package td

import (
	"fmt"
	"strings"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

// TD is a template dependency over a single relation scheme. Rows are
// sequences of variable names of the scheme's width.
type TD struct {
	Rel        string
	Hypotheses [][]string
	Conclusion []string
}

// New builds a TD.
func New(rel string, hypotheses [][]string, conclusion []string) TD {
	hs := make([][]string, len(hypotheses))
	for i, h := range hypotheses {
		hs[i] = append([]string(nil), h...)
	}
	return TD{Rel: rel, Hypotheses: hs, Conclusion: append([]string(nil), conclusion...)}
}

// Validate checks the TD against the database scheme: rows have the
// scheme's width and at least one hypothesis exists.
func (t TD) Validate(db *schema.Database) error {
	s, ok := db.Scheme(t.Rel)
	if !ok {
		return fmt.Errorf("td: unknown relation %s", t.Rel)
	}
	if len(t.Hypotheses) == 0 {
		return fmt.Errorf("td: %s needs at least one hypothesis row", t.Rel)
	}
	for _, h := range t.Hypotheses {
		if len(h) != s.Width() {
			return fmt.Errorf("td: hypothesis row %v has width %d, scheme has %d", h, len(h), s.Width())
		}
	}
	if len(t.Conclusion) != s.Width() {
		return fmt.Errorf("td: conclusion row %v has width %d, scheme has %d", t.Conclusion, len(t.Conclusion), s.Width())
	}
	return nil
}

// String renders the TD.
func (t TD) String() string {
	var b strings.Builder
	b.WriteString(t.Rel)
	b.WriteString(": ")
	rows := make([]string, len(t.Hypotheses))
	for i, h := range t.Hypotheses {
		rows[i] = "(" + strings.Join(h, ",") + ")"
	}
	b.WriteString(strings.Join(rows, " "))
	b.WriteString(" / (")
	b.WriteString(strings.Join(t.Conclusion, ","))
	b.WriteString(")")
	return b.String()
}

// hypVars returns the set of variables occurring in the hypotheses.
func (t TD) hypVars() map[string]bool {
	out := map[string]bool{}
	for _, h := range t.Hypotheses {
		for _, v := range h {
			out[v] = true
		}
	}
	return out
}

// Satisfies reports whether the database's relation obeys the TD: every
// valuation embedding all hypothesis rows extends to the conclusion.
func Satisfies(db *data.Database, t TD) (bool, error) {
	if err := t.Validate(db.Scheme()); err != nil {
		return false, err
	}
	rel, _ := db.Relation(t.Rel)
	tuples := rel.Tuples()
	// Enumerate valuations by assigning each hypothesis row to a tuple.
	assign := map[string]data.Value{}
	var rec func(row int) (bool, error)
	rec = func(row int) (bool, error) {
		if row == len(t.Hypotheses) {
			ok := conclusionWitness(tuples, t.Conclusion, assign)
			return ok, nil
		}
	next:
		for _, tu := range tuples {
			// Try to unify hypothesis row `row` with tuple tu.
			var bound []string
			for i, v := range t.Hypotheses[row] {
				if old, ok := assign[v]; ok {
					if old != tu[i] {
						for _, b := range bound {
							delete(assign, b)
						}
						bound = nil
						continue next
					}
				} else {
					assign[v] = tu[i]
					bound = append(bound, v)
				}
			}
			ok, err := rec(row + 1)
			for _, b := range bound {
				delete(assign, b)
			}
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}
	return rec(0)
}

// conclusionWitness reports whether some tuple matches the conclusion row
// under the (partial) valuation: bound variables must match exactly;
// unbound variables bind greedily but must stay consistent within the
// conclusion.
func conclusionWitness(tuples []data.Tuple, conclusion []string, assign map[string]data.Value) bool {
	for _, tu := range tuples {
		local := map[string]data.Value{}
		ok := true
		for i, v := range conclusion {
			want, bound := assign[v]
			if bound {
				if tu[i] != want {
					ok = false
					break
				}
				continue
			}
			if prev, seen := local[v]; seen {
				if tu[i] != prev {
					ok = false
					break
				}
				continue
			}
			local[v] = tu[i]
		}
		if ok {
			return true
		}
	}
	return false
}

// FromEMVD embeds the EMVD X ->> Y | Z over its scheme as a TD with two
// hypothesis rows and one conclusion row — the definition of EMVD
// satisfaction, verbatim.
func FromEMVD(db *schema.Database, e deps.EMVD) (TD, error) {
	if err := e.Validate(db); err != nil {
		return TD{}, err
	}
	s, _ := db.Scheme(e.Rel)
	class := func(a schema.Attribute) string {
		for _, x := range e.X {
			if x == a {
				return "x"
			}
		}
		for _, y := range e.Y {
			if y == a {
				return "y"
			}
		}
		for _, z := range e.Z {
			if z == a {
				return "z"
			}
		}
		return "w"
	}
	w := s.Width()
	h1 := make([]string, w)
	h2 := make([]string, w)
	con := make([]string, w)
	for i, a := range s.Attrs() {
		name := fmt.Sprintf("%s%d", class(a), i)
		switch class(a) {
		case "x":
			h1[i], h2[i], con[i] = name, name, name
		case "y":
			h1[i], h2[i], con[i] = name+"_1", name+"_2", name+"_1"
		case "z":
			h1[i], h2[i], con[i] = name+"_1", name+"_2", name+"_2"
		default: // attributes outside X ∪ Y ∪ Z are unconstrained
			h1[i], h2[i], con[i] = name+"_1", name+"_2", name+"_3"
		}
	}
	return New(e.Rel, [][]string{h1, h2}, con), nil
}

// Verdict is a three-valued chase outcome.
type Verdict int

const (
	// Unknown means the budget was exhausted.
	Unknown Verdict = iota
	// Implied means sigma ⊨ goal.
	Implied
	// NotImplied means a finite counterexample was found.
	NotImplied
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Implied:
		return "implied"
	case NotImplied:
		return "not implied"
	default:
		return "unknown"
	}
}

// Options configures the chase.
type Options struct {
	// MaxTuples bounds the tableau; zero means 2048.
	MaxTuples int
}

// Result is the chase outcome.
type Result struct {
	Verdict        Verdict
	Counterexample *data.Database
	Rounds         int
}

// Implies tests sigma ⊨ goal for TDs over the same relation by the
// standard TD chase: start with the goal's hypothesis rows as tuples of
// distinct labeled nulls, fire the TDs of sigma until the goal's
// conclusion row is matched, a fixpoint is reached (counterexample), or
// the budget runs out.
func Implies(db *schema.Database, sigma []TD, goal TD, opt Options) (Result, error) {
	if err := goal.Validate(db); err != nil {
		return Result{}, err
	}
	for _, t := range sigma {
		if err := t.Validate(db); err != nil {
			return Result{}, err
		}
		if t.Rel != goal.Rel {
			return Result{}, fmt.Errorf("td: sigma member over %s, goal over %s", t.Rel, goal.Rel)
		}
	}
	max := opt.MaxTuples
	if max <= 0 {
		max = 2048
	}
	s, _ := db.Scheme(goal.Rel)
	w := s.Width()

	next := 0
	fresh := func() int { next++; return next - 1 }
	// Seed: goal hypotheses with one null per distinct variable.
	varID := map[string]int{}
	id := func(v string) int {
		if i, ok := varID[v]; ok {
			return i
		}
		i := fresh()
		varID[v] = i
		return i
	}
	var tableau [][]int
	keys := map[string]bool{}
	add := func(row []int) bool {
		k := rowKey(row)
		if keys[k] {
			return false
		}
		keys[k] = true
		tableau = append(tableau, row)
		return true
	}
	for _, h := range goal.Hypotheses {
		row := make([]int, w)
		for i, v := range h {
			row[i] = id(v)
		}
		add(row)
	}
	goalAssign := map[string]int{}
	for v, i := range varID {
		goalAssign[v] = i
	}

	derived := func() bool {
		return intWitness(tableau, goal.Conclusion, goalAssign)
	}

	res := Result{}
	for {
		res.Rounds++
		if derived() {
			res.Verdict = Implied
			return res, nil
		}
		changed := false
		for _, t := range sigma {
			snapshot := len(tableau)
			assign := map[string]int{}
			var rec func(row int) bool // returns false to abort on budget
			rec = func(row int) bool {
				if row == len(t.Hypotheses) {
					if intWitness(tableau[:snapshot], t.Conclusion, assign) {
						return true
					}
					if len(tableau) >= max {
						return false
					}
					out := make([]int, w)
					local := map[string]int{}
					for i, v := range t.Conclusion {
						if b, ok := assign[v]; ok {
							out[i] = b
						} else if b, ok := local[v]; ok {
							out[i] = b
						} else {
							local[v] = fresh()
							out[i] = local[v]
						}
					}
					if add(out) {
						changed = true
					}
					return true
				}
			next:
				for ti := 0; ti < snapshot; ti++ {
					tu := tableau[ti]
					var bound []string
					for i, v := range t.Hypotheses[row] {
						if old, ok := assign[v]; ok {
							if old != tu[i] {
								for _, b := range bound {
									delete(assign, b)
								}
								bound = nil
								continue next
							}
						} else {
							assign[v] = tu[i]
							bound = append(bound, v)
						}
					}
					ok := rec(row + 1)
					for _, b := range bound {
						delete(assign, b)
					}
					if !ok {
						return false
					}
				}
				return true
			}
			if !rec(0) {
				res.Verdict = Unknown
				return res, nil
			}
		}
		if !changed {
			if derived() {
				res.Verdict = Implied
				return res, nil
			}
			res.Verdict = NotImplied
			res.Counterexample = export(db, goal.Rel, tableau)
			return res, nil
		}
	}
}

// intWitness is conclusionWitness over int-valued tableaus.
func intWitness(tableau [][]int, conclusion []string, assign map[string]int) bool {
	for _, tu := range tableau {
		local := map[string]int{}
		ok := true
		for i, v := range conclusion {
			if want, bound := assign[v]; bound {
				if tu[i] != want {
					ok = false
					break
				}
				continue
			}
			if prev, seen := local[v]; seen {
				if tu[i] != prev {
					ok = false
					break
				}
				continue
			}
			local[v] = tu[i]
		}
		if ok {
			return true
		}
	}
	return false
}

func rowKey(t []int) string {
	b := make([]byte, 0, len(t)*4)
	for _, v := range t {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func export(db *schema.Database, rel string, tableau [][]int) *data.Database {
	out := data.NewDatabase(db)
	for _, t := range tableau {
		row := make(data.Tuple, len(t))
		for i, v := range t {
			row[i] = data.Value(fmt.Sprintf("v%d", v))
		}
		out.MustRelation(rel).MustInsert(row)
	}
	return out
}
