package td

import (
	"math/rand"
	"testing"
	"testing/quick"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/emvd"
	"indfd/internal/schema"
)

func xyzDB() *schema.Database {
	return schema.MustDatabase(schema.MustScheme("R", "X", "Y", "Z"))
}

func TestValidate(t *testing.T) {
	db := xyzDB()
	good := New("R", [][]string{{"x", "y", "z"}}, []string{"x", "y", "z"})
	if err := good.Validate(db); err != nil {
		t.Errorf("Validate: %v", err)
	}
	bad := []TD{
		New("NOPE", [][]string{{"x", "y", "z"}}, []string{"x", "y", "z"}),
		New("R", nil, []string{"x", "y", "z"}),
		New("R", [][]string{{"x", "y"}}, []string{"x", "y", "z"}),
		New("R", [][]string{{"x", "y", "z"}}, []string{"x", "y"}),
	}
	for _, td := range bad {
		if err := td.Validate(db); err == nil {
			t.Errorf("expected error for %v", td)
		}
	}
	if good.String() == "" {
		t.Errorf("empty rendering")
	}
}

func TestSatisfiesBasic(t *testing.T) {
	db := xyzDB()
	d := data.NewDatabase(db)
	// The EMVD-shaped TD: rows (x,y1,z1),(x,y2,z2) require (x,y1,z2).
	td := New("R",
		[][]string{{"x", "y1", "z1"}, {"x", "y2", "z2"}},
		[]string{"x", "y1", "z2"},
	)
	d.MustInsert("R", data.Tuple{"a", "b", "c"}, data.Tuple{"a", "e", "f"})
	ok, err := Satisfies(d, td)
	if err != nil {
		t.Fatalf("Satisfies: %v", err)
	}
	if ok {
		t.Errorf("missing witness should fail")
	}
	d.MustInsert("R", data.Tuple{"a", "b", "f"}, data.Tuple{"a", "e", "c"})
	ok, _ = Satisfies(d, td)
	if !ok {
		t.Errorf("with witnesses the TD should hold")
	}
}

func TestSatisfiesExistentialConclusion(t *testing.T) {
	db := xyzDB()
	d := data.NewDatabase(db)
	// Conclusion variable w appears nowhere in the hypotheses: any Z value
	// witnesses.
	td := New("R",
		[][]string{{"x", "y", "z1"}},
		[]string{"x", "y", "w"},
	)
	d.MustInsert("R", data.Tuple{"a", "b", "c"})
	ok, err := Satisfies(d, td)
	if err != nil || !ok {
		t.Errorf("existential conclusion should hold: %v %v", ok, err)
	}
	// A repeated existential variable must take one consistent value.
	td2 := New("R",
		[][]string{{"x", "y", "z1"}},
		[]string{"w", "w", "z1"},
	)
	ok, _ = Satisfies(d, td2)
	if ok {
		t.Errorf("(w,w,c) requires a tuple with equal first two columns")
	}
	d.MustInsert("R", data.Tuple{"q", "q", "c"})
	ok, _ = Satisfies(d, td2)
	if !ok {
		t.Errorf("(q,q,c) should witness the repeated variable")
	}
}

// Property: the TD embedding of an EMVD agrees with native EMVD
// satisfaction on random relations.
func TestFromEMVDAgreesWithSatisfaction(t *testing.T) {
	ds := schema.MustDatabase(schema.MustScheme("R", "X", "Y", "Z", "W"))
	cands := []deps.EMVD{
		deps.NewEMVD("R", deps.Attrs("X"), deps.Attrs("Y"), deps.Attrs("Z")),
		deps.NewEMVD("R", deps.Attrs("X"), deps.Attrs("Y"), deps.Attrs("Z", "W")),
		deps.NewEMVD("R", nil, deps.Attrs("X"), deps.Attrs("Y")),
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := data.NewDatabase(ds)
		for i := 0; i < r.Intn(5); i++ {
			d.MustInsert("R", data.Tuple{
				data.Int(r.Intn(2)), data.Int(r.Intn(2)), data.Int(r.Intn(2)), data.Int(r.Intn(2)),
			})
		}
		for _, e := range cands {
			td, err := FromEMVD(ds, e)
			if err != nil {
				return false
			}
			got, err := Satisfies(d, td)
			if err != nil {
				return false
			}
			want, err := d.Satisfies(e)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// The Sagiv–Walecka family through the TD embedding: the TD chase reaches
// the same conclusion as the EMVD chase.
func TestImpliesMatchesEMVDChaseOnSagivWalecka(t *testing.T) {
	f, err := emvd.SagivWalecka(2)
	if err != nil {
		t.Fatal(err)
	}
	var sigma []TD
	for _, e := range f.Sigma {
		td, err := FromEMVD(f.DB, e)
		if err != nil {
			t.Fatal(err)
		}
		sigma = append(sigma, td)
	}
	goal, err := FromEMVD(f.DB, f.Goal)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Implies(f.DB, sigma, goal, Options{})
	if err != nil {
		t.Fatalf("Implies: %v", err)
	}
	if res.Verdict != Implied {
		t.Errorf("TD chase verdict %v, want implied (matches the EMVD chase)", res.Verdict)
	}
	// A single member does not imply the goal; the chase terminates with a
	// counterexample relation that the native checkers confirm.
	res, err = Implies(f.DB, sigma[:1], goal, Options{MaxTuples: 256})
	if err != nil {
		t.Fatalf("Implies: %v", err)
	}
	if res.Verdict == Implied {
		t.Errorf("single member should not imply the goal")
	}
	if res.Verdict == NotImplied {
		ok, err := Satisfies(res.Counterexample, sigma[0])
		if err != nil || !ok {
			t.Errorf("counterexample violates sigma[0]: %v %v", ok, err)
		}
		ok, err = Satisfies(res.Counterexample, goal)
		if err != nil || ok {
			t.Errorf("counterexample satisfies the goal: %v %v", ok, err)
		}
	}
}

func TestImpliesTrivialAndErrors(t *testing.T) {
	db := xyzDB()
	td := New("R", [][]string{{"x", "y", "z"}}, []string{"x", "y", "z"})
	res, err := Implies(db, nil, td, Options{})
	if err != nil {
		t.Fatalf("Implies: %v", err)
	}
	if res.Verdict != Implied {
		t.Errorf("a TD whose conclusion is a hypothesis row is trivially implied")
	}
	other := schema.MustDatabase(schema.MustScheme("S", "X", "Y", "Z"))
	_ = other
	cross := New("S", [][]string{{"x", "y", "z"}}, []string{"x", "y", "z"})
	if _, err := Implies(db, []TD{cross}, td, Options{}); err == nil {
		t.Errorf("sigma over a different relation should be rejected")
	}
	if _, err := Implies(db, nil, New("NOPE", [][]string{{"x"}}, []string{"x"}), Options{}); err == nil {
		t.Errorf("invalid goal should be rejected")
	}
}

func TestImpliesBudget(t *testing.T) {
	f, _ := emvd.SagivWalecka(3)
	var sigma []TD
	for _, e := range f.Sigma {
		td, _ := FromEMVD(f.DB, e)
		sigma = append(sigma, td)
	}
	goal, _ := FromEMVD(f.DB, f.Goal)
	res, err := Implies(f.DB, sigma, goal, Options{MaxTuples: 3})
	if err != nil {
		t.Fatalf("Implies: %v", err)
	}
	if res.Verdict == NotImplied {
		t.Errorf("tiny budget must not fabricate a NotImplied verdict")
	}
}
