package deps

import (
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	cases := []Dependency{
		NewFD("R", Attrs("A", "B"), Attrs("C")),
		NewFD("R", nil, Attrs("C")),
		NewIND("R", Attrs("A"), "S", Attrs("B")),
		NewRD("R", Attrs("A"), Attrs("B")),
		NewEMVD("R", Attrs("A"), Attrs("B"), Attrs("C")),
	}
	for _, d := range cases {
		b, err := MarshalJSON(d)
		if err != nil {
			t.Fatalf("MarshalJSON(%v): %v", d, err)
		}
		back, err := UnmarshalJSON(b)
		if err != nil {
			t.Fatalf("UnmarshalJSON(%s): %v", b, err)
		}
		if back.Key() != d.Key() {
			t.Errorf("round trip changed %v into %v", d, back)
		}
	}
}

func TestJSONSetRoundTrip(t *testing.T) {
	ds := []Dependency{
		NewFD("R", Attrs("A"), Attrs("B")),
		NewIND("R", Attrs("A"), "S", Attrs("B")),
	}
	b, err := MarshalSetJSON(ds)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSetJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Key() != ds[0].Key() || back[1].Key() != ds[1].Key() {
		t.Errorf("set round trip wrong: %v", back)
	}
}

func TestJSONErrors(t *testing.T) {
	if _, err := UnmarshalJSON([]byte(`{"kind":"XYZ"}`)); err == nil {
		t.Errorf("unknown kind should error")
	}
	if _, err := UnmarshalJSON([]byte(`{`)); err == nil {
		t.Errorf("malformed JSON should error")
	}
	if _, err := UnmarshalSetJSON([]byte(`[{"kind":"XYZ"}]`)); err == nil {
		t.Errorf("bad member should error")
	}
	if _, err := UnmarshalSetJSON([]byte(`{`)); err == nil {
		t.Errorf("malformed array should error")
	}
}
