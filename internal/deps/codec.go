package deps

import (
	"encoding/json"
	"fmt"

	"indfd/internal/schema"
)

// envelope is the JSON wire form of a dependency.
type envelope struct {
	Kind string   `json:"kind"`
	Rel  string   `json:"rel,omitempty"`
	LRel string   `json:"lrel,omitempty"`
	RRel string   `json:"rrel,omitempty"`
	X    []string `json:"x,omitempty"`
	Y    []string `json:"y,omitempty"`
	Z    []string `json:"z,omitempty"`
}

func toStrings(attrs []schema.Attribute) []string {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = string(a)
	}
	return out
}

func toAttrs(names []string) []schema.Attribute {
	out := make([]schema.Attribute, len(names))
	for i, n := range names {
		out[i] = schema.Attribute(n)
	}
	return out
}

// MarshalJSON encodes a dependency as a tagged JSON object, e.g.
// {"kind":"IND","lrel":"R","x":["A"],"rrel":"S","y":["B"]}.
func MarshalJSON(d Dependency) ([]byte, error) {
	var e envelope
	switch dd := d.(type) {
	case FD:
		e = envelope{Kind: "FD", Rel: dd.Rel, X: toStrings(dd.X), Y: toStrings(dd.Y)}
	case IND:
		e = envelope{Kind: "IND", LRel: dd.LRel, RRel: dd.RRel, X: toStrings(dd.X), Y: toStrings(dd.Y)}
	case RD:
		e = envelope{Kind: "RD", Rel: dd.Rel, X: toStrings(dd.X), Y: toStrings(dd.Y)}
	case EMVD:
		e = envelope{Kind: "EMVD", Rel: dd.Rel, X: toStrings(dd.X), Y: toStrings(dd.Y), Z: toStrings(dd.Z)}
	default:
		return nil, fmt.Errorf("deps: cannot marshal dependency kind %v", d.Kind())
	}
	return json.Marshal(e)
}

// UnmarshalJSON decodes a dependency from its tagged JSON object.
func UnmarshalJSON(b []byte) (Dependency, error) {
	var e envelope
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, err
	}
	switch e.Kind {
	case "FD":
		return NewFD(e.Rel, toAttrs(e.X), toAttrs(e.Y)), nil
	case "IND":
		return NewIND(e.LRel, toAttrs(e.X), e.RRel, toAttrs(e.Y)), nil
	case "RD":
		return NewRD(e.Rel, toAttrs(e.X), toAttrs(e.Y)), nil
	case "EMVD":
		return NewEMVD(e.Rel, toAttrs(e.X), toAttrs(e.Y), toAttrs(e.Z)), nil
	default:
		return nil, fmt.Errorf("deps: unknown dependency kind %q", e.Kind)
	}
}

// MarshalSetJSON encodes a list of dependencies as a JSON array.
func MarshalSetJSON(ds []Dependency) ([]byte, error) {
	items := make([]json.RawMessage, len(ds))
	for i, d := range ds {
		b, err := MarshalJSON(d)
		if err != nil {
			return nil, err
		}
		items[i] = b
	}
	return json.Marshal(items)
}

// UnmarshalSetJSON decodes a JSON array of dependencies.
func UnmarshalSetJSON(b []byte) ([]Dependency, error) {
	var items []json.RawMessage
	if err := json.Unmarshal(b, &items); err != nil {
		return nil, err
	}
	out := make([]Dependency, len(items))
	for i, raw := range items {
		d, err := UnmarshalJSON(raw)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}
