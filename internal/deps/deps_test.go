package deps

import (
	"strings"
	"testing"

	"indfd/internal/schema"
)

func testDB(t *testing.T) *schema.Database {
	t.Helper()
	return schema.MustDatabase(
		schema.MustScheme("R", "A", "B", "C"),
		schema.MustScheme("S", "D", "E"),
	)
}

func TestFDBasics(t *testing.T) {
	db := testDB(t)
	f := NewFD("R", Attrs("A"), Attrs("B", "C"))
	if f.Kind() != KindFD {
		t.Errorf("Kind = %v", f.Kind())
	}
	if got := f.String(); got != "R: A -> B,C" {
		t.Errorf("String = %q", got)
	}
	if err := f.Validate(db); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if f.Trivial() {
		t.Errorf("A -> B,C should not be trivial")
	}
	if !NewFD("R", Attrs("A", "B"), Attrs("A")).Trivial() {
		t.Errorf("A,B -> A should be trivial")
	}
	// Empty LHS is legal (Section 6 Case 1 uses R: ∅ -> A).
	empty := NewFD("R", nil, Attrs("A"))
	if err := empty.Validate(db); err != nil {
		t.Errorf("empty-LHS FD should validate: %v", err)
	}
	if empty.Trivial() {
		t.Errorf("∅ -> A should not be trivial")
	}
}

func TestFDKeyIsSetBased(t *testing.T) {
	a := NewFD("R", Attrs("A", "B"), Attrs("C"))
	b := NewFD("R", Attrs("B", "A"), Attrs("C"))
	if a.Key() != b.Key() {
		t.Errorf("FD keys should ignore side order: %q vs %q", a.Key(), b.Key())
	}
	c := NewFD("S", Attrs("A", "B"), Attrs("C"))
	if a.Key() == c.Key() {
		t.Errorf("FD keys must include the relation")
	}
}

func TestFDValidateErrors(t *testing.T) {
	db := testDB(t)
	bad := []FD{
		NewFD("T", Attrs("A"), Attrs("B")),      // unknown relation
		NewFD("R", Attrs("A"), nil),             // empty RHS
		NewFD("R", Attrs("A", "A"), Attrs("B")), // repeated attribute
		NewFD("R", Attrs("A"), Attrs("Z")),      // unknown attribute
	}
	for _, f := range bad {
		if err := f.Validate(db); err == nil {
			t.Errorf("Validate(%v): expected error", f)
		}
	}
}

func TestINDBasics(t *testing.T) {
	db := testDB(t)
	d := NewIND("R", Attrs("A", "B"), "S", Attrs("D", "E"))
	if d.Kind() != KindIND {
		t.Errorf("Kind = %v", d.Kind())
	}
	if d.Width() != 2 {
		t.Errorf("Width = %d", d.Width())
	}
	if got := d.String(); got != "R[A,B] <= S[D,E]" {
		t.Errorf("String = %q", got)
	}
	if err := d.Validate(db); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if d.Trivial() {
		t.Errorf("cross-relation IND should not be trivial")
	}
	if d.Typed() {
		t.Errorf("R[A,B] <= S[D,E] is not typed")
	}
	if !NewIND("R", Attrs("A", "B"), "R", Attrs("A", "B")).Trivial() {
		t.Errorf("R[A,B] <= R[A,B] should be trivial")
	}
	if NewIND("R", Attrs("A", "B"), "R", Attrs("B", "A")).Trivial() {
		t.Errorf("R[A,B] <= R[B,A] is NOT trivial")
	}
	if !NewIND("R", Attrs("A"), "S", Attrs("A")).Typed() {
		t.Errorf("R[A] <= S[A] is typed")
	}
}

func TestINDKeyPermutationInvariant(t *testing.T) {
	// IND2 says R[A,B] <= S[D,E] and R[B,A] <= S[E,D] are the same
	// sentence up to permutation; their keys must agree.
	a := NewIND("R", Attrs("A", "B"), "S", Attrs("D", "E"))
	b := NewIND("R", Attrs("B", "A"), "S", Attrs("E", "D"))
	if a.Key() != b.Key() {
		t.Errorf("IND keys should be permutation-invariant: %q vs %q", a.Key(), b.Key())
	}
	// But swapping only one side is a different sentence.
	c := NewIND("R", Attrs("A", "B"), "S", Attrs("E", "D"))
	if a.Key() == c.Key() {
		t.Errorf("IND keys must distinguish column pairings")
	}
}

func TestINDValidateErrors(t *testing.T) {
	db := testDB(t)
	bad := []IND{
		NewIND("T", Attrs("A"), "S", Attrs("D")),           // unknown left
		NewIND("R", Attrs("A"), "T", Attrs("D")),           // unknown right
		NewIND("R", nil, "S", nil),                         // empty
		NewIND("R", Attrs("A", "B"), "S", Attrs("D")),      // length mismatch
		NewIND("R", Attrs("A", "A"), "S", Attrs("D", "E")), // repeated attribute
		NewIND("R", Attrs("A"), "S", Attrs("Z")),           // unknown attribute
	}
	for _, d := range bad {
		if err := d.Validate(db); err == nil {
			t.Errorf("Validate(%v): expected error", d)
		}
	}
}

func TestRDBasics(t *testing.T) {
	db := testDB(t)
	r := NewRD("R", Attrs("A"), Attrs("B"))
	if r.Kind() != KindRD {
		t.Errorf("Kind = %v", r.Kind())
	}
	if got := r.String(); got != "R[A == B]" {
		t.Errorf("String = %q", got)
	}
	if err := r.Validate(db); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if r.Trivial() {
		t.Errorf("R[A == B] should not be trivial")
	}
	if !NewRD("R", Attrs("A", "B"), Attrs("A", "B")).Trivial() {
		t.Errorf("R[A,B == A,B] should be trivial")
	}
	u := NewRD("R", Attrs("A", "B"), Attrs("B", "C")).Unary()
	if len(u) != 2 || u[0].String() != "R[A == B]" || u[1].String() != "R[B == C]" {
		t.Errorf("Unary = %v", u)
	}
}

func TestRDKeySymmetric(t *testing.T) {
	a := NewRD("R", Attrs("A"), Attrs("B"))
	b := NewRD("R", Attrs("B"), Attrs("A"))
	if a.Key() != b.Key() {
		t.Errorf("RD keys should be symmetric: %q vs %q", a.Key(), b.Key())
	}
	// Multi-component RDs are order-insensitive too.
	c := NewRD("R", Attrs("A", "B"), Attrs("B", "C"))
	d := NewRD("R", Attrs("C", "B"), Attrs("B", "A"))
	if c.Key() != d.Key() {
		t.Errorf("multi-component RD keys should normalize: %q vs %q", c.Key(), d.Key())
	}
}

func TestEMVDBasics(t *testing.T) {
	db := testDB(t)
	e := NewEMVD("R", Attrs("A"), Attrs("B"), Attrs("C"))
	if e.Kind() != KindEMVD {
		t.Errorf("Kind = %v", e.Kind())
	}
	if got := e.String(); got != "R: A ->> B | C" {
		t.Errorf("String = %q", got)
	}
	if err := e.Validate(db); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if e.Trivial() {
		t.Errorf("A ->> B | C should not be trivial")
	}
	if !NewEMVD("R", Attrs("A", "B"), Attrs("B"), Attrs("C")).Trivial() {
		t.Errorf("EMVD with Y ⊆ X should be trivial")
	}
	if NewEMVD("R", Attrs("A"), Attrs("B"), Attrs("B")).Validate(db) == nil {
		t.Errorf("EMVD with overlapping Y,Z should not validate")
	}
}

func TestEMVDKeySymmetric(t *testing.T) {
	a := NewEMVD("R", Attrs("A"), Attrs("B"), Attrs("C"))
	b := NewEMVD("R", Attrs("A"), Attrs("C"), Attrs("B"))
	if a.Key() != b.Key() {
		t.Errorf("EMVD keys should treat Y|Z symmetrically")
	}
}

func TestSet(t *testing.T) {
	f := NewFD("R", Attrs("A"), Attrs("B"))
	i := NewIND("R", Attrs("A"), "S", Attrs("D"))
	r := NewRD("R", Attrs("A"), Attrs("B"))
	s := NewSet(f, i, r, f) // duplicate f dropped
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Contains(f) || !s.Contains(i) || !s.Contains(r) {
		t.Errorf("Contains misbehaves")
	}
	if len(s.FDs()) != 1 || len(s.INDs()) != 1 || len(s.RDs()) != 1 {
		t.Errorf("kind accessors misbehave")
	}
	s.Remove(i)
	if s.Contains(i) || s.Len() != 2 {
		t.Errorf("Remove misbehaves")
	}
	s.Remove(i) // removing twice is a no-op
	if s.Len() != 2 {
		t.Errorf("double Remove changed the set")
	}
	m := s.Minus(f)
	if m.Contains(f) || !m.Contains(r) || s.Contains(f) == false {
		t.Errorf("Minus should not mutate the receiver")
	}
}

func TestSetValidateAll(t *testing.T) {
	db := testDB(t)
	good := NewSet(NewFD("R", Attrs("A"), Attrs("B")))
	if err := good.ValidateAll(db); err != nil {
		t.Errorf("ValidateAll(good): %v", err)
	}
	bad := NewSet(NewFD("T", Attrs("A"), Attrs("B")))
	if err := bad.ValidateAll(db); err == nil {
		t.Errorf("ValidateAll(bad): expected error")
	}
}

func TestAttrs(t *testing.T) {
	got := Attrs("A", "B")
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("Attrs = %v", got)
	}
}

func TestKeysDistinguishKinds(t *testing.T) {
	// An FD, RD and IND over the same attributes must have distinct keys.
	keys := []string{
		NewFD("R", Attrs("A"), Attrs("B")).Key(),
		NewRD("R", Attrs("A"), Attrs("B")).Key(),
		NewIND("R", Attrs("A"), "R", Attrs("B")).Key(),
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[i] == keys[j] {
				t.Errorf("keys collide: %q", keys[i])
			}
		}
	}
	for _, k := range keys {
		if !strings.Contains(k, "|") {
			t.Errorf("suspicious key %q", k)
		}
	}
}
