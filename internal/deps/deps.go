// Package deps defines the dependency classes studied in the paper:
// functional dependencies (FDs), inclusion dependencies (INDs), repeating
// dependencies (RDs, Section 4), and embedded multivalued dependencies
// (EMVDs, Section 5). Each dependency knows how to validate itself against
// a database scheme, whether it is trivial (a tautology), and has a
// canonical string key for use in sets.
package deps

import (
	"fmt"
	"strings"

	"indfd/internal/schema"
)

// Kind discriminates the dependency classes.
type Kind int

const (
	// KindFD is a functional dependency R: X -> Y.
	KindFD Kind = iota
	// KindIND is an inclusion dependency R[X] ⊆ S[Y].
	KindIND
	// KindRD is a repeating dependency R[X = Y].
	KindRD
	// KindEMVD is an embedded multivalued dependency R: X ->> Y | Z.
	KindEMVD
)

// String returns the conventional abbreviation of the kind.
func (k Kind) String() string {
	switch k {
	case KindFD:
		return "FD"
	case KindIND:
		return "IND"
	case KindRD:
		return "RD"
	case KindEMVD:
		return "EMVD"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Dependency is the common interface of all dependency classes.
type Dependency interface {
	// Kind returns the dependency class.
	Kind() Kind
	// String renders the dependency in the repository's text syntax.
	String() string
	// Key returns a canonical encoding usable as a map key: two
	// dependencies are the same sentence iff their keys are equal.
	Key() string
	// Validate checks the dependency is well formed over the database
	// scheme (relations exist, attributes exist, sides are distinct
	// sequences of the right lengths).
	Validate(db *schema.Database) error
	// Trivial reports whether the dependency holds in every database over
	// every scheme it is well formed for (a tautology).
	Trivial() bool
}

// FD is a functional dependency R: X -> Y over a single relation scheme.
// X and Y are sequences of distinct attributes; X may be empty, in which
// case the FD asserts that the Y entries are constant over the relation
// (the paper uses such FDs in Section 6, Case 1).
type FD struct {
	Rel string
	X   []schema.Attribute
	Y   []schema.Attribute
}

// NewFD builds the FD rel: x -> y.
func NewFD(rel string, x, y []schema.Attribute) FD {
	return FD{Rel: rel, X: append([]schema.Attribute(nil), x...), Y: append([]schema.Attribute(nil), y...)}
}

// Kind returns KindFD.
func (f FD) Kind() Kind { return KindFD }

// String renders the FD as "R: A,B -> C".
func (f FD) String() string {
	return fmt.Sprintf("%s: %s -> %s", f.Rel, schema.JoinAttrs(f.X), schema.JoinAttrs(f.Y))
}

// Key returns a canonical key. FD satisfaction depends only on the *sets*
// of attributes on each side, so the key sorts both sides.
func (f FD) Key() string {
	return "FD|" + f.Rel + "|" + schema.JoinAttrs(schema.SortedSet(f.X)) + "|" + schema.JoinAttrs(schema.SortedSet(f.Y))
}

// Validate checks the FD against the database scheme.
func (f FD) Validate(db *schema.Database) error {
	s, ok := db.Scheme(f.Rel)
	if !ok {
		return fmt.Errorf("deps: FD %s: unknown relation %s", f, f.Rel)
	}
	if len(f.Y) == 0 {
		return fmt.Errorf("deps: FD %s: empty right-hand side", f)
	}
	if !schema.Distinct(f.X) || !schema.Distinct(f.Y) {
		return fmt.Errorf("deps: FD %s: sides must be sequences of distinct attributes", f)
	}
	if !s.HasAll(f.X) || !s.HasAll(f.Y) {
		return fmt.Errorf("deps: FD %s: attribute not in scheme %s", f, s)
	}
	return nil
}

// Trivial reports whether the FD is a tautology: every attribute of Y
// already occurs in X.
func (f FD) Trivial() bool { return schema.SubsetOf(f.Y, f.X) }

// IND is an inclusion dependency R[X] ⊆ S[Y], where X and Y are sequences
// of distinct attributes of equal length (Section 2).
type IND struct {
	LRel string
	X    []schema.Attribute
	RRel string
	Y    []schema.Attribute
}

// NewIND builds the IND lrel[x] ⊆ rrel[y].
func NewIND(lrel string, x []schema.Attribute, rrel string, y []schema.Attribute) IND {
	return IND{
		LRel: lrel, X: append([]schema.Attribute(nil), x...),
		RRel: rrel, Y: append([]schema.Attribute(nil), y...),
	}
}

// Kind returns KindIND.
func (d IND) Kind() Kind { return KindIND }

// Width returns the common length of the two sides. The paper calls an IND
// of width at most k "k-ary".
func (d IND) Width() int { return len(d.X) }

// String renders the IND as "R[A,B] <= S[C,D]".
func (d IND) String() string {
	return fmt.Sprintf("%s[%s] <= %s[%s]", d.LRel, schema.JoinAttrs(d.X), d.RRel, schema.JoinAttrs(d.Y))
}

// Key returns a canonical key. IND satisfaction is invariant under
// simultaneous permutation of both sides (IND2), so the key normalizes by
// sorting the paired columns.
func (d IND) Key() string {
	type pair struct{ x, y schema.Attribute }
	pairs := make([]pair, len(d.X))
	for i := range d.X {
		pairs[i] = pair{d.X[i], d.Y[i]}
	}
	// Insertion sort keeps this allocation-light; widths are small.
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && (pairs[j].x < pairs[j-1].x || (pairs[j].x == pairs[j-1].x && pairs[j].y < pairs[j-1].y)); j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	var b strings.Builder
	b.WriteString("IND|")
	b.WriteString(d.LRel)
	b.WriteString("|")
	b.WriteString(d.RRel)
	for _, p := range pairs {
		b.WriteString("|")
		b.WriteString(string(p.x))
		b.WriteString(">")
		b.WriteString(string(p.y))
	}
	return b.String()
}

// Validate checks the IND against the database scheme.
func (d IND) Validate(db *schema.Database) error {
	ls, ok := db.Scheme(d.LRel)
	if !ok {
		return fmt.Errorf("deps: IND %s: unknown relation %s", d, d.LRel)
	}
	rs, ok := db.Scheme(d.RRel)
	if !ok {
		return fmt.Errorf("deps: IND %s: unknown relation %s", d, d.RRel)
	}
	if len(d.X) == 0 {
		return fmt.Errorf("deps: IND %s: empty attribute sequences", d)
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("deps: IND %s: sides have different lengths", d)
	}
	if !schema.Distinct(d.X) || !schema.Distinct(d.Y) {
		return fmt.Errorf("deps: IND %s: sides must be sequences of distinct attributes", d)
	}
	if !ls.HasAll(d.X) {
		return fmt.Errorf("deps: IND %s: attribute not in scheme %s", d, ls)
	}
	if !rs.HasAll(d.Y) {
		return fmt.Errorf("deps: IND %s: attribute not in scheme %s", d, rs)
	}
	return nil
}

// Trivial reports whether the IND is an instance of IND1 (reflexivity):
// R[X] ⊆ R[X] up to simultaneous permutation of both sides.
func (d IND) Trivial() bool {
	if d.LRel != d.RRel {
		return false
	}
	for i := range d.X {
		if d.X[i] != d.Y[i] {
			return false
		}
	}
	return true
}

// Typed reports whether the IND has the form R[X] ⊆ S[X]: identical
// attribute sequences on both sides. Section 3 observes that the decision
// problem restricted to typed INDs is solvable in polynomial time.
func (d IND) Typed() bool { return schema.EqualSeq(d.X, d.Y) }

// RD is a repeating dependency R[X = Y] (Section 4): in each tuple t of
// the R relation, t[X] = t[Y] componentwise. X and Y have equal length.
type RD struct {
	Rel string
	X   []schema.Attribute
	Y   []schema.Attribute
}

// NewRD builds the RD rel[x = y].
func NewRD(rel string, x, y []schema.Attribute) RD {
	return RD{Rel: rel, X: append([]schema.Attribute(nil), x...), Y: append([]schema.Attribute(nil), y...)}
}

// Kind returns KindRD.
func (r RD) Kind() Kind { return KindRD }

// String renders the RD as "R[A,B == C,D]".
func (r RD) String() string {
	return fmt.Sprintf("%s[%s == %s]", r.Rel, schema.JoinAttrs(r.X), schema.JoinAttrs(r.Y))
}

// Key returns a canonical key. The RD R[X=Y] is equivalent to the set of
// unary RDs {R[Xi=Yi]} (Section 4), and R[A=B] is equivalent to R[B=A], so
// the key sorts the unordered component pairs.
func (r RD) Key() string {
	comps := make([]string, 0, len(r.X))
	for i := range r.X {
		a, b := string(r.X[i]), string(r.Y[i])
		if b < a {
			a, b = b, a
		}
		comps = append(comps, a+"="+b)
	}
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && comps[j] < comps[j-1]; j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	return "RD|" + r.Rel + "|" + strings.Join(comps, "|")
}

// Validate checks the RD against the database scheme.
func (r RD) Validate(db *schema.Database) error {
	s, ok := db.Scheme(r.Rel)
	if !ok {
		return fmt.Errorf("deps: RD %s: unknown relation %s", r, r.Rel)
	}
	if len(r.X) == 0 {
		return fmt.Errorf("deps: RD %s: empty attribute sequences", r)
	}
	if len(r.X) != len(r.Y) {
		return fmt.Errorf("deps: RD %s: sides have different lengths", r)
	}
	if !s.HasAll(r.X) || !s.HasAll(r.Y) {
		return fmt.Errorf("deps: RD %s: attribute not in scheme %s", r, s)
	}
	return nil
}

// Trivial reports whether the RD is a tautology: X and Y are equal
// componentwise (the paper calls R[X=Y] nontrivial when X ≠ Y).
func (r RD) Trivial() bool { return schema.EqualSeq(r.X, r.Y) }

// Unary returns the equivalent set of unary RDs {R[Xi = Yi]}.
func (r RD) Unary() []RD {
	out := make([]RD, len(r.X))
	for i := range r.X {
		out[i] = RD{Rel: r.Rel, X: []schema.Attribute{r.X[i]}, Y: []schema.Attribute{r.Y[i]}}
	}
	return out
}

// EMVD is an embedded multivalued dependency X ->> Y | Z over relation Rel
// (Section 5). X, Y, Z are attribute sets with Y and Z disjoint. A relation
// obeys it if whenever t1[X] = t2[X] there is a tuple t3 with
// t3[XY] = t1[XY] and t3[XZ] = t2[XZ].
type EMVD struct {
	Rel string
	X   []schema.Attribute
	Y   []schema.Attribute
	Z   []schema.Attribute
}

// NewEMVD builds the EMVD rel: x ->> y | z.
func NewEMVD(rel string, x, y, z []schema.Attribute) EMVD {
	return EMVD{
		Rel: rel,
		X:   append([]schema.Attribute(nil), x...),
		Y:   append([]schema.Attribute(nil), y...),
		Z:   append([]schema.Attribute(nil), z...),
	}
}

// Kind returns KindEMVD.
func (e EMVD) Kind() Kind { return KindEMVD }

// String renders the EMVD as "R: A ->> B | C".
func (e EMVD) String() string {
	return fmt.Sprintf("%s: %s ->> %s | %s", e.Rel, schema.JoinAttrs(e.X), schema.JoinAttrs(e.Y), schema.JoinAttrs(e.Z))
}

// Key returns a canonical key. EMVD satisfaction depends on the attribute
// sets only, and X ->> Y | Z is equivalent to X ->> Z | Y, so the key
// sorts each side and orders the {Y, Z} pair.
func (e EMVD) Key() string {
	x := schema.JoinAttrs(schema.SortedSet(e.X))
	y := schema.JoinAttrs(schema.SortedSet(e.Y))
	z := schema.JoinAttrs(schema.SortedSet(e.Z))
	if z < y {
		y, z = z, y
	}
	return "EMVD|" + e.Rel + "|" + x + "|" + y + "|" + z
}

// Validate checks the EMVD against the database scheme.
func (e EMVD) Validate(db *schema.Database) error {
	s, ok := db.Scheme(e.Rel)
	if !ok {
		return fmt.Errorf("deps: EMVD %s: unknown relation %s", e, e.Rel)
	}
	if len(e.Y) == 0 || len(e.Z) == 0 {
		return fmt.Errorf("deps: EMVD %s: Y and Z must be nonempty", e)
	}
	if !schema.Distinct(e.X) || !schema.Distinct(e.Y) || !schema.Distinct(e.Z) {
		return fmt.Errorf("deps: EMVD %s: sides must be sequences of distinct attributes", e)
	}
	for _, y := range e.Y {
		for _, z := range e.Z {
			if y == z {
				return fmt.Errorf("deps: EMVD %s: Y and Z must be disjoint", e)
			}
		}
	}
	if !s.HasAll(e.X) || !s.HasAll(e.Y) || !s.HasAll(e.Z) {
		return fmt.Errorf("deps: EMVD %s: attribute not in scheme %s", e, s)
	}
	return nil
}

// Trivial reports whether the EMVD is a tautology. Y ⊆ X or Z ⊆ X
// suffices: the witness tuple t3 can be taken to be t2 or t1 respectively.
func (e EMVD) Trivial() bool {
	return schema.SubsetOf(e.Y, e.X) || schema.SubsetOf(e.Z, e.X)
}

// Set is an insertion-ordered set of dependencies keyed by canonical key.
type Set struct {
	order []Dependency
	keys  map[string]bool
}

// NewSet builds a set from the given dependencies, dropping duplicates.
func NewSet(ds ...Dependency) *Set {
	s := &Set{keys: make(map[string]bool)}
	s.Add(ds...)
	return s
}

// Add inserts dependencies, ignoring ones already present.
func (s *Set) Add(ds ...Dependency) {
	for _, d := range ds {
		k := d.Key()
		if s.keys[k] {
			continue
		}
		s.keys[k] = true
		s.order = append(s.order, d)
	}
}

// Remove deletes the dependency with the same canonical key, if present.
func (s *Set) Remove(d Dependency) {
	k := d.Key()
	if !s.keys[k] {
		return
	}
	delete(s.keys, k)
	for i, e := range s.order {
		if e.Key() == k {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Contains reports whether the set holds a dependency with the same key.
func (s *Set) Contains(d Dependency) bool { return s.keys[d.Key()] }

// Len returns the number of dependencies in the set.
func (s *Set) Len() int { return len(s.order) }

// All returns the dependencies in insertion order. The caller must not
// modify the returned slice.
func (s *Set) All() []Dependency { return s.order }

// Minus returns a new set with the given dependencies removed.
func (s *Set) Minus(ds ...Dependency) *Set {
	out := NewSet(s.order...)
	for _, d := range ds {
		out.Remove(d)
	}
	return out
}

// FDs returns the FDs of the set in insertion order.
func (s *Set) FDs() []FD {
	var out []FD
	for _, d := range s.order {
		if f, ok := d.(FD); ok {
			out = append(out, f)
		}
	}
	return out
}

// INDs returns the INDs of the set in insertion order.
func (s *Set) INDs() []IND {
	var out []IND
	for _, d := range s.order {
		if i, ok := d.(IND); ok {
			out = append(out, i)
		}
	}
	return out
}

// RDs returns the RDs of the set in insertion order.
func (s *Set) RDs() []RD {
	var out []RD
	for _, d := range s.order {
		if r, ok := d.(RD); ok {
			out = append(out, r)
		}
	}
	return out
}

// ValidateAll validates every dependency in the set against db.
func (s *Set) ValidateAll(db *schema.Database) error {
	for _, d := range s.order {
		if err := d.Validate(db); err != nil {
			return err
		}
	}
	return nil
}

// Attrs is a convenience constructor turning strings into an attribute
// sequence.
func Attrs(names ...string) []schema.Attribute {
	out := make([]schema.Attribute, len(names))
	for i, n := range names {
		out[i] = schema.Attribute(n)
	}
	return out
}
