package slo

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	clauses, err := Parse("p99<25ms, errs<0.1%,mean<1s")
	if err != nil {
		t.Fatal(err)
	}
	if len(clauses) != 3 {
		t.Fatalf("clauses = %d, want 3", len(clauses))
	}
	if clauses[0].Metric != "p99" || clauses[0].BoundUS != 25_000 {
		t.Errorf("clause 0 = %+v", clauses[0])
	}
	if clauses[1].Metric != "errs" || clauses[1].BoundRate != 0.001 || !clauses[1].IsErrs() {
		t.Errorf("clause 1 = %+v", clauses[1])
	}
	if clauses[2].BoundUS != 1_000_000 {
		t.Errorf("clause 2 = %+v", clauses[2])
	}
	if c, err := Parse("  "); err != nil || c != nil {
		t.Errorf("blank SLO = %v, %v", c, err)
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"p99=25ms",          // no comparator
		"p42<1ms",           // unknown quantile
		"errs<0.1",          // errs without %
		"p99<fast",          // not a duration
		"p99{route=}<5ms",   // empty selector value
		"p99{route<5ms",     // unclosed selector
		"p99{}<5ms",         // empty selector
		"p99{route}<5ms",    // selector term without =
		"<5ms",              // no metric
		"p99<25ms,,p50<1ms", // empty term in a list
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestParseSelector(t *testing.T) {
	c, err := ParseClause("p99{route=/v1/implies}<5ms")
	if err != nil {
		t.Fatal(err)
	}
	if c.Metric != "p99" || c.BoundUS != 5_000 {
		t.Errorf("clause = %+v", c)
	}
	if c.Labels["route"] != "/v1/implies" {
		t.Errorf("labels = %v", c.Labels)
	}
	if c.Text != "p99{route=/v1/implies}<5ms" {
		t.Errorf("text = %q", c.Text)
	}
}

func TestBound(t *testing.T) {
	c, _ := ParseClause("p99<25ms")
	if got := c.Bound(); got != "25ms" {
		t.Errorf("latency bound = %q", got)
	}
	c, _ = ParseClause("errs<0.1%")
	if got := c.Bound(); !strings.Contains(got, "0.1") || !strings.HasSuffix(got, "%") {
		t.Errorf("errs bound = %q", got)
	}
}
