// Package slo is the shared grammar for service-level-objective
// clauses: the "p99<25ms,errs<0.1%" terms cmd/loadgen gates CI on and
// the tsdb watchdog evaluates continuously inside depserve. One parser
// serves both so an SLO written for the offline gate can be handed to
// -alert-rules verbatim and mean the same thing.
//
// A clause is metric[{label=value,...}]<bound:
//
//	p99<25ms                   overall p99 latency under 25ms
//	p99{route=/v1/implies}<5ms one route's p99 under 5ms
//	errs<0.1%                  error rate under 0.1%
//
// Latency metrics (p50, p90, p95, p99, mean, max) bound a
// time.Duration; errs bounds a percentage of failed requests. Clause
// lists are comma-separated; selectors, when present, narrow the
// metric to one labeled series (the watchdog resolves them against the
// per-route histograms; loadgen, which only aggregates overall,
// rejects them).
package slo

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Clause is one parsed metric<bound term.
type Clause struct {
	// Metric is the lowercased metric name: p50, p90, p95, p99, mean,
	// max, or errs.
	Metric string
	// Labels is the optional {key=value,...} selector, nil when absent.
	Labels map[string]string
	// BoundUS is the latency bound in microseconds (latency metrics).
	BoundUS int64
	// BoundRate is the error-rate bound as a fraction (errs; 0.001 ==
	// 0.1%).
	BoundRate float64
	// Text is the clause as written, for reports and alert messages.
	Text string
}

// IsErrs reports whether the clause bounds the error rate rather than
// a latency quantile.
func (c Clause) IsErrs() bool { return c.Metric == "errs" }

// Bound renders the clause's bound for messages: a duration for
// latency clauses, a percentage for errs.
func (c Clause) Bound() string {
	if c.IsErrs() {
		return fmt.Sprintf("%g%%", c.BoundRate*100)
	}
	return (time.Duration(c.BoundUS) * time.Microsecond).String()
}

// latencyMetrics is the quantile/aggregate vocabulary.
var latencyMetrics = map[string]bool{
	"p50": true, "p90": true, "p95": true, "p99": true,
	"mean": true, "max": true,
}

// Parse parses a comma-separated clause list ("p99<25ms,errs<0.1%").
// An empty or blank string parses to nil, no error.
func Parse(s string) ([]Clause, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var clauses []Clause
	for _, term := range strings.Split(s, ",") {
		c, err := ParseClause(term)
		if err != nil {
			return nil, err
		}
		clauses = append(clauses, c)
	}
	return clauses, nil
}

// ParseClause parses one metric[{selector}]<bound term.
func ParseClause(term string) (Clause, error) {
	term = strings.TrimSpace(term)
	head, bound, ok := strings.Cut(term, "<")
	if !ok {
		return Clause{}, fmt.Errorf("SLO clause %q: want metric<bound", term)
	}
	head = strings.TrimSpace(head)
	bound = strings.TrimSpace(bound)
	c := Clause{Text: term}
	if i := strings.IndexByte(head, '{'); i >= 0 {
		sel := head[i:]
		head = head[:i]
		labels, err := parseSelector(term, sel)
		if err != nil {
			return Clause{}, err
		}
		c.Labels = labels
	}
	c.Metric = strings.ToLower(strings.TrimSpace(head))
	switch {
	case latencyMetrics[c.Metric]:
		d, err := time.ParseDuration(bound)
		if err != nil {
			return Clause{}, fmt.Errorf("SLO clause %q: %v", term, err)
		}
		c.BoundUS = d.Microseconds()
	case c.Metric == "errs":
		pct, ok := strings.CutSuffix(bound, "%")
		if !ok {
			return Clause{}, fmt.Errorf("SLO clause %q: errs bound must be a percentage like 0.1%%", term)
		}
		f, err := strconv.ParseFloat(pct, 64)
		if err != nil {
			return Clause{}, fmt.Errorf("SLO clause %q: %v", term, err)
		}
		c.BoundRate = f / 100
	default:
		return Clause{}, fmt.Errorf("SLO clause %q: unknown metric %q (want p50/p90/p95/p99/mean/max/errs)", term, c.Metric)
	}
	return c, nil
}

// parseSelector parses a "{key=value,...}" block. Values run to the
// next comma or closing brace; quoting is not needed because route
// patterns contain neither.
func parseSelector(term, sel string) (map[string]string, error) {
	body, ok := strings.CutSuffix(strings.TrimPrefix(sel, "{"), "}")
	if !ok {
		return nil, fmt.Errorf("SLO clause %q: unclosed selector", term)
	}
	labels := make(map[string]string)
	for _, pair := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(pair, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("SLO clause %q: selector term %q: want key=value", term, pair)
		}
		labels[k] = v
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("SLO clause %q: empty selector", term)
	}
	return labels, nil
}
