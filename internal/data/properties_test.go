package data

import (
	"math/rand"
	"testing"
	"testing/quick"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

// Property: projection is idempotent as a set operation and composes —
// projecting on X then reading column A equals projecting on A directly.
func TestProjectionComposition(t *testing.T) {
	ds := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := NewDatabase(ds)
		rel := db.MustRelation("R")
		for i := 0; i < r.Intn(6); i++ {
			rel.MustInsert(Tuple{Int(r.Intn(3)), Int(r.Intn(3)), Int(r.Intn(3))})
		}
		ab, err := rel.Project(deps.Attrs("A", "B"))
		if err != nil {
			return false
		}
		a, err := rel.Project(deps.Attrs("A"))
		if err != nil {
			return false
		}
		// The A-values of the AB projection are exactly the A projection.
		set := map[Value]bool{}
		for _, t := range ab {
			set[t[0]] = true
		}
		if len(set) != len(a) {
			return false
		}
		for _, t := range a {
			if !set[t[0]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: IND satisfaction is invariant under simultaneous permutation
// of both sides (the semantic content of IND2), and FD satisfaction under
// permutation of either side.
func TestSatisfactionPermutationInvariance(t *testing.T) {
	ds := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := NewDatabase(ds)
		for _, rel := range []string{"R", "S"} {
			for i := 0; i < r.Intn(5); i++ {
				db.MustInsert(rel, Tuple{Int(r.Intn(3)), Int(r.Intn(3))})
			}
		}
		ind1 := deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("C", "D"))
		ind2 := deps.NewIND("R", deps.Attrs("B", "A"), "S", deps.Attrs("D", "C"))
		s1, err := db.Satisfies(ind1)
		if err != nil {
			return false
		}
		s2, err := db.Satisfies(ind2)
		if err != nil {
			return false
		}
		if s1 != s2 {
			return false
		}
		fd1 := deps.NewFD("R", deps.Attrs("A", "B"), deps.Attrs("A"))
		fd2 := deps.NewFD("R", deps.Attrs("B", "A"), deps.Attrs("A"))
		t1, _ := db.Satisfies(fd1)
		t2, _ := db.Satisfies(fd2)
		return t1 == t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: satisfaction is monotone under tuple REMOVAL for FDs and RDs
// (fewer tuples cannot create a violation), and an IND out of a shrinking
// left side stays satisfied when the right side is untouched.
func TestSatisfactionMonotonicity(t *testing.T) {
	ds := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		full := NewDatabase(ds)
		var rTuples []Tuple
		for i := 0; i < 1+r.Intn(5); i++ {
			t := Tuple{Int(r.Intn(3)), Int(r.Intn(3))}
			full.MustInsert("R", t)
			rTuples = append(rTuples, t)
		}
		for i := 0; i < r.Intn(4); i++ {
			full.MustInsert("S", Tuple{Int(r.Intn(3)), Int(r.Intn(3))})
		}
		smaller := NewDatabase(ds)
		for _, t := range rTuples {
			if r.Intn(2) == 0 {
				smaller.MustInsert("R", t)
			}
		}
		sRel, _ := full.Relation("S")
		for _, t := range sRel.Tuples() {
			smaller.MustInsert("S", t)
		}
		checks := []deps.Dependency{
			deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
			deps.NewRD("R", deps.Attrs("A"), deps.Attrs("B")),
			deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("C")),
		}
		for _, d := range checks {
			fullSat, err := full.Satisfies(d)
			if err != nil {
				return false
			}
			smallSat, err := smaller.Satisfies(d)
			if err != nil {
				return false
			}
			if fullSat && !smallSat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
