package data

import (
	"strings"
	"testing"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

func twoRelDB() *Database {
	ds := schema.MustDatabase(
		schema.MustScheme("R", "A", "B", "C"),
		schema.MustScheme("S", "D", "E"),
	)
	return NewDatabase(ds)
}

func T(vals ...string) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = Value(v)
	}
	return t
}

func TestInsertAndContains(t *testing.T) {
	d := twoRelDB()
	r := d.MustRelation("R")
	added, err := r.Insert(T("1", "2", "3"))
	if err != nil || !added {
		t.Fatalf("Insert: %v %v", added, err)
	}
	added, err = r.Insert(T("1", "2", "3"))
	if err != nil || added {
		t.Fatalf("duplicate Insert should be a no-op: %v %v", added, err)
	}
	if r.Len() != 1 || !r.Contains(T("1", "2", "3")) {
		t.Errorf("relation state wrong")
	}
	if _, err := r.Insert(T("1", "2")); err == nil {
		t.Errorf("wrong-width insert should error")
	}
	if _, err := r.Insert(Tuple{Value("a\x00b"), "2", "3"}); err == nil {
		t.Errorf("reserved byte should be rejected")
	}
	if _, err := d.Insert("Nope", T("1")); err == nil {
		t.Errorf("insert into unknown relation should error")
	}
}

func TestProject(t *testing.T) {
	d := twoRelDB()
	r := d.MustRelation("R")
	r.MustInsert(T("1", "2", "3"), T("1", "2", "4"), T("5", "2", "3"))
	got, err := r.Project(deps.Attrs("B", "A"))
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	want := map[string]bool{"(2,1)": true, "(2,5)": true}
	if len(got) != 2 {
		t.Fatalf("Project returned %d tuples: %v", len(got), got)
	}
	for _, p := range got {
		if !want[p.String()] {
			t.Errorf("unexpected projection %v", p)
		}
	}
	if _, err := r.Project(deps.Attrs("Z")); err == nil {
		t.Errorf("projecting unknown attribute should error")
	}
}

func TestSatisfiesFD(t *testing.T) {
	d := twoRelDB()
	d.MustInsert("R", T("1", "2", "3"), T("1", "2", "4"))
	ok, err := d.Satisfies(deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")))
	if err != nil || !ok {
		t.Errorf("A -> B should hold: %v %v", ok, err)
	}
	ok, err = d.Satisfies(deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C")))
	if err != nil || ok {
		t.Errorf("A -> C should fail: %v %v", ok, err)
	}
	// Empty LHS: constant column.
	ok, _ = d.Satisfies(deps.NewFD("R", nil, deps.Attrs("B")))
	if !ok {
		t.Errorf("∅ -> B should hold (B constant)")
	}
	ok, _ = d.Satisfies(deps.NewFD("R", nil, deps.Attrs("C")))
	if ok {
		t.Errorf("∅ -> C should fail (C varies)")
	}
}

func TestSatisfiesIND(t *testing.T) {
	d := twoRelDB()
	d.MustInsert("R", T("1", "2", "3"))
	d.MustInsert("S", T("1", "2"), T("9", "9"))
	ok, err := d.Satisfies(deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("D", "E")))
	if err != nil || !ok {
		t.Errorf("R[A,B] <= S[D,E] should hold: %v %v", ok, err)
	}
	ok, _ = d.Satisfies(deps.NewIND("R", deps.Attrs("B", "A"), "S", deps.Attrs("D", "E")))
	if ok {
		t.Errorf("R[B,A] <= S[D,E] should fail (no (2,1) in S)")
	}
	ok, _ = d.Satisfies(deps.NewIND("S", deps.Attrs("D"), "R", deps.Attrs("A"))) // 9 not in R[A]
	if ok {
		t.Errorf("S[D] <= R[A] should fail")
	}
	// An IND out of an empty relation holds vacuously.
	empty := twoRelDB()
	empty.MustInsert("S", T("1", "2"))
	ok, _ = empty.Satisfies(deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("D")))
	if !ok {
		t.Errorf("IND from empty relation should hold vacuously")
	}
}

func TestSatisfiesRD(t *testing.T) {
	d := twoRelDB()
	d.MustInsert("R", T("1", "1", "2"))
	ok, _ := d.Satisfies(deps.NewRD("R", deps.Attrs("A"), deps.Attrs("B")))
	if !ok {
		t.Errorf("R[A == B] should hold")
	}
	ok, _ = d.Satisfies(deps.NewRD("R", deps.Attrs("A"), deps.Attrs("C")))
	if ok {
		t.Errorf("R[A == C] should fail")
	}
	d.MustInsert("R", T("3", "4", "5"))
	ok, _ = d.Satisfies(deps.NewRD("R", deps.Attrs("A"), deps.Attrs("B")))
	if ok {
		t.Errorf("R[A == B] should fail after (3,4,5)")
	}
}

func TestSatisfiesEMVD(t *testing.T) {
	ds := schema.MustDatabase(schema.MustScheme("R", "X", "Y", "Z"))
	d := NewDatabase(ds)
	// {(x,y1,z1),(x,y2,z2)} violates X ->> Y | Z: needs (x,y1,z2).
	d.MustInsert("R", T("x", "y1", "z1"), T("x", "y2", "z2"))
	e := deps.NewEMVD("R", deps.Attrs("X"), deps.Attrs("Y"), deps.Attrs("Z"))
	ok, err := d.Satisfies(e)
	if err != nil {
		t.Fatalf("Satisfies: %v", err)
	}
	if ok {
		t.Errorf("EMVD should fail without witness tuples")
	}
	// Adding both cross tuples satisfies it.
	d.MustInsert("R", T("x", "y1", "z2"), T("x", "y2", "z1"))
	ok, _ = d.Satisfies(e)
	if !ok {
		t.Errorf("EMVD should hold with all four combinations")
	}
}

func TestSatisfiesEMVDEmbedded(t *testing.T) {
	// The embedded case: a fourth attribute W is unconstrained.
	ds := schema.MustDatabase(schema.MustScheme("R", "X", "Y", "Z", "W"))
	d := NewDatabase(ds)
	d.MustInsert("R",
		T("x", "y1", "z1", "w1"),
		T("x", "y2", "z2", "w2"),
		T("x", "y1", "z2", "w3"), // witness for (t1,t2); W differs — still fine
		T("x", "y2", "z1", "w4"), // witness for (t2,t1)
	)
	e := deps.NewEMVD("R", deps.Attrs("X"), deps.Attrs("Y"), deps.Attrs("Z"))
	ok, err := d.Satisfies(e)
	if err != nil || !ok {
		t.Errorf("embedded EMVD should hold regardless of W: %v %v", ok, err)
	}
}

func TestSatisfiesAll(t *testing.T) {
	d := twoRelDB()
	d.MustInsert("R", T("1", "2", "3"))
	good := deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))
	bad := deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("D"))
	ok, violated, err := d.SatisfiesAll([]deps.Dependency{good, bad})
	if err != nil {
		t.Fatalf("SatisfiesAll: %v", err)
	}
	if ok || violated == nil || violated.Key() != bad.Key() {
		t.Errorf("SatisfiesAll = %v, violated %v", ok, violated)
	}
}

func TestSatisfiesValidates(t *testing.T) {
	d := twoRelDB()
	if _, err := d.Satisfies(deps.NewFD("Nope", deps.Attrs("A"), deps.Attrs("B"))); err == nil {
		t.Errorf("Satisfies should validate the dependency")
	}
}

func TestStringRendering(t *testing.T) {
	d := twoRelDB()
	d.MustInsert("R", T("1", "2", "3"))
	d.MustInsert("S", T("4", "5"))
	out := d.String()
	for _, want := range []string{"R(A,B,C)", "(1,2,3)", "S(D,E)", "(4,5)"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q in:\n%s", want, out)
		}
	}
	if d.Size() != 2 {
		t.Errorf("Size = %d", d.Size())
	}
}

func TestPairAndInt(t *testing.T) {
	if Pair(3, 2) != Value("3|2") {
		t.Errorf("Pair = %q", Pair(3, 2))
	}
	if Int(7) != Value("7") {
		t.Errorf("Int = %q", Int(7))
	}
}

func TestTupleHelpers(t *testing.T) {
	a := T("1", "2")
	b := a.Clone()
	b[0] = "9"
	if a[0] != "1" {
		t.Errorf("Clone should copy")
	}
	if a.Equal(b) || !a.Equal(T("1", "2")) || a.Equal(T("1")) {
		t.Errorf("Equal misbehaves")
	}
}
