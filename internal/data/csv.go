package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"indfd/internal/schema"
)

// ReadCSV loads tuples into the relation from CSV input whose header row
// names exactly the scheme's attributes (in any order). Duplicate rows
// collapse, matching set semantics.
func ReadCSV(r io.Reader, rel *Relation) error {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err == io.EOF {
		return fmt.Errorf("data: empty CSV for relation %s", rel.Scheme().Name())
	}
	if err != nil {
		return err
	}
	s := rel.Scheme()
	if len(header) != s.Width() {
		return fmt.Errorf("data: CSV for %s has %d columns, scheme has %d", s.Name(), len(header), s.Width())
	}
	// Map CSV column index -> scheme position.
	to := make([]int, len(header))
	seen := map[string]bool{}
	for i, h := range header {
		p, ok := s.Pos(schema.Attribute(h))
		if !ok {
			return fmt.Errorf("data: CSV for %s has unknown column %q", s.Name(), h)
		}
		if seen[h] {
			return fmt.Errorf("data: CSV for %s repeats column %q", s.Name(), h)
		}
		seen[h] = true
		to[i] = p
	}
	for {
		record, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		t := make(Tuple, s.Width())
		for i, v := range record {
			t[to[i]] = Value(v)
		}
		if _, err := rel.Insert(t); err != nil {
			return err
		}
	}
}

// WriteCSV writes the relation as CSV with a header row, tuples sorted
// for determinism.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	s := r.Scheme()
	header := make([]string, s.Width())
	for i, a := range s.Attrs() {
		header[i] = string(a)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rows := make([][]string, 0, r.Len())
	for _, t := range r.Tuples() {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = string(v)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if rows[i][k] != rows[j][k] {
				return rows[i][k] < rows[j][k]
			}
		}
		return false
	})
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadDir builds a database from a directory of <relation>.csv files, one
// per relation scheme. Missing files leave the relation empty; unknown
// .csv files are an error.
func LoadDir(ds *schema.Database, dir string) (*Database, error) {
	db := NewDatabase(ds)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".csv" {
			continue
		}
		rel := e.Name()[:len(e.Name())-len(".csv")]
		r, ok := db.Relation(rel)
		if !ok {
			return nil, fmt.Errorf("data: %s does not match any relation scheme", e.Name())
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		err = ReadCSV(f, r)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return db, nil
}

// SaveDir writes every relation of the database as <relation>.csv in dir,
// creating the directory if needed.
func SaveDir(db *Database, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range db.Scheme().Names() {
		r, _ := db.Relation(name)
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		err = r.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}
