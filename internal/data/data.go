// Package data implements relations and databases (Section 2 of the
// paper): a tuple over a relation scheme is a sequence of values of the
// same length as the scheme, a relation is a set of tuples, and a database
// associates a relation with each relation scheme of a database scheme.
// The package also implements satisfaction checking for every dependency
// class of package deps.
package data

import (
	"fmt"
	"sort"
	"strings"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

// Value is a single entry of a tuple. Values are compared by string
// equality; the paper's constructions use integers and pairs, which are
// rendered as strings (e.g. "0", "3|2" for the pair (3,2)).
type Value string

// Pair renders the pair (m, i) used throughout the Section 6 construction
// as a single value.
func Pair(m, i int) Value { return Value(fmt.Sprintf("%d|%d", m, i)) }

// Int renders an integer value.
func Int(i int) Value { return Value(fmt.Sprintf("%d", i)) }

// Tuple is a sequence of values over a relation scheme.
type Tuple []Value

// key encodes a tuple for use as a map key. Values never contain the
// separator byte 0x00 in this repository's constructions; Insert rejects
// values that do.
func (t Tuple) key() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = string(v)
	}
	return strings.Join(parts, "\x00")
}

// Equal reports componentwise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// String renders the tuple as (a,b,c).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = string(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Relation is a finite set of tuples over a relation scheme.
type Relation struct {
	scheme *schema.Scheme
	order  []Tuple
	index  map[string]bool
}

// NewRelation returns an empty relation over the scheme.
func NewRelation(s *schema.Scheme) *Relation {
	return &Relation{scheme: s, index: make(map[string]bool)}
}

// Scheme returns the relation scheme.
func (r *Relation) Scheme() *schema.Scheme { return r.scheme }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.order) }

// Insert adds a tuple. It returns an error if the tuple has the wrong
// width or contains the reserved separator byte; inserting a duplicate is
// a no-op and reports false.
func (r *Relation) Insert(t Tuple) (added bool, err error) {
	if len(t) != r.scheme.Width() {
		return false, fmt.Errorf("data: tuple %v has width %d, scheme %s has width %d", t, len(t), r.scheme.Name(), r.scheme.Width())
	}
	for _, v := range t {
		if strings.ContainsRune(string(v), 0) {
			return false, fmt.Errorf("data: value contains reserved separator byte")
		}
	}
	k := t.key()
	if r.index[k] {
		return false, nil
	}
	r.index[k] = true
	r.order = append(r.order, t.Clone())
	return true, nil
}

// MustInsert inserts tuples, panicking on structural errors. Intended for
// the paper's fixed constructions and tests.
func (r *Relation) MustInsert(ts ...Tuple) {
	for _, t := range ts {
		if _, err := r.Insert(t); err != nil {
			panic(err)
		}
	}
}

// Contains reports whether the relation holds the tuple.
func (r *Relation) Contains(t Tuple) bool { return r.index[t.key()] }

// Tuples returns the tuples in insertion order. The caller must not modify
// the returned slice or its tuples.
func (r *Relation) Tuples() []Tuple { return r.order }

// positions resolves an attribute sequence to column positions.
func (r *Relation) positions(attrs []schema.Attribute) ([]int, error) {
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		p, ok := r.scheme.Pos(a)
		if !ok {
			return nil, fmt.Errorf("data: relation %s has no attribute %s", r.scheme.Name(), a)
		}
		pos[i] = p
	}
	return pos, nil
}

// Project returns the set of projections r[X] = {t[X] : t ∈ r} as a list
// of tuples in first-seen order.
func (r *Relation) Project(attrs []schema.Attribute) ([]Tuple, error) {
	pos, err := r.positions(attrs)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []Tuple
	for _, t := range r.order {
		p := make(Tuple, len(pos))
		for i, j := range pos {
			p[i] = t[j]
		}
		k := p.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return out, nil
}

// String renders the relation with its scheme header and sorted rows.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.scheme.String())
	rows := make([]string, len(r.order))
	for i, t := range r.order {
		rows[i] = "  " + t.String()
	}
	sort.Strings(rows)
	for _, row := range rows {
		b.WriteByte('\n')
		b.WriteString(row)
	}
	return b.String()
}

// Database associates each relation scheme of a database scheme with a
// finite relation.
type Database struct {
	scheme *schema.Database
	rels   map[string]*Relation
}

// NewDatabase returns a database over the scheme with all relations empty.
func NewDatabase(ds *schema.Database) *Database {
	d := &Database{scheme: ds, rels: make(map[string]*Relation, ds.Len())}
	for _, name := range ds.Names() {
		s, _ := ds.Scheme(name)
		d.rels[name] = NewRelation(s)
	}
	return d
}

// Scheme returns the database scheme.
func (d *Database) Scheme() *schema.Database { return d.scheme }

// Relation returns the relation for the named scheme.
func (d *Database) Relation(name string) (*Relation, bool) {
	r, ok := d.rels[name]
	return r, ok
}

// MustRelation returns the relation for the named scheme, panicking if the
// scheme does not exist.
func (d *Database) MustRelation(name string) *Relation {
	r, ok := d.rels[name]
	if !ok {
		panic(fmt.Sprintf("data: no relation %s", name))
	}
	return r
}

// Insert adds a tuple to the named relation.
func (d *Database) Insert(rel string, t Tuple) (bool, error) {
	r, ok := d.rels[rel]
	if !ok {
		return false, fmt.Errorf("data: no relation %s", rel)
	}
	return r.Insert(t)
}

// MustInsert inserts tuples into the named relation, panicking on error.
func (d *Database) MustInsert(rel string, ts ...Tuple) {
	d.MustRelation(rel).MustInsert(ts...)
}

// Size returns the total number of tuples across all relations.
func (d *Database) Size() int {
	n := 0
	for _, r := range d.rels {
		n += r.Len()
	}
	return n
}

// String renders every relation in scheme order.
func (d *Database) String() string {
	var b strings.Builder
	for i, name := range d.scheme.Names() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.rels[name].String())
	}
	return b.String()
}

// Satisfies reports whether the database obeys the dependency. It returns
// an error if the dependency is not well formed over the database scheme.
func (d *Database) Satisfies(dep deps.Dependency) (bool, error) {
	if err := dep.Validate(d.scheme); err != nil {
		return false, err
	}
	switch dd := dep.(type) {
	case deps.FD:
		return d.satisfiesFD(dd)
	case deps.IND:
		return d.satisfiesIND(dd)
	case deps.RD:
		return d.satisfiesRD(dd)
	case deps.EMVD:
		return d.satisfiesEMVD(dd)
	default:
		return false, fmt.Errorf("data: unsupported dependency kind %v", dep.Kind())
	}
}

// SatisfiesAll reports whether the database obeys every dependency; on
// failure it also returns the first violated dependency.
func (d *Database) SatisfiesAll(ds []deps.Dependency) (bool, deps.Dependency, error) {
	for _, dep := range ds {
		ok, err := d.Satisfies(dep)
		if err != nil {
			return false, dep, err
		}
		if !ok {
			return false, dep, nil
		}
	}
	return true, nil, nil
}

func (d *Database) satisfiesFD(f deps.FD) (bool, error) {
	r := d.rels[f.Rel]
	xs, err := r.positions(f.X)
	if err != nil {
		return false, err
	}
	ys, err := r.positions(f.Y)
	if err != nil {
		return false, err
	}
	// Group tuples by X-projection; all members of a group must agree on Y.
	groups := make(map[string]Tuple, r.Len())
	for _, t := range r.order {
		xk := projectKey(t, xs)
		y := make(Tuple, len(ys))
		for i, j := range ys {
			y[i] = t[j]
		}
		if prev, ok := groups[xk]; ok {
			if !prev.Equal(y) {
				return false, nil
			}
		} else {
			groups[xk] = y
		}
	}
	return true, nil
}

func (d *Database) satisfiesIND(ind deps.IND) (bool, error) {
	left := d.rels[ind.LRel]
	right := d.rels[ind.RRel]
	xs, err := left.positions(ind.X)
	if err != nil {
		return false, err
	}
	ys, err := right.positions(ind.Y)
	if err != nil {
		return false, err
	}
	rightSet := make(map[string]bool, right.Len())
	for _, t := range right.order {
		rightSet[projectKey(t, ys)] = true
	}
	for _, t := range left.order {
		if !rightSet[projectKey(t, xs)] {
			return false, nil
		}
	}
	return true, nil
}

func (d *Database) satisfiesRD(rd deps.RD) (bool, error) {
	r := d.rels[rd.Rel]
	xs, err := r.positions(rd.X)
	if err != nil {
		return false, err
	}
	ys, err := r.positions(rd.Y)
	if err != nil {
		return false, err
	}
	for _, t := range r.order {
		for i := range xs {
			if t[xs[i]] != t[ys[i]] {
				return false, nil
			}
		}
	}
	return true, nil
}

func (d *Database) satisfiesEMVD(e deps.EMVD) (bool, error) {
	r := d.rels[e.Rel]
	xs, err := r.positions(e.X)
	if err != nil {
		return false, err
	}
	ys, err := r.positions(e.Y)
	if err != nil {
		return false, err
	}
	zs, err := r.positions(e.Z)
	if err != nil {
		return false, err
	}
	// Index the XYZ projections for the witness test.
	xyz := append(append(append([]int(nil), xs...), ys...), zs...)
	witness := make(map[string]bool, r.Len())
	for _, t := range r.order {
		witness[projectKey(t, xyz)] = true
	}
	// Group tuples by X; for each ordered pair in a group, a witness tuple
	// t3 with t3[XY] = t1[XY] and t3[XZ] = t2[XZ] must exist.
	byX := make(map[string][]Tuple)
	for _, t := range r.order {
		k := projectKey(t, xs)
		byX[k] = append(byX[k], t)
	}
	for _, group := range byX {
		for _, t1 := range group {
			for _, t2 := range group {
				want := make([]string, 0, len(xyz))
				for _, j := range xs {
					want = append(want, string(t1[j]))
				}
				for _, j := range ys {
					want = append(want, string(t1[j]))
				}
				for _, j := range zs {
					want = append(want, string(t2[j]))
				}
				if !witness[strings.Join(want, "\x00")] {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

func projectKey(t Tuple, pos []int) string {
	parts := make([]string, len(pos))
	for i, j := range pos {
		parts[i] = string(t[j])
	}
	return strings.Join(parts, "\x00")
}
