package data

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"indfd/internal/schema"
)

func TestReadCSV(t *testing.T) {
	d := twoRelDB()
	r := d.MustRelation("R")
	in := "B,A,C\n2,1,3\n2,1,3\n5,4,6\n"
	if err := ReadCSV(strings.NewReader(in), r); err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d (duplicates should collapse)", r.Len())
	}
	// Columns were reordered by header.
	if !r.Contains(T("1", "2", "3")) || !r.Contains(T("4", "5", "6")) {
		t.Errorf("rows wrong: %v", r)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		"A,B\n1,2\n",     // wrong column count
		"A,B,Z\n1,2,3\n", // unknown column
		"A,A,B\n1,2,3\n", // repeated column
		"A,B,C\n1,2\n",   // ragged row
	}
	for _, in := range cases {
		d := twoRelDB()
		if err := ReadCSV(strings.NewReader(in), d.MustRelation("R")); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	d := twoRelDB()
	r := d.MustRelation("R")
	r.MustInsert(T("b", "2", "3"), T("a", "2", "3"))
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "A,B,C\n") {
		t.Errorf("header wrong: %q", out)
	}
	// Sorted rows: a before b.
	if strings.Index(out, "a,2,3") > strings.Index(out, "b,2,3") {
		t.Errorf("rows not sorted: %q", out)
	}
	// Round trip.
	d2 := twoRelDB()
	if err := ReadCSV(strings.NewReader(out), d2.MustRelation("R")); err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if d2.MustRelation("R").Len() != 2 {
		t.Errorf("round trip lost rows")
	}
}

func TestLoadSaveDir(t *testing.T) {
	dir := t.TempDir()
	ds := schema.MustDatabase(
		schema.MustScheme("R", "A", "B", "C"),
		schema.MustScheme("S", "D", "E"),
	)
	db := NewDatabase(ds)
	db.MustInsert("R", T("1", "2", "3"))
	db.MustInsert("S", T("x", "y"))
	if err := SaveDir(db, dir); err != nil {
		t.Fatalf("SaveDir: %v", err)
	}
	loaded, err := LoadDir(ds, dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if loaded.Size() != 2 || !loaded.MustRelation("R").Contains(T("1", "2", "3")) {
		t.Errorf("LoadDir content wrong:\n%v", loaded)
	}
	// An unknown CSV file is an error.
	if err := os.WriteFile(filepath.Join(dir, "NOPE.csv"), []byte("A\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(ds, dir); err == nil {
		t.Errorf("unknown relation CSV should error")
	}
	// A missing directory is an error.
	if _, err := LoadDir(ds, filepath.Join(dir, "missing")); err == nil {
		t.Errorf("missing directory should error")
	}
}
