package lba

import (
	"strings"
	"testing"

	"indfd/internal/ind"
)

func TestEraserValidates(t *testing.T) {
	m := Eraser()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []*Machine{
		{States: []string{"s", "s"}, Alphabet: []string{"B"}, Blank: "B", Start: "s", Halt: "s"},
		{States: []string{"s"}, Alphabet: []string{"B", "B"}, Blank: "B", Start: "s", Halt: "s"},
		{States: []string{"s"}, Alphabet: []string{"s"}, Blank: "s", Start: "s", Halt: "s"},
		{States: []string{"s"}, Alphabet: []string{"B"}, Blank: "X", Start: "s", Halt: "s"},
		{States: []string{"s"}, Alphabet: []string{"B"}, Blank: "B", Start: "q", Halt: "s"},
		{States: []string{"s"}, Alphabet: []string{"B"}, Blank: "B", Start: "s", Halt: "s",
			Rules: []Rewrite{{From: [3]string{"?", "B", "B"}, To: [3]string{"B", "B", "B"}}}},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestEraserAccepts(t *testing.T) {
	m := Eraser()
	for n := 2; n <= 5; n++ {
		ok, err := m.Accepts(Input("a", n), 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !ok {
			t.Errorf("eraser should accept a^%d", n)
		}
	}
	// A blank in the middle of the input strands the sweep.
	ok, err := m.Accepts([]string{"a", "B", "a"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("eraser should reject a B a")
	}
	// Unknown input symbols are rejected up front.
	if _, err := m.Accepts([]string{"a", "z"}, 0); err == nil {
		t.Errorf("unknown input symbol should error")
	}
}

func TestRejectorRejects(t *testing.T) {
	m := Eraser()
	// Remove the halt rules: the machine can never reach h·B^n.
	var rules []Rewrite
	for _, r := range m.Rules {
		if r.To[0] == "h" {
			continue
		}
		rules = append(rules, r)
	}
	m.Rules = rules
	ok, err := m.Accepts(Input("a", 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("halting-rule-free machine should reject")
	}
}

func TestConfigHelpers(t *testing.T) {
	m := Eraser()
	init := m.Initial([]string{"a", "a"})
	if init.String() != "s a a" {
		t.Errorf("Initial = %q", init)
	}
	fin := m.Final(2)
	if fin.String() != "h B B" {
		t.Errorf("Final = %q", fin)
	}
	succs := m.Successors(init)
	if len(succs) != 1 || succs[0].String() != "B s a" {
		t.Errorf("Successors(init) = %v", succs)
	}
}

func TestAcceptsBudget(t *testing.T) {
	m := Eraser()
	if _, err := m.Accepts(Input("a", 5), 2); err == nil {
		t.Errorf("tiny budget should error")
	}
}

func TestReduceShape(t *testing.T) {
	m := Eraser()
	input := Input("a", 3)
	inst, err := Reduce(m, input)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	n := len(input)
	// One relation scheme with (|K| + |Γ|)·(n+1) attributes.
	sch, ok := inst.DB.Scheme("R")
	if !ok {
		t.Fatalf("no scheme R")
	}
	wantAttrs := (len(m.States) + len(m.Alphabet)) * (n + 1)
	if sch.Width() != wantAttrs {
		t.Errorf("scheme width %d, want %d", sch.Width(), wantAttrs)
	}
	// One IND per (rule, position).
	if len(inst.Sigma) != len(m.Rules)*(n-1) {
		t.Errorf("|Sigma| = %d, want %d", len(inst.Sigma), len(m.Rules)*(n-1))
	}
	// Goal width is n+1; Sigma INDs have width |Γ|(n-2)+3.
	if inst.Goal.Width() != n+1 {
		t.Errorf("goal width %d", inst.Goal.Width())
	}
	want := len(m.Alphabet)*(n-2) + 3
	for _, d := range inst.Sigma {
		if d.Width() != want {
			t.Errorf("sigma IND width %d, want %d", d.Width(), want)
		}
	}
	// Everything validates against the scheme.
	if err := inst.Goal.Validate(inst.DB); err != nil {
		t.Errorf("goal invalid: %v", err)
	}
	for _, d := range inst.Sigma {
		if err := d.Validate(inst.DB); err != nil {
			t.Errorf("sigma IND invalid: %v", err)
		}
	}
	if _, err := Reduce(m, Input("a", 1)); err == nil {
		t.Errorf("|input| = 1 should be rejected")
	}
}

// The Theorem 3.3 round trip: Σ ⊨ σ iff M accepts x in space |x|.
func TestReductionRoundTrip(t *testing.T) {
	type tc struct {
		name  string
		mach  *Machine
		input []string
	}
	rejector := Eraser()
	var rules []Rewrite
	for _, r := range rejector.Rules {
		if r.To[0] != "h" {
			rules = append(rules, r)
		}
	}
	rejector.Rules = rules
	cases := []tc{
		{"eraser-aa", Eraser(), Input("a", 2)},
		{"eraser-aaa", Eraser(), Input("a", 3)},
		{"eraser-aBa", Eraser(), []string{"a", "B", "a"}},
		{"rejector-aaa", rejector, Input("a", 3)},
	}
	for _, c := range cases {
		accepts, err := c.mach.Accepts(c.input, 0)
		if err != nil {
			t.Fatalf("%s: Accepts: %v", c.name, err)
		}
		inst, err := Reduce(c.mach, c.input)
		if err != nil {
			t.Fatalf("%s: Reduce: %v", c.name, err)
		}
		res, err := ind.Decide(inst.DB, inst.Sigma, inst.Goal)
		if err != nil {
			t.Fatalf("%s: Decide: %v", c.name, err)
		}
		if res.Implied != accepts {
			t.Errorf("%s: Decide = %v, Accepts = %v — reduction broken", c.name, res.Implied, accepts)
		}
		if res.Implied {
			// The Corollary 3.2 chain is a computation history: its length
			// is the number of configurations visited.
			if err := ind.CheckChain(inst.Sigma, inst.Goal, res.Chain, res.Via); err != nil {
				t.Errorf("%s: chain does not verify: %v", c.name, err)
			}
			// Decode the chain back to configurations: every expression
			// must mention exactly one state symbol per position pattern.
			for _, e := range res.Chain {
				if len(e.Attrs) != len(c.input)+1 {
					t.Errorf("%s: chain expression of width %d", c.name, len(e.Attrs))
				}
			}
		}
	}
}

// DecodeChain sanity: the first chain expression spells the initial
// configuration and the last the final one.
func TestChainSpellsComputation(t *testing.T) {
	m := Eraser()
	input := Input("a", 2)
	inst, _ := Reduce(m, input)
	res, err := ind.Decide(inst.DB, inst.Sigma, inst.Goal)
	if err != nil || !res.Implied {
		t.Fatalf("Decide: %+v %v", res.Implied, err)
	}
	first := res.Chain[0]
	last := res.Chain[len(res.Chain)-1]
	if got := decode(first); got != "s a a" {
		t.Errorf("first expression decodes to %q", got)
	}
	if got := decode(last); got != "h B B" {
		t.Errorf("last expression decodes to %q", got)
	}
}

// decode turns an expression over (sym@pos) attributes back into a
// configuration string.
func decode(e ind.Expression) string {
	syms := make([]string, len(e.Attrs))
	for i, a := range e.Attrs {
		parts := strings.SplitN(string(a), "@", 2)
		syms[i] = parts[0]
	}
	return strings.Join(syms, " ")
}

func TestEvenEraser(t *testing.T) {
	m := EvenEraser()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for n := 2; n <= 7; n++ {
		ok, err := m.Accepts(Input("a", n), 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ok != (n%2 == 0) {
			t.Errorf("EvenEraser on a^%d: accepts=%v, want %v", n, ok, n%2 == 0)
		}
	}
}

// The reduction round trip distinguishes accepting and rejecting inputs
// of the SAME machine (parity of n).
func TestReductionRoundTripParity(t *testing.T) {
	m := EvenEraser()
	for n := 2; n <= 5; n++ {
		input := Input("a", n)
		accepts, err := m.Accepts(input, 0)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := Reduce(m, input)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ind.Decide(inst.DB, inst.Sigma, inst.Goal)
		if err != nil {
			t.Fatal(err)
		}
		if res.Implied != accepts {
			t.Errorf("n=%d: Decide=%v, Accepts=%v", n, res.Implied, accepts)
		}
	}
}
