// Package lba implements the substrate of Theorem 3.3: nondeterministic
// Turing machines operating in linear space (linear bounded automata),
// their configurations, bounded-space acceptance, and the reduction from
// LINEAR BOUNDED AUTOMATON ACCEPTANCE to the decision problem for INDs
// that proves the problem PSPACE-hard.
//
// Following the paper, a configuration of a machine on an input of length
// n is a string in Γ*KΓ⁺ of length n+1: the n tape symbols with the state
// symbol inserted immediately to the left of the scanned cell. Moves are
// rewriting rules abc → a'b'c' applied at any position of the
// configuration; the machine accepts when the exact final configuration
// h B^n is reached from the initial configuration s x.
package lba

import (
	"fmt"
	"strings"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

// Rewrite is one move of the machine: the length-3 pattern From may be
// rewritten to To wherever it occurs in a configuration.
type Rewrite struct {
	From [3]string
	To   [3]string
}

// String renders the rewrite as "a b c -> a' b' c'".
func (r Rewrite) String() string {
	return fmt.Sprintf("%s %s %s -> %s %s %s", r.From[0], r.From[1], r.From[2], r.To[0], r.To[1], r.To[2])
}

// Machine is a nondeterministic Turing machine in the paper's rewriting
// presentation: state set K, tape alphabet Γ (containing Blank), start and
// halt states, and a move relation given by rewriting rules.
type Machine struct {
	States   []string
	Alphabet []string
	Blank    string
	Start    string
	Halt     string
	Rules    []Rewrite
}

// Validate checks the machine's well-formedness.
func (m *Machine) Validate() error {
	states := map[string]bool{}
	for _, s := range m.States {
		if s == "" {
			return fmt.Errorf("lba: empty state name")
		}
		if states[s] {
			return fmt.Errorf("lba: duplicate state %q", s)
		}
		states[s] = true
	}
	tape := map[string]bool{}
	for _, g := range m.Alphabet {
		if g == "" {
			return fmt.Errorf("lba: empty tape symbol")
		}
		if tape[g] || states[g] {
			return fmt.Errorf("lba: symbol %q duplicated or clashes with a state", g)
		}
		tape[g] = true
	}
	if !tape[m.Blank] {
		return fmt.Errorf("lba: blank %q not in alphabet", m.Blank)
	}
	if !states[m.Start] || !states[m.Halt] {
		return fmt.Errorf("lba: start %q or halt %q not in state set", m.Start, m.Halt)
	}
	known := func(s string) bool { return states[s] || tape[s] }
	for _, r := range m.Rules {
		for i := 0; i < 3; i++ {
			if !known(r.From[i]) || !known(r.To[i]) {
				return fmt.Errorf("lba: rule %v uses unknown symbol", r)
			}
		}
	}
	return nil
}

// Config is a machine configuration: a sequence of n+1 symbols with
// exactly one state symbol.
type Config []string

// String renders the configuration with spaces.
func (c Config) String() string { return strings.Join(c, " ") }

// Initial returns the initial configuration s·x for the given input.
func (m *Machine) Initial(input []string) Config {
	c := make(Config, 0, len(input)+1)
	c = append(c, m.Start)
	c = append(c, input...)
	return c
}

// Final returns the accepting configuration h·B^n.
func (m *Machine) Final(n int) Config {
	c := make(Config, n+1)
	c[0] = m.Halt
	for i := 1; i <= n; i++ {
		c[i] = m.Blank
	}
	return c
}

// Successors returns every configuration reachable from c in one move.
func (m *Machine) Successors(c Config) []Config {
	var out []Config
	for _, r := range m.Rules {
		for j := 0; j+2 < len(c); j++ {
			if c[j] == r.From[0] && c[j+1] == r.From[1] && c[j+2] == r.From[2] {
				succ := append(Config(nil), c...)
				succ[j], succ[j+1], succ[j+2] = r.To[0], r.To[1], r.To[2]
				out = append(out, succ)
			}
		}
	}
	return out
}

// Accepts reports whether the machine accepts the input within space
// |input|: whether the final configuration h·B^n is reachable from the
// initial configuration. maxConfigs bounds the search (0 means 1 << 20);
// exceeding it returns an error.
func (m *Machine) Accepts(input []string, maxConfigs int) (bool, error) {
	if err := m.Validate(); err != nil {
		return false, err
	}
	tape := map[string]bool{}
	for _, g := range m.Alphabet {
		tape[g] = true
	}
	for _, x := range input {
		if !tape[x] {
			return false, fmt.Errorf("lba: input symbol %q not in alphabet", x)
		}
	}
	if maxConfigs <= 0 {
		maxConfigs = 1 << 20
	}
	start := m.Initial(input)
	goal := m.Final(len(input)).String()
	if start.String() == goal {
		return true, nil
	}
	visited := map[string]bool{start.String(): true}
	queue := []Config{start}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, succ := range m.Successors(c) {
			k := succ.String()
			if visited[k] {
				continue
			}
			if k == goal {
				return true, nil
			}
			if len(visited) >= maxConfigs {
				return false, fmt.Errorf("lba: configuration budget %d exceeded", maxConfigs)
			}
			visited[k] = true
			queue = append(queue, succ)
		}
	}
	return false, nil
}

// Instance is the IND-implication instance produced by the Theorem 3.3
// reduction: Σ ⊨ Goal over DB iff the machine accepts the input in space
// |input|.
type Instance struct {
	DB    *schema.Database
	Sigma []deps.IND
	Goal  deps.IND
}

// attr encodes the attribute (symbol, position) of the reduction's single
// relation scheme.
func attr(sym string, pos int) schema.Attribute {
	return schema.Attribute(fmt.Sprintf("%s@%d", sym, pos))
}

// Reduce builds the Theorem 3.3 instance for machine m on the given input.
// The single relation scheme R has attributes (K ∪ Γ) × {1, ..., n+1}; the
// goal IND relates the initial configuration's attribute sequence to the
// final configuration's; each move abc → a'b'c' and each position j
// contributes the IND S(move, j) whose two sides share the padding P_j
// (all tape-symbol attributes at the untouched positions). Requires
// len(input) ≥ 2 so that at least one rule position exists.
func Reduce(m *Machine, input []string) (*Instance, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := len(input)
	if n < 2 {
		return nil, fmt.Errorf("lba: reduction needs |input| ≥ 2, got %d", n)
	}
	var attrs []schema.Attribute
	for _, s := range m.States {
		for p := 1; p <= n+1; p++ {
			attrs = append(attrs, attr(s, p))
		}
	}
	for _, g := range m.Alphabet {
		for p := 1; p <= n+1; p++ {
			attrs = append(attrs, attr(g, p))
		}
	}
	sch, err := schema.NewScheme("R", attrs...)
	if err != nil {
		return nil, err
	}
	db, err := schema.NewDatabase(sch)
	if err != nil {
		return nil, err
	}

	// P_j: tape-symbol attributes at every position other than j, j+1,
	// j+2, in a fixed order.
	padding := func(j int) []schema.Attribute {
		var out []schema.Attribute
		for _, g := range m.Alphabet {
			for p := 1; p <= n+1; p++ {
				if p == j || p == j+1 || p == j+2 {
					continue
				}
				out = append(out, attr(g, p))
			}
		}
		return out
	}
	var sigma []deps.IND
	for _, r := range m.Rules {
		for j := 1; j <= n-1; j++ {
			pj := padding(j)
			lhs := append(append([]schema.Attribute(nil), pj...),
				attr(r.From[0], j), attr(r.From[1], j+1), attr(r.From[2], j+2))
			rhs := append(append([]schema.Attribute(nil), pj...),
				attr(r.To[0], j), attr(r.To[1], j+1), attr(r.To[2], j+2))
			if !schema.Distinct(lhs) || !schema.Distinct(rhs) {
				// A rule like a a c -> ... at positions j, j+1 uses two
				// different attributes (positions differ), so sides are
				// always distinct; this is defensive.
				return nil, fmt.Errorf("lba: rule %v yields a non-distinct attribute sequence", r)
			}
			sigma = append(sigma, deps.NewIND("R", lhs, "R", rhs))
		}
	}
	goalLHS := configAttrs(m.Initial(input))
	goalRHS := configAttrs(m.Final(n))
	goal := deps.NewIND("R", goalLHS, "R", goalRHS)
	return &Instance{DB: db, Sigma: sigma, Goal: goal}, nil
}

// configAttrs maps a configuration to its attribute sequence
// ((y1,1), ..., (y_{n+1}, n+1)).
func configAttrs(c Config) []schema.Attribute {
	out := make([]schema.Attribute, len(c))
	for i, sym := range c {
		out[i] = attr(sym, i+1)
	}
	return out
}

// Eraser returns a small nondeterministic machine that accepts a^n for
// every n ≥ 2 in linear space: it sweeps right erasing a's, turns around
// at the right end, walks back to the left end, and halts. Wrong
// nondeterministic guesses (turning around early, halting away from the
// left end) fail to reach the exact final configuration and die.
func Eraser() *Machine {
	m := &Machine{
		States:   []string{"s", "r", "h"},
		Alphabet: []string{"a", "B"},
		Blank:    "B",
		Start:    "s",
		Halt:     "h",
	}
	for _, y := range m.Alphabet {
		// Erase and move right.
		m.Rules = append(m.Rules, Rewrite{From: [3]string{"s", "a", y}, To: [3]string{"B", "s", y}})
		// Turn around at (nondeterministically guessed) right end,
		// erasing the last a.
		m.Rules = append(m.Rules, Rewrite{From: [3]string{y, "s", "a"}, To: [3]string{"r", y, "B"}})
		// Halt while scanning blank (only correct at the left end).
		m.Rules = append(m.Rules, Rewrite{From: [3]string{"r", "B", y}, To: [3]string{"h", "B", y}})
		for _, z := range m.Alphabet {
			// Walk left.
			m.Rules = append(m.Rules, Rewrite{From: [3]string{y, "r", z}, To: [3]string{"r", y, z}})
		}
	}
	return m
}

// Input builds the input word a^n for the eraser machine.
func Input(sym string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = sym
	}
	return out
}

// EvenEraser returns a nondeterministic machine accepting a^n exactly for
// even n ≥ 2: the rightward sweep toggles between states s (even number
// of a's erased so far) and p (odd), and the turnaround — which erases
// one final a — is only permitted from p, so the total count is even.
// The return walk and halting guess work as in Eraser.
func EvenEraser() *Machine {
	m := &Machine{
		States:   []string{"s", "p", "r", "h"},
		Alphabet: []string{"a", "B"},
		Blank:    "B",
		Start:    "s",
		Halt:     "h",
	}
	for _, y := range m.Alphabet {
		m.Rules = append(m.Rules,
			// Erase and move right, toggling parity.
			Rewrite{From: [3]string{"s", "a", y}, To: [3]string{"B", "p", y}},
			Rewrite{From: [3]string{"p", "a", y}, To: [3]string{"B", "s", y}},
			// Turn around (erasing the final a) only with odd count so far.
			Rewrite{From: [3]string{y, "p", "a"}, To: [3]string{"r", y, "B"}},
			// Halt while scanning blank (only correct at the left end).
			Rewrite{From: [3]string{"r", "B", y}, To: [3]string{"h", "B", y}},
		)
		for _, z := range m.Alphabet {
			// Walk left.
			m.Rules = append(m.Rules, Rewrite{From: [3]string{y, "r", z}, To: [3]string{"r", y, z}})
		}
	}
	return m
}
