package er_test

import (
	"fmt"

	"indfd/internal/er"
)

// The introduction's "every manager is an employee" as an ISA, mapped to
// the relational model.
func ExampleMap() {
	m, err := er.Map(er.Schema{
		Entities: []er.Entity{
			{Name: "EMP", Key: []string{"ENO"}, Attrs: []string{"NAME"}},
			{Name: "MGR", Key: []string{"ENO"}},
		},
		ISAs: []er.ISA{{Sub: "MGR", Super: "EMP"}},
	})
	if err != nil {
		panic(err)
	}
	for _, d := range m.Sigma {
		fmt.Println(d)
	}
	// Output:
	// EMP: ENO -> NAME
	// MGR[ENO] <= EMP[ENO]
}
