package er

import (
	"testing"

	"indfd/internal/core"
	"indfd/internal/deps"
)

// company is the paper's motivating scenario: employees, departments,
// managers (ISA employee), and a WORKS_IN relationship.
func company() Schema {
	return Schema{
		Entities: []Entity{
			{Name: "EMP", Key: []string{"ENO"}, Attrs: []string{"ENAME", "SAL"}},
			{Name: "DEPT", Key: []string{"DNO"}, Attrs: []string{"DNAME"}},
			{Name: "MGR", Key: []string{"ENO"}},
		},
		Relationships: []Relationship{
			{Name: "WORKS_IN", Participants: []string{"EMP", "DEPT"}, Attrs: []string{"SINCE"}},
		},
		ISAs: []ISA{{Sub: "MGR", Super: "EMP"}},
	}
}

func TestMapCompany(t *testing.T) {
	m, err := Map(company())
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if m.DB.Len() != 4 {
		t.Errorf("relations = %v", m.DB.Names())
	}
	want := map[string]bool{
		"EMP: ENO -> ENAME,SAL":               true,
		"DEPT: DNO -> DNAME":                  true,
		"MGR[ENO] <= EMP[ENO]":                true, // the ISA
		"WORKS_IN[EMP_ENO] <= EMP[ENO]":       true,
		"WORKS_IN[DEPT_DNO] <= DEPT[DNO]":     true,
		"WORKS_IN: EMP_ENO,DEPT_DNO -> SINCE": true,
	}
	if len(m.Sigma) != len(want) {
		t.Fatalf("sigma = %v", m.Sigma)
	}
	for _, d := range m.Sigma {
		if !want[d.String()] {
			t.Errorf("unexpected dependency %v", d)
		}
	}
}

// The mapped dependencies feed the implication engines: every manager
// working in a department is (transitively) an employee of the company.
func TestMappedSchemaReasoning(t *testing.T) {
	m, err := Map(company())
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(m.DB)
	if err := sys.Add(m.Sigma...); err != nil {
		t.Fatal(err)
	}
	// Derived: WORKS_IN references names transitively? WORKS_IN[EMP_ENO]
	// ⊆ EMP[ENO] is declared; with MGR ⊑ EMP, MGR[ENO] ⊆ EMP[ENO] holds,
	// and nothing implies EMP[ENO] ⊆ MGR[ENO].
	a, err := sys.Implies(deps.NewIND("MGR", deps.Attrs("ENO"), "EMP", deps.Attrs("ENO")), core.Options{})
	if err != nil || a.Verdict != core.Yes {
		t.Errorf("ISA IND should be implied: %+v %v", a, err)
	}
	a, err = sys.Implies(deps.NewIND("EMP", deps.Attrs("ENO"), "MGR", deps.Attrs("ENO")), core.Options{})
	if err != nil || a.Verdict != core.No {
		t.Errorf("converse ISA should not be implied: %+v %v", a, err)
	}
}

func TestRolesDisambiguate(t *testing.T) {
	// A self-relationship (employee mentors employee) gets role-suffixed
	// columns and two INDs into EMP.
	s := Schema{
		Entities: []Entity{{Name: "EMP", Key: []string{"ENO"}}},
		Relationships: []Relationship{
			{Name: "MENTORS", Participants: []string{"EMP", "EMP"}},
		},
	}
	m, err := Map(s)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	sch, ok := m.DB.Scheme("MENTORS")
	if !ok || sch.Width() != 2 {
		t.Fatalf("MENTORS scheme wrong: %v", sch)
	}
	if !sch.Has("EMP_ENO") || !sch.Has("EMP2_ENO") {
		t.Errorf("role columns wrong: %v", sch)
	}
	inds := 0
	for _, d := range m.Sigma {
		if d.Kind() == deps.KindIND {
			inds++
		}
	}
	if inds != 2 {
		t.Errorf("INDs = %d, want 2", inds)
	}
}

func TestMapErrors(t *testing.T) {
	cases := []Schema{
		{Entities: []Entity{{Name: "E", Key: []string{"K"}}, {Name: "E", Key: []string{"K"}}}}, // duplicate entity
		{Entities: []Entity{{Name: "E"}}}, // no key
		{Entities: []Entity{{Name: "E", Key: []string{"K"}}}, ISAs: []ISA{{Sub: "E", Super: "X"}}},                                       // unknown super
		{Entities: []Entity{{Name: "E", Key: []string{"K"}}}, ISAs: []ISA{{Sub: "X", Super: "E"}}},                                       // unknown sub
		{Entities: []Entity{{Name: "E", Key: []string{"K"}}}, Relationships: []Relationship{{Name: "R"}}},                                // no participants
		{Entities: []Entity{{Name: "E", Key: []string{"K"}}}, Relationships: []Relationship{{Name: "R", Participants: []string{"X"}}}},   // unknown participant
		{Entities: []Entity{{Name: "E", Key: []string{"K"}}, {Name: "F", Key: []string{"A", "B"}}}, ISAs: []ISA{{Sub: "E", Super: "F"}}}, // key width mismatch
		{Entities: []Entity{{Name: "E", Key: []string{"K"}, Attrs: []string{"K"}}}},                                                      // duplicate attribute
	}
	for i, s := range cases {
		if _, err := Map(s); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
