// Package er maps entity-relationship schemas to the relational model,
// the setting the paper's introduction names as a source of inclusion
// dependencies ("they also appear when an entity-relationship schema is
// mapped to the relational model [Ch, Kl]", and "inclusion dependencies
// are commonly known in Artificial Intelligence applications as ISA
// relationships"). The mapping produces a database scheme together with
// the FDs (keys) and INDs (foreign keys and ISA inclusions) it carries,
// ready for the implication engines, the lint toolkit and the maintain
// monitor.
package er

import (
	"fmt"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

// Entity is an entity set with attributes, the first Key of which form
// the key.
type Entity struct {
	Name  string
	Key   []string
	Attrs []string // non-key attributes
}

// Relationship is a relationship set among entities, with optional
// attributes of its own. Each participant is referenced through its key.
type Relationship struct {
	Name         string
	Participants []string // entity names; may repeat (roles get suffixes)
	Attrs        []string
}

// ISA declares that every Sub entity is a Super entity (the paper's
// "every manager is an employee").
type ISA struct {
	Sub, Super string
}

// Schema is an entity-relationship schema.
type Schema struct {
	Entities      []Entity
	Relationships []Relationship
	ISAs          []ISA
}

// Mapped is the relational image of an ER schema.
type Mapped struct {
	DB    *schema.Database
	Sigma []deps.Dependency
}

// Map translates the ER schema:
//
//   - each entity becomes a relation over key + attributes, with the FD
//     key -> attributes;
//   - each ISA Sub ⊑ Super becomes the IND Sub[key] ⊆ Super[key] (the Sub
//     must have the same key as the Super);
//   - each relationship becomes a relation over the participants' keys
//     (role-disambiguated when an entity participates twice) plus its own
//     attributes, with one IND per participant into the participant's
//     relation.
func Map(s Schema) (*Mapped, error) {
	entities := map[string]Entity{}
	var schemes []*schema.Scheme
	var sigma []deps.Dependency

	prefixed := func(prefix string, names []string) []schema.Attribute {
		out := make([]schema.Attribute, len(names))
		for i, n := range names {
			out[i] = schema.Attribute(prefix + n)
		}
		return out
	}

	for _, e := range s.Entities {
		if _, dup := entities[e.Name]; dup {
			return nil, fmt.Errorf("er: duplicate entity %s", e.Name)
		}
		if len(e.Key) == 0 {
			return nil, fmt.Errorf("er: entity %s has no key", e.Name)
		}
		entities[e.Name] = e
		attrs := append(prefixed("", e.Key), prefixed("", e.Attrs)...)
		sch, err := schema.NewScheme(e.Name, attrs...)
		if err != nil {
			return nil, fmt.Errorf("er: entity %s: %w", e.Name, err)
		}
		schemes = append(schemes, sch)
		if len(e.Attrs) > 0 {
			sigma = append(sigma, deps.NewFD(e.Name, prefixed("", e.Key), prefixed("", e.Attrs)))
		}
	}

	for _, isa := range s.ISAs {
		sub, ok := entities[isa.Sub]
		if !ok {
			return nil, fmt.Errorf("er: ISA references unknown entity %s", isa.Sub)
		}
		super, ok := entities[isa.Super]
		if !ok {
			return nil, fmt.Errorf("er: ISA references unknown entity %s", isa.Super)
		}
		if len(sub.Key) != len(super.Key) {
			return nil, fmt.Errorf("er: ISA %s ⊑ %s: key widths differ", isa.Sub, isa.Super)
		}
		sigma = append(sigma, deps.NewIND(isa.Sub, prefixed("", sub.Key), isa.Super, prefixed("", super.Key)))
	}

	for _, r := range s.Relationships {
		if len(r.Participants) == 0 {
			return nil, fmt.Errorf("er: relationship %s has no participants", r.Name)
		}
		var attrs []schema.Attribute
		type ref struct {
			entity string
			cols   []schema.Attribute
			keys   []schema.Attribute
		}
		var refs []ref
		seen := map[string]int{}
		for _, p := range r.Participants {
			e, ok := entities[p]
			if !ok {
				return nil, fmt.Errorf("er: relationship %s references unknown entity %s", r.Name, p)
			}
			role := ""
			seen[p]++
			if seen[p] > 1 {
				role = fmt.Sprintf("%d", seen[p])
			}
			cols := prefixed(p+role+"_", e.Key)
			attrs = append(attrs, cols...)
			refs = append(refs, ref{entity: p, cols: cols, keys: prefixed("", e.Key)})
		}
		attrs = append(attrs, prefixed("", r.Attrs)...)
		sch, err := schema.NewScheme(r.Name, attrs...)
		if err != nil {
			return nil, fmt.Errorf("er: relationship %s: %w", r.Name, err)
		}
		schemes = append(schemes, sch)
		for _, rf := range refs {
			sigma = append(sigma, deps.NewIND(r.Name, rf.cols, rf.entity, rf.keys))
		}
		if len(r.Attrs) > 0 {
			var keyCols []schema.Attribute
			for _, rf := range refs {
				keyCols = append(keyCols, rf.cols...)
			}
			sigma = append(sigma, deps.NewFD(r.Name, keyCols, prefixed("", r.Attrs)))
		}
	}

	db, err := schema.NewDatabase(schemes...)
	if err != nil {
		return nil, err
	}
	for _, d := range sigma {
		if err := d.Validate(db); err != nil {
			return nil, fmt.Errorf("er: generated invalid dependency %v: %w", d, err)
		}
	}
	return &Mapped{DB: db, Sigma: sigma}, nil
}
