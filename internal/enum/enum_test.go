package enum

import (
	"testing"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

func rabDB() *schema.Database {
	return schema.MustDatabase(schema.MustScheme("R", "A", "B"))
}

func TestFDCounts(t *testing.T) {
	db := rabDB()
	// X in {A, B, AB}, Y in {A, B, AB}: 9 canonical FDs.
	if got := len(FDs(db, Options{})); got != 9 {
		t.Errorf("FDs = %d, want 9", got)
	}
	// With empty LHS: X also ∅, so 12.
	if got := len(FDs(db, Options{IncludeEmptyLHSFDs: true})); got != 12 {
		t.Errorf("FDs with ∅ LHS = %d, want 12", got)
	}
	// Width bound 1 restricts side sizes.
	if got := len(FDs(db, Options{MaxWidth: 1})); got != 4 {
		t.Errorf("unary FDs = %d, want 4", got)
	}
}

func TestINDCounts(t *testing.T) {
	db := rabDB()
	// Width 1: 4; width 2 canonical: 2. Total 6.
	if got := len(INDs(db, Options{})); got != 6 {
		t.Errorf("INDs = %d, want 6", got)
	}
	if got := len(INDs(db, Options{MaxWidth: 1})); got != 4 {
		t.Errorf("unary INDs = %d, want 4", got)
	}
	// Two relations of one attribute each: 4 unary INDs.
	db2 := schema.MustDatabase(schema.MustScheme("R", "A"), schema.MustScheme("S", "B"))
	if got := len(INDs(db2, Options{})); got != 4 {
		t.Errorf("INDs over two unary schemes = %d, want 4", got)
	}
}

func TestINDsAreCanonical(t *testing.T) {
	db := rabDB()
	seen := map[string]bool{}
	for _, d := range INDs(db, Options{}) {
		if seen[d.Key()] {
			t.Errorf("duplicate canonical IND %v", d)
		}
		seen[d.Key()] = true
	}
}

func TestRDCounts(t *testing.T) {
	db := rabDB()
	// Unordered pairs with repetition over {A,B}: AA, AB, BB.
	if got := len(RDs(db)); got != 3 {
		t.Errorf("RDs = %d, want 3", got)
	}
}

func TestEMVDCounts(t *testing.T) {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	// X=∅: 6 unordered {Y|Z} splits; X singleton: 3. Total 9.
	if got := len(EMVDs(db)); got != 9 {
		t.Errorf("EMVDs = %d, want 9", got)
	}
}

func TestAllValidates(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D", "E"),
	)
	all := All(db, Options{MaxWidth: 2, IncludeEmptyLHSFDs: true})
	if len(all) == 0 {
		t.Fatalf("empty universe")
	}
	for _, d := range all {
		if err := d.Validate(db); err != nil {
			t.Errorf("enumerated invalid dependency %v: %v", d, err)
		}
	}
	// Everything enumerated must be checkable against a database.
	dbase := data.NewDatabase(db)
	dbase.MustInsert("R", data.Tuple{"1", "2"})
	dbase.MustInsert("S", data.Tuple{"1", "2", "3"})
	for _, d := range all {
		if _, err := dbase.Satisfies(d); err != nil {
			t.Errorf("cannot check %v: %v", d, err)
		}
	}
}

// The enumeration is semantically exhaustive in the small: for the scheme
// R(A,B), a database satisfying exactly a set of dependencies can be
// described by which universe members it satisfies; check a known case.
func TestSatisfactionProfile(t *testing.T) {
	db := rabDB()
	d := data.NewDatabase(db)
	d.MustInsert("R", data.Tuple{"1", "1"}, data.Tuple{"2", "2"})
	// This relation satisfies A -> B, B -> A, R[A] <= R[B], R[B] <= R[A],
	// and R[A == B].
	var satisfied []deps.Dependency
	for _, dep := range All(db, Options{IncludeEmptyLHSFDs: true}) {
		ok, err := d.Satisfies(dep)
		if err != nil {
			t.Fatal(err)
		}
		if ok && !dep.Trivial() {
			satisfied = append(satisfied, dep)
		}
	}
	want := map[string]bool{
		"R: A -> B":        true,
		"R: B -> A":        true,
		"R: A -> A,B":      true,
		"R: B -> A,B":      true,
		"R: A,B -> A":      false, // trivial, excluded above
		"R[A] <= R[B]":     true,
		"R[B] <= R[A]":     true,
		"R[A,B] <= R[B,A]": true,
		"R[A == B]":        true,
	}
	for _, dep := range satisfied {
		if !want[dep.String()] {
			t.Errorf("unexpected satisfied dependency %v", dep)
		}
	}
	if len(satisfied) != 8 {
		t.Errorf("satisfied %d nontrivial dependencies, want 8: %v", len(satisfied), satisfied)
	}
}

func TestMVDCounts(t *testing.T) {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	// X ∪ Y ∪ Z = {A,B,C}: X=∅ gives 3 unordered splits of 3 attrs into
	// two nonempty parts... each split {Y|Z} with Y∪Z = ABC: ({A},{BC}),
	// ({B},{AC}), ({C},{AB}); X singleton gives ({B},{C}) etc., 3 more.
	got := MVDs(db)
	if len(got) != 6 {
		t.Errorf("MVDs = %d (%v), want 6", len(got), got)
	}
	for _, m := range got {
		s, _ := db.Scheme(m.Rel)
		if len(m.X)+len(m.Y)+len(m.Z) != s.Width() {
			t.Errorf("%v does not cover the scheme", m)
		}
	}
}
