// Package enum enumerates all dependencies of bounded width over a
// database scheme. Sections 6 and 7 of the paper argue about databases
// that satisfy "exactly" a given set of FDs, INDs and RDs; verifying such
// claims mechanically requires enumerating the candidate dependency
// universe and checking satisfaction of each member.
package enum

import (
	"indfd/internal/deps"
	"indfd/internal/schema"
)

// Options bounds the enumeration.
type Options struct {
	// MaxWidth bounds IND/RD width and FD side sizes. Zero means the
	// maximal scheme width.
	MaxWidth int
	// IncludeEmptyLHSFDs includes FDs with an empty left-hand side
	// (R: ∅ -> Y), which Section 6 counts among the nontrivial FDs.
	IncludeEmptyLHSFDs bool
}

func (o Options) maxWidth(db *schema.Database) int {
	if o.MaxWidth > 0 {
		return o.MaxWidth
	}
	m := 0
	for _, name := range db.Names() {
		s, _ := db.Scheme(name)
		if s.Width() > m {
			m = s.Width()
		}
	}
	return m
}

// seqs enumerates all sequences of distinct attributes of s with length
// between 1 and maxLen.
func seqs(s *schema.Scheme, maxLen int) [][]schema.Attribute {
	attrs := s.Attrs()
	var out [][]schema.Attribute
	var cur []schema.Attribute
	used := make([]bool, len(attrs))
	var rec func()
	rec = func() {
		if len(cur) >= 1 {
			out = append(out, append([]schema.Attribute(nil), cur...))
		}
		if len(cur) == maxLen {
			return
		}
		for i, a := range attrs {
			if used[i] {
				continue
			}
			used[i] = true
			cur = append(cur, a)
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec()
	return out
}

// setsOf enumerates all subsets (as sorted sequences) of s's attributes
// with size between min and maxLen.
func setsOf(s *schema.Scheme, min, maxLen int) [][]schema.Attribute {
	attrs := s.Attrs()
	var out [][]schema.Attribute
	n := len(attrs)
	for mask := 0; mask < 1<<n; mask++ {
		var sub []schema.Attribute
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, attrs[i])
			}
		}
		if len(sub) >= min && len(sub) <= maxLen {
			out = append(out, sub)
		}
	}
	return out
}

// FDs enumerates all FDs over the scheme up to the width bound, one
// canonical representative per semantic FD (sides as sorted sets).
func FDs(db *schema.Database, opt Options) []deps.FD {
	w := opt.maxWidth(db)
	var out []deps.FD
	for _, name := range db.Names() {
		s, _ := db.Scheme(name)
		minLHS := 1
		if opt.IncludeEmptyLHSFDs {
			minLHS = 0
		}
		for _, x := range setsOf(s, minLHS, w) {
			for _, y := range setsOf(s, 1, w) {
				out = append(out, deps.NewFD(name, x, y))
			}
		}
	}
	return out
}

// INDs enumerates all INDs over the scheme up to the width bound, one
// canonical representative per semantic IND: left-hand sides are taken in
// sorted order (IND2 permutation closure makes other orders equivalent),
// right-hand sides range over all distinct sequences.
func INDs(db *schema.Database, opt Options) []deps.IND {
	w := opt.maxWidth(db)
	var out []deps.IND
	seen := map[string]bool{}
	for _, ln := range db.Names() {
		ls, _ := db.Scheme(ln)
		for _, rn := range db.Names() {
			rs, _ := db.Scheme(rn)
			for _, x := range seqs(ls, w) {
				for _, y := range seqs(rs, w) {
					if len(x) != len(y) {
						continue
					}
					d := deps.NewIND(ln, x, rn, y)
					k := d.Key()
					if seen[k] {
						continue
					}
					seen[k] = true
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// RDs enumerates all unary RDs over the scheme (every RD is equivalent to
// a set of unary RDs, so unary RDs suffice as the semantic universe),
// one canonical representative per unordered attribute pair, including
// the trivial R[A == A].
func RDs(db *schema.Database) []deps.RD {
	var out []deps.RD
	seen := map[string]bool{}
	for _, name := range db.Names() {
		s, _ := db.Scheme(name)
		for _, a := range s.Attrs() {
			for _, b := range s.Attrs() {
				d := deps.NewRD(name, []schema.Attribute{a}, []schema.Attribute{b})
				if seen[d.Key()] {
					continue
				}
				seen[d.Key()] = true
				out = append(out, d)
			}
		}
	}
	return out
}

// EMVDs enumerates all EMVDs over the scheme with X, Y, Z disjoint
// (representatives up to the Y|Z symmetry).
func EMVDs(db *schema.Database) []deps.EMVD {
	var out []deps.EMVD
	seen := map[string]bool{}
	for _, name := range db.Names() {
		s, _ := db.Scheme(name)
		full := s.Width()
		for _, x := range setsOf(s, 0, full) {
			rest := minusAttrs(s.Attrs(), x)
			restScheme := rest
			for _, y := range subsetsOf(restScheme) {
				if len(y) == 0 {
					continue
				}
				rest2 := minusAttrs(rest, y)
				for _, z := range subsetsOf(rest2) {
					if len(z) == 0 {
						continue
					}
					d := deps.NewEMVD(name, x, y, z)
					if seen[d.Key()] {
						continue
					}
					seen[d.Key()] = true
					out = append(out, d)
				}
			}
		}
	}
	return out
}

func minusAttrs(all, remove []schema.Attribute) []schema.Attribute {
	rm := map[schema.Attribute]bool{}
	for _, a := range remove {
		rm[a] = true
	}
	var out []schema.Attribute
	for _, a := range all {
		if !rm[a] {
			out = append(out, a)
		}
	}
	return out
}

func subsetsOf(attrs []schema.Attribute) [][]schema.Attribute {
	n := len(attrs)
	var out [][]schema.Attribute
	for mask := 0; mask < 1<<n; mask++ {
		var sub []schema.Attribute
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, attrs[i])
			}
		}
		out = append(out, sub)
	}
	return out
}

// All enumerates FDs, INDs and unary RDs as one dependency universe.
func All(db *schema.Database, opt Options) []deps.Dependency {
	var out []deps.Dependency
	for _, f := range FDs(db, opt) {
		out = append(out, f)
	}
	for _, i := range INDs(db, opt) {
		out = append(out, i)
	}
	for _, r := range RDs(db) {
		out = append(out, r)
	}
	return out
}

// MVDs enumerates all multivalued dependencies over the scheme: EMVDs
// whose attribute sets X, Y, Z cover the whole relation scheme (the
// classical MVD X ->> Y over R is the EMVD X ->> Y | U−X−Y).
func MVDs(db *schema.Database) []deps.EMVD {
	var out []deps.EMVD
	for _, e := range EMVDs(db) {
		s, _ := db.Scheme(e.Rel)
		if len(e.X)+len(e.Y)+len(e.Z) == s.Width() {
			out = append(out, e)
		}
	}
	return out
}
