package search

import (
	"testing"

	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

func rab() *schema.Database {
	return schema.MustDatabase(schema.MustScheme("R", "A", "B"))
}

func TestFindsEasyCounterexample(t *testing.T) {
	// ∅ ⊭ R: A -> B: a two-tuple counterexample exists in the smallest
	// space.
	db := rab()
	goal := deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))
	ce, found, err := Counterexample(db, nil, goal, Options{Domain: 2, MaxTuples: 2})
	if err != nil {
		t.Fatalf("Counterexample: %v", err)
	}
	if !found {
		t.Fatalf("no counterexample found")
	}
	sat, err := ce.Satisfies(goal)
	if err != nil || sat {
		t.Errorf("returned database satisfies the goal: %v %v", sat, err)
	}
}

func TestRespectsSigma(t *testing.T) {
	// {R: A -> B} vs goal R: B -> A: counterexamples exist and must
	// satisfy the FD.
	db := rab()
	sigma := []deps.Dependency{deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))}
	goal := deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A"))
	ce, found, err := Counterexample(db, sigma, goal, Options{Domain: 2, MaxTuples: 3})
	if err != nil || !found {
		t.Fatalf("Counterexample: %v %v", found, err)
	}
	ok, _, err := ce.SatisfiesAll(sigma)
	if err != nil || !ok {
		t.Errorf("counterexample violates sigma")
	}
}

func TestNoCounterexampleForTheorem44(t *testing.T) {
	// Theorem 4.4: only infinite counterexamples exist, so the bounded
	// search comes up empty.
	db := rab()
	sigma := []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")),
	}
	goal := deps.NewIND("R", deps.Attrs("B"), "R", deps.Attrs("A"))
	_, found, err := Counterexample(db, sigma, goal, Options{Domain: 3, MaxTuples: 3, RandomTrials: 200})
	if err != nil {
		t.Fatalf("Counterexample: %v", err)
	}
	if found {
		t.Errorf("found a finite counterexample, contradicting Theorem 4.4")
	}
}

func TestRandomPhase(t *testing.T) {
	// Make the exhaustive phase infeasible (wide scheme) and rely on the
	// random phase.
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C", "D", "E"))
	goal := deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))
	_, found, err := Counterexample(db, nil, goal, Options{
		Domain: 2, MaxTuples: 4, RandomTrials: 500, MaxExhaustive: 1,
	})
	if err != nil {
		t.Fatalf("Counterexample: %v", err)
	}
	if !found {
		t.Errorf("random search should stumble on a violation of A -> B")
	}
}

func TestValidation(t *testing.T) {
	db := rab()
	if _, _, err := Counterexample(db, nil, deps.NewFD("NOPE", deps.Attrs("A"), deps.Attrs("B")), Options{}); err == nil {
		t.Errorf("invalid goal should error")
	}
	bad := []deps.Dependency{deps.NewFD("NOPE", deps.Attrs("A"), deps.Attrs("B"))}
	if _, _, err := Counterexample(db, bad, deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")), Options{}); err == nil {
		t.Errorf("invalid sigma should error")
	}
}

func TestTrivialGoalHasNoCounterexample(t *testing.T) {
	db := rab()
	goal := deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("A"))
	_, found, err := Counterexample(db, nil, goal, Options{Domain: 2, MaxTuples: 2, RandomTrials: 50})
	if err != nil || found {
		t.Errorf("trivial goal cannot have a counterexample: %v %v", found, err)
	}
}

// TestRandomPhaseDeterminism pins one random-search outcome: math/rand/v2's
// PCG generator is fully specified, so a fixed seed must reproduce this
// exact counterexample on every platform and Go release. If this test
// breaks, the documented fixed-seed determinism of Options.Seed broke.
func TestRandomPhaseDeterminism(t *testing.T) {
	db := rab()
	sigma := []deps.Dependency{deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))}
	goal := deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A"))
	opt := Options{Domain: 2, MaxTuples: 2, RandomTrials: 200, Seed: 42, MaxExhaustive: 1}
	want := "R(A,B)\n  (0,0)\n  (1,0)"
	for run := 0; run < 2; run++ {
		ce, found, err := Counterexample(db, sigma, goal, opt)
		if err != nil || !found {
			t.Fatalf("run %d: found=%v err=%v", run, found, err)
		}
		if got := ce.String(); got != want {
			t.Errorf("run %d: seed-42 counterexample drifted:\ngot:\n%s\nwant:\n%s", run, got, want)
		}
	}
}

// TestSearchObs checks the search publishes its work counters.
func TestSearchObs(t *testing.T) {
	reg := obs.New()
	db := rab()
	sigma := []deps.Dependency{deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))}
	goal := deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A"))
	_, found, err := Counterexample(db, sigma, goal, Options{Domain: 2, MaxTuples: 3, Obs: reg})
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	s := reg.Snapshot()
	if s.Counters["search.databases_enumerated"] == 0 || s.Counters["search.checks"] == 0 {
		t.Errorf("missing search counters: %v", s.Counters)
	}
	if s.Counters["search.hits"] != 1 {
		t.Errorf("search.hits = %d, want 1", s.Counters["search.hits"])
	}
	if len(s.Spans) != 1 || s.Spans[0].Name != "search" {
		t.Errorf("missing search span: %+v", s.Spans)
	}
}
