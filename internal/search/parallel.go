// Parallel counterexample search.
//
// Both phases of the search are embarrassingly parallel — candidate
// databases are independent — but a naive fan-out would make the result
// depend on scheduling. The contract here is bit-determinism: for fixed
// Options the returned database is identical at any worker count,
// because every candidate has a canonical index and the winner is the
// lowest-index hit.
//
//   - Exhaustive phase: the candidate order is the serial recursion's
//     order, decomposed as (relation-0 subset, rest). A producer emits
//     relation-0 subsets in that canonical pre-order, workers claim them
//     and enumerate the remaining relations depth-first; the first hit
//     inside an item is that item's minimal candidate, and an atomic
//     best-index lets higher-index work cancel early (the producer stops
//     once everything it could emit is beaten, workers skip and abort
//     beaten items).
//
//   - Random phase: trial t draws from its own PCG stream (Seed, t), so
//     a trial's candidate depends only on Seed and t, never on which
//     worker ran it; the winner is again the lowest-index hit. Trial 0
//     of stream (Seed, 0) is exactly the serial generator's first draw.
//
// Work counters (checks, databases enumerated, trials) remain exact
// counts of work performed, which under early cancellation depends on
// timing; the returned database, the hits counter, and the winning trial
// index do not.
package search

import (
	"errors"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"indfd/internal/data"
	"indfd/internal/schema"
)

// errPruned unwinds a worker out of an item whose index can no longer
// win; it never escapes this file.
var errPruned = errors.New("search: candidate pruned by a lower-index hit")

// searcher carries the shared read-only inputs of both parallel phases.
type searcher struct {
	db        *schema.Database
	names     []string
	universes [][]data.Tuple
	maxTuples int
	workers   int
	// check reports whether a candidate is a counterexample (satisfies Σ,
	// violates the goal). It is called concurrently from every worker.
	check func(*data.Database) (bool, error)
}

// raceState coordinates one deterministic parallel race.
type raceState struct {
	best atomic.Int64 // lowest hit index so far; math.MaxInt64 = none
	done chan struct{}
	once sync.Once

	mu   sync.Mutex
	hits map[int64]*data.Database
	err  error
}

func newRaceState() *raceState {
	s := &raceState{done: make(chan struct{}), hits: make(map[int64]*data.Database)}
	s.best.Store(math.MaxInt64)
	return s
}

// hit records a counterexample found at the given candidate index and
// lowers the best index, cancelling all higher-index work.
func (s *raceState) hit(idx int64, cand *data.Database) {
	s.mu.Lock()
	s.hits[idx] = cand
	s.mu.Unlock()
	for {
		cur := s.best.Load()
		if idx >= cur || s.best.CompareAndSwap(cur, idx) {
			return
		}
	}
}

// fail records the first error and aborts the race.
func (s *raceState) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.once.Do(func() { close(s.done) })
}

// finish resolves the race: the error if any worker failed, otherwise
// the lowest-index hit.
func (s *raceState) finish() (*data.Database, int64, bool, error) {
	s.once.Do(func() { close(s.done) })
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return nil, 0, false, s.err
	}
	best := s.best.Load()
	if best == math.MaxInt64 {
		return nil, 0, false, nil
	}
	return s.hits[best], best, true, nil
}

// exhaustItem is one unit of exhaustive work: the canonical index and
// the fixed tuple subset of relation 0.
type exhaustItem struct {
	idx  int64
	rel0 []data.Tuple
}

// subsetsPreorder walks the subsets of universe with at most maxTuples
// members in the serial recursion's order — each subset first, then its
// extensions by later tuples — calling emit with consecutive indexes.
// emit returns false to stop the walk.
func subsetsPreorder(universe []data.Tuple, maxTuples int, emit func(idx int64, subset []data.Tuple) bool) {
	idx := int64(0)
	var cur []data.Tuple
	var rec func(start, left int) bool
	rec = func(start, left int) bool {
		if !emit(idx, append([]data.Tuple(nil), cur...)) {
			return false
		}
		idx++
		if left == 0 {
			return true
		}
		for i := start; i < len(universe); i++ {
			cur = append(cur, universe[i])
			if !rec(i+1, left-1) {
				return false
			}
			cur = cur[:len(cur)-1]
		}
		return true
	}
	rec(0, maxTuples)
}

// enumRest enumerates every database whose relation-0 tuples are fixed
// to rel0 while relations 1..n-1 range over subsets of at most maxTuples
// tuples, in the serial recursion's depth-first order, and returns the
// first counterexample. check may return errPruned to abandon the item.
func (s *searcher) enumRest(rel0 []data.Tuple, check func(*data.Database) (bool, error)) (*data.Database, bool, error) {
	choice := make([][]data.Tuple, len(s.names))
	choice[0] = rel0
	var rec func(rel int) (*data.Database, bool, error)
	rec = func(rel int) (*data.Database, bool, error) {
		if rel == len(s.names) {
			cand := data.NewDatabase(s.db)
			for i, name := range s.names {
				for _, t := range choice[i] {
					cand.MustInsert(name, t)
				}
			}
			ok, err := check(cand)
			if err != nil {
				return nil, false, err
			}
			if ok {
				return cand, true, nil
			}
			return nil, false, nil
		}
		universe := s.universes[rel]
		var pick func(start, left int) (*data.Database, bool, error)
		pick = func(start, left int) (*data.Database, bool, error) {
			cand, found, err := rec(rel + 1)
			if err != nil || found {
				return cand, found, err
			}
			if left == 0 {
				return nil, false, nil
			}
			for i := start; i < len(universe); i++ {
				choice[rel] = append(choice[rel], universe[i])
				cand, found, err := pick(i+1, left-1)
				choice[rel] = choice[rel][:len(choice[rel])-1]
				if err != nil || found {
					return cand, found, err
				}
			}
			return nil, false, nil
		}
		return pick(0, s.maxTuples)
	}
	return rec(1)
}

// exhaustive runs the exhaustive phase across the searcher's workers and
// returns the lowest-index counterexample of the space, identical to the
// serial enumeration's first hit at any worker count.
func (s *searcher) exhaustive() (*data.Database, bool, error) {
	if len(s.names) == 0 {
		// A scheme with no relations has exactly one (empty) database.
		cand := data.NewDatabase(s.db)
		ok, err := s.check(cand)
		if err != nil || !ok {
			return nil, false, err
		}
		return cand, true, nil
	}
	st := newRaceState()
	items := make(chan exhaustItem, s.workers)
	go func() {
		defer close(items)
		subsetsPreorder(s.universes[0], s.maxTuples, func(idx int64, subset []data.Tuple) bool {
			if idx > st.best.Load() {
				// Items are emitted in index order: everything from here
				// on is beaten by an existing hit.
				return false
			}
			select {
			case items <- exhaustItem{idx: idx, rel0: subset}:
				return true
			case <-st.done:
				return false
			}
		})
	}()

	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range items {
				if it.idx > st.best.Load() {
					continue
				}
				cand, found, err := s.enumRest(it.rel0, func(cand *data.Database) (bool, error) {
					if it.idx > st.best.Load() {
						return false, errPruned
					}
					return s.check(cand)
				})
				switch {
				case errors.Is(err, errPruned):
					// A lower-index hit arrived mid-item; the item lost.
				case err != nil:
					st.fail(err)
					return
				case found:
					st.hit(it.idx, cand)
				}
			}
		}()
	}
	wg.Wait()
	cand, _, found, err := st.finish()
	return cand, found, err
}

// random runs trials random candidates across the searcher's workers.
// Trial t is generated from the PCG stream (seed, t), so its candidate
// is a pure function of (seed, t); the returned counterexample is the
// lowest-trial hit regardless of worker count. onTrial is invoked once
// per trial actually generated (the work counter).
func (s *searcher) random(seed int64, trials int, onTrial func()) (*data.Database, int64, bool, error) {
	st := newRaceState()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := next.Add(1) - 1
				if t >= int64(trials) || t > st.best.Load() {
					return
				}
				select {
				case <-st.done:
					return
				default:
				}
				onTrial()
				r := rand.New(rand.NewPCG(uint64(seed), uint64(t)))
				cand := data.NewDatabase(s.db)
				for i, name := range s.names {
					n := r.IntN(s.maxTuples + 1)
					for j := 0; j < n; j++ {
						cand.MustInsert(name, s.universes[i][r.IntN(len(s.universes[i]))])
					}
				}
				ok, err := s.check(cand)
				if err != nil {
					st.fail(err)
					return
				}
				if ok {
					st.hit(t, cand)
				}
			}
		}()
	}
	wg.Wait()
	return st.finish()
}
