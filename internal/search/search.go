// Package search implements bounded exhaustive and randomized search for
// finite counterexample databases: given Σ and a goal, it looks for a
// finite database satisfying Σ and violating the goal. A hit refutes both
// finite and unrestricted implication; exhausting the bounded space proves
// nothing (the paper's Section 6 witnesses show finite implication can
// hold while unrestricted fails, and undecidability rules out any complete
// search). The core facade uses this as a refutation fallback when the
// chase diverges.
package search

import (
	"context"
	"fmt"
	"math/rand/v2"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// Options bounds a search.
type Options struct {
	// Domain is the number of distinct values (default 3).
	Domain int
	// MaxTuples bounds tuples per relation in exhaustive search
	// (default 3) and sets the tuple count in random search.
	MaxTuples int
	// RandomTrials is the number of random databases to try after (or
	// instead of) exhaustive search; 0 disables random search.
	RandomTrials int
	// Seed seeds the random search (0 uses a fixed default, keeping runs
	// deterministic: the PCG generator of math/rand/v2 produces the same
	// sequence for the same seed on every platform and Go release).
	Seed int64
	// MaxExhaustive bounds the number of databases the exhaustive phase
	// may enumerate; beyond it the phase is skipped (default 1 << 22).
	MaxExhaustive int
	// Obs, when non-nil, receives the search's work counters under the
	// "search." namespace (databases enumerated, random trials,
	// satisfaction checks). A nil registry costs nothing.
	Obs *obs.Registry
	// Span, when non-nil, parents the search's span; with Span nil but Obs
	// set, a root span is opened on Obs.
	Span *obs.Span
	// Ctx, when non-nil, is checked before every candidate database is
	// tested; a cancelled or expired context aborts the search with the
	// context's error. A nil Ctx never cancels.
	Ctx context.Context
}

func (o Options) withDefaults() Options {
	if o.Domain <= 0 {
		o.Domain = 3
	}
	if o.MaxTuples <= 0 {
		o.MaxTuples = 3
	}
	if o.MaxExhaustive <= 0 {
		o.MaxExhaustive = 1 << 22
	}
	return o
}

// Counterexample searches for a finite database over db satisfying every
// member of sigma and violating goal. It returns the database and
// found=true on a hit; found=false means the bounded search space held no
// counterexample (NOT that the implication holds).
func Counterexample(db *schema.Database, sigma []deps.Dependency, goal deps.Dependency, opt Options) (*data.Database, bool, error) {
	opt = opt.withDefaults()
	if err := goal.Validate(db); err != nil {
		return nil, false, err
	}
	for _, d := range sigma {
		if err := d.Validate(db); err != nil {
			return nil, false, err
		}
	}
	var sp *obs.Span
	if opt.Span != nil {
		sp = opt.Span.StartSpan("search")
	} else {
		sp = opt.Obs.StartSpan("search")
	}
	defer sp.End()
	cChecks := opt.Obs.Counter("search.checks")
	cEnumerated := opt.Obs.Counter("search.databases_enumerated")
	cTrials := opt.Obs.Counter("search.random_trials")
	cHits := opt.Obs.Counter("search.hits")
	check := func(cand *data.Database) (bool, error) {
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				return false, err
			}
		}
		cChecks.Inc()
		ok, _, err := cand.SatisfiesAll(sigma)
		if err != nil || !ok {
			return false, err
		}
		sat, err := cand.Satisfies(goal)
		if err != nil {
			return false, err
		}
		if !sat {
			cHits.Inc()
		}
		return !sat, nil
	}

	// Exhaustive phase: enumerate tuple subsets per relation, with at most
	// MaxTuples tuples each, over the value domain.
	names := db.Names()
	universes := make([][]data.Tuple, len(names))
	total := 1.0
	for i, name := range names {
		s, _ := db.Scheme(name)
		universes[i] = allTuples(s.Width(), opt.Domain)
		subsets := 0
		n := len(universes[i])
		// Count subsets of size ≤ MaxTuples (approximately; used only to
		// decide whether exhaustive search is feasible).
		c := 1
		for size := 0; size <= opt.MaxTuples && size <= n; size++ {
			subsets += c
			c = c * (n - size) / (size + 1)
		}
		total *= float64(subsets)
	}
	if total <= float64(opt.MaxExhaustive) {
		exSp := sp.StartSpan("search.exhaustive")
		cand, found, err := exhaustive(db, names, universes, opt.MaxTuples, func(cand *data.Database) (bool, error) {
			cEnumerated.Inc()
			return check(cand)
		})
		exSp.End()
		if err != nil || found {
			return cand, found, err
		}
	}

	// Random phase.
	if opt.RandomTrials > 0 {
		rndSp := sp.StartSpan("search.random")
		defer rndSp.End()
		seed := opt.Seed
		if seed == 0 {
			seed = 1
		}
		r := rand.New(rand.NewPCG(uint64(seed), 0))
		for trial := 0; trial < opt.RandomTrials; trial++ {
			cTrials.Inc()
			cand := data.NewDatabase(db)
			for i, name := range names {
				n := r.IntN(opt.MaxTuples + 1)
				for j := 0; j < n; j++ {
					cand.MustInsert(name, universes[i][r.IntN(len(universes[i]))])
				}
			}
			ok, err := check(cand)
			if err != nil {
				return nil, false, err
			}
			if ok {
				rndSp.SetInt("trials", int64(trial+1))
				return cand, true, nil
			}
		}
	}
	return nil, false, nil
}

// allTuples enumerates every tuple of the given width over the domain
// {0, ..., domain-1}.
func allTuples(width, domain int) []data.Tuple {
	var out []data.Tuple
	t := make([]int, width)
	var rec func(i int)
	rec = func(i int) {
		if i == width {
			row := make(data.Tuple, width)
			for j, v := range t {
				row[j] = data.Value(fmt.Sprintf("%d", v))
			}
			out = append(out, row)
			return
		}
		for v := 0; v < domain; v++ {
			t[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// exhaustive enumerates databases relation by relation (subsets of the
// tuple universe with at most maxTuples members) and returns the first
// counterexample.
func exhaustive(db *schema.Database, names []string, universes [][]data.Tuple, maxTuples int, check func(*data.Database) (bool, error)) (*data.Database, bool, error) {
	choice := make([][]data.Tuple, len(names))
	var rec func(rel int) (*data.Database, bool, error)
	rec = func(rel int) (*data.Database, bool, error) {
		if rel == len(names) {
			cand := data.NewDatabase(db)
			for i, name := range names {
				for _, t := range choice[i] {
					cand.MustInsert(name, t)
				}
			}
			ok, err := check(cand)
			if err != nil {
				return nil, false, err
			}
			if ok {
				return cand, true, nil
			}
			return nil, false, nil
		}
		universe := universes[rel]
		var pick func(start, left int) (*data.Database, bool, error)
		pick = func(start, left int) (*data.Database, bool, error) {
			cand, found, err := rec(rel + 1)
			if err != nil || found {
				return cand, found, err
			}
			if left == 0 {
				return nil, false, nil
			}
			for i := start; i < len(universe); i++ {
				choice[rel] = append(choice[rel], universe[i])
				cand, found, err := pick(i+1, left-1)
				choice[rel] = choice[rel][:len(choice[rel])-1]
				if err != nil || found {
					return cand, found, err
				}
			}
			return nil, false, nil
		}
		return pick(0, maxTuples)
	}
	return rec(0)
}
