// Package search implements bounded exhaustive and randomized search for
// finite counterexample databases: given Σ and a goal, it looks for a
// finite database satisfying Σ and violating the goal. A hit refutes both
// finite and unrestricted implication; exhausting the bounded space proves
// nothing (the paper's Section 6 witnesses show finite implication can
// hold while unrestricted fails, and undecidability rules out any complete
// search). The core facade uses this as a refutation fallback when the
// chase diverges.
package search

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// Options bounds a search.
type Options struct {
	// Domain is the number of distinct values (default 3).
	Domain int
	// MaxTuples bounds tuples per relation in exhaustive search
	// (default 3) and sets the tuple count in random search.
	MaxTuples int
	// RandomTrials is the number of random databases to try after (or
	// instead of) exhaustive search; 0 disables random search.
	RandomTrials int
	// Seed seeds the random search (0 uses a fixed default, keeping runs
	// deterministic: the PCG generator of math/rand/v2 produces the same
	// sequence for the same seed on every platform and Go release).
	Seed int64
	// MaxExhaustive bounds the number of databases the exhaustive phase
	// may enumerate; beyond it the phase is skipped (default 1 << 22).
	// A skip is loud: it increments search.exhaustive_skipped and logs a
	// warning, because a miss of a truncated search proves nothing about
	// the bounded space.
	MaxExhaustive int
	// Workers is the number of goroutines each phase shards its
	// candidates across (0 = runtime.GOMAXPROCS(0), 1 = serial). The
	// result is bit-identical at any worker count: candidates carry
	// canonical indexes and the lowest-index hit wins — see parallel.go
	// for the determinism contract.
	Workers int
	// Logger receives the exhaustive-phase-skipped warning; nil uses
	// slog.Default().
	Logger *slog.Logger
	// Obs, when non-nil, receives the search's work counters under the
	// "search." namespace (databases enumerated, random trials,
	// satisfaction checks). A nil registry costs nothing.
	Obs *obs.Registry
	// Span, when non-nil, parents the search's span; with Span nil but Obs
	// set, a root span is opened on Obs.
	Span *obs.Span
	// Ctx, when non-nil, is checked before every candidate database is
	// tested; a cancelled or expired context aborts the search with the
	// context's error. A nil Ctx never cancels.
	Ctx context.Context
}

func (o Options) withDefaults() Options {
	if o.Domain <= 0 {
		o.Domain = 3
	}
	if o.MaxTuples <= 0 {
		o.MaxTuples = 3
	}
	if o.MaxExhaustive <= 0 {
		o.MaxExhaustive = 1 << 22
	}
	return o
}

// Counterexample searches for a finite database over db satisfying every
// member of sigma and violating goal. It returns the database and
// found=true on a hit; found=false means the bounded search space held no
// counterexample (NOT that the implication holds).
func Counterexample(db *schema.Database, sigma []deps.Dependency, goal deps.Dependency, opt Options) (*data.Database, bool, error) {
	opt = opt.withDefaults()
	if err := goal.Validate(db); err != nil {
		return nil, false, err
	}
	for _, d := range sigma {
		if err := d.Validate(db); err != nil {
			return nil, false, err
		}
	}
	var sp *obs.Span
	if opt.Span != nil {
		sp = opt.Span.StartSpan("search")
	} else {
		sp = opt.Obs.StartSpan("search")
	}
	defer sp.End()
	cChecks := opt.Obs.Counter("search.checks")
	cEnumerated := opt.Obs.Counter("search.databases_enumerated")
	cTrials := opt.Obs.Counter("search.random_trials")
	cHits := opt.Obs.Counter("search.hits")
	check := func(cand *data.Database) (bool, error) {
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				return false, err
			}
		}
		cChecks.Inc()
		ok, _, err := cand.SatisfiesAll(sigma)
		if err != nil || !ok {
			return false, err
		}
		sat, err := cand.Satisfies(goal)
		if err != nil {
			return false, err
		}
		return !sat, nil
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	names := db.Names()
	universes := make([][]data.Tuple, len(names))
	total := 1.0
	for i, name := range names {
		s, _ := db.Scheme(name)
		universes[i] = allTuples(s.Width(), opt.Domain)
		subsets := 0
		n := len(universes[i])
		// Count subsets of size ≤ MaxTuples (approximately; used only to
		// decide whether exhaustive search is feasible).
		c := 1
		for size := 0; size <= opt.MaxTuples && size <= n; size++ {
			subsets += c
			c = c * (n - size) / (size + 1)
		}
		total *= float64(subsets)
	}
	eng := &searcher{db: db, names: names, universes: universes,
		maxTuples: opt.MaxTuples, workers: workers}

	// Exhaustive phase: enumerate tuple subsets per relation, with at most
	// MaxTuples tuples each, over the value domain, sharded across the
	// workers (lowest-index hit wins; see parallel.go).
	if total <= float64(opt.MaxExhaustive) {
		exSp := sp.StartSpan("search.exhaustive")
		exSp.SetInt("workers", int64(workers))
		eng.check = func(cand *data.Database) (bool, error) {
			cEnumerated.Inc()
			return check(cand)
		}
		cand, found, err := eng.exhaustive()
		exSp.End()
		if err != nil {
			return nil, false, err
		}
		if found {
			cHits.Inc()
			return cand, true, nil
		}
	} else {
		// A silently skipped phase would make a miss read as "no
		// counterexample exists within the bound" when the space was
		// never scanned; say so, loudly and measurably.
		opt.Obs.Counter("search.exhaustive_skipped").Inc()
		sp.SetAttr("exhaustive_skipped", "true")
		logger := opt.Logger
		if logger == nil {
			logger = slog.Default()
		}
		logger.Warn("search: exhaustive phase skipped, space exceeds MaxExhaustive; a miss no longer proves the bounded space is clear",
			"space", total, "max_exhaustive", opt.MaxExhaustive,
			"domain", opt.Domain, "max_tuples", opt.MaxTuples)
	}

	// Random phase: per-trial PCG streams keep trial t's candidate a pure
	// function of (Seed, t) at any worker count.
	if opt.RandomTrials > 0 {
		rndSp := sp.StartSpan("search.random")
		defer rndSp.End()
		rndSp.SetInt("workers", int64(workers))
		seed := opt.Seed
		if seed == 0 {
			seed = 1
		}
		eng.check = check
		cand, trial, found, err := eng.random(seed, opt.RandomTrials, cTrials.Inc)
		if err != nil {
			return nil, false, err
		}
		if found {
			cHits.Inc()
			rndSp.SetInt("trials", trial+1)
			return cand, true, nil
		}
	}
	return nil, false, nil
}

// allTuples enumerates every tuple of the given width over the domain
// {0, ..., domain-1}.
func allTuples(width, domain int) []data.Tuple {
	var out []data.Tuple
	t := make([]int, width)
	var rec func(i int)
	rec = func(i int) {
		if i == width {
			row := make(data.Tuple, width)
			for j, v := range t {
				row[j] = data.Value(fmt.Sprintf("%d", v))
			}
			out = append(out, row)
			return
		}
		for v := 0; v < domain; v++ {
			t[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}
