package search

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// runAt runs Counterexample with GOMAXPROCS pinned to p (and Workers
// unset, so the search derives its worker count from it, as production
// callers do).
func runAt(t *testing.T, p int, db *schema.Database, sigma []deps.Dependency, goal deps.Dependency, opt Options) (*data.Database, bool) {
	t.Helper()
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	ce, found, err := Counterexample(db, sigma, goal, opt)
	if err != nil {
		t.Fatalf("GOMAXPROCS=%d: Counterexample: %v", p, err)
	}
	return ce, found
}

// TestExhaustiveDeterministicAcrossCPUs is the determinism contract for
// the exhaustive phase: the returned counterexample is the lowest-index
// candidate of the canonical enumeration, so GOMAXPROCS must not change
// it.
func TestExhaustiveDeterministicAcrossCPUs(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	sigma := []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("C")),
	}
	goal := deps.NewFD("S", deps.Attrs("C"), deps.Attrs("D"))
	opt := Options{Domain: 2, MaxTuples: 2}

	var want string
	for _, p := range []int{1, 2, 8} {
		ce, found := runAt(t, p, db, sigma, goal, opt)
		if !found {
			t.Fatalf("GOMAXPROCS=%d: no counterexample", p)
		}
		got := ce.String()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("GOMAXPROCS=%d drifted:\ngot:\n%s\nwant:\n%s", p, got, want)
		}
	}
}

// TestRandomDeterministicAcrossCPUs does the same for the random phase
// over several seeds: trial t draws from stream (Seed, t), so worker
// count must not change which database a given seed produces.
func TestRandomDeterministicAcrossCPUs(t *testing.T) {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C", "D"))
	sigma := []deps.Dependency{deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))}
	goal := deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A"))
	for _, seed := range []int64{1, 7, 42, 31337} {
		opt := Options{Domain: 2, MaxTuples: 3, RandomTrials: 400, Seed: seed, MaxExhaustive: 1}
		var want string
		for _, p := range []int{1, 2, 8} {
			ce, found := runAt(t, p, db, sigma, goal, opt)
			got := "<miss>"
			if found {
				got = ce.String()
			}
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("seed %d, GOMAXPROCS=%d drifted:\ngot:\n%s\nwant:\n%s", seed, p, got, want)
			}
		}
	}
}

// TestWorkersOptionDeterministic pins the explicit Workers knob: a
// serial run and heavily oversubscribed runs must agree exactly.
func TestWorkersOptionDeterministic(t *testing.T) {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	sigma := []deps.Dependency{deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))}
	goal := deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A"))
	var want string
	for _, w := range []int{1, 2, 3, 16} {
		ce, found, err := Counterexample(db, sigma, goal, Options{Domain: 2, MaxTuples: 3, Workers: w})
		if err != nil || !found {
			t.Fatalf("Workers=%d: found=%v err=%v", w, found, err)
		}
		if want == "" {
			want = ce.String()
		} else if got := ce.String(); got != want {
			t.Errorf("Workers=%d drifted:\ngot:\n%s\nwant:\n%s", w, got, want)
		}
	}
}

// TestSubsetsPreorderMatchesSerialOrder pins the canonical enumeration
// order the determinism contract is defined against: each subset comes
// before its extensions, extensions are by increasing universe index.
func TestSubsetsPreorderMatchesSerialOrder(t *testing.T) {
	universe := []data.Tuple{{"0"}, {"1"}, {"2"}}
	var got []string
	subsetsPreorder(universe, 2, func(idx int64, subset []data.Tuple) bool {
		if idx != int64(len(got)) {
			t.Fatalf("idx %d out of order (have %d items)", idx, len(got))
		}
		s := ""
		for _, tp := range subset {
			s += string(tp[0])
		}
		got = append(got, s)
		return true
	})
	want := []string{"", "0", "01", "02", "1", "12", "2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("preorder = %v, want %v", got, want)
	}
}

// TestSubsetsPreorderStops checks the early-stop path the best-index
// pruning relies on.
func TestSubsetsPreorderStops(t *testing.T) {
	universe := []data.Tuple{{"0"}, {"1"}, {"2"}}
	calls := 0
	subsetsPreorder(universe, 3, func(idx int64, subset []data.Tuple) bool {
		calls++
		return idx < 2
	})
	if calls != 3 {
		t.Errorf("emit called %d times, want 3 (stop after idx 2)", calls)
	}
}

// TestExhaustiveSkippedCounter: a space beyond MaxExhaustive must
// increment search.exhaustive_skipped and mark the span.
func TestExhaustiveSkippedCounter(t *testing.T) {
	reg := obs.New()
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	goal := deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))
	_, _, err := Counterexample(db, nil, goal, Options{
		Domain: 2, MaxTuples: 2, MaxExhaustive: 1, RandomTrials: 5, Obs: reg,
	})
	if err != nil {
		t.Fatalf("Counterexample: %v", err)
	}
	s := reg.Snapshot()
	if s.Counters["search.exhaustive_skipped"] != 1 {
		t.Errorf("search.exhaustive_skipped = %d, want 1", s.Counters["search.exhaustive_skipped"])
	}
	if s.Counters["search.databases_enumerated"] != 0 {
		t.Errorf("skipped phase still enumerated %d databases", s.Counters["search.databases_enumerated"])
	}
	var skipped bool
	for _, sp := range s.Spans {
		for _, a := range sp.Attrs {
			if a.Key == "exhaustive_skipped" && a.Value == "true" {
				skipped = true
			}
		}
	}
	if !skipped {
		t.Errorf("span not marked exhaustive_skipped: %+v", s.Spans)
	}
}

// TestExhaustiveNotSkippedCounterAbsent: within the bound, the skip
// counter must stay untouched.
func TestExhaustiveNotSkippedCounterAbsent(t *testing.T) {
	reg := obs.New()
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	goal := deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))
	_, found, err := Counterexample(db, nil, goal, Options{Domain: 2, MaxTuples: 2, Obs: reg})
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if n := reg.Snapshot().Counters["search.exhaustive_skipped"]; n != 0 {
		t.Errorf("search.exhaustive_skipped = %d, want 0", n)
	}
}

// TestParallelCancellation: a pre-cancelled context aborts the parallel
// search with the context's error from every phase.
func TestParallelCancellation(t *testing.T) {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	goal := deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("A"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, found, err := Counterexample(db, nil, goal, Options{
		Domain: 3, MaxTuples: 3, RandomTrials: 100, Ctx: ctx, Workers: 4,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if found {
		t.Errorf("cancelled search claimed a hit")
	}
}

// TestParallelAgreesWithExpectedWinner: on a space where several
// counterexamples exist, the parallel search must return the serial
// enumeration's first, not just any.
func TestParallelAgreesWithExpectedWinner(t *testing.T) {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	goal := deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))
	// Serial reference at Workers=1.
	ref, found, err := Counterexample(db, nil, goal, Options{Domain: 3, MaxTuples: 3, Workers: 1})
	if err != nil || !found {
		t.Fatalf("serial: found=%v err=%v", found, err)
	}
	for _, w := range []int{2, 4, 8} {
		ce, found, err := Counterexample(db, nil, goal, Options{Domain: 3, MaxTuples: 3, Workers: w})
		if err != nil || !found {
			t.Fatalf("Workers=%d: found=%v err=%v", w, found, err)
		}
		if ce.String() != ref.String() {
			t.Errorf("Workers=%d returned a different counterexample:\ngot:\n%s\nwant:\n%s", w, ce.String(), ref.String())
		}
	}
}
