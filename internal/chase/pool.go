// Cross-request engine pooling. A resident server answers a stream of
// implication queries that overwhelmingly share a handful of (schema,
// sigma) shapes; compiling sigma and growing arenas, interners, witness
// indexes and union-find backing from zero on every request is pure
// allocation churn. An EnginePool keyed by a fingerprint of the schema
// and sigma recycles structurally reset engines across runs: a warm hit
// re-runs the same query shape with zero steady-state allocations (the
// interners keep their key strings across epochs, every slice keeps its
// backing array — TestZeroAlloc pins this).
//
// Correctness over the fingerprint: the hash picks the bucket, but a
// pooled engine is only handed out after a field-by-field comparison of
// its compiled schema and sigma against the request (matches below), so
// a hash collision degrades to a pool miss, never to reuse of the wrong
// compilation. Engines come back to the pool only after an error-free
// run — release discards an engine whose chase was killed mid-round
// (deadline, cancellation, contradiction), because its tableau is
// partial state no later request may observe.
package chase

import (
	"sync"

	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// EnginePool recycles chase engines across runs, bucketed by a
// (schema, sigma) fingerprint. Safe for concurrent use; the zero value
// is not ready, use NewEnginePool.
type EnginePool struct {
	pools sync.Map // uint64 fingerprint → *sync.Pool of *engine

	hits     *obs.Counter // pool.hits: requests served by a recycled engine
	misses   *obs.Counter // pool.misses: requests that compiled fresh
	discards *obs.Counter // pool.discards: engines poisoned by a mid-run kill
}

// NewEnginePool returns an empty pool reporting pool.hits/misses/
// discards to reg (nil = uncounted).
func NewEnginePool(reg *obs.Registry) *EnginePool {
	return &EnginePool{
		hits:     reg.Counter("pool.hits"),
		misses:   reg.Counter("pool.misses"),
		discards: reg.Counter("pool.discards"),
	}
}

// get returns a reset engine compiled from an identical schema and
// sigma, or nil (a miss). The caller arms it.
func (p *EnginePool) get(key uint64, db *schema.Database, sigma []deps.Dependency) *engine {
	if v, ok := p.pools.Load(key); ok {
		for {
			e, _ := v.(*sync.Pool).Get().(*engine)
			if e == nil {
				break
			}
			if e.matches(db, sigma) {
				p.hits.Inc()
				return e
			}
			// Fingerprint collision: this engine belongs to a different
			// (schema, sigma). Drop it rather than re-pooling it here —
			// colliding shapes in one bucket would otherwise thrash.
			p.discards.Inc()
		}
	}
	p.misses.Inc()
	return nil
}

// put returns a structurally reset engine to its bucket.
func (p *EnginePool) put(e *engine) {
	v, ok := p.pools.Load(e.poolKey)
	if !ok {
		v, _ = p.pools.LoadOrStore(e.poolKey, &sync.Pool{})
	}
	v.(*sync.Pool).Put(e)
}

// discard counts a poisoned engine; the engine is simply dropped for
// the GC, never re-pooled.
func (p *EnginePool) discard(*engine) {
	p.discards.Inc()
}

// Warm compiles sigma against db and parks the engine in the pool, so
// the first real request for that (schema, sigma) shape hits warm. A
// freshly compiled engine is already in the structurally reset state
// put expects (arm, not compilation, readies per-run state). The schema
// registry uses this to pay compilation at registration time instead of
// on the first query.
func (p *EnginePool) Warm(db *schema.Database, sigma []deps.Dependency) error {
	e, err := newEngine(db, sigma)
	if err != nil {
		return err
	}
	e.pool, e.poolKey = p, poolFingerprint(db, sigma)
	p.put(e)
	return nil
}

// matches reports whether the engine was compiled from exactly this
// schema and sigma — relation names, attribute sequences, and every
// dependency field-by-field, in order. It allocates nothing (it runs on
// the pooled hot path).
func (e *engine) matches(db *schema.Database, sigma []deps.Dependency) bool {
	names := db.Names()
	if len(names) != len(e.rels) {
		return false
	}
	for i, n := range names {
		if e.rels[i].name != n {
			return false
		}
		s1, _ := e.db.Scheme(n)
		s2, ok := db.Scheme(n)
		if !ok || !schema.EqualSeq(s1.Attrs(), s2.Attrs()) {
			return false
		}
	}
	if len(sigma) != len(e.sigma) {
		return false
	}
	for i := range sigma {
		if !sameDep(e.sigma[i], sigma[i]) {
			return false
		}
	}
	return true
}

func sameDep(a, b deps.Dependency) bool {
	switch da := a.(type) {
	case deps.FD:
		db, ok := b.(deps.FD)
		return ok && da.Rel == db.Rel && schema.EqualSeq(da.X, db.X) && schema.EqualSeq(da.Y, db.Y)
	case deps.IND:
		db, ok := b.(deps.IND)
		return ok && da.LRel == db.LRel && da.RRel == db.RRel &&
			schema.EqualSeq(da.X, db.X) && schema.EqualSeq(da.Y, db.Y)
	case deps.RD:
		db, ok := b.(deps.RD)
		return ok && da.Rel == db.Rel && schema.EqualSeq(da.X, db.X) && schema.EqualSeq(da.Y, db.Y)
	default:
		return false
	}
}

// FNV-1a, inlined so fingerprinting allocates nothing.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func hashByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func hashAttrs(h uint64, attrs []schema.Attribute) uint64 {
	for _, a := range attrs {
		h = hashString(h, string(a))
		h = hashByte(h, 0xfe)
	}
	return hashByte(h, 0xfd)
}

// poolFingerprint hashes the pool bucket key: every relation name and
// attribute sequence in database order, then every dependency of sigma
// in order with a kind tag. Order-sensitive on purpose — the engine's
// compile indexes (and hence its deterministic merge order) depend on
// it. Collisions are tolerable (matches re-verifies), so 64-bit FNV-1a
// is plenty.
func poolFingerprint(db *schema.Database, sigma []deps.Dependency) uint64 {
	h := uint64(fnvOffset)
	for _, n := range db.Names() {
		h = hashString(h, n)
		s, _ := db.Scheme(n)
		h = hashAttrs(h, s.Attrs())
	}
	h = hashByte(h, 0xff)
	for _, d := range sigma {
		switch dd := d.(type) {
		case deps.FD:
			h = hashByte(h, 1)
			h = hashString(h, dd.Rel)
			h = hashAttrs(h, dd.X)
			h = hashAttrs(h, dd.Y)
		case deps.IND:
			h = hashByte(h, 2)
			h = hashString(h, dd.LRel)
			h = hashAttrs(h, dd.X)
			h = hashString(h, dd.RRel)
			h = hashAttrs(h, dd.Y)
		case deps.RD:
			h = hashByte(h, 3)
			h = hashString(h, dd.Rel)
			h = hashAttrs(h, dd.X)
			h = hashAttrs(h, dd.Y)
		default:
			h = hashByte(h, 0)
		}
	}
	return h
}
