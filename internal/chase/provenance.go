// Provenance capture and proof extraction for the chase: the opt-in
// layer that turns an Implied verdict from a bit into a checkable
// derivation. The paper's positive results are exactly such objects —
// the proof of Lemma 7.2 is a fourteen-step equality derivation, i.e. a
// chase run read backwards — and this file mechanizes that reading.
//
// With Options.Provenance set, the engine records, as it runs:
//
//   - per tuple: which IND firing on which witness tuple created it
//     (seed tuples carry no rule — they are the leaves);
//   - per union: which FD or RD firing on which tuple(s) equated which
//     two value IDs.
//
// Capture sites are guarded by a single `e.prov != nil` branch, so the
// disabled path stays allocation-identical to the uninstrumented engine
// (TestZeroAlloc and BenchmarkChaseObs pin this), and capture never
// changes verdicts, traces, or counters (differential tests pin that).
//
// Extraction walks backwards from the goal: the goal equalities are
// explained by paths in the union-event graph (a BFS over events
// restricted to those that happened earlier, so justification is
// well-founded), each event needs its firing tuples, each FD event
// additionally needs the earlier events that made its tuples agree on
// X, and each IND-created tuple needs its witness. What remains is a
// minimal derivation DAG: leaves are input tuples, internal nodes are
// FD/IND/RD firings, and replaying the nodes in order reproduces the
// goal (the counterex tests do exactly that).

package chase

import (
	"fmt"
	"math"
	"strings"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

// event kinds of a provenance union event.
const (
	evFD = iota
	evRD
)

// provEvent is one recorded union: rule fired on tuple(s) t (and u for
// FDs), equating value IDs a and b. stamp orders events and tuple
// creations on one global clock.
type provEvent struct {
	stamp int64
	kind  uint8
	rule  int32 // index into e.fds (evFD) or e.rds (evRD)
	t, u  int32 // tuple IDs; u == -1 for RDs
	a, b  int32 // the equated value IDs (arena values, never rewritten)
}

// prov is the capture state, allocated only when Options.Provenance is
// set. pendRule/pendSrc carry an IND firing's identity into the insert
// that materializes its tuple.
type prov struct {
	clock    int64
	tupStamp []int64 // per tuple ID: creation time
	tupRule  []int32 // per tuple ID: index into e.inds, or -1 for a seed
	tupSrc   []int32 // per tuple ID: the IND's witness tuple, or -1
	events   []provEvent

	pendRule int32
	pendSrc  int32
}

func newProv() *prov { return &prov{pendRule: -1, pendSrc: -1} }

// noteTuple records a tuple's origin at insert time, consuming the
// pending IND identity (seeds insert with none pending).
func (p *prov) noteTuple(tid int32) {
	for int32(len(p.tupStamp)) <= tid {
		p.tupStamp = append(p.tupStamp, 0)
		p.tupRule = append(p.tupRule, -1)
		p.tupSrc = append(p.tupSrc, -1)
	}
	p.clock++
	p.tupStamp[tid] = p.clock
	p.tupRule[tid] = p.pendRule
	p.tupSrc[tid] = p.pendSrc
}

// noteUnion records one FD/RD union event.
func (p *prov) noteUnion(kind uint8, rule, t, u, a, b int32) {
	p.clock++
	p.events = append(p.events, provEvent{
		stamp: p.clock, kind: kind, rule: rule, t: t, u: u, a: a, b: b,
	})
}

// Derivation is a minimal proof DAG extracted from chase provenance:
// nodes in dependency order (every node's inputs precede it), leaves
// the seed tuples, internal nodes FD/IND/RD firings. Checks lists the
// value-ID pairs the goal needs equal; replaying the nodes in order —
// registering seed tuples, adding IND tuples, and uniting each fd/rd
// node's Eq pair after checking its premises — makes every Checks pair
// equal (the counterex replay test verifies this mechanically).
type Derivation struct {
	// Goal is the dependency the derivation proves implied.
	Goal string `json:"goal"`
	// Checks are the value-ID pairs that must end up equal.
	Checks [][2]int `json:"checks,omitempty"`
	// Nodes is the DAG in topological (chase time) order.
	Nodes []DerivNode `json:"nodes"`
}

// DerivNode is one node of a Derivation.
type DerivNode struct {
	ID int `json:"id"`
	// Kind is "seed" (an input tuple), "ind" (an IND firing and the
	// tuple it created), "fd" or "rd" (a firing that equated values).
	Kind string `json:"kind"`
	// Rule is the dependency that fired ("" for seeds).
	Rule string `json:"rule,omitempty"`
	// Rel and Vals describe tuple-bearing nodes (seed, ind): the
	// relation and the tuple's structural value IDs. Value identity is
	// positional sharing: an IND-created tuple reuses the IDs it copied
	// from its witness, and equalities derived later live in Eq edges,
	// not in Vals.
	Rel  string `json:"rel,omitempty"`
	Vals []int  `json:"vals,omitempty"`
	// Tuple renders Vals with the final canonical names, for display.
	Tuple []string `json:"tuple,omitempty"`
	// Inputs are the IDs of the nodes this node depends on: the witness
	// tuple for "ind"; the firing tuple(s) then any premise fd/rd nodes
	// (the earlier equalities that made the tuples agree on X) for "fd";
	// the firing tuple for "rd".
	Inputs []int `json:"inputs,omitempty"`
	// Eq is the value-ID pair an fd/rd node equates.
	Eq []int `json:"eq,omitempty"`
}

// Stats counts a derivation's node kinds.
func (d *Derivation) Stats() (seeds, inds, fds, rds int) {
	for _, n := range d.Nodes {
		switch n.Kind {
		case "seed":
			seeds++
		case "ind":
			inds++
		case "fd":
			fds++
		case "rd":
			rds++
		}
	}
	return
}

// String renders the derivation as indented text, one node per line.
func (d *Derivation) String() string {
	var b strings.Builder
	seeds, inds, fds, rds := d.Stats()
	fmt.Fprintf(&b, "derivation of %s (%d seed tuples, %d IND firings, %d FD firings, %d RD firings)\n",
		d.Goal, seeds, inds, fds, rds)
	for _, n := range d.Nodes {
		switch n.Kind {
		case "seed":
			fmt.Fprintf(&b, "  n%-3d seed %s(%s)\n", n.ID, n.Rel, strings.Join(n.Tuple, ","))
		case "ind":
			fmt.Fprintf(&b, "  n%-3d IND %s on n%d: %s(%s)\n",
				n.ID, n.Rule, n.Inputs[0], n.Rel, strings.Join(n.Tuple, ","))
		case "fd":
			fmt.Fprintf(&b, "  n%-3d FD %s on %s: v%d = v%d\n",
				n.ID, n.Rule, joinNodeRefs(n.Inputs), n.Eq[0], n.Eq[1])
		case "rd":
			fmt.Fprintf(&b, "  n%-3d RD %s on %s: v%d = v%d\n",
				n.ID, n.Rule, joinNodeRefs(n.Inputs), n.Eq[0], n.Eq[1])
		}
	}
	if len(d.Checks) > 0 {
		pairs := make([]string, len(d.Checks))
		for i, c := range d.Checks {
			pairs[i] = fmt.Sprintf("v%d = v%d", c[0], c[1])
		}
		fmt.Fprintf(&b, "goal holds: %s\n", strings.Join(pairs, ", "))
	}
	return b.String()
}

// DOT renders the derivation in Graphviz dot syntax: tuple nodes are
// boxes (seeds filled), firing nodes are ellipses, and edges point from
// each node to its inputs. The output is deterministic and golden-
// testable.
func (d *Derivation) DOT() string {
	var b strings.Builder
	b.WriteString("digraph derivation {\n")
	b.WriteString("  rankdir=BT;\n")
	fmt.Fprintf(&b, "  label=%q;\n", "derivation of "+d.Goal)
	for _, n := range d.Nodes {
		switch n.Kind {
		case "seed":
			fmt.Fprintf(&b, "  n%d [shape=box,style=filled,fillcolor=lightgrey,label=%q];\n",
				n.ID, fmt.Sprintf("%s(%s)", n.Rel, strings.Join(n.Tuple, ",")))
		case "ind":
			fmt.Fprintf(&b, "  n%d [shape=box,label=%q];\n",
				n.ID, fmt.Sprintf("IND %s\n%s(%s)", n.Rule, n.Rel, strings.Join(n.Tuple, ",")))
		case "fd":
			fmt.Fprintf(&b, "  n%d [shape=ellipse,label=%q];\n",
				n.ID, fmt.Sprintf("FD %s\nv%d = v%d", n.Rule, n.Eq[0], n.Eq[1]))
		case "rd":
			fmt.Fprintf(&b, "  n%d [shape=ellipse,label=%q];\n",
				n.ID, fmt.Sprintf("RD %s\nv%d = v%d", n.Rule, n.Eq[0], n.Eq[1]))
		}
	}
	for _, n := range d.Nodes {
		for _, in := range n.Inputs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", n.ID, in)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func joinNodeRefs(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("n%d", id)
	}
	return strings.Join(parts, ",")
}

// explainEq returns the indices of the events along one path connecting
// value IDs a and b in the union-event graph, using only events that
// happened strictly before the given stamp (well-foundedness: an
// event's premises may only be justified by earlier events). It returns
// nil when a == b, and an error when no path exists — which would mean
// the provenance log is incomplete, a bug.
func (e *engine) explainEq(a, b int32, before int64) ([]int, error) {
	if a == b {
		return nil, nil
	}
	p := e.prov
	// Adjacency over the (small, bounded-by-budget) event log. Built per
	// call: extraction runs once per Implied verdict, never on hot paths.
	type edge struct {
		to  int32
		idx int
	}
	adj := make(map[int32][]edge)
	for i := range p.events {
		ev := &p.events[i]
		if ev.stamp >= before {
			continue
		}
		adj[ev.a] = append(adj[ev.a], edge{ev.b, i})
		adj[ev.b] = append(adj[ev.b], edge{ev.a, i})
	}
	from := map[int32]edge{a: {a, -1}}
	queue := []int32{a}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == b {
			var path []int
			for x != a {
				f := from[x]
				path = append(path, f.idx)
				x = f.to
			}
			return path, nil
		}
		for _, ed := range adj[x] {
			if _, seen := from[ed.to]; !seen {
				from[ed.to] = edge{x, ed.idx}
				queue = append(queue, ed.to)
			}
		}
	}
	return nil, fmt.Errorf("chase: provenance cannot explain v%d = v%d (incomplete event log)", a, b)
}

// extractDerivation walks provenance backwards from the goal and builds
// the minimal derivation DAG. Called only on an Implied verdict with
// provenance enabled.
func (e *engine) extractDerivation() (*Derivation, error) {
	pairs, goalTids, err := e.goalProv()
	if err != nil {
		return nil, err
	}
	p := e.prov

	needT := make(map[int32]bool)
	needE := make(map[int]bool)
	var tq []int32
	var eq []int
	addT := func(tid int32) {
		if !needT[tid] {
			needT[tid] = true
			tq = append(tq, tid)
		}
	}
	addE := func(idx int) {
		if !needE[idx] {
			needE[idx] = true
			eq = append(eq, idx)
		}
	}
	for _, pr := range pairs {
		path, err := e.explainEq(pr[0], pr[1], math.MaxInt64)
		if err != nil {
			return nil, err
		}
		for _, idx := range path {
			addE(idx)
		}
	}
	for _, tid := range goalTids {
		addT(tid)
	}
	// premises[idx] records, per needed FD event, the premise events
	// that justified its X-agreement (for the node's Inputs edges).
	premises := make(map[int][]int)
	for len(tq) > 0 || len(eq) > 0 {
		if len(eq) > 0 {
			idx := eq[len(eq)-1]
			eq = eq[:len(eq)-1]
			ev := &p.events[idx]
			addT(ev.t)
			if ev.kind == evFD {
				addT(ev.u)
				fs := &e.fds[ev.rule]
				t, u := e.tupleVals(ev.t), e.tupleVals(ev.u)
				for _, x := range fs.xs {
					path, err := e.explainEq(t[x], u[x], ev.stamp)
					if err != nil {
						return nil, err
					}
					for _, pidx := range path {
						premises[idx] = append(premises[idx], pidx)
						addE(pidx)
					}
				}
			}
			continue
		}
		tid := tq[len(tq)-1]
		tq = tq[:len(tq)-1]
		if p.tupSrc[tid] >= 0 {
			addT(p.tupSrc[tid])
		}
	}

	// Order all needed nodes on the shared clock; both stamps are
	// strictly increasing, so the order is a topological sort.
	type item struct {
		stamp int64
		tid   int32 // valid when evIdx < 0
		evIdx int
	}
	var items []item
	for tid := range needT {
		items = append(items, item{stamp: p.tupStamp[tid], tid: tid, evIdx: -1})
	}
	for idx := range needE {
		items = append(items, item{stamp: p.events[idx].stamp, evIdx: idx})
	}
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].stamp < items[j-1].stamp; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}

	d := &Derivation{Goal: e.goalDesc}
	for _, pr := range pairs {
		d.Checks = append(d.Checks, [2]int{int(pr[0]), int(pr[1])})
	}
	tupNode := make(map[int32]int)
	evNode := make(map[int]int)
	for _, it := range items {
		n := DerivNode{ID: len(d.Nodes)}
		if it.evIdx < 0 {
			tid := it.tid
			t := e.tupleVals(tid)
			n.Rel = e.rels[e.tupRel[tid]].name
			n.Vals = make([]int, len(t))
			n.Tuple = make([]string, len(t))
			for i, v := range t {
				n.Vals[i] = int(v)
				n.Tuple[i] = e.describe(v)
			}
			if rule := p.tupRule[tid]; rule >= 0 {
				n.Kind = "ind"
				n.Rule = e.inds[rule].d.String()
				n.Inputs = []int{tupNode[p.tupSrc[tid]]}
			} else {
				n.Kind = "seed"
			}
			tupNode[tid] = n.ID
		} else {
			ev := &p.events[it.evIdx]
			n.Eq = []int{int(ev.a), int(ev.b)}
			if ev.kind == evFD {
				n.Kind = "fd"
				n.Rule = e.fds[ev.rule].d.String()
				n.Inputs = []int{tupNode[ev.t], tupNode[ev.u]}
				for _, pidx := range dedupInts(premises[it.evIdx]) {
					n.Inputs = append(n.Inputs, evNode[pidx])
				}
			} else {
				n.Kind = "rd"
				n.Rule = e.rds[ev.rule].d.String()
				n.Inputs = []int{tupNode[ev.t]}
			}
			evNode[it.evIdx] = n.ID
		}
		d.Nodes = append(d.Nodes, n)
	}
	return d, nil
}

// Verify replays the derivation against the scheme and Σ it claims to
// derive from and reports the first unsound step, making Derivation a
// checkable proof object rather than a log: seeds register tuples, an
// "ind" node must copy its witness's X projection into its Y positions,
// an "fd"/"rd" node must have its premise equalities already
// established (by the earlier nodes alone) before its Eq pair is
// united, and at the end every goal check must hold. A nil error means
// the DAG really derives the goal from the seeds using only firings of
// Σ — the test-side replay of the acceptance criterion.
func (d *Derivation) Verify(db *schema.Database, sigma []deps.Dependency) error {
	rules := make(map[string]deps.Dependency, len(sigma))
	for _, dep := range sigma {
		rules[dep.String()] = dep
	}
	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	type tup struct {
		rel  string
		vals []int
	}
	tuples := map[int]tup{}
	tupleIn := func(n DerivNode, i int) (tup, error) {
		if i >= len(n.Inputs) {
			return tup{}, fmt.Errorf("chase: derivation node n%d: missing input %d", n.ID, i)
		}
		t, ok := tuples[n.Inputs[i]]
		if !ok {
			return tup{}, fmt.Errorf("chase: derivation node n%d: input n%d is not an earlier tuple node", n.ID, n.Inputs[i])
		}
		return t, nil
	}
	for _, n := range d.Nodes {
		switch n.Kind {
		case "seed":
			tuples[n.ID] = tup{n.Rel, n.Vals}
		case "ind":
			r, ok := rules[n.Rule].(deps.IND)
			if !ok {
				return fmt.Errorf("chase: derivation node n%d: rule %q is not an IND of sigma", n.ID, n.Rule)
			}
			w, err := tupleIn(n, 0)
			if err != nil {
				return err
			}
			if w.rel != r.LRel || n.Rel != r.RRel {
				return fmt.Errorf("chase: derivation node n%d: IND %v fired on %s producing %s", n.ID, r, w.rel, n.Rel)
			}
			ls, _ := db.Scheme(r.LRel)
			rs, _ := db.Scheme(r.RRel)
			xs, err := positionsOf(ls, r.X)
			if err != nil {
				return err
			}
			ys, err := positionsOf(rs, r.Y)
			if err != nil {
				return err
			}
			for j := range ys {
				if n.Vals[ys[j]] != w.vals[xs[j]] {
					return fmt.Errorf("chase: derivation node n%d: IND %v did not copy its witness's projection", n.ID, r)
				}
			}
			tuples[n.ID] = tup{n.Rel, n.Vals}
		case "fd":
			r, ok := rules[n.Rule].(deps.FD)
			if !ok {
				return fmt.Errorf("chase: derivation node n%d: rule %q is not an FD of sigma", n.ID, n.Rule)
			}
			t, err := tupleIn(n, 0)
			if err != nil {
				return err
			}
			u, err := tupleIn(n, 1)
			if err != nil {
				return err
			}
			if t.rel != r.Rel || u.rel != r.Rel {
				return fmt.Errorf("chase: derivation node n%d: FD %v fired on tuples of %s, %s", n.ID, r, t.rel, u.rel)
			}
			sch, _ := db.Scheme(r.Rel)
			xs, err := positionsOf(sch, r.X)
			if err != nil {
				return err
			}
			ys, err := positionsOf(sch, r.Y)
			if err != nil {
				return err
			}
			for _, x := range xs {
				if find(t.vals[x]) != find(u.vals[x]) {
					return fmt.Errorf("chase: derivation node n%d: premise violated: tuples do not agree on %v yet", n.ID, sch.Attrs()[x])
				}
			}
			if !eqMatches(n.Eq, t.vals, u.vals, ys) {
				return fmt.Errorf("chase: derivation node n%d: FD %v cannot equate v%d and v%d", n.ID, r, n.Eq[0], n.Eq[1])
			}
			parent[find(n.Eq[1])] = find(n.Eq[0])
		case "rd":
			r, ok := rules[n.Rule].(deps.RD)
			if !ok {
				return fmt.Errorf("chase: derivation node n%d: rule %q is not an RD of sigma", n.ID, n.Rule)
			}
			t, err := tupleIn(n, 0)
			if err != nil {
				return err
			}
			if t.rel != r.Rel {
				return fmt.Errorf("chase: derivation node n%d: RD %v fired on a tuple of %s", n.ID, r, t.rel)
			}
			sch, _ := db.Scheme(r.Rel)
			xs, err := positionsOf(sch, r.X)
			if err != nil {
				return err
			}
			ys, err := positionsOf(sch, r.Y)
			if err != nil {
				return err
			}
			okEq := false
			for i := range xs {
				if pairIs(n.Eq, t.vals[xs[i]], t.vals[ys[i]]) {
					okEq = true
					break
				}
			}
			if !okEq {
				return fmt.Errorf("chase: derivation node n%d: RD %v cannot equate v%d and v%d", n.ID, r, n.Eq[0], n.Eq[1])
			}
			parent[find(n.Eq[1])] = find(n.Eq[0])
		default:
			return fmt.Errorf("chase: derivation node n%d: unknown kind %q", n.ID, n.Kind)
		}
	}
	for _, c := range d.Checks {
		if find(c[0]) != find(c[1]) {
			return fmt.Errorf("chase: replay does not establish goal equality v%d = v%d", c[0], c[1])
		}
	}
	return nil
}

// eqMatches reports whether eq is (t[y], u[y]) for some y (in either
// order).
func eqMatches(eq []int, t, u []int, ys []int) bool {
	for _, y := range ys {
		if pairIs(eq, t[y], u[y]) {
			return true
		}
	}
	return false
}

// pairIs reports whether eq is exactly {a, b} (in either order).
func pairIs(eq []int, a, b int) bool {
	if len(eq) != 2 {
		return false
	}
	return (eq[0] == a && eq[1] == b) || (eq[0] == b && eq[1] == a)
}

// dedupInts removes duplicates preserving first-occurrence order.
func dedupInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
