// Package chase implements the classical chase for sets of FDs and INDs
// with labeled nulls, the tool Section 4 and Section 7 of the paper reason
// with informally (the 14-step equality derivation of Lemma 7.2 is exactly
// a chase run). FDs equate values (union-find); INDs add tuples with fresh
// nulls.
//
// Because the implication problem for FDs and INDs together is undecidable
// (Mitchell; Chandra–Vardi, cited in the paper's introduction), the chase
// need not terminate. All entry points therefore take a step budget and
// return a three-valued Verdict: Implied (the chase derived the goal —
// sound for unrestricted implication, hence also for finite implication),
// NotImplied (the chase reached a fixpoint; the resulting finite database
// is a counterexample), or Unknown (budget exhausted).
package chase

import (
	"context"
	"fmt"
	"strings"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// Verdict is the outcome of a budgeted chase.
type Verdict int

const (
	// Unknown means the step budget was exhausted before the chase
	// either derived the goal or reached a fixpoint.
	Unknown Verdict = iota
	// Implied means the goal was derived: sigma ⊨ goal.
	Implied
	// NotImplied means the chase terminated in a model of sigma violating
	// the goal: sigma ⊭ goal (and, since the model is finite, also
	// sigma ⊭fin goal).
	NotImplied
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Implied:
		return "implied"
	case NotImplied:
		return "not implied"
	default:
		return "unknown"
	}
}

// Options configures a chase run.
type Options struct {
	// MaxTuples bounds the total number of tuples the chase may create
	// (including seeds). Zero means DefaultMaxTuples.
	MaxTuples int
	// Ctx, when non-nil, is checked once per chase round: a cancelled or
	// expired context stops the run within one round, returning the
	// context's error together with a partial Result (rounds and tuples
	// so far). This is how a resident server bounds the divergent chases
	// the paper proves must exist — a deadline, not just a tuple budget.
	// A nil Ctx never cancels and costs one predictable branch per round.
	Ctx context.Context
	// Trace records every rule application into Result.Trace — the
	// machine-generated analogue of the step-by-step derivation in the
	// proof of Lemma 7.2.
	Trace bool
	// Obs, when non-nil, receives the chase's work counters under the
	// "chase." namespace (rounds, tuples created, union-find merges,
	// fixpoint passes, ...). A nil registry costs nothing: the engine
	// holds nil instruments and every update is a no-op branch.
	Obs *obs.Registry
	// Span, when non-nil, is the parent under which the chase opens its
	// span (with per-round child spans, capped at spanRoundCap). When Span
	// is nil but Obs is set, the chase opens a root span on Obs.
	Span *obs.Span
}

// DefaultMaxTuples is the default tuple budget.
const DefaultMaxTuples = 4096

func (o Options) maxTuples() int {
	if o.MaxTuples <= 0 {
		return DefaultMaxTuples
	}
	return o.MaxTuples
}

// engine is a chase tableau: relations of tuples of value IDs, with a
// union-find over the IDs. Constants are IDs with names; labeled nulls are
// unnamed IDs.
type engine struct {
	db      *schema.Database
	fds     []deps.FD
	rds     []deps.RD
	inds    []deps.IND
	parent  []int
	name    []string // "" for nulls
	consts  map[string]int
	rels    map[string][][]int
	tuples  int
	max     int
	trace   []string
	doTrace bool
	ctx     context.Context // nil = never cancelled

	// Possibly-nil instruments, fetched once per chase call; the hot
	// loops touch them unconditionally (a nil receiver is a no-op).
	cRounds   *obs.Counter // chase rounds (IND pass + FD fixpoint)
	cTuples   *obs.Counter // tableau tuples created (seeds included)
	cUnions   *obs.Counter // union-find merges performed
	cFDFires  *obs.Counter // FD applications that equated values
	cRDFires  *obs.Counter // RD applications that equated values
	cINDAdds  *obs.Counter // IND applications that added a tuple
	cFixpoint *obs.Counter // FD fixpoint passes
	gTuples   *obs.Gauge   // high-water mark of live tableau tuples
}

func newEngine(db *schema.Database, sigma []deps.Dependency, opt Options) (*engine, error) {
	e := &engine{
		db:      db,
		consts:  make(map[string]int),
		rels:    make(map[string][][]int),
		max:     opt.maxTuples(),
		doTrace: opt.Trace,
		ctx:     opt.Ctx,

		cRounds:   opt.Obs.Counter("chase.rounds"),
		cTuples:   opt.Obs.Counter("chase.tuples_created"),
		cUnions:   opt.Obs.Counter("chase.unions"),
		cFDFires:  opt.Obs.Counter("chase.fd_applications"),
		cRDFires:  opt.Obs.Counter("chase.rd_applications"),
		cINDAdds:  opt.Obs.Counter("chase.ind_applications"),
		cFixpoint: opt.Obs.Counter("chase.fixpoint_passes"),
		gTuples:   opt.Obs.Gauge("chase.tuples_peak"),
	}
	for _, d := range sigma {
		if err := d.Validate(db); err != nil {
			return nil, err
		}
		switch dd := d.(type) {
		case deps.FD:
			e.fds = append(e.fds, dd)
		case deps.IND:
			e.inds = append(e.inds, dd)
		case deps.RD:
			e.rds = append(e.rds, dd)
		default:
			return nil, fmt.Errorf("chase: only FDs, INDs and RDs may appear in sigma, got %v", d.Kind())
		}
	}
	return e, nil
}

func (e *engine) newNull() int {
	id := len(e.parent)
	e.parent = append(e.parent, id)
	e.name = append(e.name, "")
	return id
}

func (e *engine) newConst(name string) int {
	if id, ok := e.consts[name]; ok {
		return id
	}
	id := len(e.parent)
	e.parent = append(e.parent, id)
	e.name = append(e.name, name)
	e.consts[name] = id
	return id
}

func (e *engine) find(x int) int {
	for e.parent[x] != x {
		e.parent[x] = e.parent[e.parent[x]]
		x = e.parent[x]
	}
	return x
}

// union merges the classes of a and b. Merging two distinct constants is a
// hard contradiction (sigma plus the seed is unsatisfiable over distinct
// constants) and reported as an error.
func (e *engine) union(a, b int) (changed bool, err error) {
	ra, rb := e.find(a), e.find(b)
	if ra == rb {
		return false, nil
	}
	na, nb := e.name[ra], e.name[rb]
	if na != "" && nb != "" && na != nb {
		return false, fmt.Errorf("chase: contradiction: constants %q and %q equated", na, nb)
	}
	// Keep the constant (if any) as the representative.
	if na == "" && nb != "" {
		ra, rb = rb, ra
	}
	e.parent[rb] = ra
	e.cUnions.Inc()
	return true, nil
}

// equal reports canonical equality.
func (e *engine) equal(a, b int) bool { return e.find(a) == e.find(b) }

// insert adds a tuple of value IDs to rel if no canonically-equal tuple is
// already present. It enforces the tuple budget.
func (e *engine) insert(rel string, t []int) (added bool, err error) {
	key := e.tupleKey(t)
	for _, u := range e.rels[rel] {
		if e.tupleKey(u) == key {
			return false, nil
		}
	}
	if e.tuples >= e.max {
		return false, errBudget
	}
	e.rels[rel] = append(e.rels[rel], t)
	e.tuples++
	e.cTuples.Inc()
	e.gTuples.SetMax(int64(e.tuples))
	return true, nil
}

var errBudget = fmt.Errorf("chase: tuple budget exhausted")

func (e *engine) tupleKey(t []int) string {
	b := make([]byte, 0, len(t)*4)
	for _, v := range t {
		r := e.find(v)
		b = append(b, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
	}
	return string(b)
}

// applyFDs fires every FD and RD until no more values are equated.
func (e *engine) applyFDs() (changed bool, err error) {
	for again := true; again; {
		again = false
		e.cFixpoint.Inc()
		for _, r := range e.rds {
			sch, _ := e.db.Scheme(r.Rel)
			xs := positions(sch, r.X)
			ys := positions(sch, r.Y)
			for _, t := range e.rels[r.Rel] {
				for i := range xs {
					ch, err := e.union(t[xs[i]], t[ys[i]])
					if err != nil {
						return changed, err
					}
					if ch {
						again = true
						changed = true
						e.cRDFires.Inc()
						e.tracef("RD %v equates %v and %v within %v", r, e.describe(t[xs[i]]), e.describe(t[ys[i]]), e.describeTuple(t))
					}
				}
			}
		}
		for _, f := range e.fds {
			sch, _ := e.db.Scheme(f.Rel)
			xs := positions(sch, f.X)
			ys := positions(sch, f.Y)
			groups := make(map[string][]int) // X-projection key -> first tuple index
			tuples := e.rels[f.Rel]
			for i, t := range tuples {
				key := e.projKey(t, xs)
				for _, j := range groups[key] {
					u := tuples[j]
					for _, y := range ys {
						ch, err := e.union(t[y], u[y])
						if err != nil {
							return changed, err
						}
						if ch {
							again = true
							changed = true
							e.cFDFires.Inc()
							e.tracef("FD %v equates %v and %v (tuples %v, %v agree on %s)",
								f, e.describe(t[y]), e.describe(u[y]), e.describeTuple(t), e.describeTuple(u), schema.JoinAttrs(f.X))
						}
					}
				}
				groups[key] = append(groups[key], i)
			}
		}
	}
	return changed, nil
}

func (e *engine) projKey(t []int, pos []int) string {
	b := make([]byte, 0, len(pos)*4)
	for _, p := range pos {
		r := e.find(t[p])
		b = append(b, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
	}
	return string(b)
}

// applyINDs fires every IND once: for each left tuple with no witness on
// the right, a new right tuple is created with fresh nulls outside the
// target columns.
func (e *engine) applyINDs() (changed bool, err error) {
	for _, d := range e.inds {
		ls, _ := e.db.Scheme(d.LRel)
		rs, _ := e.db.Scheme(d.RRel)
		xs := positions(ls, d.X)
		ys := positions(rs, d.Y)
		// Index right-hand projections.
		witnesses := make(map[string]bool)
		for _, u := range e.rels[d.RRel] {
			witnesses[e.projKey(u, ys)] = true
		}
		// Iterate over a snapshot: new tuples added to d.LRel (when LRel ==
		// RRel) are handled in the next round.
		snapshot := append([][]int(nil), e.rels[d.LRel]...)
		for _, t := range snapshot {
			key := e.projKey(t, xs)
			if witnesses[key] {
				continue
			}
			u := make([]int, rs.Width())
			for i := range u {
				u[i] = -1
			}
			for i := range ys {
				u[ys[i]] = t[xs[i]]
			}
			for i := range u {
				if u[i] == -1 {
					u[i] = e.newNull()
				}
			}
			added, err := e.insert(d.RRel, u)
			if err != nil {
				return changed, err
			}
			if added {
				changed = true
				witnesses[key] = true
				e.cINDAdds.Inc()
				e.tracef("IND %v adds %v to %s for %v", d, e.describeTuple(u), d.RRel, e.describeTuple(t))
			}
		}
	}
	return changed, nil
}

// dedup removes canonically duplicate tuples created by unions.
func (e *engine) dedup() {
	for rel, tuples := range e.rels {
		seen := make(map[string]bool, len(tuples))
		out := tuples[:0]
		for _, t := range tuples {
			k := e.tupleKey(t)
			if seen[k] {
				e.tuples--
				continue
			}
			seen[k] = true
			out = append(out, t)
		}
		e.rels[rel] = out
	}
}

// cancelled reports the context's error, if any: the per-round
// cancellation probe (a nil context is a predictable branch, keeping
// the uninstrumented, undeadlined path free).
func (e *engine) cancelled() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// run chases to fixpoint or budget. It returns done=true when a fixpoint
// was reached (the tableau is a model of sigma).
func (e *engine) run() (done bool, err error) {
	for {
		if err := e.cancelled(); err != nil {
			return false, err
		}
		e.cRounds.Inc()
		fdChanged, err := e.applyFDs()
		if err != nil {
			return false, err
		}
		e.dedup()
		indChanged, err := e.applyINDs()
		if err == errBudget {
			return false, nil
		}
		if err != nil {
			return false, err
		}
		if !fdChanged && !indChanged {
			return true, nil
		}
	}
}

func positions(s *schema.Scheme, attrs []schema.Attribute) []int {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		p, _ := s.Pos(a)
		out[i] = p
	}
	return out
}

// export materializes the tableau as a concrete database: constants keep
// their names, null classes become fresh values "_0", "_1", ... in a
// deterministic order, skipping any name already taken by a constant (a
// seed value may itself look like "_0").
func (e *engine) export() *data.Database {
	out := data.NewDatabase(e.db)
	names := make(map[int]data.Value)
	next := 0
	valueOf := func(id int) data.Value {
		r := e.find(id)
		if e.name[r] != "" {
			return data.Value(e.name[r])
		}
		if v, ok := names[r]; ok {
			return v
		}
		var v data.Value
		for {
			v = data.Value(fmt.Sprintf("_%d", next))
			next++
			if _, taken := e.consts[string(v)]; !taken {
				break
			}
		}
		names[r] = v
		return v
	}
	for _, rel := range e.db.Names() {
		for _, t := range e.rels[rel] {
			row := make(data.Tuple, len(t))
			for i, id := range t {
				row[i] = valueOf(id)
			}
			out.MustRelation(rel).MustInsert(row)
		}
	}
	return out
}

// tracef appends a formatted trace line when tracing is on.
func (e *engine) tracef(format string, args ...any) {
	if e.doTrace {
		e.trace = append(e.trace, fmt.Sprintf(format, args...))
	}
}

// describe renders a value id: its constant name, or _<root> for nulls.
func (e *engine) describe(id int) string {
	r := e.find(id)
	if e.name[r] != "" {
		return e.name[r]
	}
	return fmt.Sprintf("_%d", r)
}

// describeTuple renders a tableau tuple.
func (e *engine) describeTuple(t []int) string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = e.describe(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}
