// Package chase implements the classical chase for sets of FDs and INDs
// with labeled nulls, the tool Section 4 and Section 7 of the paper reason
// with informally (the 14-step equality derivation of Lemma 7.2 is exactly
// a chase run). FDs equate values (union-find); INDs add tuples with fresh
// nulls.
//
// Because the implication problem for FDs and INDs together is undecidable
// (Mitchell; Chandra–Vardi, cited in the paper's introduction), the chase
// need not terminate. All entry points therefore take a step budget and
// return a three-valued Verdict: Implied (the chase derived the goal —
// sound for unrestricted implication, hence also for finite implication),
// NotImplied (the chase reached a fixpoint; the resulting finite database
// is a counterexample), or Unknown (budget exhausted).
//
// The engine is a semi-naive, delta-driven fixpoint. Instead of rescanning
// the whole tableau every round and rebuilding every FD group and IND
// witness map from scratch (the reference engine in reference.go still
// does, as the differential-testing oracle), it maintains persistent
// incremental indexes keyed by interned integers:
//
//   - every tuple carries its canonical key (the vector of union-find
//     roots of its values) as a dense integer from a per-relation
//     intern.Table, so duplicate detection on insert is one map probe
//     instead of a linear rescan;
//   - each IND keeps a refcounted witness index over its right-hand
//     projection, updated on insert, re-key, and dedup-removal, and scans
//     only the left-hand tuples added since its last pass (witnesses are
//     monotone: unions never un-equate projections);
//   - when a union merges two value classes, only the tuples referencing
//     the merged class — tracked via per-class back-references — are
//     re-keyed; per-relation version counters let FD and RD passes skip
//     relations no union or insert has touched since their last clean
//     scan;
//   - the union-find unions by reference-count with path halving, while a
//     per-class label records the representative the reference engine
//     would have chosen, keeping trace output byte-identical.
//
// Verdicts, traces, counterexamples, and the chase.* counters are exactly
// those of the reference engine; differential tests pin all four.
package chase

import (
	"context"
	"fmt"
	"strings"
	"time"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/intern"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// Verdict is the outcome of a budgeted chase.
type Verdict int

const (
	// Unknown means the step budget was exhausted before the chase
	// either derived the goal or reached a fixpoint.
	Unknown Verdict = iota
	// Implied means the goal was derived: sigma ⊨ goal.
	Implied
	// NotImplied means the chase terminated in a model of sigma violating
	// the goal: sigma ⊭ goal (and, since the model is finite, also
	// sigma ⊭fin goal).
	NotImplied
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Implied:
		return "implied"
	case NotImplied:
		return "not implied"
	default:
		return "unknown"
	}
}

// Options configures a chase run.
type Options struct {
	// MaxTuples bounds the total number of tuples the chase may create
	// (including seeds). Zero means DefaultMaxTuples.
	MaxTuples int
	// Ctx, when non-nil, is checked once per chase round: a cancelled or
	// expired context stops the run within one round, returning the
	// context's error together with a partial Result (rounds and tuples
	// so far). This is how a resident server bounds the divergent chases
	// the paper proves must exist — a deadline, not just a tuple budget.
	// A nil Ctx never cancels and costs one predictable branch per round.
	Ctx context.Context
	// Trace records every rule application into Result.Trace — the
	// machine-generated analogue of the step-by-step derivation in the
	// proof of Lemma 7.2.
	Trace bool
	// Provenance records, per tuple, the IND firing that created it and,
	// per union, the FD/RD firing that caused it; on an Implied verdict
	// the goal is walked backwards through this log into
	// Result.Derivation, a minimal proof DAG (see provenance.go).
	// Capture is opt-in and free when disabled: every capture site is a
	// single nil check, and verdicts, traces and counters are identical
	// either way (differential-tested).
	Provenance bool
	// Profile attributes the chase's work — firings, tuples produced,
	// tuples scanned, scan wall time, rounds active — to each member of
	// sigma, into Result.Profile (see profile.go). Like Provenance it is
	// opt-in and free when disabled (single nil check per capture site,
	// allocation-identical off path) and never changes verdicts, traces
	// or counters.
	Profile bool
	// Footprint records which members of sigma the run actually touched —
	// fired at least once or scanned at least one tuple — into
	// Result.Used, rendered in each member's String() form. It is the
	// cheap sibling of Profile: the same per-member capture sites flip a
	// counter, but no scan timers run (no time.Now calls), so the serve
	// layer can afford it on every cacheable request. Footprints feed the
	// answer cache's per-member invalidation index; like Provenance and
	// Profile, capture never changes verdicts, traces or counters.
	Footprint bool
	// Workers bounds the worker pool the delta passes shard their scans
	// across. 0 or 1 runs the classic sequential engine; N > 1 runs the
	// read-only probe phases of each FD/RD fixpoint pass and each IND
	// delta pass on N goroutines and applies the proposed firings
	// through a single deterministic merge in (dependency compile index,
	// tuple arena offset) order — verdicts, traces, provenance DAGs and
	// profiles are byte-identical to the sequential engine at any
	// GOMAXPROCS (differential-tested, like the PR 3 parallel search).
	Workers int
	// ParThreshold is the minimum number of scannable items (tuples
	// across the pass's open scan regions) before a pass is sharded;
	// smaller passes run sequentially, parallel overhead being larger
	// than the scan. 0 means DefaultParThreshold; negative forces
	// sharding at any size (tests use this to exercise the merge on
	// tiny fixtures).
	ParThreshold int
	// Pool, when non-nil, recycles compiled engines across runs keyed by
	// a (schema, sigma) fingerprint: a hit skips compilation and reuses
	// the tuple arena, interners, union-find backing and witness indexes
	// of a structurally reset engine, making the warm steady state of a
	// resident server allocation-free. Engines are returned to the pool
	// only after an error-free run; a chase killed mid-round (deadline,
	// cancellation, contradiction) is poisoned and discarded.
	Pool *EnginePool
	// Obs, when non-nil, receives the chase's work counters under the
	// "chase." namespace (rounds, tuples created, union-find merges,
	// fixpoint passes, ...). A nil registry costs nothing: the engine
	// holds nil instruments and every update is a no-op branch.
	Obs *obs.Registry
	// Span, when non-nil, is the parent under which the chase opens its
	// span (with per-round child spans, capped at spanRoundCap). When Span
	// is nil but Obs is set, the chase opens a root span on Obs.
	Span *obs.Span
}

// DefaultMaxTuples is the default tuple budget.
const DefaultMaxTuples = 4096

// DefaultParThreshold is the default minimum scan size (items across a
// pass's open regions) before the pass is sharded across workers.
const DefaultParThreshold = 1024

func (o Options) maxTuples() int {
	if o.MaxTuples <= 0 {
		return DefaultMaxTuples
	}
	return o.MaxTuples
}

func (o Options) workers() int {
	if o.Workers <= 1 {
		return 1
	}
	return o.Workers
}

func (o Options) parThreshold() int {
	if o.ParThreshold == 0 {
		return DefaultParThreshold
	}
	if o.ParThreshold < 0 {
		return 0
	}
	return o.ParThreshold
}

var errBudget = fmt.Errorf("chase: tuple budget exhausted")

// engine is the semi-naive chase tableau. Values (constants and labeled
// nulls) are int32 IDs under a union-find; tuples live in a flat arena
// and are indexed per relation by insertion order, interned canonical
// key, and the incremental witness indexes of the INDs targeting the
// relation.
type engine struct {
	db      *schema.Database
	max     int
	doTrace bool
	ctx     context.Context // nil = never cancelled
	trace   []string

	// Union-find over value IDs. label[r] (valid at structural roots) is
	// the representative the reference engine would use — the ID that
	// trace lines and exports print. name[id] is non-empty exactly for
	// constants; watch[r] lists the tuples whose canonical key involves
	// class r (concatenated on union, so the losing side's tuples are the
	// ones re-keyed).
	parent []int32
	label  []int32
	name   []string
	watch  [][]int32
	consts map[string]int32

	// Tuple arena: vals is the flat value storage, tupOff/tupRel/tupKey/
	// tupDead are parallel per-tuple slices. Tuple IDs increase in
	// insertion order — the fact the INDs' delta scans binary-search on.
	vals    []int32
	tupOff  []int32
	tupRel  []int32
	tupKey  []int32
	tupDead []bool
	inDirty []bool
	tuples  int

	rels   []relState
	relIdx map[string]int32

	fds  []fdState
	rds  []rdState
	inds []indState

	// dirty lists tuples whose canonical key is stale after unions; they
	// are re-keyed in bulk by processDirty before dedup and the IND pass.
	dirty []int32

	keyBuf    []byte // scratch for key assembly (reused, never retained)
	tmp       []int32
	tmpStarts []int32 // per-IND delta starts, reused by the sharded pass

	// prov is the opt-in provenance log (nil = capture off, the
	// default); goalDesc and goalProv are set by the entry points so
	// extraction knows which equalities and tuples constitute the goal.
	prov     *prov
	goalDesc string
	goalProv func() (pairs [][2]int32, goalTuples []int32, err error)

	// Goal state, set by the Implies entry points and read by
	// goalDerived once per round. Kept as plain engine fields (not a
	// closure) so a pooled engine's warm path allocates nothing: the
	// buffers are reused across runs.
	goalKind uint8 // goalNone/goalFD/goalIND/goalRD
	goalT1   []int32
	goalT2   []int32
	goalXs   []int
	goalYs   []int
	gpi      *projIndex // IND goal witness index, reused across runs
	gpiRel   int32      // relation gpi is registered on, -1 when none

	// par is the worker runner for sharded delta passes (nil = the
	// sequential engine, the default); parTh gates tiny passes and
	// parUsed marks a round that ran at least one sharded region.
	par     *parRunner
	parTh   int
	parUsed bool

	// pool bookkeeping: the pool this engine is released to (nil =
	// unpooled) and the sigma it was compiled from, retained so a pool
	// hit can verify the cached compilation matches the request without
	// allocating.
	pool    *EnginePool
	poolKey uint64
	sigma   []deps.Dependency

	// prof is the opt-in per-dependency cost profiler (nil = off, the
	// default); round is the current chase round, maintained
	// unconditionally (one integer increment) for rounds-active
	// attribution.
	prof  *engineProfile
	round int64

	// Possibly-nil instruments, fetched once per chase call; the hot
	// loops touch them unconditionally (a nil receiver is a no-op).
	cRounds   *obs.Counter // chase rounds (IND pass + FD fixpoint)
	cTuples   *obs.Counter // tableau tuples created (seeds included)
	cUnions   *obs.Counter // union-find merges performed
	cFDFires  *obs.Counter // FD applications that equated values
	cRDFires  *obs.Counter // RD applications that equated values
	cINDAdds  *obs.Counter // IND applications that added a tuple
	cFixpoint *obs.Counter // FD fixpoint passes
	cDelta    *obs.Counter // tuples scanned by delta-driven IND passes
	cRekeyed  *obs.Counter // tuples re-keyed after class merges
	cSkips    *obs.Counter // FD/RD scans skipped by the version gate
	cParRnds  *obs.Counter // rounds that ran at least one sharded region
	cConflict *obs.Counter // speculative probe results invalidated at merge
	gTuples   *obs.Gauge   // high-water mark of live tableau tuples
}

// fdState is an FD of sigma compiled for repeated firing: resolved
// positions, a persistent intern table for X-projection group keys, and
// generation-stamped member lists (reset lazily per pass, so steady-state
// passes allocate nothing). cleanAt is rels[ri].version+1 as of the last
// scan that fired nothing, or 0; the scan is skipped while the version
// matches.
type fdState struct {
	d       deps.FD
	ri      int32
	xs, ys  []int
	keys    *intern.Table
	members [][]int32
	mgen    []uint32
	gen     uint32
	cleanAt uint64
}

// rdState is an RD of sigma compiled for repeated firing.
type rdState struct {
	d       deps.RD
	ri      int32
	xs, ys  []int
	cleanAt uint64
}

// indState is an IND of sigma compiled for repeated firing: resolved
// positions, the incremental witness index over its right-hand
// projection, and the high-water tuple ID up to which every left-hand
// tuple is known to have a witness.
type indState struct {
	d       deps.IND
	lri     int32
	rri     int32
	xs, ys  []int
	pi      *projIndex
	maxSeen int32
}

// Goal kinds for goalDerived.
const (
	goalNone uint8 = iota
	goalFD
	goalIND
	goalRD
)

// newEngine compiles sigma against db into a fresh engine; arm must be
// called before running (acquireEngine does both).
func newEngine(db *schema.Database, sigma []deps.Dependency) (*engine, error) {
	e := &engine{
		db:     db,
		consts: make(map[string]int32),
		sigma:  sigma,
		gpiRel: -1,
	}
	names := db.Names()
	e.rels = make([]relState, len(names))
	e.relIdx = make(map[string]int32, len(names))
	for i, n := range names {
		sch, _ := db.Scheme(n)
		e.rels[i] = relState{name: n, width: sch.Width(), keys: intern.New(16)}
		e.relIdx[n] = int32(i)
	}
	// INDs with the same right-hand relation and projection share one
	// witness index: its content is a function of those two things alone,
	// and a wide sigma (many INDs into one relation, as in the wide-FD
	// workload) would otherwise pay one index update per IND per insert.
	witnessIdx := make(map[string]*projIndex)
	for _, d := range sigma {
		if err := d.Validate(db); err != nil {
			return nil, err
		}
		switch dd := d.(type) {
		case deps.FD:
			sch, _ := db.Scheme(dd.Rel)
			xs, err := positionsOf(sch, dd.X)
			if err != nil {
				return nil, err
			}
			ys, err := positionsOf(sch, dd.Y)
			if err != nil {
				return nil, err
			}
			e.fds = append(e.fds, fdState{
				d: dd, ri: e.relIdx[dd.Rel], xs: xs, ys: ys, keys: intern.New(16),
			})
		case deps.IND:
			ls, _ := db.Scheme(dd.LRel)
			rs, _ := db.Scheme(dd.RRel)
			xs, err := positionsOf(ls, dd.X)
			if err != nil {
				return nil, err
			}
			ys, err := positionsOf(rs, dd.Y)
			if err != nil {
				return nil, err
			}
			rri := e.relIdx[dd.RRel]
			wkey := fmt.Sprintf("%d:%v", rri, ys)
			pi := witnessIdx[wkey]
			if pi == nil {
				pi = &projIndex{pos: ys, keys: intern.New(16)}
				e.rels[rri].watchers = append(e.rels[rri].watchers, pi)
				witnessIdx[wkey] = pi
			}
			e.inds = append(e.inds, indState{
				d: dd, lri: e.relIdx[dd.LRel], rri: rri, xs: xs, ys: ys, pi: pi, maxSeen: -1,
			})
		case deps.RD:
			sch, _ := db.Scheme(dd.Rel)
			xs, err := positionsOf(sch, dd.X)
			if err != nil {
				return nil, err
			}
			ys, err := positionsOf(sch, dd.Y)
			if err != nil {
				return nil, err
			}
			e.rds = append(e.rds, rdState{d: dd, ri: e.relIdx[dd.Rel], xs: xs, ys: ys})
		default:
			return nil, fmt.Errorf("chase: only FDs, INDs and RDs may appear in sigma, got %v", d.Kind())
		}
	}
	return e, nil
}

// arm readies an engine (fresh or pooled) for one run: budget, context,
// instruments, opt-in capture state, and the worker runner. Everything
// arm touches is per-run; the compiled structure (positions, shared
// witness indexes) is untouched.
func (e *engine) arm(opt Options) {
	e.max = opt.maxTuples()
	e.doTrace = opt.Trace
	e.ctx = opt.Ctx

	e.cRounds = opt.Obs.Counter("chase.rounds")
	e.cTuples = opt.Obs.Counter("chase.tuples_created")
	e.cUnions = opt.Obs.Counter("chase.unions")
	e.cFDFires = opt.Obs.Counter("chase.fd_applications")
	e.cRDFires = opt.Obs.Counter("chase.rd_applications")
	e.cINDAdds = opt.Obs.Counter("chase.ind_applications")
	e.cFixpoint = opt.Obs.Counter("chase.fixpoint_passes")
	e.cDelta = opt.Obs.Counter("chase.delta_tuples")
	e.cRekeyed = opt.Obs.Counter("chase.rekeyed_tuples")
	e.cSkips = opt.Obs.Counter("chase.scans_skipped")
	e.cParRnds = opt.Obs.Counter("chase.parallel_rounds")
	e.cConflict = opt.Obs.Counter("chase.worker_merge_conflicts")
	e.gTuples = opt.Obs.Gauge("chase.tuples_peak")

	if opt.Provenance {
		e.prov = newProv()
	} else {
		e.prov = nil
	}
	if opt.Profile || opt.Footprint {
		// Footprint-only capture reuses the profiler's aggregates but skips
		// the scan timers (timed == false): the firings/scanned counts are
		// all a footprint needs, and clock calls are the profiler's only
		// real cost.
		e.prof = newEngineProfile(len(e.fds), len(e.rds), len(e.inds))
		e.prof.timed = opt.Profile
	} else {
		e.prof = nil
	}
	if w := opt.workers(); w > 1 {
		if e.par == nil || e.par.workers != w {
			e.par = newParRunner(w)
		}
		e.parTh = opt.parThreshold()
	} else {
		e.par = nil
	}
}

// acquireEngine returns an armed engine for db and sigma: a pooled one
// when opt.Pool holds a structurally reset engine compiled from an
// identical schema and sigma, else a freshly compiled one. The caller
// must pair it with e.release(err).
func acquireEngine(db *schema.Database, sigma []deps.Dependency, opt Options) (*engine, error) {
	if opt.Pool != nil {
		key := poolFingerprint(db, sigma)
		if e := opt.Pool.get(key, db, sigma); e != nil {
			e.arm(opt)
			return e, nil
		}
		e, err := newEngine(db, sigma)
		if err != nil {
			return nil, err
		}
		e.pool, e.poolKey = opt.Pool, key
		e.arm(opt)
		return e, nil
	}
	e, err := newEngine(db, sigma)
	if err != nil {
		return nil, err
	}
	e.arm(opt)
	return e, nil
}

// release ends a run: the worker runner is stopped (no goroutine may
// outlive the run and touch a recycled engine), and a pooled engine is
// structurally reset and returned to its pool — unless the run errored
// (deadline, cancellation, contradiction, or any other mid-round kill),
// in which case its state is partial and it is discarded so no later
// request can observe it. A budget-exhausted Unknown verdict is not an
// error: that chase stopped at a clean round boundary.
func (e *engine) release(err error) {
	if e.par != nil {
		e.par.stop()
	}
	if e.pool == nil {
		return
	}
	if err != nil {
		e.pool.discard(e)
		return
	}
	e.reset()
	e.pool.put(e)
}

// reset returns the engine to its just-compiled state while keeping
// every backing allocation: slices are truncated in place, interners
// start a new epoch (cached key strings stay warm), and per-dependency
// scan state is rewound. A reset engine re-running the same query
// performs the same work with zero steady-state allocations.
func (e *engine) reset() {
	e.parent = e.parent[:0]
	e.label = e.label[:0]
	e.name = e.name[:0]
	e.watch = e.watch[:0]
	clear(e.consts)

	e.vals = e.vals[:0]
	e.tupOff = e.tupOff[:0]
	e.tupRel = e.tupRel[:0]
	e.tupKey = e.tupKey[:0]
	e.tupDead = e.tupDead[:0]
	e.inDirty = e.inDirty[:0]
	e.tuples = 0
	e.dirty = e.dirty[:0]

	// Result.Trace aliases e.trace: the returned slice belongs to the
	// caller now, so drop the reference instead of truncating.
	e.trace = nil
	e.round = 0
	e.prov = nil
	e.prof = nil
	e.goalDesc = ""
	e.goalProv = nil
	e.goalKind = goalNone
	e.parUsed = false

	// The IND goal's witness index is appended to its relation's watcher
	// list last (after compilation); pop it before rewinding the
	// relations so a later request never probes a stale goal index.
	if e.gpiRel >= 0 {
		ws := e.rels[e.gpiRel].watchers
		e.rels[e.gpiRel].watchers = ws[:len(ws)-1]
		e.gpiRel = -1
	}
	for i := range e.rels {
		rs := &e.rels[i]
		rs.order = rs.order[:0]
		rs.keys.Reset()
		rs.count = rs.count[:0]
		rs.seen = rs.seen[:0]
		rs.sweep = 0
		rs.version = 0
		rs.dupDirty = false
		for _, pi := range rs.watchers {
			pi.reset()
		}
	}
	for i := range e.fds {
		fs := &e.fds[i]
		fs.keys.Reset()
		fs.members = fs.members[:0]
		fs.mgen = fs.mgen[:0]
		fs.cleanAt = 0
	}
	for i := range e.rds {
		e.rds[i].cleanAt = 0
	}
	for i := range e.inds {
		e.inds[i].maxSeen = -1
	}
}

// positionsOf resolves an attribute sequence to scheme positions,
// reporting an attribute the scheme does not have (instead of silently
// mapping it to position 0).
func positionsOf(s *schema.Scheme, attrs []schema.Attribute) ([]int, error) {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		p, ok := s.Pos(a)
		if !ok {
			return nil, fmt.Errorf("chase: attribute %s not in scheme %s", a, s.Name())
		}
		out[i] = p
	}
	return out, nil
}

// applyFDs fires every FD and RD until no more values are equated. Scans
// keep the reference engine's full-scan-in-order structure (so fire order
// and trace bytes are identical) but are skipped wholesale while the
// relation's version is unchanged since the dependency's last clean scan
// — unchanged version means unchanged membership and unchanged roots,
// hence a scan that would fire nothing.
func (e *engine) applyFDs() (changed bool, err error) {
	for again := true; again; {
		again = false
		e.cFixpoint.Inc()
		var fired bool
		var err error
		if e.par != nil {
			fired, err = e.fdPassPar()
		} else {
			fired, err = e.fdPassSeq()
		}
		if fired {
			again, changed = true, true
		}
		if err != nil {
			return changed, err
		}
	}
	return changed, nil
}

// fdPassSeq is one sequential RD-then-FD pass in compile order.
func (e *engine) fdPassSeq() (fired bool, err error) {
	for i := range e.rds {
		ds := &e.rds[i]
		if ds.cleanAt == e.rels[ds.ri].version+1 {
			e.cSkips.Inc()
			continue
		}
		f, err := e.scanRD(i)
		fired = fired || f
		if err != nil {
			return fired, err
		}
	}
	for i := range e.fds {
		fs := &e.fds[i]
		if fs.cleanAt == e.rels[fs.ri].version+1 {
			e.cSkips.Inc()
			continue
		}
		f, err := e.scanFD(i)
		fired = fired || f
		if err != nil {
			return fired, err
		}
	}
	return fired, nil
}

// scanRD fires e.rds[i] over its whole relation; the caller has already
// decided the version gate.
func (e *engine) scanRD(i int) (fired bool, err error) {
	ds := &e.rds[i]
	rel := &e.rels[ds.ri]
	var scanStart time.Time
	if e.profTimed() {
		scanStart = time.Now()
	}
	for _, tid := range rel.order {
		t := e.tupleVals(tid)
		for j := range ds.xs {
			ch, err := e.union(t[ds.xs[j]], t[ds.ys[j]])
			if err != nil {
				return fired, err
			}
			if ch {
				fired = true
				e.cRDFires.Inc()
				if e.prov != nil {
					e.prov.noteUnion(evRD, int32(i), tid, -1, t[ds.xs[j]], t[ds.ys[j]])
				}
				if e.prof != nil {
					e.prof.rd[i].fire(e.round)
				}
				if e.doTrace {
					e.tracef("RD %v equates %v and %v within %v",
						ds.d, e.describe(t[ds.xs[j]]), e.describe(t[ds.ys[j]]), e.describeTuple(t))
				}
			}
		}
	}
	if e.prof != nil {
		a := &e.prof.rd[i]
		a.scanned += int64(len(rel.order))
		if e.prof.timed {
			a.scanNS += time.Since(scanStart).Nanoseconds()
		}
	}
	if fired {
		ds.cleanAt = 0
	} else {
		ds.cleanAt = rel.version + 1
	}
	return fired, nil
}

// scanFD fires e.fds[i] over its whole relation; the caller has already
// decided the version gate.
func (e *engine) scanFD(i int) (fired bool, err error) {
	fs := &e.fds[i]
	rel := &e.rels[fs.ri]
	var scanStart time.Time
	if e.profTimed() {
		scanStart = time.Now()
	}
	fs.gen++
	for _, tid := range rel.order {
		t := e.tupleVals(tid)
		// Group keys must use class labels, not structural roots:
		// the reference engine groups by its own (label) roots, and
		// mid-pass root changes make grouping sensitive to the
		// representative choice.
		b := e.appendLabelProjKey(e.keyBuf[:0], t, fs.xs)
		kid, fresh := fs.keys.Intern(b)
		e.keyBuf = b
		if fresh {
			fs.addGroup()
		}
		if fs.mgen[kid] != fs.gen {
			fs.mgen[kid] = fs.gen
			fs.members[kid] = fs.members[kid][:0]
		}
		for _, uid := range fs.members[kid] {
			u := e.tupleVals(uid)
			for _, y := range fs.ys {
				ch, err := e.union(t[y], u[y])
				if err != nil {
					return fired, err
				}
				if ch {
					fired = true
					e.cFDFires.Inc()
					if e.prov != nil {
						e.prov.noteUnion(evFD, int32(i), tid, uid, t[y], u[y])
					}
					if e.prof != nil {
						e.prof.fd[i].fire(e.round)
					}
					if e.doTrace {
						e.tracef("FD %v equates %v and %v (tuples %v, %v agree on %s)",
							fs.d, e.describe(t[y]), e.describe(u[y]), e.describeTuple(t), e.describeTuple(u), schema.JoinAttrs(fs.d.X))
					}
				}
			}
		}
		fs.members[kid] = append(fs.members[kid], tid)
	}
	if e.prof != nil {
		a := &e.prof.fd[i]
		a.scanned += int64(len(rel.order))
		if e.prof.timed {
			a.scanNS += time.Since(scanStart).Nanoseconds()
		}
	}
	if fired {
		fs.cleanAt = 0
	} else {
		fs.cleanAt = rel.version + 1
	}
	return fired, nil
}

// addGroup appends one group slot to the FD's member lists, reusing a
// slot left behind by a pool reset when one exists — so a warm pooled
// run's first scan allocates no fresh inner slices.
func (fs *fdState) addGroup() {
	if n := len(fs.members); n < cap(fs.members) {
		fs.members = fs.members[:n+1]
		fs.members[n] = fs.members[n][:0]
	} else {
		fs.members = append(fs.members, nil)
	}
	fs.mgen = append(fs.mgen, 0)
}

// endRound closes a round's parallelism accounting: a round in which at
// least one pass ran sharded counts once in chase.parallel_rounds.
func (e *engine) endRound() {
	if e.parUsed {
		e.cParRnds.Inc()
		e.parUsed = false
	}
}

// cancelled reports the context's error, if any: the per-round
// cancellation probe (a nil context is a predictable branch, keeping
// the uninstrumented, undeadlined path free).
func (e *engine) cancelled() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// run chases to fixpoint or budget. It returns done=true when a fixpoint
// was reached (the tableau is a model of sigma).
func (e *engine) run() (done bool, err error) {
	for {
		if err := e.cancelled(); err != nil {
			return false, err
		}
		e.cRounds.Inc()
		e.round++
		fdChanged, err := e.applyFDs()
		if err != nil {
			return false, err
		}
		e.dedup()
		indChanged, err := e.applyINDs()
		e.endRound()
		if err == errBudget {
			return false, nil
		}
		if err != nil {
			return false, err
		}
		if !fdChanged && !indChanged {
			return true, nil
		}
	}
}

// export materializes the tableau as a concrete database: constants keep
// their names, null classes become fresh values "_0", "_1", ... in a
// deterministic order, skipping any name already taken by a constant (a
// seed value may itself look like "_0").
func (e *engine) export() *data.Database {
	out := data.NewDatabase(e.db)
	named := make(map[int32]data.Value)
	next := 0
	valueOf := func(id int32) data.Value {
		r := e.find(id)
		if n := e.name[e.label[r]]; n != "" {
			return data.Value(n)
		}
		if v, ok := named[r]; ok {
			return v
		}
		var v data.Value
		for {
			v = data.Value(fmt.Sprintf("_%d", next))
			next++
			if _, taken := e.consts[string(v)]; !taken {
				break
			}
		}
		named[r] = v
		return v
	}
	for _, rel := range e.db.Names() {
		rs := &e.rels[e.relIdx[rel]]
		for _, tid := range rs.order {
			t := e.tupleVals(tid)
			row := make(data.Tuple, len(t))
			for i, id := range t {
				row[i] = valueOf(id)
			}
			out.MustRelation(rel).MustInsert(row)
		}
	}
	return out
}

// tracef appends a formatted trace line; callers guard with doTrace so
// the disabled path never boxes the arguments.
func (e *engine) tracef(format string, args ...any) {
	e.trace = append(e.trace, fmt.Sprintf(format, args...))
}

// describe renders a value id: its constant name, or _<label> for nulls
// (the label is the representative the reference engine would print).
func (e *engine) describe(id int32) string {
	l := e.label[e.find(id)]
	if e.name[l] != "" {
		return e.name[l]
	}
	return fmt.Sprintf("_%d", l)
}

// describeTuple renders a tableau tuple.
func (e *engine) describeTuple(t []int32) string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = e.describe(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}
