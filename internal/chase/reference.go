// The reference chase engine: the textbook-naive implementation the
// semi-naive engine (chase.go, index.go, delta.go) replaced. It rescans
// the whole tableau every round, rebuilds every FD group map and IND
// witness map from scratch, and allocates a string key per projection
// per tuple per round. It is kept verbatim (modulo the positions error
// fix, applied to both engines) as the differential-testing oracle: the
// semi-naive engine must produce the same verdicts, the same trace
// bytes, and the same chase.* counters on every input. Production call
// sites use the semi-naive entry points in implies.go; only tests and
// benchmark ablations should call the Reference* functions.

package chase

import (
	"context"
	"fmt"
	"strings"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// refEngine is the naive chase tableau: relations of tuples of value IDs,
// with a union-find over the IDs. Constants are IDs with names; labeled
// nulls are unnamed IDs.
type refEngine struct {
	db      *schema.Database
	fds     []deps.FD
	rds     []deps.RD
	inds    []deps.IND
	parent  []int
	name    []string // "" for nulls
	consts  map[string]int
	rels    map[string][][]int
	tuples  int
	max     int
	trace   []string
	doTrace bool
	ctx     context.Context // nil = never cancelled

	cRounds   *obs.Counter
	cTuples   *obs.Counter
	cUnions   *obs.Counter
	cFDFires  *obs.Counter
	cRDFires  *obs.Counter
	cINDAdds  *obs.Counter
	cFixpoint *obs.Counter
	gTuples   *obs.Gauge
}

func newRefEngine(db *schema.Database, sigma []deps.Dependency, opt Options) (*refEngine, error) {
	e := &refEngine{
		db:      db,
		consts:  make(map[string]int),
		rels:    make(map[string][][]int),
		max:     opt.maxTuples(),
		doTrace: opt.Trace,
		ctx:     opt.Ctx,

		cRounds:   opt.Obs.Counter("chase.rounds"),
		cTuples:   opt.Obs.Counter("chase.tuples_created"),
		cUnions:   opt.Obs.Counter("chase.unions"),
		cFDFires:  opt.Obs.Counter("chase.fd_applications"),
		cRDFires:  opt.Obs.Counter("chase.rd_applications"),
		cINDAdds:  opt.Obs.Counter("chase.ind_applications"),
		cFixpoint: opt.Obs.Counter("chase.fixpoint_passes"),
		gTuples:   opt.Obs.Gauge("chase.tuples_peak"),
	}
	for _, d := range sigma {
		if err := d.Validate(db); err != nil {
			return nil, err
		}
		switch dd := d.(type) {
		case deps.FD:
			e.fds = append(e.fds, dd)
		case deps.IND:
			e.inds = append(e.inds, dd)
		case deps.RD:
			e.rds = append(e.rds, dd)
		default:
			return nil, fmt.Errorf("chase: only FDs, INDs and RDs may appear in sigma, got %v", d.Kind())
		}
	}
	return e, nil
}

func (e *refEngine) newNull() int {
	id := len(e.parent)
	e.parent = append(e.parent, id)
	e.name = append(e.name, "")
	return id
}

func (e *refEngine) newConst(name string) int {
	if id, ok := e.consts[name]; ok {
		return id
	}
	id := len(e.parent)
	e.parent = append(e.parent, id)
	e.name = append(e.name, name)
	e.consts[name] = id
	return id
}

func (e *refEngine) find(x int) int {
	for e.parent[x] != x {
		e.parent[x] = e.parent[e.parent[x]]
		x = e.parent[x]
	}
	return x
}

// union merges the classes of a and b. Merging two distinct constants is a
// hard contradiction (sigma plus the seed is unsatisfiable over distinct
// constants) and reported as an error.
func (e *refEngine) union(a, b int) (changed bool, err error) {
	ra, rb := e.find(a), e.find(b)
	if ra == rb {
		return false, nil
	}
	na, nb := e.name[ra], e.name[rb]
	if na != "" && nb != "" && na != nb {
		return false, fmt.Errorf("chase: contradiction: constants %q and %q equated", na, nb)
	}
	// Keep the constant (if any) as the representative.
	if na == "" && nb != "" {
		ra, rb = rb, ra
	}
	e.parent[rb] = ra
	e.cUnions.Inc()
	return true, nil
}

func (e *refEngine) equal(a, b int) bool { return e.find(a) == e.find(b) }

// insert adds a tuple of value IDs to rel if no canonically-equal tuple is
// already present — by linearly rescanning the relation. It enforces the
// tuple budget.
func (e *refEngine) insert(rel string, t []int) (added bool, err error) {
	key := e.tupleKey(t)
	for _, u := range e.rels[rel] {
		if e.tupleKey(u) == key {
			return false, nil
		}
	}
	if e.tuples >= e.max {
		return false, errBudget
	}
	e.rels[rel] = append(e.rels[rel], t)
	e.tuples++
	e.cTuples.Inc()
	e.gTuples.SetMax(int64(e.tuples))
	return true, nil
}

func (e *refEngine) tupleKey(t []int) string {
	b := make([]byte, 0, len(t)*4)
	for _, v := range t {
		r := e.find(v)
		b = append(b, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
	}
	return string(b)
}

// applyFDs fires every FD and RD until no more values are equated.
func (e *refEngine) applyFDs() (changed bool, err error) {
	for again := true; again; {
		again = false
		e.cFixpoint.Inc()
		for _, r := range e.rds {
			sch, _ := e.db.Scheme(r.Rel)
			xs, err := positionsOf(sch, r.X)
			if err != nil {
				return changed, err
			}
			ys, err := positionsOf(sch, r.Y)
			if err != nil {
				return changed, err
			}
			for _, t := range e.rels[r.Rel] {
				for i := range xs {
					ch, err := e.union(t[xs[i]], t[ys[i]])
					if err != nil {
						return changed, err
					}
					if ch {
						again = true
						changed = true
						e.cRDFires.Inc()
						e.tracef("RD %v equates %v and %v within %v", r, e.describe(t[xs[i]]), e.describe(t[ys[i]]), e.describeTuple(t))
					}
				}
			}
		}
		for _, f := range e.fds {
			sch, _ := e.db.Scheme(f.Rel)
			xs, err := positionsOf(sch, f.X)
			if err != nil {
				return changed, err
			}
			ys, err := positionsOf(sch, f.Y)
			if err != nil {
				return changed, err
			}
			groups := make(map[string][]int) // X-projection key -> tuple indexes
			tuples := e.rels[f.Rel]
			for i, t := range tuples {
				key := e.projKey(t, xs)
				for _, j := range groups[key] {
					u := tuples[j]
					for _, y := range ys {
						ch, err := e.union(t[y], u[y])
						if err != nil {
							return changed, err
						}
						if ch {
							again = true
							changed = true
							e.cFDFires.Inc()
							e.tracef("FD %v equates %v and %v (tuples %v, %v agree on %s)",
								f, e.describe(t[y]), e.describe(u[y]), e.describeTuple(t), e.describeTuple(u), schema.JoinAttrs(f.X))
						}
					}
				}
				groups[key] = append(groups[key], i)
			}
		}
	}
	return changed, nil
}

func (e *refEngine) projKey(t []int, pos []int) string {
	b := make([]byte, 0, len(pos)*4)
	for _, p := range pos {
		r := e.find(t[p])
		b = append(b, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
	}
	return string(b)
}

// applyINDs fires every IND once: for each left tuple with no witness on
// the right, a new right tuple is created with fresh nulls outside the
// target columns. The witness map is rebuilt from scratch per IND per
// round.
func (e *refEngine) applyINDs() (changed bool, err error) {
	for _, d := range e.inds {
		ls, _ := e.db.Scheme(d.LRel)
		rs, _ := e.db.Scheme(d.RRel)
		xs, err := positionsOf(ls, d.X)
		if err != nil {
			return changed, err
		}
		ys, err := positionsOf(rs, d.Y)
		if err != nil {
			return changed, err
		}
		// Index right-hand projections.
		witnesses := make(map[string]bool)
		for _, u := range e.rels[d.RRel] {
			witnesses[e.projKey(u, ys)] = true
		}
		// Iterate over a snapshot: new tuples added to d.LRel (when LRel ==
		// RRel) are handled in the next round.
		snapshot := append([][]int(nil), e.rels[d.LRel]...)
		for _, t := range snapshot {
			key := e.projKey(t, xs)
			if witnesses[key] {
				continue
			}
			u := make([]int, rs.Width())
			for i := range u {
				u[i] = -1
			}
			for i := range ys {
				u[ys[i]] = t[xs[i]]
			}
			for i := range u {
				if u[i] == -1 {
					u[i] = e.newNull()
				}
			}
			added, err := e.insert(d.RRel, u)
			if err != nil {
				return changed, err
			}
			if added {
				changed = true
				witnesses[key] = true
				e.cINDAdds.Inc()
				e.tracef("IND %v adds %v to %s for %v", d, e.describeTuple(u), d.RRel, e.describeTuple(t))
			}
		}
	}
	return changed, nil
}

// dedup removes canonically duplicate tuples created by unions, rescanning
// every relation every round.
func (e *refEngine) dedup() {
	for rel, tuples := range e.rels {
		seen := make(map[string]bool, len(tuples))
		out := tuples[:0]
		for _, t := range tuples {
			k := e.tupleKey(t)
			if seen[k] {
				e.tuples--
				continue
			}
			seen[k] = true
			out = append(out, t)
		}
		e.rels[rel] = out
	}
}

func (e *refEngine) cancelled() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// run chases to fixpoint or budget. It returns done=true when a fixpoint
// was reached (the tableau is a model of sigma).
func (e *refEngine) run() (done bool, err error) {
	for {
		if err := e.cancelled(); err != nil {
			return false, err
		}
		e.cRounds.Inc()
		fdChanged, err := e.applyFDs()
		if err != nil {
			return false, err
		}
		e.dedup()
		indChanged, err := e.applyINDs()
		if err == errBudget {
			return false, nil
		}
		if err != nil {
			return false, err
		}
		if !fdChanged && !indChanged {
			return true, nil
		}
	}
}

// export materializes the tableau as a concrete database: constants keep
// their names, null classes become fresh values "_0", "_1", ... in a
// deterministic order, skipping any name already taken by a constant (a
// seed value may itself look like "_0").
func (e *refEngine) export() *data.Database {
	out := data.NewDatabase(e.db)
	names := make(map[int]data.Value)
	next := 0
	valueOf := func(id int) data.Value {
		r := e.find(id)
		if e.name[r] != "" {
			return data.Value(e.name[r])
		}
		if v, ok := names[r]; ok {
			return v
		}
		var v data.Value
		for {
			v = data.Value(fmt.Sprintf("_%d", next))
			next++
			if _, taken := e.consts[string(v)]; !taken {
				break
			}
		}
		names[r] = v
		return v
	}
	for _, rel := range e.db.Names() {
		for _, t := range e.rels[rel] {
			row := make(data.Tuple, len(t))
			for i, id := range t {
				row[i] = valueOf(id)
			}
			out.MustRelation(rel).MustInsert(row)
		}
	}
	return out
}

func (e *refEngine) tracef(format string, args ...any) {
	if e.doTrace {
		e.trace = append(e.trace, fmt.Sprintf(format, args...))
	}
}

// describe renders a value id: its constant name, or _<root> for nulls.
func (e *refEngine) describe(id int) string {
	r := e.find(id)
	if e.name[r] != "" {
		return e.name[r]
	}
	return fmt.Sprintf("_%d", r)
}

func (e *refEngine) describeTuple(t []int) string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = e.describe(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// runToGoal mirrors engine.runToGoal for the reference engine, including
// the per-round span structure, so differential tests can compare spans
// and results like-for-like.
func (e *refEngine) runToGoal(derived func() bool, sp *obs.Span) (Result, error) {
	res := Result{}
	for {
		if err := e.cancelled(); err != nil {
			res.Tuples = e.tuples
			res.Trace = e.trace
			if sp != nil {
				sp.SetAttr("cancelled", err.Error())
				sp.SetInt("rounds", int64(res.Rounds))
				sp.SetInt("tuples", int64(res.Tuples))
				sp.End()
			}
			return res, err
		}
		res.Rounds++
		e.cRounds.Inc()
		var round *obs.Span
		if res.Rounds <= spanRoundCap {
			round = sp.StartSpan("round")
		}
		if _, err := e.applyFDs(); err != nil {
			sp.End()
			return res, err
		}
		e.dedup()
		if derived() {
			round.SetInt("tuples", int64(e.tuples))
			round.End()
			return e.finish(res, Implied, sp)
		}
		indChanged, err := e.applyINDs()
		round.SetInt("tuples", int64(e.tuples))
		round.End()
		if err == errBudget {
			return e.finish(res, Unknown, sp)
		}
		if err != nil {
			sp.End()
			return res, err
		}
		if !indChanged {
			res.Counterexample = e.export()
			return e.finish(res, NotImplied, sp)
		}
	}
}

func (e *refEngine) finish(res Result, v Verdict, sp *obs.Span) (Result, error) {
	res.Verdict = v
	res.Tuples = e.tuples
	res.Trace = e.trace
	if sp != nil {
		sp.SetAttr("verdict", v.String())
		sp.SetInt("rounds", int64(res.Rounds))
		sp.SetInt("tuples", int64(res.Tuples))
		sp.End()
	}
	return res, nil
}

// ReferenceImpliesFD is ImpliesFD on the naive reference engine.
func ReferenceImpliesFD(db *schema.Database, sigma []deps.Dependency, goal deps.FD, opt Options) (Result, error) {
	if err := goal.Validate(db); err != nil {
		return Result{}, err
	}
	e, err := newRefEngine(db, sigma, opt)
	if err != nil {
		return Result{}, err
	}
	sp := opt.startSpan("chase.fd")
	if sp != nil {
		sp.SetAttr("goal", goal.String())
	}
	sch, _ := db.Scheme(goal.Rel)
	t1 := make([]int, sch.Width())
	t2 := make([]int, sch.Width())
	for i := range t1 {
		t1[i] = e.newNull()
		t2[i] = e.newNull()
	}
	for _, a := range goal.X {
		p, ok := sch.Pos(a)
		if !ok {
			sp.End()
			return Result{}, fmt.Errorf("chase: attribute %s not in scheme %s", a, sch.Name())
		}
		t2[p] = t1[p]
	}
	if _, err := e.insert(goal.Rel, t1); err != nil {
		sp.End()
		return Result{}, err
	}
	if _, err := e.insert(goal.Rel, t2); err != nil {
		sp.End()
		return Result{}, err
	}
	ys, err := positionsOf(sch, goal.Y)
	if err != nil {
		sp.End()
		return Result{}, err
	}
	return e.runToGoal(func() bool {
		for _, y := range ys {
			if !e.equal(t1[y], t2[y]) {
				return false
			}
		}
		return true
	}, sp)
}

// ReferenceImpliesIND is ImpliesIND on the naive reference engine.
func ReferenceImpliesIND(db *schema.Database, sigma []deps.Dependency, goal deps.IND, opt Options) (Result, error) {
	if err := goal.Validate(db); err != nil {
		return Result{}, err
	}
	e, err := newRefEngine(db, sigma, opt)
	if err != nil {
		return Result{}, err
	}
	sp := opt.startSpan("chase.ind")
	if sp != nil {
		sp.SetAttr("goal", goal.String())
	}
	ls, _ := db.Scheme(goal.LRel)
	rs, _ := db.Scheme(goal.RRel)
	t := make([]int, ls.Width())
	for i := range t {
		t[i] = e.newNull()
	}
	if _, err := e.insert(goal.LRel, t); err != nil {
		sp.End()
		return Result{}, err
	}
	xs, err := positionsOf(ls, goal.X)
	if err != nil {
		sp.End()
		return Result{}, err
	}
	ys, err := positionsOf(rs, goal.Y)
	if err != nil {
		sp.End()
		return Result{}, err
	}
	return e.runToGoal(func() bool {
		want := e.projKey(t, xs)
		for _, u := range e.rels[goal.RRel] {
			if e.projKey(u, ys) == want {
				return true
			}
		}
		return false
	}, sp)
}

// ReferenceImpliesRD is ImpliesRD on the naive reference engine.
func ReferenceImpliesRD(db *schema.Database, sigma []deps.Dependency, goal deps.RD, opt Options) (Result, error) {
	if err := goal.Validate(db); err != nil {
		return Result{}, err
	}
	e, err := newRefEngine(db, sigma, opt)
	if err != nil {
		return Result{}, err
	}
	sp := opt.startSpan("chase.rd")
	if sp != nil {
		sp.SetAttr("goal", goal.String())
	}
	sch, _ := db.Scheme(goal.Rel)
	t := make([]int, sch.Width())
	for i := range t {
		t[i] = e.newNull()
	}
	if _, err := e.insert(goal.Rel, t); err != nil {
		sp.End()
		return Result{}, err
	}
	xs, err := positionsOf(sch, goal.X)
	if err != nil {
		sp.End()
		return Result{}, err
	}
	ys, err := positionsOf(sch, goal.Y)
	if err != nil {
		sp.End()
		return Result{}, err
	}
	return e.runToGoal(func() bool {
		for i := range xs {
			if !e.equal(t[xs[i]], t[ys[i]]) {
				return false
			}
		}
		return true
	}, sp)
}

// ReferenceImplies dispatches on the kind of the goal dependency.
func ReferenceImplies(db *schema.Database, sigma []deps.Dependency, goal deps.Dependency, opt Options) (Result, error) {
	switch g := goal.(type) {
	case deps.FD:
		return ReferenceImpliesFD(db, sigma, g, opt)
	case deps.IND:
		return ReferenceImpliesIND(db, sigma, g, opt)
	case deps.RD:
		return ReferenceImpliesRD(db, sigma, g, opt)
	default:
		return Result{}, fmt.Errorf("chase: cannot test implication of a %v goal", goal.Kind())
	}
}

// ReferenceComplete is Complete on the naive reference engine.
func ReferenceComplete(seed *data.Database, sigma []deps.Dependency, opt Options) (*data.Database, error) {
	e, err := newRefEngine(seed.Scheme(), sigma, opt)
	if err != nil {
		return nil, err
	}
	sp := opt.startSpan("chase.complete")
	defer sp.End()
	for _, rel := range seed.Scheme().Names() {
		r, _ := seed.Relation(rel)
		for _, t := range r.Tuples() {
			row := make([]int, len(t))
			for i, v := range t {
				row[i] = e.newConst(string(v))
			}
			if _, err := e.insert(rel, row); err != nil {
				return nil, err
			}
		}
	}
	done, err := e.run()
	sp.SetInt("tuples", int64(e.tuples))
	if err != nil {
		return nil, err
	}
	if !done {
		return nil, fmt.Errorf("chase: Complete did not reach a fixpoint within %d tuples", e.max)
	}
	return e.export(), nil
}
