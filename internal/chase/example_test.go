package chase_test

import (
	"fmt"

	"indfd/internal/chase"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

// Proposition 4.3: two INDs with the same right-hand side plus a key FD
// force a repeating dependency.
func ExampleImpliesRD() {
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y", "Z"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewIND("R", deps.Attrs("X", "Z"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	res, err := chase.ImpliesRD(db, sigma, deps.NewRD("R", deps.Attrs("Y"), deps.Attrs("Z")), chase.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Verdict)
	// Output: implied
}
