// Sharded delta passes. The semi-naive engine's two scan families — the
// FD/RD fixpoint passes and the IND delta passes — are embarrassingly
// read-heavy: almost every scanned tuple fires nothing. This file
// splits each pass into a speculative probe phase that workers run
// concurrently against the frozen pass-start state, followed by a
// single-threaded merge that applies firings in exactly the sequential
// engine's order:
//
//   - FD/RD probes scan one dependency each (the compile-order region
//     partition) with a read-only union-find walk (findRO) and report
//     only "this scan would fire something". The merge then walks the
//     dependencies in compile order: a probe that saw nothing AND whose
//     relation version is unchanged is adopted — sound because an
//     unchanged version means unchanged membership, partition, and
//     labels, so the sequential scan would also have fired nothing and
//     left no observable state — while anything else is re-scanned
//     sequentially (a stale probe counts one merge conflict).
//   - IND probes split each IND's delta suffix into chunks and emit the
//     tuple IDs with no witness in the frozen index. The merge walks
//     INDs in compile order, re-probes each candidate against the live
//     index (a witness inserted earlier in the merge rejects it — one
//     merge conflict), fires accepted candidates in arena order, and
//     then scans the order extension — tuples earlier INDs appended
//     during this same merge — exactly as the sequential pass would.
//     Tuples witnessed in the frozen state need no re-probe: witnesses
//     are monotone.
//
// Fresh-null allocation, inserts, unions, traces, provenance and
// profile attribution all happen only in the merge, on one goroutine,
// in sequential order — which is the whole bit-determinism argument:
// the probe phase computes no observable state, only hints, and every
// hint is either provably equivalent to the sequential outcome or
// discarded and recomputed. Verdicts, traces, DAGs, counters and
// profiles are byte-identical at any GOMAXPROCS (differential-tested).
package chase

import (
	"sync"
	"sync/atomic"
	"time"
)

const (
	taskRD uint8 = iota
	taskFD
	taskIND
)

// minINDChunk bounds how finely an IND's delta suffix is split: chunks
// below this are not worth a task handoff.
const minINDChunk = 256

// parTask is one unit of probe work. RD/FD tasks cover a whole
// dependency; IND tasks cover the chunk [lo,hi) of the dependency's
// frozen delta suffix.
type parTask struct {
	kind    uint8
	dep     int32
	version uint64  // relation version at freeze (RD/FD)
	order   []int32 // frozen order snapshot (IND)
	lo, hi  int32   // chunk bounds into order (IND)

	wouldFire bool    // RD/FD probe: a live scan would fire
	scanned   int64   // RD/FD probe: tuples scanned (profile)
	cand      []int32 // IND probe: unwitnessed tuple IDs, in scan order
	ns        int64   // probe wall time (profile; nondeterministic)
}

// parJob is one probe batch handed to the workers: a task list drained
// via an atomic cursor. It is immutable after publication except for
// the cursor, the per-task result fields (each task is claimed by
// exactly one worker), and the wait group that publishes the results
// back to the merge goroutine.
type parJob struct {
	tasks []parTask
	next  atomic.Int64
	wg    sync.WaitGroup
}

// parRunner owns the engine's probe workers. Workers start lazily on
// the first sharded pass and live until release stops them, so a chase
// with hundreds of rounds pays the goroutine spawn once, not per round.
// The task slice and per-worker key buffers are reused across batches.
type parRunner struct {
	workers int
	work    chan *parJob
	exit    sync.WaitGroup
	tasks   []parTask
	bufs    [][]byte
	started bool
}

func newParRunner(workers int) *parRunner {
	return &parRunner{workers: workers, bufs: make([][]byte, workers)}
}

// addTask appends a zeroed task slot, reusing candidate-buffer capacity
// left in the backing array by earlier batches.
func (p *parRunner) addTask() *parTask {
	if n := len(p.tasks); n < cap(p.tasks) {
		p.tasks = p.tasks[:n+1]
		t := &p.tasks[n]
		cand := t.cand[:0]
		*t = parTask{cand: cand}
		return t
	}
	p.tasks = append(p.tasks, parTask{})
	return &p.tasks[len(p.tasks)-1]
}

func (p *parRunner) start(e *engine) {
	if p.started {
		return
	}
	p.work = make(chan *parJob, p.workers)
	p.exit.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		go p.worker(e, w)
	}
	p.started = true
}

// stop shuts the workers down and waits for them to exit, so no probe
// goroutine can outlive the run and touch a recycled engine.
func (p *parRunner) stop() {
	if !p.started {
		return
	}
	close(p.work)
	p.exit.Wait()
	p.started = false
}

func (p *parRunner) worker(e *engine, w int) {
	defer p.exit.Done()
	for job := range p.work {
		for {
			i := job.next.Add(1) - 1
			if i >= int64(len(job.tasks)) {
				break
			}
			e.runProbeTask(&job.tasks[i], w)
			job.wg.Done()
		}
	}
}

// runBatch publishes the accumulated tasks to the workers and waits for
// every task to complete. The job allocation is per batch (one or two
// batches per round — noise next to the scans it parallelizes).
func (p *parRunner) runBatch(e *engine) {
	p.start(e)
	job := &parJob{tasks: p.tasks}
	job.wg.Add(len(job.tasks))
	// One wake token per worker. A worker that drains the batch early
	// may consume a sibling's token and no-op — the tokens bound the
	// channel, the wait group counts the tasks.
	for w := 0; w < p.workers; w++ {
		p.work <- job
	}
	job.wg.Wait()
}

func (e *engine) runProbeTask(t *parTask, w int) {
	var start time.Time
	if e.profTimed() {
		start = time.Now()
	}
	switch t.kind {
	case taskRD:
		e.probeRD(t)
	case taskFD:
		e.probeFD(t, w)
	case taskIND:
		e.probeIND(t, w)
	}
	if e.profTimed() {
		t.ns = time.Since(start).Nanoseconds()
	}
}

// appendLabelProjKeyRO is appendLabelProjKey with the read-only find.
func (e *engine) appendLabelProjKeyRO(b []byte, t []int32, pos []int) []byte {
	for _, p := range pos {
		b = appendRoot(b, e.label[e.findRO(t[p])])
	}
	return b
}

// appendProjKeyRO is appendProjKey with the read-only find.
func (e *engine) appendProjKeyRO(b []byte, t []int32, pos []int) []byte {
	for _, p := range pos {
		b = appendRoot(b, e.findRO(t[p]))
	}
	return b
}

// probeRD reports whether a live scan of e.rds[t.dep] would fire.
func (e *engine) probeRD(t *parTask) {
	ds := &e.rds[t.dep]
	rel := &e.rels[ds.ri]
	t.scanned = int64(len(rel.order))
	for _, tid := range rel.order {
		tv := e.tupleVals(tid)
		for j := range ds.xs {
			if e.findRO(tv[ds.xs[j]]) != e.findRO(tv[ds.ys[j]]) {
				t.wouldFire = true
				return
			}
		}
	}
}

// probeFD reports whether a live scan of e.fds[t.dep] would fire. It
// replays the exact grouping of scanFD (label keys, gen-guarded member
// lists) read-only against the frozen union-find; the per-dependency
// group state it touches belongs to this dependency alone and is
// rebuilt from scratch by the next real scan (gen bump), so a stale
// probe leaves nothing behind.
func (e *engine) probeFD(t *parTask, w int) {
	fs := &e.fds[t.dep]
	rel := &e.rels[fs.ri]
	t.scanned = int64(len(rel.order))
	fs.gen++
	buf := e.par.bufs[w]
	for _, tid := range rel.order {
		tv := e.tupleVals(tid)
		buf = e.appendLabelProjKeyRO(buf[:0], tv, fs.xs)
		kid, fresh := fs.keys.Intern(buf)
		if fresh {
			fs.addGroup()
		}
		if fs.mgen[kid] != fs.gen {
			fs.mgen[kid] = fs.gen
			fs.members[kid] = fs.members[kid][:0]
		}
		for _, uid := range fs.members[kid] {
			uv := e.tupleVals(uid)
			for _, y := range fs.ys {
				if e.findRO(tv[y]) != e.findRO(uv[y]) {
					e.par.bufs[w] = buf
					t.wouldFire = true
					return
				}
			}
		}
		fs.members[kid] = append(fs.members[kid], tid)
	}
	e.par.bufs[w] = buf
}

// probeIND collects the chunk's tuples with no witness in the frozen
// index, in scan order. It only reads: the candidate list is a hint the
// merge re-validates against the live index.
func (e *engine) probeIND(t *parTask, w int) {
	is := &e.inds[t.dep]
	buf := e.par.bufs[w]
	for k := t.lo; k < t.hi; k++ {
		tid := t.order[k]
		tv := e.tupleVals(tid)
		buf = e.appendProjKeyRO(buf[:0], tv, is.xs)
		if kid, ok := is.pi.keys.Lookup(buf); !ok || is.pi.count[kid] <= 0 {
			t.cand = append(t.cand, tid)
		}
	}
	e.par.bufs[w] = buf
}

// fdPassPar is one sharded RD-then-FD pass. Probes run over every
// dependency whose version gate is open at pass start; the merge then
// walks all dependencies in compile order, adopting clean unchanged
// probes and sequentially re-scanning the rest. Falls back to the
// sequential pass when the open regions are too small to shard.
func (e *engine) fdPassPar() (fired bool, err error) {
	p := e.par
	p.tasks = p.tasks[:0]
	items := 0
	for i := range e.rds {
		ds := &e.rds[i]
		rel := &e.rels[ds.ri]
		if ds.cleanAt == rel.version+1 {
			continue
		}
		t := p.addTask()
		t.kind, t.dep, t.version = taskRD, int32(i), rel.version
		items += len(rel.order)
	}
	for i := range e.fds {
		fs := &e.fds[i]
		rel := &e.rels[fs.ri]
		if fs.cleanAt == rel.version+1 {
			continue
		}
		t := p.addTask()
		t.kind, t.dep, t.version = taskFD, int32(i), rel.version
		items += len(rel.order)
	}
	if items < e.parTh || len(p.tasks) < 2 {
		p.tasks = p.tasks[:0]
		return e.fdPassSeq()
	}
	e.parUsed = true
	p.runBatch(e)

	// Deterministic merge: dependencies in compile order (RDs before
	// FDs, as in fdPassSeq). Tasks were appended in the same order, so
	// a single cursor pairs them up.
	ti := 0
	for i := range e.rds {
		ds := &e.rds[i]
		rel := &e.rels[ds.ri]
		var t *parTask
		if ti < len(p.tasks) && p.tasks[ti].kind == taskRD && p.tasks[ti].dep == int32(i) {
			t = &p.tasks[ti]
			ti++
		}
		if ds.cleanAt == rel.version+1 {
			e.cSkips.Inc()
			continue
		}
		if t != nil && !t.wouldFire && t.version == rel.version {
			if e.prof != nil {
				a := &e.prof.rd[i]
				a.scanned += t.scanned
				a.scanNS += t.ns
			}
			ds.cleanAt = rel.version + 1
			continue
		}
		if t != nil && t.version != rel.version {
			e.cConflict.Inc()
		}
		f, err := e.scanRD(i)
		fired = fired || f
		if err != nil {
			return fired, err
		}
	}
	for i := range e.fds {
		fs := &e.fds[i]
		rel := &e.rels[fs.ri]
		var t *parTask
		if ti < len(p.tasks) && p.tasks[ti].kind == taskFD && p.tasks[ti].dep == int32(i) {
			t = &p.tasks[ti]
			ti++
		}
		if fs.cleanAt == rel.version+1 {
			e.cSkips.Inc()
			continue
		}
		if t != nil && !t.wouldFire && t.version == rel.version {
			if e.prof != nil {
				a := &e.prof.fd[i]
				a.scanned += t.scanned
				a.scanNS += t.ns
			}
			fs.cleanAt = rel.version + 1
			continue
		}
		if t != nil && t.version != rel.version {
			e.cConflict.Inc()
		}
		f, err := e.scanFD(i)
		fired = fired || f
		if err != nil {
			return fired, err
		}
	}
	return fired, nil
}

// indPassPar is the sharded IND delta pass. ran is false when the delta
// is too small to shard — the caller then runs the sequential pass.
func (e *engine) indPassPar() (ran bool, changed bool, err error) {
	p := e.par
	p.tasks = p.tasks[:0]
	items := 0
	starts := e.indStarts()
	for i := range e.inds {
		is := &e.inds[i]
		order := e.rels[is.lri].order
		start := indDeltaStart(order, is.maxSeen)
		starts[i] = int32(start)
		n := len(order) - start
		items += n
		if n <= 0 {
			continue
		}
		// Chunk the suffix; tasks stay in (IND, scan-position) order so
		// the merge's candidate concatenation is the scan order.
		chunk := n/(p.workers*2) + 1
		if chunk < minINDChunk {
			chunk = minINDChunk
		}
		for lo := start; lo < len(order); lo += chunk {
			hi := lo + chunk
			if hi > len(order) {
				hi = len(order)
			}
			t := p.addTask()
			t.kind, t.dep, t.order = taskIND, int32(i), order
			t.lo, t.hi = int32(lo), int32(hi)
		}
	}
	if items < e.parTh || len(p.tasks) == 0 {
		p.tasks = p.tasks[:0]
		return false, false, nil
	}
	e.parUsed = true
	p.runBatch(e)

	// Deterministic merge: INDs in compile order; per IND the frozen
	// candidates in scan order, then the order extension (tuples earlier
	// INDs appended during this merge).
	ti := 0
	for i := range e.inds {
		is := &e.inds[i]
		lrel := &e.rels[is.lri]
		// The merge-turn snapshot is what the sequential pass would scan:
		// the frozen prefix plus everything appended so far this pass.
		order := lrel.order
		start := int(starts[i])
		frozenLen := 0
		var scanStart time.Time
		if e.profTimed() {
			scanStart = time.Now()
		}
		for ; ti < len(p.tasks) && p.tasks[ti].dep == int32(i); ti++ {
			t := &p.tasks[ti]
			frozenLen = int(t.hi)
			if e.prof != nil {
				e.prof.ind[i].scanNS += t.ns
			}
			for _, tid := range t.cand {
				tv := e.tupleVals(tid)
				if is.pi.witnessed(e, tv, is.xs) {
					// A witness appeared after the freeze (inserted by an
					// earlier IND this merge, or by this one).
					e.cConflict.Inc()
					continue
				}
				added, err := e.fireIND(i, tid, tv)
				if err != nil {
					// The sequential scan counts a delta tuple as it reaches
					// it and aborts mid-suffix on an error: count through the
					// failing tuple's scan position, inclusive.
					e.cDelta.Add(int64(indDeltaStart(order, tid) - start))
					return true, changed, err
				}
				if added {
					changed = true
				}
			}
		}
		if frozenLen < start {
			frozenLen = start
		}
		// Extension suffix: appended after the freeze, never probed.
		for k := frozenLen; k < len(order); k++ {
			tid := order[k]
			tv := e.tupleVals(tid)
			if is.pi.witnessed(e, tv, is.xs) {
				continue
			}
			added, err := e.fireIND(i, tid, tv)
			if err != nil {
				e.cDelta.Add(int64(k - start + 1))
				return true, changed, err
			}
			if added {
				changed = true
			}
		}
		e.cDelta.Add(int64(len(order) - start))
		if e.prof != nil {
			a := &e.prof.ind[i]
			a.scanned += int64(len(order) - start)
			if e.prof.timed {
				a.scanNS += time.Since(scanStart).Nanoseconds()
			}
		}
		if len(order) > start {
			is.maxSeen = order[len(order)-1]
		}
	}
	return true, changed, nil
}

// indStarts returns the reused per-IND delta-start scratch.
func (e *engine) indStarts() []int32 {
	if cap(e.tmpStarts) < len(e.inds) {
		e.tmpStarts = make([]int32, len(e.inds))
	}
	e.tmpStarts = e.tmpStarts[:len(e.inds)]
	return e.tmpStarts
}
