package chase

// Differential pinning of the sharded delta passes against the
// sequential semi-naive engine: at any worker count the parallel engine
// must be bit-deterministic — same verdicts, rounds, tuples,
// byte-identical traces, identical counterexamples, and identical
// chase.* counters including the semi-naive extras (delta_tuples,
// rekeyed_tuples, scans_skipped). ParThreshold: -1 forces sharding even
// on tiny instances so every pass actually exercises the probe/merge
// machinery.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

var parWorkerCounts = []int{2, 8}

// parCounters is everything the sequential and sharded engines must
// agree on — the reference set plus the semi-naive extras. Only the
// sharding telemetry itself (chase.parallel_rounds,
// chase.worker_merge_conflicts) is excluded: it reports how the work
// was scheduled, not what the chase computed.
var parCounters = append([]string{
	"chase.delta_tuples",
	"chase.rekeyed_tuples",
	"chase.scans_skipped",
}, refCounters...)

// diffParallel runs the same instance sequentially and with w workers
// (sharding forced) and fails on any observable divergence.
func diffParallel(t *testing.T, label string, db *schema.Database, sigma []deps.Dependency, goal deps.Dependency, opt Options, w int) {
	t.Helper()
	regSeq, regPar := obs.New(), obs.New()
	optSeq, optPar := opt, opt
	optSeq.Obs, optSeq.Trace = regSeq, true
	optPar.Obs, optPar.Trace = regPar, true
	optPar.Workers, optPar.ParThreshold = w, -1
	want, wantErr := Implies(db, sigma, goal, optSeq)
	got, gotErr := Implies(db, sigma, goal, optPar)
	compareResults(t, label, got, gotErr, want, wantErr)
	for _, name := range parCounters {
		if g, s := regPar.Counter(name).Value(), regSeq.Counter(name).Value(); g != s {
			t.Errorf("%s: counter %s = %d parallel, %d sequential", label, name, g, s)
		}
	}
	if g, s := regPar.Gauge("chase.tuples_peak").Value(), regSeq.Gauge("chase.tuples_peak").Value(); g != s {
		t.Errorf("%s: gauge chase.tuples_peak = %d parallel, %d sequential", label, g, s)
	}
}

func TestParallelDifferentialFixtures(t *testing.T) {
	db41 := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma41 := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	dbChain := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
		schema.MustScheme("T", "E", "F"),
	)
	sigmaChain := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("C")),
		deps.NewIND("S", deps.Attrs("C"), "T", deps.Attrs("E")),
	}
	dbDiv, sigmaDiv, goalDiv := divergentInstance()
	for _, w := range parWorkerCounts {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			diffParallel(t, "prop4.1 fd", db41, sigma41,
				deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y")), Options{}, w)
			diffParallel(t, "prop4.1 rd", db41, sigma41,
				deps.NewRD("R", deps.Attrs("X"), deps.Attrs("Y")), Options{}, w)
			diffParallel(t, "prop4.1 not-implied", db41, sigma41,
				deps.NewFD("S", deps.Attrs("U"), deps.Attrs("T")), Options{}, w)
			diffParallel(t, "ind chain", dbChain, sigmaChain,
				deps.NewIND("R", deps.Attrs("A"), "T", deps.Attrs("E")), Options{}, w)
			diffParallel(t, "ind chain not-implied", dbChain, sigmaChain,
				deps.NewIND("T", deps.Attrs("E"), "R", deps.Attrs("A")), Options{}, w)
			diffParallel(t, "divergent", dbDiv, sigmaDiv, goalDiv, Options{MaxTuples: 64}, w)
			diffParallel(t, "divergent tiny", dbDiv, sigmaDiv, goalDiv, Options{MaxTuples: 3}, w)
		})
	}
}

// TestParallelDifferentialRandom sweeps the sharded engine against the
// sequential one over the same seeded instance distribution the
// engine-vs-reference differential uses, at every worker count.
func TestParallelDifferentialRandom(t *testing.T) {
	r := rand.New(rand.NewPCG(42, 7))
	compared, skipped := 0, 0
	for trial := 0; trial < 400; trial++ {
		db, sigma, goal, opt := randomImpliesInstance(r)
		// Same divergence probe as TestDifferentialRandom: skip the
		// instances that don't terminate on their own.
		probeCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		probeOpt := opt
		probeOpt.Ctx = probeCtx
		_, probeErr := Implies(db, sigma, goal, probeOpt)
		cancel()
		if probeErr != nil {
			skipped++
			continue
		}
		for _, w := range parWorkerCounts {
			label := fmt.Sprintf("trial %d (workers=%d): %v |= %v", trial, w, sigma, goal)
			diffParallel(t, label, db, sigma, goal, opt, w)
		}
		compared++
	}
	t.Logf("compared %d random instances at workers %v (%d diverging instances skipped)",
		compared, parWorkerCounts, skipped)
	if compared < 100 {
		t.Errorf("only %d random instances compared; generator or probe broken", compared)
	}
}

// TestParallelRoundsCounted checks the scheduling telemetry: with
// sharding forced, chase.parallel_rounds advances and the sequential
// engine never touches it.
func TestParallelRoundsCounted(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	goal := deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y"))

	reg := obs.New()
	if _, err := ImpliesFD(db, sigma, goal, Options{Obs: reg, Workers: 4, ParThreshold: -1}); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("chase.parallel_rounds").Value() == 0 {
		t.Error("sharding forced but chase.parallel_rounds stayed 0")
	}

	seq := obs.New()
	if _, err := ImpliesFD(db, sigma, goal, Options{Obs: seq}); err != nil {
		t.Fatal(err)
	}
	if v := seq.Counter("chase.parallel_rounds").Value(); v != 0 {
		t.Errorf("sequential run counted %d parallel rounds", v)
	}
}

// TestParallelThresholdFallsBack pins the default behavior: below
// ParThreshold the engine runs the sequential passes even when workers
// are configured, so tiny requests never pay the fan-out overhead.
func TestParallelThresholdFallsBack(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	goal := deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y"))
	reg := obs.New()
	// Default threshold (1024 delta items) is far above this fixture.
	if _, err := ImpliesFD(db, sigma, goal, Options{Obs: reg, Workers: 8}); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("chase.parallel_rounds").Value(); v != 0 {
		t.Errorf("tiny instance still took %d sharded rounds; threshold gate broken", v)
	}
}
