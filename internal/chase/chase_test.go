package chase

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/ind"
	"indfd/internal/schema"
)

// prop41DB is the scheme of Proposition 4.1: R[XY] ⊆ S[TU], S: T -> U.
func prop41DB() *schema.Database {
	return schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
}

func TestProposition41(t *testing.T) {
	// {R[XY] ⊆ S[TU], S: T -> U} ⊨ R: X -> Y.
	db := prop41DB()
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	res, err := ImpliesFD(db, sigma, deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y")), Options{})
	if err != nil {
		t.Fatalf("ImpliesFD: %v", err)
	}
	if res.Verdict != Implied {
		t.Errorf("Proposition 4.1: verdict %v, want implied", res.Verdict)
	}
	// Dropping the FD breaks the implication, with a finite counterexample.
	res, err = ImpliesFD(db, sigma[:1], deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y")), Options{})
	if err != nil {
		t.Fatalf("ImpliesFD: %v", err)
	}
	if res.Verdict != NotImplied {
		t.Fatalf("without the FD: verdict %v, want not implied", res.Verdict)
	}
	ce := res.Counterexample
	if ok, _ := ce.Satisfies(sigma[0]); !ok {
		t.Errorf("counterexample violates sigma")
	}
	if ok, _ := ce.Satisfies(deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y"))); ok {
		t.Errorf("counterexample satisfies the goal")
	}
}

func TestProposition42(t *testing.T) {
	// {R[XY] ⊆ S[TU], R[XZ] ⊆ S[TV], S: T -> U} ⊨ R[XYZ] ⊆ S[TUV].
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y", "Z"),
		schema.MustScheme("S", "T", "U", "V"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewIND("R", deps.Attrs("X", "Z"), "S", deps.Attrs("T", "V")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	goal := deps.NewIND("R", deps.Attrs("X", "Y", "Z"), "S", deps.Attrs("T", "U", "V"))
	res, err := ImpliesIND(db, sigma, goal, Options{})
	if err != nil {
		t.Fatalf("ImpliesIND: %v", err)
	}
	if res.Verdict != Implied {
		t.Errorf("Proposition 4.2: verdict %v, want implied", res.Verdict)
	}
	// Without the FD the two witnesses need not coincide.
	res, _ = ImpliesIND(db, sigma[:2], goal, Options{})
	if res.Verdict != NotImplied {
		t.Errorf("without the FD: verdict %v, want not implied", res.Verdict)
	}
}

func TestProposition43(t *testing.T) {
	// {R[XY] ⊆ S[TU], R[XZ] ⊆ S[TU], S: T -> U} ⊨ R[Y = Z].
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y", "Z"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewIND("R", deps.Attrs("X", "Z"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	res, err := ImpliesRD(db, sigma, deps.NewRD("R", deps.Attrs("Y"), deps.Attrs("Z")), Options{})
	if err != nil {
		t.Fatalf("ImpliesRD: %v", err)
	}
	if res.Verdict != Implied {
		t.Errorf("Proposition 4.3: verdict %v, want implied", res.Verdict)
	}
	// The RD is nontrivial: without the FD it is not implied.
	res, _ = ImpliesRD(db, sigma[:2], deps.NewRD("R", deps.Attrs("Y"), deps.Attrs("Z")), Options{})
	if res.Verdict != NotImplied {
		t.Errorf("without the FD: verdict %v, want not implied", res.Verdict)
	}
}

func TestTheorem44UnrestrictedSideIsUnknown(t *testing.T) {
	// Σ = {R: A -> B, R[A] ⊆ R[B]} does not (unrestrictedly) imply
	// R[B] ⊆ R[A]; the only counterexamples are infinite, so the greedy
	// chase diverges and the budgeted verdict is Unknown.
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	sigma := []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")),
	}
	res, err := ImpliesIND(db, sigma, deps.NewIND("R", deps.Attrs("B"), "R", deps.Attrs("A")), Options{MaxTuples: 64})
	if err != nil {
		t.Fatalf("ImpliesIND: %v", err)
	}
	if res.Verdict != Unknown {
		t.Errorf("verdict %v, want unknown (divergent chase)", res.Verdict)
	}
	// Same for the FD goal of Theorem 4.4(b).
	res, err = ImpliesFD(db, sigma, deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A")), Options{MaxTuples: 64})
	if err != nil {
		t.Fatalf("ImpliesFD: %v", err)
	}
	if res.Verdict != Unknown {
		t.Errorf("FD goal verdict %v, want unknown", res.Verdict)
	}
}

func TestImpliesDispatchAndValidation(t *testing.T) {
	db := prop41DB()
	if _, err := Implies(db, nil, deps.NewEMVD("R", deps.Attrs("X"), deps.Attrs("Y"), deps.Attrs("Y")), Options{}); err == nil {
		t.Errorf("EMVD goal should be rejected")
	}
	if _, err := ImpliesFD(db, nil, deps.NewFD("Nope", deps.Attrs("X"), deps.Attrs("Y")), Options{}); err == nil {
		t.Errorf("invalid goal should be rejected")
	}
	badSigma := []deps.Dependency{deps.NewEMVD("R", deps.Attrs("X"), deps.Attrs("Y"), deps.Attrs("Y"))}
	if _, err := ImpliesFD(db, badSigma, deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y")), Options{}); err == nil {
		t.Errorf("EMVD in sigma should be rejected")
	}
	// Dispatch happy paths.
	for _, goal := range []deps.Dependency{
		deps.NewFD("R", deps.Attrs("X", "Y"), deps.Attrs("X")),
		deps.NewIND("R", deps.Attrs("X"), "R", deps.Attrs("X")),
		deps.NewRD("R", deps.Attrs("X"), deps.Attrs("X")),
	} {
		res, err := Implies(db, nil, goal, Options{})
		if err != nil || res.Verdict != Implied {
			t.Errorf("trivial %v: %v %v", goal, res.Verdict, err)
		}
	}
}

func TestCompleteBasic(t *testing.T) {
	db := prop41DB()
	seed := data.NewDatabase(db)
	seed.MustInsert("R", data.Tuple{"x1", "y1"})
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	out, err := Complete(seed, sigma, Options{})
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	ok, bad, err := out.SatisfiesAll(sigma)
	if err != nil || !ok {
		t.Errorf("completed database violates %v (%v)", bad, err)
	}
	// The seed tuple must survive with its constants.
	r, _ := out.Relation("R")
	if !r.Contains(data.Tuple{"x1", "y1"}) {
		t.Errorf("seed tuple lost: %v", out)
	}
	s, _ := out.Relation("S")
	if s.Len() != 1 || s.Tuples()[0][0] != "x1" || s.Tuples()[0][1] != "y1" {
		t.Errorf("S should contain exactly (x1,y1): %v", out)
	}
}

func TestCompleteEquatesViaFDs(t *testing.T) {
	// Two R tuples with the same X map into S, where T -> U forces their
	// second components to merge — but constants cannot merge, so this
	// seed contradicts sigma.
	db := prop41DB()
	seed := data.NewDatabase(db)
	seed.MustInsert("R", data.Tuple{"x", "y1"}, data.Tuple{"x", "y2"})
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	if _, err := Complete(seed, sigma, Options{}); err == nil {
		t.Errorf("contradictory seed should error")
	}
}

func TestCompleteDirectFDContradiction(t *testing.T) {
	db := prop41DB()
	seed := data.NewDatabase(db)
	seed.MustInsert("S", data.Tuple{"t", "u1"}, data.Tuple{"t", "u2"})
	sigma := []deps.Dependency{deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U"))}
	if _, err := Complete(seed, sigma, Options{}); err == nil {
		t.Errorf("seed violating an FD on constants should error")
	}
}

func TestCompleteBudget(t *testing.T) {
	// The divergent instance: Complete must report non-termination.
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	seed := data.NewDatabase(db)
	seed.MustInsert("R", data.Tuple{"1", "0"})
	sigma := []deps.Dependency{deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B"))}
	if _, err := Complete(seed, sigma, Options{MaxTuples: 32}); err == nil {
		t.Errorf("divergent Complete should error")
	}
}

func TestNotImpliedCounterexampleSatisfiesSigma(t *testing.T) {
	// Generic sanity: whenever the verdict is NotImplied, the returned
	// database satisfies sigma and violates the goal.
	db := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("C")),
		deps.NewFD("S", deps.Attrs("C"), deps.Attrs("D")),
	}
	goals := []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewIND("R", deps.Attrs("B"), "S", deps.Attrs("D")),
		deps.NewRD("R", deps.Attrs("A"), deps.Attrs("B")),
	}
	for _, goal := range goals {
		res, err := Implies(db, sigma, goal, Options{})
		if err != nil {
			t.Fatalf("Implies(%v): %v", goal, err)
		}
		if res.Verdict != NotImplied {
			t.Errorf("%v: verdict %v, want not implied", goal, res.Verdict)
			continue
		}
		ok, bad, err := res.Counterexample.SatisfiesAll(sigma)
		if err != nil || !ok {
			t.Errorf("%v: counterexample violates %v (%v)", goal, bad, err)
		}
		if sat, _ := res.Counterexample.Satisfies(goal); sat {
			t.Errorf("%v: counterexample satisfies the goal", goal)
		}
	}
}

func TestVerdictString(t *testing.T) {
	if Implied.String() != "implied" || NotImplied.String() != "not implied" || Unknown.String() != "unknown" {
		t.Errorf("Verdict strings wrong")
	}
}

func TestRDsInSigma(t *testing.T) {
	// The RD R[A == B] implies the FD A -> B, the FD B -> A, and the IND
	// R[A] ⊆ R[B] (Section 4 notes RDs are equivalent to generalized
	// INDs; here the chase handles them natively as equality rules).
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	sigma := []deps.Dependency{deps.NewRD("R", deps.Attrs("A"), deps.Attrs("B"))}
	for _, goal := range []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A")),
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")),
		deps.NewRD("R", deps.Attrs("B"), deps.Attrs("A")),
	} {
		res, err := Implies(db, sigma, goal, Options{})
		if err != nil {
			t.Fatalf("Implies(%v): %v", goal, err)
		}
		if res.Verdict != Implied {
			t.Errorf("%v should be implied by R[A == B], got %v", goal, res.Verdict)
		}
	}
	// And of course an unrelated FD is not implied.
	db3 := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	sigma3 := []deps.Dependency{deps.NewRD("R", deps.Attrs("A"), deps.Attrs("B"))}
	res, err := Implies(db3, sigma3, deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != NotImplied {
		t.Errorf("A -> C should not be implied, got %v", res.Verdict)
	}
}

func TestProposition43RoundTrip(t *testing.T) {
	// The RD derived in Proposition 4.3, fed back as a hypothesis,
	// reproduces the equality behavior: completing a seed under the RD
	// merges the Y and Z columns.
	db := schema.MustDatabase(schema.MustScheme("R", "X", "Y", "Z"))
	seed := data.NewDatabase(db)
	seed.MustInsert("R", data.Tuple{"x", "y", "y"})
	sigma := []deps.Dependency{deps.NewRD("R", deps.Attrs("Y"), deps.Attrs("Z"))}
	out, err := Complete(seed, sigma, Options{})
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	ok, _, err := out.SatisfiesAll(sigma)
	if err != nil || !ok {
		t.Errorf("completion violates the RD")
	}
	// A seed contradicting the RD on constants errors.
	bad := data.NewDatabase(db)
	bad.MustInsert("R", data.Tuple{"x", "y", "z"})
	if _, err := Complete(bad, sigma, Options{}); err == nil {
		t.Errorf("contradictory RD seed should error")
	}
}

// Cross-check against the complete IND engine: on pure-IND instances,
// whenever the chase reaches a verdict it matches ind.Decide.
func TestChaseAgreesWithINDEngine(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	names := []string{"R", "S"}
	attrs := map[string][]schema.Attribute{"R": deps.Attrs("A", "B"), "S": deps.Attrs("C", "D")}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var inds []deps.IND
		var sigma []deps.Dependency
		for i := 0; i < 1+r.Intn(4); i++ {
			ln, rn := names[r.Intn(2)], names[r.Intn(2)]
			w := 1 + r.Intn(2)
			pl, pr := r.Perm(2), r.Perm(2)
			x := make([]schema.Attribute, w)
			y := make([]schema.Attribute, w)
			for j := 0; j < w; j++ {
				x[j] = attrs[ln][pl[j]]
				y[j] = attrs[rn][pr[j]]
			}
			d := deps.NewIND(ln, x, rn, y)
			inds = append(inds, d)
			sigma = append(sigma, d)
		}
		ln, rn := names[r.Intn(2)], names[r.Intn(2)]
		goal := deps.NewIND(ln, []schema.Attribute{attrs[ln][r.Intn(2)]}, rn, []schema.Attribute{attrs[rn][r.Intn(2)]})
		want, err := ind.Implies(db, inds, goal)
		if err != nil {
			return false
		}
		res, err := ImpliesIND(db, sigma, goal, Options{MaxTuples: 128})
		if err != nil {
			return false
		}
		switch res.Verdict {
		case Implied:
			return want
		case NotImplied:
			return !want
		default:
			return true
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestTrace(t *testing.T) {
	db := prop41DB()
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	res, err := ImpliesFD(db, sigma, deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y")), Options{Trace: true})
	if err != nil {
		t.Fatalf("ImpliesFD: %v", err)
	}
	if res.Verdict != Implied {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if len(res.Trace) < 3 {
		t.Fatalf("trace too short: %v", res.Trace)
	}
	var sawIND, sawFD bool
	for _, line := range res.Trace {
		if strings.HasPrefix(line, "IND") {
			sawIND = true
		}
		if strings.HasPrefix(line, "FD") {
			sawFD = true
		}
	}
	if !sawIND || !sawFD {
		t.Errorf("trace missing rule kinds:\n%s", strings.Join(res.Trace, "\n"))
	}
	// Without the option, no trace is recorded.
	res, _ = ImpliesFD(db, sigma, deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y")), Options{})
	if len(res.Trace) != 0 {
		t.Errorf("unexpected trace: %v", res.Trace)
	}
}

func TestExportAvoidsConstantCollision(t *testing.T) {
	// A seed value literally named "_0" must not be conflated with a
	// fresh null in the exported counterexample.
	db := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	seed := data.NewDatabase(db)
	seed.MustInsert("R", data.Tuple{"_0", "_1"})
	sigma := []deps.Dependency{deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("C"))}
	out, err := Complete(seed, sigma, Options{})
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	s, _ := out.Relation("S")
	if s.Len() != 1 {
		t.Fatalf("S = %v", s)
	}
	row := s.Tuples()[0]
	if row[0] != "_0" {
		t.Errorf("constant _0 lost: %v", row)
	}
	if row[1] == "_0" || row[1] == "_1" {
		t.Errorf("fresh null collides with a seed constant: %v", row)
	}
}
