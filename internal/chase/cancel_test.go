package chase

import (
	"context"
	"errors"
	"testing"
	"time"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

// divergentInstance is a Lemma 7.2-style FD+IND set whose chase never
// terminates: every tuple's (A,B) projection must reappear as a (B,C)
// projection, and each freshly created witness has a fresh null in A,
// so it needs a witness of its own, forever. The FD never fires (no two
// tuples ever agree on A,B), so no fixpoint is reached either.
func divergentInstance() (*schema.Database, []deps.Dependency, deps.FD) {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("A", "B"), "R", deps.Attrs("B", "C")),
		deps.NewFD("R", deps.Attrs("A", "B"), deps.Attrs("C")),
	}
	return db, sigma, deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C"))
}

// The instance really diverges: with only the tuple budget to stop it,
// the chase exhausts the budget and answers Unknown.
func TestDivergentInstanceExhaustsBudget(t *testing.T) {
	db, sigma, goal := divergentInstance()
	res, err := ImpliesFD(db, sigma, goal, Options{MaxTuples: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unknown {
		t.Fatalf("verdict = %v, want unknown (budget exhaustion)", res.Verdict)
	}
	if res.Rounds < 10 {
		t.Errorf("only %d rounds before a 64-tuple budget ran out; instance not divergent?", res.Rounds)
	}
}

// A context cancelled before the chase starts stops a divergent run
// within one round (the probe fires at the top of every round).
func TestImpliesFDCancelledContext(t *testing.T) {
	db, sigma, goal := divergentInstance()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ImpliesFD(db, sigma, goal, Options{Ctx: ctx, MaxTuples: 1 << 30})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Rounds > 1 {
		t.Errorf("cancelled chase ran %d rounds, want at most one", res.Rounds)
	}
	if res.Verdict != Unknown {
		t.Errorf("verdict = %v, want unknown", res.Verdict)
	}
}

// A deadline stops the divergent chase mid-flight with partial
// rounds/tuples counts — the server's 503-with-stats path.
func TestImpliesFDDeadline(t *testing.T) {
	db, sigma, goal := divergentInstance()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := ImpliesFD(db, sigma, goal, Options{Ctx: ctx, MaxTuples: 1 << 30})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline ignored: chase ran %v", elapsed)
	}
	if res.Rounds == 0 || res.Tuples == 0 {
		t.Errorf("partial stats missing: rounds=%d tuples=%d", res.Rounds, res.Tuples)
	}
}

// Complete honours cancellation through the same per-round probe.
func TestCompleteCancelledContext(t *testing.T) {
	db, sigma, _ := divergentInstance()
	seed := data.NewDatabase(db)
	seed.MustInsert("R", data.Tuple{"a", "b", "c"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Complete(seed, sigma, Options{Ctx: ctx, MaxTuples: 1 << 30}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A nil Ctx (every pre-existing caller) still chases normally.
func TestNilContextUnchanged(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	res, err := ImpliesFD(db, sigma, deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y")), Options{})
	if err != nil || res.Verdict != Implied {
		t.Fatalf("nil-ctx chase broken: %v %v", res.Verdict, err)
	}
}
