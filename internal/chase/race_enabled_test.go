//go:build race

package chase

// raceDetectorEnabled reports whether this test binary was built with
// -race. sync.Pool deliberately drops a quarter of Puts at random under
// the race detector (to shake out lifetime bugs), so tests that pin
// exact pool hit/miss counts or exact allocation counts only hold
// without it; the differential (correctness) assertions run either way.
const raceDetectorEnabled = true
