package chase

// Pinning of the cross-request engine pool: recycled engines must be
// observably indistinguishable from freshly compiled ones, warm reuse
// must be allocation-free, engines killed mid-run must be poisoned
// (never re-pooled), and the fingerprint must never hand out an engine
// compiled for a different schema or sigma.

import (
	"context"
	"fmt"
	"testing"

	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

func prop41Fixture() (*schema.Database, []deps.Dependency) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	return db, sigma
}

// TestPoolReuseDifferential runs a mixed goal workload repeatedly
// through one pool and requires every pooled run to be byte-identical
// to an unpooled run of the same instance — verdicts, traces,
// counterexamples, rounds, tuples.
func TestPoolReuseDifferential(t *testing.T) {
	db, sigma := prop41Fixture()
	goals := []deps.Dependency{
		deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y")),
		deps.NewRD("R", deps.Attrs("X"), deps.Attrs("Y")),
		deps.NewFD("S", deps.Attrs("U"), deps.Attrs("T")),
		deps.NewIND("R", deps.Attrs("X"), "S", deps.Attrs("T")),
	}
	reg := obs.New()
	pool := NewEnginePool(reg)
	runs := 0
	for rep := 0; rep < 5; rep++ {
		for gi, goal := range goals {
			label := fmt.Sprintf("rep %d goal %d", rep, gi)
			got, gotErr := Implies(db, sigma, goal, Options{Pool: pool, Trace: true})
			want, wantErr := Implies(db, sigma, goal, Options{Trace: true})
			compareResults(t, label, got, gotErr, want, wantErr)
			runs++
		}
	}
	if raceDetectorEnabled {
		return // sync.Pool drops Puts at random under -race; exact counts don't hold
	}
	hits := reg.Counter("pool.hits").Value()
	misses := reg.Counter("pool.misses").Value()
	if misses != 1 {
		t.Errorf("pool.misses = %d, want 1 (one compile for the shared (schema, sigma) shape)", misses)
	}
	if hits != int64(runs-1) {
		t.Errorf("pool.hits = %d, want %d", hits, runs-1)
	}
	if d := reg.Counter("pool.discards").Value(); d != 0 {
		t.Errorf("pool.discards = %d on an error-free workload", d)
	}
}

// TestPoolReuseParallelDifferential is the same reuse pin with the
// sharded passes forced on, so pooled worker runners are exercised too.
func TestPoolReuseParallelDifferential(t *testing.T) {
	db, sigma := prop41Fixture()
	goal := deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y"))
	pool := NewEnginePool(nil)
	for rep := 0; rep < 5; rep++ {
		opt := Options{Pool: pool, Trace: true, Workers: 4, ParThreshold: -1}
		got, gotErr := Implies(db, sigma, goal, opt)
		want, wantErr := Implies(db, sigma, goal, Options{Trace: true, Workers: 4, ParThreshold: -1})
		compareResults(t, fmt.Sprintf("rep %d", rep), got, gotErr, want, wantErr)
	}
}

// TestPoolDiscardsCancelledEngines is the poisoning regression test: a
// chase killed mid-round by its context must never be re-pooled, and
// requests after the kill must still be answered correctly. It hammers
// the pool with alternating doomed and healthy runs.
func TestPoolDiscardsCancelledEngines(t *testing.T) {
	dbDiv, sigmaDiv, goalDiv := divergentInstance()
	db, sigma := prop41Fixture()
	goal := deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y"))

	reg := obs.New()
	pool := NewEnginePool(reg)
	dead, cancel := context.WithCancel(context.Background())
	cancel()

	kills := 0
	for i := 0; i < 50; i++ {
		// A divergent chase under an already-cancelled context: killed in
		// its first round, engine poisoned.
		_, err := Implies(dbDiv, sigmaDiv, goalDiv, Options{Pool: pool, Ctx: dead})
		if err == nil {
			t.Fatal("cancelled divergent chase returned no error")
		}
		kills++
		// A healthy request right after must be unaffected.
		got, gotErr := Implies(db, sigma, goal, Options{Pool: pool, Trace: true})
		want, wantErr := Implies(db, sigma, goal, Options{Trace: true})
		compareResults(t, fmt.Sprintf("after kill %d", i), got, gotErr, want, wantErr)
		// And a healthy run of the divergent shape itself (fresh compile
		// each time: its predecessor was discarded, never re-pooled).
		gotD, gotDErr := Implies(dbDiv, sigmaDiv, goalDiv, Options{Pool: pool, MaxTuples: 64, Trace: true})
		wantD, wantDErr := Implies(dbDiv, sigmaDiv, goalDiv, Options{MaxTuples: 64, Trace: true})
		compareResults(t, fmt.Sprintf("divergent after kill %d", i), gotD, gotDErr, wantD, wantDErr)
	}
	if d := reg.Counter("pool.discards").Value(); d != int64(kills) {
		t.Errorf("pool.discards = %d, want %d (one per kill)", d, kills)
	}
}

// TestPoolBudgetExhaustionReusable pins the other half of the poisoning
// rule: budget exhaustion is a verdict, not an error, so the engine is
// reset and re-pooled — and the recycled engine answers the next
// request byte-identically.
func TestPoolBudgetExhaustionReusable(t *testing.T) {
	dbDiv, sigmaDiv, goalDiv := divergentInstance()
	reg := obs.New()
	pool := NewEnginePool(reg)
	for i := 0; i < 3; i++ {
		got, gotErr := Implies(dbDiv, sigmaDiv, goalDiv, Options{Pool: pool, MaxTuples: 64, Trace: true})
		want, wantErr := Implies(dbDiv, sigmaDiv, goalDiv, Options{MaxTuples: 64, Trace: true})
		compareResults(t, fmt.Sprintf("run %d", i), got, gotErr, want, wantErr)
	}
	if d := reg.Counter("pool.discards").Value(); d != 0 {
		t.Errorf("pool.discards = %d; budget exhaustion must re-pool, not poison", d)
	}
	if h := reg.Counter("pool.hits").Value(); !raceDetectorEnabled && h != 2 {
		t.Errorf("pool.hits = %d, want 2", h)
	}
}

// TestPoolMatchesRejectsOtherShapes unit-tests the collision guard: an
// engine must only match the exact schema and sigma it was compiled
// from, field by field.
func TestPoolMatchesRejectsOtherShapes(t *testing.T) {
	db, sigma := prop41Fixture()
	e, err := newEngine(db, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !e.matches(db, sigma) {
		t.Fatal("engine does not match its own compilation inputs")
	}
	otherRel := schema.MustDatabase(
		schema.MustScheme("R2", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	otherAttrs := schema.MustDatabase(
		schema.MustScheme("R", "X", "Z"),
		schema.MustScheme("S", "T", "U"),
	)
	if e.matches(otherRel, sigma) {
		t.Error("matched a database with a different relation name")
	}
	if e.matches(otherAttrs, sigma) {
		t.Error("matched a database with different attributes")
	}
	if e.matches(db, sigma[:1]) {
		t.Error("matched a shorter sigma")
	}
	if e.matches(db, []deps.Dependency{sigma[1], sigma[0]}) {
		t.Error("matched a reordered sigma (compile order differs)")
	}
	swapped := []deps.Dependency{
		sigma[0],
		deps.NewFD("S", deps.Attrs("U"), deps.Attrs("T")),
	}
	if e.matches(db, swapped) {
		t.Error("matched a sigma with different FD columns")
	}
}

// TestPoolWarmRunAllocFree pins the pooled steady state at the chase
// layer: with instrumentation off, a warm implication request on a
// cached (schema, sigma) shape performs zero allocations.
func TestPoolWarmRunAllocFree(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	db, sigma := prop41Fixture()
	goal := deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y"))
	pool := NewEnginePool(nil)
	opt := Options{Pool: pool}
	// Prime: first run compiles and grows every arena to its high-water
	// mark; subsequent runs reuse all of it.
	if _, err := ImpliesFD(db, sigma, goal, opt); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		if _, err := ImpliesFD(db, sigma, goal, opt); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("warm pooled implication allocates %.1f/run, want 0", got)
	}
}
