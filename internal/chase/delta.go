// The delta machinery of the semi-naive chase: draining the dirty queue
// (re-keying exactly the tuples whose classes merged), deduplication
// folded into index maintenance (only relations a re-key flagged are
// swept), and the delta-driven IND pass (only tuples added since an IND's
// last completed scan are examined, justified by witness monotonicity).

package chase

import (
	"sort"
	"time"
)

// processDirty re-keys every tuple queued by unions since the last drain:
// its canonical tuple key moves to the interned key of its current roots
// (flagging the relation for dedup when two live tuples collide), and
// every witness index on its relation is updated. After a drain all
// persistent keys reflect current roots, which is what makes insert's
// duplicate probe and the witness probes canonical-equality tests.
func (e *engine) processDirty() {
	for _, tid := range e.dirty {
		e.inDirty[tid] = false
		if e.tupDead[tid] {
			continue
		}
		rs := &e.rels[e.tupRel[tid]]
		t := e.tupleVals(tid)
		b := e.appendRootsKey(e.keyBuf[:0], t)
		kid, fresh := rs.keys.Intern(b)
		e.keyBuf = b
		if fresh {
			rs.count = append(rs.count, 0)
			rs.seen = append(rs.seen, 0)
		}
		if old := e.tupKey[tid]; kid != old {
			rs.count[old]--
			rs.count[kid]++
			e.tupKey[tid] = kid
			if rs.count[kid] > 1 {
				rs.dupDirty = true
			}
		}
		for _, pi := range rs.watchers {
			pi.rekey(e, tid, t)
		}
		e.cRekeyed.Inc()
	}
	e.dirty = e.dirty[:0]
}

// dedup removes canonically duplicate tuples created by unions, keeping
// the first occurrence — but only in relations where a re-key actually
// produced a key collision (insert itself can never create a duplicate:
// it probes first). Removed tuples are unregistered from the witness
// indexes and the live count.
func (e *engine) dedup() {
	e.processDirty()
	for ri := range e.rels {
		rs := &e.rels[ri]
		if !rs.dupDirty {
			continue
		}
		rs.dupDirty = false
		rs.sweep++
		out := rs.order[:0]
		for _, tid := range rs.order {
			kid := e.tupKey[tid]
			if rs.seen[kid] == rs.sweep {
				e.tupDead[tid] = true
				rs.count[kid]--
				e.tuples--
				rs.version++
				for _, pi := range rs.watchers {
					pi.remove(tid)
				}
				continue
			}
			rs.seen[kid] = rs.sweep
			out = append(out, tid)
		}
		rs.order = out
	}
}

// applyINDs fires every IND once: for each left tuple with no witness on
// the right, a new right tuple is created with fresh nulls outside the
// target columns.
//
// Only the delta is scanned. Witnesses are monotone — unions only merge
// classes, so canonically-equal projections stay equal, and dedup removes
// a tuple only when a canonically-equal one survives — so once a left
// tuple has a witness it has one forever. After a completed scan every
// left tuple up to the snapshot end is witnessed (either it had a witness
// or this IND created one), so the next scan starts past maxSeen. Tuple
// IDs increase along the insertion order, making the delta a suffix.
func (e *engine) applyINDs() (changed bool, err error) {
	if e.par != nil {
		if ran, changed, err := e.indPassPar(); ran {
			return changed, err
		}
	}
	return e.indPassSeq()
}

// indDeltaStart returns the index into order of the first tuple past
// the IND's witnessed high-water mark. order is sorted (tuple IDs
// increase along insertion order), so the delta is the suffix from it.
func indDeltaStart(order []int32, maxSeen int32) int {
	if maxSeen < 0 {
		return 0
	}
	return sort.Search(len(order), func(k int) bool { return order[k] > maxSeen })
}

// indPassSeq is the sequential IND delta pass.
func (e *engine) indPassSeq() (changed bool, err error) {
	for i := range e.inds {
		is := &e.inds[i]
		lrel := &e.rels[is.lri]
		// Snapshot the order slice header: tuples this pass appends (when
		// LRel == RRel) are handled in the next round, as in the reference.
		order := lrel.order
		start := indDeltaStart(order, is.maxSeen)
		var scanStart time.Time
		if e.profTimed() {
			scanStart = time.Now()
		}
		for k := start; k < len(order); k++ {
			tid := order[k]
			t := e.tupleVals(tid)
			e.cDelta.Inc()
			if is.pi.witnessed(e, t, is.xs) {
				continue
			}
			added, err := e.fireIND(i, tid, t)
			if err != nil {
				return changed, err
			}
			if added {
				changed = true
			}
		}
		if e.prof != nil {
			a := &e.prof.ind[i]
			a.scanned += int64(len(order) - start)
			if e.prof.timed {
				a.scanNS += time.Since(scanStart).Nanoseconds()
			}
		}
		if len(order) > start {
			is.maxSeen = order[len(order)-1]
		}
	}
	return changed, nil
}

// fireIND applies IND i to the unwitnessed left tuple tid (values t):
// it builds the new right tuple with fresh nulls outside the target
// columns and inserts it, attributing provenance, profile, trace and
// counters exactly as the reference engine would. The caller has
// already established that tid has no witness.
func (e *engine) fireIND(i int, tid int32, t []int32) (added bool, err error) {
	is := &e.inds[i]
	width := e.rels[is.rri].width
	u := e.tmp
	if cap(u) < width {
		u = make([]int32, width)
	}
	u = u[:width]
	e.tmp = u
	for j := range u {
		u[j] = -1
	}
	for j := range is.ys {
		u[is.ys[j]] = t[is.xs[j]]
	}
	for j := range u {
		if u[j] == -1 {
			u[j] = e.newNull()
		}
	}
	if e.prov != nil {
		// Identify the pending insert as this IND firing on this
		// witness tuple; insert's noteTuple consumes it.
		e.prov.pendRule, e.prov.pendSrc = int32(i), tid
	}
	added, err = e.insert(is.rri, u)
	if e.prov != nil {
		e.prov.pendRule, e.prov.pendSrc = -1, -1
	}
	if err != nil {
		return false, err
	}
	if added {
		e.cINDAdds.Inc()
		if e.prof != nil {
			a := &e.prof.ind[i]
			a.fire(e.round)
			a.produced++
		}
		if e.doTrace {
			e.tracef("IND %v adds %v to %s for %v", is.d, e.describeTuple(u), is.d.RRel, e.describeTuple(t))
		}
	}
	return added, nil
}
