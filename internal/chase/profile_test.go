package chase

import (
	"context"
	"testing"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

// prop41Sigma is the Proposition 4.1 fixture: the IND feeds S and the
// FD fires on it; a third, irrelevant FD stays cold.
func prop41Sigma() (*schema.Database, []deps.Dependency, deps.FD) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
		deps.NewFD("R", deps.Attrs("X", "Y"), deps.Attrs("X")), // trivial, never equates
	}
	return db, sigma, deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y"))
}

// TestProfileDifferential pins that profiling only observes: verdicts,
// rounds, tuples, traces and derivations are identical with Profile on
// and off, the profile is present exactly when requested.
func TestProfileDifferential(t *testing.T) {
	db, sigma, goal := prop41Sigma()
	plain, err := ImpliesFD(db, sigma, goal, Options{Trace: true, Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ImpliesFD(db, sigma, goal, Options{Trace: true, Provenance: true, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Profile != nil {
		t.Errorf("unprofiled run carries a profile")
	}
	if prof.Profile == nil {
		t.Fatalf("profiled run carries no profile")
	}
	if plain.Verdict != prof.Verdict || plain.Rounds != prof.Rounds || plain.Tuples != prof.Tuples {
		t.Errorf("profiling changed the outcome: %v/%d/%d vs %v/%d/%d",
			plain.Verdict, plain.Rounds, plain.Tuples, prof.Verdict, prof.Rounds, prof.Tuples)
	}
	if len(plain.Trace) != len(prof.Trace) {
		t.Errorf("profiling changed the trace: %d vs %d lines", len(plain.Trace), len(prof.Trace))
	}
	if (plain.Derivation == nil) != (prof.Derivation == nil) {
		t.Errorf("profiling changed derivation extraction")
	}
}

// TestProfileAttribution checks the fixture's known firing pattern: the
// IND adds exactly the two witness tuples, the S FD equates their U
// values, and the trivial R FD scans but never fires.
func TestProfileAttribution(t *testing.T) {
	db, sigma, goal := prop41Sigma()
	res, err := ImpliesFD(db, sigma, goal, Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied {
		t.Fatalf("verdict %v, want implied", res.Verdict)
	}
	p := res.Profile
	if len(p.Deps) != len(sigma) {
		t.Fatalf("profile has %d entries, want one per Σ member (%d): %+v", len(p.Deps), len(sigma), p.Deps)
	}
	byDep := map[string]int{}
	for i, d := range p.Deps {
		byDep[d.Dep] = i
	}
	indCost := p.Deps[byDep[sigma[0].String()]]
	if indCost.Kind != "ind" || indCost.Firings != 2 || indCost.Produced != 2 {
		t.Errorf("IND attribution = %+v, want 2 firings producing 2 tuples", indCost)
	}
	sFD := p.Deps[byDep[sigma[1].String()]]
	if sFD.Kind != "fd" || sFD.Firings != 1 {
		t.Errorf("S FD attribution = %+v, want exactly 1 firing", sFD)
	}
	if sFD.Rounds != 1 {
		t.Errorf("S FD rounds-active = %d, want 1", sFD.Rounds)
	}
	cold := p.Deps[byDep[sigma[2].String()]]
	if cold.Firings != 0 {
		t.Errorf("trivial FD fired: %+v", cold)
	}
	if cold.Scanned == 0 {
		t.Errorf("cold member reported no scans — cold entries must still appear with their scan cost: %+v", cold)
	}
	// The list is sorted hottest-first with workless entries last.
	for i := 1; i < len(p.Deps); i++ {
		if p.Deps[i-1].ScanNS < p.Deps[i].ScanNS &&
			p.Deps[i-1].Firings < p.Deps[i].Firings {
			t.Errorf("profile not hottest-first at %d: %+v", i, p.Deps)
		}
	}
}

// TestProfileRoundsActive checks the rounds-active dedup on a chain
// that takes several rounds: F[B] <= F[A] style INDs fire in multiple
// rounds and each round counts once.
func TestProfileRoundsActive(t *testing.T) {
	db := schema.MustDatabase(schema.MustScheme("F", "A", "B", "C"))
	sigma := []deps.Dependency{
		deps.NewIND("F", deps.Attrs("B", "C"), "F", deps.Attrs("A", "B")),
		deps.NewFD("F", deps.Attrs("A"), deps.Attrs("B")),
	}
	res, err := ImpliesFD(db, sigma, deps.NewFD("F", deps.Attrs("A"), deps.Attrs("C")), Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied {
		t.Fatalf("verdict %v, want implied", res.Verdict)
	}
	for _, d := range res.Profile.Deps {
		if d.Firings > 0 && d.Rounds == 0 {
			t.Errorf("%s fired %d times but reports 0 active rounds", d.Dep, d.Firings)
		}
		if d.Rounds > int64(res.Rounds) {
			t.Errorf("%s active in %d rounds, chase only ran %d", d.Dep, d.Rounds, res.Rounds)
		}
		if d.Rounds > d.Firings {
			t.Errorf("%s rounds %d exceeds firings %d", d.Dep, d.Rounds, d.Firings)
		}
	}
}

// TestProfileOnCancellation pins that a deadline-killed chase still
// attributes the partial work it did.
func TestProfileOnCancellation(t *testing.T) {
	// A divergent instance: F[B] <= F[A] with an FD that keeps the chase
	// from closing, budgeted high enough to outlive the cancelled ctx.
	db := schema.MustDatabase(schema.MustScheme("F", "A", "B"))
	sigma := []deps.Dependency{
		deps.NewIND("F", deps.Attrs("B"), "F", deps.Attrs("A")),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the first round's probe trips
	res, err := ImpliesFD(db, sigma, deps.NewFD("F", deps.Attrs("A"), deps.Attrs("B")),
		Options{Profile: true, Ctx: ctx, MaxTuples: 1 << 20})
	if err == nil {
		t.Fatalf("cancelled chase returned verdict %v without error", res.Verdict)
	}
	if res.Profile == nil {
		t.Errorf("cancelled chase dropped its partial profile")
	}
}
