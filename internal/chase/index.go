// Persistent incremental indexes of the semi-naive chase engine: the
// labeled union-find over value IDs, the flat tuple arena, per-relation
// interned-key state, and the refcounted witness indexes the INDs probe.
// The invariants maintained here are what lets the fixpoint in chase.go
// and delta.go skip work:
//
//   - watch[r] contains every live tuple whose canonical key involves
//     class r, so a union knows exactly which tuples to re-key (the
//     losing side's watchers) and which relations' versions to bump;
//   - tupKey[tid] is the interned canonical key of the tuple, current
//     whenever the dirty queue is empty (processDirty drains it before
//     every dedup and IND pass), making duplicate detection one probe;
//   - each projIndex refcounts live tuples per interned projection key,
//     so "does a witness exist" is one probe too.

package chase

import (
	"fmt"

	"indfd/internal/intern"
)

// relState is the per-relation index: live tuples in insertion order, the
// intern table of canonical tuple keys with live refcounts, a version
// counter bumped on any membership or key change (the FD/RD skip gate),
// and the witness indexes of the INDs whose right-hand side this relation
// is.
type relState struct {
	name     string
	width    int
	order    []int32
	keys     *intern.Table
	count    []int32
	seen     []uint32
	sweep    uint32
	version  uint64
	dupDirty bool
	watchers []*projIndex
}

// projIndex is the incremental witness index of one IND (or of an IND
// goal): a refcount of live tuples per interned projection key of the
// indexed relation, plus each tuple's current contribution so re-keying
// and removal can decrement the right slot.
type projIndex struct {
	pos     []int
	keys    *intern.Table
	count   []int32
	contrib []int32 // per tuple ID: interned key, or -1
}

func (pi *projIndex) ensure(tid int32) {
	for int32(len(pi.contrib)) <= tid {
		pi.contrib = append(pi.contrib, -1)
	}
}

// add records a newly inserted tuple of the indexed relation.
func (pi *projIndex) add(e *engine, tid int32, t []int32) {
	b := e.appendProjKey(e.keyBuf[:0], t, pi.pos)
	kid, fresh := pi.keys.Intern(b)
	e.keyBuf = b
	if fresh {
		pi.count = append(pi.count, 0)
	}
	pi.count[kid]++
	pi.ensure(tid)
	pi.contrib[tid] = kid
}

// rekey moves a tuple's contribution after its classes merged.
func (pi *projIndex) rekey(e *engine, tid int32, t []int32) {
	b := e.appendProjKey(e.keyBuf[:0], t, pi.pos)
	kid, fresh := pi.keys.Intern(b)
	e.keyBuf = b
	if fresh {
		pi.count = append(pi.count, 0)
	}
	old := pi.contrib[tid]
	if kid == old {
		return
	}
	pi.count[old]--
	pi.count[kid]++
	pi.contrib[tid] = kid
}

// remove drops a tuple deleted by dedup.
func (pi *projIndex) remove(tid int32) {
	pi.count[pi.contrib[tid]]--
	pi.contrib[tid] = -1
}

// reset rewinds the index to empty while keeping its backing
// allocations warm (pool reuse).
func (pi *projIndex) reset() {
	pi.keys.Reset()
	pi.count = pi.count[:0]
	pi.contrib = pi.contrib[:0]
}

// witnessed reports whether some live indexed tuple's projection equals
// t's projection at pos. Sound whenever the dirty queue is drained: all
// keys then reflect current roots, so key equality is canonical equality.
func (pi *projIndex) witnessed(e *engine, t []int32, pos []int) bool {
	b := e.appendProjKey(e.keyBuf[:0], t, pos)
	kid, ok := pi.keys.Lookup(b)
	e.keyBuf = b
	return ok && pi.count[kid] > 0
}

// appendRoot appends the 4-byte little-endian encoding of a root ID —
// the same encoding the reference engine's string keys use.
func appendRoot(b []byte, r int32) []byte {
	return append(b, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
}

// appendRootsKey appends the canonical key of a whole tuple.
func (e *engine) appendRootsKey(b []byte, t []int32) []byte {
	for _, v := range t {
		b = appendRoot(b, e.find(v))
	}
	return b
}

// appendProjKey appends the canonical key of a tuple's projection.
func (e *engine) appendProjKey(b []byte, t []int32, pos []int) []byte {
	for _, p := range pos {
		b = appendRoot(b, e.find(t[p]))
	}
	return b
}

// appendLabelProjKey is appendProjKey rendered through class labels — the
// exact bytes the reference engine's projKey would produce. FD grouping
// uses it because grouping happens mid-pass, across root changes, and so
// observably depends on the representative choice.
func (e *engine) appendLabelProjKey(b []byte, t []int32, pos []int) []byte {
	for _, p := range pos {
		b = appendRoot(b, e.label[e.find(t[p])])
	}
	return b
}

func (e *engine) newValue(name string) int32 {
	id := int32(len(e.parent))
	e.parent = append(e.parent, id)
	e.label = append(e.label, id)
	e.name = append(e.name, name)
	// Reuse a watch-list slot left behind by a pool reset when one
	// exists (the inner slice keeps its capacity), so a warm pooled
	// run's inserts allocate nothing.
	if n := len(e.watch); n < cap(e.watch) {
		e.watch = e.watch[:n+1]
		e.watch[n] = e.watch[n][:0]
	} else {
		e.watch = append(e.watch, nil)
	}
	return id
}

func (e *engine) newNull() int32 { return e.newValue("") }

func (e *engine) newConst(name string) int32 {
	if id, ok := e.consts[name]; ok {
		return id
	}
	id := e.newValue(name)
	e.consts[name] = id
	return id
}

func (e *engine) find(x int32) int32 {
	for e.parent[x] != x {
		e.parent[x] = e.parent[e.parent[x]]
		x = e.parent[x]
	}
	return x
}

// findRO is find without path halving: workers probing a frozen
// tableau concurrently must not write parent (that would race), and
// path halving keeps chains short enough that the pure walk is cheap.
func (e *engine) findRO(x int32) int32 {
	for e.parent[x] != x {
		x = e.parent[x]
	}
	return x
}

// equal reports canonical equality.
func (e *engine) equal(a, b int32) bool { return e.find(a) == e.find(b) }

// union merges the classes of a and b. Merging two distinct constants is a
// hard contradiction (sigma plus the seed is unsatisfiable over distinct
// constants) and reported as an error.
//
// Structurally the side with fewer tuple references loses (so each tuple
// is re-keyed O(log n) times over a run), but the class label follows the
// reference engine's rule — the first argument's representative wins
// unless only the second is a constant — because labels are what trace
// lines and exports print. The losing side's watchers go on the dirty
// queue and their relations' versions are bumped.
func (e *engine) union(a, b int32) (changed bool, err error) {
	ra, rb := e.find(a), e.find(b)
	if ra == rb {
		return false, nil
	}
	la, lb := e.label[ra], e.label[rb]
	na, nb := e.name[la], e.name[lb]
	if na != "" && nb != "" && na != nb {
		return false, fmt.Errorf("chase: contradiction: constants %q and %q equated", na, nb)
	}
	winner := la
	if na == "" && nb != "" {
		winner = lb
	}
	if len(e.watch[ra]) < len(e.watch[rb]) {
		ra, rb = rb, ra
	}
	e.parent[rb] = ra
	e.label[ra] = winner
	for _, tid := range e.watch[rb] {
		e.markDirty(tid)
	}
	e.watch[ra] = append(e.watch[ra], e.watch[rb]...)
	// Truncate (not nil) the loser's list: rb is no longer a root so the
	// contents are dead, but the backing array stays warm for the slot's
	// next life after a pool reset.
	e.watch[rb] = e.watch[rb][:0]
	e.cUnions.Inc()
	return true, nil
}

// markDirty queues a live tuple for re-keying and bumps its relation's
// version (invalidating FD/RD clean-scan records).
func (e *engine) markDirty(tid int32) {
	if e.tupDead[tid] {
		return
	}
	e.rels[e.tupRel[tid]].version++
	if !e.inDirty[tid] {
		e.inDirty[tid] = true
		e.dirty = append(e.dirty, tid)
	}
}

// tupleVals returns the value IDs of a tuple (a view into the arena).
func (e *engine) tupleVals(tid int32) []int32 {
	off := e.tupOff[tid]
	return e.vals[off : off+int32(e.rels[e.tupRel[tid]].width)]
}

// insert adds a tuple of value IDs to the relation if no canonically-equal
// tuple is already present — one interned-key probe, not a linear rescan.
// It enforces the tuple budget (probing first, like the reference: a
// duplicate at the budget boundary is a no-op, not an exhaustion). The
// new tuple is registered with the class watch lists and every witness
// index on the relation.
func (e *engine) insert(ri int32, t []int32) (added bool, err error) {
	rs := &e.rels[ri]
	b := e.appendRootsKey(e.keyBuf[:0], t)
	e.keyBuf = b
	if kid, ok := rs.keys.Lookup(b); ok && rs.count[kid] > 0 {
		return false, nil
	}
	if e.tuples >= e.max {
		return false, errBudget
	}
	kid, fresh := rs.keys.Intern(b)
	if fresh {
		rs.count = append(rs.count, 0)
		rs.seen = append(rs.seen, 0)
	}
	tid := int32(len(e.tupOff))
	e.tupOff = append(e.tupOff, int32(len(e.vals)))
	e.vals = append(e.vals, t...)
	e.tupRel = append(e.tupRel, ri)
	e.tupKey = append(e.tupKey, kid)
	e.tupDead = append(e.tupDead, false)
	e.inDirty = append(e.inDirty, false)
	rs.count[kid]++
	rs.order = append(rs.order, tid)
	rs.version++
	e.tuples++
	e.cTuples.Inc()
	e.gTuples.SetMax(int64(e.tuples))
	tv := e.tupleVals(tid)
	for _, v := range tv {
		r := e.find(v)
		e.watch[r] = append(e.watch[r], tid)
	}
	for _, pi := range rs.watchers {
		pi.add(e, tid, tv)
	}
	if e.prov != nil {
		e.prov.noteTuple(tid)
	}
	return true, nil
}
