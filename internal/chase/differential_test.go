package chase

// Differential pinning of the semi-naive engine against the naive
// reference engine: same verdicts, same rounds/tuples, byte-identical
// traces, identical counterexample databases, and identical chase.*
// counters — on the fixed fixtures the package's other tests use and on
// randomized schemas.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// dataSeed builds a concrete database from string rows.
func dataSeed(db *schema.Database, rows map[string][][]string) *data.Database {
	out := data.NewDatabase(db)
	for rel, rs := range rows {
		for _, row := range rs {
			tup := make(data.Tuple, len(row))
			for i, v := range row {
				tup[i] = data.Value(v)
			}
			out.MustRelation(rel).MustInsert(tup)
		}
	}
	return out
}

// refCounters is the instrument set shared by both engines; the
// semi-naive engine's extra counters (delta_tuples, rekeyed_tuples,
// scans_skipped) are deliberately excluded.
var refCounters = []string{
	"chase.rounds",
	"chase.tuples_created",
	"chase.unions",
	"chase.fd_applications",
	"chase.rd_applications",
	"chase.ind_applications",
	"chase.fixpoint_passes",
}

// diffImplies runs both engines on the same implication instance and
// fails on any observable divergence.
func diffImplies(t *testing.T, label string, db *schema.Database, sigma []deps.Dependency, goal deps.Dependency, opt Options) {
	t.Helper()
	regNew, regRef := obs.New(), obs.New()
	optNew, optRef := opt, opt
	optNew.Obs, optNew.Trace = regNew, true
	optRef.Obs, optRef.Trace = regRef, true
	got, gotErr := Implies(db, sigma, goal, optNew)
	want, wantErr := ReferenceImplies(db, sigma, goal, optRef)
	compareResults(t, label, got, gotErr, want, wantErr)
	compareCounters(t, label, regNew, regRef)
}

func compareResults(t *testing.T, label string, got Result, gotErr error, want Result, wantErr error) {
	t.Helper()
	if fmt.Sprint(gotErr) != fmt.Sprint(wantErr) {
		t.Fatalf("%s: error %v, reference %v", label, gotErr, wantErr)
	}
	if got.Verdict != want.Verdict {
		t.Fatalf("%s: verdict %v, reference %v", label, got.Verdict, want.Verdict)
	}
	if got.Rounds != want.Rounds || got.Tuples != want.Tuples {
		t.Errorf("%s: rounds/tuples %d/%d, reference %d/%d", label, got.Rounds, got.Tuples, want.Rounds, want.Tuples)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("%s: trace has %d lines, reference %d\nnew: %q\nref: %q",
			label, len(got.Trace), len(want.Trace), got.Trace, want.Trace)
	}
	for i := range got.Trace {
		if got.Trace[i] != want.Trace[i] {
			t.Fatalf("%s: trace line %d:\nnew: %s\nref: %s", label, i, got.Trace[i], want.Trace[i])
		}
	}
	switch {
	case (got.Counterexample == nil) != (want.Counterexample == nil):
		t.Errorf("%s: counterexample presence %v, reference %v",
			label, got.Counterexample != nil, want.Counterexample != nil)
	case got.Counterexample != nil:
		if g, w := got.Counterexample.String(), want.Counterexample.String(); g != w {
			t.Errorf("%s: counterexample differs:\nnew:\n%s\nref:\n%s", label, g, w)
		}
	}
}

func compareCounters(t *testing.T, label string, regNew, regRef *obs.Registry) {
	t.Helper()
	for _, name := range refCounters {
		if g, w := regNew.Counter(name).Value(), regRef.Counter(name).Value(); g != w {
			t.Errorf("%s: counter %s = %d, reference %d", label, name, g, w)
		}
	}
	if g, w := regNew.Gauge("chase.tuples_peak").Value(), regRef.Gauge("chase.tuples_peak").Value(); g != w {
		t.Errorf("%s: gauge chase.tuples_peak = %d, reference %d", label, g, w)
	}
}

func TestDifferentialFixtures(t *testing.T) {
	// Proposition 4.1: the IND pulls R into S where the FD fires back.
	db41 := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma41 := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	diffImplies(t, "prop4.1 fd", db41, sigma41,
		deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y")), Options{})
	diffImplies(t, "prop4.1 rd", db41, sigma41,
		deps.NewRD("R", deps.Attrs("X"), deps.Attrs("Y")), Options{})
	diffImplies(t, "prop4.1 not-implied", db41, sigma41,
		deps.NewFD("S", deps.Attrs("U"), deps.Attrs("T")), Options{})

	// IND transitivity: the chase derives R[A] ⊆ T[E] through S.
	dbChain := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
		schema.MustScheme("T", "E", "F"),
	)
	sigmaChain := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("C")),
		deps.NewIND("S", deps.Attrs("C"), "T", deps.Attrs("E")),
	}
	diffImplies(t, "ind chain", dbChain, sigmaChain,
		deps.NewIND("R", deps.Attrs("A"), "T", deps.Attrs("E")), Options{})
	diffImplies(t, "ind chain not-implied", dbChain, sigmaChain,
		deps.NewIND("T", deps.Attrs("E"), "R", deps.Attrs("A")), Options{})

	// The divergent Lemma 7.2-style instance: budget exhaustion.
	dbDiv, sigmaDiv, goalDiv := divergentInstance()
	diffImplies(t, "divergent", dbDiv, sigmaDiv, goalDiv, Options{MaxTuples: 64})
	diffImplies(t, "divergent tiny", dbDiv, sigmaDiv, goalDiv, Options{MaxTuples: 3})
}

// randomImpliesInstance draws one random implication instance — schema,
// dependency set, goal, and tuple budget — from r. Shared by the
// engine-vs-reference and parallel-vs-sequential differential tests so
// both sweep the same instance distribution.
func randomImpliesInstance(r *rand.Rand) (*schema.Database, []deps.Dependency, deps.Dependency, Options) {
	attrPool := []string{"A", "B", "C", "D"}
	nRels := 2 + r.IntN(3)
	schemes := make([]*schema.Scheme, nRels)
	names := make([]string, nRels)
	widths := make([]int, nRels)
	for i := range schemes {
		names[i] = fmt.Sprintf("R%d", i)
		w := 2 + r.IntN(3)
		widths[i] = w
		attrs := make([]schema.Attribute, w)
		for j := 0; j < w; j++ {
			attrs[j] = schema.Attribute(attrPool[j])
		}
		schemes[i] = schema.MustScheme(names[i], attrs...)
	}
	db := schema.MustDatabase(schemes...)

	pick := func(i, n int) []schema.Attribute {
		perm := r.Perm(widths[i])[:n]
		out := make([]schema.Attribute, n)
		for k, p := range perm {
			out[k] = schema.Attribute(attrPool[p])
		}
		return out
	}
	randFD := func() deps.Dependency {
		i := r.IntN(nRels)
		return deps.NewFD(names[i], pick(i, 1+r.IntN(widths[i]-1)), pick(i, 1))
	}
	randRD := func() deps.Dependency {
		i := r.IntN(nRels)
		return deps.NewRD(names[i], pick(i, 1), pick(i, 1))
	}
	randIND := func() deps.Dependency {
		i, j := r.IntN(nRels), r.IntN(nRels)
		w := 1 + r.IntN(min(widths[i], widths[j]))
		return deps.NewIND(names[i], pick(i, w), names[j], pick(j, w))
	}
	var sigma []deps.Dependency
	for k := 2 + r.IntN(4); k > 0; k-- {
		switch r.IntN(4) {
		case 0:
			sigma = append(sigma, randFD())
		case 1:
			sigma = append(sigma, randRD())
		default:
			sigma = append(sigma, randIND())
		}
	}
	var goal deps.Dependency
	switch r.IntN(3) {
	case 0:
		goal = randFD()
	case 1:
		goal = randRD()
	default:
		goal = randIND()
	}
	return db, sigma, goal, Options{MaxTuples: 40 + r.IntN(160)}
}

// TestDifferentialRandom compares the engines on seeded random schemas,
// dependency sets, and goals — a mix of all three verdicts and of
// contradiction errors under Complete-style constant seeding is expected
// and checked line-for-line.
func TestDifferentialRandom(t *testing.T) {
	r := rand.New(rand.NewPCG(42, 7))
	compared, skipped := 0, 0
	for trial := 0; trial < 400; trial++ {
		db, sigma, goal, opt := randomImpliesInstance(r)
		// A chase can diverge without exhausting the live-tuple budget
		// (dedup keeps freeing it while unions fire forever) — in both
		// engines alike. Probe the instance on the reference engine under
		// a deadline; when it doesn't terminate on its own, skip the trial
		// (the engines can only be compared deterministically, and a
		// wall-clock cancellation is not deterministic). Terminating
		// instances are then re-run deadline-free on both engines.
		probeCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		probeOpt := opt
		probeOpt.Ctx = probeCtx
		_, probeErr := ReferenceImplies(db, sigma, goal, probeOpt)
		cancel()
		if probeErr != nil {
			skipped++
			continue
		}
		label := fmt.Sprintf("trial %d: %v |= %v", trial, sigma, goal)
		diffImplies(t, label, db, sigma, goal, opt)
		compared++
	}
	t.Logf("compared %d random instances (%d diverging instances skipped)", compared, skipped)
	if compared < 100 {
		t.Errorf("only %d random instances compared; generator or probe broken", compared)
	}
}

// TestDisabledObsAllocsPinned keeps the uninstrumented chase path
// (BenchmarkChaseObs/disabled) allocation-pinned: the semi-naive engine
// must not allocate more than the naive reference on the Proposition 4.1
// fixture, nor exceed a fixed ceiling (measured 85 allocs/run; the
// ceiling leaves slack for toolchain drift, not for regressions).
func TestDisabledObsAllocsPinned(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	goal := deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y"))
	got := testing.AllocsPerRun(200, func() {
		if _, err := ImpliesFD(db, sigma, goal, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	ref := testing.AllocsPerRun(200, func() {
		if _, err := ReferenceImpliesFD(db, sigma, goal, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if got > ref {
		t.Errorf("semi-naive disabled path allocates %.1f/run, more than the naive reference's %.1f", got, ref)
	}
	if got > 100 {
		t.Errorf("semi-naive disabled path allocates %.1f/run, ceiling 100", got)
	}
}

// TestDifferentialComplete pins Complete: same completed database (or the
// same error) and same counters on seeded random instances.
func TestDifferentialComplete(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("F", "A", "B", "C"),
		schema.MustScheme("G", "A", "B"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("F", deps.Attrs("A", "B"), "G", deps.Attrs("A", "B")),
		deps.NewIND("G", deps.Attrs("B"), "F", deps.Attrs("A")),
		deps.NewFD("F", deps.Attrs("A"), deps.Attrs("B")),
	}
	seed := dataSeed(db, map[string][][]string{
		"F": {{"a", "b", "c"}, {"a", "e", "f"}, {"g", "b", "c"}},
	})
	regNew, regRef := obs.New(), obs.New()
	got, gotErr := Complete(seed, sigma, Options{Obs: regNew, MaxTuples: 64})
	want, wantErr := ReferenceComplete(seed, sigma, Options{Obs: regRef, MaxTuples: 64})
	if fmt.Sprint(gotErr) != fmt.Sprint(wantErr) {
		t.Fatalf("Complete error %v, reference %v", gotErr, wantErr)
	}
	if (got == nil) != (want == nil) {
		t.Fatalf("Complete database presence %v, reference %v", got != nil, want != nil)
	}
	if got != nil && got.String() != want.String() {
		t.Errorf("Complete differs:\nnew:\n%s\nref:\n%s", got.String(), want.String())
	}
	compareCounters(t, "complete", regNew, regRef)

	// A seed whose FD equates the distinct constants b and e: both engines
	// must report the same contradiction.
	bad := []deps.Dependency{deps.NewFD("F", deps.Attrs("A"), deps.Attrs("B"))}
	_, gotErr = Complete(seed, bad, Options{})
	_, wantErr = ReferenceComplete(seed, bad, Options{})
	if gotErr == nil || fmt.Sprint(gotErr) != fmt.Sprint(wantErr) {
		t.Fatalf("contradiction error %v, reference %v", gotErr, wantErr)
	}
}
