//go:build !race

package chase

// See race_enabled_test.go.
const raceDetectorEnabled = false
