package chase

// Tests of the provenance layer: (1) enabling capture is observably
// inert — verdicts, rounds/tuples, traces, counterexamples, and
// counters are byte-identical with provenance on and off, on the fixed
// fixtures and on ~100 random instances; (2) every derivation extracted
// from an Implied verdict is a sound proof — Verify replays it
// mechanically and the goal equalities come out.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// diffProvenance runs the semi-naive engine twice — provenance off and
// on — and fails on any observable divergence; on an Implied verdict it
// additionally replays the extracted derivation.
func diffProvenance(t *testing.T, label string, db *schema.Database, sigma []deps.Dependency, goal deps.Dependency, opt Options) {
	t.Helper()
	regOff, regOn := obs.New(), obs.New()
	optOff, optOn := opt, opt
	optOff.Obs, optOff.Trace = regOff, true
	optOn.Obs, optOn.Trace, optOn.Provenance = regOn, true, true
	want, wantErr := Implies(db, sigma, goal, optOff)
	got, gotErr := Implies(db, sigma, goal, optOn)
	compareResults(t, label, got, gotErr, want, wantErr)
	compareCounters(t, label, regOn, regOff)
	if want.Derivation != nil {
		t.Errorf("%s: derivation set with provenance off", label)
	}
	switch {
	case gotErr != nil:
	case got.Verdict == Implied && got.Derivation == nil:
		t.Errorf("%s: Implied with provenance on but no derivation", label)
	case got.Verdict != Implied && got.Derivation != nil:
		t.Errorf("%s: derivation set on a %v verdict", label, got.Verdict)
	case got.Derivation != nil:
		checkDerivation(t, label, db, sigma, goal, got.Derivation)
	}
}

// checkDerivation asserts the structural acceptance criteria on a
// derivation — leaves are seed tuples, internal nodes are firings of
// sigma, inputs precede their nodes — and then replays it with Verify.
func checkDerivation(t *testing.T, label string, db *schema.Database, sigma []deps.Dependency, goal deps.Dependency, d *Derivation) {
	t.Helper()
	if d.Goal != goal.String() {
		t.Errorf("%s: derivation goal %q, want %q", label, d.Goal, goal.String())
	}
	if len(d.Nodes) == 0 {
		t.Fatalf("%s: empty derivation", label)
	}
	inSigma := make(map[string]bool, len(sigma))
	for _, dep := range sigma {
		inSigma[dep.String()] = true
	}
	seeds := 0
	for i, n := range d.Nodes {
		if n.ID != i {
			t.Fatalf("%s: node %d has ID %d", label, i, n.ID)
		}
		for _, in := range n.Inputs {
			if in >= i {
				t.Fatalf("%s: node n%d depends on later node n%d", label, i, in)
			}
		}
		switch n.Kind {
		case "seed":
			seeds++
			if len(n.Inputs) != 0 || n.Rule != "" {
				t.Errorf("%s: seed n%d has inputs %v rule %q", label, i, n.Inputs, n.Rule)
			}
		case "ind", "fd", "rd":
			if len(n.Inputs) == 0 {
				t.Errorf("%s: %s node n%d has no inputs", label, n.Kind, i)
			}
			if !inSigma[n.Rule] {
				t.Errorf("%s: node n%d fires %q, which is not in sigma", label, i, n.Rule)
			}
		default:
			t.Fatalf("%s: node n%d has kind %q", label, i, n.Kind)
		}
	}
	if seeds == 0 {
		t.Errorf("%s: derivation has no seed leaves", label)
	}
	if err := d.Verify(db, sigma); err != nil {
		t.Errorf("%s: derivation does not replay: %v\n%s", label, err, d.String())
	}
	if s := d.String(); !strings.Contains(s, "derivation of "+goal.String()) {
		t.Errorf("%s: String() missing goal header:\n%s", label, s)
	}
	if dot := d.DOT(); !strings.HasPrefix(dot, "digraph derivation {") || !strings.HasSuffix(dot, "}\n") {
		t.Errorf("%s: DOT() malformed:\n%s", label, dot)
	}
}

func TestProvenanceFixtures(t *testing.T) {
	db41 := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma41 := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	diffProvenance(t, "prop4.1 fd", db41, sigma41,
		deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y")), Options{})
	diffProvenance(t, "prop4.1 rd", db41, sigma41,
		deps.NewRD("R", deps.Attrs("X"), deps.Attrs("Y")), Options{})
	diffProvenance(t, "prop4.1 not-implied", db41, sigma41,
		deps.NewFD("S", deps.Attrs("U"), deps.Attrs("T")), Options{})

	dbChain := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
		schema.MustScheme("T", "E", "F"),
	)
	sigmaChain := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("C")),
		deps.NewIND("S", deps.Attrs("C"), "T", deps.Attrs("E")),
	}
	diffProvenance(t, "ind chain", dbChain, sigmaChain,
		deps.NewIND("R", deps.Attrs("A"), "T", deps.Attrs("E")), Options{})
	diffProvenance(t, "ind chain not-implied", dbChain, sigmaChain,
		deps.NewIND("T", deps.Attrs("E"), "R", deps.Attrs("A")), Options{})

	dbDiv, sigmaDiv, goalDiv := divergentInstance()
	diffProvenance(t, "divergent", dbDiv, sigmaDiv, goalDiv, Options{MaxTuples: 64})
	diffProvenance(t, "divergent tiny", dbDiv, sigmaDiv, goalDiv, Options{MaxTuples: 3})
}

// TestProvenanceRandom replays TestDifferentialRandom's generator with
// provenance as the axis of comparison: ≥100 random instances must be
// observably identical with capture on and off, and every Implied
// verdict's derivation must pass Verify.
func TestProvenanceRandom(t *testing.T) {
	attrPool := []string{"A", "B", "C", "D"}
	r := rand.New(rand.NewPCG(271, 828))
	compared, implied, skipped := 0, 0, 0
	for trial := 0; trial < 400; trial++ {
		nRels := 2 + r.IntN(3)
		schemes := make([]*schema.Scheme, nRels)
		names := make([]string, nRels)
		widths := make([]int, nRels)
		for i := range schemes {
			names[i] = fmt.Sprintf("R%d", i)
			w := 2 + r.IntN(3)
			widths[i] = w
			attrs := make([]schema.Attribute, w)
			for j := 0; j < w; j++ {
				attrs[j] = schema.Attribute(attrPool[j])
			}
			schemes[i] = schema.MustScheme(names[i], attrs...)
		}
		db := schema.MustDatabase(schemes...)

		pick := func(i, n int) []schema.Attribute {
			perm := r.Perm(widths[i])[:n]
			out := make([]schema.Attribute, n)
			for k, p := range perm {
				out[k] = schema.Attribute(attrPool[p])
			}
			return out
		}
		randFD := func() deps.Dependency {
			i := r.IntN(nRels)
			return deps.NewFD(names[i], pick(i, 1+r.IntN(widths[i]-1)), pick(i, 1))
		}
		randRD := func() deps.Dependency {
			i := r.IntN(nRels)
			return deps.NewRD(names[i], pick(i, 1), pick(i, 1))
		}
		randIND := func() deps.Dependency {
			i, j := r.IntN(nRels), r.IntN(nRels)
			w := 1 + r.IntN(min(widths[i], widths[j]))
			return deps.NewIND(names[i], pick(i, w), names[j], pick(j, w))
		}
		var sigma []deps.Dependency
		for k := 2 + r.IntN(4); k > 0; k-- {
			switch r.IntN(4) {
			case 0:
				sigma = append(sigma, randFD())
			case 1:
				sigma = append(sigma, randRD())
			default:
				sigma = append(sigma, randIND())
			}
		}
		var goal deps.Dependency
		switch r.IntN(3) {
		case 0:
			goal = randFD()
		case 1:
			goal = randRD()
		default:
			goal = randIND()
		}
		opt := Options{MaxTuples: 40 + r.IntN(160)}
		// Same non-termination probe as TestDifferentialRandom: skip
		// instances that diverge without exhausting the budget.
		probeCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		probeOpt := opt
		probeOpt.Ctx = probeCtx
		probeRes, probeErr := ReferenceImplies(db, sigma, goal, probeOpt)
		cancel()
		if probeErr != nil {
			skipped++
			continue
		}
		label := fmt.Sprintf("trial %d: %v |= %v", trial, sigma, goal)
		diffProvenance(t, label, db, sigma, goal, opt)
		compared++
		if probeRes.Verdict == Implied {
			implied++
		}
	}
	t.Logf("compared %d random instances (%d implied, %d diverging skipped)", compared, implied, skipped)
	if compared < 100 {
		t.Errorf("only %d random instances compared; generator or probe broken", compared)
	}
	if implied < 10 {
		t.Errorf("only %d implied instances; derivation replay barely exercised", implied)
	}
}
