package chase

import "indfd/internal/obs"

// This file is the chase's per-dependency cost profiler: opt-in
// attribution of firings, tuples produced, tuples scanned, scan wall
// time, and rounds-active to each compiled Σ member. It follows the
// provenance capture pattern exactly (provenance.go): the engine holds
// a possibly-nil *engineProfile, every capture site is a single nil
// check, and with profiling off the chase is allocation-identical to
// the unprofiled engine (TestZeroAlloc pins this). Verdicts, traces,
// counters and derivations are the same either way — the profiler only
// observes.
//
// Attribution is exact, not sampled, because the semi-naive engine
// already iterates per compiled dependency: applyFDs scans per fdState/
// rdState, applyINDs scans per indState, so each member's scan window
// is a contiguous region of the pass and one timer per region suffices.

// depAgg accumulates one Σ member's work. lastRound deduplicates the
// rounds-active count: a member firing many times within one round is
// active once.
type depAgg struct {
	firings   int64
	produced  int64
	scanned   int64
	scanNS    int64
	rounds    int64
	lastRound int64
}

// fire records one state-changing application (an FD/RD union, an IND
// tuple insert) in the given chase round.
func (a *depAgg) fire(round int64) {
	a.firings++
	if a.lastRound != round {
		a.lastRound = round
		a.rounds++
	}
}

// engineProfile holds the per-member aggregates, parallel to the
// engine's compiled e.fds / e.rds / e.inds slices. timed distinguishes
// the full profiler (Options.Profile: scan timers run, buildProfile
// renders) from footprint-only capture (Options.Footprint alone: the
// same firings/scanned counters feed buildUsed, but no time.Now calls
// are made — the clock is the profiler's only real per-scan cost).
type engineProfile struct {
	fd    []depAgg
	rd    []depAgg
	ind   []depAgg
	timed bool
}

// profTimed reports whether scan timers should run: profiling is on and
// in full (timed) mode. Footprint-only capture keeps e.prof non-nil but
// untimed, so timer sites guard on this instead of e.prof != nil.
func (e *engine) profTimed() bool {
	return e.prof != nil && e.prof.timed
}

func newEngineProfile(nfd, nrd, nind int) *engineProfile {
	return &engineProfile{
		fd:  make([]depAgg, nfd),
		rd:  make([]depAgg, nrd),
		ind: make([]depAgg, nind),
	}
}

// buildProfile renders the aggregates as the exported profile, one
// entry per compiled Σ member (cold members included), hottest first.
// Returns nil when profiling was off (footprint-only capture does not
// produce a profile: its scanNS would be zero and misleading).
func (e *engine) buildProfile() *obs.DepProfile {
	if e.prof == nil || !e.prof.timed {
		return nil
	}
	p := &obs.DepProfile{Deps: make([]obs.DepCost, 0, len(e.fds)+len(e.rds)+len(e.inds))}
	add := func(dep, kind string, a *depAgg) {
		p.Deps = append(p.Deps, obs.DepCost{
			Dep: dep, Kind: kind,
			Firings: a.firings, Produced: a.produced,
			Scanned: a.scanned, ScanNS: a.scanNS, Rounds: a.rounds,
		})
	}
	for i := range e.fds {
		add(e.fds[i].d.String(), "fd", &e.prof.fd[i])
	}
	for i := range e.rds {
		add(e.rds[i].d.String(), "rd", &e.prof.rd[i])
	}
	for i := range e.inds {
		add(e.inds[i].d.String(), "ind", &e.prof.ind[i])
	}
	p.Sort()
	return p
}

// buildUsed renders the run's footprint: the Σ members that did any
// work — fired at least once or scanned at least one tuple — in their
// String() form, in compile order (fds, rds, inds). Nil when neither
// Footprint nor Profile was requested. A member that merely exists in
// Σ but never participated is excluded; that exclusion is what lets
// the answer cache invalidate per-member instead of per-Σ.
func (e *engine) buildUsed() []string {
	if e.prof == nil {
		return nil
	}
	used := make([]string, 0, len(e.fds)+len(e.rds)+len(e.inds))
	for i := range e.fds {
		if a := &e.prof.fd[i]; a.firings > 0 || a.scanned > 0 {
			used = append(used, e.fds[i].d.String())
		}
	}
	for i := range e.rds {
		if a := &e.prof.rd[i]; a.firings > 0 || a.scanned > 0 {
			used = append(used, e.rds[i].d.String())
		}
	}
	for i := range e.inds {
		if a := &e.prof.ind[i]; a.firings > 0 || a.scanned > 0 {
			used = append(used, e.inds[i].d.String())
		}
	}
	return used
}
