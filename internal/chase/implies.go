package chase

import (
	"fmt"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/intern"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// spanRoundCap bounds the number of per-round child spans recorded on a
// chase span; a diverging chase can run thousands of rounds and the span
// tree must stay small. Rounds past the cap are summarized by the
// "rounds" attribute on the parent span.
const spanRoundCap = 32

// startSpan opens the chase's span for one entry point: a child of
// opt.Span when a parent was provided, else a root span on opt.Obs (nil
// when instrumentation is off). Callers attach the goal themselves,
// guarded by a nil check, so the uninstrumented path never boxes the
// goal into an interface or renders it.
func (opt Options) startSpan(name string) *obs.Span {
	if opt.Span != nil {
		return opt.Span.StartSpan(name)
	}
	return opt.Obs.StartSpan(name)
}

// Result reports the outcome of a budgeted implication test.
type Result struct {
	Verdict Verdict
	// Counterexample is a finite database satisfying sigma and violating
	// the goal; it is set exactly when Verdict == NotImplied.
	Counterexample *data.Database
	// Rounds is the number of chase rounds executed.
	Rounds int
	// Tuples is the number of tableau tuples at the end.
	Tuples int
	// Trace lists the rule applications performed, when Options.Trace was
	// set.
	Trace []string
	// Derivation is the minimal proof DAG extracted from provenance; it
	// is set exactly when Options.Provenance was set and Verdict ==
	// Implied (Complete runs goal-less and never sets it).
	Derivation *Derivation
	// Profile is the per-dependency cost attribution, set exactly when
	// Options.Profile was set (including on cancellation, so partial
	// work is still attributable). Entries are hottest-first.
	Profile *obs.DepProfile
	// Used is the run's footprint: the Σ members that fired at least
	// once or scanned at least one tuple, in their String() form, in
	// compile order. Set when Options.Footprint or Options.Profile was
	// set. Members the run never touched are absent — the answer cache
	// uses that to invalidate per-member instead of per-Σ.
	Used []string
}

// goalDerived reports whether the entry point's goal now holds — the
// per-round check runToGoal runs after every FD pass. It reads the
// engine's goal fields directly (no closure) so a pooled warm run
// allocates nothing.
func (e *engine) goalDerived() bool {
	switch e.goalKind {
	case goalFD:
		for _, y := range e.goalYs {
			if !e.equal(e.goalT1[y], e.goalT2[y]) {
				return false
			}
		}
		return true
	case goalIND:
		return e.gpi.witnessed(e, e.goalT1, e.goalXs)
	case goalRD:
		for i := range e.goalXs {
			if !e.equal(e.goalT1[e.goalXs[i]], e.goalT1[e.goalYs[i]]) {
				return false
			}
		}
		return true
	}
	return false
}

// runToGoal chases until the goal holds, a fixpoint is reached, or the
// budget runs out, checking the goal after every FD pass. The span (nil
// when instrumentation is off) gets one child per round up to
// spanRoundCap, and verdict/rounds/tuples attributes at the end.
func (e *engine) runToGoal(sp *obs.Span) (Result, error) {
	res := Result{}
	for {
		// The cancellation probe runs once per round, so a cancelled
		// context stops even a divergent chase within one round — with the
		// partial rounds/tuples counts preserved in the Result.
		if err := e.cancelled(); err != nil {
			res.Tuples = e.tuples
			res.Trace = e.trace
			res.Profile = e.buildProfile()
			res.Used = e.buildUsed()
			if sp != nil {
				sp.SetAttr("cancelled", err.Error())
				sp.SetInt("rounds", int64(res.Rounds))
				sp.SetInt("tuples", int64(res.Tuples))
				sp.End()
			}
			return res, err
		}
		res.Rounds++
		e.cRounds.Inc()
		e.round++
		var round *obs.Span
		if res.Rounds <= spanRoundCap {
			round = sp.StartSpan("round")
		}
		if _, err := e.applyFDs(); err != nil {
			sp.End()
			return res, err
		}
		e.dedup()
		if e.goalDerived() {
			round.SetInt("tuples", int64(e.tuples))
			round.End()
			return e.finish(res, Implied, sp)
		}
		indChanged, err := e.applyINDs()
		round.SetInt("tuples", int64(e.tuples))
		round.End()
		e.endRound()
		if err == errBudget {
			return e.finish(res, Unknown, sp)
		}
		if err != nil {
			sp.End()
			return res, err
		}
		if !indChanged {
			// One more FD pass cannot change anything either (applyFDs ran
			// to its own fixpoint above), so this is a model of sigma.
			res.Counterexample = e.export()
			return e.finish(res, NotImplied, sp)
		}
	}
}

// finish seals the result with the verdict and final tableau size, and
// closes the span with verdict/rounds/tuples attributes.
func (e *engine) finish(res Result, v Verdict, sp *obs.Span) (Result, error) {
	e.endRound()
	res.Verdict = v
	res.Tuples = e.tuples
	res.Trace = e.trace
	res.Profile = e.buildProfile()
	res.Used = e.buildUsed()
	if v == Implied && e.prov != nil && e.goalProv != nil {
		d, err := e.extractDerivation()
		if err != nil {
			sp.End()
			return res, err
		}
		res.Derivation = d
	}
	if sp != nil {
		sp.SetAttr("verdict", v.String())
		sp.SetInt("rounds", int64(res.Rounds))
		sp.SetInt("tuples", int64(res.Tuples))
		sp.End()
	}
	return res, nil
}

// resizeI32 returns s with length n, reusing its backing array when the
// capacity allows (pooled scratch never shrinks).
func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// positionsInto is positionsOf into a reused buffer.
func positionsInto(dst []int, s *schema.Scheme, attrs []schema.Attribute) ([]int, error) {
	dst = dst[:0]
	for _, a := range attrs {
		p, ok := s.Pos(a)
		if !ok {
			return dst, fmt.Errorf("chase: attribute %s not in scheme %s", a, s.Name())
		}
		dst = append(dst, p)
	}
	return dst, nil
}

// ImpliesFD tests sigma ⊨ goal for an FD goal R: X -> Y by chasing the
// two-tuple tableau that agrees exactly on X.
func ImpliesFD(db *schema.Database, sigma []deps.Dependency, goal deps.FD, opt Options) (Result, error) {
	if err := goal.Validate(db); err != nil {
		return Result{}, err
	}
	e, err := acquireEngine(db, sigma, opt)
	if err != nil {
		return Result{}, err
	}
	res, err := e.impliesFD(goal, opt)
	e.release(err)
	return res, err
}

func (e *engine) impliesFD(goal deps.FD, opt Options) (Result, error) {
	sp := opt.startSpan("chase.fd")
	if sp != nil {
		sp.SetAttr("goal", goal.String())
	}
	sch, _ := e.db.Scheme(goal.Rel)
	e.goalT1 = resizeI32(e.goalT1, sch.Width())
	e.goalT2 = resizeI32(e.goalT2, sch.Width())
	t1, t2 := e.goalT1, e.goalT2
	for i := range t1 {
		t1[i] = e.newNull()
		t2[i] = e.newNull()
	}
	var err error
	e.goalXs, err = positionsInto(e.goalXs, sch, goal.X)
	if err != nil {
		sp.End()
		return Result{}, err
	}
	for _, p := range e.goalXs {
		t2[p] = t1[p]
	}
	ri := e.relIdx[goal.Rel]
	if _, err := e.insert(ri, t1); err != nil {
		sp.End()
		return Result{}, err
	}
	if _, err := e.insert(ri, t2); err != nil {
		sp.End()
		return Result{}, err
	}
	e.goalYs, err = positionsInto(e.goalYs, sch, goal.Y)
	if err != nil {
		sp.End()
		return Result{}, err
	}
	e.goalKind = goalFD
	if e.prov != nil {
		// The goal holds when the two seed tuples (IDs 0 and 1) agree on
		// Y; t1/t2 hold the arena's structural value IDs.
		ys := e.goalYs
		e.goalDesc = goal.String()
		e.goalProv = func() ([][2]int32, []int32, error) {
			pairs := make([][2]int32, len(ys))
			for i, y := range ys {
				pairs[i] = [2]int32{t1[y], t2[y]}
			}
			return pairs, []int32{0, 1}, nil
		}
	}
	return e.runToGoal(sp)
}

// ImpliesIND tests sigma ⊨ goal for an IND goal R[X] ⊆ S[Y] by chasing the
// one-tuple tableau over R. The goal test is a probe of a witness index
// registered on S before the seed is inserted.
func ImpliesIND(db *schema.Database, sigma []deps.Dependency, goal deps.IND, opt Options) (Result, error) {
	if err := goal.Validate(db); err != nil {
		return Result{}, err
	}
	e, err := acquireEngine(db, sigma, opt)
	if err != nil {
		return Result{}, err
	}
	res, err := e.impliesIND(goal, opt)
	e.release(err)
	return res, err
}

func (e *engine) impliesIND(goal deps.IND, opt Options) (Result, error) {
	sp := opt.startSpan("chase.ind")
	if sp != nil {
		sp.SetAttr("goal", goal.String())
	}
	ls, _ := e.db.Scheme(goal.LRel)
	rs, _ := e.db.Scheme(goal.RRel)
	var err error
	e.goalXs, err = positionsInto(e.goalXs, ls, goal.X)
	if err != nil {
		sp.End()
		return Result{}, err
	}
	e.goalYs, err = positionsInto(e.goalYs, rs, goal.Y)
	if err != nil {
		sp.End()
		return Result{}, err
	}
	xs, ys := e.goalXs, e.goalYs
	// The goal's own witness index, registered before any tuple exists so
	// it sees every insert (including the seed itself when LRel == RRel).
	// The index object is part of the engine's pooled scratch; reset
	// unregisters it (see engine.reset), so re-registration here reuses
	// both the object and the popped watcher slot.
	rri := e.relIdx[goal.RRel]
	if e.gpi == nil {
		e.gpi = &projIndex{keys: intern.New(16)}
	} else {
		e.gpi.reset()
	}
	e.gpi.pos = ys
	e.rels[rri].watchers = append(e.rels[rri].watchers, e.gpi)
	e.gpiRel = rri
	e.goalT1 = resizeI32(e.goalT1, ls.Width())
	t := e.goalT1
	for i := range t {
		t[i] = e.newNull()
	}
	if _, err := e.insert(e.relIdx[goal.LRel], t); err != nil {
		sp.End()
		return Result{}, err
	}
	e.goalKind = goalIND
	if e.prov != nil {
		// The goal holds when some tuple of RRel canonically matches the
		// seed's X projection; identify a concrete witness at extraction
		// time (the index answers "exists", not "which").
		e.goalDesc = goal.String()
		e.goalProv = func() ([][2]int32, []int32, error) {
			rs := &e.rels[rri]
			for _, uid := range rs.order {
				u := e.tupleVals(uid)
				match := true
				for j := range ys {
					if !e.equal(t[xs[j]], u[ys[j]]) {
						match = false
						break
					}
				}
				if match {
					pairs := make([][2]int32, len(ys))
					for j := range ys {
						pairs[j] = [2]int32{t[xs[j]], u[ys[j]]}
					}
					return pairs, []int32{0, uid}, nil
				}
			}
			return nil, nil, fmt.Errorf("chase: provenance found no witness tuple for %v", goal)
		}
	}
	return e.runToGoal(sp)
}

// ImpliesRD tests sigma ⊨ goal for an RD goal R[X = Y] by chasing the
// one-tuple tableau over R (Proposition 4.3 is an instance).
func ImpliesRD(db *schema.Database, sigma []deps.Dependency, goal deps.RD, opt Options) (Result, error) {
	if err := goal.Validate(db); err != nil {
		return Result{}, err
	}
	e, err := acquireEngine(db, sigma, opt)
	if err != nil {
		return Result{}, err
	}
	res, err := e.impliesRD(goal, opt)
	e.release(err)
	return res, err
}

func (e *engine) impliesRD(goal deps.RD, opt Options) (Result, error) {
	sp := opt.startSpan("chase.rd")
	if sp != nil {
		sp.SetAttr("goal", goal.String())
	}
	sch, _ := e.db.Scheme(goal.Rel)
	e.goalT1 = resizeI32(e.goalT1, sch.Width())
	t := e.goalT1
	for i := range t {
		t[i] = e.newNull()
	}
	if _, err := e.insert(e.relIdx[goal.Rel], t); err != nil {
		sp.End()
		return Result{}, err
	}
	var err error
	e.goalXs, err = positionsInto(e.goalXs, sch, goal.X)
	if err != nil {
		sp.End()
		return Result{}, err
	}
	e.goalYs, err = positionsInto(e.goalYs, sch, goal.Y)
	if err != nil {
		sp.End()
		return Result{}, err
	}
	e.goalKind = goalRD
	if e.prov != nil {
		xs, ys := e.goalXs, e.goalYs
		e.goalDesc = goal.String()
		e.goalProv = func() ([][2]int32, []int32, error) {
			pairs := make([][2]int32, len(xs))
			for i := range xs {
				pairs[i] = [2]int32{t[xs[i]], t[ys[i]]}
			}
			return pairs, []int32{0}, nil
		}
	}
	return e.runToGoal(sp)
}

// Implies dispatches on the kind of the goal dependency.
func Implies(db *schema.Database, sigma []deps.Dependency, goal deps.Dependency, opt Options) (Result, error) {
	switch g := goal.(type) {
	case deps.FD:
		return ImpliesFD(db, sigma, g, opt)
	case deps.IND:
		return ImpliesIND(db, sigma, g, opt)
	case deps.RD:
		return ImpliesRD(db, sigma, g, opt)
	default:
		return Result{}, fmt.Errorf("chase: cannot test implication of a %v goal", goal.Kind())
	}
}

// Complete chases a concrete seed database to a fixpoint under sigma and
// returns the completed database: the least (up to null naming) extension
// of the seed satisfying sigma's INDs in which sigma's FDs have been used
// to equate values. Values of the seed act as distinct constants; if
// sigma's FDs force two distinct seed values to be equal, Complete returns
// an error (the seed contradicts sigma). It also errors if the chase does
// not terminate within the budget.
//
// Section 7's counterexample databases (Figs 7.1, 7.4, 7.5) are built this
// way: a small seed in relation F, completed under (a subset of) Σ.
func Complete(seed *data.Database, sigma []deps.Dependency, opt Options) (*data.Database, error) {
	e, err := acquireEngine(seed.Scheme(), sigma, opt)
	if err != nil {
		return nil, err
	}
	out, err := e.complete(seed, opt)
	e.release(err)
	return out, err
}

func (e *engine) complete(seed *data.Database, opt Options) (*data.Database, error) {
	sp := opt.startSpan("chase.complete")
	defer sp.End()
	for _, rel := range seed.Scheme().Names() {
		r, _ := seed.Relation(rel)
		ri := e.relIdx[rel]
		for _, t := range r.Tuples() {
			row := make([]int32, len(t))
			for i, v := range t {
				row[i] = e.newConst(string(v))
			}
			if _, err := e.insert(ri, row); err != nil {
				return nil, err
			}
		}
	}
	done, err := e.run()
	sp.SetInt("tuples", int64(e.tuples))
	if err != nil {
		return nil, err
	}
	if !done {
		return nil, fmt.Errorf("chase: Complete did not reach a fixpoint within %d tuples", e.max)
	}
	return e.export(), nil
}
