package ind

import (
	"fmt"
	"strings"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

// Rule identifies the inference rule justifying a proof line.
type Rule int

const (
	// Hypothesis marks a line that is a member of Σ.
	Hypothesis Rule = iota
	// IND1 is reflexivity: R[X] ⊆ R[X].
	IND1
	// IND2 is projection and permutation.
	IND2
	// IND3 is transitivity.
	IND3
)

// String names the rule.
func (r Rule) String() string {
	switch r {
	case Hypothesis:
		return "hypothesis"
	case IND1:
		return "IND1 (reflexivity)"
	case IND2:
		return "IND2 (projection and permutation)"
	case IND3:
		return "IND3 (transitivity)"
	default:
		return fmt.Sprintf("Rule(%d)", int(r))
	}
}

// Line is one step of a formal proof in the axiom system of Section 3.
type Line struct {
	IND  deps.IND
	Rule Rule
	// Premises holds the indices (into the proof) of the lines this line
	// is inferred from: none for Hypothesis and IND1, one for IND2, two
	// for IND3.
	Premises []int
}

// Proof is a derivation Σ ⊢ σ: a finite sequence of INDs, each a member of
// Σ or inferred from earlier lines by IND1–IND3, ending in σ.
type Proof struct {
	Lines []Line
}

// Goal returns the final IND of the proof.
func (p Proof) Goal() deps.IND {
	if len(p.Lines) == 0 {
		return deps.IND{}
	}
	return p.Lines[len(p.Lines)-1].IND
}

// FromChain converts a Corollary 3.2 chain into a formal proof: each step
// becomes a Hypothesis line followed by an IND2 projection, and the steps
// are folded together with IND3. A length-1 chain (a trivial goal) becomes
// a single IND1 line.
func FromChain(chain []Expression, via []deps.IND) (Proof, error) {
	if len(chain) == 0 {
		return Proof{}, fmt.Errorf("ind: empty chain")
	}
	var p Proof
	if len(chain) == 1 {
		p.Lines = append(p.Lines, Line{
			IND:  deps.NewIND(chain[0].Rel, chain[0].Attrs, chain[0].Rel, chain[0].Attrs),
			Rule: IND1,
		})
		return p, nil
	}
	acc := -1 // index of the line holding chain[0] ⊆ chain[i]
	for i := 0; i+1 < len(chain); i++ {
		hyp := len(p.Lines)
		p.Lines = append(p.Lines, Line{IND: via[i], Rule: Hypothesis})
		step := len(p.Lines)
		stepIND := deps.NewIND(chain[i].Rel, chain[i].Attrs, chain[i+1].Rel, chain[i+1].Attrs)
		p.Lines = append(p.Lines, Line{IND: stepIND, Rule: IND2, Premises: []int{hyp}})
		if acc == -1 {
			acc = step
			continue
		}
		combined := deps.NewIND(chain[0].Rel, chain[0].Attrs, chain[i+1].Rel, chain[i+1].Attrs)
		p.Lines = append(p.Lines, Line{IND: combined, Rule: IND3, Premises: []int{acc, step}})
		acc = len(p.Lines) - 1
	}
	return p, nil
}

// Prove returns a formal IND1–IND3 proof of goal from sigma, or ok=false
// when sigma does not imply goal.
func Prove(db *schema.Database, sigma []deps.IND, goal deps.IND) (Proof, bool, error) {
	res, err := Decide(db, sigma, goal)
	if err != nil || !res.Implied {
		return Proof{}, false, err
	}
	p, err := FromChain(res.Chain, res.Via)
	if err != nil {
		return Proof{}, false, err
	}
	return p, true, nil
}

// Verify checks every line of the proof against sigma and the inference
// rules, and that the proof ends in goal.
func (p Proof) Verify(sigma []deps.IND, goal deps.IND) error {
	if len(p.Lines) == 0 {
		return fmt.Errorf("ind: empty proof")
	}
	inSigma := make(map[string]bool, len(sigma))
	for _, d := range sigma {
		inSigma[d.Key()] = true
	}
	for i, ln := range p.Lines {
		for _, pr := range ln.Premises {
			if pr < 0 || pr >= i {
				return fmt.Errorf("ind: line %d refers to invalid premise %d", i, pr)
			}
		}
		switch ln.Rule {
		case Hypothesis:
			if !inSigma[ln.IND.Key()] {
				return fmt.Errorf("ind: line %d claims hypothesis %v, not in sigma", i, ln.IND)
			}
		case IND1:
			if !ln.IND.Trivial() {
				return fmt.Errorf("ind: line %d is not an instance of IND1: %v", i, ln.IND)
			}
			if !schema.Distinct(ln.IND.X) {
				return fmt.Errorf("ind: line %d: IND1 needs distinct attributes: %v", i, ln.IND)
			}
		case IND2:
			if len(ln.Premises) != 1 {
				return fmt.Errorf("ind: line %d: IND2 needs one premise", i)
			}
			if err := checkIND2(p.Lines[ln.Premises[0]].IND, ln.IND); err != nil {
				return fmt.Errorf("ind: line %d: %v", i, err)
			}
		case IND3:
			if len(ln.Premises) != 2 {
				return fmt.Errorf("ind: line %d: IND3 needs two premises", i)
			}
			a := p.Lines[ln.Premises[0]].IND
			b := p.Lines[ln.Premises[1]].IND
			if a.RRel != b.LRel || !schema.EqualSeq(a.Y, b.X) {
				return fmt.Errorf("ind: line %d: IND3 middles do not match: %v then %v", i, a, b)
			}
			if ln.IND.LRel != a.LRel || !schema.EqualSeq(ln.IND.X, a.X) ||
				ln.IND.RRel != b.RRel || !schema.EqualSeq(ln.IND.Y, b.Y) {
				return fmt.Errorf("ind: line %d: IND3 conclusion %v does not follow from %v, %v", i, ln.IND, a, b)
			}
		default:
			return fmt.Errorf("ind: line %d: unknown rule %v", i, ln.Rule)
		}
	}
	got := p.Goal()
	if got.Key() != goal.Key() && got.String() != goal.String() {
		// Key() normalizes by permutation, which is exactly IND2-closure
		// of the final line; require the stricter exact match here.
		if got.LRel != goal.LRel || got.RRel != goal.RRel ||
			!schema.EqualSeq(got.X, goal.X) || !schema.EqualSeq(got.Y, goal.Y) {
			return fmt.Errorf("ind: proof concludes %v, want %v", got, goal)
		}
	}
	return nil
}

// checkIND2 verifies that conclusion is obtained from premise by IND2:
// there is a sequence of distinct positions selecting conclusion's columns
// out of premise's columns, pairwise.
func checkIND2(premise, conclusion deps.IND) error {
	if premise.LRel != conclusion.LRel || premise.RRel != conclusion.RRel {
		return fmt.Errorf("IND2 cannot change relations: %v from %v", conclusion, premise)
	}
	pos := make(map[schema.Attribute]int, len(premise.X))
	for i, a := range premise.X {
		pos[a] = i
	}
	used := make(map[int]bool, len(conclusion.X))
	for u, a := range conclusion.X {
		j, ok := pos[a]
		if !ok {
			return fmt.Errorf("IND2: attribute %s not on premise left-hand side", a)
		}
		if used[j] {
			return fmt.Errorf("IND2: position of %s selected twice", a)
		}
		used[j] = true
		if premise.Y[j] != conclusion.Y[u] {
			return fmt.Errorf("IND2: column pairing broken at %s", a)
		}
	}
	return nil
}

// String renders the proof as a numbered derivation.
func (p Proof) String() string {
	var b strings.Builder
	for i, ln := range p.Lines {
		fmt.Fprintf(&b, "%3d. %v", i+1, ln.IND)
		switch ln.Rule {
		case Hypothesis:
			b.WriteString("   [hypothesis]")
		case IND1:
			b.WriteString("   [IND1]")
		case IND2:
			fmt.Fprintf(&b, "   [IND2 from %d]", ln.Premises[0]+1)
		case IND3:
			fmt.Fprintf(&b, "   [IND3 from %d, %d]", ln.Premises[0]+1, ln.Premises[1]+1)
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}
