package ind

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

// chainInstance builds a width-1 IND chain R0 ⊆ R1 ⊆ ... ⊆ R(n-1) with
// the goal R0[A] ⊆ R(n-1)[A]: the breadth-first search must expand ~n
// expressions to find it, giving the cancellation probe (which fires
// every ctxCheckMask+1 expansions) room to trigger.
func chainInstance(n int) (*schema.Database, []deps.IND, deps.IND) {
	var schemes []*schema.Scheme
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("R%d", i)
		schemes = append(schemes, schema.MustScheme(names[i], "A"))
	}
	db := schema.MustDatabase(schemes...)
	var sigma []deps.IND
	for i := 0; i+1 < n; i++ {
		sigma = append(sigma, deps.NewIND(names[i], deps.Attrs("A"), names[i+1], deps.Attrs("A")))
	}
	return db, sigma, deps.NewIND(names[0], deps.Attrs("A"), names[n-1], deps.Attrs("A"))
}

// countdownCtx is a deterministic test context: Err reports Canceled
// after the probe has been consulted `allow` times. It makes the
// cancellation point in the search exact, with no timers involved.
type countdownCtx struct {
	context.Context
	allow int
	calls int
}

func (c *countdownCtx) Err() error {
	c.calls++
	if c.calls > c.allow {
		return context.Canceled
	}
	return nil
}

// A context cancelled before the search starts returns immediately with
// (almost) no work done.
func TestDecideCtxCancelledBeforeStart(t *testing.T) {
	db, sigma, goal := chainInstance(400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := DecideCtx(ctx, db, sigma, goal)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Implied {
		t.Errorf("cancelled search must not claim implication")
	}
	if res.Stats.Expanded != 0 {
		t.Errorf("expanded %d expressions after pre-cancellation, want 0", res.Stats.Expanded)
	}
}

// Cancellation mid-search stops within one probe interval and carries
// the partial stats out.
func TestDecideCtxCancelledMidSearch(t *testing.T) {
	db, sigma, goal := chainInstance(400)
	ctx := &countdownCtx{Context: context.Background(), allow: 2}
	res, err := DecideCtx(ctx, db, sigma, goal)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Two allowed probes cover expansions [0, 2*(ctxCheckMask+1)); the
	// third probe, at most one interval later, must stop the search.
	if max := 3 * (ctxCheckMask + 1); res.Stats.Expanded >= max {
		t.Errorf("search expanded %d expressions after cancellation, want < %d", res.Stats.Expanded, max)
	}
	if res.Stats.Expanded == 0 {
		t.Errorf("mid-search cancellation should leave partial stats")
	}
}

// A nil context must not change Decide's behaviour or answers.
func TestDecideCtxNilMatchesDecide(t *testing.T) {
	db, sigma, goal := chainInstance(50)
	res, err := DecideCtx(nil, db, sigma, goal)
	if err != nil || !res.Implied {
		t.Fatalf("nil-ctx decide broken: %+v %v", res, err)
	}
	ref, err := Decide(db, sigma, goal)
	if err != nil || ref.Stats != res.Stats {
		t.Fatalf("Decide and DecideCtx(nil) disagree: %+v vs %+v (%v)", ref.Stats, res.Stats, err)
	}
}
