// Package ind implements the paper's central contribution (Section 3):
// the theory of inclusion dependencies. It provides
//
//   - the complete axiomatization IND1 (reflexivity), IND2 (projection and
//     permutation), IND3 (transitivity), with explicit proof objects and a
//     proof verifier;
//   - the decision procedure of Corollary 3.2, realized as a search over
//     "expressions" S[X]; the problem is PSPACE-complete in general
//     (Theorem 3.3) and this procedure is worst-case exponential, but it is
//     polynomial for width-bounded and typed INDs;
//   - the chase-with-zeros construction of Theorem 3.1 (Rule (*)), which
//     yields a finite database satisfying Σ that decides any given IND and
//     doubles as a counterexample generator, witnessing that finite and
//     unrestricted implication coincide for INDs.
package ind

import (
	"context"
	"fmt"
	"strings"

	"indfd/internal/deps"
	"indfd/internal/intern"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// Expression is the object the Corollary 3.2 procedure manipulates: a
// relation name together with a sequence of m distinct attributes, written
// S[X]. The procedure starts at the left-hand side of the goal IND and
// searches for its right-hand side.
type Expression struct {
	Rel   string
	Attrs []schema.Attribute
}

// String renders the expression as S[A,B].
func (e Expression) String() string {
	return e.Rel + "[" + schema.JoinAttrs(e.Attrs) + "]"
}

// key is the canonical map key of the expression.
func (e Expression) key() string {
	return e.Rel + "[" + schema.JoinAttrs(e.Attrs) + "]"
}

// Stats reports the work done by a decision-procedure run. The Section 3
// lower-bound experiment (Landau permutations) reads these counters.
type Stats struct {
	// Expanded is the number of expressions popped from the frontier.
	Expanded int
	// Generated is the number of successor expressions generated,
	// including duplicates of already-visited expressions.
	Generated int
	// Visited is the number of distinct expressions reached.
	Visited int
	// FrontierPeak is the high-water mark of the search frontier (visited
	// expressions not yet expanded) — the procedure's working-set size,
	// which Theorem 3.3's PSPACE-hardness says can grow exponentially.
	FrontierPeak int
	// ChainLength is the length w of the Corollary 3.2 sequence found
	// (0 when the goal is not implied).
	ChainLength int
}

// Record publishes the stats into reg under the "ind." namespace. A nil
// registry is free. Counters accumulate across calls; the frontier peak
// is a high-water gauge and the chain length feeds a histogram (the
// Section 3 lower bound is exactly about this distribution's tail).
func (st Stats) Record(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("ind.expanded").Add(int64(st.Expanded))
	reg.Counter("ind.generated").Add(int64(st.Generated))
	reg.Counter("ind.visited").Add(int64(st.Visited))
	reg.Gauge("ind.frontier_peak").SetMax(int64(st.FrontierPeak))
	if st.ChainLength > 0 {
		reg.Histogram("ind.chain_length").Observe(int64(st.ChainLength))
	}
}

// Result is the outcome of a Decide call.
type Result struct {
	// Implied reports whether Σ ⊨ σ (equivalently Σ ⊨fin σ and Σ ⊢ σ, by
	// Theorem 3.1).
	Implied bool
	// Chain is the Corollary 3.2 sequence S1[X1], ..., Sw[Xw] when
	// Implied; Chain[0] is σ's left-hand side and Chain[w-1] its
	// right-hand side.
	Chain []Expression
	// Via[i] is the member of Σ from which the step Chain[i] ⊆ Chain[i+1]
	// is obtained by IND2; len(Via) == len(Chain)-1.
	Via []deps.IND
	// Stats describes the search.
	Stats Stats
	// Profile is the per-dependency cost attribution over sigma, set
	// exactly when the run came through DecideProfile: one entry per
	// member (cold members included), hottest-first. Scanned counts the
	// frontier nodes the member was tried on, Firings the successor
	// expressions it generated, Produced the fresh expressions among
	// them. The search does no per-member timing, so ScanNS stays 0.
	Profile *obs.DepProfile
}

// Decide reports whether sigma logically implies the IND goal, using the
// decision procedure of Corollary 3.2 as a breadth-first search over
// expressions. By Theorem 3.1 the answer is simultaneously the answer for
// finite implication and for derivability in IND1–IND3.
//
// The db scheme is used only to validate the inputs; pass nil to skip
// validation (the paper's generated instances are valid by construction).
func Decide(db *schema.Database, sigma []deps.IND, goal deps.IND) (Result, error) {
	return DecideCtx(nil, db, sigma, goal)
}

// ctxCheckMask makes the cancellation probe run every 64 expansions:
// frequent enough to stop a PSPACE-hard search promptly, cheap enough
// to vanish against successor generation.
const ctxCheckMask = 63

// DecideCtx is Decide with cooperative cancellation: the search checks
// ctx every few expansions and, when the context is cancelled or its
// deadline passes, stops and returns the context's error together with
// the partial Stats accumulated so far. Theorem 3.3 makes this the
// engine's only defence on adversarial inputs — the LBA reduction
// instances are exactly the ones whose frontier grows exponentially. A
// nil ctx never cancels.
func DecideCtx(ctx context.Context, db *schema.Database, sigma []deps.IND, goal deps.IND) (Result, error) {
	return decide(ctx, db, sigma, goal, false)
}

// DecideProfile is DecideCtx with per-dependency cost attribution: the
// Result carries a Profile with one entry per member of sigma. The
// profiled run visits the same expressions in the same order and
// returns the same verdict, chain and stats; profiling only observes.
func DecideProfile(ctx context.Context, db *schema.Database, sigma []deps.IND, goal deps.IND) (Result, error) {
	return decide(ctx, db, sigma, goal, true)
}

// indAgg accumulates one sigma member's search work (see Result.Profile
// for the field semantics). The profiled path mirrors the chase
// engine's single-nil-check pattern: prof stays nil unless profiling
// was requested, so the plain DecideCtx path is allocation-identical.
type indAgg struct {
	scanned  int64
	firings  int64
	produced int64
}

func decide(ctx context.Context, db *schema.Database, sigma []deps.IND, goal deps.IND, profile bool) (Result, error) {
	if db != nil {
		if err := goal.Validate(db); err != nil {
			return Result{}, err
		}
		for _, d := range sigma {
			if err := d.Validate(db); err != nil {
				return Result{}, err
			}
		}
	}
	start := Expression{Rel: goal.LRel, Attrs: goal.X}
	target := Expression{Rel: goal.RRel, Attrs: goal.Y}
	startKey := start.key()
	targetKey := target.key()

	// Compile sigma once: per-IND projection maps and left-hand Bloom
	// masks, indexed by left-hand relation name, so successor generation
	// only touches applicable INDs and pays no per-apply map construction.
	byLRel := compileSigma(sigma)

	var prof []indAgg
	if profile {
		prof = make([]indAgg, len(sigma))
	}
	buildProf := func() *obs.DepProfile {
		if prof == nil {
			return nil
		}
		p := &obs.DepProfile{Deps: make([]obs.DepCost, len(sigma))}
		for i := range sigma {
			p.Deps[i] = obs.DepCost{
				Dep: sigma[i].String(), Kind: "ind",
				Firings: prof[i].firings, Produced: prof[i].produced, Scanned: prof[i].scanned,
			}
		}
		p.Sort()
		return p
	}

	// node is an arena entry; node i is the expression the interner
	// assigned ID i, so the visited set, the arena, and the BFS frontier
	// share one dense index space.
	type node struct {
		expr   Expression
		mask   uint64 // Bloom mask of expr.Attrs
		parent int32  // arena index; -1 for the root
		via    int32  // index into sigma of the IND used to reach this node
	}
	nodes := []node{{expr: start, mask: attrMask(start.Attrs), parent: -1, via: -1}}
	in := intern.New(64)
	var buf []byte
	buf = appendKey(buf, start.Rel, start.Attrs)
	in.Intern(buf) // ID 0 == arena index 0
	var st Stats
	st.Visited = 1
	st.FrontierPeak = 1

	finish := func(i int) Result {
		// Reconstruct the chain from the node trail.
		var rev []int32
		for j := int32(i); j != -1; j = nodes[j].parent {
			rev = append(rev, j)
		}
		chain := make([]Expression, len(rev))
		via := make([]deps.IND, 0, len(rev)-1)
		for k := range rev {
			n := nodes[rev[len(rev)-1-k]]
			chain[k] = n.expr
			if n.via >= 0 {
				via = append(via, sigma[n.via])
			}
		}
		st.ChainLength = len(chain)
		return Result{Implied: true, Chain: chain, Via: via, Stats: st, Profile: buildProf()}
	}

	if startKey == targetKey {
		return finish(0), nil
	}
	for head := 0; head < len(nodes); head++ {
		if ctx != nil && head&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return Result{Stats: st, Profile: buildProf()}, err
			}
		}
		// Copy what the successor loop reads out of the arena: appends
		// below may grow the backing array.
		curRel, curAttrs, curMask := nodes[head].expr.Rel, nodes[head].expr.Attrs, nodes[head].mask
		st.Expanded++
		appliers := byLRel[curRel]
		for ai := range appliers {
			a := &appliers[ai]
			if prof != nil {
				prof[a.si].scanned++
			}
			if curMask&^a.mask != 0 {
				// Some attribute of the expression hashes outside the
				// IND's left-hand side: IND2 cannot apply. The mask is a
				// necessary test only; survivors still probe the map.
				continue
			}
			key, ok := a.appendSuccKey(buf[:0], curAttrs)
			buf = key[:0]
			if !ok {
				continue
			}
			st.Generated++
			if prof != nil {
				prof[a.si].firings++
			}
			if _, fresh := in.Intern(key); !fresh {
				continue
			}
			st.Visited++
			if prof != nil {
				prof[a.si].produced++
			}
			succAttrs := a.succAttrs(curAttrs)
			nodes = append(nodes, node{
				expr:   Expression{Rel: a.d.RRel, Attrs: succAttrs},
				mask:   attrMask(succAttrs),
				parent: int32(head),
				via:    int32(a.si),
			})
			// The frontier is every visited-but-unexpanded node; head has
			// been expanded, nodes beyond it have not.
			if frontier := len(nodes) - head - 1; frontier > st.FrontierPeak {
				st.FrontierPeak = frontier
			}
			if string(key) == targetKey {
				return finish(len(nodes) - 1), nil
			}
		}
	}
	return Result{Implied: false, Stats: st, Profile: buildProf()}, nil
}

// apply computes the successor of expr under the IND d, if any: when every
// attribute of expr occurs on d's left-hand side, IND2 projects and
// permutes d to an IND expr ⊆ succ, and apply returns succ.
func apply(expr Expression, d deps.IND) (Expression, bool) {
	if expr.Rel != d.LRel {
		return Expression{}, false
	}
	pos := make(map[schema.Attribute]int, len(d.X))
	for i, a := range d.X {
		pos[a] = i
	}
	out := make([]schema.Attribute, len(expr.Attrs))
	for i, a := range expr.Attrs {
		j, ok := pos[a]
		if !ok {
			return Expression{}, false
		}
		out[i] = d.Y[j]
	}
	return Expression{Rel: d.RRel, Attrs: out}, true
}

// Implies is Decide returning only the verdict.
func Implies(db *schema.Database, sigma []deps.IND, goal deps.IND) (bool, error) {
	r, err := Decide(db, sigma, goal)
	return r.Implied, err
}

// DecideNaive runs the paper's step-(2) loop literally: it maintains the
// set Z of reached expressions and repeatedly scans every (member of Z,
// member of Σ) pair until Z stops growing or the target appears. It is the
// ablation baseline for the indexed search in Decide; both return the same
// verdict.
func DecideNaive(sigma []deps.IND, goal deps.IND) (bool, Stats) {
	start := Expression{Rel: goal.LRel, Attrs: goal.X}
	target := Expression{Rel: goal.RRel, Attrs: goal.Y}
	z := []Expression{start}
	inZ := map[string]bool{start.key(): true}
	var st Stats
	st.Visited = 1
	st.FrontierPeak = 1 // the naive loop keeps all of Z live
	if start.key() == target.key() {
		return true, st
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(z); i++ {
			st.Expanded++
			for _, d := range sigma {
				succ, ok := apply(z[i], d)
				if !ok {
					continue
				}
				st.Generated++
				k := succ.key()
				if inZ[k] {
					continue
				}
				inZ[k] = true
				st.Visited++
				z = append(z, succ)
				st.FrontierPeak = len(z)
				changed = true
				if k == target.key() {
					return true, st
				}
			}
		}
	}
	return false, st
}

// CheckChain verifies that chain, via is a valid Corollary 3.2 sequence
// for goal over sigma: the chain starts at goal's left-hand side, ends at
// its right-hand side, and each step is obtained from the corresponding
// member of sigma by IND2.
func CheckChain(sigma []deps.IND, goal deps.IND, chain []Expression, via []deps.IND) error {
	if len(chain) == 0 {
		return fmt.Errorf("ind: empty chain")
	}
	if len(via) != len(chain)-1 {
		return fmt.Errorf("ind: chain of length %d needs %d INDs, got %d", len(chain), len(chain)-1, len(via))
	}
	if chain[0].Rel != goal.LRel || !schema.EqualSeq(chain[0].Attrs, goal.X) {
		return fmt.Errorf("ind: chain starts at %v, want %s[%s]", chain[0], goal.LRel, schema.JoinAttrs(goal.X))
	}
	last := chain[len(chain)-1]
	if last.Rel != goal.RRel || !schema.EqualSeq(last.Attrs, goal.Y) {
		return fmt.Errorf("ind: chain ends at %v, want %s[%s]", last, goal.RRel, schema.JoinAttrs(goal.Y))
	}
	inSigma := make(map[string]bool, len(sigma))
	for _, d := range sigma {
		inSigma[d.Key()] = true
	}
	for i := 0; i+1 < len(chain); i++ {
		if !inSigma[via[i].Key()] {
			return fmt.Errorf("ind: step %d uses %v, which is not in sigma", i, via[i])
		}
		succ, ok := apply(chain[i], via[i])
		if !ok {
			return fmt.Errorf("ind: step %d: %v does not apply to %v", i, via[i], chain[i])
		}
		if succ.key() != chain[i+1].key() {
			return fmt.Errorf("ind: step %d yields %v, chain has %v", i, succ, chain[i+1])
		}
	}
	return nil
}

// FormatChain renders a Corollary 3.2 chain with the INDs justifying each
// step.
func FormatChain(chain []Expression, via []deps.IND) string {
	var b strings.Builder
	for i, e := range chain {
		if i > 0 {
			fmt.Fprintf(&b, "\n  ⊆ %v   (by IND2 from %v)", e, via[i-1])
		} else {
			fmt.Fprintf(&b, "%v", e)
		}
	}
	return b.String()
}

// DecideDepthBounded realizes the nondeterministic polynomial-SPACE
// algorithm from the proof of Theorem 3.3 as a deterministic
// depth-bounded depth-first search: it keeps only the current expression
// (plus the recursion stack, bounded by maxDepth) and no visited set, so
// its working memory is O(maxDepth · |expression|) — the trade of time
// for space that puts the problem in PSPACE. It reports whether the goal
// is reachable within maxDepth applications of members of sigma.
//
// With maxDepth at least the number of distinct expressions (for example
// Decide's Stats.Visited, or any sound overapproximation), the answer
// equals Decide's. Smaller depths may miss long chains.
func DecideDepthBounded(sigma []deps.IND, goal deps.IND, maxDepth int) bool {
	start := Expression{Rel: goal.LRel, Attrs: goal.X}
	target := Expression{Rel: goal.RRel, Attrs: goal.Y}.key()
	byLRel := make(map[string][]deps.IND)
	for _, d := range sigma {
		byLRel[d.LRel] = append(byLRel[d.LRel], d)
	}
	var dfs func(cur Expression, depth int) bool
	dfs = func(cur Expression, depth int) bool {
		if cur.key() == target {
			return true
		}
		if depth == 0 {
			return false
		}
		for _, d := range byLRel[cur.Rel] {
			succ, ok := apply(cur, d)
			if !ok {
				continue
			}
			if dfs(succ, depth-1) {
				return true
			}
		}
		return false
	}
	return dfs(start, maxDepth)
}
