package ind

import (
	"math/rand"
	"testing"
	"testing/quick"

	"indfd/internal/deps"
	"indfd/internal/enum"
	"indfd/internal/schema"
)

func typedDB() *schema.Database {
	return schema.MustDatabase(
		schema.MustScheme("R", "A", "B", "C"),
		schema.MustScheme("S", "A", "B", "C"),
		schema.MustScheme("T", "A", "B", "C"),
	)
}

func TestDecideTyped(t *testing.T) {
	db := typedDB()
	sigma := []deps.IND{
		deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("A", "B")),
		deps.NewIND("S", deps.Attrs("A"), "T", deps.Attrs("A")),
	}
	// R[A] ⊆ T[A] via R -> S (label AB ⊇ {A}) then S -> T (label A).
	ok, err := DecideTyped(db, sigma, deps.NewIND("R", deps.Attrs("A"), "T", deps.Attrs("A")))
	if err != nil || !ok {
		t.Errorf("typed chain should be implied: %v %v", ok, err)
	}
	// R[B] ⊆ T[B]: the S -> T edge only covers A.
	ok, err = DecideTyped(db, sigma, deps.NewIND("R", deps.Attrs("B"), "T", deps.Attrs("B")))
	if err != nil || ok {
		t.Errorf("R[B] <= T[B] should not be implied: %v %v", ok, err)
	}
	// Reflexive typed goal.
	ok, _ = DecideTyped(db, nil, deps.NewIND("R", deps.Attrs("C"), "R", deps.Attrs("C")))
	if !ok {
		t.Errorf("reflexive typed goal should be implied")
	}
	// Untyped inputs are rejected.
	if _, err := DecideTyped(db, nil, deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("B"))); err == nil {
		t.Errorf("untyped goal should be rejected")
	}
	untypedSigma := []deps.IND{deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("B"))}
	if _, err := DecideTyped(db, untypedSigma, deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("A"))); err == nil {
		t.Errorf("untyped sigma should be rejected")
	}
}

// Property: on typed instances, DecideTyped agrees with the general
// procedure.
func TestDecideTypedAgreesWithDecide(t *testing.T) {
	db := typedDB()
	names := []string{"R", "S", "T"}
	attrs := deps.Attrs("A", "B", "C")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sigma []deps.IND
		for i := 0; i < 1+r.Intn(5); i++ {
			perm := r.Perm(3)
			w := 1 + r.Intn(3)
			x := make([]schema.Attribute, w)
			for j := 0; j < w; j++ {
				x[j] = attrs[perm[j]]
			}
			sigma = append(sigma, deps.NewIND(names[r.Intn(3)], x, names[r.Intn(3)], x))
		}
		goal := deps.NewIND(names[r.Intn(3)], deps.Attrs("A"), names[r.Intn(3)], deps.Attrs("A"))
		fast, err := DecideTyped(db, sigma, goal)
		if err != nil {
			return false
		}
		slow, err := Implies(db, sigma, goal)
		if err != nil {
			return false
		}
		return fast == slow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRedundantAndMinimalCover(t *testing.T) {
	db := typedDB()
	sigma := []deps.IND{
		deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("A", "B")),
		deps.NewIND("S", deps.Attrs("A"), "T", deps.Attrs("A")),
		deps.NewIND("R", deps.Attrs("A"), "T", deps.Attrs("A")), // redundant (composition)
		deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("A")), // redundant (projection)
		deps.NewIND("R", deps.Attrs("C"), "R", deps.Attrs("C")), // trivial
	}
	red, err := Redundant(db, sigma, 2)
	if err != nil || !red {
		t.Errorf("composition should be redundant: %v %v", red, err)
	}
	red, err = Redundant(db, sigma, 0)
	if err != nil || red {
		t.Errorf("the generator should not be redundant: %v %v", red, err)
	}
	if _, err := Redundant(db, sigma, 99); err == nil {
		t.Errorf("out-of-range index should error")
	}
	cover, err := MinimalCover(db, sigma)
	if err != nil {
		t.Fatalf("MinimalCover: %v", err)
	}
	if len(cover) != 2 {
		t.Fatalf("cover = %v, want the two generators", cover)
	}
	eq, err := Equivalent(db, sigma, cover)
	if err != nil || !eq {
		t.Errorf("cover not equivalent: %v %v", eq, err)
	}
	// A cover member removed breaks equivalence.
	eq, err = Equivalent(db, sigma, cover[:1])
	if err != nil || eq {
		t.Errorf("proper subset should not be equivalent: %v %v", eq, err)
	}
}

// Property: MinimalCover output is equivalent to the input and has no
// redundant member.
func TestMinimalCoverProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db, sigma, _ := randomInstance(r)
		cover, err := MinimalCover(db, sigma)
		if err != nil {
			return false
		}
		eq, err := Equivalent(db, sigma, cover)
		if err != nil || !eq {
			return false
		}
		for i := range cover {
			red, err := Redundant(db, cover, i)
			if err != nil || red {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestArmstrongDatabase(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	sigma := []deps.IND{
		deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("C", "D")),
	}
	universe := enum.INDs(db, enum.Options{MaxWidth: 2})
	arm, err := ArmstrongDatabase(db, sigma, universe)
	if err != nil {
		t.Fatalf("ArmstrongDatabase: %v", err)
	}
	for _, cand := range universe {
		implied, err := Implies(db, sigma, cand)
		if err != nil {
			t.Fatal(err)
		}
		sat, err := arm.Satisfies(cand)
		if err != nil {
			t.Fatal(err)
		}
		if sat != implied {
			t.Errorf("Armstrong database: %v satisfied=%v implied=%v", cand, sat, implied)
		}
	}
}

// Property: the Armstrong database is exact on random IND sets.
func TestArmstrongDatabaseExactness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db, sigma, _ := randomInstance(r)
		universe := enum.INDs(db, enum.Options{MaxWidth: 2})
		arm, err := ArmstrongDatabase(db, sigma, universe)
		if err != nil {
			return false
		}
		for _, cand := range universe {
			implied, err := Implies(db, sigma, cand)
			if err != nil {
				return false
			}
			sat, err := arm.Satisfies(cand)
			if err != nil || sat != implied {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
