package ind_test

import (
	"fmt"

	"indfd/internal/deps"
	"indfd/internal/ind"
	"indfd/internal/schema"
)

// Deciding an IND implication and printing the formal IND1–IND3 proof.
func ExampleProve() {
	db := schema.MustDatabase(
		schema.MustScheme("MGR", "NAME", "DEPT"),
		schema.MustScheme("EMP", "NAME", "DEPT", "SAL"),
	)
	sigma := []deps.IND{
		deps.NewIND("MGR", deps.Attrs("NAME", "DEPT"), "EMP", deps.Attrs("NAME", "DEPT")),
	}
	goal := deps.NewIND("MGR", deps.Attrs("NAME"), "EMP", deps.Attrs("NAME"))
	p, ok, err := ind.Prove(db, sigma, goal)
	if err != nil || !ok {
		panic(err)
	}
	fmt.Println(p)
	// Output:
	//   1. MGR[NAME,DEPT] <= EMP[NAME,DEPT]   [hypothesis]
	//   2. MGR[NAME] <= EMP[NAME]   [IND2 from 1]
}

// A non-implied IND yields a finite counterexample database via the
// Theorem 3.1 chase-with-zeros.
func ExampleCounterexample() {
	db := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	sigma := []deps.IND{deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("C"))}
	goal := deps.NewIND("S", deps.Attrs("C"), "R", deps.Attrs("A"))
	ce, found, err := ind.Counterexample(db, sigma, goal)
	if err != nil {
		panic(err)
	}
	fmt.Println(found)
	fmt.Println(ce)
	// Output:
	// true
	// R(A,B)
	// S(C,D)
	//   (1,0)
}
