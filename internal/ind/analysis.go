package ind

import (
	"fmt"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

// DecideTyped decides implication for typed INDs — INDs of the form
// R[X] ⊆ S[X] with identical attribute sequences on both sides — in
// polynomial time, as Section 3 observes is possible. A typed IND applies
// to an expression R[X'] exactly when X' ⊆ X (as sets), and the successor
// keeps the same attribute sequence; the search space is therefore one
// expression per relation, and the procedure is breadth-first reachability
// over relation names.
//
// Every IND in sigma and the goal must be typed.
func DecideTyped(db *schema.Database, sigma []deps.IND, goal deps.IND) (bool, error) {
	if !goal.Typed() {
		return false, fmt.Errorf("ind: goal %v is not typed", goal)
	}
	for _, d := range sigma {
		if !d.Typed() {
			return false, fmt.Errorf("ind: sigma member %v is not typed", d)
		}
	}
	if db != nil {
		if err := goal.Validate(db); err != nil {
			return false, err
		}
		for _, d := range sigma {
			if err := d.Validate(db); err != nil {
				return false, err
			}
		}
	}
	need := make(map[schema.Attribute]bool, len(goal.X))
	for _, a := range goal.X {
		need[a] = true
	}
	covers := func(label []schema.Attribute) bool {
		have := make(map[schema.Attribute]bool, len(label))
		for _, a := range label {
			have[a] = true
		}
		for a := range need {
			if !have[a] {
				return false
			}
		}
		return true
	}
	if goal.LRel == goal.RRel {
		return true, nil
	}
	visited := map[string]bool{goal.LRel: true}
	queue := []string{goal.LRel}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, d := range sigma {
			if d.LRel != cur || visited[d.RRel] || !covers(d.X) {
				continue
			}
			if d.RRel == goal.RRel {
				return true, nil
			}
			visited[d.RRel] = true
			queue = append(queue, d.RRel)
		}
	}
	return false, nil
}

// Redundant reports whether sigma[i] is implied by the remaining INDs.
func Redundant(db *schema.Database, sigma []deps.IND, i int) (bool, error) {
	if i < 0 || i >= len(sigma) {
		return false, fmt.Errorf("ind: no sigma member %d", i)
	}
	rest := make([]deps.IND, 0, len(sigma)-1)
	rest = append(rest, sigma[:i]...)
	rest = append(rest, sigma[i+1:]...)
	return Implies(db, rest, sigma[i])
}

// MinimalCover returns an equivalent subset of sigma with no redundant
// member, removing trivial INDs first and then redundant ones in input
// order. The result depends on the input order (minimal covers are not
// unique), but is always equivalent to sigma.
func MinimalCover(db *schema.Database, sigma []deps.IND) ([]deps.IND, error) {
	var cover []deps.IND
	for _, d := range sigma {
		if !d.Trivial() {
			cover = append(cover, d)
		}
	}
	for i := 0; i < len(cover); {
		red, err := Redundant(db, cover, i)
		if err != nil {
			return nil, err
		}
		if red {
			cover = append(cover[:i], cover[i+1:]...)
		} else {
			i++
		}
	}
	return cover, nil
}

// Equivalent reports whether two IND sets have the same consequences.
func Equivalent(db *schema.Database, a, b []deps.IND) (bool, error) {
	for _, d := range b {
		ok, err := Implies(db, a, d)
		if err != nil || !ok {
			return false, err
		}
	}
	for _, d := range a {
		ok, err := Implies(db, b, d)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// ArmstrongDatabase builds a finite database that satisfies exactly the
// consequences of sigma within the given candidate universe: it satisfies
// every IND of the universe implied by sigma and violates every other.
// (Such databases exist for INDs — Fagin; Fagin and Vardi, cited in the
// paper's introduction — and here they are constructed as the disjoint
// union of the Theorem 3.1 chase counterexamples for each non-implied
// candidate, with per-component value namespaces. INDs are preserved
// under disjoint union of databases with disjoint active domains, which
// makes the union satisfy sigma while each component keeps its
// violation.)
func ArmstrongDatabase(db *schema.Database, sigma []deps.IND, universe []deps.IND) (*data.Database, error) {
	out := data.NewDatabase(db)
	for i, cand := range universe {
		res, err := Decide(db, sigma, cand)
		if err != nil {
			return nil, err
		}
		if res.Implied {
			continue
		}
		comp, err := Chase(db, sigma, cand)
		if err != nil {
			return nil, err
		}
		prefix := fmt.Sprintf("c%d|", i)
		for _, rel := range db.Names() {
			r, _ := comp.Relation(rel)
			for _, t := range r.Tuples() {
				nt := make(data.Tuple, len(t))
				for j, v := range t {
					nt[j] = data.Value(prefix + string(v))
				}
				if _, err := out.Insert(rel, nt); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}
