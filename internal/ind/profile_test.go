package ind

import (
	"context"
	"testing"

	"indfd/internal/deps"
)

// TestDecideProfileDifferential pins that the profiled search is
// observationally identical to the plain one — same verdict, chain,
// and stats — and that only the profiled run carries a profile.
func TestDecideProfileDifferential(t *testing.T) {
	db := twoRelDB()
	sigma := []deps.IND{
		deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("D", "E")),
		deps.NewIND("S", deps.Attrs("D", "E"), "T", deps.Attrs("G", "H")),
		deps.NewIND("T", deps.Attrs("I"), "T", deps.Attrs("G")), // never on the chain
	}
	goal := deps.NewIND("R", deps.Attrs("A"), "T", deps.Attrs("G"))
	plain, err := DecideCtx(nil, db, sigma, goal)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := DecideProfile(nil, db, sigma, goal)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Profile != nil {
		t.Errorf("plain run carries a profile")
	}
	if prof.Profile == nil {
		t.Fatalf("profiled run carries no profile")
	}
	if plain.Implied != prof.Implied || plain.Stats != prof.Stats || len(plain.Chain) != len(prof.Chain) {
		t.Errorf("profiling changed the search: %+v vs %+v", plain, prof)
	}
}

// TestDecideProfileAttribution checks the transitivity fixture's known
// pattern: each chain IND generates exactly one fresh successor, and
// the off-chain IND is scanned but never applies.
func TestDecideProfileAttribution(t *testing.T) {
	db := twoRelDB()
	sigma := []deps.IND{
		deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("D", "E")),
		deps.NewIND("S", deps.Attrs("D", "E"), "T", deps.Attrs("G", "H")),
		deps.NewIND("T", deps.Attrs("I"), "T", deps.Attrs("G")),
	}
	res, err := DecideProfile(nil, db, sigma, deps.NewIND("R", deps.Attrs("A"), "T", deps.Attrs("G")))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Implied {
		t.Fatalf("transitive chain not implied")
	}
	p := res.Profile
	if len(p.Deps) != len(sigma) {
		t.Fatalf("profile has %d entries, want one per member (%d)", len(p.Deps), len(sigma))
	}
	byDep := map[string]DepCostView{}
	for _, d := range p.Deps {
		byDep[d.Dep] = DepCostView{Firings: d.Firings, Produced: d.Produced, Scanned: d.Scanned}
	}
	for _, chain := range sigma[:2] {
		c := byDep[chain.String()]
		if c.Firings != 1 || c.Produced != 1 {
			t.Errorf("%v: firings/produced = %d/%d, want 1/1", chain, c.Firings, c.Produced)
		}
		if c.Scanned == 0 {
			t.Errorf("%v: never considered", chain)
		}
	}
	off := byDep[sigma[2].String()]
	if off.Firings != 0 || off.Produced != 0 {
		t.Errorf("off-chain IND fired: %+v", off)
	}
	var totalFirings, totalProduced int64
	for _, d := range p.Deps {
		totalFirings += d.Firings
		totalProduced += d.Produced
	}
	if totalFirings != int64(res.Stats.Generated) {
		t.Errorf("sum of firings %d != Stats.Generated %d", totalFirings, res.Stats.Generated)
	}
	// Visited counts the start expression too, which no member produced.
	if totalProduced != int64(res.Stats.Visited-1) {
		t.Errorf("sum of produced %d != Stats.Visited-1 %d", totalProduced, res.Stats.Visited-1)
	}
}

// DepCostView keeps the attribution comparison independent of field
// order in obs.DepCost.
type DepCostView struct {
	Firings, Produced, Scanned int64
}

// TestDecideProfileOnCancellation pins that a cancelled search still
// reports the partial attribution.
func TestDecideProfileOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sigma := []deps.IND{deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("D"))}
	res, err := DecideProfile(ctx, nil, sigma, deps.NewIND("R", deps.Attrs("A"), "T", deps.Attrs("G")))
	if err == nil {
		t.Fatalf("cancelled search returned %+v without error", res)
	}
	if res.Profile == nil {
		t.Errorf("cancelled search dropped its partial profile")
	}
}
