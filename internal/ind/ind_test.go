package ind

import (
	"math/rand"
	"testing"
	"testing/quick"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

func twoRelDB() *schema.Database {
	return schema.MustDatabase(
		schema.MustScheme("R", "A", "B", "C"),
		schema.MustScheme("S", "D", "E", "F"),
		schema.MustScheme("T", "G", "H", "I"),
	)
}

func TestDecideTrivial(t *testing.T) {
	db := twoRelDB()
	goal := deps.NewIND("R", deps.Attrs("A", "B"), "R", deps.Attrs("A", "B"))
	res, err := Decide(db, nil, goal)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if !res.Implied || len(res.Chain) != 1 {
		t.Errorf("trivial IND should be implied with a 1-chain: %+v", res)
	}
	if err := CheckChain(nil, goal, res.Chain, res.Via); err != nil {
		t.Errorf("CheckChain: %v", err)
	}
}

func TestDecideHypothesisAndProjection(t *testing.T) {
	db := twoRelDB()
	sigma := []deps.IND{deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("D", "E"))}
	// Direct hypothesis.
	if ok, _ := Implies(db, sigma, sigma[0]); !ok {
		t.Errorf("hypothesis not implied")
	}
	// IND2 projection: R[A] <= S[D].
	if ok, _ := Implies(db, sigma, deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("D"))); !ok {
		t.Errorf("projection not implied")
	}
	// IND2 permutation: R[B,A] <= S[E,D].
	if ok, _ := Implies(db, sigma, deps.NewIND("R", deps.Attrs("B", "A"), "S", deps.Attrs("E", "D"))); !ok {
		t.Errorf("permutation not implied")
	}
	// Broken pairing must not be implied: R[A,B] <= S[E,D].
	if ok, _ := Implies(db, sigma, deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("E", "D"))); ok {
		t.Errorf("mispaired IND implied")
	}
	// Wrong direction.
	if ok, _ := Implies(db, sigma, deps.NewIND("S", deps.Attrs("D"), "R", deps.Attrs("A"))); ok {
		t.Errorf("converse IND implied")
	}
}

func TestDecideTransitivity(t *testing.T) {
	db := twoRelDB()
	sigma := []deps.IND{
		deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("D", "E")),
		deps.NewIND("S", deps.Attrs("D", "E", "F"), "T", deps.Attrs("G", "H", "I")),
	}
	goal := deps.NewIND("R", deps.Attrs("A", "B"), "T", deps.Attrs("G", "H"))
	res, err := Decide(db, sigma, goal)
	if err != nil || !res.Implied {
		t.Fatalf("transitive goal not implied: %+v %v", res, err)
	}
	if len(res.Chain) != 3 {
		t.Errorf("chain length = %d, want 3", len(res.Chain))
	}
	if err := CheckChain(sigma, goal, res.Chain, res.Via); err != nil {
		t.Errorf("CheckChain: %v", err)
	}
}

func TestDecidePaperExample(t *testing.T) {
	// "every manager is an employee of the department that they manage":
	// MGR[NAME,DEPT] <= EMP[NAME,DEPT] (Section 3).
	db := schema.MustDatabase(
		schema.MustScheme("MGR", "NAME", "DEPT"),
		schema.MustScheme("EMP", "NAME", "DEPT", "SAL"),
	)
	sigma := []deps.IND{deps.NewIND("MGR", deps.Attrs("NAME", "DEPT"), "EMP", deps.Attrs("NAME", "DEPT"))}
	if ok, err := Implies(db, sigma, deps.NewIND("MGR", deps.Attrs("NAME"), "EMP", deps.Attrs("NAME"))); err != nil || !ok {
		t.Errorf("every manager should be an employee: %v %v", ok, err)
	}
	if ok, _ := Implies(db, sigma, deps.NewIND("MGR", deps.Attrs("NAME"), "EMP", deps.Attrs("DEPT"))); ok {
		t.Errorf("names should not be implied to be departments")
	}
}

func TestDecideValidates(t *testing.T) {
	db := twoRelDB()
	if _, err := Decide(db, nil, deps.NewIND("R", deps.Attrs("Z"), "S", deps.Attrs("D"))); err == nil {
		t.Errorf("Decide should validate the goal")
	}
	bad := []deps.IND{deps.NewIND("Nope", deps.Attrs("A"), "S", deps.Attrs("D"))}
	if _, err := Decide(db, bad, deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("D"))); err == nil {
		t.Errorf("Decide should validate sigma")
	}
}

// cyclicSigma builds the permutation INDs sigma(gamma_i) for the swap
// permutations on attributes A1..Am of a single relation R (Section 3).
func cyclicSigma(m int) (*schema.Database, []deps.IND) {
	attrs := make([]schema.Attribute, m)
	for i := range attrs {
		attrs[i] = schema.Attribute("A" + string(rune('0'+i)))
	}
	db := schema.MustDatabase(schema.MustScheme("R", attrs...))
	var sigma []deps.IND
	for i := 1; i < m; i++ {
		// Swap positions 0 and i.
		y := append([]schema.Attribute(nil), attrs...)
		y[0], y[i] = y[i], y[0]
		sigma = append(sigma, deps.NewIND("R", attrs, "R", y))
	}
	return db, sigma
}

func TestDecidePermutationGenerators(t *testing.T) {
	// The transposition INDs generate every permutation IND (Section 3).
	db, sigma := cyclicSigma(4)
	attrs := deps.Attrs("A0", "A1", "A2", "A3")
	goal := deps.NewIND("R", attrs, "R", deps.Attrs("A3", "A2", "A1", "A0")) // full reversal
	res, err := Decide(db, sigma, goal)
	if err != nil || !res.Implied {
		t.Fatalf("reversal should be implied: %+v %v", res, err)
	}
	if err := CheckChain(sigma, goal, res.Chain, res.Via); err != nil {
		t.Errorf("CheckChain: %v", err)
	}
}

func TestProveVerify(t *testing.T) {
	db := twoRelDB()
	sigma := []deps.IND{
		deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("D", "E")),
		deps.NewIND("S", deps.Attrs("E", "D"), "T", deps.Attrs("G", "H")),
	}
	goal := deps.NewIND("R", deps.Attrs("B"), "T", deps.Attrs("G"))
	p, ok, err := Prove(db, sigma, goal)
	if err != nil || !ok {
		t.Fatalf("Prove: %v %v", ok, err)
	}
	if err := p.Verify(sigma, goal); err != nil {
		t.Fatalf("Verify: %v\n%s", err, p)
	}
	if p.String() == "" {
		t.Errorf("empty rendering")
	}
	// Tampering breaks verification.
	bad := Proof{Lines: append([]Line(nil), p.Lines...)}
	for i := range bad.Lines {
		if bad.Lines[i].Rule == Hypothesis {
			bad.Lines[i].IND = deps.NewIND("R", deps.Attrs("A"), "T", deps.Attrs("I"))
			break
		}
	}
	if err := bad.Verify(sigma, goal); err == nil {
		t.Errorf("tampered proof verified")
	}
	// A proof for a different goal must not verify against it.
	other := deps.NewIND("R", deps.Attrs("A"), "T", deps.Attrs("H"))
	if err := p.Verify(sigma, other); err == nil {
		t.Errorf("proof verified against wrong goal")
	}
}

func TestProveTrivialGoal(t *testing.T) {
	db := twoRelDB()
	goal := deps.NewIND("R", deps.Attrs("C", "A"), "R", deps.Attrs("C", "A"))
	p, ok, err := Prove(db, nil, goal)
	if err != nil || !ok {
		t.Fatalf("Prove trivial: %v %v", ok, err)
	}
	if len(p.Lines) != 1 || p.Lines[0].Rule != IND1 {
		t.Errorf("trivial proof should be a single IND1 line: %v", p)
	}
	if err := p.Verify(nil, goal); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestChaseSatisfiesSigmaAndDecides(t *testing.T) {
	db := twoRelDB()
	sigma := []deps.IND{
		deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("D", "E")),
		deps.NewIND("S", deps.Attrs("D"), "T", deps.Attrs("G")),
	}
	goal := deps.NewIND("R", deps.Attrs("A"), "T", deps.Attrs("G"))
	cd, err := Chase(db, sigma, goal)
	if err != nil {
		t.Fatalf("Chase: %v", err)
	}
	for _, d := range sigma {
		ok, err := cd.Satisfies(d)
		if err != nil || !ok {
			t.Errorf("chase database violates sigma member %v: %v %v", d, ok, err)
		}
	}
	implied, _, err := DecideByChase(db, sigma, goal)
	if err != nil || !implied {
		t.Errorf("DecideByChase = %v, %v; want implied", implied, err)
	}
	// A goal that is not implied yields a counterexample.
	badGoal := deps.NewIND("T", deps.Attrs("G"), "R", deps.Attrs("A"))
	ce, ok, err := Counterexample(db, sigma, badGoal)
	if err != nil || !ok {
		t.Fatalf("Counterexample: %v %v", ok, err)
	}
	for _, d := range sigma {
		if sat, _ := ce.Satisfies(d); !sat {
			t.Errorf("counterexample violates sigma member %v", d)
		}
	}
	if sat, _ := ce.Satisfies(badGoal); sat {
		t.Errorf("counterexample satisfies the goal")
	}
	// No counterexample exists for an implied goal.
	if _, ok, _ := Counterexample(db, sigma, goal); ok {
		t.Errorf("counterexample returned for an implied goal")
	}
}

// randomInstance builds a random database scheme, IND set and goal.
func randomInstance(r *rand.Rand) (*schema.Database, []deps.IND, deps.IND) {
	names := []string{"R", "S", "T"}
	allAttrs := [][]schema.Attribute{
		deps.Attrs("A", "B", "C"),
		deps.Attrs("D", "E", "F"),
		deps.Attrs("G", "H", "I"),
	}
	var schemes []*schema.Scheme
	for i, n := range names {
		schemes = append(schemes, schema.MustScheme(n, allAttrs[i]...))
	}
	db := schema.MustDatabase(schemes...)
	randSeq := func(rel int, width int) []schema.Attribute {
		perm := r.Perm(3)
		out := make([]schema.Attribute, width)
		for i := 0; i < width; i++ {
			out[i] = allAttrs[rel][perm[i]]
		}
		return out
	}
	var sigma []deps.IND
	n := 1 + r.Intn(5)
	for i := 0; i < n; i++ {
		li, ri := r.Intn(3), r.Intn(3)
		w := 1 + r.Intn(3)
		sigma = append(sigma, deps.NewIND(names[li], randSeq(li, w), names[ri], randSeq(ri, w)))
	}
	li, ri := r.Intn(3), r.Intn(3)
	w := 1 + r.Intn(2)
	goal := deps.NewIND(names[li], randSeq(li, w), names[ri], randSeq(ri, w))
	return db, sigma, goal
}

// Property: the syntactic decision procedure (Corollary 3.2 search), the
// naive fixpoint variant, and the semantic chase (Theorem 3.1) all agree.
func TestDecideAgreesWithNaiveAndChase(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db, sigma, goal := randomInstance(r)
		res, err := Decide(db, sigma, goal)
		if err != nil {
			return false
		}
		naive, _ := DecideNaive(sigma, goal)
		if naive != res.Implied {
			return false
		}
		chased, _, err := DecideByChase(db, sigma, goal)
		if err != nil {
			return false
		}
		return chased == res.Implied
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: whenever Decide says implied, the chain checks and the formal
// proof verifies.
func TestDecideProofsAlwaysVerify(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db, sigma, goal := randomInstance(r)
		res, err := Decide(db, sigma, goal)
		if err != nil || !res.Implied {
			return err == nil
		}
		if CheckChain(sigma, goal, res.Chain, res.Via) != nil {
			return false
		}
		p, err := FromChain(res.Chain, res.Via)
		if err != nil {
			return false
		}
		return p.Verify(sigma, goal) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the chase database always satisfies sigma (it is an Armstrong-
// style database for the IND fragment).
func TestChaseAlwaysSatisfiesSigma(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db, sigma, goal := randomInstance(r)
		cd, err := Chase(db, sigma, goal)
		if err != nil {
			return false
		}
		for _, d := range sigma {
			ok, err := cd.Satisfies(d)
			if err != nil || !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	db, sigma := cyclicSigma(3)
	goal := deps.NewIND("R", deps.Attrs("A0", "A1", "A2"), "R", deps.Attrs("A2", "A0", "A1"))
	res, err := Decide(db, sigma, goal)
	if err != nil || !res.Implied {
		t.Fatalf("Decide: %+v %v", res, err)
	}
	if res.Stats.Visited < 2 || res.Stats.Expanded < 1 || res.Stats.ChainLength != len(res.Chain) {
		t.Errorf("suspicious stats: %+v", res.Stats)
	}
}

func TestFormatChain(t *testing.T) {
	db := twoRelDB()
	sigma := []deps.IND{deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("D"))}
	res, _ := Decide(db, sigma, sigma[0])
	out := FormatChain(res.Chain, res.Via)
	if out == "" {
		t.Errorf("empty chain rendering")
	}
}

// The space-bounded search of Theorem 3.3's upper bound agrees with the
// breadth-first procedure when the depth bound covers the state space.
func TestDecideDepthBoundedAgrees(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db, sigma, goal := randomInstance(r)
		res, err := Decide(db, sigma, goal)
		if err != nil {
			return false
		}
		got := DecideDepthBounded(sigma, goal, res.Stats.Visited+1)
		return got == res.Implied
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDecideDepthBoundedTooShallow(t *testing.T) {
	// A 3-step chain is invisible at depth 2.
	db := twoRelDB()
	_ = db
	sigma := []deps.IND{
		deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("D")),
		deps.NewIND("S", deps.Attrs("D"), "T", deps.Attrs("G")),
		deps.NewIND("T", deps.Attrs("G"), "T", deps.Attrs("H")),
	}
	goal := deps.NewIND("R", deps.Attrs("A"), "T", deps.Attrs("H"))
	if DecideDepthBounded(sigma, goal, 2) {
		t.Errorf("depth 2 should not reach a 3-step target")
	}
	if !DecideDepthBounded(sigma, goal, 3) {
		t.Errorf("depth 3 should reach the target")
	}
}
