package ind

import (
	"fmt"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

// Chase builds the finite database of Theorem 3.1's proof of (2) ⇒ (3):
// starting from the single tuple p over goal.LRel with p[goal.X[i]] = i+1
// and 0 elsewhere, it applies Rule (*) — for each IND R_i[C] ⊆ R_j[D] in
// sigma and each tuple v of r_i, add to r_j the tuple t with t[D_u] =
// v[C_u] and 0 in every other column — until no new tuple can be added.
//
// The result always satisfies sigma; every tuple entry lies in
// {0, 1, ..., m} where m is the goal's width, so the database is finite.
// It satisfies the goal IND iff sigma implies the goal, so the chase is a
// second, semantic decision procedure (and, when sigma does not imply the
// goal, the returned database is a finite counterexample — this is exactly
// why finite and unrestricted implication coincide for INDs).
func Chase(db *schema.Database, sigma []deps.IND, goal deps.IND) (*data.Database, error) {
	if db == nil {
		return nil, fmt.Errorf("ind: Chase requires a database scheme")
	}
	if err := goal.Validate(db); err != nil {
		return nil, err
	}
	for _, d := range sigma {
		if err := d.Validate(db); err != nil {
			return nil, err
		}
	}
	out := data.NewDatabase(db)

	// Initial tuple p over goal.LRel.
	ls, _ := db.Scheme(goal.LRel)
	p := make(data.Tuple, ls.Width())
	for i := range p {
		p[i] = data.Int(0)
	}
	for i, a := range goal.X {
		j, _ := ls.Pos(a)
		p[j] = data.Int(i + 1)
	}
	if _, err := out.Insert(goal.LRel, p); err != nil {
		return nil, err
	}

	// Worklist of (relation, tuple) pairs to apply Rule (*) to.
	type item struct {
		rel string
		t   data.Tuple
	}
	work := []item{{goal.LRel, p}}
	byLRel := make(map[string][]deps.IND)
	for _, d := range sigma {
		byLRel[d.LRel] = append(byLRel[d.LRel], d)
	}
	for len(work) > 0 {
		it := work[0]
		work = work[1:]
		src, _ := db.Scheme(it.rel)
		for _, d := range byLRel[it.rel] {
			dst, _ := db.Scheme(d.RRel)
			t := make(data.Tuple, dst.Width())
			for i := range t {
				t[i] = data.Int(0)
			}
			for u := range d.X {
				ci, _ := src.Pos(d.X[u])
				dj, _ := dst.Pos(d.Y[u])
				t[dj] = it.t[ci]
			}
			added, err := out.Insert(d.RRel, t)
			if err != nil {
				return nil, err
			}
			if added {
				work = append(work, item{d.RRel, t})
			}
		}
	}
	return out, nil
}

// DecideByChase decides sigma ⊨ goal semantically, by running Chase and
// checking whether the goal IND holds in the resulting database. It agrees
// with Decide on every input (Theorem 3.1) and additionally returns the
// chase database, which is a counterexample when the goal is not implied.
func DecideByChase(db *schema.Database, sigma []deps.IND, goal deps.IND) (bool, *data.Database, error) {
	cd, err := Chase(db, sigma, goal)
	if err != nil {
		return false, nil, err
	}
	ok, err := cd.Satisfies(goal)
	if err != nil {
		return false, nil, err
	}
	return ok, cd, nil
}

// Counterexample returns a finite database that satisfies sigma but
// violates goal, or ok=false when sigma implies goal (so no counterexample
// exists, finite or infinite).
func Counterexample(db *schema.Database, sigma []deps.IND, goal deps.IND) (*data.Database, bool, error) {
	implied, cd, err := DecideByChase(db, sigma, goal)
	if err != nil {
		return nil, false, err
	}
	if implied {
		return nil, false, nil
	}
	return cd, true, nil
}
