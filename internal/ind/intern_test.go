package ind

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"indfd/internal/deps"
	"indfd/internal/intern"
	"indfd/internal/schema"
)

func TestInternerDenseIDs(t *testing.T) {
	in := intern.New(4)
	keys := []string{"R[A]", "S[A,B]", "R[A]", "T[C]", "S[A,B]"}
	wantID := []int32{0, 1, 0, 2, 1}
	wantFresh := []bool{true, true, false, true, false}
	for i, k := range keys {
		id, fresh := in.Intern([]byte(k))
		if id != wantID[i] || fresh != wantFresh[i] {
			t.Errorf("Intern(%q) = (%d, %v), want (%d, %v)", k, id, fresh, wantID[i], wantFresh[i])
		}
	}
	if id, ok := in.Lookup([]byte("T[C]")); !ok || id != 2 {
		t.Errorf("Lookup(T[C]) = (%d, %v), want (2, true)", id, ok)
	}
	if _, ok := in.Lookup([]byte("T[D]")); ok {
		t.Errorf("Lookup(T[D]) found a key never interned")
	}
}

func TestAppendKeyMatchesExpressionKey(t *testing.T) {
	exprs := []Expression{
		{Rel: "R", Attrs: deps.Attrs("A")},
		{Rel: "S", Attrs: deps.Attrs("A", "B", "C")},
		{Rel: "T", Attrs: nil},
	}
	for _, e := range exprs {
		got := string(appendKey(nil, e.Rel, e.Attrs))
		if got != e.key() {
			t.Errorf("appendKey = %q, want %q", got, e.key())
		}
	}
}

func TestAttrMaskIsSubsetTest(t *testing.T) {
	// mask(X) &^ mask(Y) == 0 must hold whenever X ⊆ Y (the mask is a
	// necessary condition; false positives are fine, false negatives are
	// a soundness bug in the precheck).
	x := deps.Attrs("A", "B")
	y := deps.Attrs("A", "B", "C")
	if attrMask(x)&^attrMask(y) != 0 {
		t.Fatalf("mask rejects a genuine subset")
	}
	if attrMask(y)&^attrMask(y) != 0 {
		t.Fatalf("mask rejects itself")
	}
}

// TestApplierAgreesWithApply cross-checks the compiled fast path against
// the reference apply on randomized expressions and INDs: same
// applicability verdict, same successor key, same successor attributes.
func TestApplierAgreesWithApply(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 0))
	attrs := deps.Attrs("A", "B", "C", "D", "E")
	for trial := 0; trial < 500; trial++ {
		// Random IND d: X and Y of equal width over distinct attrs.
		w := 1 + r.IntN(4)
		permX := r.Perm(len(attrs))[:w]
		permY := r.Perm(len(attrs))[:w]
		x := make([]schema.Attribute, w)
		y := make([]schema.Attribute, w)
		for i := 0; i < w; i++ {
			x[i], y[i] = attrs[permX[i]], attrs[permY[i]]
		}
		d := deps.NewIND("R", x, "S", y)
		// Random expression over R with distinct attrs.
		ew := 1 + r.IntN(4)
		permE := r.Perm(len(attrs))[:ew]
		e := Expression{Rel: "R", Attrs: make([]schema.Attribute, ew)}
		for i := 0; i < ew; i++ {
			e.Attrs[i] = attrs[permE[i]]
		}

		want, wantOK := apply(e, d)
		appliers := compileSigma([]deps.IND{d})["R"]
		a := &appliers[0]
		if attrMask(e.Attrs)&^a.mask != 0 && wantOK {
			t.Fatalf("trial %d: mask precheck rejected an applicable IND: %v to %v", trial, d, e)
		}
		key, ok := a.appendSuccKey(nil, e.Attrs)
		if ok != wantOK {
			t.Fatalf("trial %d: appendSuccKey ok=%v, apply ok=%v (%v to %v)", trial, ok, wantOK, d, e)
		}
		if !ok {
			continue
		}
		if string(key) != want.key() {
			t.Errorf("trial %d: key %q, want %q", trial, key, want.key())
		}
		succ := a.succAttrs(e.Attrs)
		if !schema.EqualSeq(succ, want.Attrs) {
			t.Errorf("trial %d: succAttrs %v, want %v", trial, succ, want.Attrs)
		}
	}
}

// TestDecideInternedStatsUnchanged pins the Stats of a known instance:
// interning must not change what the search counts, only what it
// allocates.
func TestDecideInternedStatsUnchanged(t *testing.T) {
	db, sigma, goal := chainInstance(40)
	res, err := Decide(db, sigma, goal)
	if err != nil || !res.Implied {
		t.Fatalf("Decide: %v %v", res.Implied, err)
	}
	ok, naive := DecideNaive(sigma, goal)
	if !ok {
		t.Fatalf("DecideNaive disagrees")
	}
	// Both walk the same width-1 chain: identical distinct-expression and
	// generation counts.
	if res.Stats.Visited != naive.Visited || res.Stats.Generated != naive.Generated {
		t.Errorf("interned stats drifted from the naive reference: %+v vs %+v", res.Stats, naive)
	}
	if res.Stats.ChainLength != 40 {
		t.Errorf("ChainLength = %d, want 40", res.Stats.ChainLength)
	}
}

// TestDecideInternedLargeFrontier exercises map growth and arena realloc
// with a fan-out instance: every relation includes into k others.
func TestDecideInternedLargeFrontier(t *testing.T) {
	const n, k = 30, 3
	var schemes []*schema.Scheme
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("R%d", i)
		schemes = append(schemes, schema.MustScheme(names[i], "A", "B"))
	}
	db := schema.MustDatabase(schemes...)
	var sigma []deps.IND
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			sigma = append(sigma, deps.NewIND(names[i], deps.Attrs("A", "B"),
				names[(i+j)%n], deps.Attrs("B", "A")))
		}
	}
	goal := deps.NewIND(names[0], deps.Attrs("A"), names[n-1], deps.Attrs("B"))
	res, err := Decide(db, sigma, goal)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	naiveOK, _ := DecideNaive(sigma, goal)
	if res.Implied != naiveOK {
		t.Errorf("interned verdict %v disagrees with naive %v", res.Implied, naiveOK)
	}
	if res.Implied {
		if err := CheckChain(sigma, goal, res.Chain, res.Via); err != nil {
			t.Errorf("chain does not verify: %v", err)
		}
	}
}
