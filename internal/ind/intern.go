// Interned expression keys for the Corollary 3.2 frontier.
//
// The decision procedure's inner loop generates one successor expression
// per (frontier node, applicable IND) pair, and Theorem 3.3 says the
// number of such pairs can grow exponentially. The naive implementation
// paid three to five heap allocations per generated successor (a
// projection map, an attribute slice, and the string key built from
// them) even when the successor had already been visited. This file
// removes the per-duplicate cost entirely:
//
//   - an interner (the shared internal/intern.Table) maps expression
//     keys to dense int IDs; the visited set becomes the interner's map,
//     and the goal test becomes an int compare against the target's ID;
//   - keys are assembled into one reusable []byte scratch buffer, and
//     the map probe uses the m[string(buf)] form the compiler compiles
//     to an allocation-free lookup — a duplicate successor allocates
//     nothing;
//   - each member of Σ is precompiled into an applier carrying its
//     attribute→position projection map (built once, not per apply call)
//     and a 64-bit Bloom mask of its left-hand attributes, so most
//     inapplicable INDs are rejected with one AND instead of a map probe.
//
// The interner itself started life here and was extracted into
// internal/intern when the semi-naive chase adopted the same idiom for
// tuple and projection keys.
package ind

import (
	"indfd/internal/deps"
	"indfd/internal/schema"
)

// appendKey appends the canonical key of the expression rel[attrs] —
// identical to Expression.key(), but into a caller-owned buffer.
func appendKey(buf []byte, rel string, attrs []schema.Attribute) []byte {
	buf = append(buf, rel...)
	buf = append(buf, '[')
	for i, a := range attrs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, a...)
	}
	return append(buf, ']')
}

// attrBit hashes one attribute to a bit position (FNV-1a, folded to 64
// positions). The mask of an attribute set is the OR of its bits.
func attrBit(a schema.Attribute) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= 1099511628211
	}
	return 1 << (h & 63)
}

// attrMask is the Bloom mask of an attribute sequence.
func attrMask(attrs []schema.Attribute) uint64 {
	var m uint64
	for _, a := range attrs {
		m |= attrBit(a)
	}
	return m
}

// applier is a member of Σ compiled for repeated application: the IND
// itself, its position in sigma (for proof reconstruction), the
// projection map of its left-hand side, and the Bloom mask of those
// attributes. An expression E applies under the IND iff every attribute
// of E occurs in d.X; mask(E) &^ mask is a one-instruction necessary
// test for that.
type applier struct {
	d    deps.IND
	si   int
	pos  map[schema.Attribute]int8
	mask uint64
}

// compileSigma groups Σ into appliers indexed by left-hand relation.
func compileSigma(sigma []deps.IND) map[string][]applier {
	byLRel := make(map[string][]applier)
	for i, d := range sigma {
		pos := make(map[schema.Attribute]int8, len(d.X))
		for j, a := range d.X {
			pos[a] = int8(j)
		}
		byLRel[d.LRel] = append(byLRel[d.LRel], applier{
			d: d, si: i, pos: pos, mask: attrMask(d.X),
		})
	}
	return byLRel
}

// appendSuccKey appends the key of the successor of attrs under the
// applier without materializing the successor's attribute slice — the
// duplicate-successor path needs only the key. ok is false when some
// attribute does not occur on the IND's left-hand side (the apply
// precondition of IND2).
func (a *applier) appendSuccKey(buf []byte, attrs []schema.Attribute) ([]byte, bool) {
	buf = append(buf, a.d.RRel...)
	buf = append(buf, '[')
	for i, at := range attrs {
		j, ok := a.pos[at]
		if !ok {
			return buf, false
		}
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, a.d.Y[j]...)
	}
	return append(buf, ']'), true
}

// succAttrs materializes the successor's attribute sequence; callers
// invoke it only after appendSuccKey reported ok and the key proved
// fresh, so the allocation happens once per distinct expression.
func (a *applier) succAttrs(attrs []schema.Attribute) []schema.Attribute {
	out := make([]schema.Attribute, len(attrs))
	for i, at := range attrs {
		out[i] = a.d.Y[a.pos[at]]
	}
	return out
}
