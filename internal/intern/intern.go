// Package intern provides a tiny byte-key interner: a map from
// canonical byte keys to dense int32 IDs, handed out in first-seen
// order.
//
// The pattern it packages appeared first in the Corollary 3.2 IND
// frontier (internal/ind) and now also drives the semi-naive chase
// (internal/chase): hot loops that repeatedly identify composite values
// (expression keys, tuple projections) assemble the key into one
// caller-owned scratch buffer and probe with the m[string(buf)] form the
// compiler compiles to an allocation-free lookup. Only the first sight
// of a key allocates — the one string copy the table keeps — so probing
// with already-seen keys costs no garbage at all. Dense IDs mean callers
// can keep per-key state in flat slices indexed by ID instead of maps.
//
// Tables are resettable in O(1): Reset bumps an epoch instead of
// clearing the map, so a pooled engine that replays the same keys after
// a reset re-interns them without re-copying the strings — the warm
// steady state allocates nothing at all.
package intern

// resetDropCap bounds how many distinct keys a reset keeps cached. A
// table that accumulated more than this across epochs drops its map on
// the next Reset, trading one rebuild for bounded memory in pools fed
// by adversarial key streams.
const resetDropCap = 1 << 16

// Table assigns dense IDs to byte keys. The zero value is not ready for
// use; call New.
type Table struct {
	ids   map[string]*entry
	next  int32
	epoch uint32
}

// entry is a key's ID stamped with the epoch that minted it; entries
// from earlier epochs are invisible but keep their string allocation
// warm for re-interning. Entries are pointers so a stale-epoch hit can
// be revived in place — a map *assignment* with a string(buf) key would
// re-copy the key, only lookups get the allocation-free conversion. (A
// uint32 epoch wraps after 2^32 Resets; a pooled engine resetting once
// per request would need 136 years at 1 req/s to get there.)
type entry struct {
	id    int32
	epoch uint32
}

// New returns an empty table with room hinted for capHint keys.
func New(capHint int) *Table {
	return &Table{ids: make(map[string]*entry, capHint)}
}

// Intern returns the ID of the key in buf, minting the next dense ID on
// first sight. Only a first sight of a key the table has never held
// allocates (the string copy the table keeps, plus its entry); probing
// with an existing key — including one cached from a previous epoch —
// is allocation-free.
func (t *Table) Intern(buf []byte) (id int32, fresh bool) {
	if en, ok := t.ids[string(buf)]; ok {
		if en.epoch == t.epoch {
			return en.id, false
		}
		en.id = t.next
		en.epoch = t.epoch
		t.next++
		return en.id, true
	}
	id = t.next
	t.next++
	t.ids[string(buf)] = &entry{id: id, epoch: t.epoch}
	return id, true
}

// Lookup probes without inserting; it never allocates.
func (t *Table) Lookup(buf []byte) (int32, bool) {
	en, ok := t.ids[string(buf)]
	if !ok || en.epoch != t.epoch {
		return 0, false
	}
	return en.id, true
}

// Len is the number of distinct keys interned in the current epoch; the
// next fresh key receives ID Len().
func (t *Table) Len() int { return int(t.next) }

// Reset empties the table in O(1) by starting a new epoch. The key
// strings cached by earlier epochs are kept (so re-interning them after
// the reset allocates nothing) unless the table has grown past
// resetDropCap distinct keys, in which case the map is dropped.
func (t *Table) Reset() {
	t.epoch++
	t.next = 0
	if len(t.ids) > resetDropCap {
		t.ids = make(map[string]*entry, 64)
	}
}
