// Package intern provides a tiny byte-key interner: a map from
// canonical byte keys to dense int32 IDs, handed out in first-seen
// order.
//
// The pattern it packages appeared first in the Corollary 3.2 IND
// frontier (internal/ind) and now also drives the semi-naive chase
// (internal/chase): hot loops that repeatedly identify composite values
// (expression keys, tuple projections) assemble the key into one
// caller-owned scratch buffer and probe with the m[string(buf)] form the
// compiler compiles to an allocation-free lookup. Only the first sight
// of a key allocates — the one string copy the table keeps — so probing
// with already-seen keys costs no garbage at all. Dense IDs mean callers
// can keep per-key state in flat slices indexed by ID instead of maps.
package intern

// Table assigns dense IDs to byte keys. The zero value is not ready for
// use; call New.
type Table struct {
	ids map[string]int32
}

// New returns an empty table with room hinted for capHint keys.
func New(capHint int) *Table {
	return &Table{ids: make(map[string]int32, capHint)}
}

// Intern returns the ID of the key in buf, minting the next dense ID on
// first sight. Only a first sight allocates (the string copy the table
// keeps); probing with an existing key is allocation-free.
func (t *Table) Intern(buf []byte) (id int32, fresh bool) {
	if id, ok := t.ids[string(buf)]; ok {
		return id, false
	}
	id = int32(len(t.ids))
	t.ids[string(buf)] = id
	return id, true
}

// Lookup probes without inserting; it never allocates.
func (t *Table) Lookup(buf []byte) (int32, bool) {
	id, ok := t.ids[string(buf)]
	return id, ok
}

// Len is the number of distinct keys interned so far; the next fresh
// key receives ID Len().
func (t *Table) Len() int { return len(t.ids) }
