package intern

import "testing"

func TestInternDenseIDs(t *testing.T) {
	tb := New(4)
	id0, fresh := tb.Intern([]byte("alpha"))
	if id0 != 0 || !fresh {
		t.Fatalf("first key: id=%d fresh=%v, want 0 true", id0, fresh)
	}
	id1, fresh := tb.Intern([]byte("beta"))
	if id1 != 1 || !fresh {
		t.Fatalf("second key: id=%d fresh=%v, want 1 true", id1, fresh)
	}
	again, fresh := tb.Intern([]byte("alpha"))
	if again != 0 || fresh {
		t.Fatalf("re-intern: id=%d fresh=%v, want 0 false", again, fresh)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
}

func TestLookupDoesNotInsert(t *testing.T) {
	tb := New(0)
	if _, ok := tb.Lookup([]byte("missing")); ok {
		t.Fatal("Lookup invented a key")
	}
	if tb.Len() != 0 {
		t.Fatalf("Lookup inserted: Len = %d", tb.Len())
	}
	tb.Intern([]byte("x"))
	if id, ok := tb.Lookup([]byte("x")); !ok || id != 0 {
		t.Fatalf("Lookup(x) = %d %v, want 0 true", id, ok)
	}
}

func TestInternProbeAllocFree(t *testing.T) {
	tb := New(8)
	key := []byte("already-interned-key")
	tb.Intern(key)
	allocs := testing.AllocsPerRun(200, func() {
		if _, fresh := tb.Intern(key); fresh {
			t.Fatal("key turned fresh")
		}
		if _, ok := tb.Lookup(key); !ok {
			t.Fatal("key vanished")
		}
	})
	if allocs != 0 {
		t.Errorf("probing an existing key allocates %.1f times per run, want 0", allocs)
	}
}

func TestResetStartsNewEpoch(t *testing.T) {
	tb := New(4)
	tb.Intern([]byte("alpha"))
	tb.Intern([]byte("beta"))
	tb.Reset()
	if tb.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", tb.Len())
	}
	if _, ok := tb.Lookup([]byte("alpha")); ok {
		t.Fatal("pre-reset key visible after Reset")
	}
	// Re-interning in a fresh order re-mints dense IDs from 0.
	id, fresh := tb.Intern([]byte("beta"))
	if id != 0 || !fresh {
		t.Fatalf("first post-reset key: id=%d fresh=%v, want 0 true", id, fresh)
	}
	id, fresh = tb.Intern([]byte("alpha"))
	if id != 1 || !fresh {
		t.Fatalf("second post-reset key: id=%d fresh=%v, want 1 true", id, fresh)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
}

func TestResetWarmReplayAllocFree(t *testing.T) {
	tb := New(8)
	keys := [][]byte{[]byte("k1"), []byte("k2"), []byte("k3")}
	for _, k := range keys {
		tb.Intern(k)
	}
	// A reset + replay of keys seen in any earlier epoch must not
	// allocate: the map still owns the string copies.
	allocs := testing.AllocsPerRun(200, func() {
		tb.Reset()
		for i, k := range keys {
			id, fresh := tb.Intern(k)
			if int(id) != i || !fresh {
				t.Fatalf("replay of %q: id=%d fresh=%v", k, id, fresh)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("warm replay allocates %.1f times per run, want 0", allocs)
	}
}
