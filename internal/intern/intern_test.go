package intern

import "testing"

func TestInternDenseIDs(t *testing.T) {
	tb := New(4)
	id0, fresh := tb.Intern([]byte("alpha"))
	if id0 != 0 || !fresh {
		t.Fatalf("first key: id=%d fresh=%v, want 0 true", id0, fresh)
	}
	id1, fresh := tb.Intern([]byte("beta"))
	if id1 != 1 || !fresh {
		t.Fatalf("second key: id=%d fresh=%v, want 1 true", id1, fresh)
	}
	again, fresh := tb.Intern([]byte("alpha"))
	if again != 0 || fresh {
		t.Fatalf("re-intern: id=%d fresh=%v, want 0 false", again, fresh)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
}

func TestLookupDoesNotInsert(t *testing.T) {
	tb := New(0)
	if _, ok := tb.Lookup([]byte("missing")); ok {
		t.Fatal("Lookup invented a key")
	}
	if tb.Len() != 0 {
		t.Fatalf("Lookup inserted: Len = %d", tb.Len())
	}
	tb.Intern([]byte("x"))
	if id, ok := tb.Lookup([]byte("x")); !ok || id != 0 {
		t.Fatalf("Lookup(x) = %d %v, want 0 true", id, ok)
	}
}

func TestInternProbeAllocFree(t *testing.T) {
	tb := New(8)
	key := []byte("already-interned-key")
	tb.Intern(key)
	allocs := testing.AllocsPerRun(200, func() {
		if _, fresh := tb.Intern(key); fresh {
			t.Fatal("key turned fresh")
		}
		if _, ok := tb.Lookup(key); !ok {
			t.Fatal("key vanished")
		}
	})
	if allocs != 0 {
		t.Errorf("probing an existing key allocates %.1f times per run, want 0", allocs)
	}
}
