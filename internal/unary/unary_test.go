package unary

import (
	"math/rand"
	"testing"
	"testing/quick"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

func rab() *schema.Database {
	return schema.MustDatabase(schema.MustScheme("R", "A", "B"))
}

// theorem44 is Σ = {R: A -> B, R[A] ⊆ R[B]}.
func theorem44(t *testing.T) *System {
	t.Helper()
	s, err := New(rab(), []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestTheorem44FiniteImplication(t *testing.T) {
	s := theorem44(t)
	// (a) Σ ⊨fin R[B] ⊆ R[A], but Σ ⊭ it.
	indGoal := deps.NewIND("R", deps.Attrs("B"), "R", deps.Attrs("A"))
	if ok, err := s.ImpliesFinite(indGoal); err != nil || !ok {
		t.Errorf("Theorem 4.4(a) finite: %v %v, want true", ok, err)
	}
	if ok, err := s.ImpliesUnrestricted(indGoal); err != nil || ok {
		t.Errorf("Theorem 4.4(a) unrestricted: %v %v, want false", ok, err)
	}
	// (b) Σ ⊨fin R: B -> A, but Σ ⊭ it.
	fdGoal := deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A"))
	if ok, err := s.ImpliesFinite(fdGoal); err != nil || !ok {
		t.Errorf("Theorem 4.4(b) finite: %v %v, want true", ok, err)
	}
	if ok, err := s.ImpliesUnrestricted(fdGoal); err != nil || ok {
		t.Errorf("Theorem 4.4(b) unrestricted: %v %v, want false", ok, err)
	}
	// The gap contains exactly those two consequences.
	gap := s.FiniteGap()
	if len(gap) != 2 {
		t.Errorf("FiniteGap = %v, want the two Theorem 4.4 dependencies", gap)
	}
}

func TestSection6Soundness(t *testing.T) {
	// Σ_k = {R_i: A -> B, R_i[A] ⊆ R_{i+1 mod k+1}[B]} finitely implies
	// σ = R_0[B] ⊆ R_k[A] (proof of Theorem 6.1), and indeed reverses
	// every IND and FD in the cycle.
	for k := 1; k <= 4; k++ {
		var schemes []*schema.Scheme
		names := make([]string, k+1)
		for i := 0; i <= k; i++ {
			names[i] = relName(i)
			schemes = append(schemes, schema.MustScheme(names[i], "A", "B"))
		}
		db := schema.MustDatabase(schemes...)
		var sigma []deps.Dependency
		for i := 0; i <= k; i++ {
			sigma = append(sigma,
				deps.NewFD(names[i], deps.Attrs("A"), deps.Attrs("B")),
				deps.NewIND(names[i], deps.Attrs("A"), names[(i+1)%(k+1)], deps.Attrs("B")),
			)
		}
		s, err := New(db, sigma)
		if err != nil {
			t.Fatalf("k=%d: New: %v", k, err)
		}
		goal := deps.NewIND(names[0], deps.Attrs("B"), names[k], deps.Attrs("A"))
		if ok, err := s.ImpliesFinite(goal); err != nil || !ok {
			t.Errorf("k=%d: Σ_k should finitely imply σ: %v %v", k, ok, err)
		}
		if ok, _ := s.ImpliesUnrestricted(goal); ok {
			t.Errorf("k=%d: σ should not be unrestrictedly implied", k)
		}
		// The reversed FD R_0: B -> A is also finitely implied (the remark
		// after Theorem 6.1).
		fdGoal := deps.NewFD(names[0], deps.Attrs("B"), deps.Attrs("A"))
		if ok, _ := s.ImpliesFinite(fdGoal); !ok {
			t.Errorf("k=%d: R_0: B -> A should be finitely implied", k)
		}
	}
}

func relName(i int) string { return "R" + string(rune('0'+i)) }

func TestNoInteractionWithoutCycle(t *testing.T) {
	// An FD and an IND that do not close a cardinality cycle imply nothing
	// new: {R: A -> B, R[B] ⊆ R[A]} is consistent with both |A| ≥ |B|
	// constraints, so nothing reverses.
	s, err := New(rab(), []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewIND("R", deps.Attrs("B"), "R", deps.Attrs("A")),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, goal := range []deps.Dependency{
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A")),
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")),
	} {
		if ok, _ := s.ImpliesFinite(goal); ok {
			t.Errorf("%v should not be finitely implied", goal)
		}
	}
	if len(s.FiniteGap()) != 0 {
		t.Errorf("FiniteGap should be empty: %v", s.FiniteGap())
	}
}

func TestTransitivityClosures(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "A", "B", "C"),
		schema.MustScheme("S", "D"),
	)
	s, err := New(db, []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C")),
		deps.NewIND("R", deps.Attrs("C"), "S", deps.Attrs("D")),
		deps.NewIND("S", deps.Attrs("D"), "R", deps.Attrs("A")),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// FD transitivity.
	if ok, _ := s.ImpliesUnrestricted(deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C"))); !ok {
		t.Errorf("A -> C should follow by transitivity")
	}
	// IND transitivity.
	if ok, _ := s.ImpliesUnrestricted(deps.NewIND("R", deps.Attrs("C"), "R", deps.Attrs("A"))); !ok {
		t.Errorf("R[C] ⊆ R[A] should follow by IND transitivity")
	}
	// Trivial goals.
	if ok, _ := s.ImpliesUnrestricted(deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("A"))); !ok {
		t.Errorf("reflexive IND should be implied")
	}
	if ok, _ := s.ImpliesFinite(deps.NewFD("R", deps.Attrs("A"), deps.Attrs("A"))); !ok {
		t.Errorf("reflexive FD should be implied")
	}
}

func TestValidation(t *testing.T) {
	db := rab()
	if _, err := New(db, []deps.Dependency{deps.NewFD("R", deps.Attrs("A", "B"), deps.Attrs("B"))}); err != nil {
		t.Errorf("general FDs are accepted in the KCV setting: %v", err)
	}
	if _, err := New(db, []deps.Dependency{deps.NewIND("R", deps.Attrs("A", "B"), "R", deps.Attrs("B", "A"))}); err == nil {
		t.Errorf("non-unary IND should be rejected")
	}
	if _, err := New(db, []deps.Dependency{deps.NewRD("R", deps.Attrs("A"), deps.Attrs("B"))}); err == nil {
		t.Errorf("RD should be rejected")
	}
	s, _ := New(db, nil)
	if _, err := s.ImpliesFinite(deps.NewRD("R", deps.Attrs("A"), deps.Attrs("B"))); err == nil {
		t.Errorf("RD goal should be rejected")
	}
	if _, err := s.ImpliesFinite(deps.NewFD("Nope", deps.Attrs("A"), deps.Attrs("B"))); err == nil {
		t.Errorf("invalid goal should be rejected")
	}
}

// exhaustive search over tiny databases: no finite database over R(A,B)
// with ≤ 3 tuples and domain {0,1,2} satisfies Theorem 4.4's Σ while
// violating σ. This is the semantic half of the Theorem 4.4 reproduction.
func TestTheorem44NoSmallFiniteCounterexample(t *testing.T) {
	ds := rab()
	sigma := []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")),
	}
	goals := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("B"), "R", deps.Attrs("A")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A")),
	}
	domain := []data.Value{"0", "1", "2"}
	var tuples []data.Tuple
	for _, a := range domain {
		for _, b := range domain {
			tuples = append(tuples, data.Tuple{a, b})
		}
	}
	n := len(tuples)
	for mask := 0; mask < (1 << n); mask++ {
		db := data.NewDatabase(ds)
		cnt := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				db.MustInsert("R", tuples[i])
				cnt++
			}
		}
		if cnt > 3 {
			continue
		}
		ok, _, err := db.SatisfiesAll(sigma)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		for _, g := range goals {
			sat, _ := db.Satisfies(g)
			if !sat {
				t.Fatalf("finite counterexample found, contradicting Theorem 4.4:\n%v", db)
			}
		}
	}
}

// Property: finite implication is sound against random finite databases.
func TestFiniteImplicationSoundness(t *testing.T) {
	ds := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	cols := []Column{{"R", "A"}, {"R", "B"}, {"S", "C"}, {"S", "D"}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sigma []deps.Dependency
		for i := 0; i < 1+r.Intn(4); i++ {
			u := cols[r.Intn(4)]
			if r.Intn(2) == 0 {
				// FD to the other attribute of the same relation.
				other := map[Column]Column{
					{"R", "A"}: {"R", "B"}, {"R", "B"}: {"R", "A"},
					{"S", "C"}: {"S", "D"}, {"S", "D"}: {"S", "C"},
				}[u]
				sigma = append(sigma, deps.NewFD(u.Rel, []schema.Attribute{u.Attr}, []schema.Attribute{other.Attr}))
			} else {
				v := cols[r.Intn(4)]
				sigma = append(sigma, deps.NewIND(u.Rel, []schema.Attribute{u.Attr}, v.Rel, []schema.Attribute{v.Attr}))
			}
		}
		s, err := New(ds, sigma)
		if err != nil {
			return false
		}
		goals := s.AllFiniteConsequences()
		// Random finite databases satisfying sigma must satisfy every
		// finite consequence.
		for trial := 0; trial < 15; trial++ {
			db := data.NewDatabase(ds)
			for _, rel := range []string{"R", "S"} {
				for i := 0; i < r.Intn(4); i++ {
					db.MustInsert(rel, data.Tuple{data.Int(r.Intn(3)), data.Int(r.Intn(3))})
				}
			}
			ok, _, err := db.SatisfiesAll(sigma)
			if err != nil {
				return false
			}
			if !ok {
				continue
			}
			for _, g := range goals {
				sat, err := db.Satisfies(g)
				if err != nil || !sat {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: unrestricted implication implies finite implication.
func TestUnrestrictedImpliesFinite(t *testing.T) {
	ds := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	cols := []Column{{"R", "A"}, {"R", "B"}, {"S", "C"}, {"S", "D"}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sigma []deps.Dependency
		for i := 0; i < r.Intn(5); i++ {
			u, v := cols[r.Intn(4)], cols[r.Intn(4)]
			if u.Rel == v.Rel && r.Intn(2) == 0 {
				sigma = append(sigma, deps.NewFD(u.Rel, []schema.Attribute{u.Attr}, []schema.Attribute{v.Attr}))
			} else {
				sigma = append(sigma, deps.NewIND(u.Rel, []schema.Attribute{u.Attr}, v.Rel, []schema.Attribute{v.Attr}))
			}
		}
		s, err := New(ds, sigma)
		if err != nil {
			// FDs between different relations are invalid; skip.
			return true
		}
		for _, u := range cols {
			for _, v := range cols {
				var goal deps.Dependency = deps.NewIND(u.Rel, []schema.Attribute{u.Attr}, v.Rel, []schema.Attribute{v.Attr})
				unr, err := s.ImpliesUnrestricted(goal)
				if err != nil {
					return false
				}
				fin, err := s.ImpliesFinite(goal)
				if err != nil {
					return false
				}
				if unr && !fin {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestExplainTheorem44(t *testing.T) {
	s := theorem44(t)
	goal := deps.NewIND("R", deps.Attrs("B"), "R", deps.Attrs("A"))
	ex, err := s.Explain(goal)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !ex.Finite || ex.Unrestricted {
		t.Fatalf("verdicts wrong: %+v", ex)
	}
	if len(ex.Reversals) == 0 {
		t.Fatalf("expected at least one cycle-rule application")
	}
	found := false
	for _, r := range ex.Reversals {
		if r.Reversed.Key() == deps.Dependency(goal).Key() {
			found = true
			if len(r.Cycle) < 2 {
				t.Errorf("cycle for %v too short: %v", r.Reversed, r.Cycle)
			}
		}
	}
	if !found {
		t.Errorf("goal not among the reversals: %+v", ex.Reversals)
	}
	if len(ex.Path) == 0 {
		t.Errorf("no derivation path")
	}
	if ex.String() == "" {
		t.Errorf("empty rendering")
	}
}

func TestExplainUnrestrictedAndNegative(t *testing.T) {
	s := theorem44(t)
	// An unrestrictedly implied goal still explains, without needing the
	// cycle rule for its own derivation (reversals may be recorded, the
	// verdicts matter).
	ex, err := s.Explain(deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")))
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !ex.Finite || !ex.Unrestricted {
		t.Errorf("verdicts wrong: %+v", ex)
	}
	// A non-implied goal.
	s2, err := New(rab(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ex, err = s2.Explain(deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")))
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if ex.Finite || ex.Unrestricted {
		t.Errorf("verdicts wrong: %+v", ex)
	}
	// Invalid goals error.
	if _, err := s2.Explain(deps.NewFD("Nope", deps.Attrs("A"), deps.Attrs("B"))); err == nil {
		t.Errorf("invalid goal should error")
	}
}

func TestExplainSection6(t *testing.T) {
	// The Section 6 cycle for k = 2: the explanation's reversals include
	// the goal with a cardinality cycle touching every relation.
	k := 2
	var schemes []*schema.Scheme
	names := make([]string, k+1)
	for i := 0; i <= k; i++ {
		names[i] = relName(i)
		schemes = append(schemes, schema.MustScheme(names[i], "A", "B"))
	}
	db := schema.MustDatabase(schemes...)
	var sigma []deps.Dependency
	for i := 0; i <= k; i++ {
		sigma = append(sigma,
			deps.NewFD(names[i], deps.Attrs("A"), deps.Attrs("B")),
			deps.NewIND(names[i], deps.Attrs("A"), names[(i+1)%(k+1)], deps.Attrs("B")),
		)
	}
	s, err := New(db, sigma)
	if err != nil {
		t.Fatal(err)
	}
	goal := deps.NewIND(names[0], deps.Attrs("B"), names[k], deps.Attrs("A"))
	ex, err := s.Explain(goal)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !ex.Finite || ex.Unrestricted {
		t.Fatalf("verdicts wrong: %+v", ex)
	}
	if len(ex.Reversals) == 0 || len(ex.Path) == 0 {
		t.Errorf("explanation incomplete: %+v", ex)
	}
	// Some recorded cycle must span at least 2(k+1) inequality steps (the
	// full cardinality cycle through all relations).
	long := false
	for _, r := range ex.Reversals {
		if len(r.Cycle) >= 2*(k+1) {
			long = true
		}
	}
	if !long {
		t.Errorf("no full-length cardinality cycle recorded: %+v", ex.Reversals)
	}
}

// The full KCV setting: general FDs with unary INDs. The composite FD
// A,B -> C contributes no unary cardinality edge, but C -> A does; the
// cycle with R[A] ⊆ R[C] reverses it finitely.
func TestGeneralFDsWithUnaryINDs(t *testing.T) {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	sigma := []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A", "B"), deps.Attrs("C")), // no unary edge
		deps.NewFD("R", deps.Attrs("C"), deps.Attrs("A")),
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("C")),
	}
	s, err := New(db, sigma)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Finite: |A| ≤ |C| (IND) and |A| ≤ |C|... the FD C -> A forces
	// |A| ≤ |C|; together with the IND A ⊆ C the cycle A ≤ C ≤ A? No:
	// both constraints point the same way, no cycle, nothing reverses.
	if ok, _ := s.ImpliesFinite(deps.NewIND("R", deps.Attrs("C"), "R", deps.Attrs("A"))); ok {
		t.Errorf("no cycle: reverse IND should not be finitely implied")
	}
	// Add the FD A -> C (via the general FD? use direct) to close the
	// cardinality cycle: |C| ≤ |A| now forced, so the IND reverses.
	sigma2 := append(sigma, deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C")))
	s2, err := New(db, sigma2)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := s2.ImpliesFinite(deps.NewIND("R", deps.Attrs("C"), "R", deps.Attrs("A"))); !ok {
		t.Errorf("cycle closed: reverse IND should be finitely implied")
	}
	// And the reversed unary FD feeds the ARMSTRONG closure: with
	// C -> A now reversible to A -> C... check a composite consequence:
	// the goal FD C -> A,C (any shape) through ImpliesFinite.
	if ok, _ := s2.ImpliesFinite(deps.NewFD("R", deps.Attrs("C"), deps.Attrs("A", "C"))); !ok {
		t.Errorf("composite FD goal should be finitely implied")
	}
	// Unrestricted implication of a general FD goal uses plain Armstrong
	// closure.
	if ok, _ := s2.ImpliesUnrestricted(deps.NewFD("R", deps.Attrs("A", "B"), deps.Attrs("C", "A"))); !ok {
		t.Errorf("AB -> CA should follow from AB -> C and ... A trivially")
	}
	if ok, _ := s2.ImpliesUnrestricted(deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C"))); ok {
		t.Errorf("B -> C should not be unrestrictedly implied")
	}
}

// Reversed unary FDs derived by the cycle rule interact with general FDs
// in the Armstrong closure: from A -> B, B ⊆ A (cycle: B -> A derived)
// and the composite FD A,B -> C... once B -> A holds, B+ = {A,B,C} via
// AB -> C.
func TestCycleFeedsComposite(t *testing.T) {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	sigma := []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("A", "B"), deps.Attrs("C")),
	}
	s, err := New(db, sigma)
	if err != nil {
		t.Fatal(err)
	}
	goal := deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C"))
	fin, err := s.ImpliesFinite(goal)
	if err != nil {
		t.Fatal(err)
	}
	if !fin {
		t.Errorf("B -> C should be finitely implied (B -> A by the cycle rule, then AB -> C)")
	}
	unr, _ := s.ImpliesUnrestricted(goal)
	if unr {
		t.Errorf("B -> C should not be unrestrictedly implied")
	}
}
