package unary

import (
	"fmt"
	"strings"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

// Reversal records one application of the finite cycle rule: Reversed is
// the newly derived dependency (the reverse of a previously derived FD or
// IND), justified by the cardinality Cycle — a sequence of inequalities
// |c1| ≤ |c2| ≤ ... ≤ |c1| that forces all the cardinalities on it to be
// equal over any finite database.
type Reversal struct {
	Reversed deps.Dependency
	Cycle    []string
}

// Explanation describes why a unary FD or IND is or is not finitely
// implied.
type Explanation struct {
	// Finite and Unrestricted are the two implication verdicts.
	Finite       bool
	Unrestricted bool
	// Reversals lists the cycle-rule applications performed while closing
	// sigma under finite implication, in derivation order (only populated
	// when the goal is finitely implied but not unrestrictedly implied).
	Reversals []Reversal
	// Path is the final reachability chain deriving the goal from the
	// base dependencies plus the reversals, as human-readable column
	// steps.
	Path []string
}

// String renders the explanation.
func (e Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "finite: %v, unrestricted: %v\n", e.Finite, e.Unrestricted)
	if len(e.Reversals) > 0 {
		b.WriteString("cycle-rule applications (sound only over finite databases):\n")
		for _, r := range e.Reversals {
			fmt.Fprintf(&b, "  derive %v from the cardinality cycle:\n", r.Reversed)
			for _, s := range r.Cycle {
				fmt.Fprintf(&b, "    %s\n", s)
			}
		}
	}
	if len(e.Path) > 0 {
		b.WriteString("derivation path:\n")
		for _, s := range e.Path {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// Explain reproduces the finite-implication derivation of the goal (a
// unary FD or IND), reporting the cycle-rule applications it rests on.
func (s *System) Explain(goal deps.Dependency) (Explanation, error) {
	var ex Explanation
	fin, err := s.ImpliesFinite(goal)
	if err != nil {
		return ex, err
	}
	unr, err := s.ImpliesUnrestricted(goal)
	if err != nil {
		return ex, err
	}
	ex.Finite, ex.Unrestricted = fin, unr
	if !fin {
		return ex, nil
	}

	// Re-run the closure loop with provenance for the reversals.
	nodes := s.columns()
	fdsC := append([]deps.FD(nil), s.fds...)
	indC := copyGraph(s.ind)
	var fdR map[Column]map[Column]bool
	for {
		fdR = unaryFDEdges(s.db, fdsC)
		indR := reach(indC, nodes)
		// Cardinality edges with reasons.
		type leEdge struct {
			to     Column
			reason string
		}
		le := map[Column][]leEdge{}
		for u, m := range fdR {
			for v := range m {
				if u != v {
					le[v] = append(le[v], leEdge{u, fmt.Sprintf("|%v| ≤ |%v|   (FD %v -> %v)", v, u, u, v)})
				}
			}
		}
		for u, m := range indR {
			for v := range m {
				if u != v {
					le[u] = append(le[u], leEdge{v, fmt.Sprintf("|%v| ≤ |%v|   (IND %v ⊆ %v)", u, v, u, v)})
				}
			}
		}
		// path finds a ≤-path between two columns, as reason strings.
		path := func(from, to Column) []string {
			type state struct {
				col  Column
				via  int // index into trail
				edge string
			}
			trail := []state{{col: from, via: -1}}
			seen := map[Column]bool{from: true}
			for i := 0; i < len(trail); i++ {
				cur := trail[i]
				if cur.col == to {
					var out []string
					for j := i; trail[j].via != -1; j = trail[j].via {
						out = append([]string{trail[j].edge}, out...)
					}
					return out
				}
				for _, e := range le[cur.col] {
					if seen[e.to] {
						continue
					}
					seen[e.to] = true
					trail = append(trail, state{col: e.to, via: i, edge: e.reason})
				}
			}
			return nil
		}
		changed := false
		record := func(u, v Column, dep deps.Dependency) {
			fwd := path(u, v)
			back := path(v, u)
			ex.Reversals = append(ex.Reversals, Reversal{
				Reversed: dep,
				Cycle:    append(fwd, back...),
			})
		}
		for u, m := range fdR {
			for v := range m {
				if u == v || fdR[v][u] {
					continue
				}
				// The FD u -> v reverses when |u| = |v| is forced, i.e.
				// when a ≤-path runs each way between u and v.
				if path(u, v) != nil && path(v, u) != nil {
					rev := deps.NewFD(v.Rel, []schema.Attribute{v.Attr}, []schema.Attribute{u.Attr})
					fdsC = append(fdsC, rev)
					changed = true
					record(u, v, rev)
				}
			}
		}
		for u, m := range indR {
			for v := range m {
				if u == v || indR[v][u] {
					continue
				}
				if path(u, v) != nil && path(v, u) != nil {
					rev := deps.NewIND(v.Rel, []schema.Attribute{v.Attr}, u.Rel, []schema.Attribute{u.Attr})
					addEdge(indC, v, u)
					changed = true
					record(u, v, rev)
				}
			}
		}
		if !changed {
			break
		}
	}

	// Final derivation path for the goal over the closed graphs.
	from, to, isFD, err := goalColumns(s.db, goal)
	if err != nil {
		return ex, err
	}
	graph := reach(indC, nodes)
	kind := "⊆"
	if isFD {
		graph = fdR
		kind = "->"
	}
	type state struct {
		col Column
		via int
	}
	trail := []state{{col: from, via: -1}}
	seen := map[Column]bool{from: true}
	for i := 0; i < len(trail); i++ {
		cur := trail[i]
		if cur.col == to {
			var cols []Column
			for j := i; ; j = trail[j].via {
				cols = append([]Column{trail[j].col}, cols...)
				if trail[j].via == -1 {
					break
				}
			}
			for k := 0; k+1 < len(cols); k++ {
				ex.Path = append(ex.Path, fmt.Sprintf("%v %s %v", cols[k], kind, cols[k+1]))
			}
			break
		}
		for next := range graph[cur.col] {
			if !seen[next] {
				seen[next] = true
				trail = append(trail, state{col: next, via: i})
			}
		}
	}
	return ex, nil
}
