// Package unary decides implication for sets of FDs (of any shape) and
// UNARY INDs — the setting of Theorem 4.4 and of the whole Section 6
// construction, and exactly the fragment for which Kanellakis, Cosmadakis
// and Vardi [KCV] (cited in Sections 3, 6 and 7 of the paper) gave
// complete axiomatizations: a binary one for unrestricted implication and
// a non-k-ary one (the cycle rule) for finite implication.
//
// For unrestricted implication, FDs and unary INDs do not interact:
// implication is decided by the two independent transitive closures
// (Kanellakis, Cosmadakis and Vardi [KCV] give a binary complete
// axiomatization, cited at the end of Section 7).
//
// For finite implication the two classes interact through a counting
// argument (the proofs of Theorem 4.4 and Theorem 6.1): an FD A -> B
// forces |r[B]| ≤ |r[A]| and an IND R[A] ⊆ S[B] forces |r[A]| ≤ |s[B]|;
// around any cycle of such inequalities all cardinalities are equal, which
// over a FINITE database reverses every IND (inclusion of equal finite
// cardinality is equality) and every FD (a surjection between finite sets
// of equal cardinality is a bijection) on the cycle. Iterating this cycle
// rule together with the transitive closures is the [KCV] complete
// axiomatization for finite implication of unary FDs and INDs, which the
// paper notes is not k-ary for any k.
package unary

import (
	"fmt"
	"sort"

	"indfd/internal/deps"
	"indfd/internal/fd"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// Column identifies one column of the database scheme: a relation name
// plus one of its attributes.
type Column struct {
	Rel  string
	Attr schema.Attribute
}

// String renders the column as R.A.
func (c Column) String() string { return c.Rel + "." + string(c.Attr) }

// System holds a set of unary FDs and INDs over a database scheme and
// answers implication queries. Create one with New; a System is immutable
// afterwards and safe for concurrent use.
type System struct {
	db *schema.Database
	// declared FDs (any shape) and the unary IND edges
	fds []deps.FD
	ind map[Column]map[Column]bool // R[A] ⊆ S[B]
	// base unary FD edges derived from fds via attribute-set closure
	fd map[Column]map[Column]bool
	// finite closure (computed eagerly by New): fdsFin extends fds with
	// the reversed unary FDs the cycle rule derives; the edge maps are
	// the resulting unary reachability relations.
	fdsFin []deps.FD
	fdFin  map[Column]map[Column]bool
	indFin map[Column]map[Column]bool
	// closure work, published by NewObs
	cycleRounds  int // cycle-rule fixpoint iterations
	reversedFDs  int // unary FDs reversed by the cycle rule
	reversedINDs int // unary INDs reversed by the cycle rule
}

// New builds a System from sigma, which may contain FDs of any shape and
// unary INDs.
func New(db *schema.Database, sigma []deps.Dependency) (*System, error) {
	return NewObs(db, sigma, nil)
}

// NewObs is New publishing the finite-closure's work into reg under the
// "unary." namespace: cycle-rule rounds, FDs and INDs reversed by the
// cardinality argument (the engine's whole cost is paid eagerly here; the
// queries afterwards are lookups). A nil registry costs nothing.
func NewObs(db *schema.Database, sigma []deps.Dependency, reg *obs.Registry) (*System, error) {
	s := &System{
		db:  db,
		ind: map[Column]map[Column]bool{},
	}
	for _, d := range sigma {
		if err := d.Validate(db); err != nil {
			return nil, err
		}
		switch dd := d.(type) {
		case deps.FD:
			s.fds = append(s.fds, dd)
		case deps.IND:
			if dd.Width() != 1 {
				return nil, fmt.Errorf("unary: IND %v is not unary", dd)
			}
			addEdge(s.ind, Column{dd.LRel, dd.X[0]}, Column{dd.RRel, dd.Y[0]})
		default:
			return nil, fmt.Errorf("unary: sigma may contain only FDs and INDs, got %v", d.Kind())
		}
	}
	s.fd = unaryFDEdges(db, s.fds)
	s.fdsFin, s.fdFin, s.indFin = s.finiteClosure()
	if reg != nil {
		reg.Counter("unary.systems_built").Inc()
		reg.Counter("unary.cycle_rounds").Add(int64(s.cycleRounds))
		reg.Counter("unary.reversed_fds").Add(int64(s.reversedFDs))
		reg.Counter("unary.reversed_inds").Add(int64(s.reversedINDs))
		reg.Gauge("unary.columns").SetMax(int64(len(s.columns())))
		edges := 0
		for _, m := range s.indFin {
			edges += len(m)
		}
		reg.Gauge("unary.ind_closure_edges").SetMax(int64(edges))
	}
	return s, nil
}

// unaryFDEdges computes the unary FD edge relation induced by a general
// FD set: an edge A -> B within a relation whenever the FDs imply the
// unary FD A -> B (membership in the attribute-set closure of {A}).
func unaryFDEdges(db *schema.Database, fds []deps.FD) map[Column]map[Column]bool {
	out := map[Column]map[Column]bool{}
	for _, name := range db.Names() {
		sch, _ := db.Scheme(name)
		for _, a := range sch.Attrs() {
			for _, b := range fd.Closure(name, []schema.Attribute{a}, fds) {
				if b != a {
					addEdge(out, Column{name, a}, Column{name, b})
				}
			}
		}
	}
	return out
}

func addEdge(g map[Column]map[Column]bool, from, to Column) {
	if g[from] == nil {
		g[from] = map[Column]bool{}
	}
	g[from][to] = true
}

func copyGraph(g map[Column]map[Column]bool) map[Column]map[Column]bool {
	out := make(map[Column]map[Column]bool, len(g))
	for u, m := range g {
		out[u] = make(map[Column]bool, len(m))
		for v := range m {
			out[u][v] = true
		}
	}
	return out
}

// columns returns every column of the database scheme.
func (s *System) columns() []Column {
	var out []Column
	for _, name := range s.db.Names() {
		sch, _ := s.db.Scheme(name)
		for _, a := range sch.Attrs() {
			out = append(out, Column{name, a})
		}
	}
	return out
}

// reach computes the reflexive-transitive closure of g restricted to the
// given node set.
func reach(g map[Column]map[Column]bool, nodes []Column) map[Column]map[Column]bool {
	out := map[Column]map[Column]bool{}
	for _, start := range nodes {
		seen := map[Column]bool{start: true}
		queue := []Column{start}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := range g[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		out[start] = seen
	}
	return out
}

// finiteClosure iterates the cycle rule to a fixpoint over the FD set
// (reversed unary FDs join the set and feed the Armstrong closure) and
// the unary IND edges, returning the closed FD set and the unary
// reachability relations (reflexive edges omitted; triviality is handled
// at query time).
func (s *System) finiteClosure() (fdsC []deps.FD, fdC, indC map[Column]map[Column]bool) {
	nodes := s.columns()
	fdsC = append([]deps.FD(nil), s.fds...)
	indC = copyGraph(s.ind)
	for {
		s.cycleRounds++
		fdR := unaryFDEdges(s.db, fdsC) // fdR[u][v]: the FDs imply u -> v
		indR := reach(indC, nodes)      // indR[u][v]: u ⊆* v
		// Cardinality graph: le[u][v] iff |u| ≤ |v| is forced.
		le := map[Column]map[Column]bool{}
		for u, m := range fdR {
			for v := range m {
				addEdge(le, v, u) // u -> v forces |v| ≤ |u|
			}
		}
		for u, m := range indR {
			for v := range m {
				addEdge(le, u, v) // u ⊆ v forces |u| ≤ |v|
			}
		}
		leR := reach(le, nodes)
		sameSCC := func(u, v Column) bool { return leR[u][v] && leR[v][u] }
		changed := false
		// Reverse every derived unary FD and IND whose endpoints have
		// equal forced cardinality.
		for u, m := range fdR {
			for v := range m {
				if u != v && sameSCC(u, v) && !fdR[v][u] {
					fdsC = append(fdsC, deps.NewFD(v.Rel, []schema.Attribute{v.Attr}, []schema.Attribute{u.Attr}))
					s.reversedFDs++
					changed = true
				}
			}
		}
		for u, m := range indR {
			for v := range m {
				if u != v && sameSCC(u, v) && !indR[v][u] {
					addEdge(indC, v, u)
					s.reversedINDs++
					changed = true
				}
			}
		}
		if !changed {
			indOut := map[Column]map[Column]bool{}
			for u, m := range indR {
				for v := range m {
					if u != v {
						addEdge(indOut, u, v)
					}
				}
			}
			return fdsC, fdR, indOut
		}
	}
}

// goalColumns validates a unary goal and extracts its columns.
func goalColumns(db *schema.Database, goal deps.Dependency) (from, to Column, isFD bool, err error) {
	if err := goal.Validate(db); err != nil {
		return Column{}, Column{}, false, err
	}
	switch g := goal.(type) {
	case deps.FD:
		if len(g.X) != 1 || len(g.Y) != 1 {
			return Column{}, Column{}, false, fmt.Errorf("unary: goal FD %v is not unary", g)
		}
		return Column{g.Rel, g.X[0]}, Column{g.Rel, g.Y[0]}, true, nil
	case deps.IND:
		if g.Width() != 1 {
			return Column{}, Column{}, false, fmt.Errorf("unary: goal IND %v is not unary", g)
		}
		return Column{g.LRel, g.X[0]}, Column{g.RRel, g.Y[0]}, false, nil
	default:
		return Column{}, Column{}, false, fmt.Errorf("unary: goal must be a unary FD or IND, got %v", goal.Kind())
	}
}

// ImpliesFinite reports whether sigma finitely implies the goal (an FD of
// any shape, or a unary IND): whether every FINITE database satisfying
// sigma satisfies goal.
func (s *System) ImpliesFinite(goal deps.Dependency) (bool, error) {
	// FD goals of any shape go through the closed FD set.
	if g, ok := goal.(deps.FD); ok && (len(g.X) != 1 || len(g.Y) != 1) {
		if err := g.Validate(s.db); err != nil {
			return false, err
		}
		return fd.Implies(s.fdsFin, g), nil
	}
	from, to, isFD, err := goalColumns(s.db, goal)
	if err != nil {
		return false, err
	}
	if from == to {
		return true, nil
	}
	if isFD {
		return s.fdFin[from][to], nil
	}
	return s.indFin[from][to], nil
}

// ImpliesUnrestricted reports whether sigma implies the goal over all
// (possibly infinite) databases: Armstrong closure for FDs and transitive
// closure for the unary INDs, with no interaction ([KCV]'s binary
// complete axiomatization for this fragment has no mixed rules).
func (s *System) ImpliesUnrestricted(goal deps.Dependency) (bool, error) {
	if g, ok := goal.(deps.FD); ok {
		if err := g.Validate(s.db); err != nil {
			return false, err
		}
		return fd.Implies(s.fds, g), nil
	}
	from, to, isFD, err := goalColumns(s.db, goal)
	if err != nil {
		return false, err
	}
	if from == to {
		return true, nil
	}
	nodes := s.columns()
	if isFD {
		return reach(s.fd, nodes)[from][to], nil
	}
	return reach(s.ind, nodes)[from][to], nil
}

// FiniteGap returns the nontrivial unary FDs and INDs that are finitely
// implied but not unrestrictedly implied — the phenomenon of Theorem 4.4.
// Results are sorted for determinism.
func (s *System) FiniteGap() []deps.Dependency {
	var out []deps.Dependency
	for _, goal := range s.AllFiniteConsequences() {
		ok, err := s.ImpliesUnrestricted(goal)
		if err == nil && !ok {
			out = append(out, goal)
		}
	}
	return out
}

// AllFiniteConsequences enumerates every nontrivial UNARY FD and IND over
// the scheme that sigma finitely implies, sorted for determinism. (When
// sigma contains composite FDs, their composite consequences are decided
// by ImpliesFinite but not enumerated here.)
func (s *System) AllFiniteConsequences() []deps.Dependency {
	var out []deps.Dependency
	for u, m := range s.fdFin {
		for v := range m {
			out = append(out, deps.NewFD(u.Rel, []schema.Attribute{u.Attr}, []schema.Attribute{v.Attr}))
		}
	}
	for u, m := range s.indFin {
		for v := range m {
			out = append(out, deps.NewIND(u.Rel, []schema.Attribute{u.Attr}, v.Rel, []schema.Attribute{v.Attr}))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
