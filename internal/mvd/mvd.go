// Package mvd implements the classical theory of multivalued dependencies
// over a single relation scheme — the world of Fagin [Fa1] and Beeri,
// Fagin and Howard [BFH] that the paper contrasts with INDs throughout
// (Section 5 uses EMVDs; the Section 6 remark extends the negative result
// to FDs+INDs+MVDs).
//
// Unlike FDs+INDs, implication for FDs+MVDs is decidable: both classes
// are full typed dependencies, so the chase terminates (the MVD rule only
// recombines the values already present, never inventing new ones).
// Implies runs that terminating chase; DependencyBasis implements the
// block-refinement algorithm for pure MVDs and is cross-validated against
// the chase in the tests.
package mvd

import (
	"fmt"
	"sort"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

// MVD is the multivalued dependency X ->> Y over the scheme's full
// attribute set: whenever two tuples agree on X, the tuple taking its
// X∪Y values from the first and the rest from the second is also present.
// It is the EMVD X ->> Y | U−X−Y.
type MVD struct {
	Rel string
	X   []schema.Attribute
	Y   []schema.Attribute
}

// New builds the MVD rel: x ->> y.
func New(rel string, x, y []schema.Attribute) MVD {
	return MVD{Rel: rel, X: append([]schema.Attribute(nil), x...), Y: append([]schema.Attribute(nil), y...)}
}

// String renders the MVD.
func (m MVD) String() string {
	return fmt.Sprintf("%s: %s ->> %s", m.Rel, schema.JoinAttrs(m.X), schema.JoinAttrs(m.Y))
}

// Validate checks the MVD against the scheme.
func (m MVD) Validate(s *schema.Scheme) error {
	if m.Rel != s.Name() {
		return fmt.Errorf("mvd: %v is not over scheme %s", m, s.Name())
	}
	if !schema.Distinct(m.X) || !schema.Distinct(m.Y) {
		return fmt.Errorf("mvd: %v has repeated attributes", m)
	}
	if !s.HasAll(m.X) || !s.HasAll(m.Y) {
		return fmt.Errorf("mvd: %v uses attributes outside %v", m, s)
	}
	return nil
}

// AsEMVD returns the equivalent EMVD X ->> Y−X | U−X−Y.
func (m MVD) AsEMVD(s *schema.Scheme) deps.EMVD {
	inX := map[schema.Attribute]bool{}
	for _, a := range m.X {
		inX[a] = true
	}
	inY := map[schema.Attribute]bool{}
	var y []schema.Attribute
	for _, a := range m.Y {
		if !inX[a] {
			inY[a] = true
			y = append(y, a)
		}
	}
	var z []schema.Attribute
	for _, a := range s.Attrs() {
		if !inX[a] && !inY[a] {
			z = append(z, a)
		}
	}
	return deps.NewEMVD(m.Rel, m.X, y, z)
}

// Sigma is a set of FDs and MVDs over one relation scheme.
type Sigma struct {
	Scheme *schema.Scheme
	FDs    []deps.FD
	MVDs   []MVD
}

// Validate checks every member.
func (s Sigma) Validate() error {
	for _, f := range s.FDs {
		if f.Rel != s.Scheme.Name() {
			return fmt.Errorf("mvd: FD %v is not over scheme %s", f, s.Scheme.Name())
		}
		if !s.Scheme.HasAll(f.X) || !s.Scheme.HasAll(f.Y) {
			return fmt.Errorf("mvd: FD %v uses attributes outside the scheme", f)
		}
	}
	for _, m := range s.MVDs {
		if err := m.Validate(s.Scheme); err != nil {
			return err
		}
	}
	return nil
}

// Implies decides Σ ⊨ goal (an FD or MVD over the scheme) with the
// terminating chase: the two-row tableau agreeing exactly on the goal's
// left-hand side is closed under the FD rule (equate) and the MVD rule
// (recombine rows); since recombination draws only on the two initial
// symbols per column, the tableau is finite and the chase always
// terminates. FD and MVD implication over finite and unrestricted
// databases coincide for this class, so the verdict is exact for both.
func (s Sigma) Implies(goal any) (bool, error) {
	if err := s.Validate(); err != nil {
		return false, err
	}
	var x []schema.Attribute
	switch g := goal.(type) {
	case deps.FD:
		if g.Rel != s.Scheme.Name() || !s.Scheme.HasAll(g.X) || !s.Scheme.HasAll(g.Y) {
			return false, fmt.Errorf("mvd: goal %v is not over scheme %s", g, s.Scheme.Name())
		}
		x = g.X
	case MVD:
		if err := g.Validate(s.Scheme); err != nil {
			return false, err
		}
		x = g.X
	default:
		return false, fmt.Errorf("mvd: goal must be an FD or MVD, got %T", goal)
	}

	w := s.Scheme.Width()
	pos := func(attrs []schema.Attribute) []int {
		out := make([]int, len(attrs))
		for i, a := range attrs {
			p, _ := s.Scheme.Pos(a)
			out[i] = p
		}
		return out
	}
	// Tableau rows: values 2*i (from t1) and 2*i+1 (from t2) per column i,
	// with union-find for FD equating.
	parent := make([]int, 2*w)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(v int) int {
		if parent[v] != v {
			parent[v] = find(parent[v])
		}
		return parent[v]
	}
	union := func(a, b int) bool {
		ra, rb := find(a), find(b)
		if ra == rb {
			return false
		}
		parent[rb] = ra
		return true
	}
	t1 := make([]int, w)
	t2 := make([]int, w)
	for i := 0; i < w; i++ {
		t1[i] = 2 * i
		t2[i] = 2*i + 1
	}
	for _, p := range pos(x) {
		union(t1[p], t2[p])
	}
	rowKey := func(r []int) string {
		b := make([]byte, 0, len(r))
		for _, v := range r {
			b = append(b, byte(find(v)))
		}
		return string(b)
	}
	rows := [][]int{t1, t2}
	have := map[string]bool{rowKey(t1): true, rowKey(t2): true}

	for changed := true; changed; {
		changed = false
		// FD rule.
		for _, f := range s.FDs {
			xs, ys := pos(f.X), pos(f.Y)
			for i := 0; i < len(rows); i++ {
				for j := i + 1; j < len(rows); j++ {
					agree := true
					for _, p := range xs {
						if find(rows[i][p]) != find(rows[j][p]) {
							agree = false
							break
						}
					}
					if !agree {
						continue
					}
					for _, p := range ys {
						if union(rows[i][p], rows[j][p]) {
							changed = true
						}
					}
				}
			}
		}
		// MVD rule: for rows agreeing on X', add the row taking X'∪Y'
		// from the first and the rest from the second.
		for _, m := range s.MVDs {
			xs := pos(m.X)
			inXY := make([]bool, w)
			for _, p := range xs {
				inXY[p] = true
			}
			for _, p := range pos(m.Y) {
				inXY[p] = true
			}
			n := len(rows)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					agree := true
					for _, p := range xs {
						if find(rows[i][p]) != find(rows[j][p]) {
							agree = false
							break
						}
					}
					if !agree {
						continue
					}
					nr := make([]int, w)
					for p := 0; p < w; p++ {
						if inXY[p] {
							nr[p] = rows[i][p]
						} else {
							nr[p] = rows[j][p]
						}
					}
					k := rowKey(nr)
					if !have[k] {
						have[k] = true
						rows = append(rows, nr)
						changed = true
					}
				}
			}
		}
		if changed {
			// Re-key rows after unions.
			have = map[string]bool{}
			dedup := rows[:0]
			for _, r := range rows {
				k := rowKey(r)
				if !have[k] {
					have[k] = true
					dedup = append(dedup, r)
				}
			}
			rows = dedup
		}
	}

	switch g := goal.(type) {
	case deps.FD:
		for _, p := range pos(g.Y) {
			if find(t1[p]) != find(t2[p]) {
				return false, nil
			}
		}
		return true, nil
	case MVD:
		inXY := make([]bool, w)
		for _, p := range pos(g.X) {
			inXY[p] = true
		}
		for _, p := range pos(g.Y) {
			inXY[p] = true
		}
		want := make([]int, w)
		for p := 0; p < w; p++ {
			if inXY[p] {
				want[p] = t1[p]
			} else {
				want[p] = t2[p]
			}
		}
		return have[rowKey(want)], nil
	}
	return false, nil
}

// DependencyBasis computes DEP(X) for a PURE MVD set: the unique finest
// partition of U − X such that every implied MVD X ->> Y has Y − X a
// union of blocks. Blocks are returned sorted.
func DependencyBasis(s *schema.Scheme, mvds []MVD, x []schema.Attribute) ([][]schema.Attribute, error) {
	for _, m := range mvds {
		if err := m.Validate(s); err != nil {
			return nil, err
		}
	}
	inX := map[schema.Attribute]bool{}
	for _, a := range x {
		if !s.Has(a) {
			return nil, fmt.Errorf("mvd: attribute %s not in scheme", a)
		}
		inX[a] = true
	}
	var rest []schema.Attribute
	for _, a := range s.Attrs() {
		if !inX[a] {
			rest = append(rest, a)
		}
	}
	blocks := [][]schema.Attribute{rest}
	if len(rest) == 0 {
		return nil, nil
	}
	for changed := true; changed; {
		changed = false
		for _, m := range mvds {
			// The refinement rule: for W ->> Z with block B such that
			// B ∩ W = ∅ and B ∩ Z ∉ {∅, B}, split B into B∩Z and B−Z,
			// provided W is covered by X and the blocks disjoint from...
			// The classical sufficient rule (Beeri): applicable when
			// B ∩ W = ∅.
			wSet := map[schema.Attribute]bool{}
			for _, a := range m.X {
				wSet[a] = true
			}
			zSet := map[schema.Attribute]bool{}
			for _, a := range m.Y {
				zSet[a] = true
			}
			var next [][]schema.Attribute
			for _, b := range blocks {
				touchesW := false
				for _, a := range b {
					if wSet[a] {
						touchesW = true
						break
					}
				}
				if touchesW {
					next = append(next, b)
					continue
				}
				var in, out []schema.Attribute
				for _, a := range b {
					if zSet[a] {
						in = append(in, a)
					} else {
						out = append(out, a)
					}
				}
				if len(in) == 0 || len(out) == 0 {
					next = append(next, b)
					continue
				}
				next = append(next, in, out)
				changed = true
			}
			blocks = next
		}
	}
	for i := range blocks {
		blocks[i] = schema.SortedSet(blocks[i])
	}
	sort.Slice(blocks, func(i, j int) bool {
		return schema.JoinAttrs(blocks[i]) < schema.JoinAttrs(blocks[j])
	})
	return blocks, nil
}

// ImpliesMVDByBasis decides pure-MVD implication via the dependency
// basis: Σ ⊨ X ->> Y iff Y − X is a union of DEP(X) blocks.
func ImpliesMVDByBasis(s *schema.Scheme, mvds []MVD, goal MVD) (bool, error) {
	if err := goal.Validate(s); err != nil {
		return false, err
	}
	basis, err := DependencyBasis(s, mvds, goal.X)
	if err != nil {
		return false, err
	}
	inX := map[schema.Attribute]bool{}
	for _, a := range goal.X {
		inX[a] = true
	}
	target := map[schema.Attribute]bool{}
	for _, a := range goal.Y {
		if !inX[a] {
			target[a] = true
		}
	}
	for _, b := range basis {
		inTarget := 0
		for _, a := range b {
			if target[a] {
				inTarget++
			}
		}
		if inTarget != 0 && inTarget != len(b) {
			return false, nil
		}
	}
	return true, nil
}
