package mvd_test

import (
	"fmt"

	"indfd/internal/deps"
	"indfd/internal/mvd"
	"indfd/internal/schema"
)

// The dependency basis DEP(A): the finest partition of the remaining
// attributes into MVD-implied blocks.
func ExampleDependencyBasis() {
	s := schema.MustScheme("R", "A", "B", "C", "D")
	mvds := []mvd.MVD{
		mvd.New("R", deps.Attrs("A"), deps.Attrs("B")),
		mvd.New("R", deps.Attrs("A"), deps.Attrs("C")),
	}
	basis, err := mvd.DependencyBasis(s, mvds, deps.Attrs("A"))
	if err != nil {
		panic(err)
	}
	for _, b := range basis {
		fmt.Println(schema.JoinAttrs(b))
	}
	// Output:
	// B
	// C
	// D
}
