package mvd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

func abcd() *schema.Scheme { return schema.MustScheme("R", "A", "B", "C", "D") }

func TestImpliesClassics(t *testing.T) {
	s := abcd()
	sigma := Sigma{
		Scheme: s,
		FDs:    []deps.FD{deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))},
		MVDs:   []MVD{New("R", deps.Attrs("A"), deps.Attrs("C"))},
	}
	cases := []struct {
		goal any
		want bool
	}{
		// FD promotion: every FD is an MVD.
		{New("R", deps.Attrs("A"), deps.Attrs("B")), true},
		// Complementation: A ->> C gives A ->> BD.
		{New("R", deps.Attrs("A"), deps.Attrs("B", "D")), true},
		// Given A -> B, the complement block splits: A ->> D.
		{New("R", deps.Attrs("A"), deps.Attrs("D")), true},
		// Augmentation.
		{New("R", deps.Attrs("A", "B"), deps.Attrs("C")), true},
		// Not implied.
		{New("R", deps.Attrs("B"), deps.Attrs("C")), false},
		{deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C")), false},
		// Trivial.
		{New("R", deps.Attrs("A"), deps.Attrs("A")), true},
		{deps.NewFD("R", deps.Attrs("A", "B"), deps.Attrs("A")), true},
	}
	for _, c := range cases {
		got, err := sigma.Implies(c.goal)
		if err != nil {
			t.Fatalf("Implies(%v): %v", c.goal, err)
		}
		if got != c.want {
			t.Errorf("Implies(%v) = %v, want %v", c.goal, got, c.want)
		}
	}
}

func TestFDMVDInteraction(t *testing.T) {
	// The classical mixed rule: X ->> Y and Y -> Z (Z ∩ Y = ∅) give
	// X -> Z... in the coalescence form: A ->> B and B -> C imply A -> C.
	s := schema.MustScheme("R", "A", "B", "C")
	sigma := Sigma{
		Scheme: s,
		FDs:    []deps.FD{deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C"))},
		MVDs:   []MVD{New("R", deps.Attrs("A"), deps.Attrs("B"))},
	}
	ok, err := sigma.Implies(deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C")))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("coalescence: A ->> B, B -> C should imply A -> C")
	}
}

func TestValidation(t *testing.T) {
	s := abcd()
	bad := Sigma{Scheme: s, FDs: []deps.FD{deps.NewFD("S", deps.Attrs("A"), deps.Attrs("B"))}}
	if _, err := bad.Implies(New("R", deps.Attrs("A"), deps.Attrs("B"))); err == nil {
		t.Errorf("FD over wrong relation should error")
	}
	good := Sigma{Scheme: s}
	if _, err := good.Implies(New("S", deps.Attrs("A"), deps.Attrs("B"))); err == nil {
		t.Errorf("goal over wrong relation should error")
	}
	if _, err := good.Implies(42); err == nil {
		t.Errorf("bad goal type should error")
	}
	if _, err := DependencyBasis(s, nil, deps.Attrs("Z")); err == nil {
		t.Errorf("unknown attribute should error")
	}
}

func TestDependencyBasis(t *testing.T) {
	s := abcd()
	mvds := []MVD{New("R", deps.Attrs("A"), deps.Attrs("B"))}
	basis, err := DependencyBasis(s, mvds, deps.Attrs("A"))
	if err != nil {
		t.Fatalf("DependencyBasis: %v", err)
	}
	// DEP(A) = {B}, {C,D}.
	if len(basis) != 2 || schema.JoinAttrs(basis[0]) != "B" || schema.JoinAttrs(basis[1]) != "C,D" {
		t.Errorf("DEP(A) = %v", basis)
	}
	// DEP of the full set is empty.
	basis, _ = DependencyBasis(s, mvds, s.Attrs())
	if len(basis) != 0 {
		t.Errorf("DEP(U) = %v", basis)
	}
}

// AsEMVD agrees with native satisfaction.
func TestAsEMVDAgrees(t *testing.T) {
	s := abcd()
	ds := schema.MustDatabase(s)
	m := New("R", deps.Attrs("A"), deps.Attrs("B"))
	e := m.AsEMVD(s)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := data.NewDatabase(ds)
		for i := 0; i < r.Intn(5); i++ {
			db.MustInsert("R", data.Tuple{
				data.Int(r.Intn(2)), data.Int(r.Intn(2)), data.Int(r.Intn(2)), data.Int(r.Intn(2)),
			})
		}
		sat, err := db.Satisfies(e)
		if err != nil {
			return false
		}
		// Direct MVD check: closure under recombination.
		want := satisfiesMVD(db, s, m)
		return sat == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// satisfiesMVD checks the MVD directly by recombination.
func satisfiesMVD(db *data.Database, s *schema.Scheme, m MVD) bool {
	rel, _ := db.Relation("R")
	inXY := make([]bool, s.Width())
	for _, a := range m.X {
		p, _ := s.Pos(a)
		inXY[p] = true
	}
	for _, a := range m.Y {
		p, _ := s.Pos(a)
		inXY[p] = true
	}
	xs := make([]int, 0)
	for _, a := range m.X {
		p, _ := s.Pos(a)
		xs = append(xs, p)
	}
	for _, t1 := range rel.Tuples() {
		for _, t2 := range rel.Tuples() {
			agree := true
			for _, p := range xs {
				if t1[p] != t2[p] {
					agree = false
					break
				}
			}
			if !agree {
				continue
			}
			mixed := make(data.Tuple, s.Width())
			for p := 0; p < s.Width(); p++ {
				if inXY[p] {
					mixed[p] = t1[p]
				} else {
					mixed[p] = t2[p]
				}
			}
			if !rel.Contains(mixed) {
				return false
			}
		}
	}
	return true
}

// Property: the chase verdict is sound against random finite relations.
func TestImpliesSoundness(t *testing.T) {
	s := schema.MustScheme("R", "A", "B", "C")
	ds := schema.MustDatabase(s)
	attrs := s.Attrs()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sigma := Sigma{Scheme: s}
		for i := 0; i < r.Intn(3); i++ {
			x := []schema.Attribute{attrs[r.Intn(3)]}
			y := []schema.Attribute{attrs[r.Intn(3)]}
			if r.Intn(2) == 0 {
				sigma.FDs = append(sigma.FDs, deps.NewFD("R", x, y))
			} else {
				sigma.MVDs = append(sigma.MVDs, New("R", x, y))
			}
		}
		goal := New("R", []schema.Attribute{attrs[r.Intn(3)]}, []schema.Attribute{attrs[r.Intn(3)]})
		implied, err := sigma.Implies(goal)
		if err != nil || !implied {
			return err == nil
		}
		// Every random relation satisfying sigma satisfies the goal.
		for trial := 0; trial < 15; trial++ {
			db := data.NewDatabase(ds)
			for i := 0; i < r.Intn(5); i++ {
				db.MustInsert("R", data.Tuple{data.Int(r.Intn(2)), data.Int(r.Intn(2)), data.Int(r.Intn(2))})
			}
			ok := true
			for _, fd := range sigma.FDs {
				sat, err := db.Satisfies(fd)
				if err != nil {
					return false
				}
				if !sat {
					ok = false
					break
				}
			}
			if ok {
				for _, m := range sigma.MVDs {
					if !satisfiesMVD(db, s, m) {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			if !satisfiesMVD(db, s, goal) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the dependency-basis decision agrees with the chase on pure
// MVD sets.
func TestBasisAgreesWithChase(t *testing.T) {
	s := abcd()
	attrs := s.Attrs()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var mvds []MVD
		for i := 0; i < 1+r.Intn(3); i++ {
			nx := 1 + r.Intn(2)
			perm := r.Perm(4)
			x := make([]schema.Attribute, nx)
			for j := 0; j < nx; j++ {
				x[j] = attrs[perm[j]]
			}
			y := []schema.Attribute{attrs[perm[nx]]}
			mvds = append(mvds, New("R", x, y))
		}
		perm := r.Perm(4)
		goal := New("R", []schema.Attribute{attrs[perm[0]]}, []schema.Attribute{attrs[perm[1]]})
		sigma := Sigma{Scheme: s, MVDs: mvds}
		byChase, err := sigma.Implies(goal)
		if err != nil {
			return false
		}
		byBasis, err := ImpliesMVDByBasis(s, mvds, goal)
		if err != nil {
			return false
		}
		return byChase == byBasis
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
