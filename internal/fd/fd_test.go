package fd

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

func fds(fs ...deps.FD) []deps.FD { return fs }

func TestClosureBasic(t *testing.T) {
	sigma := fds(
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C")),
		deps.NewFD("R", deps.Attrs("C", "D"), deps.Attrs("E")),
	)
	got := Closure("R", deps.Attrs("A"), sigma)
	want := deps.Attrs("A", "B", "C")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Closure(A) = %v, want %v", got, want)
	}
	got = Closure("R", deps.Attrs("A", "D"), sigma)
	want = deps.Attrs("A", "B", "C", "D", "E")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Closure(A,D) = %v, want %v", got, want)
	}
}

func TestClosureRespectsRelation(t *testing.T) {
	sigma := fds(
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewFD("S", deps.Attrs("B"), deps.Attrs("C")),
	)
	got := Closure("R", deps.Attrs("A"), sigma)
	if !reflect.DeepEqual(got, deps.Attrs("A", "B")) {
		t.Errorf("Closure over R must ignore FDs over S: %v", got)
	}
}

func TestClosureEmptyLHS(t *testing.T) {
	// R: ∅ -> A fires unconditionally (Section 6, Case 1).
	sigma := fds(
		deps.NewFD("R", nil, deps.Attrs("A")),
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
	)
	got := Closure("R", nil, sigma)
	if !reflect.DeepEqual(got, deps.Attrs("A", "B")) {
		t.Errorf("Closure(∅) = %v", got)
	}
}

func TestImplies(t *testing.T) {
	sigma := fds(
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C")),
	)
	if !Implies(sigma, deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C"))) {
		t.Errorf("transitivity should give A -> C")
	}
	if Implies(sigma, deps.NewFD("R", deps.Attrs("C"), deps.Attrs("A"))) {
		t.Errorf("C -> A should not be implied")
	}
	if !Implies(nil, deps.NewFD("R", deps.Attrs("A", "B"), deps.Attrs("A"))) {
		t.Errorf("trivial FD should be implied by the empty set")
	}
	// The Section 5 chain T_k: A1->A2, ..., A_{k+1}->A_{k+2} implies A1->A_{k+2}.
	var chain []deps.FD
	names := []string{"A1", "A2", "A3", "A4", "A5"}
	for i := 0; i+1 < len(names); i++ {
		chain = append(chain, deps.NewFD("R", deps.Attrs(names[i]), deps.Attrs(names[i+1])))
	}
	if !Implies(chain, deps.NewFD("R", deps.Attrs("A1"), deps.Attrs("A5"))) {
		t.Errorf("FD chain should imply A1 -> A5")
	}
}

func TestEquivalent(t *testing.T) {
	a := fds(deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B", "C")))
	b := fds(
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C")),
	)
	if !Equivalent(a, b) {
		t.Errorf("split RHS should be equivalent")
	}
	c := fds(deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")))
	if Equivalent(a, c) {
		t.Errorf("a and c differ on A -> C")
	}
}

func TestMinimalCover(t *testing.T) {
	sigma := fds(
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B", "C")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C")),
		deps.NewFD("R", deps.Attrs("A", "B"), deps.Attrs("C")), // redundant
	)
	mc := MinimalCover(sigma)
	if !Equivalent(sigma, mc) {
		t.Fatalf("minimal cover not equivalent: %v", mc)
	}
	for _, f := range mc {
		if len(f.Y) != 1 {
			t.Errorf("minimal cover FD %v has non-singleton RHS", f)
		}
	}
	// A -> C is redundant given A -> B, B -> C, so the cover has 2 FDs.
	if len(mc) != 2 {
		t.Errorf("minimal cover has %d FDs, want 2: %v", len(mc), mc)
	}
}

func TestKeys(t *testing.T) {
	s := schema.MustScheme("R", "A", "B", "C")
	sigma := fds(
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A")),
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C")),
	)
	keys := Keys(s, sigma)
	if len(keys) != 2 {
		t.Fatalf("Keys = %v, want {A},{B}", keys)
	}
	got := map[string]bool{}
	for _, k := range keys {
		got[schema.JoinAttrs(k)] = true
	}
	if !got["A"] || !got["B"] {
		t.Errorf("Keys = %v", keys)
	}
	// With no FDs, the only key is the full attribute set.
	keys = Keys(s, nil)
	if len(keys) != 1 || schema.JoinAttrs(keys[0]) != "A,B,C" {
		t.Errorf("Keys(no FDs) = %v", keys)
	}
}

func TestProveAndVerify(t *testing.T) {
	sigma := fds(
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C")),
		deps.NewFD("R", deps.Attrs("Z"), deps.Attrs("W")), // irrelevant
	)
	goal := deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C"))
	p, ok := Prove(sigma, goal)
	if !ok {
		t.Fatalf("Prove failed")
	}
	if err := p.Verify(sigma); err != nil {
		t.Fatalf("Verify: %v\n%s", err, p)
	}
	// The proof must not use the irrelevant FD.
	for _, s := range p.Steps {
		if s.Via.X[0] == "Z" {
			t.Errorf("proof uses irrelevant FD %v", s.Via)
		}
	}
	if _, ok := Prove(sigma, deps.NewFD("R", deps.Attrs("C"), deps.Attrs("A"))); ok {
		t.Errorf("Prove should fail for non-consequences")
	}
	// A tampered proof must not verify.
	bad := p
	bad.Steps = append([]Step(nil), p.Steps...)
	bad.Steps[0].Via = deps.NewFD("R", deps.Attrs("Q"), deps.Attrs("B"))
	if err := bad.Verify(sigma); err == nil {
		t.Errorf("tampered proof verified")
	}
	if p.String() == "" {
		t.Errorf("empty proof rendering")
	}
}

func TestProveTrivial(t *testing.T) {
	goal := deps.NewFD("R", deps.Attrs("A", "B"), deps.Attrs("A"))
	p, ok := Prove(nil, goal)
	if !ok || len(p.Steps) != 0 {
		t.Errorf("trivial proof should have no steps: %v %v", ok, p.Steps)
	}
	if err := p.Verify(nil); err != nil {
		t.Errorf("Verify trivial: %v", err)
	}
}

// randomFDs generates a random FD set over attributes A..E of relation R.
func randomFDs(r *rand.Rand) []deps.FD {
	attrs := deps.Attrs("A", "B", "C", "D", "E")
	n := r.Intn(6)
	var out []deps.FD
	for i := 0; i < n; i++ {
		perm := r.Perm(len(attrs))
		nx := 1 + r.Intn(2)
		x := make([]schema.Attribute, nx)
		for j := 0; j < nx; j++ {
			x[j] = attrs[perm[j]]
		}
		y := []schema.Attribute{attrs[perm[nx]]}
		out = append(out, deps.NewFD("R", x, y))
	}
	return out
}

// Property: the indexed closure and the naive closure agree.
func TestClosureAgreesWithNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sigma := randomFDs(r)
		start := deps.Attrs("A", "B", "C", "D", "E")[:1+r.Intn(3)]
		return reflect.DeepEqual(Closure("R", start, sigma), ClosureNaive("R", start, sigma))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: closure is monotone, extensive and idempotent.
func TestClosureIsAClosureOperator(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sigma := randomFDs(r)
		x := deps.Attrs("A", "B")
		cx := Closure("R", x, sigma)
		// extensive: X ⊆ X⁺
		if !schema.SubsetOf(x, cx) {
			return false
		}
		// idempotent: (X⁺)⁺ = X⁺
		if !reflect.DeepEqual(Closure("R", cx, sigma), cx) {
			return false
		}
		// monotone: X ⊆ XY ⇒ X⁺ ⊆ (XY)⁺
		cxy := Closure("R", deps.Attrs("A", "B", "C"), sigma)
		return schema.SubsetOf(cx, cxy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property (soundness against the semantics): if Implies(sigma, f), then
// every randomly generated small relation satisfying sigma satisfies f.
func TestImpliesSoundAgainstSemantics(t *testing.T) {
	ds := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C", "D", "E"))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sigma := randomFDs(r)
		goal := deps.NewFD("R", deps.Attrs("A"), deps.Attrs("E"))
		if !Implies(sigma, goal) {
			return true // nothing to check
		}
		// Generate random relations; keep ones satisfying sigma.
		for trial := 0; trial < 20; trial++ {
			db := data.NewDatabase(ds)
			rel := db.MustRelation("R")
			for i := 0; i < 4; i++ {
				tup := make(data.Tuple, 5)
				for j := range tup {
					tup[j] = data.Int(r.Intn(3))
				}
				rel.MustInsert(tup)
			}
			sat := true
			for _, g := range sigma {
				ok, err := db.Satisfies(g)
				if err != nil {
					return false
				}
				if !ok {
					sat = false
					break
				}
			}
			if !sat {
				continue
			}
			ok, err := db.Satisfies(goal)
			if err != nil || !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every FD produced by Prove verifies.
func TestProveAlwaysVerifies(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sigma := randomFDs(r)
		goal := deps.NewFD("R", deps.Attrs("A"), deps.Attrs("D"))
		p, ok := Prove(sigma, goal)
		if ok != Implies(sigma, goal) {
			return false
		}
		if !ok {
			return true
		}
		return p.Verify(sigma) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
