package fd_test

import (
	"fmt"

	"indfd/internal/deps"
	"indfd/internal/fd"
	"indfd/internal/schema"
)

// Attribute-set closure under a set of FDs (Beeri–Bernstein).
func ExampleClosure() {
	sigma := []deps.FD{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C")),
	}
	fmt.Println(fd.Closure("R", deps.Attrs("A"), sigma))
	// Output: [A B C]
}

// Minimal keys of a relation scheme.
func ExampleKeys() {
	s := schema.MustScheme("R", "A", "B", "C")
	sigma := []deps.FD{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B", "C")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A")),
	}
	for _, k := range fd.Keys(s, sigma) {
		fmt.Println(k)
	}
	// Output:
	// [A]
	// [B]
}
