package fd

import (
	"indfd/internal/deps"
	"indfd/internal/schema"
)

// isSuperkey reports whether x determines every attribute of the scheme.
func isSuperkey(s *schema.Scheme, x []schema.Attribute, sigma []deps.FD) bool {
	return newAttrSet(Closure(s.Name(), x, sigma)).containsAll(s.Attrs())
}

// BCNFViolations returns the FDs of sigma over the scheme that violate
// Boyce–Codd normal form: nontrivial FDs whose left-hand side is not a
// superkey. (Normalization into BCNF is exactly what creates the
// multi-relation schemes with inter-relational INDs that motivate the
// paper.)
func BCNFViolations(s *schema.Scheme, sigma []deps.FD) []deps.FD {
	var out []deps.FD
	for _, f := range sigma {
		if f.Rel != s.Name() || f.Trivial() {
			continue
		}
		if !isSuperkey(s, f.X, sigma) {
			out = append(out, f)
		}
	}
	return out
}

// IsBCNF reports whether the scheme is in Boyce–Codd normal form under
// the FDs of sigma.
func IsBCNF(s *schema.Scheme, sigma []deps.FD) bool {
	return len(BCNFViolations(s, sigma)) == 0
}

// primeAttrs returns the attributes occurring in some minimal key.
func primeAttrs(s *schema.Scheme, sigma []deps.FD) map[schema.Attribute]bool {
	out := map[schema.Attribute]bool{}
	for _, key := range Keys(s, sigma) {
		for _, a := range key {
			out[a] = true
		}
	}
	return out
}

// ThirdNFViolations returns the FDs of sigma over the scheme that violate
// third normal form: nontrivial FDs whose left-hand side is not a
// superkey and whose right-hand side contains a non-prime attribute.
func ThirdNFViolations(s *schema.Scheme, sigma []deps.FD) []deps.FD {
	prime := primeAttrs(s, sigma)
	var out []deps.FD
	for _, f := range sigma {
		if f.Rel != s.Name() || f.Trivial() {
			continue
		}
		if isSuperkey(s, f.X, sigma) {
			continue
		}
		inX := newAttrSet(f.X)
		for _, b := range f.Y {
			if !inX[b] && !prime[b] {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// IsThirdNF reports whether the scheme is in third normal form under the
// FDs of sigma.
func IsThirdNF(s *schema.Scheme, sigma []deps.FD) bool {
	return len(ThirdNFViolations(s, sigma)) == 0
}
