package fd

import (
	"math/rand"
	"testing"

	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// TestProverMatchesProveObs pins the compiled prover to the reference
// implementation over random FD sets: same verdict, byte-identical
// proof, and identical fd.* counter increments (pass and derivation
// counts), goal by goal.
func TestProverMatchesProveObs(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	attrs := []schema.Attribute{"A", "B", "C", "D", "E", "F", "G", "H"}
	side := func() []schema.Attribute {
		n := 1 + r.Intn(3)
		perm := r.Perm(len(attrs))
		out := make([]schema.Attribute, n)
		for i := 0; i < n; i++ {
			out[i] = attrs[perm[i]]
		}
		return out
	}
	counts := func(reg *obs.Registry) [3]int64 {
		return [3]int64{
			reg.Counter("fd.prove_calls").Value(),
			reg.Counter("fd.closure_passes").Value(),
			reg.Counter("fd.attrs_derived").Value(),
		}
	}
	for trial := 0; trial < 300; trial++ {
		var sigma []deps.FD
		for i, n := 0, r.Intn(7); i < n; i++ {
			rel := "R"
			if r.Intn(4) == 0 {
				rel = "S" // prover must ignore other relations like ProveObs does
			}
			sigma = append(sigma, deps.FD{Rel: rel, X: side(), Y: side()})
		}
		p := NewProver("R", sigma)
		for g := 0; g < 4; g++ {
			goal := deps.FD{Rel: "R", X: side(), Y: side()}
			regRef, regCmp := obs.New(), obs.New()
			refProof, refOK := ProveObs(sigma, goal, regRef)
			gotProof, gotOK := p.Prove(goal, regCmp)
			if refOK != gotOK {
				t.Fatalf("trial %d: sigma=%v goal=%v: ProveObs ok=%v, Prover ok=%v",
					trial, sigma, goal, refOK, gotOK)
			}
			if refOK && refProof.String() != gotProof.String() {
				t.Fatalf("trial %d: sigma=%v goal=%v:\nProveObs:\n%s\nProver:\n%s",
					trial, sigma, goal, refProof.String(), gotProof.String())
			}
			if gotOK {
				if err := gotProof.Verify(sigma); err != nil {
					t.Fatalf("trial %d: prover proof fails Verify: %v", trial, err)
				}
			}
			if counts(regRef) != counts(regCmp) {
				t.Fatalf("trial %d: sigma=%v goal=%v: counter drift: ProveObs %v, Prover %v",
					trial, sigma, goal, counts(regRef), counts(regCmp))
			}
		}
	}
}

// TestProverNilAndEmpty pins the degenerate provers: a nil prover and a
// prover over zero FDs both answer exactly like ProveObs with no FDs —
// only reflexivity proves anything.
func TestProverNilAndEmpty(t *testing.T) {
	goalYes := deps.FD{Rel: "R", X: []schema.Attribute{"A", "B"}, Y: []schema.Attribute{"A"}}
	goalNo := deps.FD{Rel: "R", X: []schema.Attribute{"A"}, Y: []schema.Attribute{"B"}}
	for name, p := range map[string]*Prover{"nil": nil, "empty": NewProver("R", nil)} {
		if proof, ok := p.Prove(goalYes, nil); !ok || len(proof.Steps) != 0 {
			t.Errorf("%s prover: reflexive goal: ok=%v steps=%d, want ok with no steps", name, ok, len(proof.Steps))
		}
		if _, ok := p.Prove(goalNo, nil); ok {
			t.Errorf("%s prover: underivable goal answered yes", name)
		}
	}
}
