package fd

import (
	"fmt"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

// ClosedSets returns all attribute sets X of the scheme with X = X⁺ under
// the FDs of sigma naming the scheme, each as a sorted attribute sequence.
// The enumeration is exponential in the scheme width; the paper's schemes
// never exceed three attributes, and the method guards against widths
// above 16.
func ClosedSets(s *schema.Scheme, sigma []deps.FD) ([][]schema.Attribute, error) {
	attrs := s.Attrs()
	n := len(attrs)
	if n > 16 {
		return nil, fmt.Errorf("fd: scheme %s too wide (%d attributes) for closed-set enumeration", s.Name(), n)
	}
	var out [][]schema.Attribute
	for mask := 0; mask < 1<<n; mask++ {
		var x []schema.Attribute
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				x = append(x, attrs[i])
			}
		}
		if schema.EqualSeq(Closure(s.Name(), x, sigma), schema.SortedSet(x)) {
			out = append(out, schema.SortedSet(x))
		}
	}
	return out, nil
}

// ArmstrongRelation builds a finite relation over the scheme that obeys
// exactly the FDs implied by sigma: an FD X -> Y over the scheme holds in
// the relation iff sigma ⊨ X -> Y. (Armstrong relations always exist for
// FDs — Armstrong; Fagin — and the paper's introduction points to Fagin
// and Vardi's extension to FDs and INDs together.)
//
// The construction is the classical one: one tuple t_C per closed set C,
// with t_C agreeing with the all-zero tuple exactly on C; the agreement
// set of t_C and t_C' is then C ∩ C', which is closed, so every implied
// FD holds, while for A ∉ X⁺ the tuples t_{X⁺} and t_U disagree on A.
func ArmstrongRelation(s *schema.Scheme, sigma []deps.FD) (*data.Database, error) {
	closed, err := ClosedSets(s, sigma)
	if err != nil {
		return nil, err
	}
	ds, err := schema.NewDatabase(s)
	if err != nil {
		return nil, err
	}
	db := data.NewDatabase(ds)
	for id, c := range closed {
		inC := make(map[schema.Attribute]bool, len(c))
		for _, a := range c {
			inC[a] = true
		}
		t := make(data.Tuple, s.Width())
		for i, a := range s.Attrs() {
			if inC[a] {
				t[i] = data.Int(0)
			} else {
				t[i] = data.Value(fmt.Sprintf("x%d", id+1))
			}
		}
		if _, err := db.Insert(s.Name(), t); err != nil {
			return nil, err
		}
	}
	return db, nil
}
