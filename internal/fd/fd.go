// Package fd implements the classical theory of functional dependencies
// that the paper builds on and contrasts with: Armstrong's complete
// axiomatization, the near-linear-time attribute-set closure of Beeri and
// Bernstein (cited in Section 3 as the polynomial counterpoint to the
// PSPACE-complete IND decision problem), implication, minimal covers, and
// key discovery.
//
// FDs in this package may span several relations of a database scheme; an
// FD only ever constrains the single relation it names, so implication
// questions decompose per relation.
package fd

import (
	"sort"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

// attrSet is a set of attributes.
type attrSet map[schema.Attribute]bool

func newAttrSet(attrs []schema.Attribute) attrSet {
	s := make(attrSet, len(attrs))
	for _, a := range attrs {
		s[a] = true
	}
	return s
}

func (s attrSet) containsAll(attrs []schema.Attribute) bool {
	for _, a := range attrs {
		if !s[a] {
			return false
		}
	}
	return true
}

func (s attrSet) sorted() []schema.Attribute {
	out := make([]schema.Attribute, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Closure computes the attribute-set closure X⁺ of the attribute set x
// under the FDs of sigma that name relation rel, using the Beeri–Bernstein
// counting algorithm: each FD keeps a count of left-hand-side attributes
// not yet derived, and fires when the count reaches zero. The running time
// is linear in the total size of the relevant FDs.
func Closure(rel string, x []schema.Attribute, sigma []deps.FD) []schema.Attribute {
	var fds []deps.FD
	for _, f := range sigma {
		if f.Rel == rel {
			fds = append(fds, f)
		}
	}
	// remaining[i] counts LHS attributes of fds[i] not yet in the closure.
	remaining := make([]int, len(fds))
	// byAttr[a] lists the FDs with a on the left-hand side.
	lhs := 0
	for _, f := range fds {
		lhs += len(f.X)
	}
	byAttr := make(map[schema.Attribute][]int, lhs)
	closure := make(attrSet, len(x))
	queue := make([]schema.Attribute, 0, len(x))

	add := func(a schema.Attribute) {
		if !closure[a] {
			closure[a] = true
			queue = append(queue, a)
		}
	}
	for i, f := range fds {
		remaining[i] = len(f.X)
		for _, a := range f.X {
			byAttr[a] = append(byAttr[a], i)
		}
	}
	for _, a := range x {
		add(a)
	}
	// FDs with an empty left-hand side fire immediately (R: ∅ -> Y).
	for i, f := range fds {
		if remaining[i] == 0 {
			for _, b := range f.Y {
				add(b)
			}
		}
	}
	for head := 0; head < len(queue); head++ {
		a := queue[head]
		for _, i := range byAttr[a] {
			remaining[i]--
			if remaining[i] == 0 {
				for _, b := range fds[i].Y {
					add(b)
				}
			}
		}
	}
	return closure.sorted()
}

// closureSet is Closure returning the set form.
func closureSet(rel string, x []schema.Attribute, sigma []deps.FD) attrSet {
	return newAttrSet(Closure(rel, x, sigma))
}

// Implies reports whether sigma logically implies the FD f. By the
// completeness of Armstrong's axioms this holds iff every attribute of
// f.Y is in the closure of f.X under the FDs of sigma over f.Rel. For FDs,
// finite and unrestricted implication coincide.
func Implies(sigma []deps.FD, f deps.FD) bool {
	return closureSet(f.Rel, f.X, sigma).containsAll(f.Y)
}

// ImpliesAll reports whether sigma implies every FD in fs.
func ImpliesAll(sigma []deps.FD, fs []deps.FD) bool {
	for _, f := range fs {
		if !Implies(sigma, f) {
			return false
		}
	}
	return true
}

// Equivalent reports whether two FD sets have the same consequences.
func Equivalent(a, b []deps.FD) bool {
	return ImpliesAll(a, b) && ImpliesAll(b, a)
}

// ClosureNaive computes the same closure as Closure with the textbook
// quadratic fixpoint loop. It exists as the ablation baseline for
// BenchmarkFDClosureNaive (see DESIGN.md §4).
func ClosureNaive(rel string, x []schema.Attribute, sigma []deps.FD) []schema.Attribute {
	closure := newAttrSet(x)
	for changed := true; changed; {
		changed = false
		for _, f := range sigma {
			if f.Rel != rel {
				continue
			}
			if closure.containsAll(f.X) {
				for _, b := range f.Y {
					if !closure[b] {
						closure[b] = true
						changed = true
					}
				}
			}
		}
	}
	return closure.sorted()
}

// MinimalCover returns a minimal cover of sigma: an equivalent set of FDs
// in which every right-hand side is a single attribute, no left-hand side
// contains a redundant attribute, and no FD is redundant. The result is
// deterministic for a given input order.
func MinimalCover(sigma []deps.FD) []deps.FD {
	// Step 1: split right-hand sides.
	var g []deps.FD
	for _, f := range sigma {
		for _, b := range f.Y {
			g = append(g, deps.NewFD(f.Rel, f.X, []schema.Attribute{b}))
		}
	}
	// Step 2: remove extraneous left-hand-side attributes.
	for i := range g {
		x := g[i].X
		for j := 0; j < len(x); {
			trimmed := make([]schema.Attribute, 0, len(x)-1)
			trimmed = append(trimmed, x[:j]...)
			trimmed = append(trimmed, x[j+1:]...)
			if closureSet(g[i].Rel, trimmed, g).containsAll(g[i].Y) {
				x = trimmed
			} else {
				j++
			}
		}
		g[i] = deps.NewFD(g[i].Rel, x, g[i].Y)
	}
	// Step 3: remove redundant FDs.
	for i := 0; i < len(g); {
		rest := make([]deps.FD, 0, len(g)-1)
		rest = append(rest, g[:i]...)
		rest = append(rest, g[i+1:]...)
		if Implies(rest, g[i]) {
			g = rest
		} else {
			i++
		}
	}
	return g
}

// Keys returns all minimal keys of the relation scheme under the FDs of
// sigma naming it, in sorted order. A key is a minimal attribute set whose
// closure is the full attribute set of the scheme.
func Keys(s *schema.Scheme, sigma []deps.FD) [][]schema.Attribute {
	all := s.Attrs()
	var keys [][]schema.Attribute
	// Enumerate candidate subsets in order of increasing size so that
	// supersets of found keys can be skipped. Scheme widths in this
	// repository are tiny (the paper never exceeds three attributes), so
	// exhaustive enumeration is appropriate.
	n := len(all)
	isSuperset := func(cand attrSet) bool {
		for _, k := range keys {
			if cand.containsAll(k) {
				return true
			}
		}
		return false
	}
	for size := 0; size <= n; size++ {
		subsets(n, size, func(idx []int) {
			cand := make([]schema.Attribute, len(idx))
			for i, j := range idx {
				cand[i] = all[j]
			}
			cs := newAttrSet(cand)
			if isSuperset(cs) {
				return
			}
			if closureSet(s.Name(), cand, sigma).containsAll(all) {
				keys = append(keys, cand)
			}
		})
	}
	return keys
}

// subsets calls fn with every size-k index subset of {0,...,n-1}.
func subsets(n, k int, fn func([]int)) {
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			fn(idx)
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}
