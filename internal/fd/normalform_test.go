package fd

import (
	"testing"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

func TestBCNF(t *testing.T) {
	// The classic example: R(CITY, STREET, ZIP) with
	// CITY,STREET -> ZIP and ZIP -> CITY is 3NF but not BCNF.
	s := schema.MustScheme("R", "CITY", "STREET", "ZIP")
	sigma := fds(
		deps.NewFD("R", deps.Attrs("CITY", "STREET"), deps.Attrs("ZIP")),
		deps.NewFD("R", deps.Attrs("ZIP"), deps.Attrs("CITY")),
	)
	if IsBCNF(s, sigma) {
		t.Errorf("ZIP -> CITY should violate BCNF")
	}
	vs := BCNFViolations(s, sigma)
	if len(vs) != 1 || vs[0].String() != "R: ZIP -> CITY" {
		t.Errorf("BCNFViolations = %v", vs)
	}
	if !IsThirdNF(s, sigma) {
		t.Errorf("the scheme IS in 3NF (CITY is prime)")
	}
}

func TestBCNFKeyBased(t *testing.T) {
	// With only key FDs, the scheme is in BCNF.
	s := schema.MustScheme("R", "A", "B", "C")
	sigma := fds(deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B", "C")))
	if !IsBCNF(s, sigma) || !IsThirdNF(s, sigma) {
		t.Errorf("key-determined scheme should be BCNF and 3NF")
	}
	// A partial dependency breaks both.
	sigma = append(sigma, deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C")))
	if IsBCNF(s, sigma) {
		t.Errorf("B -> C should violate BCNF")
	}
	if IsThirdNF(s, sigma) {
		t.Errorf("B -> C should violate 3NF (C is not prime)")
	}
	vs := ThirdNFViolations(s, sigma)
	if len(vs) != 1 || vs[0].String() != "R: B -> C" {
		t.Errorf("ThirdNFViolations = %v", vs)
	}
}

func TestNormalFormsIgnoreOtherRelations(t *testing.T) {
	s := schema.MustScheme("R", "A", "B")
	sigma := fds(deps.NewFD("S", deps.Attrs("X"), deps.Attrs("Y")))
	if !IsBCNF(s, sigma) || !IsThirdNF(s, sigma) {
		t.Errorf("FDs over other relations must be ignored")
	}
}

func TestTrivialFDsAreFine(t *testing.T) {
	s := schema.MustScheme("R", "A", "B")
	sigma := fds(deps.NewFD("R", deps.Attrs("A", "B"), deps.Attrs("A")))
	if !IsBCNF(s, sigma) {
		t.Errorf("trivial FDs never violate BCNF")
	}
}
