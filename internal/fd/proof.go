package fd

import (
	"fmt"
	"strconv"
	"strings"

	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// Step is one line of an FD derivation: attribute Derived becomes a member
// of the closure because the FD Via fired, all of whose left-hand-side
// attributes were already derived.
type Step struct {
	Derived schema.Attribute
	Via     deps.FD
}

// Proof is a derivation that sigma implies Goal: starting from the
// attributes of Goal.X, the Steps add attributes one at a time until every
// attribute of Goal.Y is derived. A Proof witnesses derivability in
// Armstrong's system (each step is an application of transitivity after
// augmentation; attributes of Goal.X are available by reflexivity).
type Proof struct {
	Goal  deps.FD
	Steps []Step
}

// Prove returns a derivation of f from sigma, or ok=false if sigma does
// not imply f. The derivation records only the steps needed to reach the
// goal attributes.
func Prove(sigma []deps.FD, f deps.FD) (Proof, bool) {
	return ProveObs(sigma, f, nil)
}

// ProveObs is Prove publishing its work into reg under the "fd."
// namespace: prove calls, fixpoint passes over the FD set, and attribute
// derivations. A nil registry costs nothing.
func ProveObs(sigma []deps.FD, f deps.FD, reg *obs.Registry) (Proof, bool) {
	reg.Counter("fd.prove_calls").Inc()
	cPasses := reg.Counter("fd.closure_passes")
	cDerived := reg.Counter("fd.attrs_derived")
	// Re-run the closure, recording which FD derived each new attribute.
	var fds []deps.FD
	for _, g := range sigma {
		if g.Rel == f.Rel {
			fds = append(fds, g)
		}
	}
	derivedBy := make(map[schema.Attribute]*deps.FD)
	closure := newAttrSet(f.X)
	for changed := true; changed; {
		changed = false
		cPasses.Inc()
		for i, g := range fds {
			if closure.containsAll(g.X) {
				for _, b := range g.Y {
					if !closure[b] {
						closure[b] = true
						derivedBy[b] = &fds[i]
						cDerived.Inc()
						changed = true
					}
				}
			}
		}
	}
	if !closure.containsAll(f.Y) {
		return Proof{}, false
	}
	// Walk back from the goal attributes, collecting needed steps, then
	// emit them in dependency order.
	needed := make(map[schema.Attribute]bool)
	var visit func(a schema.Attribute)
	var ordered []Step
	inX := newAttrSet(f.X)
	visit = func(a schema.Attribute) {
		if inX[a] || needed[a] {
			return
		}
		needed[a] = true
		g := derivedBy[a]
		if g == nil {
			return // unreachable when closure.containsAll(f.Y)
		}
		for _, p := range g.X {
			visit(p)
		}
		ordered = append(ordered, Step{Derived: a, Via: *g})
	}
	for _, b := range f.Y {
		visit(b)
	}
	return Proof{Goal: f, Steps: ordered}, true
}

// Verify checks that the proof is a valid derivation of its goal from
// sigma: every step's FD is in sigma, its left-hand side is available when
// it fires, and the goal's right-hand side is covered at the end.
func (p Proof) Verify(sigma []deps.FD) error {
	inSigma := make(map[string]bool, len(sigma))
	for _, f := range sigma {
		inSigma[f.Key()] = true
	}
	have := newAttrSet(p.Goal.X)
	for i, s := range p.Steps {
		if !inSigma[s.Via.Key()] {
			return fmt.Errorf("fd: step %d uses %v, which is not in sigma", i, s.Via)
		}
		if s.Via.Rel != p.Goal.Rel {
			return fmt.Errorf("fd: step %d uses FD over %s, goal is over %s", i, s.Via.Rel, p.Goal.Rel)
		}
		if !have.containsAll(s.Via.X) {
			return fmt.Errorf("fd: step %d fires %v before its left-hand side is derived", i, s.Via)
		}
		found := false
		for _, b := range s.Via.Y {
			have[b] = true
			if b == s.Derived {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("fd: step %d claims to derive %s, which %v does not yield", i, s.Derived, s.Via)
		}
	}
	if !have.containsAll(p.Goal.Y) {
		return fmt.Errorf("fd: proof does not derive the goal %v", p.Goal)
	}
	return nil
}

// String renders the proof as a numbered derivation. Direct builder
// writes, not Fprintf: proofs render on the serving hot path (every fd
// Yes answer carries one), and reflective formatting dominated it.
func (p Proof) String() string {
	var b strings.Builder
	b.WriteString("goal: ")
	b.WriteString(p.Goal.String())
	b.WriteString("\n  start with ")
	b.WriteString(schema.JoinAttrs(p.Goal.X))
	b.WriteString(" (reflexivity)\n")
	for i, s := range p.Steps {
		b.WriteString("  ")
		b.WriteString(strconv.Itoa(i + 1))
		b.WriteString(". derive ")
		b.WriteString(string(s.Derived))
		b.WriteString(" via ")
		b.WriteString(s.Via.String())
		b.WriteString(" (augmentation + transitivity)\n")
	}
	b.WriteString("  qed")
	return b.String()
}
