package fd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"indfd/internal/deps"
	"indfd/internal/schema"
)

func TestClosedSets(t *testing.T) {
	s := schema.MustScheme("R", "A", "B", "C")
	sigma := fds(
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
	)
	closed, err := ClosedSets(s, sigma)
	if err != nil {
		t.Fatalf("ClosedSets: %v", err)
	}
	// Closed: ∅, B, C, BC, AB, ABC — not A (A⁺ = AB), not AC.
	if len(closed) != 6 {
		t.Errorf("closed sets = %v, want 6 of them", closed)
	}
	for _, c := range closed {
		if !schema.EqualSeq(schema.SortedSet(Closure("R", c, sigma)), c) {
			t.Errorf("%v is not closed", c)
		}
	}
}

func TestClosedSetsTooWide(t *testing.T) {
	attrs := make([]schema.Attribute, 17)
	for i := range attrs {
		attrs[i] = schema.Attribute("X" + string(rune('A'+i)))
	}
	s := schema.MustScheme("R", attrs...)
	if _, err := ClosedSets(s, nil); err == nil {
		t.Errorf("17-attribute scheme should be rejected")
	}
}

func TestArmstrongRelationExample(t *testing.T) {
	s := schema.MustScheme("R", "A", "B", "C")
	sigma := fds(
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C")),
	)
	db, err := ArmstrongRelation(s, sigma)
	if err != nil {
		t.Fatalf("ArmstrongRelation: %v", err)
	}
	cases := []struct {
		fd   deps.FD
		want bool
	}{
		{deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")), true},
		{deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C")), true},
		{deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C")), true},
		{deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A")), false},
		{deps.NewFD("R", deps.Attrs("C"), deps.Attrs("A")), false},
		{deps.NewFD("R", deps.Attrs("C"), deps.Attrs("B")), false},
	}
	for _, c := range cases {
		sat, err := db.Satisfies(c.fd)
		if err != nil {
			t.Fatal(err)
		}
		if sat != c.want {
			t.Errorf("%v: satisfied=%v, want %v", c.fd, sat, c.want)
		}
	}
}

// Property: the Armstrong relation satisfies an FD iff sigma implies it,
// for every FD over the scheme (enumerating all side pairs).
func TestArmstrongRelationExactness(t *testing.T) {
	s := schema.MustScheme("R", "A", "B", "C", "D")
	attrs := s.Attrs()
	subsets := func() [][]schema.Attribute {
		var out [][]schema.Attribute
		for mask := 0; mask < 1<<len(attrs); mask++ {
			var x []schema.Attribute
			for i := range attrs {
				if mask&(1<<i) != 0 {
					x = append(x, attrs[i])
				}
			}
			out = append(out, x)
		}
		return out
	}()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sigma []deps.FD
		for i := 0; i < r.Intn(5); i++ {
			x := subsets[r.Intn(len(subsets))]
			y := subsets[1+r.Intn(len(subsets)-1)] // nonempty
			sigma = append(sigma, deps.NewFD("R", x, y))
		}
		db, err := ArmstrongRelation(s, sigma)
		if err != nil {
			return false
		}
		for _, x := range subsets {
			for _, y := range subsets {
				if len(y) == 0 {
					continue
				}
				goal := deps.NewFD("R", x, y)
				sat, err := db.Satisfies(goal)
				if err != nil {
					return false
				}
				if sat != Implies(sigma, goal) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
