package fd

import (
	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
)

// Prover is a compiled FD set over one relation: every attribute the
// FDs mention is assigned a bit position, and each FD's sides become
// bitmasks, so the closure fixpoint runs on word operations instead of
// per-attribute map probes. Compiling costs what one ProveObs call's
// setup used to; a server compiles once per Σ edit (see core's
// component index) and answers every goal against the compiled form.
//
// A Prover is immutable after NewProver and safe for concurrent use.
// Prove is step-for-step identical to ProveObs over the same FDs: the
// fixpoint visits FDs in the same order and derives attributes in the
// same order, so proofs, pass counts, and derivation counters match.
type Prover struct {
	rel   string
	fds   []deps.FD
	idx   map[schema.Attribute]int
	attrs []schema.Attribute
	words int        // bitset length: ceil(len(attrs)/64)
	x, y  [][]uint64 // per-FD side masks
}

// NewProver compiles the FDs of sigma over relation rel. FDs over other
// relations are ignored, mirroring ProveObs's own filter.
func NewProver(rel string, sigma []deps.FD) *Prover {
	p := &Prover{rel: rel, idx: make(map[schema.Attribute]int)}
	for _, g := range sigma {
		if g.Rel == rel {
			p.fds = append(p.fds, g)
		}
	}
	intern := func(a schema.Attribute) int {
		i, ok := p.idx[a]
		if !ok {
			i = len(p.attrs)
			p.idx[a] = i
			p.attrs = append(p.attrs, a)
		}
		return i
	}
	for _, g := range p.fds {
		for _, a := range g.X {
			intern(a)
		}
		for _, a := range g.Y {
			intern(a)
		}
	}
	p.words = (len(p.attrs) + 63) / 64
	if p.words == 0 {
		p.words = 1
	}
	mask := func(seq []schema.Attribute) []uint64 {
		m := make([]uint64, p.words)
		for _, a := range seq {
			i := p.idx[a]
			m[i/64] |= 1 << (i % 64)
		}
		return m
	}
	p.x = make([][]uint64, len(p.fds))
	p.y = make([][]uint64, len(p.fds))
	for i, g := range p.fds {
		p.x[i] = mask(g.X)
		p.y[i] = mask(g.Y)
	}
	return p
}

// coversMask reports whether every bit of need is set in have.
func coversMask(have, need []uint64) bool {
	for w := range need {
		if need[w]&^have[w] != 0 {
			return false
		}
	}
	return true
}

// Prove is ProveObs against the compiled FD set: the same derivation
// (byte-identical Proof), the same fd.* counter increments, no per-call
// index building. A nil Prover behaves like a compile of zero FDs.
func (p *Prover) Prove(f deps.FD, reg *obs.Registry) (Proof, bool) {
	if p == nil {
		return ProveObs(nil, f, reg)
	}
	reg.Counter("fd.prove_calls").Inc()
	cPasses := reg.Counter("fd.closure_passes")
	cDerived := reg.Counter("fd.attrs_derived")
	closure := make([]uint64, p.words)
	for _, a := range f.X {
		if i, ok := p.idx[a]; ok {
			closure[i/64] |= 1 << (i % 64)
		}
	}
	derivedBy := make([]int32, len(p.attrs))
	for i := range derivedBy {
		derivedBy[i] = -1
	}
	for changed := true; changed; {
		changed = false
		cPasses.Inc()
		for gi := range p.fds {
			if !coversMask(closure, p.x[gi]) {
				continue
			}
			if coversMask(closure, p.y[gi]) {
				continue // nothing new from this FD
			}
			for _, b := range p.fds[gi].Y {
				i := p.idx[b]
				if closure[i/64]&(1<<(i%64)) == 0 {
					closure[i/64] |= 1 << (i % 64)
					derivedBy[i] = int32(gi)
					cDerived.Inc()
					changed = true
				}
			}
		}
	}
	inX := func(a schema.Attribute) bool {
		for _, q := range f.X {
			if q == a {
				return true
			}
		}
		return false
	}
	for _, b := range f.Y {
		if i, ok := p.idx[b]; ok {
			if closure[i/64]&(1<<(i%64)) != 0 {
				continue
			}
			return Proof{}, false
		}
		// An attribute no FD mentions is derivable only by reflexivity.
		if !inX(b) {
			return Proof{}, false
		}
	}
	// Walk back from the goal attributes, collecting needed steps in the
	// same post-order as ProveObs.
	needed := make([]bool, len(p.attrs))
	var ordered []Step
	var visit func(a schema.Attribute)
	visit = func(a schema.Attribute) {
		if inX(a) {
			return
		}
		i, ok := p.idx[a]
		if !ok || needed[i] {
			return
		}
		needed[i] = true
		gi := derivedBy[i]
		if gi < 0 {
			return // unreachable when the closure covers f.Y
		}
		g := &p.fds[gi]
		for _, q := range g.X {
			visit(q)
		}
		ordered = append(ordered, Step{Derived: a, Via: *g})
	}
	for _, b := range f.Y {
		visit(b)
	}
	return Proof{Goal: f, Steps: ordered}, true
}
