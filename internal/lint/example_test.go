package lint_test

import (
	"fmt"

	"indfd/internal/chase"
	"indfd/internal/deps"
	"indfd/internal/lint"
	"indfd/internal/schema"
)

// Design advice surfaces the Theorem 4.4 phenomenon as a warning.
func ExampleAdvise() {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	sigma := []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")),
	}
	adv, err := lint.Advise(db, sigma, chase.Options{MaxTuples: 64})
	if err != nil {
		panic(err)
	}
	fmt.Println(adv)
	// Output:
	// keys of R: {A}
	// hold over FINITE databases only (Theorem 4.4 warning):
	//   R: B -> A
	//   R[B] <= R[A]
}
