// Package lint turns the paper's theory into a practical design and
// integrity toolkit: it checks concrete databases against FDs, INDs and
// RDs with precise violation reports, repairs referential-integrity
// violations by chasing the missing tuples in, and advises on a schema
// design — derived keys and foreign keys, repeating dependencies the
// designer never wrote (Proposition 4.3), redundant dependencies, and
// consequences that hold only because databases are finite (the
// Theorem 4.4 phenomenon, flagged as warnings since they silently break
// under logical reasoning that ignores finiteness).
package lint

import (
	"fmt"
	"sort"
	"strings"

	"indfd/internal/chase"
	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/fd"
	"indfd/internal/ind"
	"indfd/internal/obs"
	"indfd/internal/schema"
	"indfd/internal/unary"
)

// Violation pinpoints one way a database breaks a dependency.
type Violation struct {
	// Dep is the violated dependency.
	Dep deps.Dependency
	// Detail is a human-readable description with the offending tuples.
	Detail string
}

// String renders the violation.
func (v Violation) String() string { return fmt.Sprintf("%v: %s", v.Dep, v.Detail) }

// Check returns all violations of sigma in the database, with tuple-level
// detail: for an FD the first conflicting tuple pair per left-hand value,
// for an IND every dangling tuple, for an RD every offending tuple.
func Check(db *data.Database, sigma []deps.Dependency) ([]Violation, error) {
	return CheckObs(db, sigma, nil)
}

// CheckObs is Check publishing its work into reg under the "lint."
// namespace (dependencies checked, violations found, per dependency
// kind) inside a "lint.check" span. A nil registry costs nothing.
func CheckObs(db *data.Database, sigma []deps.Dependency, reg *obs.Registry) ([]Violation, error) {
	sp := reg.StartSpan("lint.check")
	defer sp.End()
	cDeps := reg.Counter("lint.deps_checked")
	cViol := reg.Counter("lint.violations")
	var out []Violation
	for _, d := range sigma {
		cDeps.Inc()
		if err := d.Validate(db.Scheme()); err != nil {
			return nil, err
		}
		switch dd := d.(type) {
		case deps.FD:
			vs, err := checkFD(db, dd)
			if err != nil {
				return nil, err
			}
			out = append(out, vs...)
		case deps.IND:
			vs, err := checkIND(db, dd)
			if err != nil {
				return nil, err
			}
			out = append(out, vs...)
		case deps.RD:
			vs, err := checkRD(db, dd)
			if err != nil {
				return nil, err
			}
			out = append(out, vs...)
		default:
			return nil, fmt.Errorf("lint: cannot check dependency kind %v", d.Kind())
		}
	}
	cViol.Add(int64(len(out)))
	sp.SetInt("violations", int64(len(out)))
	return out, nil
}

func checkFD(db *data.Database, f deps.FD) ([]Violation, error) {
	rel, _ := db.Relation(f.Rel)
	groups := map[string]data.Tuple{}
	var out []Violation
	reported := map[string]bool{}
	for _, t := range rel.Tuples() {
		xk, err := projectKey(rel, t, f.X)
		if err != nil {
			return nil, err
		}
		prev, ok := groups[xk]
		if !ok {
			groups[xk] = t
			continue
		}
		same, err := agree(rel, prev, t, f.Y)
		if err != nil {
			return nil, err
		}
		if !same && !reported[xk] {
			reported[xk] = true
			out = append(out, Violation{
				Dep:    f,
				Detail: fmt.Sprintf("tuples %v and %v agree on %s but differ on %s", prev, t, schema.JoinAttrs(f.X), schema.JoinAttrs(f.Y)),
			})
		}
	}
	return out, nil
}

func checkIND(db *data.Database, d deps.IND) ([]Violation, error) {
	left, _ := db.Relation(d.LRel)
	right, _ := db.Relation(d.RRel)
	witnesses := map[string]bool{}
	for _, u := range right.Tuples() {
		k, err := projectKey(right, u, d.Y)
		if err != nil {
			return nil, err
		}
		witnesses[k] = true
	}
	var out []Violation
	for _, t := range left.Tuples() {
		k, err := projectKey(left, t, d.X)
		if err != nil {
			return nil, err
		}
		if !witnesses[k] {
			out = append(out, Violation{
				Dep:    d,
				Detail: fmt.Sprintf("tuple %v of %s has no witness in %s", t, d.LRel, d.RRel),
			})
		}
	}
	return out, nil
}

func checkRD(db *data.Database, r deps.RD) ([]Violation, error) {
	rel, _ := db.Relation(r.Rel)
	var out []Violation
	for _, t := range rel.Tuples() {
		same, err := agreeWithin(rel, t, r.X, r.Y)
		if err != nil {
			return nil, err
		}
		if !same {
			out = append(out, Violation{
				Dep:    r,
				Detail: fmt.Sprintf("tuple %v has %s ≠ %s", t, schema.JoinAttrs(r.X), schema.JoinAttrs(r.Y)),
			})
		}
	}
	return out, nil
}

func projectKey(rel *data.Relation, t data.Tuple, attrs []schema.Attribute) (string, error) {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		p, ok := rel.Scheme().Pos(a)
		if !ok {
			return "", fmt.Errorf("lint: relation %s has no attribute %s", rel.Scheme().Name(), a)
		}
		parts[i] = string(t[p])
	}
	return strings.Join(parts, "\x00"), nil
}

func agree(rel *data.Relation, t, u data.Tuple, attrs []schema.Attribute) (bool, error) {
	kt, err := projectKey(rel, t, attrs)
	if err != nil {
		return false, err
	}
	ku, err := projectKey(rel, u, attrs)
	if err != nil {
		return false, err
	}
	return kt == ku, nil
}

func agreeWithin(rel *data.Relation, t data.Tuple, xs, ys []schema.Attribute) (bool, error) {
	kx, err := projectKey(rel, t, xs)
	if err != nil {
		return false, err
	}
	ky, err := projectKey(rel, t, ys)
	if err != nil {
		return false, err
	}
	return kx == ky, nil
}

// Repair completes the database so every IND of sigma holds, by chasing
// in the missing right-hand tuples (fresh "_k" values fill attributes the
// IND does not determine); FDs and RDs in sigma are enforced as equality
// constraints during the chase and cause an error if the data contradicts
// them on constants. The result contains the original tuples plus the
// repairs; the number of added tuples is returned.
func Repair(db *data.Database, sigma []deps.Dependency, opt chase.Options) (*data.Database, int, error) {
	repaired, err := chase.Complete(db, sigma, opt)
	if err != nil {
		return nil, 0, err
	}
	return repaired, repaired.Size() - db.Size(), nil
}

// Advice is the output of Advise: consequences of the declared
// dependencies that a designer likely wants to know about.
type Advice struct {
	// Keys lists the minimal keys of each relation under the declared FDs.
	Keys map[string][][]schema.Attribute
	// DerivedINDs are nontrivial unary INDs implied by Σ but not already
	// implied by Σ's INDs alone — foreign keys that exist only because of
	// the FD/IND interaction (Proposition 4.2 style).
	DerivedINDs []deps.IND
	// TransitiveINDs are unary INDs implied by Σ's INDs alone but not
	// declared (transitive foreign keys).
	TransitiveINDs []deps.IND
	// DerivedFDs are nontrivial unary FDs implied by Σ but not already
	// implied by Σ's FDs alone (Proposition 4.1 style).
	DerivedFDs []deps.FD
	// DerivedRDs are nontrivial unary RDs implied by Σ (columns forced
	// equal — the Proposition 4.3 phenomenon).
	DerivedRDs []deps.RD
	// FiniteOnly are consequences that hold over finite databases only
	// (Theorem 4.4); they are reported when Σ is unary, where finite
	// implication is decidable.
	FiniteOnly []deps.Dependency
	// Redundant are members of Σ implied by the others.
	Redundant []deps.Dependency
}

// Advise analyzes the dependency set over the scheme. Derived FDs and
// INDs are found with the budgeted chase (sound; a small budget may miss
// some), the finite-only gap with the unary engine when Σ is unary, and
// redundancy with the class engines and the chase.
func Advise(db *schema.Database, sigma []deps.Dependency, opt chase.Options) (Advice, error) {
	adv := Advice{Keys: map[string][][]schema.Attribute{}}
	declared := deps.NewSet(sigma...)

	var fds []deps.FD
	var inds []deps.IND
	allUnary := true
	for _, d := range sigma {
		if err := d.Validate(db); err != nil {
			return adv, err
		}
		switch dd := d.(type) {
		case deps.FD:
			fds = append(fds, dd)
			if len(dd.X) != 1 || len(dd.Y) != 1 {
				allUnary = false
			}
		case deps.IND:
			inds = append(inds, dd)
			if dd.Width() != 1 {
				allUnary = false
			}
		default:
			allUnary = false
		}
	}

	// Candidate unary consequences, tested with the chase.
	for _, name := range db.Names() {
		s, _ := db.Scheme(name)
		for _, a := range s.Attrs() {
			for _, b := range s.Attrs() {
				if a == b {
					continue
				}
				cand := deps.NewFD(name, []schema.Attribute{a}, []schema.Attribute{b})
				if !declared.Contains(cand) && !fd.Implies(fds, cand) {
					res, err := chase.ImpliesFD(db, sigma, cand, opt)
					if err != nil {
						return adv, err
					}
					if res.Verdict == chase.Implied {
						adv.DerivedFDs = append(adv.DerivedFDs, cand)
					}
				}
				if a < b {
					rd := deps.NewRD(name, []schema.Attribute{a}, []schema.Attribute{b})
					res, err := chase.ImpliesRD(db, sigma, rd, opt)
					if err != nil {
						return adv, err
					}
					if res.Verdict == chase.Implied {
						adv.DerivedRDs = append(adv.DerivedRDs, rd)
					}
				}
			}
		}
	}
	for _, ln := range db.Names() {
		ls, _ := db.Scheme(ln)
		for _, rn := range db.Names() {
			rs, _ := db.Scheme(rn)
			for _, a := range ls.Attrs() {
				for _, b := range rs.Attrs() {
					cand := deps.NewIND(ln, []schema.Attribute{a}, rn, []schema.Attribute{b})
					if cand.Trivial() || declared.Contains(cand) {
						continue
					}
					byINDs, err := ind.Implies(db, inds, cand)
					if err != nil {
						return adv, err
					}
					if byINDs {
						adv.TransitiveINDs = append(adv.TransitiveINDs, cand)
						continue
					}
					res, err := chase.ImpliesIND(db, sigma, cand, opt)
					if err != nil {
						return adv, err
					}
					if res.Verdict == chase.Implied {
						adv.DerivedINDs = append(adv.DerivedINDs, cand)
					}
				}
			}
		}
	}

	// Keys per relation, under the declared FDs plus the derived ones (so
	// INV above gets the key {OID} its derived FDs imply).
	allFDs := append(append([]deps.FD(nil), fds...), adv.DerivedFDs...)
	for _, name := range db.Names() {
		s, _ := db.Scheme(name)
		adv.Keys[name] = fd.Keys(s, allFDs)
	}

	// Finite-only consequences (unary fragment).
	if allUnary {
		sys, err := unary.NewObs(db, sigma, opt.Obs)
		if err != nil {
			return adv, err
		}
		adv.FiniteOnly = sys.FiniteGap()
	}

	// Redundancy within Σ.
	for i, d := range sigma {
		rest := make([]deps.Dependency, 0, len(sigma)-1)
		rest = append(rest, sigma[:i]...)
		rest = append(rest, sigma[i+1:]...)
		redundant := false
		switch dd := d.(type) {
		case deps.FD:
			var restFDs []deps.FD
			for _, r := range rest {
				if f, ok := r.(deps.FD); ok {
					restFDs = append(restFDs, f)
				}
			}
			// Try the FD fragment first, then the full chase.
			if fd.Implies(restFDs, dd) {
				redundant = true
			} else if res, err := chase.ImpliesFD(db, rest, dd, opt); err == nil && res.Verdict == chase.Implied {
				redundant = true
			}
		case deps.IND:
			var restINDs []deps.IND
			for _, r := range rest {
				if i2, ok := r.(deps.IND); ok {
					restINDs = append(restINDs, i2)
				}
			}
			if ok, err := ind.Implies(db, restINDs, dd); err == nil && ok {
				redundant = true
			} else if res, err := chase.ImpliesIND(db, rest, dd, opt); err == nil && res.Verdict == chase.Implied {
				redundant = true
			}
		case deps.RD:
			if res, err := chase.ImpliesRD(db, rest, dd, opt); err == nil && res.Verdict == chase.Implied {
				redundant = true
			}
		}
		if redundant {
			adv.Redundant = append(adv.Redundant, d)
		}
	}
	sortAdvice(&adv)
	return adv, nil
}

func sortAdvice(a *Advice) {
	sort.Slice(a.DerivedINDs, func(i, j int) bool { return a.DerivedINDs[i].String() < a.DerivedINDs[j].String() })
	sort.Slice(a.TransitiveINDs, func(i, j int) bool { return a.TransitiveINDs[i].String() < a.TransitiveINDs[j].String() })
	sort.Slice(a.DerivedFDs, func(i, j int) bool { return a.DerivedFDs[i].String() < a.DerivedFDs[j].String() })
	sort.Slice(a.DerivedRDs, func(i, j int) bool { return a.DerivedRDs[i].String() < a.DerivedRDs[j].String() })
}

// String renders the advice as a report.
func (a Advice) String() string {
	var b strings.Builder
	var names []string
	for n := range a.Keys {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var keys []string
		for _, k := range a.Keys[n] {
			keys = append(keys, "{"+schema.JoinAttrs(k)+"}")
		}
		fmt.Fprintf(&b, "keys of %s: %s\n", n, strings.Join(keys, " "))
	}
	section := func(title string, items []string) {
		if len(items) == 0 {
			return
		}
		fmt.Fprintf(&b, "%s:\n", title)
		for _, it := range items {
			fmt.Fprintf(&b, "  %s\n", it)
		}
	}
	section("transitive foreign keys (INDs)", renderAll(a.TransitiveINDs))
	section("interaction-derived INDs", renderAll(a.DerivedINDs))
	section("derived FDs", renderAll(a.DerivedFDs))
	section("derived column equalities (RDs)", renderAll(a.DerivedRDs))
	section("hold over FINITE databases only (Theorem 4.4 warning)", renderAll(a.FiniteOnly))
	section("redundant declarations", renderAll(a.Redundant))
	return strings.TrimRight(b.String(), "\n")
}

func renderAll[T fmt.Stringer](xs []T) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = x.String()
	}
	return out
}
