package lint

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"indfd/internal/chase"
	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

func orderScheme() *schema.Database {
	return schema.MustDatabase(
		schema.MustScheme("CUST", "CID", "NAME"),
		schema.MustScheme("ORD", "OID", "CID"),
	)
}

func orderSigma() []deps.Dependency {
	return []deps.Dependency{
		deps.NewFD("CUST", deps.Attrs("CID"), deps.Attrs("NAME")),
		deps.NewIND("ORD", deps.Attrs("CID"), "CUST", deps.Attrs("CID")),
	}
}

func TestCheckFindsViolations(t *testing.T) {
	ds := orderScheme()
	db := data.NewDatabase(ds)
	db.MustInsert("CUST",
		data.Tuple{"c1", "ann"},
		data.Tuple{"c1", "bob"}, // FD violation
	)
	db.MustInsert("ORD",
		data.Tuple{"o1", "c1"},
		data.Tuple{"o2", "c9"}, // dangling foreign key
	)
	vs, err := Check(db, orderSigma())
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(vs) != 2 {
		t.Fatalf("violations = %v, want 2", vs)
	}
	var fdV, indV bool
	for _, v := range vs {
		switch v.Dep.Kind() {
		case deps.KindFD:
			fdV = true
			if !strings.Contains(v.Detail, "agree on CID") {
				t.Errorf("FD detail wrong: %s", v.Detail)
			}
		case deps.KindIND:
			indV = true
			if !strings.Contains(v.Detail, "no witness") || !strings.Contains(v.Detail, "c9") {
				t.Errorf("IND detail wrong: %s", v.Detail)
			}
		}
		if v.String() == "" {
			t.Errorf("empty rendering")
		}
	}
	if !fdV || !indV {
		t.Errorf("missing violation kinds: %v", vs)
	}
}

func TestCheckRD(t *testing.T) {
	ds := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	db := data.NewDatabase(ds)
	db.MustInsert("R", data.Tuple{"x", "x"}, data.Tuple{"y", "z"})
	vs, err := Check(db, []deps.Dependency{deps.NewRD("R", deps.Attrs("A"), deps.Attrs("B"))})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "(y,z)") {
		t.Errorf("RD violations = %v", vs)
	}
}

func TestCheckCleanAndErrors(t *testing.T) {
	ds := orderScheme()
	db := data.NewDatabase(ds)
	db.MustInsert("CUST", data.Tuple{"c1", "ann"})
	db.MustInsert("ORD", data.Tuple{"o1", "c1"})
	vs, err := Check(db, orderSigma())
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(vs) != 0 {
		t.Errorf("clean database reported violations: %v", vs)
	}
	// Invalid and unsupported dependencies error.
	if _, err := Check(db, []deps.Dependency{deps.NewFD("NOPE", deps.Attrs("A"), deps.Attrs("B"))}); err == nil {
		t.Errorf("invalid dependency should error")
	}
	if _, err := Check(db, []deps.Dependency{deps.NewEMVD("CUST", deps.Attrs("CID"), deps.Attrs("NAME"), nil)}); err == nil {
		t.Errorf("EMVD should error")
	}
}

func TestRepair(t *testing.T) {
	ds := orderScheme()
	db := data.NewDatabase(ds)
	db.MustInsert("ORD", data.Tuple{"o1", "c9"})
	repaired, added, err := Repair(db, orderSigma(), chase.Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if added != 1 {
		t.Errorf("added = %d, want 1", added)
	}
	vs, err := Check(repaired, orderSigma())
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("repaired database still has violations: %v", vs)
	}
	// The repair kept the original tuple and invented a customer row for
	// c9 with a placeholder name.
	if !repaired.MustRelation("ORD").Contains(data.Tuple{"o1", "c9"}) {
		t.Errorf("original tuple lost")
	}
	cust := repaired.MustRelation("CUST")
	if cust.Len() != 1 || cust.Tuples()[0][0] != "c9" {
		t.Errorf("repair wrong: %v", cust)
	}
}

func TestRepairContradiction(t *testing.T) {
	// Repairing cannot fix an FD violation on constants: error.
	ds := orderScheme()
	db := data.NewDatabase(ds)
	db.MustInsert("CUST", data.Tuple{"c1", "ann"}, data.Tuple{"c1", "bob"})
	if _, _, err := Repair(db, orderSigma(), chase.Options{}); err == nil {
		t.Errorf("contradictory data should not repair")
	}
}

func TestAdvise(t *testing.T) {
	// The referential example: INV's two customer columns both pair OID
	// with the ordering customer.
	ds := schema.MustDatabase(
		schema.MustScheme("CUST", "CID", "NAME"),
		schema.MustScheme("ORD", "OID", "CID"),
		schema.MustScheme("INV", "OID", "BILLCID", "SHIPCID"),
	)
	sigma := []deps.Dependency{
		deps.NewFD("CUST", deps.Attrs("CID"), deps.Attrs("NAME")),
		deps.NewFD("ORD", deps.Attrs("OID"), deps.Attrs("CID")),
		deps.NewIND("ORD", deps.Attrs("CID"), "CUST", deps.Attrs("CID")),
		deps.NewIND("INV", deps.Attrs("OID", "BILLCID"), "ORD", deps.Attrs("OID", "CID")),
		deps.NewIND("INV", deps.Attrs("OID", "SHIPCID"), "ORD", deps.Attrs("OID", "CID")),
		// A deliberately redundant declaration.
		deps.NewIND("INV", deps.Attrs("BILLCID"), "CUST", deps.Attrs("CID")),
	}
	adv, err := Advise(ds, sigma, chase.Options{MaxTuples: 256})
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	// Keys.
	if got := adv.Keys["CUST"]; len(got) != 1 || schema.JoinAttrs(got[0]) != "CID" {
		t.Errorf("CUST keys = %v", got)
	}
	contains := func(items []string, want string) bool {
		for _, it := range items {
			if it == want {
				return true
			}
		}
		return false
	}
	var derivedFDs, derivedRDs, derivedINDs, redundant []string
	for _, d := range adv.DerivedFDs {
		derivedFDs = append(derivedFDs, d.String())
	}
	for _, d := range adv.DerivedRDs {
		derivedRDs = append(derivedRDs, d.String())
	}
	for _, d := range adv.DerivedINDs {
		derivedINDs = append(derivedINDs, d.String())
	}
	for _, d := range adv.TransitiveINDs {
		derivedINDs = append(derivedINDs, d.String())
	}
	for _, d := range adv.Redundant {
		redundant = append(redundant, d.String())
	}
	if !contains(derivedFDs, "INV: OID -> BILLCID") {
		t.Errorf("derived FDs = %v", derivedFDs)
	}
	if !contains(derivedRDs, "INV[BILLCID == SHIPCID]") {
		t.Errorf("derived RDs = %v", derivedRDs)
	}
	if !contains(derivedINDs, "INV[SHIPCID] <= CUST[CID]") {
		t.Errorf("derived INDs = %v", derivedINDs)
	}
	if !contains(redundant, "INV[BILLCID] <= CUST[CID]") {
		t.Errorf("redundant = %v", redundant)
	}
	out := adv.String()
	for _, want := range []string{"keys of CUST", "derived column equalities", "redundant declarations"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAdviseFiniteOnly(t *testing.T) {
	ds := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	sigma := []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")),
	}
	adv, err := Advise(ds, sigma, chase.Options{MaxTuples: 64})
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	if len(adv.FiniteOnly) != 2 {
		t.Errorf("FiniteOnly = %v, want the two Theorem 4.4 consequences", adv.FiniteOnly)
	}
	if !strings.Contains(adv.String(), "FINITE databases only") {
		t.Errorf("report missing finite-only warning:\n%s", adv)
	}
}

func TestAdviseValidates(t *testing.T) {
	ds := orderScheme()
	if _, err := Advise(ds, []deps.Dependency{deps.NewFD("NOPE", deps.Attrs("X"), deps.Attrs("Y"))}, chase.Options{}); err == nil {
		t.Errorf("invalid sigma should error")
	}
}

// Property: whenever Repair succeeds, the result passes Check.
func TestRepairAlwaysChecks(t *testing.T) {
	ds := orderScheme()
	sigma := orderSigma()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := data.NewDatabase(ds)
		for i := 0; i < r.Intn(4); i++ {
			db.MustInsert("ORD", data.Tuple{data.Int(r.Intn(3)), data.Int(r.Intn(3))})
		}
		for i := 0; i < r.Intn(3); i++ {
			db.MustInsert("CUST", data.Tuple{data.Int(r.Intn(3)), data.Int(r.Intn(3))})
		}
		repaired, _, err := Repair(db, sigma, chase.Options{MaxTuples: 256})
		if err != nil {
			return true // contradictory data is allowed to fail
		}
		vs, err := Check(repaired, sigma)
		return err == nil && len(vs) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
