package schema

import (
	"encoding/json"
	"fmt"
)

// schemeJSON is the wire form of a relation scheme.
type schemeJSON struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
}

// MarshalJSON encodes the scheme as {"name":"R","attrs":["A","B"]}.
func (s *Scheme) MarshalJSON() ([]byte, error) {
	attrs := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		attrs[i] = string(a)
	}
	return json.Marshal(schemeJSON{Name: s.name, Attrs: attrs})
}

// UnmarshalJSON decodes and validates a scheme.
func (s *Scheme) UnmarshalJSON(b []byte) error {
	var w schemeJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	attrs := make([]Attribute, len(w.Attrs))
	for i, a := range w.Attrs {
		attrs[i] = Attribute(a)
	}
	fresh, err := NewScheme(w.Name, attrs...)
	if err != nil {
		return err
	}
	*s = *fresh
	return nil
}

// MarshalJSON encodes the database scheme as an array of schemes in
// insertion order.
func (d *Database) MarshalJSON() ([]byte, error) {
	schemes := make([]*Scheme, 0, d.Len())
	for _, name := range d.order {
		schemes = append(schemes, d.schemes[name])
	}
	return json.Marshal(schemes)
}

// UnmarshalJSON decodes and validates a database scheme.
func (d *Database) UnmarshalJSON(b []byte) error {
	var schemes []*Scheme
	if err := json.Unmarshal(b, &schemes); err != nil {
		return err
	}
	fresh, err := NewDatabase(schemes...)
	if err != nil {
		return fmt.Errorf("schema: %w", err)
	}
	*d = *fresh
	return nil
}
