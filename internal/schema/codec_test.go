package schema

import (
	"encoding/json"
	"testing"
)

func TestSchemeJSONRoundTrip(t *testing.T) {
	s := MustScheme("R", "A", "B")
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Scheme
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != "R(A,B)" {
		t.Errorf("round trip = %v", back.String())
	}
	// Invalid schemes are rejected on decode.
	if err := json.Unmarshal([]byte(`{"name":"R","attrs":["A","A"]}`), &back); err == nil {
		t.Errorf("duplicate attrs should fail")
	}
}

func TestDatabaseJSONRoundTrip(t *testing.T) {
	d := MustDatabase(MustScheme("R", "A"), MustScheme("S", "B", "C"))
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Database
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != d.String() {
		t.Errorf("round trip:\n%v\nvs\n%v", back.String(), d.String())
	}
	if err := json.Unmarshal([]byte(`[{"name":"R","attrs":["A"]},{"name":"R","attrs":["A"]}]`), &back); err == nil {
		t.Errorf("duplicate relation names should fail")
	}
}
