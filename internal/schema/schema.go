// Package schema implements the data-definition layer of the paper
// "Inclusion Dependencies and Their Interaction with Functional
// Dependencies" (Casanova, Fagin, Papadimitriou, PODS 1982): relation
// schemes R[A1,...,Am], database schemes, and attribute sequences.
//
// Following Section 2 of the paper, a relation scheme is a pair of a name
// and a finite *sequence* of attributes (not a set: the paper needs
// sequences so that FDs and INDs can be interrelated), and a database
// scheme is a finite set of relation schemes.
package schema

import (
	"fmt"
	"slices"
	"strings"
)

// Attribute is the name of a column of a relation scheme. Attributes are
// compared by name; the same attribute name may appear in several relation
// schemes (they are then unrelated columns).
type Attribute string

// Scheme is a relation scheme R[A1,...,Am]: a relation name together with
// an ordered sequence of distinct attributes.
type Scheme struct {
	name  string
	attrs []Attribute
	pos   map[Attribute]int
}

// NewScheme builds the relation scheme name[attrs...]. It returns an error
// if the name is empty, no attributes are given, or the attributes are not
// distinct.
func NewScheme(name string, attrs ...Attribute) (*Scheme, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: relation scheme must have a name")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("schema: relation scheme %s must have at least one attribute", name)
	}
	pos := make(map[Attribute]int, len(attrs))
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("schema: relation scheme %s has an empty attribute name", name)
		}
		if _, dup := pos[a]; dup {
			return nil, fmt.Errorf("schema: relation scheme %s repeats attribute %s", name, a)
		}
		pos[a] = i
	}
	return &Scheme{name: name, attrs: append([]Attribute(nil), attrs...), pos: pos}, nil
}

// MustScheme is NewScheme that panics on error. It is intended for tests,
// examples, and the paper's fixed constructions.
func MustScheme(name string, attrs ...Attribute) *Scheme {
	s, err := NewScheme(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the relation name.
func (s *Scheme) Name() string { return s.name }

// Attrs returns the attribute sequence of the scheme. The caller must not
// modify the returned slice.
func (s *Scheme) Attrs() []Attribute { return s.attrs }

// Width returns the number of attributes.
func (s *Scheme) Width() int { return len(s.attrs) }

// Pos returns the position (0-based) of attribute a in the scheme, and
// whether the scheme has the attribute at all.
func (s *Scheme) Pos(a Attribute) (int, bool) {
	i, ok := s.pos[a]
	return i, ok
}

// Has reports whether the scheme has attribute a.
func (s *Scheme) Has(a Attribute) bool {
	_, ok := s.pos[a]
	return ok
}

// HasAll reports whether the scheme has every attribute in seq.
func (s *Scheme) HasAll(seq []Attribute) bool {
	for _, a := range seq {
		if !s.Has(a) {
			return false
		}
	}
	return true
}

// String renders the scheme as R(A,B,C).
func (s *Scheme) String() string {
	parts := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		parts[i] = string(a)
	}
	return s.name + "(" + strings.Join(parts, ",") + ")"
}

// Database is a database scheme: a finite set of relation schemes, indexed
// by name. The insertion order of schemes is preserved for deterministic
// iteration.
type Database struct {
	order   []string
	schemes map[string]*Scheme
	// canon is the name-sorted render of every scheme, rebuilt by Add.
	// Fingerprinting a query hashes the whole scheme, so keeping the
	// render current on (rare) Adds makes it free on (hot) queries.
	canon string
}

// NewDatabase builds a database scheme from the given relation schemes. It
// returns an error if two schemes share a name.
func NewDatabase(schemes ...*Scheme) (*Database, error) {
	d := &Database{schemes: make(map[string]*Scheme, len(schemes))}
	for _, s := range schemes {
		if err := d.Add(s); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// MustDatabase is NewDatabase that panics on error.
func MustDatabase(schemes ...*Scheme) *Database {
	d, err := NewDatabase(schemes...)
	if err != nil {
		panic(err)
	}
	return d
}

// Add inserts one more relation scheme into the database scheme.
func (d *Database) Add(s *Scheme) error {
	if s == nil {
		return fmt.Errorf("schema: nil relation scheme")
	}
	if _, dup := d.schemes[s.name]; dup {
		return fmt.Errorf("schema: duplicate relation scheme %s", s.name)
	}
	d.schemes[s.name] = s
	d.order = append(d.order, s.name)
	names := slices.Clone(d.order)
	slices.Sort(names)
	var b strings.Builder
	for _, name := range names {
		b.WriteString(d.schemes[name].String())
		b.WriteByte(0)
	}
	d.canon = b.String()
	return nil
}

// Canonical returns a canonical render of the database scheme: every
// relation scheme in name order, NUL-separated. Two databases have equal
// canonical forms exactly when they have the same schemes.
func (d *Database) Canonical() string { return d.canon }

// Scheme returns the relation scheme with the given name.
func (d *Database) Scheme(name string) (*Scheme, bool) {
	s, ok := d.schemes[name]
	return s, ok
}

// Names returns the relation names in insertion order. The caller must not
// modify the returned slice.
func (d *Database) Names() []string { return d.order }

// Len returns the number of relation schemes.
func (d *Database) Len() int { return len(d.order) }

// String renders the database scheme, one relation scheme per line, in
// insertion order.
func (d *Database) String() string {
	var b strings.Builder
	for i, name := range d.order {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.schemes[name].String())
	}
	return b.String()
}

// Distinct reports whether the attribute sequence has no repeated
// attribute. Both sides of an IND and each side of an FD must be distinct
// sequences (Section 2 of the paper).
func Distinct(seq []Attribute) bool {
	// Dependency sides are a handful of attributes; the quadratic scan
	// is both faster and allocation-free there (goal validation sits on
	// the pooled serve path, which pins zero steady-state allocations).
	if len(seq) <= 16 {
		for i := 1; i < len(seq); i++ {
			for j := 0; j < i; j++ {
				if seq[j] == seq[i] {
					return false
				}
			}
		}
		return true
	}
	seen := make(map[Attribute]bool, len(seq))
	for _, a := range seq {
		if seen[a] {
			return false
		}
		seen[a] = true
	}
	return true
}

// EqualSeq reports whether two attribute sequences are equal elementwise.
func EqualSeq(x, y []Attribute) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every attribute of x occurs in y (as sets).
func SubsetOf(x, y []Attribute) bool {
	set := make(map[Attribute]bool, len(y))
	for _, a := range y {
		set[a] = true
	}
	for _, a := range x {
		if !set[a] {
			return false
		}
	}
	return true
}

// SortedSet returns the distinct attributes of seq in sorted order.
func SortedSet(seq []Attribute) []Attribute {
	// Hot path: attribute lists are tiny and this runs per dependency
	// Key(), so sort-and-compact a copy instead of churning a map.
	out := slices.Clone(seq)
	slices.Sort(out)
	return slices.Compact(out)
}

// JoinAttrs renders an attribute sequence as "A,B,C".
func JoinAttrs(seq []Attribute) string {
	parts := make([]string, len(seq))
	for i, a := range seq {
		parts[i] = string(a)
	}
	return strings.Join(parts, ",")
}

// Concat returns the concatenation of attribute sequences.
func Concat(seqs ...[]Attribute) []Attribute {
	var out []Attribute
	for _, s := range seqs {
		out = append(out, s...)
	}
	return out
}
